(* Service-level invariant monitor — the serving analogue of
   [Rumor_sim.Invariant]. Counters are atomics because terminal
   transitions happen on worker domains while the wire thread reads
   stats; violations are recorded under a small mutex and capped, like
   the simulation monitor, so a broken invariant cannot itself exhaust
   memory. *)

module Json = Rumor_obs.Json

type counter =
  [ `Submitted  (* submit requests seen (accepted + rejected) *)
  | `Accepted
  | `Rejected
  | `Completed
  | `Failed
  | `Shed
  | `Cancelled
  | `Retries
  | `Failovers
  | `Restarts  (* worker domains respawned after crash/wedge *)
  | `Deposed  (* wedged workers deposed by the watchdog *)
  | `Degraded  (* sessions downgraded by a shedding tier *) ]

let counter_name = function
  | `Submitted -> "submitted"
  | `Accepted -> "accepted"
  | `Rejected -> "rejected"
  | `Completed -> "completed"
  | `Failed -> "failed"
  | `Shed -> "shed"
  | `Cancelled -> "cancelled"
  | `Retries -> "retries"
  | `Failovers -> "failovers"
  | `Restarts -> "restarts"
  | `Deposed -> "deposed"
  | `Degraded -> "degraded"

let all_counters : counter list =
  [
    `Submitted; `Accepted; `Rejected; `Completed; `Failed; `Shed; `Cancelled;
    `Retries; `Failovers; `Restarts; `Deposed; `Degraded;
  ]

type violation = { check : string; detail : string }

type t = {
  counters : (string * int Atomic.t) list;
  queue_bound : int;
  restart_cap : int;
  limit : int;
  mutable violations : violation list;  (* newest first *)
  mutable violation_count : int;
  mutex : Mutex.t;
}

let create ?(limit = 64) ~queue_bound ~restart_cap () =
  if limit < 1 then invalid_arg "Monitor.create: limit < 1";
  {
    counters =
      List.map (fun c -> (counter_name c, Atomic.make 0)) all_counters;
    queue_bound;
    restart_cap;
    limit;
    violations = [];
    violation_count = 0;
    mutex = Mutex.create ();
  }

let cell t c = List.assoc (counter_name c) t.counters
let incr t c = Atomic.incr (cell t c)
let count t c = Atomic.get (cell t c)

let record t ~check ~detail =
  Mutex.lock t.mutex;
  t.violation_count <- t.violation_count + 1;
  if List.length t.violations < t.limit then
    t.violations <- { check; detail } :: t.violations;
  Mutex.unlock t.mutex

let violations t =
  Mutex.lock t.mutex;
  let v = List.rev t.violations in
  Mutex.unlock t.mutex;
  v

let violation_count t = t.violation_count
let ok t = t.violation_count = 0

(* --- the service invariants --- *)

let observe_queue t depth =
  (* The admission bound applies to try_put only; failover/retry
     re-entry may push the queue slightly past it, bounded by the
     number of in-flight sessions (<= bound + workers). Anything beyond
     that means admission control is broken. *)
  if depth > t.queue_bound * 2 + 64 then
    record t ~check:"queue-bound"
      ~detail:
        (Printf.sprintf "queue depth %d exceeds bound %d" depth t.queue_bound)

let note_restart t =
  incr t `Restarts;
  if count t `Restarts > t.restart_cap then
    record t ~check:"restart-intensity"
      ~detail:
        (Printf.sprintf "%d worker restarts exceed cap %d" (count t `Restarts)
           t.restart_cap)

let note_terminal t ~already_terminal outcome =
  if already_terminal then
    record t ~check:"double-terminal"
      ~detail:"session reached a second terminal state"
  else
    incr t
      (match outcome with
      | Session.Completed -> `Completed
      | Session.Failed _ -> `Failed
      | Session.Shed -> `Shed
      | Session.Cancelled -> `Cancelled)

let terminal_total t =
  count t `Completed + count t `Failed + count t `Shed + count t `Cancelled

(* Conservation: every accepted session is queued, running, backing
   off, or terminal — none lost, none double-counted. Checked at quiet
   points (drain, test teardown) where in-flight counts are stable. *)
let reconcile t ~in_flight =
  let accepted = count t `Accepted and terms = terminal_total t in
  if accepted <> terms + in_flight then begin
    record t ~check:"conservation"
      ~detail:
        (Printf.sprintf "accepted %d <> terminal %d + in-flight %d" accepted
           terms in_flight);
    false
  end
  else true

let to_json t =
  Json.Obj
    (List.map (fun (name, c) -> (name, Json.Int (Atomic.get c))) t.counters
    @ [
        ("violations", Json.Int t.violation_count);
        ( "violation_list",
          Json.List
            (List.map
               (fun v ->
                 Json.Obj
                   [
                     ("check", Json.String v.check);
                     ("detail", Json.String v.detail);
                   ])
               (violations t)) );
        ("ok", Json.Bool (ok t));
      ])
