(** Worker-domain pool: restart-on-crash, wedge detection, failover.

    Each worker is an OCaml domain looping [take -> handle] over the
    shared {!Mailbox}. Supervision handles the two ways a worker can
    die:

    - {b crash} — the domain body unwinds (e.g. the injected
      {!Session.Crash_injected}); the watchdog {!scan} reaps it, fails
      its in-flight session over to the pool and respawns the slot;
    - {b wedge} — the domain stops making progress without exiting.
      There is no [Domain.kill], so a wedged worker is {e deposed}: its
      session is failed over, a replacement takes its slot, and the
      zombie's eventual output is discarded via the session's stale
      attempt token. Detection is by heartbeat staleness — workers beat
      once per simulated round, and only a busy worker is ever judged
      (an idle worker blocked on the mailbox cannot wedge).

    Respawns pass through a restart-intensity circuit breaker: more
    than [max_restarts] inside [restart_window_s] opens the breaker and
    the slot is retired instead (a crash-looping service should degrade
    honestly, not flap forever).

    {!scan} must be called from exactly one thread (the service
    ticker); it never blocks on a domain that has not exited. *)

type config = {
  workers : int;
  heartbeat_timeout_s : float;
  max_restarts : int;
  restart_window_s : float;
}

val config :
  ?workers:int ->
  ?heartbeat_timeout_s:float ->
  ?max_restarts:int ->
  ?restart_window_s:float ->
  unit ->
  config
(** Validated config; defaults [4] workers, [0.25]s heartbeat timeout,
    [8] restarts per [60]s window. @raise Invalid_argument on
    non-positive values. *)

type t

val create :
  config:config ->
  mailbox:Session.t Mailbox.t ->
  handle:(beat:(unit -> unit) -> Session.t -> unit) ->
  on_failover:(Session.t -> unit) ->
  on_restart:(unit -> unit) ->
  on_deposed:(unit -> unit) ->
  unit ->
  t
(** Spawn the initial pool. [handle] runs one session attempt and must
    call [beat] regularly (once per round); it may let
    {!Session.Crash_injected} escape — that is the crash-injection
    path. [on_failover] receives the in-flight session of a dead or
    deposed worker (called with the pool mutex held; must not call back
    into the supervisor). *)

val scan : t -> now:float -> unit
(** One watchdog pass: reap exited workers (failover + respawn), depose
    stale busy workers, reap exited zombies. Single-threaded. *)

val live_workers : t -> int
val busy_count : t -> int

val breaker_open : t -> bool
val restarts_in_window : t -> now:float -> int

val begin_drain : t -> unit
(** Stop treating worker exits as crashes. Must be called {e before}
    closing the mailbox, else clean drain exits would be "crashes"
    respawned into a closed mailbox. *)

val drain : t -> timeout_s:float -> bool
(** Wait (polling) until every worker and zombie has exited, joining
    them; [false] if the timeout expires first — genuinely wedged
    domains are left un-joined rather than hanging shutdown. Implies
    {!begin_drain}; the mailbox must already be closed. *)
