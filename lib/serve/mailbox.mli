(** Bounded multi-producer/multi-consumer admission queue.

    The service accepts a session only if the queue has room:
    {!try_put} never blocks and returns [false] on a full (or closed)
    queue, which the admission layer turns into an explicit rejection
    with a [retry_after] hint — backpressure by refusal, not by
    unbounded buffering. {!force_put} bypasses the bound for work that
    was already admitted (deadline retries, crash failovers): bouncing
    those would lose accepted sessions, so the bound check applies at
    admission only and the monitor's queue invariant allows the small
    transient excess ([capacity] + in-flight retries).

    All operations are safe across OCaml domains and threads. *)

type 'a t

exception Closed

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Current depth (racy by nature; exact at the instant sampled). *)

val high_water : 'a t -> int
(** Deepest the queue has ever been. *)

val is_closed : 'a t -> bool

val try_put : 'a t -> 'a -> bool
(** Enqueue if the queue is open and below capacity; never blocks.
    Returns [false] (refusal) otherwise. *)

val force_put : 'a t -> 'a -> unit
(** Enqueue regardless of the bound — for retry/failover re-entry of
    already-admitted work. @raise Closed if the queue is closed. *)

val take : 'a t -> 'a option
(** Block until an element is available ([Some]) or the queue is closed
    and drained ([None]). *)

val take_opt : 'a t -> 'a option
(** Non-blocking take (returns [None] on an empty queue even if open). *)

val close : 'a t -> unit
(** Close the queue: future puts fail, blocked takers drain the
    remaining elements and then receive [None]. Idempotent. *)

val wake : 'a t -> unit
(** Broadcast to blocked takers so they re-check state — the service
    ticker calls this periodically because stdlib [Condition] has no
    timed wait. *)
