module Rng = Rumor_rng.Rng
module Repair = Rumor_core.Repair
module Json = Rumor_obs.Json
module Latency = Rumor_obs.Latency

(* The service proper: admission control, shedding tiers, the retry
   state machine and terminal accounting, glued to the worker pool.

   Locking: [t.mutex] guards session state transitions, the backoff
   list and the EWMA; the supervisor and mailbox have their own locks.
   Lock order is pool -> service (the watchdog's failover callback
   takes the service mutex while the pool mutex is held); nothing ever
   takes the pool mutex while holding the service mutex, so the order
   is acyclic. [on_terminal] notifications are always invoked with no
   lock held. *)

type config = {
  workers : int;
  queue_capacity : int;
  retry_budget : int;  (** deadline/incomplete re-runs per session *)
  retry_backoff : Repair.backoff;  (** randomized-exponential, in ms *)
  deadline_factor : float;  (** wall budget = factor * ceil_log2 n rounds *)
  round_budget_us : float;  (** declared wall budget per round *)
  shed_trace_at : float;  (** queue occupancy: stop collecting traces *)
  shed_degrade_at : float;  (** queue occupancy: downgrade bef to push-pull *)
  heartbeat_timeout_s : float;
  max_restarts : int;
  restart_window_s : float;
  tick_s : float;  (** ticker period: watchdog + retry promotion *)
}

let config ?(workers = 4) ?(queue_capacity = 64) ?(retry_budget = 3)
    ?(retry_backoff = Repair.backoff ~base:25 ~cap:400 ())
    ?(deadline_factor = 6.) ?(round_budget_us = 2000.) ?(shed_trace_at = 0.5)
    ?(shed_degrade_at = 0.75) ?(heartbeat_timeout_s = 0.25) ?(max_restarts = 8)
    ?(restart_window_s = 60.) ?(tick_s = 0.005) () =
  if workers < 1 then invalid_arg "Service.config: workers < 1";
  if queue_capacity < 1 then invalid_arg "Service.config: queue_capacity < 1";
  if retry_budget < 0 then invalid_arg "Service.config: retry_budget < 0";
  if deadline_factor <= 0. then invalid_arg "Service.config: deadline_factor";
  if round_budget_us <= 0. then invalid_arg "Service.config: round_budget_us";
  if not (0. < shed_trace_at && shed_trace_at <= 1.) then
    invalid_arg "Service.config: shed_trace_at";
  if not (0. < shed_degrade_at && shed_degrade_at <= 1.) then
    invalid_arg "Service.config: shed_degrade_at";
  if tick_s <= 0. then invalid_arg "Service.config: tick_s";
  {
    workers;
    queue_capacity;
    retry_budget;
    retry_backoff;
    deadline_factor;
    round_budget_us;
    shed_trace_at;
    shed_degrade_at;
    heartbeat_timeout_s;
    max_restarts;
    restart_window_s;
    tick_s;
  }

type t = {
  cfg : config;
  mutex : Mutex.t;
  sessions : (int, Session.t) Hashtbl.t;  (** guarded by [mutex] *)
  mutable next_id : int;
  mutable backoff : Session.t list;  (** sessions waiting out a retry gap *)
  mutable draining : bool;
  mutable ewma_attempt_s : float;  (** smoothed attempt wall time *)
  rng : Rng.t;  (** backoff jitter; guarded by [mutex] *)
  mailbox : Session.t Mailbox.t;
  monitor : Monitor.t;
  latency : Latency.t;
  topo_mutex : Mutex.t;
  topologies : (string * int * int * int, Rumor_sim.Topology.t) Hashtbl.t;
  on_terminal : Session.t -> unit;
  ticker_stop : bool Atomic.t;
  mutable ticker : Thread.t option;
  mutable supervisor : Supervisor.t option;  (** Some after [create] returns *)
}

let monitor t = t.monitor
let latency t = t.latency

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Topologies are built once per (name, n, d, seed) and shared by all
   worker domains — safe because a topology is read-only during a run
   (faults mutate engine-side liveness, never the view), and the
   implicit views compute neighbours purely. *)
let topology_for t (spec : Session.spec) =
  let key = (spec.topology, spec.n, spec.d, spec.seed) in
  Mutex.lock t.topo_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.topo_mutex)
    (fun () ->
      match Hashtbl.find_opt t.topologies key with
      | Some topo -> topo
      | None ->
          let topo =
            Rumor_cli.Scenario.make_topology ~rng:(Rng.create spec.seed)
              ~topology:spec.topology ~n:spec.n ~d:spec.d
          in
          Hashtbl.replace t.topologies key topo;
          topo)

(* --- terminal accounting (callers hold t.mutex) --- *)

let terminal_locked t s outcome ~notifications =
  let already = Session.is_terminal s in
  if not already then begin
    s.Session.state <- Session.Done outcome;
    s.Session.finished_at <- Unix.gettimeofday ();
    (* Stale-ify any zombie still running an old attempt. *)
    Atomic.incr s.Session.attempt_token
  end;
  Monitor.note_terminal t.monitor ~already_terminal:already outcome;
  if not already then begin
    Latency.add t.latency (Session.latency_s s);
    notifications := s :: !notifications
  end

let flush_notifications t ns =
  List.iter (fun s -> t.on_terminal s) (List.rev !ns)

let in_flight_locked t =
  Hashtbl.fold
    (fun _ s acc -> if Session.is_terminal s then acc else acc + 1)
    t.sessions 0

let retry_or_fail_locked t s reason ~now ~notifications =
  s.Session.last_error <- Some reason;
  if s.Session.retries >= t.cfg.retry_budget then
    terminal_locked t s (Session.Failed reason) ~notifications
  else begin
    s.Session.retries <- s.Session.retries + 1;
    Monitor.incr t.monitor `Retries;
    let gap_ms =
      Repair.backoff_gap t.cfg.retry_backoff ~rng:t.rng
        ~attempt:(s.Session.retries - 1)
    in
    s.Session.not_before <- now +. (float_of_int gap_ms /. 1e3);
    s.Session.state <- Session.Backoff;
    t.backoff <- s :: t.backoff
  end

(* --- the worker callback: run one attempt --- *)

let handle_attempt t ~beat s =
  let notifications = ref [] in
  let run =
    with_lock t (fun () ->
        match s.Session.state with
        | Session.Queued when Atomic.get s.Session.cancel ->
            terminal_locked t s Session.Cancelled ~notifications;
            None
        | Session.Queued ->
            s.Session.state <- Session.Running;
            s.Session.attempts <- s.Session.attempts + 1;
            Atomic.incr s.Session.attempt_token;
            Some (Atomic.get s.Session.attempt_token)
        | _ ->
            (* Cancelled-or-terminated while waiting in the mailbox;
               nothing to run. *)
            None)
  in
  flush_notifications t notifications;
  match run with
  | None -> ()
  | Some token ->
      let t0 = Unix.gettimeofday () in
      let outcome =
        (* [Crash_injected] must escape — it is the simulated worker
           death the supervisor exists to catch. Everything else is an
           attempt failure for the retry machinery. *)
        try
          Ok
            (Session.exec
               ~topology:(topology_for t s.Session.spec)
               ~deadline_factor:t.cfg.deadline_factor
               ~round_budget_us:t.cfg.round_budget_us ~beat s)
        with
        | Session.Crash_injected as e -> raise e
        | e -> Error (Printexc.to_string e)
      in
      let now = Unix.gettimeofday () in
      let notifications = ref [] in
      with_lock t (fun () ->
          t.ewma_attempt_s <-
            (0.8 *. t.ewma_attempt_s) +. (0.2 *. (now -. t0));
          if
            Atomic.get s.Session.attempt_token <> token
            || s.Session.state <> Session.Running
          then ((* failed over or force-terminated while we ran: stale *))
          else
            match outcome with
            | Ok (Session.Finished (stats, true)) ->
                s.Session.stats <- Some stats;
                terminal_locked t s Session.Completed ~notifications
            | Ok (Session.Finished (stats, false)) ->
                s.Session.stats <- Some stats;
                retry_or_fail_locked t s "incomplete broadcast" ~now
                  ~notifications
            | Ok Session.Deadline_expired ->
                retry_or_fail_locked t s "deadline expired" ~now ~notifications
            | Ok Session.Cancelled_by_client ->
                terminal_locked t s Session.Cancelled ~notifications
            | Error msg ->
                retry_or_fail_locked t s msg ~now ~notifications);
      flush_notifications t notifications

(* --- failover: a worker died or was deposed mid-attempt --- *)

let requeue_failover t s =
  let notifications = ref [] in
  with_lock t (fun () ->
      if s.Session.state = Session.Running then begin
        s.Session.failovers <- s.Session.failovers + 1;
        Monitor.incr t.monitor `Failovers;
        (* Invalidate the zombie's attempt before re-queueing. *)
        Atomic.incr s.Session.attempt_token;
        if s.Session.failovers > t.cfg.retry_budget + 1 then
          terminal_locked t s
            (Session.Failed "worker kept dying on this session")
            ~notifications
        else begin
          s.Session.state <- Session.Queued;
          try Mailbox.force_put t.mailbox s
          with Mailbox.Closed ->
            terminal_locked t s
              (Session.Failed "service shut down during failover")
              ~notifications
        end
      end);
  flush_notifications t notifications

(* --- admission --- *)

type admission =
  | Accepted of Session.t
  | Rejected of { reason : string; retry_after_ms : float }

let retry_after_ms t =
  let depth = Mailbox.length t.mailbox in
  let est =
    t.ewma_attempt_s
    *. Float.of_int (1 + (depth / max 1 t.cfg.workers))
    *. 1e3
  in
  Float.min 5000. (Float.max 5. est)

let occupancy t =
  Float.of_int (Mailbox.length t.mailbox)
  /. Float.of_int t.cfg.queue_capacity

(* Graceful degradation: shed optional work before shedding sessions.
   Tier 1 drops trace collection; tier 2 additionally downgrades the
   paper's bef (several times the per-round cost) to plain push&pull;
   tier 3 — a full queue — rejects with a retry hint. *)
let tier t =
  let occ = occupancy t in
  if occ >= 1.0 then 3
  else if occ >= t.cfg.shed_degrade_at then 2
  else if occ >= t.cfg.shed_trace_at then 1
  else 0

let submit ?(notify = false) ?(conn = -1) t spec =
  Monitor.incr t.monitor `Submitted;
  match Session.validate_spec spec with
  | Error reason ->
      Monitor.incr t.monitor `Rejected;
      Rejected { reason; retry_after_ms = 0. }
  | Ok spec ->
      let draining = with_lock t (fun () -> t.draining) in
      if draining then begin
        Monitor.incr t.monitor `Rejected;
        Rejected { reason = "draining"; retry_after_ms = 0. }
      end
      else begin
        let s =
          with_lock t (fun () ->
              let id = t.next_id in
              t.next_id <- id + 1;
              Session.make ~id ~now:(Unix.gettimeofday ()) ~notify ~conn spec)
        in
        (match tier t with
        | 0 -> ()
        | 1 -> s.Session.trace_enabled <- false
        | _ ->
            s.Session.trace_enabled <- false;
            if s.Session.protocol = "bef" || s.Session.protocol = "bef-seq"
            then begin
              s.Session.protocol <- "push-pull";
              s.Session.degraded <- true;
              Monitor.incr t.monitor `Degraded
            end);
        if Mailbox.try_put t.mailbox s then begin
          Monitor.incr t.monitor `Accepted;
          with_lock t (fun () -> Hashtbl.replace t.sessions s.Session.id s);
          Accepted s
        end
        else begin
          Monitor.incr t.monitor `Rejected;
          Rejected
            { reason = "overloaded"; retry_after_ms = retry_after_ms t }
        end
      end

let find t id = with_lock t (fun () -> Hashtbl.find_opt t.sessions id)

let cancel t id =
  let notifications = ref [] in
  let r =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.sessions id with
        | None -> false
        | Some s -> (
            match s.Session.state with
            | Session.Done _ -> false
            | Session.Running ->
                (* Cooperative: the attempt's round hook raises. *)
                Atomic.set s.Session.cancel true;
                true
            | Session.Queued | Session.Backoff ->
                Atomic.set s.Session.cancel true;
                terminal_locked t s Session.Cancelled ~notifications;
                true))
  in
  flush_notifications t notifications;
  r

(* --- ticker: retry promotion, watchdog, failsafe --- *)

let tick t ~now =
  (match t.supervisor with
  | Some sup -> Supervisor.scan sup ~now
  | None -> ());
  let notifications = ref [] in
  with_lock t (fun () ->
      let due, waiting =
        List.partition
          (fun s ->
            s.Session.state <> Session.Backoff
            || s.Session.not_before <= now)
          t.backoff
      in
      t.backoff <- waiting;
      List.iter
        (fun s ->
          if s.Session.state = Session.Backoff then
            if Atomic.get s.Session.cancel then
              terminal_locked t s Session.Cancelled ~notifications
            else begin
              s.Session.state <- Session.Queued;
              try Mailbox.force_put t.mailbox s
              with Mailbox.Closed ->
                terminal_locked t s
                  (Session.Failed "service shut down during backoff")
                  ~notifications
            end)
        due);
  Monitor.observe_queue t.monitor (Mailbox.length t.mailbox);
  (* Failsafe: if the breaker retired every worker, queued work would
     wait forever — fail it explicitly instead (no session lost). *)
  (match t.supervisor with
  | Some sup when Supervisor.live_workers sup = 0 && Supervisor.breaker_open sup
    ->
      let rec drain_dead () =
        match Mailbox.take_opt t.mailbox with
        | None -> ()
        | Some s ->
            with_lock t (fun () ->
                if not (Session.is_terminal s) then
                  terminal_locked t s
                    (Session.Failed "no workers: restart breaker open")
                    ~notifications);
            drain_dead ()
      in
      drain_dead ()
  | _ -> ());
  flush_notifications t notifications

let ticker_loop t () =
  while not (Atomic.get t.ticker_stop) do
    (try tick t ~now:(Unix.gettimeofday ()) with _ -> ());
    Thread.delay t.cfg.tick_s
  done

(* --- lifecycle --- *)

let create ?(on_terminal = fun _ -> ()) cfg =
  let t =
    {
      cfg;
      mutex = Mutex.create ();
      sessions = Hashtbl.create 256;
      next_id = 1;
      backoff = [];
      draining = false;
      ewma_attempt_s = 0.01;
      rng = Rng.create 0x5e7e;
      mailbox = Mailbox.create ~capacity:cfg.queue_capacity;
      monitor =
        Monitor.create ~queue_bound:cfg.queue_capacity
          ~restart_cap:cfg.max_restarts ();
      latency = Latency.create ();
      topo_mutex = Mutex.create ();
      topologies = Hashtbl.create 8;
      on_terminal;
      ticker_stop = Atomic.make false;
      ticker = None;
      supervisor = None;
    }
  in
  let sup =
    Supervisor.create
      ~config:
        (Supervisor.config ~workers:cfg.workers
           ~heartbeat_timeout_s:cfg.heartbeat_timeout_s
           ~max_restarts:cfg.max_restarts
           ~restart_window_s:cfg.restart_window_s ())
      ~mailbox:t.mailbox
      ~handle:(fun ~beat s -> handle_attempt t ~beat s)
      ~on_failover:(fun s -> requeue_failover t s)
      ~on_restart:(fun () -> Monitor.note_restart t.monitor)
      ~on_deposed:(fun () -> Monitor.incr t.monitor `Deposed)
      ()
  in
  t.supervisor <- Some sup;
  t.ticker <- Some (Thread.create (ticker_loop t) ());
  t

let queue_length t = Mailbox.length t.mailbox
let in_flight t = with_lock t (fun () -> in_flight_locked t)
let ewma_attempt_s t = with_lock t (fun () -> t.ewma_attempt_s)

let drain t = with_lock t (fun () -> t.draining <- true)

let stats_json t =
  let sup = Option.get t.supervisor in
  let now = Unix.gettimeofday () in
  Json.Obj
    [
      ("monitor", Monitor.to_json t.monitor);
      ("queue", Json.Int (Mailbox.length t.mailbox));
      ("queue_capacity", Json.Int t.cfg.queue_capacity);
      ("queue_high_water", Json.Int (Mailbox.high_water t.mailbox));
      ("tier", Json.Int (tier t));
      ("in_flight", Json.Int (in_flight t));
      ("workers", Json.Int (Supervisor.live_workers sup));
      ("busy", Json.Int (Supervisor.busy_count sup));
      ("breaker_open", Json.Bool (Supervisor.breaker_open sup));
      ("restarts_in_window", Json.Int (Supervisor.restarts_in_window sup ~now));
      ("ewma_attempt_ms", Json.Float (ewma_attempt_s t *. 1e3));
      ("latency", Latency.to_json t.latency);
      ("draining", Json.Bool (with_lock t (fun () -> t.draining)));
    ]

(* Drain, wait for in-flight work, cancel stragglers, stop the pool and
   the ticker. Returns true iff everything wound down inside the
   timeout and the monitor saw no violation. *)
let shutdown t ~timeout_s =
  drain t;
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec settle () =
    if in_flight t = 0 then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.02;
      settle ()
    end
  in
  let settled = settle () in
  if not settled then begin
    (* Cancel cooperatively, give stragglers a moment, then force-fail
       what remains so every accepted session still reaches a terminal
       state. *)
    with_lock t (fun () ->
        Hashtbl.iter
          (fun _ s ->
            if not (Session.is_terminal s) then
              Atomic.set s.Session.cancel true)
          t.sessions);
    let grace = Unix.gettimeofday () +. Float.min 2. timeout_s in
    let rec wait_grace () =
      if in_flight t = 0 || Unix.gettimeofday () > grace then ()
      else begin
        Thread.delay 0.02;
        wait_grace ()
      end
    in
    wait_grace ();
    let notifications = ref [] in
    with_lock t (fun () ->
        Hashtbl.iter
          (fun _ s ->
            if not (Session.is_terminal s) then
              terminal_locked t s
                (Session.Failed "shutdown timeout")
                ~notifications)
          t.sessions;
        t.backoff <- []);
    flush_notifications t notifications
  end;
  let sup = Option.get t.supervisor in
  Supervisor.begin_drain sup;
  Mailbox.close t.mailbox;
  let workers_clean = Supervisor.drain sup ~timeout_s:(Float.max 1. timeout_s) in
  Atomic.set t.ticker_stop true;
  Option.iter Thread.join t.ticker;
  ignore (Monitor.reconcile t.monitor ~in_flight:(in_flight t));
  settled && workers_clean && Monitor.ok t.monitor
