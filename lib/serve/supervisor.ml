(* Worker-domain pool with restart-on-crash and wedge detection.

   OCaml has no [Domain.kill], so a wedged domain cannot be destroyed —
   it can only be *deposed*: marked so that whatever it eventually does
   is ignored, its in-flight session failed over to the pool, and a
   replacement spawned in its slot. The watchdog tells wedged from
   merely slow by heartbeat staleness: workers beat once per simulated
   round, and only a *busy* worker can be stale (an idle worker blocked
   on the mailbox has nothing to beat about and nothing to wedge on).

   Crashes are simpler: the domain body catches everything, so a crash
   leaves [exited] set with [busy] still holding the session — the scan
   reaps the domain (join is instant once exited), fails the session
   over, and respawns if the restart-intensity circuit breaker allows.

   The scan runs on the service's single ticker thread; all pool
   mutation happens under [mutex], so there is exactly one writer to
   the slot table. *)

type config = {
  workers : int;
  heartbeat_timeout_s : float;
  max_restarts : int;  (** restarts allowed inside the sliding window *)
  restart_window_s : float;
}

let config ?(workers = 4) ?(heartbeat_timeout_s = 0.25) ?(max_restarts = 8)
    ?(restart_window_s = 60.) () =
  if workers < 1 then invalid_arg "Supervisor.config: workers < 1";
  if heartbeat_timeout_s <= 0. then
    invalid_arg "Supervisor.config: heartbeat_timeout_s <= 0";
  if max_restarts < 0 then invalid_arg "Supervisor.config: max_restarts < 0";
  if restart_window_s <= 0. then
    invalid_arg "Supervisor.config: restart_window_s <= 0";
  { workers; heartbeat_timeout_s; max_restarts; restart_window_s }

type worker = {
  slot : int;
  gen : int;
  beat_at : float Atomic.t;
  busy : Session.t option Atomic.t;
  deposed : bool Atomic.t;
  exited : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

type t = {
  cfg : config;
  mailbox : Session.t Mailbox.t;
  handle : beat:(unit -> unit) -> Session.t -> unit;
  on_failover : Session.t -> unit;
  on_restart : unit -> unit;
  on_deposed : unit -> unit;
  slots : worker option array;
  mutable zombies : worker list;  (** deposed workers not yet exited/joined *)
  mutable restart_times : float list;  (** newest first *)
  mutable breaker_open : bool;
  mutable draining : bool;
  mutex : Mutex.t;
}

let worker_body t w () =
  let beat () = Atomic.set w.beat_at (Unix.gettimeofday ()) in
  let rec loop () =
    if not (Atomic.get w.deposed) then
      match Mailbox.take t.mailbox with
      | None -> ()
      | Some s ->
          Atomic.set w.busy (Some s);
          beat ();
          t.handle ~beat s;
          Atomic.set w.busy None;
          loop ()
  in
  (* A crash (e.g. [Session.Crash_injected]) unwinds past the loop with
     [busy] still set — exactly the state the scan reads as "crashed
     mid-session". *)
  (try loop () with _ -> ());
  Atomic.set w.exited true

(* callers hold t.mutex *)
let spawn_locked t slot gen =
  let w =
    {
      slot;
      gen;
      beat_at = Atomic.make (Unix.gettimeofday ());
      busy = Atomic.make None;
      deposed = Atomic.make false;
      exited = Atomic.make false;
      domain = None;
    }
  in
  t.slots.(slot) <- Some w;
  w.domain <- Some (Domain.spawn (worker_body t w));
  w

let create ~config:cfg ~mailbox ~handle ~on_failover ~on_restart ~on_deposed ()
    =
  let t =
    {
      cfg;
      mailbox;
      handle;
      on_failover;
      on_restart;
      on_deposed;
      slots = Array.make cfg.workers None;
      zombies = [];
      restart_times = [];
      breaker_open = false;
      draining = false;
      mutex = Mutex.create ();
    }
  in
  Mutex.lock t.mutex;
  for slot = 0 to cfg.workers - 1 do
    ignore (spawn_locked t slot 0)
  done;
  Mutex.unlock t.mutex;
  t

(* holds t.mutex *)
let breaker_allows t ~now =
  t.restart_times <-
    List.filter (fun ts -> now -. ts <= t.cfg.restart_window_s) t.restart_times;
  if t.breaker_open then false
  else if List.length t.restart_times >= t.cfg.max_restarts then begin
    t.breaker_open <- true;
    false
  end
  else true

(* holds t.mutex *)
let restart_locked t ~now ~slot ~gen =
  if t.draining then t.slots.(slot) <- None
  else if breaker_allows t ~now then begin
    t.restart_times <- now :: t.restart_times;
    t.on_restart ();
    ignore (spawn_locked t slot (gen + 1))
  end
  else t.slots.(slot) <- None

let scan t ~now =
  Mutex.lock t.mutex;
  (* Reap exited zombies: deposed workers that finally unwound. *)
  let live_zombies =
    List.filter
      (fun z ->
        if Atomic.get z.exited then begin
          Option.iter Domain.join z.domain;
          false
        end
        else true)
      t.zombies
  in
  t.zombies <- live_zombies;
  Array.iteri
    (fun slot -> function
      | None -> ()
      | Some w ->
          if Atomic.get w.exited then begin
            (* Crashed (a clean drain exit only happens after [close],
               i.e. with [draining] set and [busy] empty). *)
            Option.iter Domain.join w.domain;
            (match Atomic.exchange w.busy None with
            | Some s -> t.on_failover s
            | None -> ());
            restart_locked t ~now ~slot ~gen:w.gen
          end
          else
            match Atomic.get w.busy with
            | Some _
              when now -. Atomic.get w.beat_at > t.cfg.heartbeat_timeout_s ->
                (* Wedged: depose, fail the session over, replace. The
                   zombie keeps running until its attempt unwinds; its
                   stale attempt token makes anything it reports a
                   no-op. *)
                Atomic.set w.deposed true;
                (match Atomic.exchange w.busy None with
                | Some s -> t.on_failover s
                | None -> ());
                t.zombies <- w :: t.zombies;
                t.on_deposed ();
                restart_locked t ~now ~slot ~gen:w.gen
            | _ -> ())
    t.slots;
  Mutex.unlock t.mutex

let live_workers t =
  Mutex.lock t.mutex;
  let n =
    Array.fold_left (fun acc -> function Some _ -> acc + 1 | None -> acc) 0
      t.slots
  in
  Mutex.unlock t.mutex;
  n

let busy_count t =
  Mutex.lock t.mutex;
  let n =
    Array.fold_left
      (fun acc -> function
        | Some w when Atomic.get w.busy <> None -> acc + 1
        | _ -> acc)
      0 t.slots
  in
  Mutex.unlock t.mutex;
  n

let breaker_open t =
  Mutex.lock t.mutex;
  let b = t.breaker_open in
  Mutex.unlock t.mutex;
  b

let restarts_in_window t ~now =
  Mutex.lock t.mutex;
  let n =
    List.length
      (List.filter
         (fun ts -> now -. ts <= t.cfg.restart_window_s)
         t.restart_times)
  in
  Mutex.unlock t.mutex;
  n

(* Must precede [Mailbox.close]: once the mailbox is closed workers
   exit cleanly, and a scan that still believes the pool is live would
   read those exits as crashes and respawn into a closed mailbox — a
   restart storm. *)
let begin_drain t =
  Mutex.lock t.mutex;
  t.draining <- true;
  Mutex.unlock t.mutex

(* Precondition: [begin_drain] called and the mailbox closed (workers
   drain it and exit). *)
let drain t ~timeout_s =
  begin_drain t;
  let deadline = Unix.gettimeofday () +. timeout_s in
  let all_exited () =
    Mutex.lock t.mutex;
    let slots_done =
      Array.for_all
        (function None -> true | Some w -> Atomic.get w.exited)
        t.slots
    and zombies_done =
      List.for_all (fun z -> Atomic.get z.exited) t.zombies
    in
    Mutex.unlock t.mutex;
    slots_done && zombies_done
  in
  let rec wait () =
    if all_exited () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Mailbox.wake t.mailbox;
      Unix.sleepf 0.01;
      wait ()
    end
  in
  let clean = wait () in
  (* Join whatever has exited (instant); leave genuinely wedged domains
     un-joined rather than blocking shutdown on them. *)
  Mutex.lock t.mutex;
  Array.iteri
    (fun slot -> function
      | Some w when Atomic.get w.exited ->
          Option.iter Domain.join w.domain;
          t.slots.(slot) <- None
      | _ -> ())
    t.slots;
  t.zombies <-
    List.filter
      (fun z ->
        if Atomic.get z.exited then begin
          Option.iter Domain.join z.domain;
          false
        end
        else true)
      t.zombies;
  Mutex.unlock t.mutex;
  clean
