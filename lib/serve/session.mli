(** A broadcast session: one client request multiplexed onto the worker
    pool.

    Sessions move through [Queued -> Running -> (Backoff -> Queued ->
    Running)* -> Done _]; every accepted session reaches exactly one
    terminal outcome ([Completed | Failed | Shed | Cancelled]) — the
    no-session-lost invariant the {!Monitor} enforces. Deadlines derive
    from the paper's round bound: [factor * ceil_log2 n] rounds at a
    declared per-round wall budget, so an attempt that blows its budget
    is cancelled and retried (randomized exponential backoff, shared
    policy with [Rumor_core.Repair]) rather than allowed to squat on a
    worker.

    Mutable fields are guarded by the owning service's mutex; [cancel]
    and [attempt_token] are atomics read from worker domains. *)

type spec = {
  n : int;
  d : int;
  protocol : string;
  topology : string;
  seed : int;
  alpha : float;
  fanout : int;
  link_loss : float;
  burst_loss : float;
  burst_len : float;
  crash_worker : bool;  (** fault injection: kill the worker domain mid-run *)
  wedge_ms : float;  (** fault injection: stall without heartbeating *)
  deadline_ms : float option;  (** per-attempt wall budget; [None] = derived *)
  collect_trace : bool;
  client_ref : string option;
}

val default_spec : spec
(** [n 4096, d 8, push-pull on implicit-regular, seed 1, no faults]. *)

val protocols : string list
val topologies : string list

val max_n : int
(** Admission ceiling on [n] for materialised topologies ([2^20]) —
    bounds one session's graph-cache memory. *)

val max_implicit_n : int
(** Admission ceiling on [n] for [implicit-*] topologies ([10^8]): no
    graph is built and packed per-node state keeps a run at bytes per
    node, so the cap is the simulation frontier, not the cache. *)

val validate_spec : spec -> (spec, string) result
(** Range-check every field (the wire is hostile input). *)

type outcome = Completed | Failed of string | Shed | Cancelled

type state = Queued | Running | Backoff | Done of outcome

type run_stats = {
  rounds : int;
  informed : int;
  population : int;
  transmissions : int;
}

type t = {
  id : int;
  spec : spec;
  submitted_at : float;
  mutable state : state;
  mutable protocol : string;
  mutable degraded : bool;
  mutable trace_enabled : bool;
  mutable attempts : int;
  mutable retries : int;
  mutable failovers : int;
  mutable not_before : float;
  mutable finished_at : float;
  mutable last_error : string option;
  mutable stats : run_stats option;
  attempt_token : int Atomic.t;
  cancel : bool Atomic.t;
  notify : bool;
  conn : int;
}

val make : id:int -> now:float -> notify:bool -> conn:int -> spec -> t

val state_name : state -> string
(** [queued|running|backoff|completed|failed|shed|cancelled]. *)

val is_terminal : t -> bool

val latency_s : t -> float
(** Submission-to-terminal wall time; 0 until terminal. *)

val ceil_log2 : int -> int

val deadline_s :
  deadline_factor:float -> round_budget_us:float -> spec -> float
(** The per-attempt wall budget in seconds: the spec's explicit
    [deadline_ms] if given, else [factor * ceil_log2 n *
    round_budget_us]. *)

type attempt_outcome =
  | Finished of run_stats * bool  (** stats, success (all live informed) *)
  | Deadline_expired
  | Cancelled_by_client

exception Crash_injected
(** Simulated worker crash (from [crash_worker] specs): deliberately
    escapes the worker loop so the domain dies and the supervisor's
    failover + restart path runs. *)

val exec :
  topology:Rumor_sim.Topology.t ->
  deadline_factor:float ->
  round_budget_us:float ->
  beat:(unit -> unit) ->
  t ->
  attempt_outcome
(** Run one attempt. [topology] must be read-only for the duration (the
    service's cache guarantees it); [beat] is called once per round so
    the watchdog can distinguish slow from wedged. Attempt [k] uses
    stream [fork spec.seed k], so a retried session is a fresh
    independent run, reproducible from the spec alone.
    @raise Crash_injected when the spec asks for it (first attempt). *)
