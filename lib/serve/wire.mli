(** NDJSON wire codec for [rumor serve] — one JSON object per line.

    Requests: [submit] (spec fields + [notify]), [poll]/[cancel] (by
    [id]), [stats], [shutdown], [ping]. This is the hostile boundary:
    parsing caps nesting depth, whitelists ops {e and} fields (a
    misspelled field is an error, not silently ignored), and range
    checks every spec value via {!Session.validate_spec}. The codec is
    pure — framing (line splitting, length caps) lives in
    {!Server}. *)

type request =
  | Submit of Session.spec * bool  (** spec, notify *)
  | Poll of int
  | Cancel of int
  | Stats
  | Shutdown
  | Ping

val max_depth : int
(** Nesting bound handed to [Json.of_string] (32; real requests have
    depth 1). *)

val id_to_string : int -> string
(** Session ids travel as ["s-<n>"]. *)

val id_of_string : string -> int option

val parse_request : string -> (request, string) result

(** {2 Response encoders} *)

val submitted : Session.t -> Rumor_obs.Json.t
val rejected :
  ?client_ref:string -> reason:string -> retry_after_ms:float -> unit ->
  Rumor_obs.Json.t

val status : Session.t -> Rumor_obs.Json.t
(** Poll response: state, attempts/retries/failovers, terminal latency,
    last error, run result when finished. *)

val event : Session.t -> Rumor_obs.Json.t
(** Push notification ([{"event":"session", ...}]) sent on terminal
    transitions of sessions submitted with [notify]. *)

val stats : service:Rumor_obs.Json.t -> Rumor_obs.Json.t
val pong : Rumor_obs.Json.t
val draining : Rumor_obs.Json.t
val error : string -> Rumor_obs.Json.t
val not_found : int -> Rumor_obs.Json.t

val to_line : Rumor_obs.Json.t -> string
(** Minified rendering plus the terminating newline. *)

(** Newline framing over raw reads, with a line-length cap (default
    1 MiB) as input hardening: a peer that never sends a newline
    poisons the buffer ({!Linebuf.overflowed}) instead of growing it
    without bound, and the connection should then be dropped. *)
module Linebuf : sig
  type t

  val create : ?max_line:int -> unit -> t
  val feed : t -> bytes -> int -> int -> string list
  (** Feed a chunk; returns completed lines (terminators stripped,
      CRLF tolerated). Returns [[]] forever once overflowed. *)

  val overflowed : t -> bool
end
