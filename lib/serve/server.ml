module Json = Rumor_obs.Json

(* The [rumor serve] frontend: a select-based NDJSON loop over stdio or
   a Unix socket, driving one {!Service}.

   Single-threaded I/O: worker domains never touch a file descriptor.
   Terminal notifications are queued by the service's [on_terminal]
   callback (which runs on worker domains) and flushed by the main loop
   each iteration, so a slow client can delay events but can never
   block or wedge a worker — the supervisor's watchdog must not be able
   to mistake a stalled client for a stalled computation.

   Shutdown: SIGTERM/SIGINT, a wire [shutdown] op, or EOF on stdin all
   start a drain — admission closes (new submits are rejected with
   ["draining"]), in-flight sessions finish and their events are
   delivered, then the service shuts down and the process exits 0 if
   everything wound down cleanly (every domain joined, no invariant
   violation), 1 otherwise. A hard-kill timeout bounds the drain. *)

type transport = Stdio | Unix_socket of string | Fd of Unix.file_descr

type conn = {
  cid : int;
  fd_in : Unix.file_descr;
  fd_out : Unix.file_descr;
  lines : Wire.Linebuf.t;
  mutable alive : bool;
}

type state = {
  service : Service.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_cid : int;
  events : (int * string) Queue.t;  (* conn id, wire line *)
  events_mutex : Mutex.t;
  shutdown_req : bool Atomic.t;
}

let enqueue_event st (s : Session.t) =
  if s.Session.notify && s.Session.conn >= 0 then begin
    let line = Wire.to_line (Wire.event s) in
    Mutex.lock st.events_mutex;
    Queue.push (s.Session.conn, line) st.events;
    Mutex.unlock st.events_mutex
  end

let write_line conn line =
  if conn.alive then
    try
      let b = Bytes.of_string line in
      let n = Unix.write conn.fd_out b 0 (Bytes.length b) in
      if n < Bytes.length b then conn.alive <- false
    with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false

let flush_events st =
  let pending =
    Mutex.lock st.events_mutex;
    let l = List.of_seq (Queue.to_seq st.events) in
    Queue.clear st.events;
    Mutex.unlock st.events_mutex;
    l
  in
  List.iter
    (fun (cid, line) ->
      match Hashtbl.find_opt st.conns cid with
      | Some conn -> write_line conn line
      | None -> ())
    pending

let handle_line st conn line =
  if String.trim line = "" then ()
  else
    let reply =
      match Wire.parse_request line with
      | Error e -> Wire.error e
      | Ok (Wire.Ping) -> Wire.pong
      | Ok Wire.Stats -> Wire.stats ~service:(Service.stats_json st.service)
      | Ok Wire.Shutdown ->
          Atomic.set st.shutdown_req true;
          Wire.draining
      | Ok (Wire.Poll id) -> (
          match Service.find st.service id with
          | Some s -> Wire.status s
          | None -> Wire.not_found id)
      | Ok (Wire.Cancel id) -> (
          match Service.find st.service id with
          | Some s ->
              ignore (Service.cancel st.service id);
              Wire.status s
          | None -> Wire.not_found id)
      | Ok (Wire.Submit (spec, notify)) -> (
          match Service.submit ~notify ~conn:conn.cid st.service spec with
          | Service.Accepted s -> Wire.submitted s
          | Service.Rejected { reason; retry_after_ms } ->
              Wire.rejected ?client_ref:spec.Session.client_ref ~reason
                ~retry_after_ms ())
    in
    write_line conn (Wire.to_line reply)

let close_conn st conn =
  conn.alive <- false;
  Hashtbl.remove st.conns conn.cid;
  (* Never close the process's own stdio. *)
  if conn.fd_in <> Unix.stdin then (try Unix.close conn.fd_in with _ -> ())

let add_conn st ~fd_in ~fd_out =
  let cid = st.next_cid in
  st.next_cid <- cid + 1;
  let conn =
    { cid; fd_in; fd_out; lines = Wire.Linebuf.create (); alive = true }
  in
  Hashtbl.replace st.conns cid conn;
  conn

let read_conn st conn ~stdio =
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd_in buf 0 (Bytes.length buf) with
  | 0 ->
      (* EOF: on stdio that is the client's drain request. *)
      close_conn st conn;
      if stdio then Atomic.set st.shutdown_req true
  | n ->
      let lines = Wire.Linebuf.feed conn.lines buf 0 n in
      List.iter (fun l -> handle_line st conn l) lines;
      if Wire.Linebuf.overflowed conn.lines then begin
        write_line conn (Wire.to_line (Wire.error "line too long"));
        close_conn st conn;
        if stdio then Atomic.set st.shutdown_req true
      end
  | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()
  | exception Unix.Unix_error _ ->
      close_conn st conn;
      if stdio then Atomic.set st.shutdown_req true

let run ?(config = Service.config ()) ?(drain_timeout_s = 30.)
    ?(quiet = false) ?(signals = true) transport =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* The service's terminal callback needs the server state, which
     needs the service: tie the knot through a ref, written before any
     session can possibly terminate. *)
  let st_ref = ref None in
  let service =
    Service.create
      ~on_terminal:(fun s ->
        match !st_ref with Some st -> enqueue_event st s | None -> ())
      config
  in
  let st =
    {
      service;
      conns = Hashtbl.create 8;
      next_cid = 0;
      events = Queue.create ();
      events_mutex = Mutex.create ();
      shutdown_req = Atomic.make false;
    }
  in
  st_ref := Some st;
  (* [signals = false] runs the server as a guest inside another
     process (an in-process matrix/load cell): the host owns
     SIGTERM/SIGINT — clobbering its handlers would break its own
     graceful interruption. EOF on the primary connection still drains. *)
  let request_shutdown _ = Atomic.set st.shutdown_req true in
  let old_handlers =
    if signals then
      Some
        ( Sys.signal Sys.sigterm (Sys.Signal_handle request_shutdown),
          Sys.signal Sys.sigint (Sys.Signal_handle request_shutdown) )
    else None
  in
  let listener =
    match transport with
    | Stdio ->
        ignore (add_conn st ~fd_in:Unix.stdin ~fd_out:Unix.stdout);
        None
    | Fd fd ->
        ignore (add_conn st ~fd_in:fd ~fd_out:fd);
        None
    | Unix_socket path ->
        if Sys.file_exists path then Unix.unlink path;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 16;
        Some (fd, path)
  in
  (* The primary connection: EOF on it is the client's drain request. *)
  let stdio = match transport with Stdio | Fd _ -> true | Unix_socket _ -> false in
  if not quiet then
    prerr_endline
      (Printf.sprintf "rumor-serve: listening (%s), %d workers, queue %d"
         (match transport with
         | Stdio -> "stdio"
         | Fd _ -> "fd"
         | Unix_socket p -> "socket " ^ p)
         config.Service.workers config.Service.queue_capacity);
  let draining = ref false in
  let hard_deadline = ref infinity in
  let running = ref true in
  while !running do
    flush_events st;
    if Atomic.get st.shutdown_req && not !draining then begin
      draining := true;
      hard_deadline := Unix.gettimeofday () +. drain_timeout_s;
      Service.drain st.service;
      if not quiet then
        prerr_endline
          (Printf.sprintf "rumor-serve: draining (%d in flight)"
             (Service.in_flight st.service))
    end;
    let now = Unix.gettimeofday () in
    if !draining && (Service.in_flight st.service = 0 || now > !hard_deadline)
    then running := false
    else begin
      let fds =
        (match listener with Some (fd, _) -> [ fd ] | None -> [])
        @ Hashtbl.fold (fun _ c acc -> c.fd_in :: acc) st.conns []
      in
      match Unix.select fds [] [] 0.01 with
      | readable, _, _ ->
          List.iter
            (fun fd ->
              match listener with
              | Some (lfd, _) when fd = lfd ->
                  let cfd, _ = Unix.accept lfd in
                  ignore (add_conn st ~fd_in:cfd ~fd_out:cfd)
              | _ -> (
                  match
                    Hashtbl.fold
                      (fun _ c acc -> if c.fd_in = fd then Some c else acc)
                      st.conns None
                  with
                  | Some conn -> read_conn st conn ~stdio
                  | None -> ()))
            readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  (* In-flight work settled (or the hard deadline hit): wind the
     service down, deliver the final events, report. *)
  let clean = Service.shutdown st.service ~timeout_s:5. in
  flush_events st;
  let stats = Service.stats_json st.service in
  if not quiet then
    prerr_endline ("rumor-serve: final " ^ Json.to_string stats);
  Hashtbl.iter
    (fun _ c ->
      write_line c (Wire.to_line (Wire.stats ~service:stats));
      if c.fd_in <> Unix.stdin then try Unix.close c.fd_in with _ -> ())
    st.conns;
  (match listener with
  | Some (fd, path) ->
      (try Unix.close fd with _ -> ());
      if Sys.file_exists path then ( try Unix.unlink path with _ -> ())
  | None -> ());
  (match old_handlers with
  | Some (old_term, old_int) ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int
  | None -> ());
  if clean then 0 else 1
