module Json = Rumor_obs.Json
module Latency = Rumor_obs.Latency

(* The [rumor load] generator: a single-threaded NDJSON client that
   drives one serve endpoint at a target rate (open loop — submissions
   keep coming whether or not the service keeps up, which is what makes
   overload and backpressure observable) or at a fixed concurrency
   (closed loop), injects per-session faults on a schedule, and
   accounts for every submission: each one ends as rejected, terminal
   (completed/failed/shed/cancelled), lost (accepted but never heard
   from again — the service's cardinal sin) or unacked (no response to
   the submit itself). Latency is measured submit-to-terminal-event at
   the client, which includes queueing — the number a user of the
   service would experience. *)

type cfg = {
  rate : float;  (** open-loop target, sessions/sec *)
  duration_s : float;
  closed : int option;  (** closed loop at this concurrency instead *)
  spec : Session.spec;  (** template; per-session seed = seed + k *)
  crash_every : int;  (** every k-th session asks to crash its worker; 0 off *)
  wedge_every : int;  (** every k-th session wedges its worker; 0 off *)
  wedge_ms : float;
  settle_timeout_s : float;  (** grace for stragglers after the window *)
}

let cfg ?(rate = 100.) ?(duration_s = 10.) ?closed
    ?(spec = Session.default_spec) ?(crash_every = 0) ?(wedge_every = 0)
    ?(wedge_ms = 400.) ?(settle_timeout_s = 30.) () =
  if rate <= 0. then invalid_arg "Load.cfg: rate <= 0";
  if duration_s <= 0. then invalid_arg "Load.cfg: duration_s <= 0";
  (match closed with
  | Some c when c < 1 -> invalid_arg "Load.cfg: closed < 1"
  | _ -> ());
  if crash_every < 0 || wedge_every < 0 then
    invalid_arg "Load.cfg: fault cadence < 0";
  { rate; duration_s; closed; spec; crash_every; wedge_every; wedge_ms;
    settle_timeout_s }

type report = {
  wall_s : float;
  submitted : int;
  accepted : int;
  rejected : int;
  completed : int;
  failed : int;
  shed : int;
  cancelled : int;
  degraded : int;
  unacked : int;  (** submits that never got any response *)
  lost : int;  (** accepted sessions that never reached a terminal event *)
  protocol_errors : int;
  latency : Latency.t;
  achieved_rate : float;  (** terminal sessions per second of wall time *)
  server_stats : Json.t option;
  server_ok : bool;  (** server monitor reported ok at the end *)
}

(* --- tiny Json accessors (responses come from our own server, but a
   load tool should still not crash on a weird line) --- *)

let jfield j name =
  match j with Json.Obj fs -> List.assoc_opt name fs | _ -> None

let jstring = function Some (Json.String s) -> Some s | _ -> None
let jbool = function Some (Json.Bool b) -> Some b | _ -> None

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

type pending = Sent | Acked of string (* session id *)

type driver = {
  cfg : cfg;
  fd : Unix.file_descr;
  lines : Wire.Linebuf.t;
  outstanding : (string, float * pending ref) Hashtbl.t;  (* ref -> sent_at *)
  latency : Latency.t;
  mutable submitted : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable failed : int;
  mutable shed : int;
  mutable cancelled : int;
  mutable degraded : int;
  mutable protocol_errors : int;
  mutable server_stats : Json.t option;
}

let send d line =
  let b = Bytes.of_string line in
  ignore (Unix.write d.fd b 0 (Bytes.length b))

let submit_line d k =
  let spec = d.cfg.spec in
  let crash =
    d.cfg.crash_every > 0 && k mod d.cfg.crash_every = d.cfg.crash_every - 1
  in
  let wedge =
    d.cfg.wedge_every > 0 && k mod d.cfg.wedge_every = d.cfg.wedge_every - 1
  in
  let fields =
    [
      ("op", Json.String "submit");
      ("n", Json.Int spec.Session.n);
      ("d", Json.Int spec.Session.d);
      ("protocol", Json.String spec.Session.protocol);
      ("topology", Json.String spec.Session.topology);
      ("seed", Json.Int (spec.Session.seed + k));
      ("alpha", Json.Float spec.Session.alpha);
      ("fanout", Json.Int spec.Session.fanout);
      ("link_loss", Json.Float spec.Session.link_loss);
      ("burst_loss", Json.Float spec.Session.burst_loss);
      ("burst_len", Json.Float spec.Session.burst_len);
      ("crash_worker", Json.Bool crash);
      ("wedge_ms", Json.Float (if wedge then d.cfg.wedge_ms else 0.));
      ("ref", Json.String (Printf.sprintf "c-%d" k));
      ("notify", Json.Bool true);
    ]
  in
  Wire.to_line (Json.Obj fields)

let record_terminal d ~state ~ref_ ~now =
  match Hashtbl.find_opt d.outstanding ref_ with
  | None -> ()
  | Some (sent_at, _) ->
      Hashtbl.remove d.outstanding ref_;
      Latency.add d.latency (now -. sent_at);
      (match state with
      | "completed" -> d.completed <- d.completed + 1
      | "failed" -> d.failed <- d.failed + 1
      | "shed" -> d.shed <- d.shed + 1
      | "cancelled" -> d.cancelled <- d.cancelled + 1
      | _ -> d.protocol_errors <- d.protocol_errors + 1)

let is_terminal_state = function
  | "completed" | "failed" | "shed" | "cancelled" -> true
  | _ -> false

let handle_line d line ~now =
  if String.trim line = "" then ()
  else
    match Json.of_string ~max_depth:Wire.max_depth line with
    | Error _ -> d.protocol_errors <- d.protocol_errors + 1
    | Ok j -> (
        let ref_ = jstring (jfield j "ref") in
        let state = jstring (jfield j "state") in
        match jstring (jfield j "event") with
        | Some "session" -> (
            (* terminal push notification *)
            match (ref_, state) with
            | Some r, Some st when is_terminal_state st ->
                if jbool (jfield j "degraded") = Some true then
                  d.degraded <- d.degraded + 1;
                record_terminal d ~state:st ~ref_:r ~now
            | _ -> d.protocol_errors <- d.protocol_errors + 1)
        | Some _ -> d.protocol_errors <- d.protocol_errors + 1
        | None -> (
            match jstring (jfield j "op") with
            | Some "submit" -> (
                match (jbool (jfield j "ok"), ref_) with
                | Some true, Some r -> (
                    d.accepted <- d.accepted + 1;
                    match
                      (Hashtbl.find_opt d.outstanding r,
                       jstring (jfield j "id"))
                    with
                    | Some (_, p), Some id -> p := Acked id
                    | _ -> ())
                | Some false, Some r ->
                    d.rejected <- d.rejected + 1;
                    Hashtbl.remove d.outstanding r
                | _ ->
                    (* rejection without a ref: a submit so malformed the
                       server could not echo it — count and move on *)
                    d.rejected <- d.rejected + 1)
            | Some "poll" -> (
                (* straggler poll during settle *)
                match (ref_, state) with
                | Some r, Some st when is_terminal_state st ->
                    record_terminal d ~state:st ~ref_:r ~now
                | _ -> ())
            | Some "stats" -> d.server_stats <- jfield j "stats"
            | Some "ping" | Some "shutdown" -> ()
            | _ -> d.protocol_errors <- d.protocol_errors + 1))

let pump d ~timeout ~now =
  match Unix.select [ d.fd ] [] [] timeout with
  | [], _, _ -> ()
  | _ :: _, _, _ -> (
      let buf = Bytes.create 65536 in
      match Unix.read d.fd buf 0 (Bytes.length buf) with
      | 0 -> raise End_of_file
      | n ->
          List.iter
            (fun l -> handle_line d l ~now:(now ()))
            (Wire.Linebuf.feed d.lines buf 0 n))
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let run cfg ~fd =
  let d =
    {
      cfg;
      fd;
      lines = Wire.Linebuf.create ();
      outstanding = Hashtbl.create 1024;
      latency = Latency.create ();
      submitted = 0;
      accepted = 0;
      rejected = 0;
      completed = 0;
      failed = 0;
      shed = 0;
      cancelled = 0;
      degraded = 0;
      protocol_errors = 0;
      server_stats = None;
    }
  in
  let start = Unix.gettimeofday () in
  let now () = Unix.gettimeofday () in
  let submit_one () =
    let k = d.submitted in
    let line = submit_line d k in
    Hashtbl.replace d.outstanding
      (Printf.sprintf "c-%d" k)
      (now (), ref Sent);
    d.submitted <- d.submitted + 1;
    send d line
  in
  (try
     (* --- the load window --- *)
     let endt = start +. cfg.duration_s in
     (match cfg.closed with
     | None ->
         (* Open loop: session k is due at start + k/rate, regardless of
            what came back — the arrival process the service cannot
            slow down. *)
         let due k = start +. (float_of_int k /. cfg.rate) in
         while now () < endt do
           while now () >= due d.submitted && now () < endt do
             submit_one ()
           done;
           let timeout =
             Float.max 0.001 (Float.min (due d.submitted -. now ()) 0.05)
           in
           pump d ~timeout ~now
         done
     | Some c ->
         while now () < endt do
           while
             Hashtbl.length d.outstanding < c && now () < endt
           do
             submit_one ()
           done;
           pump d ~timeout:0.02 ~now
         done);
     (* --- settle: wait for stragglers, polling the acked ones --- *)
     let settle_end = now () +. cfg.settle_timeout_s in
     let last_poll = ref 0. in
     while Hashtbl.length d.outstanding > 0 && now () < settle_end do
       if now () -. !last_poll > 1. then begin
         last_poll := now ();
         Hashtbl.iter
           (fun _ (_, p) ->
             match !p with
             | Acked id ->
                 send d
                   (Wire.to_line
                      (Json.Obj
                         [
                           ("op", Json.String "poll");
                           ("id", Json.String id);
                         ]))
             | Sent -> ())
           d.outstanding
       end;
       pump d ~timeout:0.05 ~now
     done;
     (* --- final server-side stats --- *)
     send d (Wire.to_line (Json.Obj [ ("op", Json.String "stats") ]));
     let stats_deadline = now () +. 5. in
     while d.server_stats = None && now () < stats_deadline do
       pump d ~timeout:0.05 ~now
     done
   with End_of_file -> ());
  let wall = now () -. start in
  let unacked, lost =
    Hashtbl.fold
      (fun _ (_, p) (u, l) ->
        match !p with Sent -> (u + 1, l) | Acked _ -> (u, l + 1))
      d.outstanding (0, 0)
  in
  let terminal = d.completed + d.failed + d.shed + d.cancelled in
  let server_ok =
    match d.server_stats with
    | Some st -> (
        match jbool (jfield (Option.value ~default:Json.Null (jfield st "monitor")) "ok") with
        | Some b -> b
        | None -> false)
    | None -> false
  in
  {
    wall_s = wall;
    submitted = d.submitted;
    accepted = d.accepted;
    rejected = d.rejected;
    completed = d.completed;
    failed = d.failed;
    shed = d.shed;
    cancelled = d.cancelled;
    degraded = d.degraded;
    unacked;
    lost;
    protocol_errors = d.protocol_errors;
    latency = d.latency;
    achieved_rate = (if wall > 0. then float_of_int terminal /. wall else 0.);
    server_stats = d.server_stats;
    server_ok;
  }

let report_json cfg r =
  Json.Obj
    [
      ("target_rate", Json.Float cfg.rate);
      ( "closed_concurrency",
        match cfg.closed with Some c -> Json.Int c | None -> Json.Null );
      ("duration_s", Json.Float cfg.duration_s);
      ("wall_s", Json.Float r.wall_s);
      ("submitted", Json.Int r.submitted);
      ("accepted", Json.Int r.accepted);
      ("rejected", Json.Int r.rejected);
      ("completed", Json.Int r.completed);
      ("failed", Json.Int r.failed);
      ("shed", Json.Int r.shed);
      ("cancelled", Json.Int r.cancelled);
      ("degraded", Json.Int r.degraded);
      ("unacked", Json.Int r.unacked);
      ("lost", Json.Int r.lost);
      ("protocol_errors", Json.Int r.protocol_errors);
      ("achieved_rate", Json.Float r.achieved_rate);
      ("latency", Latency.to_json r.latency);
      ( "server",
        Option.value ~default:Json.Null r.server_stats );
      ("server_ok", Json.Bool r.server_ok);
    ]

(* --- in-process service cells ---

   The matrix runner drives service cells without an external process:
   a socketpair joins this driver to a Server.run select loop on a
   background thread. The server runs with [~signals:false] so the
   host's SIGTERM/SIGINT handling (Experiment.with_interrupt_signals)
   stays in charge; closing our end of the pair is the drain request,
   exactly like EOF on stdin, after which the thread joins. *)
let run_in_process ?(service_config = Service.config ()) cfg =
  let client_fd, server_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let exit_code = ref 1 in
  let server =
    Thread.create
      (fun () ->
        exit_code :=
          Server.run ~config:service_config ~quiet:true ~signals:false
            (Server.Fd server_fd))
      ()
  in
  let finish () =
    (try Unix.close client_fd with Unix.Unix_error _ -> ());
    Thread.join server
  in
  match run cfg ~fd:client_fd with
  | report ->
      finish ();
      (report, !exit_code = 0)
  | exception e ->
      finish ();
      raise e
