(** The [rumor serve] frontend: NDJSON over stdio or a Unix socket.

    Single-threaded I/O on top of one {!Service}: worker domains never
    touch a descriptor — terminal notifications are queued and flushed
    by the select loop, so a slow or dead client can delay its own
    events but can never wedge a worker (and thus can never trip the
    supervisor's watchdog).

    Drain semantics: SIGTERM, SIGINT, a wire [shutdown] op, or EOF on
    stdin close admission (further submits are rejected with
    ["draining"]); in-flight sessions finish and deliver their events;
    then the service winds down. [drain_timeout_s] is the hard-kill
    bound — past it, stragglers are cancelled and force-failed so the
    no-session-lost invariant still holds. *)

type transport = Stdio | Unix_socket of string

val run :
  ?config:Service.config ->
  ?drain_timeout_s:float ->
  ?quiet:bool ->
  transport ->
  int
(** Serve until drained. Returns the process exit code: [0] iff the
    drain was clean — in-flight work settled inside the timeout, every
    worker domain was joined, and the monitor recorded no invariant
    violation. Installs SIGTERM/SIGINT/SIGPIPE handlers for the
    duration and restores them on exit; a pre-existing socket path is
    replaced and unlinked on shutdown. *)
