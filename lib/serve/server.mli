(** The [rumor serve] frontend: NDJSON over stdio, a Unix socket, or a
    caller-supplied descriptor.

    Single-threaded I/O on top of one {!Service}: worker domains never
    touch a descriptor — terminal notifications are queued and flushed
    by the select loop, so a slow or dead client can delay its own
    events but can never wedge a worker (and thus can never trip the
    supervisor's watchdog).

    Drain semantics: SIGTERM, SIGINT, a wire [shutdown] op, or EOF on
    the primary connection (stdin, or the [Fd] descriptor) close
    admission (further submits are rejected with ["draining"]);
    in-flight sessions finish and deliver their events; then the
    service winds down. [drain_timeout_s] is the hard-kill bound —
    past it, stragglers are cancelled and force-failed so the
    no-session-lost invariant still holds. *)

type transport =
  | Stdio
  | Unix_socket of string
  | Fd of Unix.file_descr
      (** serve one pre-connected descriptor (e.g. a socketpair end) —
          how a host process embeds the service in-process; EOF on it
          drains, like stdin *)

val run :
  ?config:Service.config ->
  ?drain_timeout_s:float ->
  ?quiet:bool ->
  ?signals:bool ->
  transport ->
  int
(** Serve until drained. Returns the process exit code: [0] iff the
    drain was clean — in-flight work settled inside the timeout, every
    worker domain was joined, and the monitor recorded no invariant
    violation. Installs SIGTERM/SIGINT/SIGPIPE handlers for the
    duration and restores them on exit; pass [~signals:false] when
    embedding the server in a process that owns its own handlers (the
    in-process load driver) — the host's SIGTERM/SIGINT behaviour is
    then left untouched and shutdown comes from EOF or a wire op. A
    pre-existing socket path is replaced and unlinked on shutdown. *)
