(** The broadcast service: many sessions multiplexed over a supervised
    worker-domain pool.

    Submission flows through explicit backpressure: a bounded admission
    queue ({!Mailbox}) whose occupancy drives graceful-degradation
    tiers — at {!type-config.shed_trace_at} new sessions lose trace
    collection, at {!type-config.shed_degrade_at} incoming [bef]
    sessions are downgraded to plain push&pull (several times cheaper
    per round, marked [degraded]), and a full queue rejects immediately
    with a [retry_after_ms] hint derived from the smoothed attempt time
    and queue depth. Admitted sessions get per-attempt wall deadlines
    from the paper's round bound ([deadline_factor * ceil_log2 n]
    rounds at [round_budget_us] each); an attempt that blows its
    deadline (or ends incomplete under loss) is retried up to
    [retry_budget] times with randomized exponential backoff — the same
    {!Rumor_core.Repair.backoff} policy the repair epochs use, in
    milliseconds.

    Worker crashes and wedges are handled by the {!Supervisor}
    (failover + restart under a circuit breaker); a {!Monitor} enforces
    the service invariants, chiefly {b no session lost}: every accepted
    session reaches exactly one terminal state, even across failovers,
    cancellation and shutdown.

    All entry points are safe from any thread or domain. [on_terminal]
    fires exactly once per session, with no internal lock held. *)

type config = {
  workers : int;
  queue_capacity : int;
  retry_budget : int;
  retry_backoff : Rumor_core.Repair.backoff;  (** in milliseconds *)
  deadline_factor : float;
  round_budget_us : float;
  shed_trace_at : float;
  shed_degrade_at : float;
  heartbeat_timeout_s : float;
  max_restarts : int;
  restart_window_s : float;
  tick_s : float;
}

val config :
  ?workers:int ->
  ?queue_capacity:int ->
  ?retry_budget:int ->
  ?retry_backoff:Rumor_core.Repair.backoff ->
  ?deadline_factor:float ->
  ?round_budget_us:float ->
  ?shed_trace_at:float ->
  ?shed_degrade_at:float ->
  ?heartbeat_timeout_s:float ->
  ?max_restarts:int ->
  ?restart_window_s:float ->
  ?tick_s:float ->
  unit ->
  config
(** Validated config. Defaults: 4 workers, queue 64, 3 retries with
    25–400 ms backoff, deadline [6 * ceil_log2 n] rounds at 2 ms each,
    shedding at 50%/75% occupancy, 250 ms heartbeat timeout, 8 restarts
    per 60 s window, 5 ms tick. *)

type t

val create : ?on_terminal:(Session.t -> unit) -> config -> t
(** Spawn the worker pool and the ticker thread. *)

type admission =
  | Accepted of Session.t
  | Rejected of { reason : string; retry_after_ms : float }

val submit : ?notify:bool -> ?conn:int -> t -> Session.spec -> admission
(** Validate, apply the current shedding tier, and enqueue.
    [retry_after_ms] is 0 for permanent rejections (invalid spec,
    draining) and a backoff hint for overload. *)

val find : t -> int -> Session.t option
val cancel : t -> int -> bool
(** [true] if the session existed and was not already terminal. Queued
    and backing-off sessions terminate immediately; running attempts
    are cancelled cooperatively at the next round boundary. *)

val tier : t -> int
(** Current shedding tier: 0 normal, 1 no traces, 2 degrade bef,
    3 reject. *)

val queue_length : t -> int
val in_flight : t -> int
(** Accepted, not yet terminal. *)

val ewma_attempt_s : t -> float
val monitor : t -> Monitor.t
val latency : t -> Rumor_obs.Latency.t
(** Histogram of submission-to-terminal latency. *)

val stats_json : t -> Rumor_obs.Json.t
(** Monitor counters + queue/tier/worker/latency snapshot. *)

val drain : t -> unit
(** Stop admitting; in-flight sessions keep running. *)

val shutdown : t -> timeout_s:float -> bool
(** {!drain}, wait for in-flight work, cooperatively cancel stragglers,
    force-fail what remains (no session left non-terminal), close the
    queue, join workers and ticker, and reconcile the monitor's
    conservation invariant. [true] iff work settled in time, every
    domain was joined and the monitor saw no violation. *)
