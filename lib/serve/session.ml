module Rng = Rumor_rng.Rng
module Engine = Rumor_sim.Engine
module Fault = Rumor_sim.Fault
module Topology = Rumor_sim.Topology
module Scenario = Rumor_cli.Scenario

(* One broadcast session: a client-submitted request to run one rumor
   broadcast (protocol x topology x faults) to completion. The service
   multiplexes many of these over a fixed pool of worker domains, so a
   session carries everything an attempt needs plus the bookkeeping the
   supervisor and monitor reason about.

   Locking contract: every mutable field is guarded by the owning
   service's mutex, except [cancel] (an [Atomic] polled from inside the
   engine loop on a worker domain) and [attempt_token] (written under
   the mutex, read by workers to detect that their attempt went stale
   after a failover — see [Supervisor]). *)

type spec = {
  n : int;
  d : int;
  protocol : string;
  topology : string;
  seed : int;
  alpha : float;
  fanout : int;
  link_loss : float;
  burst_loss : float;
  burst_len : float;
  crash_worker : bool;  (** fault injection: kill the worker domain mid-run *)
  wedge_ms : float;  (** fault injection: stall without heartbeating *)
  deadline_ms : float option;  (** per-attempt wall budget; None = derived *)
  collect_trace : bool;
  client_ref : string option;  (** opaque client correlation tag *)
}

let default_spec =
  {
    n = 4096;
    d = 8;
    protocol = "push-pull";
    topology = "implicit-regular";
    seed = 1;
    alpha = 2.0;
    fanout = 4;
    link_loss = 0.;
    burst_loss = 0.;
    burst_len = 4.;
    crash_worker = false;
    wedge_ms = 0.;
    deadline_ms = None;
    collect_trace = false;
    client_ref = None;
  }

(* Admission-side validation: the wire is hostile, so every numeric
   field is range-checked before a session object is even built. The
   [n] ceiling keeps a single session's memory bounded (the service
   caches topologies, and materialised graphs at 2^20 are ~tens of MB);
   protocol/topology names are whitelisted rather than discovered by
   letting the factories raise. *)

let protocols = [ "bef"; "bef-seq"; "push"; "pull"; "push-pull"; "quasirandom" ]

let topologies =
  [
    "regular"; "hypercube"; "torus"; "complete"; "gnp"; "product-k5";
    "implicit-regular"; "implicit-hypercube"; "implicit-chords";
  ]

let max_n = 1 lsl 20

(* Implicit views never materialise a graph, and under the packed
   kernel state a run costs bytes per node rather than words — so their
   admission ceiling tracks the simulation frontier (bef completes at
   n = 10^8), not the topology cache. Materialised specs keep the 2^20
   cap above. *)
let max_implicit_n = 100_000_000

let validate_spec s =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let n_cap =
    if Scenario.is_implicit s.topology then max_implicit_n else max_n
  in
  if s.n < 2 || s.n > n_cap then err "n must be in [2, %d]" n_cap
  else if s.d < 1 || s.d > 64 then err "d must be in [1, 64]"
  else if not (List.mem s.protocol protocols) then
    err "unknown protocol %S" s.protocol
  else if not (List.mem s.topology topologies) then
    err "unknown topology %S" s.topology
  else if s.topology = "implicit-regular" && s.n land 1 = 1 then
    err "implicit-regular needs even n"
  else if not (Float.is_finite s.alpha) || s.alpha <= 0. || s.alpha > 64. then
    err "alpha must be in (0, 64]"
  else if s.fanout < 1 || s.fanout > 64 then err "fanout must be in [1, 64]"
  else if not (Float.is_finite s.link_loss) || s.link_loss < 0. || s.link_loss > 0.9
  then err "link_loss must be in [0, 0.9]"
  else if
    not (Float.is_finite s.burst_loss) || s.burst_loss < 0. || s.burst_loss > 0.5
  then err "burst_loss must be in [0, 0.5]"
  else if not (Float.is_finite s.burst_len) || s.burst_len < 1. || s.burst_len > 64.
  then err "burst_len must be in [1, 64]"
  else if not (Float.is_finite s.wedge_ms) || s.wedge_ms < 0. || s.wedge_ms > 10_000.
  then err "wedge_ms must be in [0, 10000]"
  else
    match s.deadline_ms with
    | Some ms when (not (Float.is_finite ms)) || ms < 1. || ms > 600_000. ->
        err "deadline_ms must be in [1, 600000]"
    | _ -> Ok s

type outcome =
  | Completed
  | Failed of string
  | Shed
  | Cancelled

type state =
  | Queued
  | Running
  | Backoff  (** waiting out a retry gap; re-queued by the ticker *)
  | Done of outcome

type run_stats = {
  rounds : int;
  informed : int;
  population : int;
  transmissions : int;
}

type t = {
  id : int;
  spec : spec;
  submitted_at : float;
  mutable state : state;
  mutable protocol : string;  (** effective protocol (degradation may downgrade) *)
  mutable degraded : bool;
  mutable trace_enabled : bool;
  mutable attempts : int;  (** attempts started *)
  mutable retries : int;  (** deadline/incomplete re-runs *)
  mutable failovers : int;  (** re-queues after a worker crash/wedge *)
  mutable not_before : float;  (** earliest re-queue time while in [Backoff] *)
  mutable finished_at : float;
  mutable last_error : string option;
  mutable stats : run_stats option;
  attempt_token : int Atomic.t;
      (** bumped when an attempt starts or the session is failed over;
          a worker's completion is discarded unless its token is still
          current, so a deposed worker limping to the finish line cannot
          double-terminate a session that was already re-assigned *)
  cancel : bool Atomic.t;
  notify : bool;  (** push a completion event to the submitting client *)
  conn : int;  (** owning connection id; -1 for in-process use *)
}

let make ~id ~now ~notify ~conn spec =
  {
    id;
    spec;
    submitted_at = now;
    state = Queued;
    protocol = spec.protocol;
    degraded = false;
    trace_enabled = spec.collect_trace;
    attempts = 0;
    retries = 0;
    failovers = 0;
    not_before = 0.;
    finished_at = 0.;
    last_error = None;
    stats = None;
    attempt_token = Atomic.make 0;
    cancel = Atomic.make false;
    notify;
    conn;
  }

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Backoff -> "backoff"
  | Done Completed -> "completed"
  | Done (Failed _) -> "failed"
  | Done Shed -> "shed"
  | Done Cancelled -> "cancelled"

let is_terminal t = match t.state with Done _ -> true | _ -> false

let latency_s t =
  if is_terminal t then t.finished_at -. t.submitted_at else 0.

(* --- deadline derivation ---

   The paper's algorithms finish in O(log n) rounds w.h.p., so a
   session's wall budget is [factor * ceil_log2 n] rounds at a declared
   per-round wall budget. This turns the theoretical round bound into
   an operational deadline: a run that blows it is not "slow", it is
   outside the regime the bound promises, and gets cancelled and
   retried on a fresh stream. *)

let ceil_log2 n =
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

let deadline_s ~deadline_factor ~round_budget_us spec =
  match spec.deadline_ms with
  | Some ms -> ms /. 1e3
  | None ->
      deadline_factor
      *. float_of_int (ceil_log2 (max 2 spec.n))
      *. round_budget_us *. 1e-6

(* --- attempt execution --- *)

type attempt_outcome =
  | Finished of run_stats * bool  (** stats, success (all live informed) *)
  | Deadline_expired
  | Cancelled_by_client

exception Crash_injected
(** Simulated worker crash: escapes the worker loop so the whole domain
    dies, exercising the supervisor's failover + restart path. *)

exception Stop of attempt_outcome

let fault_of spec =
  if spec.link_loss = 0. && spec.burst_loss = 0. then Fault.none
  else
    Fault.plan ~link_loss:spec.link_loss
      ?burst:
        (if spec.burst_loss > 0. then
           Some (Fault.burst ~loss:spec.burst_loss ~burst_len:spec.burst_len)
         else None)
      ()

(* Run one attempt on [topology] (owned and cached by the service;
   read-only during the run, so safe to share across worker domains).
   [beat] is the supervisor heartbeat — called every round so the
   watchdog can tell a slow attempt from a wedged worker. Fault
   injection (crash, wedge) fires once, early in the first attempt, so
   the retry path is exercised without livelocking the session. *)
let exec ~topology ~deadline_factor ~round_budget_us ~beat t =
  let spec = t.spec in
  let attempt = t.attempts in
  let rng = Rng.fork (Rng.create spec.seed) attempt in
  let protocol =
    Scenario.make_protocol ~protocol:t.protocol ~n:spec.n ~d:spec.d
      ~alpha:spec.alpha ~fanout:spec.fanout ()
  in
  let deadline =
    Unix.gettimeofday () +. deadline_s ~deadline_factor ~round_budget_us spec
  in
  let on_round_end round =
    beat ();
    if attempt = 1 && round = 2 then begin
      if spec.wedge_ms > 0. then Unix.sleepf (spec.wedge_ms /. 1e3);
      if spec.crash_worker then raise Crash_injected
    end;
    if Atomic.get t.cancel then raise (Stop Cancelled_by_client);
    if Unix.gettimeofday () > deadline then raise (Stop Deadline_expired)
  in
  beat ();
  match
    Engine.run ~fault:(fault_of spec) ~collect_trace:t.trace_enabled
      ~stop_when_complete:true ~on_round_end ~rng ~topology ~protocol
      ~sources:[ 0 ] ()
  with
  | r ->
      let stats =
        {
          rounds = r.Engine.rounds;
          informed = r.Engine.informed;
          population = r.Engine.population;
          transmissions = Engine.transmissions r;
        }
      in
      Finished (stats, Engine.success r)
  | exception Stop o -> o
