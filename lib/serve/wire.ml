module Json = Rumor_obs.Json

(* NDJSON line protocol: one JSON object per line, both directions.
   This is the hostile boundary of the service, so parsing is strict —
   bounded nesting depth (well under [Json.default_max_depth]; a
   protocol object is depth 2), whitelisted ops and fields, and every
   numeric range checked by [Session.validate_spec] before a session is
   built. Unknown fields are rejected rather than ignored: a client
   that misspells [burst_loss] should learn now, not in production. *)

let max_depth = 32

type request =
  | Submit of Session.spec * bool  (** spec, notify *)
  | Poll of int
  | Cancel of int
  | Stats
  | Shutdown
  | Ping

let id_to_string id = Printf.sprintf "s-%d" id

let id_of_string s =
  match String.length s with
  | l when l > 2 && String.sub s 0 2 = "s-" -> (
      match int_of_string_opt (String.sub s 2 (l - 2)) with
      | Some id when id > 0 -> Some id
      | _ -> None)
  | _ -> None

(* --- field accessors over Json.t --- *)

let ( let* ) = Result.bind

let obj_fields = function
  | Json.Obj fs -> Ok fs
  | _ -> Error "request must be a JSON object"

let field fs name = List.assoc_opt name fs

let as_float name = function
  | Json.Int i -> Ok (float_of_int i)
  | Json.Float f -> Ok f
  | _ -> Error (Printf.sprintf "field %S must be a number" name)

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S must be an integer" name)

let as_bool name = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let as_string name = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S must be a string" name)

let opt fs name conv ~default =
  match field fs name with
  | None | Some Json.Null -> Ok default
  | Some v -> conv name v

let submit_fields =
  [
    "op"; "n"; "d"; "protocol"; "topology"; "seed"; "alpha"; "fanout";
    "link_loss"; "burst_loss"; "burst_len"; "crash_worker"; "wedge_ms";
    "deadline_ms"; "trace"; "ref"; "notify";
  ]

let check_known fs allowed =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) fs with
  | Some (k, _) -> Error (Printf.sprintf "unknown field %S" k)
  | None -> Ok ()

let parse_submit fs =
  let d = Session.default_spec in
  let* () = check_known fs submit_fields in
  let* n = opt fs "n" as_int ~default:d.Session.n in
  let* dd = opt fs "d" as_int ~default:d.Session.d in
  let* protocol = opt fs "protocol" as_string ~default:d.Session.protocol in
  let* topology = opt fs "topology" as_string ~default:d.Session.topology in
  let* seed = opt fs "seed" as_int ~default:d.Session.seed in
  let* alpha = opt fs "alpha" as_float ~default:d.Session.alpha in
  let* fanout = opt fs "fanout" as_int ~default:d.Session.fanout in
  let* link_loss = opt fs "link_loss" as_float ~default:d.Session.link_loss in
  let* burst_loss = opt fs "burst_loss" as_float ~default:d.Session.burst_loss in
  let* burst_len = opt fs "burst_len" as_float ~default:d.Session.burst_len in
  let* crash_worker =
    opt fs "crash_worker" as_bool ~default:d.Session.crash_worker
  in
  let* wedge_ms = opt fs "wedge_ms" as_float ~default:d.Session.wedge_ms in
  let* deadline_ms =
    match field fs "deadline_ms" with
    | None | Some Json.Null -> Ok None
    | Some v ->
        let* f = as_float "deadline_ms" v in
        Ok (Some f)
  in
  let* collect_trace = opt fs "trace" as_bool ~default:false in
  let* client_ref =
    match field fs "ref" with
    | None | Some Json.Null -> Ok None
    | Some v ->
        let* r = as_string "ref" v in
        if String.length r > 256 then Error "field \"ref\" too long (max 256)"
        else Ok (Some r)
  in
  let* notify = opt fs "notify" as_bool ~default:false in
  let spec =
    {
      Session.n;
      d = dd;
      protocol;
      topology;
      seed;
      alpha;
      fanout;
      link_loss;
      burst_loss;
      burst_len;
      crash_worker;
      wedge_ms;
      deadline_ms;
      collect_trace;
      client_ref;
    }
  in
  let* spec = Session.validate_spec spec in
  Ok (Submit (spec, notify))

let parse_id fs op =
  let* () = check_known fs [ "op"; "id" ] in
  match field fs "id" with
  | Some (Json.String s) -> (
      match id_of_string s with
      | Some id -> Ok id
      | None -> Error (Printf.sprintf "%s: malformed id %S" op s))
  | _ -> Error (Printf.sprintf "%s: missing string field \"id\"" op)

let parse_request line =
  let* json =
    match Json.of_string ~max_depth line with
    | Ok j -> Ok j
    | Error e -> Error ("bad json: " ^ e)
  in
  let* fs = obj_fields json in
  let* op =
    match field fs "op" with
    | Some (Json.String s) -> Ok s
    | _ -> Error "missing string field \"op\""
  in
  match op with
  | "submit" -> parse_submit fs
  | "poll" ->
      let* id = parse_id fs "poll" in
      Ok (Poll id)
  | "cancel" ->
      let* id = parse_id fs "cancel" in
      Ok (Cancel id)
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | "ping" -> Ok Ping
  | _ -> Error (Printf.sprintf "unknown op %S" op)

(* --- responses --- *)

let ref_field (s : Session.t) =
  match s.Session.spec.Session.client_ref with
  | None -> []
  | Some r -> [ ("ref", Json.String r) ]

let submitted (s : Session.t) =
  Json.Obj
    ([
       ("ok", Json.Bool true);
       ("op", Json.String "submit");
       ("id", Json.String (id_to_string s.Session.id));
       ("state", Json.String (Session.state_name s.Session.state));
       ("degraded", Json.Bool s.Session.degraded);
     ]
    @ ref_field s)

let rejected ?client_ref ~reason ~retry_after_ms () =
  Json.Obj
    ([
       ("ok", Json.Bool false);
       ("op", Json.String "submit");
       ("error", Json.String reason);
       ("retry_after_ms", Json.Float retry_after_ms);
     ]
    @
    match client_ref with
    | None -> []
    | Some r -> [ ("ref", Json.String r) ])

let status_body (s : Session.t) =
  [
    ("id", Json.String (id_to_string s.Session.id));
    ("state", Json.String (Session.state_name s.Session.state));
    ("protocol", Json.String s.Session.protocol);
    ("degraded", Json.Bool s.Session.degraded);
    ("attempts", Json.Int s.Session.attempts);
    ("retries", Json.Int s.Session.retries);
    ("failovers", Json.Int s.Session.failovers);
  ]
  @ (if Session.is_terminal s then
       [ ("latency_ms", Json.Float (Session.latency_s s *. 1e3)) ]
     else [])
  @ (match s.Session.last_error with
    | Some e -> [ ("error", Json.String e) ]
    | None -> [])
  @ (match s.Session.stats with
    | Some st ->
        [
          ( "result",
            Json.Obj
              [
                ("rounds", Json.Int st.Session.rounds);
                ("informed", Json.Int st.Session.informed);
                ("population", Json.Int st.Session.population);
                ("transmissions", Json.Int st.Session.transmissions);
              ] );
        ]
    | None -> [])
  @ ref_field s

let status s =
  Json.Obj
    (([ ("ok", Json.Bool true); ("op", Json.String "poll") ] : (string * Json.t) list)
    @ status_body s)

let event s = Json.Obj (("event", Json.String "session") :: status_body s)

let stats ~service =
  Json.Obj
    [ ("ok", Json.Bool true); ("op", Json.String "stats"); ("stats", service) ]

let pong = Json.Obj [ ("ok", Json.Bool true); ("op", Json.String "ping") ]

let draining =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.String "shutdown");
      ("state", Json.String "draining");
    ]

let error msg =
  Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let not_found id =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ("error", Json.String "no such session");
      ("id", Json.String (id_to_string id));
    ]

let to_line j = Json.to_string j ^ "\n"

(* --- line framing ---

   Both ends of the protocol accumulate raw reads and split on '\n'.
   A line-length cap is part of input hardening: without one, a peer
   that never sends a newline grows the buffer without bound. *)

module Linebuf = struct
  type t = { buf : Buffer.t; max_line : int; mutable overflowed : bool }

  let create ?(max_line = 1 lsl 20) () =
    if max_line < 1 then invalid_arg "Linebuf.create: max_line < 1";
    { buf = Buffer.create 4096; max_line; overflowed = false }

  let overflowed t = t.overflowed

  (* Feed a chunk, return the completed lines (without terminators).
     Once the pending partial line exceeds [max_line] the buffer is
     poisoned: [overflowed] stays set and no further lines are
     produced — the connection should be dropped. *)
  let feed t bytes off len =
    if t.overflowed then []
    else begin
      Buffer.add_subbytes t.buf bytes off len;
      let s = Buffer.contents t.buf in
      let lines = ref [] in
      let start = ref 0 in
      String.iteri
        (fun i c ->
          if c = '\n' then begin
            let line = String.sub s !start (i - !start) in
            let line =
              (* tolerate CRLF *)
              if String.length line > 0 && line.[String.length line - 1] = '\r'
              then String.sub line 0 (String.length line - 1)
              else line
            in
            lines := line :: !lines;
            start := i + 1
          end)
        s;
      Buffer.clear t.buf;
      let rest = String.sub s !start (String.length s - !start) in
      if String.length rest > t.max_line then t.overflowed <- true
      else Buffer.add_string t.buf rest;
      if List.exists (fun l -> String.length l > t.max_line) !lines then begin
        t.overflowed <- true;
        []
      end
      else List.rev !lines
    end
end
