(** The [rumor load] generator: fault-injecting NDJSON load client.

    Drives one serve endpoint either {e open loop} (session [k] is
    submitted at [start + k/rate] no matter what came back — the
    arrival process backpressure cannot slow down, which is what makes
    overload and explicit rejection observable) or {e closed loop}
    (a fixed number outstanding). Per-session faults follow a cadence:
    every [crash_every]-th session asks the service to crash its worker
    domain mid-run, every [wedge_every]-th to wedge it past the
    watchdog timeout.

    Accounting is total: every submission ends as rejected, terminal
    (completed/failed/shed/cancelled), {b lost} (accepted but never
    heard from again — the violation the whole exercise hunts for) or
    {b unacked}. Latency is submit-to-terminal-event at the client,
    queueing included. *)

type cfg = {
  rate : float;
  duration_s : float;
  closed : int option;
  spec : Session.spec;  (** template; session [k] uses [seed + k] *)
  crash_every : int;
  wedge_every : int;
  wedge_ms : float;
  settle_timeout_s : float;
}

val cfg :
  ?rate:float ->
  ?duration_s:float ->
  ?closed:int ->
  ?spec:Session.spec ->
  ?crash_every:int ->
  ?wedge_every:int ->
  ?wedge_ms:float ->
  ?settle_timeout_s:float ->
  unit ->
  cfg
(** Validated; defaults 100/s for 10 s, open loop, no faults, 30 s
    settle. *)

type report = {
  wall_s : float;
  submitted : int;
  accepted : int;
  rejected : int;
  completed : int;
  failed : int;
  shed : int;
  cancelled : int;
  degraded : int;
  unacked : int;
  lost : int;
  protocol_errors : int;
  latency : Rumor_obs.Latency.t;
  achieved_rate : float;  (** terminal sessions per wall second *)
  server_stats : Rumor_obs.Json.t option;
  server_ok : bool;
}

val connect : string -> Unix.file_descr
(** Connect to a serve Unix socket. *)

val run : cfg -> fd:Unix.file_descr -> report
(** Drive the endpoint on [fd] (bidirectional): load window, straggler
    settle (with polling), final server [stats] fetch. *)

val report_json : cfg -> report -> Rumor_obs.Json.t
(** The [rumor-bench/1] experiment payload ([rumor load --json]). *)

val run_in_process :
  ?service_config:Service.config -> cfg -> report * bool
(** Run one load cell against an embedded server: a socketpair joins
    this driver to a {!Server.run} select loop on a background thread
    ([~signals:false] — the host process keeps its own SIGTERM/SIGINT
    handling). Closing the driver's end after the load window is the
    drain request; the returned boolean is whether the server side
    drained cleanly (its would-be exit code was 0). This is how
    [rumor matrix] executes service-mode cells. *)
