(** Service-level invariant monitor.

    The serving analogue of {!Rumor_sim.Invariant}: atomically-counted
    session/worker telemetry plus recorded violations of the service
    invariants —

    - {b no session lost}: every accepted session terminates in exactly
      one of completed/failed/shed/cancelled ({!reconcile},
      {!note_terminal}'s double-terminal check);
    - {b bounded queue}: depth never exceeds the admission bound plus
      the bounded failover/retry excess ({!observe_queue});
    - {b restart intensity}: worker restarts stay under the circuit
      breaker's cap ({!note_restart}).

    Counters may be bumped from any domain; violations are capped (like
    the simulation monitor) so a broken invariant cannot exhaust
    memory. *)

type counter =
  [ `Submitted
  | `Accepted
  | `Rejected
  | `Completed
  | `Failed
  | `Shed
  | `Cancelled
  | `Retries
  | `Failovers
  | `Restarts
  | `Deposed
  | `Degraded ]

type violation = { check : string; detail : string }

type t

val create : ?limit:int -> queue_bound:int -> restart_cap:int -> unit -> t
(** [limit] (default 64) caps stored violations; the count keeps
    incrementing past it. @raise Invalid_argument if [limit < 1]. *)

val incr : t -> counter -> unit
val count : t -> counter -> int

val record : t -> check:string -> detail:string -> unit

val observe_queue : t -> int -> unit
(** Check a sampled queue depth against the bound. *)

val note_restart : t -> unit
(** Count a worker restart; records a violation past the cap. *)

val note_terminal : t -> already_terminal:bool -> Session.outcome -> unit
(** Count a terminal transition; [already_terminal] records a
    double-terminal violation instead. *)

val terminal_total : t -> int

val reconcile : t -> in_flight:int -> bool
(** Conservation check at a quiet point: [accepted = terminal_total +
    in_flight]. Records a violation and returns [false] on mismatch. *)

val ok : t -> bool
val violation_count : t -> int
val violations : t -> violation list

val to_json : t -> Rumor_obs.Json.t
(** All counters plus [violations], [violation_list], [ok]. *)
