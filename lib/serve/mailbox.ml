(* Bounded MPMC admission queue. The bound is the backpressure contract:
   [try_put] refuses instead of blocking, so the admission path can turn
   a full queue into an explicit rejection with a retry hint rather than
   an unbounded pile-up. Failover and retry re-entries use [force_put] —
   they are already-admitted work, so bouncing them would lose sessions.

   OCaml's stdlib [Condition] has no timed wait; consumers blocked in
   [take] are re-woken by [wake] (the service ticker broadcasts every few
   milliseconds) so they can re-check external state such as a depose
   flag. *)

type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable high_water : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity < 1";
  {
    capacity;
    q = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
    high_water = 0;
  }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let length t = with_lock t (fun () -> Queue.length t.q)
let high_water t = with_lock t (fun () -> t.high_water)
let is_closed t = with_lock t (fun () -> t.closed)

let note_depth t =
  let d = Queue.length t.q in
  if d > t.high_water then t.high_water <- d

let try_put t x =
  with_lock t (fun () ->
      if t.closed || Queue.length t.q >= t.capacity then false
      else begin
        Queue.push x t.q;
        note_depth t;
        Condition.signal t.nonempty;
        true
      end)

exception Closed

let force_put t x =
  with_lock t (fun () ->
      if t.closed then raise Closed;
      Queue.push x t.q;
      note_depth t;
      Condition.signal t.nonempty)

let take t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let take_opt t =
  with_lock t (fun () ->
      if Queue.is_empty t.q then None else Some (Queue.pop t.q))

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let wake t =
  with_lock t (fun () -> Condition.broadcast t.nonempty)
