(** Fixed-width histograms, for traces and degree distributions. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal cells;
    out-of-range observations land in the first/last cell.
    @raise Invalid_argument if [bins < 1] or [hi <= lo]. *)

val add : t -> float -> unit
(** Record one observation.
    @raise Invalid_argument on a NaN or infinite sample — [int_of_float]
    on a non-finite value is undefined, so it would otherwise be
    silently misfiled. *)

val count : t -> int
(** Total observations recorded. *)

val bin_count : t -> int -> int
(** Observations in cell [i].
    @raise Invalid_argument on a bad index. *)

val bin_bounds : t -> int -> float * float
(** The [\[lo, hi)] range of cell [i]. *)

val pp : Format.formatter -> t -> unit
(** ASCII rendering with proportional bars. *)
