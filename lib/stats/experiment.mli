(** Seeded repetition of randomized measurements.

    Every experiment in the bench harness follows the same pattern:
    run a measurement under [reps] independent random streams (forked
    from a base seed, so any single repetition can be replayed) and
    summarise each extracted metric.

    {2 Graceful interruption}

    Long replications can be interrupted without orphaning worker
    domains: inside {!with_interrupt_signals}, SIGINT/SIGTERM set a
    process-wide flag that {!replicate} and {!replicate_parallel} poll
    between repetitions. On interruption every domain finishes the
    repetition it is on and is joined, and the call returns the
    {e completed subset} (possibly empty, in repetition order; each
    returned repetition is bit-identical to its uninterrupted
    counterpart because per-repetition streams are pre-forked). Callers
    that persist documents should check {!interrupted} afterwards and
    mark partial output (the bench harness flushes its [rumor-bench/1]
    record with [truncated: true]). *)

val interrupted : unit -> bool
(** Whether an interruption has been requested (signal or
    {!request_interrupt}). *)

val request_interrupt : unit -> unit
(** Set the interruption flag directly — what the signal handler does;
    exposed for tests and embedding services. *)

val with_interrupt_signals : (unit -> 'a) -> 'a
(** [with_interrupt_signals f] clears the interruption flag, installs
    SIGINT and SIGTERM handlers that set it, runs [f] and restores the
    previous handlers (also on exception). The flag is {e not} cleared
    on exit, so the caller can still observe a late interruption. *)

val replicate :
  seed:int -> reps:int -> (Rumor_rng.Rng.t -> 'a) -> 'a list
(** [replicate ~seed ~reps f] calls [f] once per repetition with an
    independent stream forked from [seed]. Returns the completed prefix
    when interrupted (see above); all [reps] results otherwise.
    @raise Invalid_argument if [reps < 1]. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] capped to [\[1, 8\]] — the
    domain count {!replicate_parallel} uses when none is given. *)

val replicate_parallel :
  ?domains:int -> seed:int -> reps:int -> (Rumor_rng.Rng.t -> 'a) -> 'a list
(** Same results as {!replicate} (bit-for-bit: repetition [i] always
    gets stream [fork seed i], pre-forked before any domain starts, so
    results cannot depend on scheduling), computed on up to [domains]
    (default {!default_domains}) OCaml domains. This is the default
    replication path of the bench harness and the sweep-style
    subcommands; pass [~domains:1] to force the sequential code path.
    [f] must not share mutable state across calls. Under interruption
    the completed subset is returned and every domain is joined before
    the call returns — no orphans.
    @raise Invalid_argument if [reps < 1] or [domains < 1]. *)

type task = { seed : int; reps : int }
(** One unit of {!run_tasks} work: a replication with its own base
    seed. *)

val run_tasks :
  ?domains:int ->
  task array ->
  (task:int -> rep:int -> Rumor_rng.Rng.t -> 'a) ->
  'a option array array
(** [run_tasks tasks f] executes every (task, repetition) pair of the
    grid on one shared pool of up to [domains] (default
    {!default_domains}) OCaml domains — no per-task spawn/join barrier,
    so a grid of many small cells keeps all domains busy. Repetition
    [r] of task [t] runs on stream [fork tasks.(t).seed r], pre-forked
    before any domain starts; each task's results are therefore
    bit-identical to running that task alone through {!replicate} or
    {!replicate_parallel} with the same seed. Returns one array per
    task, [Some] for completed repetitions; under interruption (see
    above) unstarted slots stay [None] and every domain is joined
    before the call returns. Work is dispatched in task-major order,
    so interruption leaves early tasks complete rather than all tasks
    half-done. [f] must not share mutable state across calls.
    @raise Invalid_argument if any [reps < 1] or [domains < 1]. *)

val summarize :
  seed:int -> reps:int -> (Rumor_rng.Rng.t -> float) -> Summary.t
(** Replicate a scalar measurement and summarise it. *)

val mean_of :
  seed:int -> reps:int -> (Rumor_rng.Rng.t -> float) -> float
(** Shorthand for [(summarize ...).mean]. *)

val success_rate :
  seed:int -> reps:int -> (Rumor_rng.Rng.t -> bool) -> float
(** Fraction of repetitions returning [true] (of the completed subset
    under interruption). *)
