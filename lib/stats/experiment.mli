(** Seeded repetition of randomized measurements.

    Every experiment in the bench harness follows the same pattern:
    run a measurement under [reps] independent random streams (forked
    from a base seed, so any single repetition can be replayed) and
    summarise each extracted metric. *)

val replicate :
  seed:int -> reps:int -> (Rumor_rng.Rng.t -> 'a) -> 'a list
(** [replicate ~seed ~reps f] calls [f] once per repetition with an
    independent stream forked from [seed].
    @raise Invalid_argument if [reps < 1]. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] capped to [\[1, 8\]] — the
    domain count {!replicate_parallel} uses when none is given. *)

val replicate_parallel :
  ?domains:int -> seed:int -> reps:int -> (Rumor_rng.Rng.t -> 'a) -> 'a list
(** Same results as {!replicate} (bit-for-bit: repetition [i] always
    gets stream [fork seed i], pre-forked before any domain starts, so
    results cannot depend on scheduling), computed on up to [domains]
    (default {!default_domains}) OCaml domains. This is the default
    replication path of the bench harness and the sweep-style
    subcommands; pass [~domains:1] to force the sequential code path.
    [f] must not share mutable state across calls.
    @raise Invalid_argument if [reps < 1] or [domains < 1]. *)

val summarize :
  seed:int -> reps:int -> (Rumor_rng.Rng.t -> float) -> Summary.t
(** Replicate a scalar measurement and summarise it. *)

val mean_of :
  seed:int -> reps:int -> (Rumor_rng.Rng.t -> float) -> float
(** Shorthand for [(summarize ...).mean]. *)

val success_rate :
  seed:int -> reps:int -> (Rumor_rng.Rng.t -> bool) -> float
(** Fraction of repetitions returning [true]. *)
