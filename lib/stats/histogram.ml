type t = { lo : float; hi : float; cells : int array; mutable total : int }

let create ~lo ~hi ~bins =
  if bins < 1 then invalid_arg "Histogram.create: bins < 1";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  { lo; hi; cells = Array.make bins 0; total = 0 }

let index t x =
  let bins = Array.length t.cells in
  let raw =
    int_of_float (float_of_int bins *. (x -. t.lo) /. (t.hi -. t.lo))
  in
  if raw < 0 then 0 else if raw >= bins then bins - 1 else raw

let add t x =
  if not (Float.is_finite x) then invalid_arg "Histogram.add: non-finite sample";
  let i = index t x in
  t.cells.(i) <- t.cells.(i) + 1;
  t.total <- t.total + 1

let count t = t.total

let bin_count t i =
  if i < 0 || i >= Array.length t.cells then invalid_arg "Histogram.bin_count";
  t.cells.(i)

let bin_bounds t i =
  if i < 0 || i >= Array.length t.cells then invalid_arg "Histogram.bin_bounds";
  let bins = float_of_int (Array.length t.cells) in
  let width = (t.hi -. t.lo) /. bins in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let pp ppf t =
  let peak = Array.fold_left max 1 t.cells in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_bounds t i in
      let width = 40 * c / peak in
      Format.fprintf ppf "[%8.3g, %8.3g) %7d %s@." lo hi c (String.make width '#'))
    t.cells
