module Rng = Rumor_rng.Rng

let replicate ~seed ~reps f =
  if reps < 1 then invalid_arg "Experiment.replicate: reps < 1";
  let base = Rng.create seed in
  List.init reps (fun i -> f (Rng.fork base i))

(* Capped: replication workers are compute-bound, so more domains than
   cores only adds scheduling noise, and past ~8 the per-domain minor
   heaps start to crowd small machines. *)
let default_domains () = max 1 (min 8 (Domain.recommended_domain_count ()))

let replicate_parallel ?domains ~seed ~reps f =
  if reps < 1 then invalid_arg "Experiment.replicate: reps < 1";
  let domains =
    match domains with
    | Some d when d >= 1 -> min d reps
    | Some _ -> invalid_arg "Experiment.replicate_parallel: domains < 1"
    | None -> min (default_domains ()) reps
  in
  if domains = 1 then replicate ~seed ~reps f
  else begin
    let base = Rng.create seed in
    (* Fork all streams up front so repetition i sees exactly the same
       randomness as in the sequential version. *)
    let rngs = Array.init reps (fun i -> Rng.fork base i) in
    let out = Array.make reps None in
    let worker k () =
      let i = ref k in
      while !i < reps do
        (* Indices are partitioned round-robin: each slot is written by
           exactly one domain and read only after the join. *)
        out.(!i) <- Some (f rngs.(!i));
        i := !i + domains
      done
    in
    let spawned = List.init domains (fun k -> Domain.spawn (worker k)) in
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function Some x -> x | None -> assert false)
         out)
  end

let summarize ~seed ~reps f = Summary.of_list (replicate ~seed ~reps f)

let mean_of ~seed ~reps f = (summarize ~seed ~reps f).Summary.mean

let success_rate ~seed ~reps f =
  let hits =
    List.fold_left
      (fun acc ok -> if ok then acc + 1 else acc)
      0
      (replicate ~seed ~reps f)
  in
  float_of_int hits /. float_of_int reps
