module Rng = Rumor_rng.Rng

(* --- graceful interruption ---

   A single process-wide flag, set from a SIGINT/SIGTERM handler (or
   directly by tests). Replication workers poll it between repetitions:
   on interruption every domain finishes its current repetition, the
   spawner joins them all (no orphaned domains), and the completed
   subset is returned so callers can flush partial documents. *)

let interrupt_flag = Atomic.make false

let interrupted () = Atomic.get interrupt_flag
let request_interrupt () = Atomic.set interrupt_flag true

let with_interrupt_signals f =
  Atomic.set interrupt_flag false;
  let install s = Sys.signal s (Sys.Signal_handle (fun _ -> request_interrupt ())) in
  let old_int = install Sys.sigint in
  let old_term = install Sys.sigterm in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term)
    f

let replicate ~seed ~reps f =
  if reps < 1 then invalid_arg "Experiment.replicate: reps < 1";
  let base = Rng.create seed in
  let acc = ref [] in
  (try
     for i = 0 to reps - 1 do
       if interrupted () then raise Exit;
       acc := f (Rng.fork base i) :: !acc
     done
   with Exit -> ());
  List.rev !acc

(* Capped: replication workers are compute-bound, so more domains than
   cores only adds scheduling noise, and past ~8 the per-domain minor
   heaps start to crowd small machines. *)
let default_domains () = max 1 (min 8 (Domain.recommended_domain_count ()))

let replicate_parallel ?domains ~seed ~reps f =
  if reps < 1 then invalid_arg "Experiment.replicate: reps < 1";
  let domains =
    match domains with
    | Some d when d >= 1 -> min d reps
    | Some _ -> invalid_arg "Experiment.replicate_parallel: domains < 1"
    | None -> min (default_domains ()) reps
  in
  if domains = 1 then replicate ~seed ~reps f
  else begin
    let base = Rng.create seed in
    (* Fork all streams up front so repetition i sees exactly the same
       randomness as in the sequential version. *)
    let rngs = Array.init reps (fun i -> Rng.fork base i) in
    let out = Array.make reps None in
    let worker k () =
      let i = ref k in
      while !i < reps && not (interrupted ()) do
        (* Indices are partitioned round-robin: each slot is written by
           exactly one domain and read only after the join. *)
        out.(!i) <- Some (f rngs.(!i));
        i := !i + domains
      done
    in
    let spawned = List.init domains (fun k -> Domain.spawn (worker k)) in
    List.iter Domain.join spawned;
    (* Without interruption every slot is filled; under interruption the
       completed subset is returned in repetition order (each completed
       repetition is bit-identical to its uninterrupted counterpart,
       because the streams were pre-forked). *)
    Array.to_list out |> List.filter_map Fun.id
  end

(* --- shared-pool task execution ---

   The matrix runner executes a whole grid of cells under ONE domain
   pool: flattening every (task, rep) pair into a single work list
   keeps all domains busy across cell boundaries, instead of paying a
   spawn/join barrier (and idle tail) per cell. Streams are pre-forked
   per (task, rep) exactly as [replicate_parallel] forks them per rep,
   so each task's results are bit-identical to running that task alone
   through [replicate ~seed:task.seed ~reps:task.reps]. *)

type task = { seed : int; reps : int }

let run_tasks ?domains tasks f =
  let total = Array.fold_left (fun acc t -> acc + t.reps) 0 tasks in
  Array.iteri
    (fun i t ->
      if t.reps < 1 then
        invalid_arg
          (Printf.sprintf "Experiment.run_tasks: task %d has reps < 1" i))
    tasks;
  let domains =
    match domains with
    | Some d when d >= 1 -> min d (max 1 total)
    | Some _ -> invalid_arg "Experiment.run_tasks: domains < 1"
    | None -> min (default_domains ()) (max 1 total)
  in
  let streams =
    Array.map
      (fun t ->
        let base = Rng.create t.seed in
        Array.init t.reps (fun r -> Rng.fork base r))
      tasks
  in
  let out = Array.map (fun t -> Array.make t.reps None) tasks in
  (* Work items in (task-major, rep-minor) order: under interruption
     the completed set is a prefix-biased subset, so early cells finish
     first and partial documents stay coherent. *)
  let work = Array.make total (0, 0) in
  let pos = ref 0 in
  Array.iteri
    (fun t task ->
      for r = 0 to task.reps - 1 do
        work.(!pos) <- (t, r);
        incr pos
      done)
    tasks;
  if domains = 1 then begin
    (try
       for w = 0 to total - 1 do
         if interrupted () then raise Exit;
         let t, r = work.(w) in
         out.(t).(r) <- Some (f ~task:t ~rep:r streams.(t).(r))
       done
     with Exit -> ());
    out
  end
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let w = Atomic.fetch_and_add next 1 in
        if w >= total || interrupted () then continue := false
        else begin
          let t, r = work.(w) in
          out.(t).(r) <- Some (f ~task:t ~rep:r streams.(t).(r))
        end
      done
    in
    let spawned = List.init domains (fun _ -> Domain.spawn worker) in
    List.iter Domain.join spawned;
    out
  end

let summarize ~seed ~reps f = Summary.of_list (replicate ~seed ~reps f)

let mean_of ~seed ~reps f = (summarize ~seed ~reps f).Summary.mean

let success_rate ~seed ~reps f =
  let results = replicate ~seed ~reps f in
  let hits =
    List.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0 results
  in
  float_of_int hits /. float_of_int (max 1 (List.length results))
