type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p10 : float;
  p90 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  if q < 0. || q > 1. then invalid_arg "Summary.percentile: q out of range";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let of_array sample =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Summary.of_array: empty sample";
  let sorted = Array.copy sample in
  Array.sort Float.compare sorted;
  let sum = Array.fold_left ( +. ) 0. sorted in
  let mean = sum /. float_of_int n in
  let sq =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. sorted
  in
  let stddev = if n < 2 then 0. else sqrt (sq /. float_of_int (n - 1)) in
  {
    count = n;
    mean;
    stddev;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = percentile sorted 0.5;
    p10 = percentile sorted 0.1;
    p90 = percentile sorted 0.9;
  }

let of_list l = of_array (Array.of_list l)
let of_ints l = of_list (List.map float_of_int l)

let ci95_halfwidth t =
  if t.count < 2 then 0. else 1.96 *. t.stddev /. sqrt (float_of_int t.count)

let pp ppf t =
  Format.fprintf ppf "%.3g ± %.2g [%.3g, %.3g]" t.mean (ci95_halfwidth t) t.min
    t.max
