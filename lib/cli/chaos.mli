(** Chaos soak harness: randomised fault configurations, runtime
    invariants, shrinking repros.

    The golden tests pin a handful of trajectories; this module attacks
    the complement of that set. {!sample} draws a random scenario
    (topology x protocol x loss x bursts x crashes x recurring strikes
    x partition windows x churn x repair) from one root seed, {!run_one}
    executes it deterministically with the {!Rumor_sim.Invariant}
    monitor installed, and any violation or uncaught exception is
    {!shrink}-greedily minimised and serialised as a
    {e repro artifact} — a [rumor-chaos/1] text file holding the full
    scenario plus the expected trajectory digest. [rumor replay]
    re-runs an artifact bit-identically and diffs the digest, so a
    repro captured in CI reproduces on any machine.

    Everything here is deterministic: the same root seed yields the
    same configs, runs, digests and artifacts. No wall clock, no
    global state. *)

type outcome = {
  scenario : Scenario.t;
  digest : string;  (** 16-hex-char trajectory digest ({!digest_of_result}) *)
  violations : Rumor_sim.Invariant.violation list;
      (** recorded violations, oldest first (capped by the monitor) *)
  violation_count : int;  (** total violations, including uncapped ones *)
  checked : int;  (** round boundaries the monitor inspected *)
  error : string option;  (** uncaught exception, if the run crashed *)
  rounds : int;
  coverage : float;
  completed : bool;
}

val failed : outcome -> bool
(** Any invariant violation or uncaught exception. *)

val run_one : ?check:bool -> Scenario.t -> outcome
(** Execute one repetition of the scenario ([reps]/[domains] are
    ignored — chaos runs are single-rep by construction) with trace
    collection on and, unless [check:false], the invariant monitor
    installed. The monitor never draws randomness, so the digest is
    independent of [check]. An uncaught exception is captured in
    [error] (digest ["0000000000000000"]) rather than propagated. *)

val digest_of_result : Rumor_sim.Engine.result -> string
(** splitmix64 mix of every observable of a run — final census,
    transmission/channel totals, completion round, crashed ids, repair
    epochs and every per-round trace row. Any trajectory divergence
    changes the digest. *)

val null_digest : string
(** The digest reported for a crashed run. *)

val sample : Rumor_rng.Rng.t -> Scenario.t
(** Draw one random chaos configuration. Axes and weights are chosen so
    most samples are adversarial (some fault axis on) while a fraction
    stay clean as control runs; [reps = 1], [domains = 1]. *)

val shrink : ?budget:int -> fails:(Scenario.t -> bool) -> Scenario.t -> Scenario.t
(** Greedy minimisation to a fixpoint: repeatedly try zeroing one fault
    axis at a time (loss, bursts, crashes, strikes, partition, churn,
    repair, size estimate error, halving [n]), keeping any
    simplification for which [fails] still holds, until none applies or
    [budget] (default 40) candidate runs are spent. *)

val scenario_text : Scenario.t -> string
(** Render a scenario as [key = value] lines — every key explicit, in
    canonical order, floats via shortest round-tripping decimal — such
    that [Scenario.parse (scenario_text s) = Ok s]. *)

val artifact : ?notes:string list -> digest:string -> Scenario.t -> string
(** The [rumor-chaos/1] repro format: comment header (plus one comment
    line per note), an [expect_digest = <16 hex>] line, then
    {!scenario_text}. *)

val parse_artifact : string -> (Scenario.t * string, string) result
(** Parse an artifact back into its scenario and expected digest. The
    [expect_digest] line is stripped before the rest is handed to
    {!Scenario.parse}, so errors carry scenario line positions. *)

val parse_artifact_file : string -> (Scenario.t * string, string) result
(** Read and {!parse_artifact} a file; IO failures map to [Error]. *)
