(** Declarative scenario matrices: sweep grids, gates, shared-pool
    execution.

    A matrix file is a {!Scenario} file plus three directives:

    {v
    id     = E1                      # experiment id in the JSON document
    title  = tx/node vs n            # human title
    mode   = kernel                  # kernel (default) | service

    n        = 16384                 # plain keys form the base scenario
    protocol = bef

    sweep n        = 1k..64k *2      # a grid axis (int ranges; k = x1024)
    sweep protocol = bef, push       # enum axes sweep any scenario key
    zip   fanout   = 4, 1            # rides the most recent sweep axis

    expect coverage >= 1.0           # per-cell gates on the metrics
    expect wall_s   <= 120
    v}

    Axes cross into a cell grid in declaration order with the LAST
    axis fastest — the nesting order of the bench loops matrix files
    replace. Each cell is the base scenario with the axis (and zipped)
    values applied, then {!Scenario.validate}d.

    {2 Seeds}

    By default each cell's replication seed is drawn from one
    splitmix64 stream over the file's [seed] key — distinct cells never
    share a replication stream, and appending an axis value never
    reuses an earlier cell's seed for a different cell... as long as
    the grid shape is append-only; inserting values re-numbers cells.
    Annotating any axis with [seed+=N] ([sweep loss = 0, 0.1 seed+=10])
    switches the whole file to {e offset} seeds:
    [file seed + sum(stride * axis index)] — the arithmetic of the
    historical bench sweeps, which is what lets migrated experiments
    reproduce their frontier points bit-identically. Within a cell,
    repetition [r] always runs on [Rng.fork (Rng.create cell_seed) r].

    {2 Modes}

    [kernel] cells run {!Scenario.run_rep} — every (cell, repetition)
    pair is dispatched onto one shared domain pool
    ({!Rumor_stats.Experiment.run_tasks}), so grids of small cells
    saturate the machine without a per-cell spawn/join barrier.
    [service] cells instead describe a [rumor load] run (keys [rate],
    [duration_s], [closed], [crash_every], [wedge_every], [wedge_ms],
    [settle_timeout_s], [workers], [max_restarts], plus the
    session-shaped scenario keys); the binary injects the actual
    driver via [run_service]. *)

type mode = Kernel | Service

type axis = {
  axis_key : string;
  values : string list;  (** expanded, in sweep order *)
  stride : int;  (** seed offset per index (offset mode); 0 otherwise *)
  zips : (string * string list) list;
      (** zipped keys riding this axis (same length as [values]) *)
}

type op = Ge | Le | Gt | Lt | Eq

type gate = { metric : string; op : op; bound : float }

type spec = {
  id : string;
  title : string;
  mode : mode;
  base : Scenario.t;
  service_base : (string * string) list;
      (** load-generator keys (service mode) *)
  axes : axis list;  (** declaration order; last sweeps fastest *)
  gates : gate list;
  offset_seeds : bool;  (** any [seed+=] annotation present *)
}

type cell = {
  cell_index : int;
  coords : (string * string) list;
      (** axis and zip keys with this cell's values, declaration order *)
  scenario : Scenario.t;  (** base + coords applied, [seed = cell_seed] *)
  service : (string * string) list;
      (** resolved load-generator keys (service mode) *)
  cell_seed : int;
}

val op_to_string : op -> string

val gate_holds : gate -> float -> bool
(** Whether an observed metric value satisfies the gate. *)

val kernel_metrics : string list
(** Metric names kernel cells emit (and gates may reference). *)

val service_metrics : string list
(** Metric names service cells emit (and gates may reference). *)

val parse : string -> (spec, string) result
(** Parse matrix text. Errors carry the offending line number and its
    raw text; gate metrics are checked against the mode's vocabulary.
    CRLF and trailing whitespace are accepted (the scenario lexer's
    rules). Note cell-level value errors (an axis value out of range
    for its key, a cross-key conflict) surface from {!cells}, with
    cell coordinates instead of line numbers. *)

val parse_file : string -> (spec, string) result
(** Read and {!parse} a file; IO failures map to [Error]. *)

val cell_count : spec -> int
(** Cells in the grid (product of axis lengths; 1 with no axes). *)

val cells : spec -> (cell array, string) result
(** Expand the grid: every combination of axis values in row-major
    order (last axis fastest), each applied over the base scenario and
    validated, with its derived or offset seed. The first invalid cell
    aborts with its coordinates in the message. *)

val set_base : spec -> key:string -> value:string -> (spec, string) result
(** Override one base key (scenario or, in service mode, load key) —
    how bench wrappers patch committed matrix files for [--quick] mode
    without a second file. *)

val override_axis :
  spec -> key:string -> values:string list -> (spec, string) result
(** Replace the values of the axis sweeping [key]. Zipped axes must
    keep their length. Offset-mode cell seeds follow the new indices —
    overriding a prefix of an axis preserves per-cell seeds, which is
    what keeps [--quick] bench runs on the same streams as the full
    grid's first cells. *)

type cell_outcome = {
  cell : cell;
  reps_done : int;  (** completed repetitions (< reps when truncated) *)
  metrics : (string * float) list;
  per_seed : (string * float list) list;
      (** per-repetition coverage/rounds/tx lists (kernel mode) *)
  gate_results : (gate * float * bool) list;
      (** gate, observed value (nan if the metric is absent), pass *)
  results : Rumor_sim.Engine.result list;
      (** raw per-repetition results (kernel mode) — what bench
          wrappers rebuild their historical tables from *)
}

type run_result = {
  spec : spec;
  outcomes : cell_outcome list;
  truncated : bool;
      (** interrupted, or some cell has missing repetitions *)
}

val run :
  ?domains:int ->
  ?run_service:(cell -> (string * float) list) ->
  spec ->
  (run_result, string) result
(** Execute the grid. Kernel cells run on one shared domain pool
    (default size {!Rumor_stats.Experiment.default_domains}); under
    interruption ({!Rumor_stats.Experiment.interrupted}) the completed
    prefix is returned with [truncated = true]. Service cells run
    sequentially through [run_service] (required for service mode;
    [wall_s] is added to its metrics if absent), with an interruption
    check between cells. [Error] on grid-expansion failure. *)

val gates_failed : run_result -> int
(** Total failed gate evaluations across all cells. *)

val point_json : cell_outcome -> Rumor_obs.Json.t
(** One cell as a [rumor-bench/1] data point: [{coords, seed, reps,
    truncated, metrics, gates, per_seed_*}]. [coords] values are the
    literal axis strings — regression diffing matches on them
    exactly. *)

val data_json : run_result -> Rumor_obs.Json.t
(** The experiment [data] payload: [{mode, cells, gates_failed,
    truncated, points}]. *)

val dry_run_table : spec -> (string, string) result
(** The expanded cell table (coordinates, seeds, reps) plus the gate
    list, without running anything — the [--dry-run] output and CI's
    cheap syntax check. *)
