module Rng = Rumor_rng.Rng
module Splitmix64 = Rumor_rng.Splitmix64
module Engine = Rumor_sim.Engine
module Experiment = Rumor_stats.Experiment
module Table = Rumor_stats.Table
module Json = Rumor_obs.Json

(* --- the matrix language ---

   A matrix file is a scenario file plus three directives:

     sweep key = a, b, c [seed+=N]   a grid axis (ranges: 1k..64k *2)
     zip   key = x, y, z             rides the most recent sweep axis
     expect metric >= bound          a per-cell gate

   and three matrix-only assignments: [id], [title] and [mode]
   (kernel | service). Everything else is a plain scenario key and
   becomes the base every cell is built from. *)

type mode = Kernel | Service

type axis = {
  axis_key : string;
  values : string list;
  stride : int;  (** seed offset per index (offset seed mode); 0 otherwise *)
  zips : (string * string list) list;
}

type op = Ge | Le | Gt | Lt | Eq

type gate = { metric : string; op : op; bound : float }

type spec = {
  id : string;
  title : string;
  mode : mode;
  base : Scenario.t;
  service_base : (string * string) list;
  axes : axis list;
  gates : gate list;
  offset_seeds : bool;
}

type cell = {
  cell_index : int;
  coords : (string * string) list;
  scenario : Scenario.t;
  service : (string * string) list;
  cell_seed : int;
}

let op_of_string = function
  | ">=" -> Some Ge
  | "<=" -> Some Le
  | ">" -> Some Gt
  | "<" -> Some Lt
  | "==" -> Some Eq
  | _ -> None

let op_to_string = function
  | Ge -> ">="
  | Le -> "<="
  | Gt -> ">"
  | Lt -> "<"
  | Eq -> "=="

let gate_holds g observed =
  match g.op with
  | Ge -> observed >= g.bound
  | Le -> observed <= g.bound
  | Gt -> observed > g.bound
  | Lt -> observed < g.bound
  | Eq -> observed = g.bound

(* The metric vocabulary each mode can gate and diff on; checked at
   parse time so a typo fails the dry run, not the overnight run. *)
let kernel_metrics =
  [
    "coverage"; "rounds"; "tx_per_node"; "success_rate"; "epochs";
    "repair_tx_per_node"; "wall_s"; "minor_words_per_node";
    "heap_bytes_per_node";
  ]

let service_metrics =
  [
    "wall_s"; "submitted"; "accepted"; "completed"; "failed"; "rejected";
    "shed"; "degraded"; "cancelled"; "lost"; "unacked"; "protocol_errors";
    "achieved_rate"; "p50_ms"; "p99_ms"; "server_ok";
  ]

(* Service cells build a [Session.spec] plus a [Load.cfg]; only these
   scenario keys have a session-side meaning, everything else is
   rejected rather than silently dropped. *)
let service_scenario_keys =
  [
    "seed"; "n"; "d"; "protocol"; "topology"; "alpha"; "fanout"; "loss";
    "burst_loss"; "burst_len"; "reps";
  ]

let service_keys =
  [
    "rate"; "duration_s"; "closed"; "crash_every"; "wedge_every"; "wedge_ms";
    "settle_timeout_s"; "workers"; "max_restarts";
  ]

let validate_service_value ~key ~value =
  let float_ok ~min v =
    match float_of_string_opt v with
    | Some x when x >= min -> true
    | _ -> false
  in
  let int_ok ~min v =
    match int_of_string_opt v with Some x when x >= min -> true | _ -> false
  in
  match key with
  | "rate" ->
      if float_ok ~min:0.000001 value then Ok ()
      else Error "rate must be a positive number"
  | "duration_s" ->
      if float_ok ~min:0.000001 value then Ok ()
      else Error "duration_s must be a positive number"
  | "closed" ->
      if int_ok ~min:0 value then Ok ()
      else Error "closed must be an integer >= 0 (0 = open loop)"
  | "crash_every" | "wedge_every" ->
      if int_ok ~min:0 value then Ok ()
      else Error (key ^ " must be an integer >= 0 (0 = off)")
  | "wedge_ms" ->
      if float_ok ~min:0. value then Ok ()
      else Error "wedge_ms must be a number >= 0"
  | "workers" ->
      if int_ok ~min:1 value then Ok ()
      else Error "workers must be an integer >= 1"
  | "max_restarts" ->
      if int_ok ~min:0 value then Ok ()
      else Error "max_restarts must be an integer >= 0"
  | "settle_timeout_s" ->
      if float_ok ~min:0.000001 value then Ok ()
      else Error "settle_timeout_s must be a positive number"
  | _ -> Error ("unknown service key: " ^ key)

(* --- values and ranges --- *)

(* [64] , [64k] (x1024) , [16m] (x1024^2). *)
let parse_size s =
  let s = String.trim s in
  let len = String.length s in
  if len = 0 then None
  else
    let mult, digits =
      match s.[len - 1] with
      | 'k' | 'K' -> (1024, String.sub s 0 (len - 1))
      | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (len - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt digits with
    | Some v -> Some (v * mult)
    | None -> None

let max_axis_values = 10_000

(* One comma-separated chunk: either a literal value (kept verbatim)
   or an integer range [lo..hi *factor] / [lo..hi +step]. *)
let expand_chunk chunk =
  let chunk = String.trim chunk in
  match
    let rec find i =
      if i + 1 >= String.length chunk then None
      else if chunk.[i] = '.' && chunk.[i + 1] = '.' then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> if chunk = "" then Error "empty value" else Ok [ chunk ]
  | Some dots -> begin
      let lo_str = String.sub chunk 0 dots in
      let rest =
        String.trim
          (String.sub chunk (dots + 2) (String.length chunk - dots - 2))
      in
      let hi_str, step_str =
        match String.index_opt rest ' ' with
        | Some sp ->
            ( String.sub rest 0 sp,
              String.trim
                (String.sub rest (sp + 1) (String.length rest - sp - 1)) )
        | None -> (rest, "*2")
      in
      match (parse_size lo_str, parse_size hi_str) with
      | None, _ | _, None ->
          Error
            (Printf.sprintf "bad range %S (expected e.g. 1k..64k *2)" chunk)
      | Some lo, Some hi ->
          if hi < lo then
            Error (Printf.sprintf "range %S runs backwards" chunk)
          else if String.length step_str < 2 then
            Error (Printf.sprintf "bad range step %S (use *k or +k)" step_str)
          else begin
            let kind = step_str.[0] in
            let amount =
              parse_size
                (String.sub step_str 1 (String.length step_str - 1))
            in
            match (kind, amount) with
            | '*', Some f when f >= 2 && lo >= 1 ->
                let rec gen acc v =
                  if v > hi || List.length acc > max_axis_values then
                    List.rev acc
                  else gen (string_of_int v :: acc) (v * f)
                in
                Ok (gen [] lo)
            | '+', Some s when s >= 1 ->
                let rec gen acc v =
                  if v > hi || List.length acc > max_axis_values then
                    List.rev acc
                  else gen (string_of_int v :: acc) (v + s)
                in
                Ok (gen [] lo)
            | _ ->
                Error
                  (Printf.sprintf
                     "bad range step %S (use *factor >= 2 with start >= 1, \
                      or +step >= 1)"
                     step_str)
          end
    end

let expand_values csv =
  let chunks = String.split_on_char ',' csv in
  let rec go acc = function
    | [] ->
        let vs = List.concat (List.rev acc) in
        if vs = [] then Error "empty value list"
        else if List.length vs > max_axis_values then
          Error
            (Printf.sprintf "axis has more than %d values" max_axis_values)
        else Ok vs
    | c :: rest -> begin
        match expand_chunk c with
        | Error e -> Error e
        | Ok vs -> go (vs :: acc) rest
      end
  in
  go [] chunks

(* --- parsing --- *)

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let split_eq s =
  match String.index_opt s '=' with
  | None -> None
  | Some eq ->
      Some
        ( String.trim (String.sub s 0 eq),
          String.trim (String.sub s (eq + 1) (String.length s - eq - 1)) )

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* Substring search for the [seed+=N] axis annotation. *)
let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

type pre = {
  p_id : string option;
  p_title : string option;
  p_mode : mode option;
  p_base : (int * string * string) list;  (* reversed; line, key, value *)
  p_axes : axis list;  (* reversed; zips reversed inside *)
  p_gates : (int * gate) list;  (* reversed *)
  p_seen : (string * int) list;
  p_offset : bool;
}

let metrics_of_mode = function
  | Kernel -> kernel_metrics
  | Service -> service_metrics

let finish_axes pre =
  List.rev_map
    (fun a -> { a with zips = List.rev a.zips })
    pre.p_axes

let parse text =
  let lines = String.split_on_char '\n' text in
  let ( let* ) r k = match r with Error e -> Error e | Ok v -> k v in
  let rec go pre i = function
    | [] -> finish pre
    | raw :: rest -> begin
        let line = i + 1 in
        let err msg =
          Error
            (Printf.sprintf "line %d: %s (in %S)" line msg (String.trim raw))
        in
        let s = String.trim (strip_comment raw) in
        if s = "" then go pre (i + 1) rest
        else
          let word, arg =
            match String.index_opt s ' ' with
            | Some sp ->
                ( String.sub s 0 sp,
                  String.trim
                    (String.sub s (sp + 1) (String.length s - sp - 1)) )
            | None -> (s, "")
          in
          let check_fresh key k =
            match List.assoc_opt key pre.p_seen with
            | Some first ->
                err
                  (Printf.sprintf "duplicate key '%s' (already set on line %d)"
                     key first)
            | None -> k ()
          in
          match word with
          | "sweep" -> begin
              match split_eq arg with
              | None -> err "expected 'sweep key = v1, v2, ...'"
              | Some (key, rhs) ->
                  check_fresh key (fun () ->
                      if key = "seed" || key = "domains" then
                        err
                          (Printf.sprintf
                             "'%s' cannot be swept (seeds are derived per \
                              cell; domains are a runner setting)"
                             key)
                      else
                        let stride, csv =
                          match find_sub rhs "seed+=" with
                          | None -> (Ok 0, rhs)
                          | Some at ->
                              let head = String.trim (String.sub rhs 0 at) in
                              let tail =
                                String.trim
                                  (String.sub rhs (at + 6)
                                     (String.length rhs - at - 6))
                              in
                              ( (match int_of_string_opt tail with
                                | Some v when v >= 0 -> Ok v
                                | _ ->
                                    Error
                                      "seed+= needs a non-negative integer"),
                                head )
                        in
                        match stride with
                        | Error e -> err e
                        | Ok stride -> begin
                            match expand_values csv with
                            | Error e -> err e
                            | Ok values ->
                                go
                                  {
                                    pre with
                                    p_axes =
                                      {
                                        axis_key = key;
                                        values;
                                        stride;
                                        zips = [];
                                      }
                                      :: pre.p_axes;
                                    p_seen = (key, line) :: pre.p_seen;
                                    p_offset =
                                      pre.p_offset || stride > 0
                                      || find_sub rhs "seed+=" <> None;
                                  }
                                  (i + 1) rest
                          end)
            end
          | "zip" -> begin
              match split_eq arg with
              | None -> err "expected 'zip key = v1, v2, ...'"
              | Some (key, rhs) ->
                  check_fresh key (fun () ->
                      match pre.p_axes with
                      | [] -> err "zip before any sweep axis"
                      | ax :: axes -> begin
                          match expand_values rhs with
                          | Error e -> err e
                          | Ok values ->
                              if
                                List.length values <> List.length ax.values
                              then
                                err
                                  (Printf.sprintf
                                     "zip '%s' has %d values but axis '%s' \
                                      has %d"
                                     key (List.length values) ax.axis_key
                                     (List.length ax.values))
                              else
                                go
                                  {
                                    pre with
                                    p_axes =
                                      { ax with zips = (key, values) :: ax.zips }
                                      :: axes;
                                    p_seen = (key, line) :: pre.p_seen;
                                  }
                                  (i + 1) rest
                        end)
            end
          | "expect" -> begin
              match split_words arg with
              | [ metric; op_str; bound_str ] -> begin
                  match
                    (op_of_string op_str, float_of_string_opt bound_str)
                  with
                  | None, _ ->
                      err
                        (Printf.sprintf
                           "unknown comparison %S (use >=, <=, >, < or ==)"
                           op_str)
                  | _, None ->
                      err (Printf.sprintf "bad gate bound %S" bound_str)
                  | Some op, Some bound ->
                      go
                        {
                          pre with
                          p_gates = (line, { metric; op; bound }) :: pre.p_gates;
                        }
                        (i + 1) rest
                end
              | _ -> err "expected 'expect metric >= bound'"
            end
          | _ -> begin
              match split_eq s with
              | None -> err "expected 'key = value'"
              | Some (key, value) ->
                  check_fresh key (fun () ->
                      let seen = (key, line) :: pre.p_seen in
                      match key with
                      | "id" ->
                          if value = "" then err "id must be non-empty"
                          else
                            go
                              { pre with p_id = Some value; p_seen = seen }
                              (i + 1) rest
                      | "title" ->
                          go
                            { pre with p_title = Some value; p_seen = seen }
                            (i + 1) rest
                      | "mode" -> begin
                          match value with
                          | "kernel" ->
                              go
                                {
                                  pre with
                                  p_mode = Some Kernel;
                                  p_seen = seen;
                                }
                                (i + 1) rest
                          | "service" ->
                              go
                                {
                                  pre with
                                  p_mode = Some Service;
                                  p_seen = seen;
                                }
                                (i + 1) rest
                          | _ -> err "mode must be kernel or service"
                        end
                      | _ ->
                          go
                            {
                              pre with
                              p_base = (line, key, value) :: pre.p_base;
                              p_seen = seen;
                            }
                            (i + 1) rest)
            end
      end
  and finish pre =
    let mode = Option.value pre.p_mode ~default:Kernel in
    (* Base assignments were deferred until the mode is known: in
       service mode some keys route to the load generator, not the
       scenario. *)
    let* base, service_base =
      List.fold_left
        (fun acc (line, key, value) ->
          let* base, service = acc in
          let err msg =
            Error (Printf.sprintf "line %d: %s (key '%s')" line msg key)
          in
          match mode with
          | Service when List.mem key service_keys -> begin
              match validate_service_value ~key ~value with
              | Ok () -> Ok (base, (key, value) :: service)
              | Error e -> err e
            end
          | Service when not (List.mem key service_scenario_keys) ->
              err "key is not supported in service mode"
          | _ -> begin
              match Scenario.set_key base ~key ~value with
              | Ok base -> Ok (base, service)
              | Error e -> err e
            end)
        (Ok (Scenario.default, []))
        (List.rev pre.p_base)
    in
    let axes = finish_axes pre in
    (* Axis keys routed like base keys; values are validated cell by
       cell in [cells]. *)
    let* () =
      List.fold_left
        (fun acc ax ->
          let* () = acc in
          let check key =
            match mode with
            | Service
              when List.mem key service_keys
                   || List.mem key service_scenario_keys ->
                Ok ()
            | Service ->
                Error
                  (Printf.sprintf
                     "swept key '%s' is not supported in service mode" key)
            | Kernel -> begin
                match
                  Scenario.set_key Scenario.default ~key
                    ~value:"<axis-probe>"
                with
                | Error msg
                  when String.length msg >= 12
                       && String.sub msg 0 12 = "unknown key:" ->
                    Error msg
                | _ -> Ok ()
              end
          in
          let* () = check ax.axis_key in
          List.fold_left
            (fun acc (zkey, _) ->
              let* () = acc in
              check zkey)
            (Ok ()) ax.zips)
        (Ok ()) axes
    in
    let metrics = metrics_of_mode mode in
    let* () =
      List.fold_left
        (fun acc (line, g) ->
          let* () = acc in
          if List.mem g.metric metrics then Ok ()
          else
            Error
              (Printf.sprintf
                 "line %d: unknown gate metric %S (%s mode knows: %s)" line
                 g.metric
                 (match mode with Kernel -> "kernel" | Service -> "service")
                 (String.concat ", " metrics)))
        (Ok ())
        (List.rev pre.p_gates)
    in
    Ok
      {
        id = Option.value pre.p_id ~default:"MATRIX";
        title = Option.value pre.p_title ~default:"scenario matrix";
        mode;
        base;
        service_base = List.rev service_base;
        axes;
        gates = List.rev_map snd pre.p_gates;
        offset_seeds = pre.p_offset;
      }
  in
  go
    {
      p_id = None;
      p_title = None;
      p_mode = None;
      p_base = [];
      p_axes = [];
      p_gates = [];
      p_seen = [];
      p_offset = false;
    }
    0 lines

(* --- grid expansion --- *)

let cell_count spec =
  List.fold_left (fun acc ax -> acc * List.length ax.values) 1 spec.axes

(* Row-major, LAST axis fastest: the first declared axis is the
   outermost loop, exactly the nesting order of the bench loops the
   matrix files replace. *)
let axis_indices ~dims i =
  let k = Array.length dims in
  let idx = Array.make k 0 in
  let rem = ref i in
  for a = k - 1 downto 0 do
    idx.(a) <- !rem mod dims.(a);
    rem := !rem / dims.(a)
  done;
  idx

let cells spec =
  let axes = Array.of_list spec.axes in
  let dims = Array.map (fun a -> List.length a.values) axes in
  let total = cell_count spec in
  let value_arrays =
    Array.map
      (fun a ->
        ( Array.of_list a.values,
          List.map (fun (k, vs) -> (k, Array.of_list vs)) a.zips ))
      axes
  in
  (* Derived seeds: one splitmix stream over the file seed, one draw
     per cell, masked to OCaml's positive-int range — cells never share
     a replication stream and adding an axis never reuses old seeds.
     Offset seeds (any [seed+=] annotation) reproduce the historical
     bench arithmetic instead: file seed + sum(stride * axis index). *)
  let derived =
    if spec.offset_seeds then [||]
    else begin
      let sm = Splitmix64.create (Int64.of_int spec.base.Scenario.seed) in
      Array.init total (fun _ -> Int64.to_int (Splitmix64.next sm) land max_int)
    end
  in
  let build i =
    let idx = axis_indices ~dims i in
    let coords = ref [] in
    let scenario = ref spec.base in
    let service = ref spec.service_base in
    let error = ref None in
    let apply key value =
      if !error = None then begin
        coords := (key, value) :: !coords;
        match spec.mode with
        | Service when List.mem key service_keys -> begin
            match validate_service_value ~key ~value with
            | Ok () ->
                service := (key, value) :: List.remove_assoc key !service
            | Error e -> error := Some (Printf.sprintf "%s: %s" key e)
          end
        | _ -> begin
            match Scenario.set_key !scenario ~key ~value with
            | Ok s -> scenario := s
            | Error e -> error := Some (Printf.sprintf "%s: %s" key e)
          end
      end
    in
    Array.iteri
      (fun a (values, zips) ->
        apply axes.(a).axis_key values.(idx.(a));
        List.iter (fun (zkey, zvals) -> apply zkey zvals.(idx.(a))) zips)
      value_arrays;
    let seed =
      if spec.offset_seeds then begin
        let s = ref spec.base.Scenario.seed in
        Array.iteri (fun a k -> s := !s + (axes.(a).stride * k)) idx;
        !s
      end
      else derived.(i)
    in
    let coords = List.rev !coords in
    match !error with
    | Some e ->
        Error
          (Printf.sprintf "cell %d {%s}: %s" i
             (String.concat ", "
                (List.map (fun (k, v) -> k ^ " = " ^ v) coords))
             e)
    | None -> begin
        match Scenario.validate { !scenario with seed } with
        | Error e ->
            Error
              (Printf.sprintf "cell %d {%s}: %s" i
                 (String.concat ", "
                    (List.map (fun (k, v) -> k ^ " = " ^ v) coords))
                 e)
        | Ok scenario ->
            Ok
              {
                cell_index = i;
                coords;
                scenario;
                service = !service;
                cell_seed = seed;
              }
      end
  in
  let out = Array.make total None in
  let first_error = ref None in
  for i = 0 to total - 1 do
    if !first_error = None then
      match build i with
      | Ok c -> out.(i) <- Some c
      | Error e -> first_error := Some e
  done;
  match !first_error with
  | Some e -> Error e
  | None -> Ok (Array.map Option.get out)

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          parse (really_input_string ic len))

(* --- quick-mode patching (bench wrappers) --- *)

let set_base spec ~key ~value =
  match spec.mode with
  | Service when List.mem key service_keys -> begin
      match validate_service_value ~key ~value with
      | Ok () ->
          Ok
            {
              spec with
              service_base =
                (key, value) :: List.remove_assoc key spec.service_base;
            }
      | Error e -> Error e
    end
  | _ -> begin
      match Scenario.set_key spec.base ~key ~value with
      | Ok base -> Ok { spec with base }
      | Error e -> Error e
    end

let override_axis spec ~key ~values =
  let rec go acc = function
    | [] -> Error (Printf.sprintf "no sweep axis '%s'" key)
    | ax :: rest when ax.axis_key = key ->
        if values = [] then Error "empty axis override"
        else if
          ax.zips <> []
          && List.exists
               (fun (_, zvs) -> List.length zvs <> List.length values)
               ax.zips
        then
          Error
            (Printf.sprintf
               "axis '%s' carries zipped keys of length %d; override with \
                the same length"
               key
               (List.length ax.values))
        else Ok (List.rev_append acc ({ ax with values } :: rest))
    | ax :: rest -> go (ax :: acc) rest
  in
  match go [] spec.axes with
  | Error e -> Error e
  | Ok axes -> Ok { spec with axes }

(* --- execution --- *)

type cell_outcome = {
  cell : cell;
  reps_done : int;
  metrics : (string * float) list;
  per_seed : (string * float list) list;
  gate_results : (gate * float * bool) list;
  results : Engine.result list;
}

type run_result = {
  spec : spec;
  outcomes : cell_outcome list;
  truncated : bool;
}

type rep_measure = {
  rm_result : Engine.result;
  rm_wall : float;
  rm_minor : float;
  rm_heap_delta : float;
}

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let eval_gates gates metrics =
  List.map
    (fun g ->
      match List.assoc_opt g.metric metrics with
      | Some v -> (g, v, gate_holds g v)
      | None -> (g, Float.nan, false))
    gates

(* Per-seed effective rounds: the completion round when the run
   completed, the executed rounds otherwise — the bench harness's
   definition, kept so migrated frontier points stay comparable. *)
let eff_rounds (r : Engine.result) =
  match r.Engine.completion_round with
  | Some c -> float_of_int c
  | None -> float_of_int r.Engine.rounds

let kernel_outcome spec cell measures =
  let ms = List.filter_map Fun.id (Array.to_list measures) in
  let results = List.map (fun m -> m.rm_result) ms in
  let pop (r : Engine.result) = float_of_int (max 1 r.Engine.population) in
  let coverages = List.map Engine.coverage results in
  let rounds = List.map eff_rounds results in
  let txs =
    List.map
      (fun r -> float_of_int (Engine.transmissions r) /. pop r)
      results
  in
  let metrics =
    [
      ("coverage", mean coverages);
      ("rounds", mean rounds);
      ("tx_per_node", mean txs);
      ( "success_rate",
        mean (List.map (fun r -> if Engine.success r then 1. else 0.) results)
      );
      ( "epochs",
        mean (List.map (fun r -> float_of_int (Engine.epochs_used r)) results)
      );
      ( "repair_tx_per_node",
        mean
          (List.map
             (fun r -> float_of_int (Engine.repair_tx r) /. pop r)
             results) );
      ("wall_s", List.fold_left (fun a m -> a +. m.rm_wall) 0. ms);
      ( "minor_words_per_node",
        mean (List.map2 (fun m r -> m.rm_minor /. pop r) ms results) );
      ( "heap_bytes_per_node",
        List.fold_left
          (fun a (m, r) -> Float.max a (m.rm_heap_delta *. 8. /. pop r))
          0.
          (List.combine ms results) );
    ]
  in
  {
    cell;
    reps_done = List.length ms;
    metrics;
    per_seed =
      [
        ("per_seed_coverage", coverages);
        ("per_seed_rounds", rounds);
        ("per_seed_tx", txs);
      ];
    gate_results = eval_gates spec.gates metrics;
    results;
  }

let run ?domains ?run_service spec =
  match cells spec with
  | Error e -> Error e
  | Ok cs -> begin
      match spec.mode with
      | Kernel ->
          let tasks =
            Array.map
              (fun c ->
                {
                  Experiment.seed = c.cell_seed;
                  reps = c.scenario.Scenario.reps;
                })
              cs
          in
          (* Every (cell, rep) pair runs on ONE shared pool: no
             spawn/join barrier between cells, so a grid of small
             cells saturates the domains. GC minor words are
             domain-local in OCaml 5, so the per-rep deltas measured
             inside the worker are exact; heap_words is global and
             only indicative under concurrency. *)
          let out =
            Experiment.run_tasks ?domains tasks (fun ~task ~rep:_ rng ->
                let stat0 = Gc.quick_stat () in
                let t0 = Unix.gettimeofday () in
                let result = Scenario.run_rep cs.(task).scenario rng in
                let t1 = Unix.gettimeofday () in
                let stat1 = Gc.quick_stat () in
                {
                  rm_result = result;
                  rm_wall = t1 -. t0;
                  rm_minor = stat1.Gc.minor_words -. stat0.Gc.minor_words;
                  rm_heap_delta =
                    float_of_int (stat1.Gc.heap_words - stat0.Gc.heap_words);
                })
          in
          let outcomes =
            Array.to_list
              (Array.mapi (fun i c -> kernel_outcome spec c out.(i)) cs)
          in
          let truncated =
            Experiment.interrupted ()
            || List.exists
                 (fun o -> o.reps_done < o.cell.scenario.Scenario.reps)
                 outcomes
          in
          Ok { spec; outcomes; truncated }
      | Service -> begin
          match run_service with
          | None -> Error "this build cannot run service cells"
          | Some f ->
              (* Service cells drive a full client/server pair each;
                 they run sequentially (the service already spreads its
                 own worker domains) with an interruption check between
                 cells. *)
              let rec go acc = function
                | [] -> (List.rev acc, false)
                | c :: rest ->
                    if Experiment.interrupted () then (List.rev acc, true)
                    else begin
                      let t0 = Unix.gettimeofday () in
                      let metrics = f c in
                      let wall = Unix.gettimeofday () -. t0 in
                      let metrics =
                        if List.mem_assoc "wall_s" metrics then metrics
                        else ("wall_s", wall) :: metrics
                      in
                      let o =
                        {
                          cell = c;
                          reps_done = 1;
                          metrics;
                          per_seed = [];
                          gate_results = eval_gates spec.gates metrics;
                          results = [];
                        }
                      in
                      go (o :: acc) rest
                    end
              in
              let outcomes, truncated = go [] (Array.to_list cs) in
              Ok
                {
                  spec;
                  outcomes;
                  truncated = truncated || Experiment.interrupted ();
                }
        end
    end

let gates_failed result =
  List.fold_left
    (fun acc o ->
      acc
      + List.length (List.filter (fun (_, _, ok) -> not ok) o.gate_results))
    0 result.outcomes

(* --- JSON --- *)

let point_json o =
  let coords = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) o.cell.coords) in
  let gates =
    Json.List
      (List.map
         (fun (g, observed, pass) ->
           Json.Obj
             [
               ("metric", Json.String g.metric);
               ("op", Json.String (op_to_string g.op));
               ("bound", Json.Float g.bound);
               ( "observed",
                 if Float.is_nan observed then Json.Null
                 else Json.Float observed );
               ("pass", Json.Bool pass);
             ])
         o.gate_results)
  in
  Json.Obj
    ([
       ("coords", coords);
       ("seed", Json.Int o.cell.cell_seed);
       ("reps", Json.Int o.reps_done);
       ( "truncated",
         Json.Bool (o.reps_done < o.cell.scenario.Scenario.reps) );
       ( "metrics",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) o.metrics) );
       ("gates", gates);
     ]
    @ List.map
        (fun (k, vs) -> (k, Json.List (List.map (fun v -> Json.Float v) vs)))
        o.per_seed)

let data_json result =
  Json.Obj
    [
      ( "mode",
        Json.String
          (match result.spec.mode with
          | Kernel -> "kernel"
          | Service -> "service") );
      ("cells", Json.Int (List.length result.outcomes));
      ("gates_failed", Json.Int (gates_failed result));
      ("truncated", Json.Bool result.truncated);
      ("points", Json.List (List.map point_json result.outcomes));
    ]

(* --- dry run --- *)

let dry_run_table spec =
  match cells spec with
  | Error e -> Error e
  | Ok cs ->
      let axis_cols =
        List.concat_map
          (fun a -> a.axis_key :: List.map fst a.zips)
          spec.axes
      in
      let columns =
        [ ("cell", Table.Right) ]
        @ List.map (fun k -> (k, Table.Left)) axis_cols
        @ [ ("seed", Table.Right); ("reps", Table.Right) ]
      in
      let t = Table.create ~columns in
      Array.iter
        (fun c ->
          Table.add_row t
            ([ string_of_int c.cell_index ]
            @ List.map (fun k -> List.assoc k c.coords) axis_cols
            @ [
                string_of_int c.cell_seed;
                string_of_int c.scenario.Scenario.reps;
              ]))
        cs;
      let gates =
        match spec.gates with
        | [] -> "(no gates)"
        | gs ->
            String.concat "; "
              (List.map
                 (fun g ->
                   Printf.sprintf "%s %s %g" g.metric (op_to_string g.op)
                     g.bound)
                 gs)
      in
      Ok
        (Printf.sprintf "%s: %s\nmode %s, %d cells, seeds %s\ngates: %s\n%s"
           spec.id spec.title
           (match spec.mode with Kernel -> "kernel" | Service -> "service")
           (Array.length cs)
           (if spec.offset_seeds then "file seed + stride offsets"
            else "derived (splitmix per cell)")
           gates (Table.render t))
