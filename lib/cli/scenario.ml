module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Engine = Rumor_sim.Engine
module Fault = Rumor_sim.Fault
module Params = Rumor_core.Params
module Algorithm = Rumor_core.Algorithm
module Baselines = Rumor_core.Baselines
module Run_ = Rumor_core.Run
module Repair = Rumor_core.Repair
module Overlay = Rumor_p2p.Overlay
module Churn = Rumor_p2p.Churn
module Summary = Rumor_stats.Summary
module Experiment = Rumor_stats.Experiment

type t = {
  seed : int;
  n : int;
  d : int;
  topology : string;
  protocol : string;
  alpha : float;
  fanout : int;
  loss : float;
  call_failure : float;
  burst_loss : float;
  burst_len : float;
  crash_rate : float;
  recover_rate : float;
  crash_adversary : string;
  crash_count : int;
  crash_round : int;
  strike_every : int;
  partition_round : int;
  heal_round : int;
  partition_fraction : float;
  join_prob : float;
  leave_prob : float;
  churn_rate : float;
  n_error : float;
  repair_timeout : int;
  repair_backoff : int;
  max_epochs : int;
  stop : string;
  source : string;
  reps : int;
  domains : int;
  packed : bool;
}

let default =
  {
    seed = 1;
    n = 16384;
    d = 8;
    topology = "regular";
    protocol = "bef";
    alpha = 1.0;
    fanout = 4;
    loss = 0.;
    call_failure = 0.;
    burst_loss = 0.;
    burst_len = 4.;
    crash_rate = 0.;
    recover_rate = 0.;
    crash_adversary = "none";
    crash_count = 0;
    crash_round = 1;
    strike_every = 0;
    partition_round = 0;
    heal_round = 0;
    partition_fraction = 0.5;
    join_prob = 0.;
    leave_prob = 0.;
    churn_rate = -1.;
    n_error = 1.;
    repair_timeout = 2;
    repair_backoff = 8;
    max_epochs = 0;
    stop = "auto";
    source = "random";
    reps = 5;
    domains = 0;
    packed = true;
  }

let topologies =
  [
    "regular"; "hypercube"; "torus"; "complete"; "gnp"; "product-k5";
    "implicit-regular"; "implicit-hypercube"; "implicit-chords";
  ]

let is_implicit topology =
  String.length topology >= 9 && String.sub topology 0 9 = "implicit-"

(* Materialising a graph above this size means hundreds of MB of stub
   arrays and CSR before the run even starts; beyond it only the
   implicit views are viable. 2^22 nodes at d = 8 is already a ~260 MB
   build. *)
let materialise_cap = 1 lsl 22

let protocols =
  [ "bef"; "bef-seq"; "push"; "pull"; "push-pull"; "push-pull-age";
    "quasirandom" ]

let adversaries = [ "none"; "random"; "degree"; "frontier" ]

(* --- single-key assignment ---

   [set_key] is the whole scalar surface of the scenario language: one
   key, one raw value string, range checks included. It carries no line
   information so the matrix runner can reuse it to build sweep cells;
   [parse] wraps its errors with line numbers. *)

let set_key acc ~key ~value : (t, string) result =
  let parse_int v k =
    match int_of_string_opt (String.trim v) with
    | Some x -> k x
    | None -> Error "expected an integer"
  in
  let parse_float v k =
    match float_of_string_opt (String.trim v) with
    | Some x -> k x
    | None -> Error "expected a number"
  in
  let err msg = Error msg in
  let ok acc = Ok acc in
  match key with
  | "seed" -> parse_int value (fun x -> ok { acc with seed = x })
  | "n" ->
      parse_int value (fun x ->
          if x < 4 then err "n must be >= 4" else ok { acc with n = x })
  | "d" ->
      parse_int value (fun x ->
          if x < 1 then err "d must be >= 1" else ok { acc with d = x })
  | "topology" ->
      if List.mem value topologies then ok { acc with topology = value }
      else err ("unknown topology: " ^ value)
  | "protocol" ->
      if List.mem value protocols then ok { acc with protocol = value }
      else err ("unknown protocol: " ^ value)
  | "alpha" ->
      parse_float value (fun x ->
          if x <= 0. then err "alpha must be positive"
          else ok { acc with alpha = x })
  | "fanout" ->
      parse_int value (fun x ->
          if x < 1 then err "fanout must be >= 1" else ok { acc with fanout = x })
  | "loss" ->
      parse_float value (fun x ->
          if x < 0. || x > 1. then err "loss must be in [0, 1]"
          else ok { acc with loss = x })
  | "call_failure" ->
      parse_float value (fun x ->
          if x < 0. || x > 1. then err "call_failure must be in [0, 1]"
          else ok { acc with call_failure = x })
  | "burst_loss" ->
      parse_float value (fun x ->
          if x < 0. || x >= 1. then err "burst_loss must be in [0, 1)"
          else ok { acc with burst_loss = x })
  | "burst_len" ->
      parse_float value (fun x ->
          if x < 1. then err "burst_len must be >= 1"
          else ok { acc with burst_len = x })
  | "crash_rate" ->
      parse_float value (fun x ->
          if x < 0. || x > 1. then err "crash_rate must be in [0, 1]"
          else ok { acc with crash_rate = x })
  | "recover_rate" ->
      parse_float value (fun x ->
          if x < 0. || x > 1. then err "recover_rate must be in [0, 1]"
          else ok { acc with recover_rate = x })
  | "crash_adversary" ->
      if List.mem value adversaries then ok { acc with crash_adversary = value }
      else err ("unknown crash_adversary: " ^ value)
  | "crash_count" ->
      parse_int value (fun x ->
          if x < 0 then err "crash_count must be >= 0"
          else ok { acc with crash_count = x })
  | "crash_round" ->
      parse_int value (fun x ->
          if x < 1 then err "crash_round must be >= 1"
          else ok { acc with crash_round = x })
  | "strike_every" ->
      parse_int value (fun x ->
          if x < 0 then err "strike_every must be >= 0 (0 = one-shot)"
          else ok { acc with strike_every = x })
  | "partition_round" ->
      parse_int value (fun x ->
          if x < 0 then err "partition_round must be >= 0 (0 = off)"
          else ok { acc with partition_round = x })
  | "heal_round" ->
      parse_int value (fun x ->
          if x < 0 then err "heal_round must be >= 0"
          else ok { acc with heal_round = x })
  | "partition_fraction" ->
      parse_float value (fun x ->
          if x < 0. || x > 1. then err "partition_fraction must be in [0, 1]"
          else ok { acc with partition_fraction = x })
  | "join_prob" ->
      parse_float value (fun x ->
          if x < 0. || x > 1. then err "join_prob must be in [0, 1]"
          else ok { acc with join_prob = x })
  | "leave_prob" ->
      parse_float value (fun x ->
          if x < 0. || x > 1. then err "leave_prob must be in [0, 1]"
          else ok { acc with leave_prob = x })
  | "churn_rate" ->
      parse_float value (fun x ->
          if x < 0. then err "churn_rate must be >= 0"
          else ok { acc with churn_rate = x })
  | "n_error" ->
      parse_float value (fun x ->
          if x <= 0. then err "n_error must be positive"
          else ok { acc with n_error = x })
  | "repair_timeout" ->
      parse_int value (fun x ->
          if x < 0 then err "repair_timeout must be >= 0"
          else ok { acc with repair_timeout = x })
  | "repair_backoff" ->
      parse_int value (fun x ->
          if x < 1 then err "repair_backoff must be >= 1"
          else ok { acc with repair_backoff = x })
  | "max_epochs" ->
      parse_int value (fun x ->
          if x < 0 then err "max_epochs must be >= 0"
          else ok { acc with max_epochs = x })
  | "stop" -> begin
      match value with
      | "auto" | "true" | "false" -> ok { acc with stop = value }
      | _ -> err "stop must be auto, true or false"
    end
  | "source" -> begin
      match value with
      | "random" | "first" -> ok { acc with source = value }
      | _ -> err "source must be random or first"
    end
  | "reps" ->
      parse_int value (fun x ->
          if x < 1 then err "reps must be >= 1" else ok { acc with reps = x })
  | "domains" ->
      parse_int value (fun x ->
          if x < 0 then err "domains must be >= 0 (0 = auto)"
          else ok { acc with domains = x })
  | "packed" -> begin
      match value with
      | "true" -> ok { acc with packed = true }
      | "false" -> ok { acc with packed = false }
      | _ -> err "packed must be true or false"
    end
  | other -> err ("unknown key: " ^ other)

(* Cross-key checks that only make sense once the whole file is read. *)
let validate acc : (t, string) result =
  if acc.burst_loss > acc.burst_len /. (acc.burst_len +. 1.) then
    Error
      (Printf.sprintf
         "burst_loss %.2f is unrealisable with burst_len %.1f (max %.2f)"
         acc.burst_loss acc.burst_len
         (acc.burst_len /. (acc.burst_len +. 1.)))
  else if acc.partition_round > 0 && acc.heal_round <= acc.partition_round then
    Error
      (Printf.sprintf "heal_round %d must be greater than partition_round %d"
         acc.heal_round acc.partition_round)
  else if
    is_implicit acc.topology
    && (acc.join_prob > 0. || acc.leave_prob > 0. || acc.churn_rate >= 0.)
  then
    Error
      (Printf.sprintf
         "churn (join_prob/leave_prob/churn_rate) needs a materialised \
          overlay; topology %s computes its edges implicitly"
         acc.topology)
  else if acc.churn_rate >= 0. && (acc.join_prob > 0. || acc.leave_prob > 0.)
  then
    Error
      "churn_rate (session churn at rate * n ops/round) and \
       join_prob/leave_prob (one probabilistic session per round) are \
       alternative churn models; set one or the other"
  else if
    (acc.topology = "implicit-regular"
    || (acc.topology = "implicit-chords" && acc.d > 2))
    && acc.n land 1 = 1
  then
    Error
      (Printf.sprintf
         "topology %s pairs nodes into perfect matchings and needs an even n \
          (got %d)"
         acc.topology acc.n)
  else if not (is_implicit acc.topology) && acc.n > materialise_cap then
    Error
      (Printf.sprintf
         "n = %d exceeds the materialised-graph cap of %d nodes; use \
          implicit-regular, implicit-hypercube or implicit-chords for runs \
          at this scale"
         acc.n materialise_cap)
  else Ok acc

(* Scenario files are plain text but not always written on the host
   that runs them: a trailing '\r' (CRLF files) and trailing blanks on
   a [key = value] line are stripped before any token is cut, so the
   same file parses on every platform. *)
let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc seen i = function
    | [] -> validate acc
    | raw :: rest -> begin
        let line = i + 1 in
        (* Every message names the line and quotes its raw text, so a
           bad value in a long file is findable without counting. *)
        let err msg =
          Error
            (Printf.sprintf "line %d: %s (in %S)" line msg (String.trim raw))
        in
        let s = String.trim (strip_comment raw) in
        if s = "" then go acc seen (i + 1) rest
        else
          match String.index_opt s '=' with
          | None -> err "expected 'key = value'"
          | Some eq -> begin
              let key = String.trim (String.sub s 0 eq) in
              let value =
                String.trim (String.sub s (eq + 1) (String.length s - eq - 1))
              in
              match List.assoc_opt key seen with
              | Some first ->
                  err
                    (Printf.sprintf
                       "duplicate key '%s' (already set on line %d)" key first)
              | None -> begin
                  match set_key acc ~key ~value with
                  | Error msg -> err msg
                  | Ok acc -> go acc ((key, line) :: seen) (i + 1) rest
                end
            end
      end
  in
  go default [] 0 lines

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          parse (really_input_string ic len))

let make_graph ~rng ~topology ~n ~d =
  if is_implicit topology then
    failwith
      (Printf.sprintf
         "topology %S is implicit and is never materialised; run it directly \
          (scenario key [topology = %s] or rumor broadcast --topology %s)"
         topology topology topology);
  if n > materialise_cap then
    failwith
      (Printf.sprintf
         "n = %d exceeds the materialised-graph cap of %d nodes; use an \
          implicit topology (implicit-regular, implicit-hypercube, \
          implicit-chords), which the packed per-node kernel state \
          carries to n = 10^8"
         n materialise_cap);
  match topology with
  | "regular" ->
      Rumor_gen.Regular.sample_connected ~rng ~n ~d Rumor_gen.Regular.Pairing
  | "hypercube" -> Rumor_gen.Classic.hypercube (Params.ceil_log2 n)
  | "torus" ->
      let side = max 3 (int_of_float (sqrt (float_of_int n))) in
      Rumor_gen.Classic.torus2d side side
  | "complete" -> Rumor_gen.Classic.complete n
  | "gnp" ->
      Rumor_gen.Gnp.sample ~rng ~n ~p:(float_of_int d /. float_of_int (n - 1))
  | "product-k5" ->
      let base =
        Rumor_gen.Regular.sample_connected ~rng ~n:(max 4 (n / 5))
          ~d:(max 1 (d - 4)) Rumor_gen.Regular.Pairing
      in
      Rumor_gen.Product.with_clique base ~k:5
  | other -> failwith (Printf.sprintf "unknown topology %S" other)

(* One 62-bit seed per implicit view, drawn from the replication
   stream, so every repetition sees a fresh random graph exactly as
   [make_graph] samples a fresh one. *)
let draw_seed rng = Int64.to_int (Rng.bits64 rng) land max_int

let make_topology ~rng ~topology ~n ~d =
  match topology with
  | "implicit-regular" ->
      Rumor_sim.Topology.implicit_regular ~seed:(draw_seed rng) ~n ~d
  | "implicit-hypercube" -> Rumor_sim.Topology.implicit_hypercube ~n
  | "implicit-chords" ->
      Rumor_sim.Topology.implicit_chords ~seed:(draw_seed rng) ~n ~d
  | other -> Rumor_sim.Topology.of_graph (make_graph ~rng ~topology:other ~n ~d)

let make_protocol ?n_estimate ~protocol ~n ~d ~alpha ~fanout () =
  let est = match n_estimate with Some e -> max 4 e | None -> n in
  let params = Params.make ~alpha ~fanout ~n_estimate:est ~d () in
  let lg = Params.ceil_log2 (max n 2) in
  let horizon = 20 * lg in
  match protocol with
  | "bef" -> Algorithm.make params
  | "bef-seq" -> Algorithm.sequentialised params
  | "push" -> Baselines.push ~fanout:1 ~horizon ()
  | "pull" -> Baselines.pull ~fanout:1 ~horizon ()
  | "push-pull" -> Baselines.push_pull ~fanout:1 ~horizon ()
  | "push-pull-age" ->
      Baselines.push_pull_age ~fanout:1 ~push_rounds:lg ~total_rounds:(3 * lg)
        ()
  | "quasirandom" -> Baselines.quasirandom ~fanout:1 ~horizon
  | other -> failwith (Printf.sprintf "unknown protocol %S" other)

let protocol_name t =
  (make_protocol ~protocol:t.protocol ~n:t.n ~d:t.d ~alpha:t.alpha
     ~fanout:t.fanout ())
    .Rumor_sim.Protocol.name

(* bef and bef-seq carry their own phase schedule (and push-pull-age
   its age-out), so they run to quiescence; the open-ended baselines
   stop at full coverage to keep their horizons from dominating. *)
let effective_stop t =
  match t.stop with
  | "true" -> true
  | "false" -> false
  | _ ->
      t.protocol <> "bef" && t.protocol <> "bef-seq"
      && t.protocol <> "push-pull-age"

let fault_plan t =
  let burst =
    if t.burst_loss > 0. then
      Some (Fault.burst ~loss:t.burst_loss ~burst_len:t.burst_len)
    else None
  in
  let strike =
    if t.crash_adversary <> "none" && t.crash_count > 0 then
      let adversary =
        match t.crash_adversary with
        | "random" -> Fault.Random_nodes
        | "degree" -> Fault.Highest_degree
        | "frontier" -> Fault.Frontier
        | other -> failwith (Printf.sprintf "unknown crash_adversary %S" other)
      in
      Some
        (Fault.strike ~adversary ~every:t.strike_every ~at_round:t.crash_round
           ~count:t.crash_count ())
    else None
  in
  let partition =
    if t.partition_round > 0 then
      Some
        (Fault.partition ~fraction:t.partition_fraction
           ~split_at:t.partition_round ~heal_at:t.heal_round ())
    else None
  in
  Fault.plan ~call_failure:t.call_failure ~link_loss:t.loss ?burst
    ~crash_rate:t.crash_rate ~recover_rate:t.recover_rate ?strike ?partition ()

let repair_config scenario =
  if scenario.max_epochs > 0 then
    Some
      (Repair.config ~timeout:scenario.repair_timeout
         ~backoff_cap:(max scenario.repair_backoff 1)
         ~max_epochs:scenario.max_epochs ~n:scenario.n ())
  else None

(* One repetition on one pre-forked stream — the unit the matrix
   runner schedules onto its shared domain pool. The draw order (graph
   or view sample, then source, then engine) is a compatibility
   contract: a cell run here must be bit-identical to the same seed
   run through [run] or the historical bench loops. *)
let run_rep scenario rng =
  let fault = fault_plan scenario in
  let stop = effective_stop scenario in
  let repair_config = repair_config scenario in
  if is_implicit scenario.topology then begin
    (* No graph is ever built: the kernel walks seed-derived
       neighbour functions, so this path scales to n = 10^7+.
       Churn is rejected at parse time (implicit views have a
       fixed id space); every other fault key composes, since
       faults mutate liveness, never edges. *)
    let topology =
      make_topology ~rng ~topology:scenario.topology ~n:scenario.n
        ~d:scenario.d
    in
    let n_real = topology.Rumor_sim.Topology.capacity in
    let n_estimate =
      int_of_float (ceil (scenario.n_error *. float_of_int n_real))
    in
    let p =
      make_protocol ~n_estimate ~protocol:scenario.protocol ~n:n_real
        ~d:scenario.d ~alpha:scenario.alpha ~fanout:scenario.fanout ()
    in
    let source =
      if scenario.source = "first" then 0 else Rng.int rng n_real
    in
    match repair_config with
    | Some config ->
        Repair.self_heal ~fault ~config ~packed:scenario.packed ~rng ~topology
          ~protocol:p ~sources:[ source ] ()
    | None ->
        Engine.run ~fault ~stop_when_complete:stop ~packed:scenario.packed
          ~rng ~topology ~protocol:p ~sources:[ source ] ()
  end
  else
    let g =
      make_graph ~rng ~topology:scenario.topology ~n:scenario.n ~d:scenario.d
    in
    let n_real = Graph.n g in
    let n_estimate =
      int_of_float (ceil (scenario.n_error *. float_of_int n_real))
    in
    let p =
      make_protocol ~n_estimate ~protocol:scenario.protocol ~n:n_real
        ~d:scenario.d ~alpha:scenario.alpha ~fanout:scenario.fanout ()
    in
    let source =
      if scenario.source = "first" then 0 else Run_.random_source rng g
    in
    let churn_on =
      scenario.churn_rate >= 0. || scenario.join_prob > 0.
      || scenario.leave_prob > 0.
    in
    if churn_on then begin
      (* Session churn mutates an overlay copy of the graph; ids
         handed out for joins are reset to uninformed. Extra
         capacity leaves room for joins beyond the initial size. *)
      let o = Overlay.of_graph ~capacity:(2 * n_real) g in
      let topology = Overlay.to_topology o in
      let joined = ref [] in
      let note ev =
        match ev.Churn.joined with
        | Some v -> joined := v :: !joined
        | None -> ()
      in
      let on_round_end _ =
        if scenario.churn_rate >= 0. then
          (* Rate churn: churn_rate * n symmetric sessions per round,
             the model of the self-healing frontier (E8). *)
          let ops =
            int_of_float (scenario.churn_rate *. float_of_int n_real)
          in
          for _ = 1 to ops do
            note
              (Churn.session o ~rng ~d:scenario.d ~join_prob:0.5
                 ~leave_prob:0.5 ())
          done
        else
          note
            (Churn.session o ~rng ~d:scenario.d ~join_prob:scenario.join_prob
               ~leave_prob:scenario.leave_prob ())
      in
      let reset () =
        let l = !joined in
        joined := [];
        l
      in
      match repair_config with
      | Some config ->
          Repair.self_heal ~fault ~config ~reset ~on_round_end
            ~packed:scenario.packed ~rng ~topology ~protocol:p
            ~sources:[ source ] ()
      | None ->
          Engine.run ~fault ~forget_on_recover:true ~reset ~on_round_end
            ~stop_when_complete:stop ~packed:scenario.packed ~rng ~topology
            ~protocol:p ~sources:[ source ] ()
    end
    else
      match repair_config with
      | Some config ->
          Repair.heal ~fault ~config ~packed:scenario.packed ~rng ~graph:g
            ~protocol:p ~source ()
      | None ->
          Run_.once ~fault ~stop_when_complete:stop ~packed:scenario.packed
            ~rng ~graph:g ~protocol:p ~source ()

type report = {
  scenario : t;
  protocol_name : string;
  success_rate : float;
  coverage : Summary.t;
  tx_per_node : Summary.t;
  rounds : Summary.t;
  epochs : Summary.t;
  repair_tx_per_node : Summary.t;
}

let report_of_results scenario results =
  let of_metric f = Summary.of_list (List.map f results) in
  {
    scenario;
    protocol_name = protocol_name scenario;
    success_rate =
      float_of_int (List.length (List.filter Engine.success results))
      /. float_of_int (max 1 (List.length results));
    coverage = of_metric Engine.coverage;
    tx_per_node =
      of_metric (fun r ->
          float_of_int (Engine.transmissions r)
          /. float_of_int r.Engine.population);
    rounds = of_metric (fun r -> float_of_int r.Engine.rounds);
    epochs = of_metric (fun r -> float_of_int (Engine.epochs_used r));
    repair_tx_per_node =
      of_metric (fun r ->
          if r.Engine.population = 0 then 0.
          else
            float_of_int (Engine.repair_tx r)
            /. float_of_int r.Engine.population);
  }

let run scenario =
  let domains =
    if scenario.domains >= 1 then scenario.domains
    else Experiment.default_domains ()
  in
  (* Bit-identical to sequential replication: streams are pre-forked
     per repetition. *)
  let results =
    Experiment.replicate_parallel ~domains ~seed:scenario.seed
      ~reps:scenario.reps (run_rep scenario)
  in
  report_of_results scenario results

let pp_report ppf r =
  let s = r.scenario in
  let faults = Buffer.create 64 in
  Buffer.add_string faults
    (Printf.sprintf "loss %.2f, call failure %.2f" s.loss s.call_failure);
  if s.burst_loss > 0. then
    Buffer.add_string faults
      (Printf.sprintf ", burst %.2f (len %.1f)" s.burst_loss s.burst_len);
  if s.crash_rate > 0. || s.recover_rate > 0. then
    Buffer.add_string faults
      (Printf.sprintf ", crash %.3f/recover %.3f" s.crash_rate s.recover_rate);
  if s.crash_adversary <> "none" && s.crash_count > 0 then
    Buffer.add_string faults
      (Printf.sprintf ", strike %s x%d @ round %d%s" s.crash_adversary
         s.crash_count s.crash_round
         (if s.strike_every > 0 then
            Printf.sprintf " (recurring every %d)" s.strike_every
          else ""));
  if s.partition_round > 0 then
    Buffer.add_string faults
      (Printf.sprintf ", partition rounds %d..%d (fraction %.2f)"
         s.partition_round s.heal_round s.partition_fraction);
  if s.join_prob > 0. || s.leave_prob > 0. then
    Buffer.add_string faults
      (Printf.sprintf ", churn join %.2f/leave %.2f" s.join_prob s.leave_prob);
  if s.churn_rate >= 0. then
    Buffer.add_string faults
      (Printf.sprintf ", churn rate %.3f n/round" s.churn_rate);
  let repair = Buffer.create 64 in
  if s.max_epochs > 0 then
    Buffer.add_string repair
      (Printf.sprintf "timeout %d, backoff cap %d, max epochs %d"
         s.repair_timeout s.repair_backoff s.max_epochs)
  else Buffer.add_string repair "off";
  Format.fprintf ppf
    "@[<v>protocol    %s@,topology    %s (n=%d, d=%d)@,faults      %s@,repair      %s@,n estimate  %.2f x n@,reps        %d (seed %d)@,success     %.0f%%@,coverage    %a@,tx/node     %a@,rounds      %a"
    r.protocol_name s.topology s.n s.d (Buffer.contents faults)
    (Buffer.contents repair) s.n_error s.reps s.seed (100. *. r.success_rate)
    Summary.pp r.coverage Summary.pp r.tx_per_node Summary.pp r.rounds;
  if s.max_epochs > 0 then
    Format.fprintf ppf "@,epochs      %a@,repair tx/n %a" Summary.pp r.epochs
      Summary.pp r.repair_tx_per_node;
  Format.fprintf ppf "@]"
