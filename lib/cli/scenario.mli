(** Declarative experiment scenarios.

    A scenario is a plain-text [key = value] file (['#'] starts a
    comment) describing one repeated broadcast measurement:

    {v
    # 16k peers, lossy links, the paper's algorithm
    seed     = 7
    n        = 16384
    d        = 8
    topology = regular        # regular|hypercube|torus|complete|gnp|product-k5
                              # |implicit-regular|implicit-hypercube|implicit-chords
    protocol = bef            # bef|bef-seq|push|pull|push-pull|push-pull-age
                              # |quasirandom
    alpha    = 1.0
    fanout   = 4
    loss     = 0.05
    reps     = 5
    domains  = 0          # parallel replication; 0 = auto
    v}

    Lines may end in CRLF and carry trailing whitespace — files written
    on any platform parse identically.

    Fault-injection keys build a full {!Rumor_sim.Fault.t} plan:
    [burst_loss] / [burst_len] (Gilbert–Elliott bursty loss),
    [crash_rate] / [recover_rate] (crash-stop / crash-recovery),
    [crash_adversary] (none|random|degree|frontier) with [crash_count],
    [crash_round] and [strike_every] (0 = one-shot; [k > 0] re-fires
    the strike every [k] rounds, re-targeting each time — a recurring
    [frontier] strike is an adaptive adversary), [partition_round] /
    [heal_round] / [partition_fraction] (a transient partition window:
    split at [partition_round], heal at [heal_round] — required to be
    later), and [n_error] (the protocol is built with
    [n_estimate = n_error * n], testing the constant-factor-estimate
    claim).

    Churn keys [join_prob] / [leave_prob] run the broadcast on a
    mutable overlay with one {!Rumor_p2p.Churn.session} tick per round;
    joins re-enter uninformed. Either key nonzero enables the churn
    harness (and, with repair on, combines it with self-healing
    epochs). The alternative [churn_rate] key (mutually exclusive with
    [join_prob]/[leave_prob]) instead runs [churn_rate * n] symmetric
    sessions (join and leave both at probability 0.5) per round — the
    churn model of the self-healing frontier (bench E8). [churn_rate =
    0] still engages the overlay harness with zero sessions, which is
    what makes the E8 no-churn column reproducible.

    Self-healing keys enable {!Rumor_core.Repair} epochs after the main
    schedule: [max_epochs] (0, the default, disables repair),
    [repair_timeout] (silent rounds before an uninformed node pulls)
    and [repair_backoff] (randomized-backoff window cap). With repair
    on, runs use recovery amnesia (crash-recovered nodes restart
    uninformed) and the report gains epoch/overhead summaries.

    [source] picks the broadcast source: [random] (the default) draws
    it from the replication stream, [first] pins node 0 without
    consuming randomness. [stop] overrides the stop-at-full-coverage
    rule ([auto]: open-ended baselines stop at coverage, bef/bef-seq
    and push-pull-age run their own schedules out).

    The [implicit-*] topologies ({!Rumor_sim.Topology.implicit_regular}
    and friends) compute neighbours on the fly from a per-repetition
    seed instead of materialising a graph, lifting the practical scale
    ceiling from [n ~ 2^20] to [n = 10^7..10^8]. They accept every
    fault key (faults mutate liveness, never edges) and self-healing,
    but reject churn at parse time — churn rewires an overlay, which an
    implicit view has none of. Materialised topologies are capped at
    {!materialise_cap} nodes; beyond that, parsing (and {!make_graph})
    direct you to the implicit alternatives rather than letting the
    build die mid-allocation.

    Unknown keys, duplicate keys, malformed values and out-of-range
    parameters are rejected with a message carrying the offending line
    number {e and} its raw text. The CLI's
    [run] subcommand executes scenario files; the module is also the
    shared home of the topology/protocol factories used across the
    binaries. Sweep grids over these files are the matrix layer
    ({!module:Matrix}). *)

type t = {
  seed : int;
  n : int;
  d : int;
  topology : string;
  protocol : string;
  alpha : float;
  fanout : int;
  loss : float;
  call_failure : float;
  burst_loss : float;  (** stationary bursty-loss rate; 0 disables *)
  burst_len : float;  (** mean burst length in rounds *)
  crash_rate : float;  (** per-node per-round crash probability *)
  recover_rate : float;  (** per-crashed-node per-round recovery probability *)
  crash_adversary : string;  (** none|random|degree|frontier *)
  crash_count : int;  (** nodes killed per strike firing *)
  crash_round : int;  (** round at which the strike (first) lands *)
  strike_every : int;  (** 0 = one-shot; k > 0 re-fires every k rounds *)
  partition_round : int;  (** round the partition opens; 0 = off *)
  heal_round : int;  (** round the partition heals; > [partition_round] *)
  partition_fraction : float;  (** minority-side probability per node *)
  join_prob : float;  (** per-round join probability (churn harness) *)
  leave_prob : float;  (** per-round leave probability (churn harness) *)
  churn_rate : float;
      (** rate-based churn: [churn_rate * n] symmetric sessions per
          round; negative (the default) = unset. [0] still engages the
          overlay harness. Mutually exclusive with
          [join_prob]/[leave_prob]. *)
  n_error : float;  (** n_estimate = n_error * n *)
  repair_timeout : int;
      (** silent rounds before an uninformed node starts pulling *)
  repair_backoff : int;  (** backoff window cap for repair pulls, rounds *)
  max_epochs : int;  (** repair epoch budget; 0 disables self-healing *)
  stop : string;
      (** stop-at-full-coverage: [auto] (default), [true] or [false].
          See {!effective_stop}. *)
  source : string;
      (** broadcast source: [random] (drawn from the replication
          stream) or [first] (node 0, no draw). *)
  reps : int;
  domains : int;
      (** OCaml domains for parallel replication; 0 (the default) means
          auto ({!Rumor_stats.Experiment.default_domains}). Results are
          bit-identical for every value. *)
  packed : bool;
      (** Store per-node protocol state in packed byte cells where the
          protocol supports it ({!Rumor_sim.Protocol.packed_ops});
          [false] forces the boxed arrays. Trajectories are
          bit-identical either way — the switch exists for memory A/B
          runs and as an escape hatch. Scenario key [packed]. *)
}

val default : t
(** [seed 1, n 16384, d 8, regular, bef, alpha 1.0, fanout 4, no
    faults, exact size estimate, 5 reps, auto domains]. *)

val topologies : string list
(** Accepted [topology] values. *)

val protocols : string list
(** Accepted [protocol] values. *)

val adversaries : string list
(** Accepted [crash_adversary] values. *)

val set_key : t -> key:string -> value:string -> (t, string) result
(** Apply one [key = value] assignment (both already trimmed). This is
    the full scalar surface of the scenario language — range checks
    included, cross-key checks deferred to {!validate}. Errors carry no
    line information; {!parse} adds it, and the matrix layer reuses
    [set_key] to build sweep cells. *)

val validate : t -> (t, string) result
(** Cross-key checks run after the whole file is read: burst
    realisability, partition window ordering, churn vs implicit
    topologies, churn-model exclusivity, matching parity, and the
    materialised-size cap. *)

val parse : string -> (t, string) result
(** Parse scenario text over {!default}: {!set_key} per line with
    duplicate detection, then {!validate}. CRLF line endings and
    trailing whitespace are accepted. *)

val parse_file : string -> (t, string) result
(** Read and {!parse} a file; IO failures map to [Error]. *)

val is_implicit : string -> bool
(** Whether a topology name denotes a seed-derived implicit view
    (prefix ["implicit-"]) rather than a materialised graph. *)

val materialise_cap : int
(** Maximum [n] for which {!make_graph} will materialise a graph
    ([2^22]); larger runs must use an implicit topology. *)

val make_graph :
  rng:Rumor_rng.Rng.t -> topology:string -> n:int -> d:int ->
  Rumor_graph.Graph.t
(** Topology factory (shared with the CLI).
    @raise Failure on an unknown topology name, on an implicit
    topology (which is never materialised — use {!make_topology}), or
    when [n] exceeds {!materialise_cap}. *)

val make_topology :
  rng:Rumor_rng.Rng.t -> topology:string -> n:int -> d:int ->
  Rumor_sim.Topology.t
(** Like {!make_graph} but returns the kernel's topology view.
    Implicit names build seed-derived views (drawing one seed from
    [rng] for the randomised ones); materialised names delegate to
    {!make_graph} and wrap the result. The view's [capacity] may
    exceed [n] (implicit-hypercube rounds up to a power of two).
    @raise Failure as {!make_graph}.
    @raise Invalid_argument on invalid implicit parameters (odd [n]
    for implicit-regular, [d < 2] for implicit-chords, ...). *)

val make_protocol :
  ?n_estimate:int ->
  protocol:string -> n:int -> d:int -> alpha:float -> fanout:int -> unit ->
  Rumor_core.Algorithm.state Rumor_sim.Protocol.t
(** Protocol factory (shared with the CLI). [n_estimate] (default [n],
    clamped to >= 4) is the network-size estimate handed to the
    protocol's schedule; [n] remains the true size used for horizons.
    @raise Failure on an unknown protocol name. *)

val effective_stop : t -> bool
(** The stop-at-full-coverage flag a run will use: the [stop] key when
    explicit, otherwise [true] exactly for the open-ended baselines
    (everything but bef, bef-seq and push-pull-age, which carry their
    own schedules). *)

val fault_plan : t -> Rumor_sim.Fault.t
(** Assemble the scenario's fault keys into an engine fault plan. *)

val protocol_name : t -> string
(** The wire/display name of the scenario's protocol (e.g.
    ["bef-parallel-f4"]) — a pure function of the protocol, alpha and
    fanout keys; no RNG is touched. *)

val run_rep : t -> Rumor_rng.Rng.t -> Rumor_sim.Engine.result
(** One repetition on one pre-forked stream — the unit the matrix
    runner schedules onto its shared domain pool. The draw order
    (graph/view sample, then source, then engine) is a compatibility
    contract: the same stream always yields a bit-identical result
    whether dispatched here, via {!run}, or by the historical bench
    loops. *)

type report = {
  scenario : t;
  protocol_name : string;
  success_rate : float;
  coverage : Rumor_stats.Summary.t;
  tx_per_node : Rumor_stats.Summary.t;
  rounds : Rumor_stats.Summary.t;
  epochs : Rumor_stats.Summary.t;
      (** repair epochs consumed per rep (all zero with repair off) *)
  repair_tx_per_node : Rumor_stats.Summary.t;
      (** transmissions spent inside repair epochs, per live node *)
}

val report_of_results : t -> Rumor_sim.Engine.result list -> report
(** Summarise a list of per-repetition results (as produced by
    {!run_rep}) into a report. *)

val run : t -> report
(** Execute the scenario: [reps] broadcasts on fresh graphs with forked
    seeds, summarised. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable rendering of a report. *)
