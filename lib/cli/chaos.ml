module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Engine = Rumor_sim.Engine
module Invariant = Rumor_sim.Invariant
module Topology = Rumor_sim.Topology
module Trace = Rumor_sim.Trace
module Overlay = Rumor_p2p.Overlay
module Churn = Rumor_p2p.Churn
module Run_ = Rumor_core.Run
module Repair = Rumor_core.Repair

(* --- trajectory digests ------------------------------------------- *)

(* splitmix64 finalizer folded over every observable of a run: any
   divergence anywhere in the trajectory (per-round counters, final
   census, crashed ids, repair epochs) changes the digest. *)
let mix h x =
  let z = Int64.add (Int64.logxor h x) 0x9e3779b97f4a7c15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mixi h x = mix h (Int64.of_int x)

let digest_of_result (r : Engine.result) =
  let h = ref 0L in
  h := mixi !h r.Engine.rounds;
  h := mixi !h r.Engine.population;
  h := mixi !h r.Engine.informed;
  h := mixi !h r.Engine.push_tx;
  h := mixi !h r.Engine.pull_tx;
  h := mixi !h r.Engine.channels;
  h :=
    mixi !h
      (match r.Engine.completion_round with Some c -> c + 1 | None -> 0);
  List.iter (fun v -> h := mixi !h v) r.Engine.down;
  List.iter
    (fun (e : Engine.epoch_stat) ->
      h := mixi !h e.Engine.epoch_rounds;
      h := mixi !h e.Engine.epoch_informed;
      h := mixi !h (e.Engine.repair_push_tx + e.Engine.repair_pull_tx))
    r.Engine.repair;
  (match r.Engine.trace with
  | Some t ->
      for i = 0 to Trace.length t - 1 do
        let row = Trace.get t i in
        h := mixi !h row.Trace.round;
        h := mixi !h row.Trace.informed;
        h := mixi !h row.Trace.newly;
        h := mixi !h row.Trace.push_tx;
        h := mixi !h row.Trace.pull_tx;
        h := mixi !h row.Trace.channels
      done
  | None -> ());
  Printf.sprintf "%016Lx" !h

let null_digest = "0000000000000000"

(* --- one deterministic run ---------------------------------------- *)

type outcome = {
  scenario : Scenario.t;
  digest : string;
  violations : Invariant.violation list;
  violation_count : int;
  checked : int;  (* round boundaries the monitor inspected *)
  error : string option;  (* uncaught exception, if the run crashed *)
  rounds : int;
  coverage : float;
  completed : bool;
}

let failed o = o.violation_count > 0 || o.error <> None

let run_raw ?monitor (s : Scenario.t) =
  let rng = Rng.create s.Scenario.seed in
  if Scenario.is_implicit s.Scenario.topology then begin
    (* Implicit views run straight on the kernel: no graph, no
       overlay. Churn is impossible here (parse rejects it), every
       other fault axis behaves exactly as on a materialised graph. *)
    let topology =
      Scenario.make_topology ~rng ~topology:s.Scenario.topology
        ~n:s.Scenario.n ~d:s.Scenario.d
    in
    let n_real = topology.Topology.capacity in
    let n_estimate =
      int_of_float (ceil (s.Scenario.n_error *. float_of_int n_real))
    in
    let protocol =
      Scenario.make_protocol ~n_estimate ~protocol:s.Scenario.protocol
        ~n:n_real ~d:s.Scenario.d ~alpha:s.Scenario.alpha
        ~fanout:s.Scenario.fanout ()
    in
    let fault = Scenario.fault_plan s in
    let stop =
      s.Scenario.protocol <> "bef" && s.Scenario.protocol <> "bef-seq"
    in
    let source = Rng.int rng n_real in
    match
      if s.Scenario.max_epochs > 0 then
        Some
          (Repair.config ~timeout:s.Scenario.repair_timeout
             ~backoff_cap:(max s.Scenario.repair_backoff 1)
             ~max_epochs:s.Scenario.max_epochs ~n:n_real ())
      else None
    with
    | Some config ->
        Repair.self_heal ~fault ~collect_trace:true ?monitor ~config ~rng
          ~topology ~protocol ~sources:[ source ] ()
    | None ->
        Engine.run ~fault ~collect_trace:true ~stop_when_complete:stop
          ?monitor ~rng ~topology ~protocol ~sources:[ source ] ()
  end
  else
  let g =
    Scenario.make_graph ~rng ~topology:s.Scenario.topology ~n:s.Scenario.n
      ~d:s.Scenario.d
  in
  let n_real = Graph.n g in
  let n_estimate =
    int_of_float (ceil (s.Scenario.n_error *. float_of_int n_real))
  in
  let protocol =
    Scenario.make_protocol ~n_estimate ~protocol:s.Scenario.protocol ~n:n_real
      ~d:s.Scenario.d ~alpha:s.Scenario.alpha ~fanout:s.Scenario.fanout ()
  in
  let fault = Scenario.fault_plan s in
  let stop =
    s.Scenario.protocol <> "bef" && s.Scenario.protocol <> "bef-seq"
  in
  let repair_config =
    if s.Scenario.max_epochs > 0 then
      Some
        (Repair.config ~timeout:s.Scenario.repair_timeout
           ~backoff_cap:(max s.Scenario.repair_backoff 1)
           ~max_epochs:s.Scenario.max_epochs ~n:n_real ())
    else None
  in
  let source = Run_.random_source rng g in
  let churn_on = s.Scenario.join_prob > 0. || s.Scenario.leave_prob > 0. in
  if churn_on then begin
    let o = Overlay.of_graph ~capacity:(2 * n_real) g in
    let topology = Overlay.to_topology o in
    let joined = ref [] in
    let on_round_end _ =
      let ev =
        Churn.session o ~rng ~d:s.Scenario.d ~join_prob:s.Scenario.join_prob
          ~leave_prob:s.Scenario.leave_prob ()
      in
      match ev.Churn.joined with
      | Some v -> joined := v :: !joined
      | None -> ()
    in
    let reset () =
      let l = !joined in
      joined := [];
      l
    in
    match repair_config with
    | Some config ->
        Repair.self_heal ~fault ~collect_trace:true ~reset ~on_round_end
          ?monitor ~config ~rng ~topology ~protocol ~sources:[ source ] ()
    | None ->
        Engine.run ~fault ~collect_trace:true ~forget_on_recover:true ~reset
          ~on_round_end ~stop_when_complete:stop ?monitor ~rng ~topology
          ~protocol ~sources:[ source ] ()
  end
  else
    match repair_config with
    | Some config ->
        Repair.heal ~fault ~collect_trace:true ?monitor ~config ~rng ~graph:g
          ~protocol ~source ()
    | None ->
        Engine.run ~fault ~collect_trace:true ~stop_when_complete:stop
          ?monitor ~rng ~topology:(Topology.of_graph g) ~protocol
          ~sources:[ source ] ()

let run_one ?(check = true) (s : Scenario.t) =
  let monitor = if check then Some (Invariant.create ()) else None in
  let finish digest error rounds coverage completed =
    let violations, violation_count, checked =
      match monitor with
      | Some m ->
          (Invariant.violations m, Invariant.count m, Invariant.rounds_checked m)
      | None -> ([], 0, 0)
    in
    {
      scenario = s;
      digest;
      violations;
      violation_count;
      checked;
      error;
      rounds;
      coverage;
      completed;
    }
  in
  match run_raw ?monitor s with
  | r ->
      finish (digest_of_result r) None r.Engine.rounds (Engine.coverage r)
        (Engine.success r)
  | exception e -> finish null_digest (Some (Printexc.to_string e)) 0 0. false

(* --- random config sampling --------------------------------------- *)

let sample rng =
  let pick a = a.(Rng.int rng (Array.length a)) in
  let n = pick [| 96; 128; 192; 256; 384; 512 |] in
  let d = pick [| 4; 6; 8 |] in
  let topology =
    pick
      [|
        "regular"; "regular"; "regular"; "hypercube"; "complete";
        "implicit-regular"; "implicit-regular"; "implicit-hypercube";
        "implicit-chords";
      |]
  in
  let protocol =
    pick [| "bef"; "bef"; "bef-seq"; "push"; "pull"; "push-pull"; "quasirandom" |]
  in
  let alpha = pick [| 1.0; 2.0 |] in
  let fanout = pick [| 2; 4 |] in
  let loss = pick [| 0.; 0.; 0.05; 0.2 |] in
  let call_failure = pick [| 0.; 0.; 0.1 |] in
  let burst_loss = pick [| 0.; 0.; 0.15; 0.4 |] in
  let burst_len = pick [| 2.; 4. |] in
  let crash_rate = pick [| 0.; 0.; 0.005; 0.02 |] in
  let recover_rate = if crash_rate > 0. then pick [| 0.; 0.25 |] else 0. in
  let crash_adversary =
    pick [| "none"; "none"; "random"; "degree"; "frontier" |]
  in
  let crash_count =
    if crash_adversary = "none" then 0 else max 1 (n / pick [| 8; 16 |])
  in
  let crash_round = 2 + Rng.int rng 5 in
  let strike_every =
    if crash_adversary = "none" then 0 else pick [| 0; 0; 2; 5 |]
  in
  let partition_round = pick [| 0; 0; 0; 2; 3; 4 |] in
  let heal_round =
    if partition_round > 0 then partition_round + 2 + Rng.int rng 6 else 0
  in
  let partition_fraction = pick [| 0.25; 0.5 |] in
  (* Churn rewires a materialised overlay; implicit views have no
     overlay to rewire, and Scenario.parse rejects the combination.
     The draws still happen so the stream position is
     topology-independent. *)
  let implicit = Scenario.is_implicit topology in
  let join_prob = pick [| 0.; 0.; 0.05; 0.15 |] in
  let join_prob = if implicit then 0. else join_prob in
  let leave_prob = pick [| 0.; 0.; 0.05; 0.15 |] in
  let leave_prob = if implicit then 0. else leave_prob in
  let n_error = pick [| 1.; 1.; 0.5; 4. |] in
  let max_epochs = pick [| 0; 0; 0; 4 |] in
  {
    Scenario.default with
    Scenario.seed = 1 + Rng.int rng 999_999;
    n;
    d;
    topology;
    protocol;
    alpha;
    fanout;
    loss;
    call_failure;
    burst_loss;
    burst_len;
    crash_rate;
    recover_rate;
    crash_adversary;
    crash_count;
    crash_round;
    strike_every;
    partition_round;
    heal_round;
    partition_fraction;
    join_prob;
    leave_prob;
    n_error;
    max_epochs;
    reps = 1;
    domains = 1;
  }

(* --- greedy shrinking --------------------------------------------- *)

let shrink_steps (s : Scenario.t) =
  let open Scenario in
  List.filter
    (fun c -> c <> s)
    [
      { s with loss = 0. };
      { s with call_failure = 0. };
      { s with burst_loss = 0. };
      { s with crash_rate = 0.; recover_rate = 0. };
      { s with crash_adversary = "none"; crash_count = 0; strike_every = 0 };
      { s with strike_every = 0 };
      { s with partition_round = 0; heal_round = 0 };
      { s with join_prob = 0.; leave_prob = 0. };
      { s with max_epochs = 0 };
      { s with n_error = 1. };
      { s with n = max 64 (s.n / 2) };
    ]

let shrink ?(budget = 40) ~fails s0 =
  let runs = ref 0 in
  let cur = ref s0 in
  let progress = ref true in
  while !progress && !runs < budget do
    progress := false;
    (* First still-failing simplification wins; restart from it. *)
    let rec try_steps = function
      | [] -> ()
      | c :: rest ->
          if !runs < budget then begin
            incr runs;
            if fails c then begin
              cur := c;
              progress := true
            end
            else try_steps rest
          end
    in
    try_steps (shrink_steps !cur)
  done;
  !cur

(* --- repro artifacts ---------------------------------------------- *)

(* Shortest decimal that round-trips, so a replayed scenario is the
   same float bit for bit. *)
let float_repr x =
  let s = Printf.sprintf "%.12g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

let scenario_text (s : Scenario.t) =
  let open Scenario in
  let b = Buffer.create 512 in
  let ik k v = Buffer.add_string b (Printf.sprintf "%s = %d\n" k v) in
  let fk k v = Buffer.add_string b (Printf.sprintf "%s = %s\n" k (float_repr v)) in
  let sk k v = Buffer.add_string b (Printf.sprintf "%s = %s\n" k v) in
  ik "seed" s.seed;
  ik "n" s.n;
  ik "d" s.d;
  sk "topology" s.topology;
  sk "protocol" s.protocol;
  fk "alpha" s.alpha;
  ik "fanout" s.fanout;
  fk "loss" s.loss;
  fk "call_failure" s.call_failure;
  fk "burst_loss" s.burst_loss;
  fk "burst_len" s.burst_len;
  fk "crash_rate" s.crash_rate;
  fk "recover_rate" s.recover_rate;
  sk "crash_adversary" s.crash_adversary;
  ik "crash_count" s.crash_count;
  ik "crash_round" s.crash_round;
  ik "strike_every" s.strike_every;
  ik "partition_round" s.partition_round;
  ik "heal_round" s.heal_round;
  fk "partition_fraction" s.partition_fraction;
  fk "join_prob" s.join_prob;
  fk "leave_prob" s.leave_prob;
  fk "n_error" s.n_error;
  ik "repair_timeout" s.repair_timeout;
  ik "repair_backoff" s.repair_backoff;
  ik "max_epochs" s.max_epochs;
  ik "reps" s.reps;
  ik "domains" s.domains;
  Buffer.contents b

let artifact ?(notes = []) ~digest (s : Scenario.t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# rumor-chaos/1 repro artifact\n";
  Buffer.add_string b "# replay with: rumor replay <this file>\n";
  List.iter (fun n -> Buffer.add_string b ("# " ^ n ^ "\n")) notes;
  Buffer.add_string b (Printf.sprintf "expect_digest = %s\n" digest);
  Buffer.add_string b (scenario_text s);
  Buffer.contents b

let is_hex_digest d =
  String.length d = 16
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       d

let parse_artifact text =
  let digest = ref None in
  let keep line =
    let t = String.trim line in
    if String.length t >= 13 && String.sub t 0 13 = "expect_digest" then begin
      (match String.index_opt t '=' with
      | Some i ->
          digest :=
            Some (String.trim (String.sub t (i + 1) (String.length t - i - 1)))
      | None -> ());
      false
    end
    else true
  in
  let rest = List.filter keep (String.split_on_char '\n' text) in
  match !digest with
  | None -> Error "artifact has no expect_digest line"
  | Some d when not (is_hex_digest d) ->
      Error (Printf.sprintf "malformed expect_digest %S" d)
  | Some d -> (
      match Scenario.parse (String.concat "\n" rest) with
      | Ok s -> Ok (s, d)
      | Error e -> Error e)

let parse_artifact_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          parse_artifact (really_input_string ic len))
