type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- encoding --- *)

let escape_buf buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  escape_buf buf s;
  Buffer.contents buf

(* JSON has no NaN/infinity; a shortest-round-trip float keeps bench
   records diffable without 17-digit noise. *)
let float_repr x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" x in
    if
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s
    then s
    else s ^ ".0"

let rec write ~minify ~indent buf v =
  let nl pad =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make pad ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s ->
      Buffer.add_char buf '"';
      escape_buf buf s;
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          write ~minify ~indent:(indent + 2) buf item)
        items;
      nl indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          Buffer.add_char buf '"';
          escape_buf buf k;
          Buffer.add_string buf (if minify then "\":" else "\": ");
          write ~minify ~indent:(indent + 2) buf item)
        fields;
      nl indent;
      Buffer.add_char buf '}'

let to_string ?(minify = true) v =
  let buf = Buffer.create 256 in
  write ~minify ~indent:0 buf v;
  Buffer.contents buf

let to_channel ?minify oc v =
  output_string oc (to_string ?minify v);
  output_char oc '\n'

(* --- parsing --- *)

exception Parse_error of int * string

let default_max_depth = 256

let of_string ?(max_depth = default_max_depth) s =
  if max_depth < 1 then invalid_arg "Json.of_string: max_depth must be >= 1";
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* Encode the code point as UTF-8 (BMP only; escaped
                      surrogate pairs are rare in telemetry keys and are
                      kept as two 3-byte sequences, which round-trips
                      through our own encoder). *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  (* [depth] counts open containers. The parser recurses once per
     nesting level, so hostile input like 10^6 bytes of '[' would
     otherwise exhaust the OCaml stack; wire-facing consumers (the
     [rumor serve] NDJSON protocol) parse untrusted bytes through this
     function, so the bound is a hard security limit, not a nicety. *)
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        if depth >= max_depth then fail "nesting too deep";
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); field ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          field ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        if depth >= max_depth then fail "nesting too deep";
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); item ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          item ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "byte %d: %s" at msg)

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
