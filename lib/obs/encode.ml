module Summary = Rumor_stats.Summary
module Engine = Rumor_sim.Engine
module Multi = Rumor_sim.Multi
module Async = Rumor_sim.Async
module Trace = Rumor_sim.Trace

let summary (s : Summary.t) =
  Json.Obj
    [
      ("count", Json.Int s.Summary.count);
      ("mean", Json.Float s.Summary.mean);
      ("stddev", Json.Float s.Summary.stddev);
      ("min", Json.Float s.Summary.min);
      ("max", Json.Float s.Summary.max);
      ("median", Json.Float s.Summary.median);
      ("p10", Json.Float s.Summary.p10);
      ("p90", Json.Float s.Summary.p90);
    ]

let epoch_stat (e : Engine.epoch_stat) =
  Json.Obj
    [
      ("epoch", Json.Int e.Engine.epoch);
      ("rounds", Json.Int e.Engine.epoch_rounds);
      ("informed", Json.Int e.Engine.epoch_informed);
      ("population", Json.Int e.Engine.epoch_population);
      ( "coverage",
        Json.Float
          (if e.Engine.epoch_population = 0 then 0.
           else
             float_of_int e.Engine.epoch_informed
             /. float_of_int e.Engine.epoch_population) );
      ("repair_push_tx", Json.Int e.Engine.repair_push_tx);
      ("repair_pull_tx", Json.Int e.Engine.repair_pull_tx);
      ("repair_channels", Json.Int e.Engine.repair_channels);
    ]

let engine_result (r : Engine.result) =
  Json.Obj
    ([
       ("rounds", Json.Int r.Engine.rounds);
       ( "completion_round",
         match r.Engine.completion_round with
         | Some c -> Json.Int c
         | None -> Json.Null );
       ("informed", Json.Int r.Engine.informed);
       ("population", Json.Int r.Engine.population);
       ("push_tx", Json.Int r.Engine.push_tx);
       ("pull_tx", Json.Int r.Engine.pull_tx);
       ("channels", Json.Int r.Engine.channels);
       ("success", Json.Bool (Engine.success r));
     ]
    @
    match r.Engine.repair with
    | [] -> []
    | epochs ->
        [
          ("coverage", Json.Float (Engine.coverage r));
          ("epochs_used", Json.Int (Engine.epochs_used r));
          ("repair_tx", Json.Int (Engine.repair_tx r));
          ("repair", Json.List (List.map epoch_stat epochs));
        ])

let multi_result (r : Multi.result) =
  Json.Obj
    ([
       ("rounds", Json.Int r.Multi.rounds);
       ("channels", Json.Int r.Multi.channels);
       ("population", Json.Int r.Multi.population);
       ("total_tx", Json.Int (Multi.total_transmissions r));
       ("all_complete", Json.Bool (Multi.all_complete r));
       ( "messages",
         Json.List
           (Array.to_list
              (Array.map
                 (fun (m : Multi.message_result) ->
                   Json.Obj
                     [
                       ( "completion_round",
                         match m.Multi.completion_round with
                         | Some c -> Json.Int c
                         | None -> Json.Null );
                       ("informed", Json.Int m.Multi.informed);
                       ("transmissions", Json.Int m.Multi.transmissions);
                     ])
                 r.Multi.messages)) );
     ]
    @
    match r.Multi.repair with
    | [] -> []
    | epochs ->
        [
          ("epochs_used", Json.Int (List.length epochs));
          ("repair", Json.List (List.map epoch_stat epochs));
        ])

let async_result (r : Async.result) =
  Json.Obj
    [
      ("activations", Json.Int r.Async.activations);
      ("time", Json.Float r.Async.time);
      ( "completion_time",
        match r.Async.completion_time with
        | Some t -> Json.Float t
        | None -> Json.Null );
      ("informed", Json.Int r.Async.informed);
      ("transmissions", Json.Int r.Async.transmissions);
    ]

let violation (v : Rumor_sim.Invariant.violation) =
  Json.Obj
    [
      ("check", Json.String v.Rumor_sim.Invariant.check);
      ("round", Json.Int v.Rumor_sim.Invariant.round);
      ("detail", Json.String v.Rumor_sim.Invariant.detail);
    ]

let trace_row (r : Trace.row) =
  Json.Obj
    [
      ("round", Json.Int r.Trace.round);
      ("informed", Json.Int r.Trace.informed);
      ("newly", Json.Int r.Trace.newly);
      ("push_tx", Json.Int r.Trace.push_tx);
      ("pull_tx", Json.Int r.Trace.pull_tx);
      ("channels", Json.Int r.Trace.channels);
    ]

let trace_ndjson t =
  let buf = Buffer.create (96 * (Trace.length t + 1)) in
  List.iter
    (fun row ->
      Buffer.add_string buf (Json.to_string (trace_row row));
      Buffer.add_char buf '\n')
    (Trace.rows t);
  Buffer.contents buf

let float_list l = Json.List (List.map (fun x -> Json.Float x) l)
let int_list l = Json.List (List.map (fun i -> Json.Int i) l)
