(** Log-bucketed latency histogram with quantiles.

    The service layer ([Rumor_serve]) and the [rumor load] generator
    record one sample per session; p50/p99 session latency is the
    headline service metric, and sample counts reach hundreds of
    thousands, so samples are folded into fixed geometric buckets (8
    per octave from 1 µs, 320 buckets ≈ nine decades) instead of being
    stored: O(1) allocation-free add, bounded ~9% relative quantile
    error, and histograms merge exactly.

    All operations are thread-safe (a mutex guards the counters);
    samples may be added concurrently from worker domains while another
    thread reads quantiles. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample, in seconds. Negative samples clamp to 0.
    @raise Invalid_argument on a NaN or infinite sample. *)

val count : t -> int
(** Samples recorded. *)

val mean : t -> float
(** Exact mean of the recorded samples (0 when empty), in seconds. *)

val max_seen : t -> float
(** Exact maximum recorded sample (0 when empty), in seconds. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]]: the geometric midpoint of the
    smallest bucket covering rank [ceil (q * count)], capped at the
    exact maximum (so [quantile t 1.0 = max_seen t]); 0 when empty.
    @raise Invalid_argument if [q] is outside [\[0, 1\]]. *)

val merge_into : dst:t -> t -> unit
(** Fold one histogram into another (bucket-wise sum; exact). *)

val to_json : t -> Json.t
(** [{count, mean_ms, p50_ms, p90_ms, p99_ms, max_ms}] — milliseconds,
    the unit the service telemetry reports. *)
