(* Log-bucketed latency histogram. Buckets grow geometrically (8 per
   octave starting at 1 µs), so relative quantile error is bounded by
   ~9% across nine decades while the whole structure is a fixed 320-slot
   int array — no per-sample allocation, O(1) add, mergeable. *)

let buckets_per_octave = 8
let lo = 1e-6 (* seconds; anything faster lands in bucket 0 *)
let nbuckets = 40 * buckets_per_octave

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable max : float;
  mutex : Mutex.t;
}

let create () =
  {
    counts = Array.make nbuckets 0;
    count = 0;
    sum = 0.;
    max = 0.;
    mutex = Mutex.create ();
  }

let bucket_of x =
  if x <= lo then 0
  else
    let i =
      int_of_float (Float.of_int buckets_per_octave *. Float.log2 (x /. lo))
    in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

(* Geometric midpoint of bucket [i] — the value reported for any
   quantile that lands in it. *)
let bucket_value i =
  lo *. Float.exp2 ((float_of_int i +. 0.5) /. float_of_int buckets_per_octave)

let add t x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then
    invalid_arg "Latency.add: non-finite sample";
  let x = Float.max x 0. in
  Mutex.lock t.mutex;
  t.counts.(bucket_of x) <- t.counts.(bucket_of x) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  if x > t.max then t.max <- x;
  Mutex.unlock t.mutex

let count t = t.count

let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

let max_seen t = t.max

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Latency.quantile: q out of range";
  Mutex.lock t.mutex;
  let total = t.count in
  let r =
    if total = 0 then 0.
    else begin
      (* Rank statistics over bucket counts: the smallest bucket whose
         cumulative count covers ceil(q * total) samples. *)
      if q = 1. then t.max
      else
        let target =
          Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int total)))
        in
        let rec walk i acc =
          if i >= nbuckets then t.max
          else
            let acc = acc + t.counts.(i) in
            if acc >= target then Float.min (bucket_value i) t.max
            else walk (i + 1) acc
        in
        walk 0 0
    end
  in
  Mutex.unlock t.mutex;
  r

let merge_into ~dst src =
  Mutex.lock src.mutex;
  let counts = Array.copy src.counts in
  let count = src.count and sum = src.sum and mx = src.max in
  Mutex.unlock src.mutex;
  Mutex.lock dst.mutex;
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) counts;
  dst.count <- dst.count + count;
  dst.sum <- dst.sum +. sum;
  if mx > dst.max then dst.max <- mx;
  Mutex.unlock dst.mutex

let to_json t =
  Json.Obj
    [
      ("count", Json.Int (count t));
      ("mean_ms", Json.Float (mean t *. 1e3));
      ("p50_ms", Json.Float (quantile t 0.5 *. 1e3));
      ("p90_ms", Json.Float (quantile t 0.9 *. 1e3));
      ("p99_ms", Json.Float (quantile t 0.99 *. 1e3));
      ("max_ms", Json.Float (max_seen t *. 1e3));
    ]
