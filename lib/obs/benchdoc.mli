(** Validation and regression diffing of [rumor-bench/1] documents.

    [bench-check] is the CLI face of this module: plain validation
    plus, with [--against BASELINE.json], a cell-by-cell regression
    diff of matrix experiments against a committed [BENCH_*.json]
    trajectory. *)

type error =
  | Empty_experiments
      (** schema-valid but vacuous: an empty [experiments] array would
          silently green a broken matrix run, so it is its own error
          class (CLI exit 1, versus 2 for malformed documents) *)
  | Malformed of string  (** any other schema violation *)

val error_to_string : error -> string

val validate : Json.t -> error list
(** Check a parsed document against the [rumor-bench/1] contract:
    schema tag, required top-level fields, and per-experiment [id],
    non-negative [wall_s]/[cpu_s], [gc] and [data] objects. Empty list
    = valid. *)

val diffable_metrics : string list
(** The metrics {!diff} compares: pure functions of the RNG streams
    ([coverage], [rounds], [tx_per_node], [success_rate], [epochs],
    [repair_tx_per_node]). Timings, allocation and RSS are
    machine-dependent and belong to gates instead. *)

type report = {
  failures : string list;  (** regressions — nonzero CLI exit *)
  notes : string list;  (** informational (new cells, skipped points) *)
}

val diff : baseline:Json.t -> candidate:Json.t -> tolerance_pct:float -> report
(** Compare matrix experiments cell by cell. Experiments are matched
    by [id], points by their [coords] object (order-insensitive, exact
    string values). For every matched cell each of
    {!diffable_metrics} present in both documents must stay within
    [tolerance_pct] percent of the baseline (relative to
    [max (abs baseline) 1e-9]). A baseline cell or experiment missing
    from the candidate is a failure, unless the candidate (or that
    baseline point) is marked [truncated] — then it is a note, so
    interrupted runs diff their completed prefix instead of
    hard-failing. Candidate-only cells are notes. Experiments without
    matrix [points] are skipped with a note. Candidate experiments
    recording [data.gates_failed > 0] fail the diff regardless of
    scalar agreement. *)
