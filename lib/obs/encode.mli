(** JSON serializers for the library's result types.

    These define the stable field names of the telemetry schema; the
    bench records ([BENCH_*.json]), the CLI's [--json] output and the
    [bench-check] validator all speak them. Add fields freely — removing
    or renaming one is a schema break that [bench-check] should learn
    about in the same PR. *)

val summary : Rumor_stats.Summary.t -> Json.t
(** [{count, mean, stddev, min, max, median, p10, p90}]. *)

val epoch_stat : Rumor_sim.Engine.epoch_stat -> Json.t
(** One repair epoch:
    [{epoch, rounds, informed, population, coverage, repair_push_tx,
     repair_pull_tx, repair_channels}]. *)

val engine_result : Rumor_sim.Engine.result -> Json.t
(** [{rounds, completion_round, informed, population, push_tx, pull_tx,
     channels, success}]; self-healing runs additionally carry
    [{coverage, epochs_used, repair_tx, repair: [epoch_stat, ...]}]
    (added fields only — the [rumor-bench/1] schema is unchanged for
    plain runs). The [knows] array and the trace are omitted — per-node
    payload delivery is not telemetry; use {!trace_ndjson} for
    per-round dumps. *)

val multi_result : Rumor_sim.Multi.result -> Json.t
(** [{rounds, channels, population, total_tx, all_complete,
     messages: [{completion_round, informed, transmissions}, ...]}];
    self-healing runs additionally carry
    [{epochs_used, repair: [epoch_stat, ...]}]. The per-round trace is
    omitted — use {!trace_ndjson}. *)

val async_result : Rumor_sim.Async.result -> Json.t
(** [{activations, time, completion_time, informed, transmissions}].
    The per-unit trace is omitted — use {!trace_ndjson}. *)

val violation : Rumor_sim.Invariant.violation -> Json.t
(** One runtime-monitor violation: [{check, round, detail}] — the
    chaos runner's ([rumor chaos --json]) failure records. *)

val trace_row : Rumor_sim.Trace.row -> Json.t
(** One per-round record
    [{round, informed, newly, push_tx, pull_tx, channels}]. *)

val trace_ndjson : Rumor_sim.Trace.t -> string
(** Newline-delimited JSON, one {!trace_row} per line — the streaming
    format (ndjson / JSON Lines) plotting pipelines ingest directly. *)

val float_list : float list -> Json.t
val int_list : int list -> Json.t
