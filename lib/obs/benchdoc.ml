(* Validation and regression diffing of rumor-bench/1 documents. *)

type error = Empty_experiments | Malformed of string

let error_to_string = function
  | Empty_experiments -> "\"experiments\" is empty"
  | Malformed m -> m

let validate top =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  let errf fmt = Printf.ksprintf (fun m -> err (Malformed m)) fmt in
  (match Option.bind (Json.member "schema" top) Json.to_string_opt with
  | Some "rumor-bench/1" -> ()
  | Some other -> errf "unknown schema %S" other
  | None -> errf "missing \"schema\"");
  List.iter
    (fun field ->
      if Json.member field top = None then errf "missing %S" field)
    [ "created_unix"; "git"; "ocaml"; "argv"; "quick"; "reps" ];
  (match Option.bind (Json.member "experiments" top) Json.to_list with
  | None -> errf "missing \"experiments\" array"
  | Some [] -> err Empty_experiments
  | Some exps ->
      List.iteri
        (fun i e ->
          let id =
            match Option.bind (Json.member "id" e) Json.to_string_opt with
            | Some id -> id
            | None ->
                errf "experiment %d: missing \"id\"" i;
                Printf.sprintf "#%d" i
          in
          List.iter
            (fun field ->
              match Option.bind (Json.member field e) Json.to_float with
              | Some s when s >= 0. -> ()
              | Some _ -> errf "%s: negative %S" id field
              | None -> errf "%s: missing %S" id field)
            [ "wall_s"; "cpu_s" ];
          (match Json.member "gc" e with
          | Some (Json.Obj _) -> ()
          | _ -> errf "%s: missing \"gc\" object" id);
          match Json.member "data" e with
          | Some (Json.Obj _) -> ()
          | _ -> errf "%s: missing \"data\" object" id)
        exps);
  List.rev !errors

(* --- regression diffing --- *)

(* Only metrics that are a pure function of the RNG streams are
   diffed against the baseline: timings, allocation and RSS vary by
   machine and are covered by gates, not by the diff. *)
let diffable_metrics =
  [ "coverage"; "rounds"; "tx_per_node"; "success_rate"; "epochs";
    "repair_tx_per_node" ]

type report = { failures : string list; notes : string list }

let experiment_id e =
  Option.value
    (Option.bind (Json.member "id" e) Json.to_string_opt)
    ~default:"?"

let experiments_of top =
  Option.value
    (Option.bind (Json.member "experiments" top) Json.to_list)
    ~default:[]

let truncated_of j =
  match Json.member "truncated" j with Some (Json.Bool b) -> b | _ -> false

let points_of e =
  match Option.bind (Json.member "data" e) (Json.member "points") with
  | Some (Json.List ps) -> Some ps
  | _ -> None

(* A point's identity is its coords object, order-insensitive; values
   are the literal axis strings the matrix wrote, so matching is exact
   (no float formatting drift). *)
let coords_key p =
  match Json.member "coords" p with
  | Some (Json.Obj fields) ->
      Some
        (fields
        |> List.map (fun (k, v) ->
               ( k,
                 match v with
                 | Json.String s -> s
                 | other -> Json.to_string other ))
        |> List.sort compare)
  | _ -> None

let coords_to_string key =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> k ^ " = " ^ v) key) ^ "}"

let metric_of p name =
  Option.bind
    (Option.bind (Json.member "metrics" p) (Json.member name))
    Json.to_float

let diff ~baseline ~candidate ~tolerance_pct =
  let failures = ref [] and notes = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
  let cand_truncated = truncated_of candidate in
  let cand_exps = experiments_of candidate in
  List.iter
    (fun b_exp ->
      let id = experiment_id b_exp in
      match points_of b_exp with
      | None -> note "%s: baseline has no matrix points; skipped" id
      | Some b_points -> begin
          match
            List.find_opt (fun e -> experiment_id e = id) cand_exps
          with
          | None ->
              if cand_truncated then
                note "%s: missing from truncated candidate" id
              else fail "%s: experiment missing from candidate" id
          | Some c_exp -> begin
              match points_of c_exp with
              | None -> fail "%s: candidate has no matrix points" id
              | Some c_points ->
                  let c_indexed =
                    List.filter_map
                      (fun p ->
                        match coords_key p with
                        | Some k -> Some (k, p)
                        | None ->
                            note "%s: candidate point without coords; skipped"
                              id;
                            None)
                      c_points
                  in
                  let seen = Hashtbl.create 16 in
                  List.iter
                    (fun b_point ->
                      match coords_key b_point with
                      | None ->
                          note "%s: baseline point without coords; skipped" id
                      | Some key -> begin
                          Hashtbl.replace seen key ();
                          let cell = coords_to_string key in
                          match List.assoc_opt key c_indexed with
                          | None ->
                              if cand_truncated || truncated_of b_point then
                                note "%s %s: missing from truncated run" id
                                  cell
                              else
                                fail "%s %s: cell missing from candidate" id
                                  cell
                          | Some c_point ->
                              List.iter
                                (fun m ->
                                  match
                                    ( metric_of b_point m,
                                      metric_of c_point m )
                                  with
                                  | Some bv, Some cv ->
                                      let denom =
                                        Float.max (Float.abs bv) 1e-9
                                      in
                                      let pct =
                                        100. *. Float.abs (cv -. bv) /. denom
                                      in
                                      if pct > tolerance_pct then
                                        fail
                                          "%s %s: %s drifted %.1f%% \
                                           (baseline %g, got %g, tolerance \
                                           %.0f%%)"
                                          id cell m pct bv cv tolerance_pct
                                  | Some _, None ->
                                      fail "%s %s: metric %S missing from \
                                            candidate"
                                        id cell m
                                  | None, _ -> ())
                                diffable_metrics
                        end)
                    b_points;
                  List.iter
                    (fun (key, _) ->
                      if not (Hashtbl.mem seen key) then
                        note "%s %s: new cell (not in baseline)" id
                          (coords_to_string key))
                    c_indexed
            end
        end)
    (experiments_of baseline);
  (* Gate failures recorded by the candidate run fail the diff even
     when every scalar matches: the gates are part of the contract. *)
  List.iter
    (fun e ->
      match
        Option.bind
          (Option.bind (Json.member "data" e) (Json.member "gates_failed"))
          Json.to_int
      with
      | Some g when g > 0 ->
          fail "%s: %d gate failure(s) recorded in candidate"
            (experiment_id e) g
      | _ -> ())
    cand_exps;
  { failures = List.rev !failures; notes = List.rev !notes }
