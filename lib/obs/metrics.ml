type span = {
  wall_s : float;
  cpu_s : float;
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  top_heap_words : int;
  heap_words : int;
  peak_rss_kb : int;
}

(* VmHWM from /proc/self/status: the process's peak resident set in
   kB. The GC's top_heap_words only sees the OCaml heap; Bytes-backed
   tables, stacks and the runtime itself show up here. 0 when the file
   or the field is unavailable (non-Linux). *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> 0
            | line ->
                if
                  String.length line > 6 && String.sub line 0 6 = "VmHWM:"
                then
                  let v =
                    String.trim (String.sub line 6 (String.length line - 6))
                  in
                  let digits =
                    match String.index_opt v ' ' with
                    | Some i -> String.sub v 0 i
                    | None -> v
                  in
                  Option.value (int_of_string_opt digits) ~default:0
                else scan ()
          in
          scan ())

let timed f =
  let g0 = Gc.quick_stat () in
  let cpu0 = Sys.time () in
  let wall0 = Unix.gettimeofday () in
  let result = f () in
  let wall1 = Unix.gettimeofday () in
  let cpu1 = Sys.time () in
  let g1 = Gc.quick_stat () in
  ( result,
    {
      wall_s = wall1 -. wall0;
      cpu_s = cpu1 -. cpu0;
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
      major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
      compactions = g1.Gc.compactions - g0.Gc.compactions;
      top_heap_words = g1.Gc.top_heap_words;
      heap_words = g1.Gc.heap_words;
      peak_rss_kb = peak_rss_kb ();
    } )

let span_to_json s =
  Json.Obj
    [
      ("wall_s", Json.Float s.wall_s);
      ("cpu_s", Json.Float s.cpu_s);
      ( "gc",
        Json.Obj
          [
            ("minor_words", Json.Float s.minor_words);
            ("major_words", Json.Float s.major_words);
            ("minor_collections", Json.Int s.minor_collections);
            ("major_collections", Json.Int s.major_collections);
            ("compactions", Json.Int s.compactions);
            ("top_heap_words", Json.Int s.top_heap_words);
            ("heap_words", Json.Int s.heap_words);
          ] );
      ("peak_rss_kb", Json.Int s.peak_rss_kb);
    ]

type counters = (string, int ref) Hashtbl.t

let counters () : counters = Hashtbl.create 16

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let add t name k = cell t name := !(cell t name) + k
let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let counters_to_json t =
  let fields =
    Hashtbl.fold (fun name r acc -> (name, Json.Int !r) :: acc) t []
  in
  Json.Obj (List.sort (fun (a, _) (b, _) -> String.compare a b) fields)
