(** Wall-clock / CPU timers, GC deltas and named counters.

    One {!span} captures everything a bench record needs about the cost
    of a measured region: elapsed wall time ([Unix.gettimeofday]),
    elapsed process CPU time ([Sys.time]) and the [Gc.quick_stat]
    deltas across the region (words allocated, minor/major collections,
    heap growth). *)

type span = {
  wall_s : float;  (** elapsed wall-clock seconds *)
  cpu_s : float;  (** elapsed process CPU seconds *)
  minor_words : float;  (** words allocated in the minor heap *)
  major_words : float;  (** words allocated in (or promoted to) the major heap *)
  minor_collections : int;
  major_collections : int;
  compactions : int;
  top_heap_words : int;  (** high-water heap mark at the end of the span *)
  heap_words : int;  (** major heap size at the end of the span, words *)
  peak_rss_kb : int;
      (** process peak resident set (VmHWM), kB; 0 where unavailable.
          Unlike the GC fields this sees Bytes-backed tables and the
          runtime itself, so bytes-per-node claims at the 10^7–10^8
          scale are checkable against it. *)
}

val timed : (unit -> 'a) -> 'a * span
(** Run a thunk and measure it. Exceptions propagate unmeasured. *)

val peak_rss_kb : unit -> int
(** Current [VmHWM] reading from [/proc/self/status], kB; 0 where the
    file or field is missing (non-Linux). *)

val span_to_json : span -> Json.t
(** Flat object: [wall_s], [cpu_s], [peak_rss_kb] and a nested [gc]
    object. *)

(** Named monotonic counters, for instrumenting code that has no
    natural return value to thread measurements through. *)
type counters

val counters : unit -> counters
val incr : counters -> string -> unit
val add : counters -> string -> int -> unit
val get : counters -> string -> int
(** 0 for a name never incremented. *)

val counters_to_json : counters -> Json.t
(** Object with one integer field per counter, in name order
    (deterministic output for golden tests and diffs). *)
