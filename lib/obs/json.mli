(** A dependency-free JSON value type, encoder and parser.

    This is the machine-readable substrate of the telemetry layer: the
    bench harness and the CLI serialise every experiment through it, so
    that performance records ([BENCH_*.json]) can be diffed across PRs
    without scraping ASCII tables. The encoder writes RFC 8259 JSON;
    non-finite floats (which JSON cannot represent) are encoded as
    [null], matching what consumers such as [jq] and Python's [json]
    module accept. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render a value. [minify] (default [true]) omits all whitespace;
    otherwise the output is pretty-printed with two-space indents. *)

val to_channel : ?minify:bool -> out_channel -> t -> unit
(** [to_string] straight to a channel, followed by a newline. *)

val escape_string : string -> string
(** The JSON escaping of a string, without the surrounding quotes
    (["\n"] becomes ["\\n"], control bytes become [\u00XX], ...). *)

val default_max_depth : int
(** Default container-nesting bound of {!of_string} (256). *)

val of_string : ?max_depth:int -> string -> (t, string) result
(** Parse one JSON value. Numbers without [.], [e] or [E] parse as
    [Int]; everything else as [Float]. Trailing whitespace is allowed,
    trailing garbage is an error. The error string carries a byte
    offset.

    [max_depth] (default {!default_max_depth}) bounds container
    nesting: input opening more than [max_depth] arrays/objects is
    rejected with a parse error instead of recursing — crafted NDJSON
    like a megabyte of ['\['] cannot overflow the stack. Telemetry this
    library writes stays far below the bound; raise it only for trusted
    input.
    @raise Invalid_argument if [max_depth < 1]. *)

(** {2 Accessors} — for schema checks and bench-file diffing. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_list : t -> t list option
val to_float : t -> float option
(** [Int] values coerce; [Null] does not. *)

val to_int : t -> int option
val to_string_opt : t -> string option
