type t = { n : int; off : int array; adj : int array }

let check_csr ~n ~off ~adj =
  if n < 0 then invalid_arg "Graph.create: n < 0";
  if Array.length off <> n + 1 then invalid_arg "Graph.create: |off| <> n+1";
  if n >= 0 && (off.(0) <> 0 || off.(n) <> Array.length adj) then
    invalid_arg "Graph.create: offset endpoints";
  for i = 0 to n - 1 do
    if off.(i) > off.(i + 1) then invalid_arg "Graph.create: offsets decrease"
  done;
  Array.iter
    (fun v -> if v < 0 || v >= n then invalid_arg "Graph.create: endpoint range")
    adj

let create ~n ~off ~adj =
  check_csr ~n ~off ~adj;
  { n; off; adj }

let of_edges ~n edges =
  let deg = Array.make n 0 in
  let bump v =
    if v < 0 || v >= n then invalid_arg "Graph.of_edges: endpoint range";
    deg.(v) <- deg.(v) + 1
  in
  List.iter
    (fun (u, v) ->
      bump u;
      bump v)
    edges;
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + deg.(i)
  done;
  let adj = Array.make off.(n) 0 in
  let cursor = Array.copy off in
  let put u v =
    adj.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1
  in
  List.iter
    (fun (u, v) ->
      put u v;
      put v u)
    edges;
  { n; off; adj }

let n g = g.n
let m g = Array.length g.adj / 2
let degree g v = g.off.(v + 1) - g.off.(v)
let neighbor g v i = g.adj.(g.off.(v) + i)

let neighbors g v = Array.sub g.adj g.off.(v) (degree g v)

let iter_neighbors g v f =
  for i = g.off.(v) to g.off.(v + 1) - 1 do
    f g.adj.(i)
  done

let fold_neighbors g v f init =
  let acc = ref init in
  iter_neighbors g v (fun w -> acc := f !acc w);
  !acc

let iter_edges g f =
  for v = 0 to g.n - 1 do
    iter_neighbors g v (fun w ->
        if v < w then f v w
        else if v = w then
          (* A self-loop appears twice in v's list; report it once. *)
          ())
  done;
  (* Self-loops: each appears twice in the list of its endpoint. *)
  for v = 0 to g.n - 1 do
    let loops = fold_neighbors g v (fun c w -> if w = v then c + 1 else c) 0 in
    for _ = 1 to loops / 2 do
      f v v
    done
  done

let mem_edge g u v =
  (* Scan the smaller adjacency slice and stop at the first hit. *)
  let a, b = if degree g u <= degree g v then (u, v) else (v, u) in
  let i = ref g.off.(a) in
  let stop = g.off.(a + 1) in
  while !i < stop && g.adj.(!i) <> b do
    incr i
  done;
  !i < stop

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let min_degree g =
  if g.n = 0 then 0
  else begin
    let best = ref max_int in
    for v = 0 to g.n - 1 do
      if degree g v < !best then best := degree g v
    done;
    !best
  end

let is_regular g =
  if g.n = 0 then Some 0
  else begin
    let d = degree g 0 in
    let ok = ref true in
    for v = 1 to g.n - 1 do
      if degree g v <> d then ok := false
    done;
    if !ok then Some d else None
  end

let count_self_loops g =
  let total = ref 0 in
  for v = 0 to g.n - 1 do
    iter_neighbors g v (fun w -> if w = v then incr total)
  done;
  !total / 2

(* Insertion sort of [a.(0 .. len-1)]: monomorphic int comparisons, no
   allocation, and degrees are small enough that O(d^2) beats the
   polymorphic [Array.sort compare] it replaces. *)
let sort_int_prefix a len =
  for i = 1 to len - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j) > x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

let count_parallel_edges g =
  let surplus = ref 0 in
  let scratch = Array.make (max_degree g) 0 in
  for v = 0 to g.n - 1 do
    let d = degree g v in
    for i = 0 to d - 1 do
      scratch.(i) <- neighbor g v i
    done;
    sort_int_prefix scratch d;
    for i = 1 to d - 1 do
      (* Count duplicates from v's side only for v <= w to avoid double
         counting; self-loop duplicates are not parallel edges. *)
      if scratch.(i) = scratch.(i - 1) && scratch.(i) > v then incr surplus
    done
  done;
  !surplus

let is_simple g = count_self_loops g = 0 && count_parallel_edges g = 0

let to_edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let invariant g =
  try
    check_csr ~n:g.n ~off:g.off ~adj:g.adj;
    (* Symmetry as a multiset: sorting the directed edge list both ways
       must coincide. *)
    let cmp (a1, b1) (a2, b2) =
      let c = Int.compare a1 a2 in
      if c <> 0 then c else Int.compare b1 b2
    in
    let dir = Array.make (Array.length g.adj) (0, 0) in
    let k = ref 0 in
    for v = 0 to g.n - 1 do
      iter_neighbors g v (fun w ->
          dir.(!k) <- (v, w);
          incr k)
    done;
    let rev = Array.map (fun (u, v) -> (v, u)) dir in
    Array.sort cmp dir;
    Array.sort cmp rev;
    let equal = ref true in
    for i = 0 to Array.length dir - 1 do
      if cmp dir.(i) rev.(i) <> 0 then equal := false
    done;
    !equal
  with Invalid_argument _ -> false
