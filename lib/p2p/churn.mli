(** Degree-preserving join and leave — the dynamics that keep a P2P
    overlay (approximately) a random [d]-regular graph while peers come
    and go, in the spirit of the overlay-maintenance protocols the
    paper cites ([5], [16], [27], [29], [32]).

    Both operations preserve every remaining node's degree exactly, so
    a [d]-regular overlay stays [d]-regular:

    - {!join} splits [d/2] random edges [(u, w)] and reconnects their
      endpoints through the newcomer ([u–new], [new–w]);
    - {!leave} removes a node and re-pairs the [d] half-edges it leaves
      behind into [d/2] new edges. *)

val join : Overlay.t -> rng:Rumor_rng.Rng.t -> d:int -> int
(** [join t ~rng ~d] activates a fresh node, wires it to degree [d] by
    edge splitting, and returns its id. Requires [d] even, at least
    [d/2] edges present, and spare capacity.
    @raise Invalid_argument if [d] is odd or not positive.
    @raise Failure if the overlay has too few edges or no capacity. *)

val join_local :
  Overlay.t -> rng:Rumor_rng.Rng.t -> d:int -> contact:int ->
  walk_length:int -> int
(** Like {!join}, but fully decentralised: instead of sampling the
    edges to split from a global view, the newcomer asks its [contact]
    peer to run [d/2] random walks of [walk_length] steps and splits
    the edge each walk traverses last. On a (near-)regular overlay the
    stationary edge distribution is uniform, so for [walk_length] past
    the mixing time this converges to {!join}'s behaviour — the
    peer-sampling mechanism of the P2P systems the paper cites.
    @raise Invalid_argument if [d] is odd or not positive,
    [walk_length < 1], or [contact] is dead.
    @raise Failure if a splittable edge cannot be found. *)

val leave : Overlay.t -> rng:Rumor_rng.Rng.t -> node:int -> unit
(** [leave t ~rng ~node] departs [node], re-pairing its neighbours'
    freed half-edges uniformly at random (parallel edges or self-loops
    may appear, exactly as in the configuration model; they are rare
    and are washed out by {!Switcher} steps).
    @raise Invalid_argument if [node] is not alive. *)

val leave_random : Overlay.t -> rng:Rumor_rng.Rng.t -> int
(** Depart a uniformly random live node and return its id.
    @raise Failure on an empty overlay. *)

type event = {
  joined : int option;  (** id of the node that joined this tick, if any *)
  left : int option;  (** id of the node that left this tick, if any *)
}

val session :
  Overlay.t ->
  rng:Rumor_rng.Rng.t ->
  d:int ->
  join_prob:float ->
  leave_prob:float ->
  unit ->
  event
(** One churn tick: with probability [join_prob] a node joins (skipped
    when the overlay is at capacity or has fewer than [d/2] edges to
    split — a saturated tick is dropped rather than raising mid-run),
    then with probability [leave_prob] a random node leaves (skipped
    when the overlay would drop below [d + 2] nodes, keeping the
    regular structure meaningful). Returns which actions actually
    fired; the joined id is what a healing harness feeds back to the
    engine's [reset] hook so the newcomer starts uninformed even if its
    id was recycled. Designed to be called from the engine's
    [on_round_end]. *)
