module Rng = Rumor_rng.Rng

let join t ~rng ~d =
  if d <= 0 || d mod 2 <> 0 then invalid_arg "Churn.join: d must be positive and even";
  if Overlay.edge_count t < d / 2 then failwith "Churn.join: too few edges to split";
  let fresh = Overlay.activate t in
  for _ = 1 to d / 2 do
    (* Draw an edge not incident to the newcomer; splitting one of the
       newcomer's own edges would change its final degree. *)
    let rec draw budget =
      if budget = 0 then failwith "Churn.join: could not sample a splittable edge";
      match Overlay.random_edge t rng with
      | None -> failwith "Churn.join: no edges"
      | Some (u, w) -> if u = fresh || w = fresh then draw (budget - 1) else (u, w)
    in
    let u, w = draw 10_000 in
    (* Load-bearing side effect: if the removal ever fails the edge
       split would corrupt the overlay's degree invariant, and `assert`
       vanishes under -noassert. *)
    if not (Overlay.remove_edge t u w) then
      failwith "Churn.join: sampled edge vanished before removal";
    Overlay.add_edge t u fresh;
    Overlay.add_edge t fresh w
  done;
  fresh

let join_local t ~rng ~d ~contact ~walk_length =
  if d <= 0 || d mod 2 <> 0 then
    invalid_arg "Churn.join_local: d must be positive and even";
  if walk_length < 1 then invalid_arg "Churn.join_local: walk_length < 1";
  if not (Overlay.is_alive t contact) then
    invalid_arg "Churn.join_local: dead contact";
  let fresh = Overlay.activate t in
  let walk_step v =
    let deg = Overlay.degree t v in
    if deg = 0 then None else Some (Overlay.neighbor t v (Rng.int rng deg))
  in
  for _ = 1 to d / 2 do
    (* Walk walk_length - 1 steps, then record the final traversed edge. *)
    let rec sample budget =
      if budget = 0 then failwith "Churn.join_local: no splittable edge found";
      let u = ref contact in
      let ok = ref true in
      for _ = 1 to walk_length - 1 do
        match walk_step !u with
        | Some w -> u := w
        | None -> ok := false
      done;
      match (!ok, walk_step !u) with
      | true, Some w
        when !u <> fresh && w <> fresh && Overlay.remove_edge t !u w ->
          (!u, w)
      | _ -> sample (budget - 1)
    in
    let u, w = sample 10_000 in
    Overlay.add_edge t u fresh;
    Overlay.add_edge t fresh w
  done;
  fresh

let leave t ~rng ~node =
  if not (Overlay.is_alive t node) then invalid_arg "Churn.leave: not alive";
  (* Collect the half-edges the departing node leaves behind; a stub per
     incident edge copy, excluding self-loops (those vanish whole). *)
  let stubs =
    List.filter (fun w -> w <> node) (Overlay.neighbors t node)
  in
  Overlay.deactivate t node;
  let arr = Array.of_list stubs in
  Rng.shuffle rng arr;
  let i = ref 0 in
  while !i + 1 < Array.length arr do
    Overlay.add_edge t arr.(!i) arr.(!i + 1);
    i := !i + 2
  done

let leave_random t ~rng =
  let v = Overlay.random_node t rng in
  leave t ~rng ~node:v;
  v

type event = { joined : int option; left : int option }

let session t ~rng ~d ~join_prob ~leave_prob () =
  let joined =
    (* The join is skipped — never raised through — when the overlay is
       full or too sparse to split d/2 edges, mirroring the leave guard
       below: one saturated tick must not kill a long experiment. *)
    if
      Rng.bernoulli rng join_prob
      && Overlay.node_count t < Overlay.capacity t
      && Overlay.edge_count t >= d / 2
    then Some (join t ~rng ~d)
    else None
  in
  let left =
    if Rng.bernoulli rng leave_prob && Overlay.node_count t > d + 2 then
      Some (leave_random t ~rng)
    else None
  in
  { joined; left }
