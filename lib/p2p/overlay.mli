(** Mutable peer-to-peer overlay networks.

    An overlay is an undirected multigraph over node ids
    [0 .. capacity-1] whose nodes can appear and depart and whose edges
    can be rewired between broadcast rounds — the "random topologies
    maintained by a Markov process" setting the paper's introduction
    describes. {!to_topology} plugs an overlay straight into the
    simulation engine; mutations made by [on_round_end] callbacks are
    visible in the next round. *)

type t

val create : capacity:int -> t
(** An overlay with no live nodes, supporting ids [0 .. capacity-1]. *)

val of_graph : capacity:int -> Rumor_graph.Graph.t -> t
(** Copy a static graph into an overlay (all graph nodes live).
    @raise Invalid_argument if [capacity < Graph.n g]. *)

val capacity : t -> int
val node_count : t -> int
(** Live nodes. *)

val is_alive : t -> int -> bool
val degree : t -> int -> int
(** Degree of a live node; 0 for dead ids. *)

val neighbor : t -> int -> int -> int
(** [neighbor t v i] is [v]'s [i]-th adjacency entry; [i] is checked
    against the adjacency length. (The {!to_topology} view skips this
    check — the engine only probes indices below [degree].)
    @raise Invalid_argument if [i] is outside [\[0, degree t v)]. *)

val neighbors : t -> int -> int list

val activate : t -> int
(** Bring a dead id to life (no edges yet) and return it.
    @raise Failure if the overlay is at capacity. *)

val deactivate : t -> int -> unit
(** Remove a node and {e all} its incident edges (its former neighbours
    lose degree — callers wanting degree-preserving departure should
    use {!Churn.leave} instead).
    @raise Invalid_argument if the node is not alive. *)

val add_edge : t -> int -> int -> unit
(** Connect two live nodes (parallel edges and self-loops allowed;
    a self-loop adds two entries to the node's list).
    @raise Invalid_argument on dead endpoints. *)

val remove_edge : t -> int -> int -> bool
(** Remove one copy of the edge if present; [false] if absent. *)

val random_node : t -> Rumor_rng.Rng.t -> int
(** Uniform live node.
    @raise Failure on an empty overlay. *)

val random_edge : t -> Rumor_rng.Rng.t -> (int * int) option
(** A uniform edge (each copy equally likely), as an ordered pair
    (endpoint from whose list it was drawn first); [None] if there are
    no edges. *)

val edge_count : t -> int
(** Current number of edges (self-loops count once). *)

val to_topology : t -> Rumor_sim.Topology.t
(** A live view (not a copy): later mutations are seen by the engine
    at the next access. *)

val snapshot : t -> Rumor_graph.Graph.t
(** Freeze the live part into a static graph {e on the same ids}
    (dead ids become isolated vertices). *)

val invariant : t -> bool
(** Adjacency symmetry, liveness consistency; for tests. *)
