(** Transient network partitions.

    The paper's failure story covers lost messages; real P2P systems
    also suffer {e partitions} — the overlay splits into components
    that cannot talk until connectivity heals. This module cuts an
    overlay along a vertex bipartition (removing all cross edges,
    remembering them) and can later heal it (re-adding exactly the
    removed edges). Combined with the engine's [on_round_end] hook it
    models a partition window during a broadcast; for partition windows
    driven by the fault plan itself (no overlay mutation), see
    [Rumor_sim.Fault.partition].

    An overlay carries {e at most one} unhealed cut at a time: stacking
    cuts would make healing order-dependent (a second split could
    remove edges the first is about to re-add), silently corrupting the
    degree sequence. [split_*] on an overlay whose previous cut has not
    been healed raises [Invalid_argument] — before touching the
    overlay. Cut-then-heal restores the exact degree sequence, except
    for edges whose endpoints died while the cut was open (those stay
    removed; {!heal} skips them). *)

type t
(** The set of removed cross edges, owned until {!heal}. *)

val split_random :
  Overlay.t -> rng:Rumor_rng.Rng.t -> fraction:float -> t
(** [split_random o ~fraction] assigns each live node to the minority
    side with probability [fraction] and removes every edge crossing
    the cut.
    @raise Invalid_argument if [fraction] is outside [\[0, 1\]], or if
    the overlay has an outstanding unhealed cut. *)

val split_by : Overlay.t -> side:(int -> bool) -> t
(** Partition along an explicit predicate (minority = [side v]).
    @raise Invalid_argument if the overlay has an outstanding unhealed
    cut. An empty cut (no crossing edges) needs no healing and never
    blocks a later split. *)

val cut_size : t -> int
(** Number of edges currently removed; 0 once the cut is healed. *)

val heal : Overlay.t -> t -> unit
(** Re-add all removed edges (skipping endpoints that died in the
    meantime). Idempotent: healing twice adds nothing twice. Healing
    releases the overlay's cut, allowing a new [split_*]. *)
