module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Builder = Rumor_graph.Builder

type vec = { mutable data : int array; mutable len : int }

let vec_create () = { data = [||]; len = 0 }

let vec_push v x =
  if v.len = Array.length v.data then begin
    let cap = max 4 (2 * Array.length v.data) in
    let data = Array.make cap 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

(* Remove the first occurrence of [x], preserving nothing about order. *)
let vec_remove_one v x =
  let rec find i = if i >= v.len then -1 else if v.data.(i) = x then i else find (i + 1) in
  let i = find 0 in
  if i < 0 then false
  else begin
    v.data.(i) <- v.data.(v.len - 1);
    v.len <- v.len - 1;
    true
  end

type t = {
  cap : int;
  adj : vec array;
  alive : bool array;
  mutable live : int;
  mutable stubs : int;  (* total adjacency entries = 2 * edges *)
  mutable deg_bound : int;  (* monotone upper bound on any degree *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Overlay.create: capacity < 0";
  {
    cap = capacity;
    adj = Array.init capacity (fun _ -> vec_create ());
    alive = Array.make capacity false;
    live = 0;
    stubs = 0;
    deg_bound = 1;
  }

let capacity t = t.cap
let node_count t = t.live
let is_alive t v = v >= 0 && v < t.cap && t.alive.(v)
let degree t v = t.adj.(v).len

let neighbor t v i =
  if i < 0 || i >= t.adj.(v).len then invalid_arg "Overlay.neighbor: index";
  t.adj.(v).data.(i)

let neighbors t v = Array.to_list (Array.sub t.adj.(v).data 0 t.adj.(v).len)

let activate t =
  let rec find i =
    if i >= t.cap then failwith "Overlay.activate: at capacity"
    else if not t.alive.(i) then i
    else find (i + 1)
  in
  let v = find 0 in
  t.alive.(v) <- true;
  t.live <- t.live + 1;
  v

let add_edge t u v =
  if not (is_alive t u) || not (is_alive t v) then
    invalid_arg "Overlay.add_edge: dead endpoint";
  vec_push t.adj.(u) v;
  vec_push t.adj.(v) u;
  t.stubs <- t.stubs + 2;
  t.deg_bound <- max t.deg_bound (max t.adj.(u).len t.adj.(v).len)

let remove_edge t u v =
  if u = v then begin
    (* A self-loop is two entries in the same list. *)
    if vec_remove_one t.adj.(u) v then begin
      let second = vec_remove_one t.adj.(u) v in
      assert second;
      t.stubs <- t.stubs - 2;
      true
    end
    else false
  end
  else if vec_remove_one t.adj.(u) v then begin
    let other = vec_remove_one t.adj.(v) u in
    assert other;
    t.stubs <- t.stubs - 2;
    true
  end
  else false

let deactivate t v =
  if not (is_alive t v) then invalid_arg "Overlay.deactivate: not alive";
  let a = t.adj.(v) in
  for i = 0 to a.len - 1 do
    let w = a.data.(i) in
    if w <> v then begin
      let removed = vec_remove_one t.adj.(w) v in
      assert removed;
      t.stubs <- t.stubs - 1
    end
  done;
  t.stubs <- t.stubs - a.len;
  a.len <- 0;
  t.alive.(v) <- false;
  t.live <- t.live - 1

let random_node t rng =
  if t.live = 0 then failwith "Overlay.random_node: empty overlay";
  let rec go () =
    let v = Rng.int rng t.cap in
    if t.alive.(v) then v else go ()
  in
  go ()

let random_edge t rng =
  if t.stubs = 0 then None
  else begin
    (* Degree-proportional node choice by rejection against the degree
       bound, then a uniform incident stub: every stub equally likely. *)
    let rec go budget =
      if budget = 0 then begin
        (* Pathological acceptance rate: fall back to an exact O(cap)
           scan over stubs. *)
        let target = Rng.int rng t.stubs in
        let acc = ref 0 and res = ref None and v = ref 0 in
        while !res = None && !v < t.cap do
          let l = t.adj.(!v).len in
          if target < !acc + l then res := Some (!v, t.adj.(!v).data.(target - !acc));
          acc := !acc + l;
          incr v
        done;
        !res
      end
      else begin
        let v = Rng.int rng t.cap in
        let d = t.adj.(v).len in
        if t.alive.(v) && d > 0 && Rng.int rng t.deg_bound < d then
          Some (v, t.adj.(v).data.(Rng.int rng d))
        else go (budget - 1)
      end
    in
    go 10_000
  end

let edge_count t = t.stubs / 2

let to_topology t =
  {
    Rumor_sim.Topology.capacity = t.cap;
    degree = (fun v -> t.adj.(v).len);
    neighbor = (fun v i -> t.adj.(v).data.(i));
    alive = (fun v -> t.alive.(v));
    live_count = Some (fun () -> t.live);
  }

let of_graph ~capacity g =
  if capacity < Graph.n g then invalid_arg "Overlay.of_graph: capacity too small";
  let t = create ~capacity in
  for v = 0 to Graph.n g - 1 do
    t.alive.(v) <- true;
    t.live <- t.live + 1
  done;
  Graph.iter_edges g (fun u v -> add_edge t u v);
  t

let snapshot t =
  let b = Builder.create ~capacity:(max (edge_count t) 1) ~n:t.cap () in
  for v = 0 to t.cap - 1 do
    let a = t.adj.(v) in
    let loops = ref 0 in
    for i = 0 to a.len - 1 do
      let w = a.data.(i) in
      if w > v then Builder.add_edge b v w else if w = v then incr loops
    done;
    for _ = 1 to !loops / 2 do
      Builder.add_edge b v v
    done
  done;
  Builder.build b

let invariant t =
  let ok = ref true in
  let total = ref 0 in
  for v = 0 to t.cap - 1 do
    let a = t.adj.(v) in
    total := !total + a.len;
    if (not t.alive.(v)) && a.len > 0 then ok := false;
    for i = 0 to a.len - 1 do
      let w = a.data.(i) in
      if not (is_alive t w) then ok := false
    done
  done;
  if !total <> t.stubs then ok := false;
  (* Multiset symmetry. *)
  let count v x =
    let a = t.adj.(v) in
    let c = ref 0 in
    for i = 0 to a.len - 1 do
      if a.data.(i) = x then incr c
    done;
    !c
  in
  for v = 0 to t.cap - 1 do
    let a = t.adj.(v) in
    for i = 0 to a.len - 1 do
      let w = a.data.(i) in
      if w <> v && count v w <> count w v then ok := false
    done
  done;
  !ok
