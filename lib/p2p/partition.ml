module Rng = Rumor_rng.Rng

type t = { mutable removed : (int * int) list; mutable healed : bool }

(* One overlay carries at most one unhealed cut at a time: stacked cuts
   would make [heal] order-dependent (a second split could remove edges
   the first one is about to re-add, silently corrupting the degree
   sequence). The registry holds weak references so abandoned overlays
   do not leak, and a mutex keeps it safe under [Experiment]'s domain
   fan-out. *)
let registry : (Overlay.t Weak.t * t) list ref = ref []
let registry_mu = Mutex.create ()

let locked f =
  Mutex.lock registry_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) f

let entry_of o (w, p) =
  (not p.healed) && (match Weak.get w 0 with Some o' -> o' == o | None -> false)

let entry_live (w, p) =
  (not p.healed) && Weak.get w 0 <> None

let assert_no_outstanding ~where o =
  locked (fun () ->
      registry := List.filter entry_live !registry;
      if List.exists (entry_of o) !registry then
        invalid_arg
          (where ^ ": overlay already has an outstanding unhealed cut"))

let register o t =
  if not t.healed then
    locked (fun () ->
        let w = Weak.create 1 in
        Weak.set w 0 (Some o);
        registry := (w, t) :: !registry)

let split_by o ~side =
  (* Refuse before touching the overlay, so a raised call mutates
     nothing. *)
  assert_no_outstanding ~where:"Partition.split_by" o;
  let removed = ref [] in
  let cap = Overlay.capacity o in
  for v = 0 to cap - 1 do
    if Overlay.is_alive o v && side v then
      (* Remove every incident edge whose other endpoint is outside. *)
      List.iter
        (fun w ->
          if (not (side w)) && Overlay.remove_edge o v w then
            removed := (v, w) :: !removed)
        (Overlay.neighbors o v)
  done;
  (* An empty cut needs no healing and never blocks a later split. *)
  let t = { removed = !removed; healed = !removed = [] } in
  register o t;
  t

let split_random o ~rng ~fraction =
  if fraction < 0. || fraction > 1. then
    invalid_arg "Partition.split_random: fraction out of range";
  let cap = Overlay.capacity o in
  let minority = Array.make cap false in
  for v = 0 to cap - 1 do
    if Overlay.is_alive o v then minority.(v) <- Rng.bernoulli rng fraction
  done;
  split_by o ~side:(fun v -> minority.(v))

let cut_size t = if t.healed then 0 else List.length t.removed

let heal o t =
  if not t.healed then begin
    List.iter
      (fun (u, v) ->
        if Overlay.is_alive o u && Overlay.is_alive o v then
          Overlay.add_edge o u v)
      t.removed;
    t.healed <- true;
    t.removed <- [];
    (* Drop the (now healed) entry eagerly so the registry stays small. *)
    locked (fun () -> registry := List.filter entry_live !registry)
  end
