module Rng = Rumor_rng.Rng
module Engine = Rumor_sim.Engine

type entry = { data : int; version : int }

type t = {
  capacity : int;
  stores : (int, entry) Hashtbl.t array;
  newest : (int, int) Hashtbl.t;  (* key -> newest version ever issued *)
  mutable clock : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Replica.create: capacity < 0";
  {
    capacity;
    stores = Array.init capacity (fun _ -> Hashtbl.create 8);
    newest = Hashtbl.create 64;
    clock = 0;
  }

let read t ~node ~key =
  match Hashtbl.find_opt t.stores.(node) key with
  | Some { data; version } -> Some (data, version)
  | None -> None

let store_size t ~node = Hashtbl.length t.stores.(node)

let apply t ~node ~key ~data ~version =
  let fresh =
    match Hashtbl.find_opt t.stores.(node) key with
    | Some { version = v; _ } -> version > v
    | None -> true
  in
  if fresh then Hashtbl.replace t.stores.(node) key { data; version };
  fresh

let local_write t ~node ~key ~data =
  t.clock <- t.clock + 1;
  let version = t.clock in
  ignore (apply t ~node ~key ~data ~version);
  Hashtbl.replace t.newest key version;
  version

let broadcast ?fault ~rng ~overlay ~protocol t ~origin ~key ~data =
  let version = local_write t ~node:origin ~key ~data in
  let result =
    Engine.run ?fault ~rng ~topology:(Overlay.to_topology overlay) ~protocol
      ~sources:[ origin ] ()
  in
  Rumor_sim.Bitset.iter_set result.Engine.knows (fun node ->
      if node <> origin then ignore (apply t ~node ~key ~data ~version));
  result

type sync_cost = { transfers : int; compared : int }

let sync_pair t a b =
  (* Exchange entries in both directions; count transfers of entries the
     receiver was missing or held in an older version, and the entries
     examined along the way (the digest cost). *)
  let transfers = ref 0 and compared = ref 0 in
  let push_newer src dst =
    Hashtbl.iter
      (fun key { data; version } ->
        incr compared;
        if apply t ~node:dst ~key ~data ~version then incr transfers)
      t.stores.(src)
  in
  push_newer a b;
  push_newer b a;
  { transfers = !transfers; compared = !compared }

let anti_entropy_round ~rng ~overlay t =
  let transfers = ref 0 and compared = ref 0 in
  for v = 0 to Overlay.capacity overlay - 1 do
    if Overlay.is_alive overlay v then begin
      let d = Overlay.degree overlay v in
      if d > 0 then begin
        let w = Overlay.neighbor overlay v (Rng.int rng d) in
        if w <> v then begin
          let c = sync_pair t v w in
          transfers := !transfers + c.transfers;
          compared := !compared + c.compared
        end
      end
    end
  done;
  { transfers = !transfers; compared = !compared }

let staleness t ~overlay ~key =
  match Hashtbl.find_opt t.newest key with
  | None -> nan
  | Some newest ->
      let live = ref 0 and stale = ref 0 in
      for v = 0 to Overlay.capacity overlay - 1 do
        if Overlay.is_alive overlay v then begin
          incr live;
          let current =
            match Hashtbl.find_opt t.stores.(v) key with
            | Some { version; _ } -> version = newest
            | None -> false
          in
          if not current then incr stale
        end
      done;
      if !live = 0 then nan else float_of_int !stale /. float_of_int !live

let converged t ~overlay =
  (* Compare every live store against the first live one. *)
  let canonical = ref None in
  let ok = ref true in
  for v = 0 to Overlay.capacity overlay - 1 do
    if !ok && Overlay.is_alive overlay v then begin
      match !canonical with
      | None -> canonical := Some v
      | Some c ->
          let sc = t.stores.(c) and sv = t.stores.(v) in
          if Hashtbl.length sc <> Hashtbl.length sv then ok := false
          else
            Hashtbl.iter
              (fun key entry ->
                match Hashtbl.find_opt sv key with
                | Some e when e = entry -> ()
                | Some _ | None -> ok := false)
              sc
    end
  done;
  !ok
