(** Bytes-backed fixed-width unsigned cells for per-node counters.

    A [bool array] costs a word per flag and an [int array] a word per
    counter; {!Bitset} shrinks the former to a bit, this module shrinks
    the latter to its natural width. The kernel's receipt stamps are
    bounded by the run horizon (one or two bytes), its duplicate
    tallies by the per-round delivery count (two bytes), and a
    packed-state protocol's whole per-node record by its declared bit
    width — at n = 10^8 that is the difference between 800 MB and
    100–200 MB per array.

    Cells are unsigned. Every access is bounds-checked, and [set]
    additionally range-checks the value against the width: storing a
    value that does not fit raises [Invalid_argument] — an explicit
    failure, never a silent wrap. *)

type width = W8 | W16 | W32  (** Cell size: 1, 2 or 4 bytes. *)

type t

val create : width -> int -> t
(** [create w n] is [n] cells of width [w], all zero. The backing
    buffer is padded to a whole number of 64-bit words (unreachable
    through the accessors) so {!fill} and {!reset} run word-parallel. *)

val length : t -> int
val width : t -> width

val bits : t -> int
(** The cell width in bits: 8, 16 or 32. *)

val max_value : t -> int
(** Largest storable value: [2^bits - 1]. *)

val bits_of_width : width -> int

val width_of_bits : int -> width
(** Inverse of {!bits_of_width}; raises [Invalid_argument] unless the
    argument is 8, 16 or 32. *)

val width_for : int -> width
(** Smallest width whose {!max_value} admits the given value. Raises
    [Invalid_argument] on negatives and on values above [2^32 - 1]. *)

val get : t -> int -> int
(** [get t i] is the value of cell [i], in [\[0, max_value t\]].
    32-bit cells are read as two 16-bit halves so no load ever boxes an
    [Int32]. Raises [Invalid_argument] out of bounds. *)

val set : t -> int -> int -> unit
(** [set t i v] stores [v] in cell [i]. Raises [Invalid_argument] when
    [i] is out of bounds {e or} [v] is outside [\[0, max_value t\]] —
    overflow is an error, not a wrap. *)

val fill : t -> int -> unit
(** Set every cell to the given value, 64 bits per store (a plain
    [memset] when the replicated pattern's bytes coincide). Range-checks
    the value like {!set}. *)

val reset : t -> unit
(** [fill t 0], always a [memset]. *)
