(* The asynchronous Poisson-clock driver: a thin wrapper over
   {!Kernel.run_async} (which shares the selection, fault-sampling,
   delivery and quiescence machinery with the synchronous kernel). *)

module Graph = Rumor_graph.Graph

type result = Kernel.async_result = {
  activations : int;
  time : float;
  completion_time : float option;
  informed : int;
  transmissions : int;
  trace : Trace.t option;
}

let run ?fault ?stop_when_complete ?collect_trace ?on_round_end ?reset
    ?monitor ?packed ~rng ~graph ~protocol ~sources () =
  let n = Graph.n graph in
  if sources = [] then invalid_arg "Async.run: no sources";
  List.iter
    (fun s -> if s < 0 || s >= n then invalid_arg "Async.run: bad source")
    sources;
  Kernel.run_async ?fault ?stop_when_complete ?collect_trace ?on_round_end
    ?reset ?monitor ?packed ~rng ~graph ~protocol ~sources ()
