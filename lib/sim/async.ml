module Rng = Rumor_rng.Rng
module Dist = Rumor_rng.Dist
module Graph = Rumor_graph.Graph

type result = {
  activations : int;
  time : float;
  completion_time : float option;
  informed : int;
  transmissions : int;
}

let run ?(fault = Fault.none) ?(stop_when_complete = false) ~rng ~graph ~protocol ~sources () =
  let open Protocol in
  let n = Graph.n graph in
  if sources = [] then invalid_arg "Async.run: no sources";
  List.iter
    (fun s -> if s < 0 || s >= n then invalid_arg "Async.run: bad source")
    sources;
  let informed = Bitset.create n in
  let state = Array.init n (fun _ -> protocol.init ~informed:false) in
  List.iter
    (fun s ->
      Bitset.set informed s;
      state.(s) <- protocol.init ~informed:true)
    sources;
  let selector = Selector.make protocol.selector ~capacity:n in
  let scratch = Array.make (max (Selector.fanout protocol.selector) 1) 0 in
  let time = ref 0. in
  let activations = ref 0 in
  let transmissions = ref 0 in
  let informed_count = ref (List.length sources) in
  let completion = ref (if !informed_count = n then Some 0. else None) in
  let horizon = float_of_int protocol.horizon in
  let logical () = int_of_float !time + 1 in
  (* Quiescence is only re-checked occasionally (it costs O(n)); the
     horizon bounds the run regardless. The scan exits at the first
     talkative node, checking last time's witness first. *)
  let witness = ref 0 in
  let all_quiet () =
    let round = logical () in
    let w = !witness in
    if
      w < n && Bitset.get informed w
      && not (protocol.quiescent state.(w) ~round)
    then false
    else begin
      let quiet = ref true in
      let v = ref 0 in
      while !quiet && !v < n do
        let u = !v in
        if Bitset.get informed u && not (protocol.quiescent state.(u) ~round)
        then begin
          quiet := false;
          witness := u
        end;
        incr v
      done;
      !quiet
    end
  in
  (* Hoisted out of the activation loop so steady-state activations
     allocate nothing; [cur_round] carries the logical round. *)
  let cur_round = ref 1 in
  let deliver ~sender target =
    let round = !cur_round in
    if not (Bitset.get informed target) then begin
      Bitset.set informed target;
      state.(target) <- protocol.receive state.(target) ~round;
      incr informed_count;
      if !informed_count = n then completion := Some !time
    end
    else state.(sender) <- protocol.feedback state.(sender) ~round
  in
  let stop = ref false in
  while (not !stop) && !time < horizon do
    (* Superposition of n rate-1 clocks: global rate n. *)
    time := !time +. Dist.exponential rng ~rate:(float_of_int n);
    if !time < horizon then begin
      incr activations;
      let v = Rng.int rng n in
      let deg = Graph.degree graph v in
      if deg > 0 then begin
        let round = logical () in
        cur_round := round;
        let k = Selector.select selector ~rng ~node:v ~degree:deg ~out:scratch in
        for i = 0 to k - 1 do
          let w = Graph.neighbor graph v scratch.(i) in
          if Fault.channel_ok fault rng then begin
            (* push: the activated caller transmits to the callee. *)
            if Bitset.get informed v && (protocol.decide state.(v) ~round).push
               && Fault.delivery_ok ~dir:`Push fault rng
            then begin
              incr transmissions;
              deliver ~sender:v w
            end;
            (* pull: the callee answers the caller. *)
            if Bitset.get informed w && (protocol.decide state.(w) ~round).pull
               && Fault.delivery_ok ~dir:`Pull fault rng
            then begin
              incr transmissions;
              deliver ~sender:w v
            end
          end
        done
      end;
      if stop_when_complete && !informed_count = n then stop := true;
      if !activations mod (4 * n) = 0 && all_quiet () then stop := true
    end
  done;
  {
    activations = !activations;
    time = !time;
    completion_time = !completion;
    informed = !informed_count;
    transmissions = !transmissions;
  }
