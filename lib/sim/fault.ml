module Rng = Rumor_rng.Rng

type burst = { loss : float; burst_len : float }

type adversary = Random_nodes | Highest_degree | Frontier

type strike = {
  at_round : int;
  count : int;
  every : int;  (* 0 = one-shot; k > 0 re-fires every k rounds *)
  adversary : adversary;
}

type partition = { split_at : int; heal_at : int; cut_fraction : float }

type t = {
  call_failure : float;
  link_loss : float;
  push_loss : float;
  pull_loss : float;
  burst : burst option;
  crash_rate : float;
  recover_rate : float;
  strike : strike option;
  partition : partition option;
}

let none =
  {
    call_failure = 0.;
    link_loss = 0.;
    push_loss = 0.;
    pull_loss = 0.;
    burst = None;
    crash_rate = 0.;
    recover_rate = 0.;
    strike = None;
    partition = None;
  }

let check_prob where name p =
  if p < 0. || p > 1. then
    invalid_arg (where ^ ": " ^ name ^ " out of range")

let make ?(call_failure = 0.) ?(link_loss = 0.) () =
  check_prob "Fault.make" "call_failure" call_failure;
  check_prob "Fault.make" "link_loss" link_loss;
  { none with call_failure; link_loss }

(* Enter probability p = loss / ((1 - loss) * burst_len) keeps the
   chain's stationary bad-state probability at [loss]; it must itself be
   a probability, which bounds loss by burst_len / (burst_len + 1). *)
let burst ~loss ~burst_len =
  if loss < 0. || loss >= 1. then
    invalid_arg "Fault.burst: loss must be in [0, 1)";
  if burst_len < 1. then invalid_arg "Fault.burst: burst_len must be >= 1";
  if loss > burst_len /. (burst_len +. 1.) then
    invalid_arg "Fault.burst: loss too high for this burst_len";
  { loss; burst_len }

let strike ?(adversary = Random_nodes) ?(every = 0) ~at_round ~count () =
  if at_round < 1 then invalid_arg "Fault.strike: at_round must be >= 1";
  if count < 0 then invalid_arg "Fault.strike: count must be >= 0";
  if every < 0 then invalid_arg "Fault.strike: every must be >= 0";
  { at_round; count; every; adversary }

let strike_fires s ~round =
  round = s.at_round
  || (s.every > 0 && round > s.at_round
      && (round - s.at_round) mod s.every = 0)

let partition ?(fraction = 0.5) ~split_at ~heal_at () =
  if split_at < 1 then
    invalid_arg "Fault.partition: split_at must be >= 1";
  if heal_at <= split_at then
    invalid_arg "Fault.partition: heal_at must be > split_at";
  check_prob "Fault.partition" "fraction" fraction;
  { split_at; heal_at; cut_fraction = fraction }

let plan ?(call_failure = 0.) ?(link_loss = 0.) ?(push_loss = 0.)
    ?(pull_loss = 0.) ?burst ?(crash_rate = 0.) ?(recover_rate = 0.) ?strike
    ?partition () =
  check_prob "Fault.plan" "call_failure" call_failure;
  check_prob "Fault.plan" "link_loss" link_loss;
  check_prob "Fault.plan" "push_loss" push_loss;
  check_prob "Fault.plan" "pull_loss" pull_loss;
  check_prob "Fault.plan" "crash_rate" crash_rate;
  check_prob "Fault.plan" "recover_rate" recover_rate;
  {
    call_failure;
    link_loss;
    push_loss;
    pull_loss;
    burst;
    crash_rate;
    recover_rate;
    strike;
    partition;
  }

let has_node_faults t =
  t.crash_rate > 0. || t.strike <> None

let channel_ok t rng =
  t.call_failure = 0. || not (Rng.bernoulli rng t.call_failure)

let delivery_ok ?dir t rng =
  (t.link_loss = 0. || not (Rng.bernoulli rng t.link_loss))
  &&
  match dir with
  | None -> true
  | Some `Push -> t.push_loss = 0. || not (Rng.bernoulli rng t.push_loss)
  | Some `Pull -> t.pull_loss = 0. || not (Rng.bernoulli rng t.pull_loss)

(* --- stateful runtime driven by the engine's round loop --- *)

type runtime = {
  plan : t;
  capacity : int;
  bad : bool array;  (* Gilbert–Elliott state per node; [||] when unused *)
  down : bool array;  (* crashed node ids; [||] when unused *)
  ge_enter : float;  (* good -> bad transition probability *)
  ge_leave : float;  (* bad -> good transition probability *)
  side : bool array;  (* partition side per node; [||] when unused *)
  mutable cut_active : bool;  (* a partition window is currently open *)
}

let start plan ~capacity =
  if capacity < 0 then invalid_arg "Fault.start: capacity < 0";
  let bad =
    match plan.burst with
    | Some _ -> Array.make capacity false
    | None -> [||]
  in
  let down =
    if has_node_faults plan then Array.make capacity false else [||]
  in
  let ge_enter, ge_leave =
    match plan.burst with
    | Some b -> (b.loss /. ((1. -. b.loss) *. b.burst_len), 1. /. b.burst_len)
    | None -> (0., 0.)
  in
  let side =
    match plan.partition with
    | Some _ -> Array.make capacity false
    | None -> [||]
  in
  { plan; capacity; bad; down; ge_enter; ge_leave; side; cut_active = false }

let active rt v = Array.length rt.down = 0 || not rt.down.(v)
let bursting rt v = Array.length rt.bad > 0 && rt.bad.(v)
let may_recover rt = rt.plan.recover_rate > 0.

let down_count rt =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 rt.down

let apply_strike ?on_crash rt ~rng ~degree ~alive ~informed s =
  let eligible v =
    alive v && not rt.down.(v)
    && match s.adversary with Frontier -> informed v | _ -> true
  in
  let cands = ref [] in
  for v = rt.capacity - 1 downto 0 do
    if eligible v then cands := v :: !cands
  done;
  let arr = Array.of_list !cands in
  let k = min s.count (Array.length arr) in
  (match s.adversary with
  | Highest_degree ->
      (* deterministic: degree descending, id ascending on ties *)
      Array.sort
        (fun a b ->
          let c = Int.compare (degree b) (degree a) in
          if c <> 0 then c else Int.compare a b)
        arr
  | Random_nodes | Frontier -> Rng.shuffle_prefix rng arr k);
  for i = 0 to k - 1 do
    rt.down.(arr.(i)) <- true;
    match on_crash with Some f -> f arr.(i) | None -> ()
  done

let begin_round ?on_recover ?on_crash rt ~rng ~round ~degree ~alive ~informed =
  if Array.length rt.bad > 0 then
    for v = 0 to rt.capacity - 1 do
      if rt.bad.(v) then begin
        if Rng.bernoulli rng rt.ge_leave then rt.bad.(v) <- false
      end
      else if Rng.bernoulli rng rt.ge_enter then rt.bad.(v) <- true
    done;
  if Array.length rt.down > 0 then begin
    if rt.plan.recover_rate > 0. then
      for v = 0 to rt.capacity - 1 do
        if rt.down.(v) && Rng.bernoulli rng rt.plan.recover_rate then begin
          rt.down.(v) <- false;
          match on_recover with Some f -> f v | None -> ()
        end
      done;
    if rt.plan.crash_rate > 0. then
      for v = 0 to rt.capacity - 1 do
        if alive v && (not rt.down.(v))
           && Rng.bernoulli rng rt.plan.crash_rate
        then begin
          rt.down.(v) <- true;
          match on_crash with Some f -> f v | None -> ()
        end
      done;
    match rt.plan.strike with
    | Some s when strike_fires s ~round ->
        apply_strike ?on_crash rt ~rng ~degree ~alive ~informed s
    | Some _ | None -> ()
  end;
  match rt.plan.partition with
  | Some p ->
      if round = p.split_at then begin
        (* Sample every node's side, dead or alive, so the draw count is
           a function of capacity alone (randomness-order contract). *)
        for v = 0 to rt.capacity - 1 do
          rt.side.(v) <- Rng.bernoulli rng p.cut_fraction
        done;
        rt.cut_active <- true
      end
      else if round = p.heal_at then rt.cut_active <- false
  | None -> ()

let same_side rt u v =
  (not rt.cut_active) || rt.side.(u) = rt.side.(v)

let partition_active rt = rt.cut_active

let open_ok rt rng = channel_ok rt.plan rng

let transmit_ok rt rng ~dir_loss ~sender =
  (Array.length rt.bad = 0 || not rt.bad.(sender))
  && (rt.plan.link_loss = 0. || not (Rng.bernoulli rng rt.plan.link_loss))
  && (dir_loss = 0. || not (Rng.bernoulli rng dir_loss))

let push_ok rt rng ~sender =
  transmit_ok rt rng ~dir_loss:rt.plan.push_loss ~sender

let pull_ok rt rng ~sender =
  transmit_ok rt rng ~dir_loss:rt.plan.pull_loss ~sender
