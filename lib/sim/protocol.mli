(** Protocol interface for the random phone call engine.

    A protocol describes, per node and per round, whether to transmit
    the rumor over the channels the node opened ([push]) and over the
    channels opened towards it ([pull]) — exactly the [push(M)] /
    [pull(M)] procedures of Section 3 of the paper. Decisions may
    depend only on local state and the global round number, which makes
    every protocol expressible here {e address-oblivious} by
    construction; protocols whose state depends only on the receipt
    time are additionally {e strictly oblivious} in the sense of the
    lower bound (Section 2). *)

type decision = { push : bool; pull : bool }
(** What a node transmits this round. Only informed nodes are asked. *)

val silent : decision
(** Neither push nor pull. *)

val push_only : decision
val pull_only : decision

val push_pull : decision
(** Shared decision records. [decide] runs once per informed node per
    round, so protocols should return these preallocated constants
    instead of building fresh records — steady-state rounds then
    allocate nothing. *)

type 'st t = {
  name : string;  (** for reports and tables *)
  selector : Selector.spec;  (** how nodes choose whom to call *)
  horizon : int;  (** hard cap on rounds (Monte-Carlo time bound) *)
  init : informed:bool -> 'st;  (** per-node state before round 1 *)
  decide : 'st -> round:int -> decision;
      (** transmission decision of an {e informed} node *)
  receive : 'st -> round:int -> 'st;
      (** state update when the rumor is first received in [round];
          visible to [decide] from round [round + 1] on *)
  feedback : 'st -> round:int -> 'st;
      (** state update on a {e transmitting} node each time one of its
          copies reached a partner that already knew the rumor — the
          "recipient says: I know" signal driving the rumor-mongering
          variants of Demers et al. [7]. Most protocols ignore it
          ({!val:no_feedback}). Applied at the end of the round, once
          per redundant delivery; visible to [decide] from the next
          round. *)
  quiescent : 'st -> round:int -> bool;
      (** [true] when an informed node will never transmit at any round
          [>= round]; lets the engine stop early *)
}
(** A broadcast protocol with per-node state ['st]. *)

val no_feedback : 'st -> round:int -> 'st
(** The identity [feedback] for protocols that ignore the signal. *)
