(** Protocol interface for the random phone call engine.

    A protocol describes, per node and per round, whether to transmit
    the rumor over the channels the node opened ([push]) and over the
    channels opened towards it ([pull]) — exactly the [push(M)] /
    [pull(M)] procedures of Section 3 of the paper. Decisions may
    depend only on local state and the global round number, which makes
    every protocol expressible here {e address-oblivious} by
    construction; protocols whose state depends only on the receipt
    time are additionally {e strictly oblivious} in the sense of the
    lower bound (Section 2). *)

type decision = { push : bool; pull : bool }
(** What a node transmits this round. Only informed nodes are asked. *)

val silent : decision
(** Neither push nor pull. *)

val push_only : decision
val pull_only : decision

val push_pull : decision
(** Shared decision records. [decide] runs once per informed node per
    round, so protocols should return these preallocated constants
    instead of building fresh records — steady-state rounds then
    allocate nothing. *)

type packed_ops = {
  bits : int;  (** declared cell width: 8, 16 or 32 *)
  p_init : informed:bool -> int;
  p_decide : int -> round:int -> decision;
  p_receive : int -> round:int -> int;
  p_feedback : int -> round:int -> int;
  p_quiescent : int -> round:int -> bool;
}
(** Int-coded protocol operations over packed per-node state.

    Each function takes and returns the node's state as a non-negative
    integer code that fits in [bits] bits; the kernel stores the codes
    in a flat [Cells.t] (a few bytes per node) instead of an ['st
    array] of boxed records, which is what lets [bef] run at n = 10^8.
    The hot path works on codes directly — no decode/encode round trip,
    no allocation per decision.

    Contract: packed ops must be {e rng-pure} — they may not draw
    randomness or carry hidden mutable state. The packed kernel path
    applies end-of-round receipts and feedback in ascending node order
    (a word-parallel bitset scan) rather than in delivery order, which
    is only unobservable when the ops are pure. Protocols whose
    [receive]/[feedback] draw (e.g. Demers coin variants) must not
    declare packed ops. *)

type 'st packed = {
  ops : packed_ops;
  encode : 'st -> int;
  decode : int -> 'st;
}
(** Packed ops together with the code ↔ boxed-state bijection.
    [encode]/[decode] are never called on the hot path; they exist so
    differential tests can check that [ops] agrees with the boxed
    functions through the encoding ([decode (p_receive (encode st)
    ~round) = receive st ~round], and likewise for the rest). *)

type 'st t = {
  name : string;  (** for reports and tables *)
  selector : Selector.spec;  (** how nodes choose whom to call *)
  horizon : int;  (** hard cap on rounds (Monte-Carlo time bound) *)
  init : informed:bool -> 'st;  (** per-node state before round 1 *)
  decide : 'st -> round:int -> decision;
      (** transmission decision of an {e informed} node *)
  receive : 'st -> round:int -> 'st;
      (** state update when the rumor is first received in [round];
          visible to [decide] from round [round + 1] on *)
  feedback : 'st -> round:int -> 'st;
      (** state update on a {e transmitting} node each time one of its
          copies reached a partner that already knew the rumor — the
          "recipient says: I know" signal driving the rumor-mongering
          variants of Demers et al. [7]. Most protocols ignore it
          ({!val:no_feedback}). Applied at the end of the round, once
          per redundant delivery; visible to [decide] from the next
          round. *)
  quiescent : 'st -> round:int -> bool;
      (** [true] when an informed node will never transmit at any round
          [>= round]; lets the engine stop early *)
  packed : 'st packed option;
      (** optional compact-state path; [None] keeps the boxed ['st
          array] representation. {b Warning:} a [{ p with decide = … }]
          record update that changes any behaviour field must also
          replace (or drop) [packed], or the packed path will silently
          run the old behaviour. *)
}
(** A broadcast protocol with per-node state ['st]. *)

val no_feedback : 'st -> round:int -> 'st
(** The identity [feedback] for protocols that ignore the signal. *)

val p_no_feedback : int -> round:int -> int
(** The identity packed [p_feedback]. *)
