(** The synchronous random phone call engine.

    Each round executes the paper's [open; transmit; receive; close]
    schedule:

    + every live node opens channels to [fanout] distinct random
      neighbours (per the protocol's {!Selector.spec});
    + every informed node is asked for a {!Protocol.decision}; [push]
      sends the rumor over the node's outgoing channels, [pull] over
      its incoming channels;
    + nodes that received the rumor for the first time update their
      state; they can transmit from the next round on;
    + all channels close.

    Transmissions are counted per channel use — including redundant
    deliveries to already-informed nodes — which is the quantity the
    paper's theorems bound.

    This module is the single-rumor driver of the shared {!Kernel}: one
    table under a {!Kernel.Full} fault runtime. The stopping rule
    (horizon, quiescence, the oracle-stopped [stop_when_complete]
    accounting), the randomness-order contract and the census invariant
    are documented once, on {!Kernel}. *)

type epoch_stat = Kernel.epoch_stat = {
  epoch : int;  (** 1-based repair epoch index *)
  epoch_rounds : int;  (** rounds the epoch executed *)
  epoch_informed : int;  (** informed live nodes at the epoch's end *)
  epoch_population : int;  (** live nodes at the epoch's end *)
  repair_push_tx : int;  (** push transmissions spent by the epoch *)
  repair_pull_tx : int;  (** pull transmissions spent by the epoch *)
  repair_channels : int;  (** channels the epoch opened *)
}
(** Accounting for one self-healing repair epoch (see {!run_epochs}).
    Shared with {!Kernel.epoch_stat} (and so with [Multi.run_epochs]). *)

type result = {
  rounds : int;  (** rounds actually executed (including repair epochs) *)
  completion_round : int option;
      (** first round at whose end every live node was informed (main
          schedule only — repair rounds are not counted here) *)
  informed : int;  (** informed live nodes at the end of the run *)
  population : int;  (** live nodes at the end of the run *)
  push_tx : int;  (** total push transmissions *)
  pull_tx : int;  (** total pull transmissions *)
  channels : int;  (** total channels successfully opened *)
  knows : Bitset.t;
      (** final informed flag per node id (length = topology capacity) —
          lets applications deliver the payload to exactly the reached
          nodes; one bit per node so 10^8-node results stay small *)
  down : int list;
      (** node ids crashed (and not yet recovered) when the run stopped;
          [[]] without node faults *)
  repair : epoch_stat list;
      (** per-epoch repair accounting, oldest first; [[]] for plain
          {!run} results *)
  trace : Trace.t option;  (** per-round rows when requested *)
}

val transmissions : result -> int
(** [push_tx + pull_tx]. *)

val success : result -> bool
(** Every live node informed when the run stopped. *)

val epochs_used : result -> int
(** Repair epochs the run consumed ([List.length r.repair]). *)

val repair_tx : result -> int
(** Total transmissions spent inside repair epochs. *)

val coverage : result -> float
(** [informed / population] (0 on an empty network). *)

val run :
  ?fault:Fault.t ->
  ?collect_trace:bool ->
  ?stop_when_complete:bool ->
  ?gate:(informed:bool -> node:int -> round:int -> bool) ->
  ?forget_on_recover:bool ->
  ?reset:(unit -> int list) ->
  ?on_round_end:(int -> unit) ->
  ?skew:(int -> int) ->
  ?monitor:Invariant.t ->
  ?packed:bool ->
  rng:Rumor_rng.Rng.t ->
  topology:Topology.t ->
  protocol:'st Protocol.t ->
  sources:int list ->
  unit ->
  result
(** [run ~rng ~topology ~protocol ~sources ()] broadcasts one rumor
    initially known to [sources], stopping per the {!Kernel} stopping
    rule: at the protocol's [horizon], earlier once every informed node
    is quiescent, or — when [stop_when_complete] is set (default
    false) — at the end of the first round in which every live node is
    informed (the oracle-stopped accounting). [on_round_end] fires
    after each round and may mutate the topology (churn) but must not
    change [capacity]; newly appearing node ids start uninformed.

    [fault] is a full {!Fault.t} plan, ticked at the start of every
    round: burst (Gilbert–Elliott) chains advance, nodes crash and
    recover at the plan's rates, and adversarial strikes land. Crashed
    nodes open no channels, transmit nothing, receive nothing and are
    excluded from [population] / [informed] / completion accounting
    until they recover (with their state intact). A plan with no
    faults draws no randomness, so results with [Fault.none] are
    bit-identical to a run without the argument.

    [skew v] is node [v]'s clock offset: the paper assumes perfectly
    synchronised clocks, and this knob breaks that assumption — node
    [v] evaluates its protocol at logical round [round - skew v]
    (clamped so that a node whose clock has not started yet stays
    silent and not yet quiescent). Default: no skew. The horizon grows
    by the largest skew so late clocks still finish their schedule.

    [gate ~informed ~node ~round] is consulted once per live node per
    round before the node opens its channels; when it returns [false]
    the node initiates nothing that round (it can still {e answer}
    channels opened towards it). Repair epochs use this to silence
    informed nodes and to run uninformed nodes on a pull-timeout /
    backoff schedule. Default: every node opens channels every round
    (no call is made, preserving bit-identical results).

    [forget_on_recover] (default false) models {e recovery amnesia}: a
    node that recovers from a crash lost its volatile state, re-enters
    the uninformed census and restarts from [protocol.init
    ~informed:false] — instead of resuming with stale [knows] state.

    [reset] is drained right after [on_round_end]; the returned node
    ids (fresh churn joins, possibly reusing the id of a departed peer)
    are restarted uninformed. Out-of-range ids are ignored.

    Performance note: without [on_round_end] the kernel maintains its
    live/informed census incrementally (see the census invariant on
    {!Kernel}); installing [on_round_end] switches to a full per-round
    census so churn that mutates liveness stays correct. Both paths
    draw identical randomness and produce bit-identical results.

    [packed] (default [true]) stores per-node protocol state in a flat
    {!Cells.t} when the protocol declares {!Protocol.packed} ops — a
    few bytes per node instead of a boxed record — with bit-identical
    results; [~packed:false] forces the boxed representation (see the
    packed-state section on {!Kernel}).
    @raise Invalid_argument if [sources] is empty or contains a dead or
    out-of-range id. *)

type 'st epoch_plan = 'st Kernel.epoch_plan = {
  epoch_protocol : 'st Protocol.t;
      (** protocol for one repair epoch (its [horizon] bounds the
          epoch's length) *)
  epoch_gate : informed:bool -> node:int -> round:int -> bool;
      (** per-round gate for the epoch: silences informed nodes and
          schedules uninformed pulls (timeout + backoff) *)
}
(** One repair epoch's behaviour, built fresh per epoch by the strategy
    callback of {!run_epochs}. Shared with {!Kernel.epoch_plan}, so the
    same strategies drive [Multi.run_epochs]. *)

val run_epochs :
  ?fault:Fault.t ->
  ?collect_trace:bool ->
  ?forget_on_recover:bool ->
  ?reset:(unit -> int list) ->
  ?on_round_end:(int -> unit) ->
  ?skew:(int -> int) ->
  ?max_epochs:int ->
  ?monitor:Invariant.t ->
  ?packed:bool ->
  rng:Rumor_rng.Rng.t ->
  topology:Topology.t ->
  protocol:'st Protocol.t ->
  repair:(epoch:int -> knows:Bitset.t -> 'r epoch_plan) ->
  sources:int list ->
  unit ->
  result
(** [run_epochs ~rng ~topology ~protocol ~repair ~sources ()] runs the
    main broadcast schedule once ({!run}, forwarding [fault],
    [collect_trace], [forget_on_recover], [on_round_end] and [skew]),
    ([reset], like [on_round_end], applies to the main run only), then
    — while some live node is uninformed and at most [max_epochs]
    (default 8) times — asks [repair ~epoch ~knows] for a fresh
    {!epoch_plan} and re-runs the engine with every current knower as a
    source and the plan's gate installed. Epochs keep the fault plan's
    {e communication} modes (link/call loss, asymmetric loss, bursts)
    but drop the node-dynamics modes ([crash_rate], [strike]): those
    act on the main timeline, a fresh {!Fault.runtime} per epoch brings
    crashed nodes back up (between-epoch recovery), and perpetual
    mid-repair amnesia would make the total-coverage target
    unreachable by construction. [knows] is the current per-id informed
    bitset; treat it as read-only.

    The returned result aggregates the whole healing run: [rounds],
    [push_tx], [pull_tx] and [channels] are cumulative across the main
    schedule and all epochs, [repair] holds one {!epoch_stat} per epoch
    in order, and [informed]/[population]/[knows] describe the final
    state. Epochs stop early once every live node is informed; the loop
    also stops if the rumor went extinct (no live knower remains — with
    nobody to pull from, repair cannot make progress).

    Churn note: [on_round_end] only fires inside the main run; repair
    epochs execute on the topology as it stands, so harnesses that
    churn the overlay should do so from the main schedule.
    @raise Invalid_argument if [max_epochs < 0] or [sources] is invalid
    for {!run}. *)
