(** The synchronous random phone call engine.

    Each round executes the paper's [open; transmit; receive; close]
    schedule:

    + every live node opens channels to [fanout] distinct random
      neighbours (per the protocol's {!Selector.spec});
    + every informed node is asked for a {!Protocol.decision}; [push]
      sends the rumor over the node's outgoing channels, [pull] over
      its incoming channels;
    + nodes that received the rumor for the first time update their
      state; they can transmit from the next round on;
    + all channels close.

    Transmissions are counted per channel use — including redundant
    deliveries to already-informed nodes — which is the quantity the
    paper's theorems bound. *)

type result = {
  rounds : int;  (** rounds actually executed *)
  completion_round : int option;
      (** first round at whose end every live node was informed *)
  informed : int;  (** informed live nodes at the end of the run *)
  population : int;  (** live nodes at the end of the run *)
  push_tx : int;  (** total push transmissions *)
  pull_tx : int;  (** total pull transmissions *)
  channels : int;  (** total channels successfully opened *)
  knows : bool array;
      (** final informed flag per node id (length = topology capacity) —
          lets applications deliver the payload to exactly the reached
          nodes *)
  trace : Trace.t option;  (** per-round rows when requested *)
}

val transmissions : result -> int
(** [push_tx + pull_tx]. *)

val success : result -> bool
(** Every live node informed when the run stopped. *)

val run :
  ?fault:Fault.t ->
  ?collect_trace:bool ->
  ?stop_when_complete:bool ->
  ?on_round_end:(int -> unit) ->
  ?skew:(int -> int) ->
  rng:Rumor_rng.Rng.t ->
  topology:Topology.t ->
  protocol:'st Protocol.t ->
  sources:int list ->
  unit ->
  result
(** [run ~rng ~topology ~protocol ~sources ()] broadcasts one rumor
    initially known to [sources]. The run stops at the protocol's
    [horizon], or earlier once every informed node is quiescent, or —
    when [stop_when_complete] is set (default false) — at the end of
    the first round in which every live node is informed (the
    "oracle-stopped" accounting used when measuring baseline message
    complexity). [on_round_end] fires after each round and may mutate
    the topology (churn) but must not change [capacity]; newly
    appearing node ids start uninformed.

    [fault] is a full {!Fault.t} plan, ticked at the start of every
    round: burst (Gilbert–Elliott) chains advance, nodes crash and
    recover at the plan's rates, and adversarial strikes land. Crashed
    nodes open no channels, transmit nothing, receive nothing and are
    excluded from [population] / [informed] / completion accounting
    until they recover (with their state intact). A plan with no
    faults draws no randomness, so results with [Fault.none] are
    bit-identical to a run without the argument.

    [skew v] is node [v]'s clock offset: the paper assumes perfectly
    synchronised clocks, and this knob breaks that assumption — node
    [v] evaluates its protocol at logical round [round - skew v]
    (clamped so that a node whose clock has not started yet stays
    silent and not yet quiescent). Default: no skew. The horizon grows
    by the largest skew so late clocks still finish their schedule.
    @raise Invalid_argument if [sources] is empty or contains a dead or
    out-of-range id. *)
