(* Bytes-backed fixed-width unsigned cells for per-node counters.

   The kernel's per-rumor tables used to keep one machine word (8
   bytes) per node for every small counter — receipt stamps bounded by
   the horizon, duplicate-delivery tallies that rarely exceed a few
   dozen. At n = 10^8 each such array is 800 MB; the values fit in one
   or two bytes. A [Cells.t] stores them at their natural width over a
   flat [Bytes.t], the same shape as {!Bitset} one level up.

   Two policies mirror Bitset's:

   - every access is bounds-checked against [len] (the buffer is padded
     to a whole number of 64-bit words so [fill] can write word-at-a-
     time, and the padding is unreachable through [get]/[set]);
   - [set] range-checks the value against the declared width and raises
     [Invalid_argument] instead of silently truncating — a stored round
     that exceeds the width is a configuration error the caller must
     see, not a wrap-around the simulation absorbs. *)

type width = W8 | W16 | W32

type t = {
  bytes : Bytes.t;
  len : int;
  width : width;
  shift : int;  (* log2 of the cell size in bytes: 0, 1 or 2 *)
  max_value : int;
}

let bits_of_width = function W8 -> 8 | W16 -> 16 | W32 -> 32

let width_of_bits = function
  | 8 -> W8
  | 16 -> W16
  | 32 -> W32
  | b -> invalid_arg (Printf.sprintf "Cells.width_of_bits: %d not 8/16/32" b)

let width_for v =
  if v < 0 then invalid_arg "Cells.width_for: negative value";
  if v <= 0xFF then W8
  else if v <= 0xFFFF then W16
  else if v <= 0xFFFFFFFF then W32
  else invalid_arg (Printf.sprintf "Cells.width_for: %d exceeds 32 bits" v)

let shift_of_width = function W8 -> 0 | W16 -> 1 | W32 -> 2
let max_of_width = function W8 -> 0xFF | W16 -> 0xFFFF | W32 -> 0xFFFFFFFF

let create width n =
  if n < 0 then invalid_arg "Cells.create: negative length";
  let shift = shift_of_width width in
  (* Pad to whole 64-bit words so [fill] can write 8 bytes per store. *)
  let bytes = Bytes.make (((n lsl shift) + 7) land lnot 7) '\000' in
  { bytes; len = n; width; shift; max_value = max_of_width width }

let length t = t.len
let width t = t.width
let bits t = bits_of_width t.width
let max_value t = t.max_value

let check t i op =
  if i < 0 || i >= t.len then
    invalid_arg
      (Printf.sprintf "Cells.%s: index %d out of bounds [0, %d)" op i t.len)

let check_value t v op =
  if v < 0 || v > t.max_value then
    invalid_arg
      (Printf.sprintf "Cells.%s: value %d out of range [0, %d] for %d-bit cells"
         op v t.max_value (bits_of_width t.width))

(* 32-bit cells are read/written as two 16-bit halves: [get_uint16_le]
   returns an untagged int, while [get_int32_le] would box an Int32 per
   load — unacceptable on the kernel's hot path. *)

let get t i =
  check t i "get";
  match t.width with
  | W8 -> Bytes.get_uint8 t.bytes i
  | W16 -> Bytes.get_uint16_le t.bytes (i lsl 1)
  | W32 ->
      let off = i lsl 2 in
      Bytes.get_uint16_le t.bytes off
      lor (Bytes.get_uint16_le t.bytes (off + 2) lsl 16)

let set t i v =
  check t i "set";
  check_value t v "set";
  match t.width with
  | W8 -> Bytes.set_uint8 t.bytes i v
  | W16 -> Bytes.set_uint16_le t.bytes (i lsl 1) v
  | W32 ->
      let off = i lsl 2 in
      Bytes.set_uint16_le t.bytes off (v land 0xFFFF);
      Bytes.set_uint16_le t.bytes (off + 2) (v lsr 16)

(* The cell value replicated across a 64-bit word, as the raw bytes the
   word-parallel fill stores. *)
let pattern64 t v =
  let p =
    match t.width with
    | W8 -> v lor (v lsl 8) lor (v lsl 16) lor (v lsl 24)
    | W16 -> v lor (v lsl 16)
    | W32 -> v
  in
  (* [p] fills 32 bits; widen to 64 without boxing concerns (one-off). *)
  Int64.logor
    (Int64.of_int (p land 0xFFFFFFFF))
    (Int64.shift_left (Int64.of_int (p land 0xFFFFFFFF)) 32)

let fill t v =
  check_value t v "fill";
  let lo = v land 0xFF in
  let bytes_equal =
    match t.width with
    | W8 -> true
    | W16 -> (v lsr 8) land 0xFF = lo
    | W32 ->
        (v lsr 8) land 0xFF = lo
        && (v lsr 16) land 0xFF = lo
        && (v lsr 24) land 0xFF = lo
  in
  if bytes_equal then Bytes.fill t.bytes 0 (Bytes.length t.bytes) (Char.chr lo)
  else begin
    let p = pattern64 t v in
    for w = 0 to (Bytes.length t.bytes lsr 3) - 1 do
      Bytes.set_int64_le t.bytes (w lsl 3) p
    done
  end

let reset t = Bytes.fill t.bytes 0 (Bytes.length t.bytes) '\000'
