type violation = { check : string; round : int; detail : string }

type t = {
  limit : int;
  mutable recorded : violation list;  (* newest first, capped at [limit] *)
  mutable total : int;
  mutable checked : int;
}

let create ?(limit = 32) () =
  if limit < 1 then invalid_arg "Invariant.create: limit must be >= 1";
  { limit; recorded = []; total = 0; checked = 0 }

let record m ~check ~round ~detail =
  m.total <- m.total + 1;
  if List.length m.recorded < m.limit then
    m.recorded <- { check; round; detail } :: m.recorded

let tick m = m.checked <- m.checked + 1
let ok m = m.total = 0
let count m = m.total
let rounds_checked m = m.checked
let violations m = List.rev m.recorded

let pp_violation ppf v =
  Format.fprintf ppf "%s (round %d): %s" v.check v.round v.detail

let to_string v = Format.asprintf "%a" pp_violation v
