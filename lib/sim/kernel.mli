(** The shared round kernel behind {!Engine}, {!Multi} and {!Async}.

    The paper's single-message broadcast, its multi-message extension
    (rumors sharing blindly opened channels) and the asynchronous
    Poisson-clock relaxation all execute the same [open; transmit;
    receive; close] schedule. This module is that schedule, implemented
    once: channel selection via {!Selector}, fault gating via
    {!Fault.begin_round} (stateful runtime) or {!Fault.delivery_ok}
    (stateless sampling), bitset-backed informed state with an
    incrementally maintained census, cached-witness quiescence, clock
    skew and push/pull/channel accounting. The drivers are thin
    instantiations: {!Engine.run} is one table under a {!Full} fault
    runtime, {!Multi.run} is one table per message under {!Stateless}
    sampling, {!Async.run} is {!run_async}.

    {2 The driver signature}

    A synchronous driver chooses:
    - the {e fault mode} ({!fault_mode}) — how the plan is sampled;
    - the {e tables} — one {!table} per rumor, each with its own
      creation time, per-node protocol state, decision cache and
      transmission accounting, all sharing the round's channel set;
    - the {e hooks} — gate, churn ([on_round_end] / [reset]), recovery
      amnesia, skew, tracing.

    The asynchronous driver ({!run_async}) replaces lockstep rounds
    with Poisson activations; it shares the selection, fault-sampling,
    delivery and quiescence machinery but advances time per activation
    and applies deliveries immediately (decisions are {e not} cached —
    feedback can change a node's mind within a logical round).

    {2 Packed per-node state}

    A protocol that declares {!Protocol.packed} ops stores its per-node
    state as int codes in a flat {!Cells.t} (1–4 bytes per node)
    instead of an ['st array] of boxed records, and its end-of-round
    receipt/feedback staging lives in bitsets instead of capacity-sized
    id queues — together with the {!Cells}-backed decision stamps and
    duplicate tallies this takes a table from ~9 machine words per node
    to a few bytes per node, which is what lets the paper's Algorithms
    1/2 run at n = 10^8. The packed path applies staged receipts and
    feedback in ascending node id order (a word-parallel bitset scan)
    rather than in delivery order; packed ops are rng-pure by contract
    (see {!Protocol.packed_ops}), so results are bit-identical to the
    boxed path — a property the differential suite checks. Pass
    [~packed:false] to force the boxed representation (differential
    testing, debugging). Duplicate tallies are 16-bit: more than 65535
    redundant deliveries to one node in one round raises
    [Invalid_argument] (explicit failure, never a silent wrap), and
    likewise a run whose horizon exceeds [2^32 - 1] rounds.

    {2 Randomness-order contract}

    Simulation results are pinned by golden tests, so the kernel draws
    from [rng] in a fixed, documented order. Synchronous rounds draw:
    fault-runtime tick ({!Full} only: burst chains, recoveries, crashes,
    strike when the schedule fires, partition side assignments when the
    window opens) — then per live initiator in id order: neighbour
    selection, then per opened channel: channel establishment, then per
    table: push-delivery loss for deciders, pull-delivery loss for
    answering partners. A call blocked by an open partition window is
    skipped {e before} the channel-establishment draw, exactly like a
    call to a dead node. Hooks, census maintenance, tracing and the
    invariant monitor draw nothing; a plan mode that is off draws
    nothing; a {!Stateless} plan samples exactly like a burst-free
    {!Full} runtime. Asynchronous runs draw: inter-activation
    exponential, activated node id, then selection and fault sampling
    as above.

    {2 Census invariant}

    Without [on_round_end] the kernel assumes [topology.alive] is
    stable and maintains the live count and each table's informed count
    incrementally from the only events that move them — source
    injection, receipt, crash, recovery, reset. With [on_round_end]
    installed (churn may mutate liveness arbitrarily) it falls back to
    a full per-round census. Both paths draw no randomness and yield
    identical results; the incremental path also serves the final
    counts without an O(capacity) rescan. Passing [?monitor] makes this
    contract (and the accounting ones) executable: the kernel recounts
    everything from the bitsets at each round boundary and records any
    disagreement — see {!Invariant}.

    {2 Stopping rule}

    A run stops at the shared horizon
    [max over tables (created + protocol.horizon) + max skew], or
    earlier at the end of a round in which every table is quiescent (a
    table is quiescent when its creation round has passed and every
    informed live node's protocol is quiescent at its next logical
    round; an informed {e crashed} node that may still recover keeps
    the system non-quiescent), or — when [stop_when_complete] is set —
    at the end of the first round in which every table has completed
    (every live node informed). The latter is the {e oracle-stopped}
    accounting used when measuring baseline message complexity: real
    nodes cannot detect global completion, so oracle-stopped
    transmission counts are lower bounds for protocols without a
    termination rule. *)

type fault_mode =
  | Full of Fault.t
      (** Drive the whole plan through a fresh {!Fault.runtime}:
          Gilbert–Elliott bursts, crash/recovery and strikes apply, and
          the runtime is ticked at the start of every round. *)
  | Stateless of Fault.t
      (** Sample only the independent components
          ({!Fault.channel_ok} / {!Fault.delivery_ok}): call failure,
          link loss, asymmetric push/pull loss. Burst and crash modes
          are ignored. Draws are identical to a burst-free [Full]
          runtime of the same plan. *)

type table = {
  sources : int list;  (** nodes that know this rumor at [created] *)
  created : int;
      (** round at whose end the rumor appears; [0] = present from the
          start, [c > 0] injects at the start of round [c + 1] *)
}
(** One rumor's specification. Tables share every round's channel set;
    each runs the protocol at its own logical round
    [round - created - skew v]. *)

type table_result = {
  completion_round : int option;
      (** first round at whose end every live node knew this rumor *)
  informed : int;  (** informed live nodes at the end of the run *)
  push_tx : int;  (** push transmissions of this rumor *)
  pull_tx : int;  (** pull transmissions of this rumor *)
  knows : Bitset.t;
      (** final informed flag per node id (length = capacity) *)
}

type result = {
  rounds : int;  (** rounds executed *)
  population : int;  (** live (and not crashed) nodes at the end *)
  channels : int;  (** channels opened — shared by all tables *)
  down : int list;
      (** ids crashed and not recovered when the run stopped (ascending);
          [[]] without node faults *)
  trace : Trace.t option;
      (** per-round rows when requested; [informed] / [newly] sum over
          tables *)
  tables : table_result array;  (** indexed like the input *)
}

type gate = informed:bool -> node:int -> round:int -> bool
(** Consulted once per live node per round before the node opens its
    channels; [false] means the node initiates nothing (it still
    answers). With several tables, [informed] means informed in {e all}
    of them. *)

val run :
  ?fault:fault_mode ->
  ?collect_trace:bool ->
  ?stop_when_complete:bool ->
  ?gate:gate ->
  ?forget_on_recover:bool ->
  ?reset:(unit -> int list) ->
  ?on_round_end:(int -> unit) ->
  ?skew:(int -> int) ->
  ?monitor:Invariant.t ->
  ?packed:bool ->
  rng:Rumor_rng.Rng.t ->
  topology:Topology.t ->
  protocol:'st Protocol.t ->
  tables:table array ->
  unit ->
  result
(** Run the synchronous round loop to the stopping rule above.
    [packed] (default [true]) selects the compact {!Cells}-backed state
    representation when the protocol declares packed ops; it has no
    effect otherwise, and results are bit-identical either way.

    [fault] defaults to [Stateless Fault.none] (both modes of an empty
    plan draw nothing and behave identically). [gate], [skew],
    [forget_on_recover], [reset] and [on_round_end] behave as
    documented on {!Engine.run}; they apply uniformly to every table.
    [reset] ids and recovery amnesia clear {e every} table's flag for
    the node (a wiped node lost all rumors). [monitor] installs the
    runtime invariant monitor ({!Invariant}): every check is recomputed
    from scratch at each round boundary and compared against the
    kernel's incremental answers; it draws nothing and never changes
    the run.

    Sources must be alive and in range — drivers validate and report
    their own error messages; the kernel itself checks only that
    [tables] is non-empty. Empty source lists are allowed (the table
    just starts with nobody informed).
    @raise Invalid_argument if [tables] is empty. *)

(** {1 Repair epochs}

    The self-healing loop of {!Engine.run_epochs}, generalised to any
    table set. *)

type epoch_stat = {
  epoch : int;  (** 1-based repair epoch index *)
  epoch_rounds : int;  (** rounds the epoch executed *)
  epoch_informed : int;
      (** live nodes informed of {e every} table at the epoch's end *)
  epoch_population : int;  (** live nodes at the epoch's end *)
  repair_push_tx : int;  (** push transmissions spent by the epoch *)
  repair_pull_tx : int;  (** pull transmissions spent by the epoch *)
  repair_channels : int;  (** channels the epoch opened *)
}
(** Accounting for one self-healing repair epoch. *)

type 'st epoch_plan = {
  epoch_protocol : 'st Protocol.t;
      (** protocol for one repair epoch (its [horizon] bounds the
          epoch's length) *)
  epoch_gate : gate;
      (** per-round gate for the epoch: silences informed nodes and
          schedules uninformed pulls (timeout + backoff) *)
}
(** One repair epoch's behaviour, built fresh per epoch by the strategy
    callback of {!run_epochs}. *)

val run_epochs :
  ?fault:Fault.t ->
  ?collect_trace:bool ->
  ?forget_on_recover:bool ->
  ?reset:(unit -> int list) ->
  ?on_round_end:(int -> unit) ->
  ?skew:(int -> int) ->
  ?max_epochs:int ->
  ?monitor:Invariant.t ->
  ?packed:bool ->
  rng:Rumor_rng.Rng.t ->
  topology:Topology.t ->
  protocol:'st Protocol.t ->
  repair:(epoch:int -> knows:Bitset.t array -> 'r epoch_plan) ->
  tables:table array ->
  unit ->
  result * epoch_stat list
(** Run the main schedule once (under [Full fault]), then — while some
    table has a live knower and a live non-knower, and at most
    [max_epochs] (default 8) times — ask [repair ~epoch ~knows] (one
    [knows] bitset per table) for a fresh {!epoch_plan} and re-run the
    kernel with every current knower of each table as that table's
    sources and the plan's gate installed. Epochs keep the plan's
    communication modes but drop [crash_rate] / [strike]; see
    {!Engine.run_epochs} for the rationale, churn note and accounting.
    The returned result aggregates rounds / transmissions / channels
    across the main run and all epochs; [completion_round] per table is
    the {e main} run's.
    @raise Invalid_argument if [max_epochs < 0] or [tables] is empty. *)

(** {1 Asynchronous driver} *)

type async_result = {
  activations : int;  (** node activations executed *)
  time : float;  (** continuous time at the end of the run *)
  completion_time : float option;
      (** time at which the last node became informed *)
  informed : int;
  transmissions : int;  (** deliveries, counted as in {!Engine} *)
  trace : Trace.t option;
      (** one row per elapsed unit of continuous time (= logical round)
          when requested, final partial unit included *)
}

val run_async :
  ?fault:Fault.t ->
  ?stop_when_complete:bool ->
  ?collect_trace:bool ->
  ?on_round_end:(int -> unit) ->
  ?reset:(unit -> int list) ->
  ?monitor:Invariant.t ->
  ?packed:bool ->
  rng:Rumor_rng.Rng.t ->
  graph:Rumor_graph.Graph.t ->
  protocol:'st Protocol.t ->
  sources:int list ->
  unit ->
  async_result
(** Poisson-clock execution: activations arrive at global rate [n],
    each activating a uniform node that opens its channels and
    transmits as in a synchronous round at logical round
    [floor time + 1]; deliveries apply immediately. The run stops once
    every informed node is quiescent (checked every [4n] activations),
    at continuous time [protocol.horizon], or — with
    [stop_when_complete] — as soon as everyone is informed (the
    oracle-stopped accounting; see the stopping rule above). [fault] is
    sampled statelessly as in {!Stateless}. [on_round_end] and [reset]
    fire at each integer time-unit boundary the run crosses (the
    asynchronous analogue of a round end); ids returned by [reset]
    restart uninformed. [monitor] checks the census and monotonicity
    invariants at those same boundaries. Without hooks, tracing or a
    monitor the activation loop is unchanged and draws identically to
    previous releases. Sources are not validated here — drivers do
    that. *)
