(** Composable fault injection.

    The paper claims the algorithm "efficiently handles limited
    communication failures"; this module is the adversary that tests
    the claim. A {e fault plan} ({!t}) layers several failure modes:

    - a {e call failure} drops the whole channel for the round (neither
      direction can be used), as if the connection attempt timed out;
    - {e link loss} drops each individual message transmission,
      independently;
    - {e per-direction loss} ([push_loss] / [pull_loss]) drops push or
      pull transmissions asymmetrically, on top of [link_loss];
    - a {e burst} puts each node's uplink through a Gilbert–Elliott
      two-state channel: in the bad state every transmission the node
      sends is lost, and bad states persist for [burst_len] rounds in
      expectation — correlated loss that i.i.d. coin flips cannot model;
    - {e crash-stop / crash-recovery}: nodes crash at rate [crash_rate]
      per round (recovering at [recover_rate] if nonzero, with their
      state intact), and an adversarial {!strike} can kill up to
      [count] chosen nodes at a chosen round — either once, or
      {e recurring} every [every] rounds, re-targeting each time it
      fires (a [Frontier] strike re-reads the informed set at every
      firing, so a recurring frontier strike is an adaptive adversary
      chasing the rumor);
    - a {e partition window} splits the node set in two at round
      [split_at] and heals it at round [heal_at]: while the window is
      open, no channel crosses the cut, modelling a transient network
      split without mutating the overlay itself.

    The stateless sampling helpers ({!channel_ok}, {!delivery_ok}) see
    only the independent components and serve the simpler runners
    ([Async], [Multi]); {!Engine.run} drives the full plan through a
    {!runtime}. A plan with no faults injects nothing and draws no
    randomness, so [Fault.none] leaves engine results bit-identical to
    a run without faults. *)

type burst = {
  loss : float;  (** long-run (stationary) fraction of transmissions lost *)
  burst_len : float;  (** mean bad-state duration in rounds, >= 1 *)
}

type adversary =
  | Random_nodes  (** crash uniformly random live nodes *)
  | Highest_degree  (** crash the best-connected nodes (deterministic) *)
  | Frontier  (** crash currently informed nodes — snipe the rumor *)

type strike = {
  at_round : int;  (** round at whose start the strike first lands, >= 1 *)
  count : int;  (** up to this many nodes are crashed per firing *)
  every : int;
      (** 0 = one-shot; [k > 0] re-fires the strike at [at_round],
          [at_round + k], [at_round + 2k], ... with targets re-chosen at
          each firing *)
  adversary : adversary;
}

type partition = {
  split_at : int;  (** round at whose start the network splits, >= 1 *)
  heal_at : int;  (** round at whose start the cut heals, > [split_at] *)
  cut_fraction : float;
      (** each node lands on the minority side with this probability *)
}

type t = {
  call_failure : float;  (** probability a channel fails to establish *)
  link_loss : float;  (** probability a single transmission is lost *)
  push_loss : float;  (** extra per-push loss (asymmetric links) *)
  pull_loss : float;  (** extra per-pull loss (asymmetric links) *)
  burst : burst option;  (** Gilbert–Elliott bursty loss, if any *)
  crash_rate : float;  (** per-node per-round crash probability *)
  recover_rate : float;  (** per-crashed-node per-round recovery probability *)
  strike : strike option;  (** adversarial kill schedule, if any *)
  partition : partition option;  (** transient network split, if any *)
}

val none : t
(** Fault-free communication. *)

val make : ?call_failure:float -> ?link_loss:float -> unit -> t
(** [make ()] builds an independent-failures-only plan; probabilities
    default to 0. Kept as the compatible constructor for the original
    two-parameter fault model.
    @raise Invalid_argument if a probability is outside [\[0, 1\]]. *)

val burst : loss:float -> burst_len:float -> burst
(** Validated Gilbert–Elliott parameters. The chain's stationary
    bad-state probability equals [loss].
    @raise Invalid_argument if [loss] is outside [\[0, 1)], [burst_len
    < 1], or [loss > burst_len / (burst_len + 1)] (no transition
    probability can realise that combination). *)

val strike :
  ?adversary:adversary ->
  ?every:int ->
  at_round:int ->
  count:int ->
  unit ->
  strike
(** Validated kill schedule ([adversary] defaults to {!Random_nodes},
    [every] to 0 = one-shot).
    @raise Invalid_argument if [at_round < 1], [count < 0] or
    [every < 0]. *)

val strike_fires : strike -> round:int -> bool
(** Whether the schedule lands at the start of [round]: true at
    [at_round] and, when [every > 0], every [every] rounds thereafter. *)

val partition :
  ?fraction:float -> split_at:int -> heal_at:int -> unit -> partition
(** Validated partition window ([fraction] defaults to 0.5: an even
    split in expectation). Sides are sampled per node when the window
    opens, so the cut is a random bisection, not a topological cut.
    @raise Invalid_argument if [split_at < 1], [heal_at <= split_at] or
    [fraction] is outside [\[0, 1\]]. *)

val plan :
  ?call_failure:float ->
  ?link_loss:float ->
  ?push_loss:float ->
  ?pull_loss:float ->
  ?burst:burst ->
  ?crash_rate:float ->
  ?recover_rate:float ->
  ?strike:strike ->
  ?partition:partition ->
  unit ->
  t
(** [plan ()] builds a full fault plan; every mode defaults to off.
    @raise Invalid_argument if a probability is outside [\[0, 1\]]. *)

val channel_ok : t -> Rumor_rng.Rng.t -> bool
(** Sample whether a channel establishes (independent component only). *)

val delivery_ok : ?dir:[ `Push | `Pull ] -> t -> Rumor_rng.Rng.t -> bool
(** Sample whether one transmission survives. Always applies the
    symmetric [link_loss]; when [dir] is given, the matching
    per-direction loss ([push_loss] or [pull_loss]) is layered on top,
    so the [Async] and [Multi] runners honour asymmetric plans. A zero
    probability draws nothing. This stateless view still omits the
    {e stateful} modes — Gilbert–Elliott bursts and crash/recovery live
    in the {!runtime} and are only exercised by {!Engine.run}; plans
    using them under the simpler runners degrade to the independent
    components. *)

(** {1 Engine runtime}

    The engine instantiates one {!runtime} per run and ticks it at the
    start of every round; the runtime owns the Gilbert–Elliott chain
    states and the crashed-node set. *)

type runtime

val start : t -> capacity:int -> runtime
(** Fresh runtime for a topology with ids [0 .. capacity-1].
    @raise Invalid_argument if [capacity < 0]. *)

val begin_round :
  ?on_recover:(int -> unit) ->
  ?on_crash:(int -> unit) ->
  runtime ->
  rng:Rumor_rng.Rng.t ->
  round:int ->
  degree:(int -> int) ->
  alive:(int -> bool) ->
  informed:(int -> bool) ->
  unit
(** Advance one round: step every node's burst chain, recover and crash
    nodes at the plan's rates, land the adversarial strike when the
    schedule fires ({!strike_fires}), and open/close the partition
    window when [round] reaches [split_at]/[heal_at] (opening the
    window draws exactly [capacity] Bernoulli side assignments — dead
    nodes included — so the draw count never depends on run state).
    Draws nothing for modes the plan leaves off.
    [on_recover] fires once per node the moment it comes back up — the
    engine uses it to model recovery amnesia (the recovered node
    re-enters the uninformed census instead of keeping stale state).
    [on_crash] fires once per node the moment it goes down (rate crashes
    and strikes alike) — the engine maintains its live/informed census
    counters incrementally from these events instead of rescanning the
    population every round. Neither callback draws randomness, so
    installing them cannot perturb the fault stream. *)

val active : runtime -> int -> bool
(** [active rt v] — node [v] has not crashed (or has recovered). *)

val bursting : runtime -> int -> bool
(** [bursting rt v] — node [v]'s uplink is currently in the bad state. *)

val may_recover : runtime -> bool
(** Whether crashed nodes can come back (plan has [recover_rate] > 0). *)

val has_node_faults : t -> bool
(** Whether the plan can crash nodes ([crash_rate] > 0 or a strike). *)

val same_side : runtime -> int -> int -> bool
(** [same_side rt u v] — [u] and [v] can currently communicate across
    the partition: true whenever no window is open. Constant time. *)

val partition_active : runtime -> bool
(** Whether a partition window is currently open. *)

val down_count : runtime -> int
(** Number of currently crashed nodes. *)

val open_ok : runtime -> Rumor_rng.Rng.t -> bool
(** Sample whether a channel establishes. *)

val push_ok : runtime -> Rumor_rng.Rng.t -> sender:int -> bool
(** Sample whether a push transmission from [sender] survives
    [link_loss], [push_loss] and [sender]'s burst state. *)

val pull_ok : runtime -> Rumor_rng.Rng.t -> sender:int -> bool
(** Sample whether a pull transmission from [sender] survives
    [link_loss], [pull_loss] and [sender]'s burst state. *)
