module Rng = Rumor_rng.Rng
module Dist = Rumor_rng.Dist
module Graph = Rumor_graph.Graph

type fault_mode = Full of Fault.t | Stateless of Fault.t

type table = { sources : int list; created : int }

type table_result = {
  completion_round : int option;
  informed : int;
  push_tx : int;
  pull_tx : int;
  knows : Bitset.t;
}

type result = {
  rounds : int;
  population : int;
  channels : int;
  down : int list;
  trace : Trace.t option;
  tables : table_result array;
}

type gate = informed:bool -> node:int -> round:int -> bool

(* Per-node protocol state behind an index-addressed store, so the
   round loop is identical whether the state lives in an ['st array] of
   boxed records (the general path) or in a flat [Cells.t] of int codes
   (the packed path — a few bytes per node, which is what admits
   n = 10^8). Closure dispatch costs one indirect call per operation,
   the same price the boxed path already paid calling the protocol's
   own closures. *)
type store = {
  s_init : int -> informed:bool -> unit;
  s_decide : int -> round:int -> Protocol.decision;
  s_receive : int -> round:int -> unit;
  s_feedback : int -> round:int -> unit;
  s_quiescent : int -> round:int -> bool;
}

let boxed_store (protocol : _ Protocol.t) cap =
  let state = Array.init cap (fun _ -> protocol.Protocol.init ~informed:false) in
  {
    s_init = (fun v ~informed -> state.(v) <- protocol.Protocol.init ~informed);
    s_decide = (fun v ~round -> protocol.Protocol.decide state.(v) ~round);
    s_receive =
      (fun v ~round -> state.(v) <- protocol.Protocol.receive state.(v) ~round);
    s_feedback =
      (fun v ~round -> state.(v) <- protocol.Protocol.feedback state.(v) ~round);
    s_quiescent =
      (fun v ~round -> protocol.Protocol.quiescent state.(v) ~round);
  }

let packed_store (p : Protocol.packed_ops) cap =
  let cells = Cells.create (Cells.width_of_bits p.Protocol.bits) cap in
  let uninformed = p.Protocol.p_init ~informed:false in
  if uninformed <> 0 then Cells.fill cells uninformed;
  {
    s_init = (fun v ~informed -> Cells.set cells v (p.Protocol.p_init ~informed));
    s_decide = (fun v ~round -> p.Protocol.p_decide (Cells.get cells v) ~round);
    s_receive =
      (fun v ~round ->
        Cells.set cells v (p.Protocol.p_receive (Cells.get cells v) ~round));
    s_feedback =
      (fun v ~round ->
        Cells.set cells v (p.Protocol.p_feedback (Cells.get cells v) ~round));
    s_quiescent =
      (fun v ~round -> p.Protocol.p_quiescent (Cells.get cells v) ~round);
  }

let store_of ~packed (protocol : _ Protocol.t) cap =
  match (if packed then protocol.Protocol.packed else None) with
  | Some pk -> packed_store pk.Protocol.ops cap
  | None -> boxed_store protocol cap

(* Per-rumor state. Every table owns its informed set, protocol state,
   decision cache, end-of-round receipt/feedback queues and accounting;
   the round's channel set is shared by all of them.

   Two staging representations coexist:

   - [ordered] (boxed protocols): pending receipts and feedback targets
     are queued in capacity-sized id arrays and applied in delivery
     order — protocols whose [receive]/[feedback] draw randomness
     (Demers coin variants) observe that order, so it is part of the
     pinned randomness contract.
   - packed protocols are rng-pure by contract, so delivery order is
     unobservable; the ids live only in the [pending]/[dup_mark]
     bitsets and are applied by an ascending word-parallel scan. No
     capacity-sized word array is allocated per rumor. *)
type tstate = {
  created : int;
  srcs : int list;
  informed : Bitset.t;
  store : store;
  ordered : bool;
  dec_push : Bitset.t;
  dec_pull : Bitset.t;
  stamp : Cells.t;
  pending : Bitset.t;
  pending_ids : int array;
  mutable pending_len : int;
  dups : Cells.t;
  dup_mark : Bitset.t;
  dup_ids : int array;
  mutable dup_len : int;
  mutable know : int;
  mutable down_informed : int;
  mutable witness : int;
  mutable push_tx : int;
  mutable pull_tx : int;
  mutable completion : int option;
  mutable injected : bool;
}

let run ?(fault = Stateless Fault.none) ?(collect_trace = false)
    ?(stop_when_complete = false) ?gate ?(forget_on_recover = false) ?reset
    ?on_round_end ?skew ?monitor ?(packed = true) ~rng ~topology ~protocol
    ~tables () =
  let open Topology in
  let open Protocol in
  let cap = topology.capacity in
  let nt = Array.length tables in
  if nt = 0 then invalid_arg "Kernel.run: no tables";
  let skew_f = match skew with Some f -> f | None -> fun _ -> 0 in
  let max_skew =
    match skew with
    | None -> 0
    | Some f ->
        let worst = ref 0 in
        for v = 0 to cap - 1 do
          if f v > !worst then worst := f v
        done;
        !worst
  in
  let splan = match fault with Full p | Stateless p -> p in
  let frt =
    match fault with
    | Full p -> Some (Fault.start p ~capacity:cap)
    | Stateless _ -> None
  in
  let active =
    match frt with
    | Some rt -> fun v -> Fault.active rt v
    | None -> fun _ -> true
  in
  let may_recover =
    match frt with Some rt -> Fault.may_recover rt | None -> false
  in
  (* Partition windows only exist under a [Full] runtime; the check is
     two loads and a branch, and a plan without a partition never opens
     the window, so the predicate is constant-true there. *)
  let connected =
    match frt with
    | Some rt -> fun u w -> Fault.same_side rt u w
    | None -> fun _ _ -> true
  in
  (* A [Stateless] plan samples exactly like a burst-free runtime: the
     burst check draws nothing and the loss draws coincide. *)
  let push_ok =
    match frt with
    | Some rt -> fun u -> Fault.push_ok rt rng ~sender:u
    | None -> fun _ -> Fault.delivery_ok ~dir:`Push splan rng
  in
  let pull_ok =
    match frt with
    | Some rt -> fun w -> Fault.pull_ok rt rng ~sender:w
    | None -> fun _ -> Fault.delivery_ok ~dir:`Pull splan rng
  in
  let selector = Selector.make protocol.selector ~capacity:cap in
  let scratch = Array.make (max (Selector.fanout protocol.selector) 1) 0 in
  (* Census strategy: see the invariant in kernel.mli. *)
  let census_incremental = on_round_end = None in
  let live = ref 0 in
  if census_incremental then live := Topology.alive_count topology;
  let horizon =
    let h = ref 0 in
    Array.iter
      (fun (t : table) ->
        if t.created + protocol.horizon > !h then
          h := t.created + protocol.horizon)
      tables;
    !h + max_skew
  in
  (* Receipt stamps hold round numbers in [1, horizon]: one byte for
     the paper's O(log n) schedules, two up to 65535 rounds. *)
  let stamp_width = Cells.width_for (max 1 horizon) in
  let packed_on = packed && Option.is_some protocol.packed in
  let mk_table (spec : table) =
    {
      created = spec.created;
      srcs = spec.sources;
      informed = Bitset.create cap;
      store = store_of ~packed protocol cap;
      ordered = not packed_on;
      dec_push = Bitset.create cap;
      dec_pull = Bitset.create cap;
      stamp = Cells.create stamp_width cap;
      pending = Bitset.create cap;
      pending_ids = (if packed_on then [||] else Array.make cap 0);
      pending_len = 0;
      dups = Cells.create Cells.W16 cap;
      dup_mark = Bitset.create (if packed_on then cap else 0);
      dup_ids = (if packed_on then [||] else Array.make cap 0);
      dup_len = 0;
      know = 0;
      down_informed = 0;
      witness = 0;
      push_tx = 0;
      pull_tx = 0;
      completion = None;
      injected = false;
    }
  in
  let tbs = Array.map mk_table tables in
  let inject tb =
    List.iter
      (fun s ->
        if not (Bitset.get tb.informed s) then begin
          Bitset.set tb.informed s;
          tb.store.s_init s ~informed:true;
          if census_incremental && topology.alive s && active s then
            tb.know <- tb.know + 1
        end)
      tb.srcs;
    tb.injected <- true
  in
  Array.iter (fun tb -> if tb.created = 0 then inject tb) tbs;
  let mark tb v =
    if not (Bitset.get tb.pending v) then begin
      Bitset.set tb.pending v;
      if tb.ordered then tb.pending_ids.(tb.pending_len) <- v;
      tb.pending_len <- tb.pending_len + 1
    end
  in
  let record_dup tb v =
    let c = Cells.get tb.dups v in
    if c = 0 then begin
      if tb.ordered then tb.dup_ids.(tb.dup_len) <- v
      else Bitset.set tb.dup_mark v;
      tb.dup_len <- tb.dup_len + 1
    end;
    Cells.set tb.dups v (c + 1)
  in
  let informed_any v =
    let rec go j = j < nt && (Bitset.get tbs.(j).informed v || go (j + 1)) in
    go 0
  in
  let informed_all v =
    let rec go j = j >= nt || (Bitset.get tbs.(j).informed v && go (j + 1)) in
    go 0
  in
  let on_crash =
    if census_incremental then
      Some
        (fun v ->
          decr live;
          for j = 0 to nt - 1 do
            let tb = tbs.(j) in
            if Bitset.get tb.informed v then begin
              tb.know <- tb.know - 1;
              tb.down_informed <- tb.down_informed + 1
            end
          done)
    else None
  in
  let on_recover =
    (* Recovery amnesia: the node lost its volatile state while it was
       down — every rumor at once — and re-enters the uninformed
       census. Nodes only crash while alive and active, so a recovering
       node is alive here. *)
    if forget_on_recover then
      Some
        (fun v ->
          if census_incremental then incr live;
          for j = 0 to nt - 1 do
            let tb = tbs.(j) in
            if census_incremental && Bitset.get tb.informed v then
              tb.down_informed <- tb.down_informed - 1;
            Bitset.clear tb.informed v;
            tb.store.s_init v ~informed:false
          done)
    else if census_incremental then
      Some
        (fun v ->
          incr live;
          for j = 0 to nt - 1 do
            let tb = tbs.(j) in
            if Bitset.get tb.informed v then begin
              tb.know <- tb.know + 1;
              tb.down_informed <- tb.down_informed - 1
            end
          done)
    else None
  in
  (* Decision cache accessors, hoisted out of the round loop (the
     closures close over [cur_round] instead of the round variable). A
     table whose logical round has not started yet decides [silent]
     without consulting the protocol, so it also draws no delivery
     randomness. *)
  let cur_round = ref 0 in
  let decide_at tb v =
    let r = !cur_round in
    let logical = r - tb.created - skew_f v in
    let d =
      if logical < 1 then Protocol.silent
      else tb.store.s_decide v ~round:logical
    in
    Bitset.assign tb.dec_push v d.push;
    Bitset.assign tb.dec_pull v d.pull;
    Cells.set tb.stamp v r
  in
  let push_of tb v =
    if Cells.get tb.stamp v <> !cur_round then decide_at tb v;
    Bitset.get tb.dec_push v
  in
  let pull_of tb v =
    if Cells.get tb.stamp v <> !cur_round then decide_at tb v;
    Bitset.get tb.dec_pull v
  in
  (* Quiescence is a pure conjunction over informed live nodes, so the
     scan may exit at the first talkative node; remembering that node
     as a per-table witness makes the steady-state check O(1) — it
     stays talkative round after round until the protocol winds down,
     and only then does a full scan run (right before the loop
     stops). *)
  let quiet_at tb r v =
    let logical = r + 1 - tb.created - skew_f v in
    logical >= 1 && tb.store.s_quiescent v ~round:logical
  in
  let table_quiet_fast tb r =
    if tb.created >= r then false
    else begin
      let w = tb.witness in
      if
        w < cap && topology.alive w && active w
        && Bitset.get tb.informed w
        && not (quiet_at tb r w)
      then false
      else begin
        (* Word-level frontier walk: only informed nodes can be
           talkative, so scan the informed set (64 ids per load)
           instead of probing every id. Ascending order, so the witness
           found is the same node the per-id scan would pick. *)
        let v = ref (Bitset.next_set tb.informed 0) and quiet = ref true in
        while !quiet && !v >= 0 do
          let u = !v in
          if topology.alive u && active u && not (quiet_at tb r u) then begin
            quiet := false;
            tb.witness <- u
          end;
          v := Bitset.next_set tb.informed (u + 1)
        done;
        !quiet
      end
    end
  in
  let any_down_informed () =
    let rec go j = j < nt && (tbs.(j).down_informed > 0 || go (j + 1)) in
    go 0
  in
  let all_quiet_fast r =
    (* An informed crashed node may come back and resume its schedule;
       don't declare the system quiet without it. *)
    if may_recover && any_down_informed () then false
    else begin
      let quiet = ref true and j = ref 0 in
      while !quiet && !j < nt do
        if not (table_quiet_fast tbs.(!j) r) then quiet := false;
        incr j
      done;
      !quiet
    end
  in
  let full_census r =
    (* Census after churn: [alive] may have changed arbitrarily, so
       recount; completion means every live node knows. *)
    live := 0;
    for j = 0 to nt - 1 do
      tbs.(j).know <- 0
    done;
    let quiet = ref true in
    for j = 0 to nt - 1 do
      if tbs.(j).created >= r then quiet := false
    done;
    for v = 0 to cap - 1 do
      if topology.alive v then begin
        if active v then begin
          incr live;
          for j = 0 to nt - 1 do
            let tb = tbs.(j) in
            if Bitset.get tb.informed v then begin
              tb.know <- tb.know + 1;
              if not (quiet_at tb r v) then quiet := false
            end
          done
        end
        else if informed_any v && may_recover then quiet := false
      end
    done;
    !quiet
  in
  let trace = if collect_trace then Some (Trace.create ()) else None in
  let total_channels = ref 0 in
  (* Invariant-monitor state: last round's per-table informed counts
     (monotonicity) — allocated only when a monitor is installed, so
     monitor-off runs stay allocation-free. *)
  let prev_know =
    match monitor with
    | Some _ -> Array.map (fun tb -> tb.know) tbs
    | None -> [||]
  in
  let may_shrink =
    Fault.has_node_faults splan || forget_on_recover
    || Option.is_some reset
    || Option.is_some on_round_end
  in
  let round = ref 0 in
  let stop = ref false in
  while (not !stop) && !round < horizon do
    incr round;
    let r = !round in
    cur_round := r;
    (match frt with
    | Some rt ->
        Fault.begin_round ?on_recover ?on_crash rt ~rng ~round:r
          ~degree:topology.degree ~alive:topology.alive ~informed:informed_any
    | None -> ());
    (* Inject rumors created at the end of the previous round. *)
    for j = 0 to nt - 1 do
      let tb = tbs.(j) in
      if (not tb.injected) && tb.created = r - 1 then inject tb
    done;
    let push_now = ref 0 and pull_now = ref 0 and channels_now = ref 0 in
    for u = 0 to cap - 1 do
      if
        topology.alive u && active u
        && (match gate with
           | None -> true
           | Some g -> g ~informed:(informed_all u) ~node:u ~round:r)
      then begin
        let d = topology.degree u in
        if d > 0 then begin
          let k = Selector.select selector ~rng ~node:u ~degree:d ~out:scratch in
          for i = 0 to k - 1 do
            let w = topology.neighbor u scratch.(i) in
            (* [connected] is checked before the channel draw: a call
               blocked by a partition consumes no randomness, exactly
               like a call to a dead node. *)
            if
              topology.alive w && active w && connected u w
              && Fault.channel_ok splan rng
            then begin
              incr channels_now;
              for j = 0 to nt - 1 do
                let tb = tbs.(j) in
                if Bitset.get tb.informed u && push_of tb u && push_ok u
                then begin
                  incr push_now;
                  tb.push_tx <- tb.push_tx + 1;
                  if Bitset.get tb.informed w || Bitset.get tb.pending w then
                    record_dup tb u
                  else mark tb w
                end;
                if Bitset.get tb.informed w && pull_of tb w && pull_ok w
                then begin
                  incr pull_now;
                  tb.pull_tx <- tb.pull_tx + 1;
                  if Bitset.get tb.informed u || Bitset.get tb.pending u then
                    record_dup tb w
                  else mark tb u
                end
              done
            end
          done
        end
      end
    done;
    (* Newly-informed sets were deferred so a node never forwards a
       rumor in the round it first receives it; apply them now. The
       ordered path replays delivery order from the id queue; the
       packed path scans the pending bitset in ascending id order
       (packed ops are rng-pure, so the order is unobservable). *)
    let newly_total = ref 0 in
    for j = 0 to nt - 1 do
      let tb = tbs.(j) in
      let newly = tb.pending_len in
      if tb.ordered then
        for i = 0 to newly - 1 do
          let v = tb.pending_ids.(i) in
          Bitset.clear tb.pending v;
          Bitset.set tb.informed v;
          tb.store.s_receive v ~round:(max 0 (r - tb.created - skew_f v))
        done
      else if newly > 0 then begin
        Bitset.iter_set tb.pending (fun v ->
            Bitset.set tb.informed v;
            tb.store.s_receive v ~round:(max 0 (r - tb.created - skew_f v)));
        Bitset.reset tb.pending
      end;
      tb.pending_len <- 0;
      (* Every marked node was alive and active when marked (both are
         checked before a channel carries anything, and crashes land
         only at round start), so the incremental count moves by
         [newly]. *)
      if census_incremental then tb.know <- tb.know + newly;
      newly_total := !newly_total + newly
    done;
    for j = 0 to nt - 1 do
      let tb = tbs.(j) in
      if tb.ordered then begin
        for i = 0 to tb.dup_len - 1 do
          let v = tb.dup_ids.(i) in
          let logical = max 0 (r - tb.created - skew_f v) in
          for _ = 1 to Cells.get tb.dups v do
            tb.store.s_feedback v ~round:logical
          done;
          Cells.set tb.dups v 0
        done
      end
      else if tb.dup_len > 0 then begin
        Bitset.iter_set tb.dup_mark (fun v ->
            let logical = max 0 (r - tb.created - skew_f v) in
            for _ = 1 to Cells.get tb.dups v do
              tb.store.s_feedback v ~round:logical
            done;
            Cells.set tb.dups v 0);
        Bitset.reset tb.dup_mark
      end;
      tb.dup_len <- 0
    done;
    total_channels := !total_channels + !channels_now;
    (match on_round_end with Some f -> f r | None -> ());
    (match reset with
    | Some f ->
        (* Ids handed back by the churn harness (fresh joins, id reuse)
           restart uninformed regardless of any stale flag. *)
        List.iter
          (fun v ->
            if v >= 0 && v < cap then
              for j = 0 to nt - 1 do
                let tb = tbs.(j) in
                if
                  census_incremental
                  && Bitset.get tb.informed v
                  && topology.alive v
                then
                  if active v then tb.know <- tb.know - 1
                  else tb.down_informed <- tb.down_informed - 1;
                Bitset.clear tb.informed v;
                tb.store.s_init v ~informed:false
              done)
          (f ())
    | None -> ());
    let all_quiet =
      if census_incremental then all_quiet_fast r else full_census r
    in
    (match trace with
    | Some t ->
        let know_total = ref 0 in
        for j = 0 to nt - 1 do
          know_total := !know_total + tbs.(j).know
        done;
        Trace.add t
          {
            Trace.round = r;
            informed = !know_total;
            newly = !newly_total;
            push_tx = !push_now;
            pull_tx = !pull_now;
            channels = !channels_now;
          }
    | None -> ());
    for j = 0 to nt - 1 do
      let tb = tbs.(j) in
      if tb.completion = None && !live > 0 && tb.know = !live then
        tb.completion <- Some r
    done;
    (* Runtime invariant monitor: re-derive every census quantity from
       the bitsets and compare with the kernel's own counters. Runs in
       both census modes (after [full_census] has refreshed them), so a
       kernel that wrongly keeps the incremental census under churn is
       caught here. Observation only: no randomness, no control flow. *)
    (match monitor with
    | None -> ()
    | Some m ->
        Invariant.tick m;
        let live' = ref 0 in
        for v = 0 to cap - 1 do
          if topology.alive v && active v then incr live'
        done;
        if !live' <> !live then
          Invariant.record m ~check:"census" ~round:r
            ~detail:(Printf.sprintf "live: recount %d, kernel %d" !live' !live);
        for j = 0 to nt - 1 do
          let tb = tbs.(j) in
          let know' = ref 0 and down_inf' = ref 0 in
          Bitset.iter_set tb.informed (fun v ->
              if topology.alive v then
                if active v then incr know' else incr down_inf');
          if !know' <> tb.know then
            Invariant.record m ~check:"census" ~round:r
              ~detail:
                (Printf.sprintf "table %d informed: recount %d, kernel %d" j
                   !know' tb.know);
          if census_incremental && !down_inf' <> tb.down_informed then
            Invariant.record m ~check:"census" ~round:r
              ~detail:
                (Printf.sprintf "table %d down-informed: recount %d, kernel %d"
                   j !down_inf' tb.down_informed);
          if tb.know > !live' then
            Invariant.record m ~check:"conserve" ~round:r
              ~detail:
                (Printf.sprintf "table %d informed %d exceeds live %d" j
                   tb.know !live');
          if (not may_shrink) && tb.know < prev_know.(j) then
            Invariant.record m ~check:"monotone" ~round:r
              ~detail:
                (Printf.sprintf "table %d informed fell %d -> %d" j
                   prev_know.(j) tb.know);
          prev_know.(j) <- tb.know;
          if tb.pending_len <> 0 || tb.dup_len <> 0 then
            Invariant.record m ~check:"drain" ~round:r
              ~detail:
                (Printf.sprintf
                   "table %d staging not drained (%d pending, %d dups)" j
                   tb.pending_len tb.dup_len)
        done;
        if !newly_total > !push_now + !pull_now then
          Invariant.record m ~check:"conserve" ~round:r
            ~detail:
              (Printf.sprintf "%d newly informed from %d surviving deliveries"
                 !newly_total (!push_now + !pull_now));
        if !push_now > !channels_now * nt || !pull_now > !channels_now * nt
        then
          Invariant.record m ~check:"conserve" ~round:r
            ~detail:
              (Printf.sprintf
                 "%d push + %d pull deliveries on %d channels x %d tables"
                 !push_now !pull_now !channels_now nt));
    if all_quiet then stop := true;
    if stop_when_complete then begin
      let all = ref true in
      for j = 0 to nt - 1 do
        if tbs.(j).completion = None then all := false
      done;
      if !all then stop := true
    end
  done;
  (* Final counts. The incremental census already holds them — the
     invariant the differential tests pin — so only the crashed-id list
     (node-fault runs) or the post-churn recount needs a scan. *)
  let down = ref [] in
  if census_incremental then begin
    match frt with
    | Some rt when Fault.down_count rt > 0 ->
        for v = cap - 1 downto 0 do
          if topology.alive v && not (Fault.active rt v) then down := v :: !down
        done
    | Some _ | None -> ()
  end
  else begin
    live := 0;
    for j = 0 to nt - 1 do
      tbs.(j).know <- 0
    done;
    for v = cap - 1 downto 0 do
      if topology.alive v then
        if active v then begin
          incr live;
          for j = 0 to nt - 1 do
            let tb = tbs.(j) in
            if Bitset.get tb.informed v then tb.know <- tb.know + 1
          done
        end
        else down := v :: !down
    done
  end;
  {
    rounds = !round;
    population = !live;
    channels = !total_channels;
    down = !down;
    trace;
    tables =
      Array.map
        (fun tb ->
          {
            completion_round = tb.completion;
            informed = tb.know;
            push_tx = tb.push_tx;
            pull_tx = tb.pull_tx;
            knows = tb.informed;
          })
        tbs;
  }

type epoch_stat = {
  epoch : int;
  epoch_rounds : int;
  epoch_informed : int;
  epoch_population : int;
  repair_push_tx : int;
  repair_pull_tx : int;
  repair_channels : int;
}

type 'st epoch_plan = {
  epoch_protocol : 'st Protocol.t;
  epoch_gate : gate;
}

let run_epochs ?(fault = Fault.none) ?(collect_trace = false)
    ?(forget_on_recover = false) ?reset ?on_round_end ?skew ?(max_epochs = 8)
    ?monitor ?packed ~rng ~topology ~protocol ~repair ~tables () =
  if max_epochs < 0 then invalid_arg "Kernel.run_epochs: max_epochs < 0";
  let main =
    run ~fault:(Full fault) ~collect_trace ~forget_on_recover ?reset
      ?on_round_end ?skew ?monitor ?packed ~rng ~topology ~protocol ~tables ()
  in
  let cap = topology.Topology.capacity in
  let nt = Array.length tables in
  let knows = Array.init nt (fun j -> Bitset.copy main.tables.(j).knows) in
  (* Nodes still down when a run stops would come back up under the next
     epoch's fresh fault runtime; with amnesia their knowledge is gone. *)
  let forget_down r =
    if forget_on_recover then
      List.iter
        (fun v ->
          for j = 0 to nt - 1 do
            Bitset.clear knows.(j) v
          done)
        r.down
  in
  forget_down main;
  let live_census () =
    let live = ref 0 and know = Array.make nt 0 in
    for v = 0 to cap - 1 do
      if topology.Topology.alive v then begin
        incr live;
        for j = 0 to nt - 1 do
          if Bitset.get knows.(j) v then know.(j) <- know.(j) + 1
        done
      end
    done;
    (!live, know)
  in
  let acc_push = Array.map (fun (t : table_result) -> t.push_tx) main.tables in
  let acc_pull = Array.map (fun (t : table_result) -> t.pull_tx) main.tables in
  let stats = ref [] in
  let rounds = ref main.rounds in
  let chans = ref main.channels in
  let down = ref main.down in
  let epoch = ref 0 in
  let continue = ref true in
  while !continue && !epoch < max_epochs do
    let live, know = live_census () in
    (* A table is repairable when it still has both a live knower to
       pull from and a live non-knower to reach; with none left —
       covered, extinct, or an empty network — the loop is done. *)
    let repairable = ref false in
    if live > 0 then
      for j = 0 to nt - 1 do
        if know.(j) > 0 && know.(j) < live then repairable := true
      done;
    if not !repairable then continue := false
    else begin
      incr epoch;
      let especs =
        Array.init nt (fun j ->
            let srcs = ref [] in
            for v = cap - 1 downto 0 do
              if topology.Topology.alive v && Bitset.get knows.(j) v then
                srcs := v :: !srcs
            done;
            { sources = !srcs; created = 0 })
      in
      let plan = repair ~epoch:!epoch ~knows in
      (* Epochs fight the channel, not the reaper: communication faults
         (loss, call failure, bursts) stay on, while the node-dynamics
         modes (crash_rate, strike) act on the main timeline only —
         otherwise perpetual mid-repair amnesia makes the total-coverage
         target unreachable by construction. *)
      let epoch_fault = { fault with Fault.crash_rate = 0.; strike = None } in
      let r =
        run ~fault:(Full epoch_fault) ~forget_on_recover
          ~stop_when_complete:true ~gate:plan.epoch_gate ?monitor ?packed ~rng
          ~topology ~protocol:plan.epoch_protocol ~tables:especs ()
      in
      (match monitor with
      | None -> ()
      | Some m ->
          if !epoch > max_epochs then
            Invariant.record m ~check:"budget" ~round:r.rounds
              ~detail:
                (Printf.sprintf "epoch %d exceeds max_epochs %d" !epoch
                   max_epochs);
          if r.rounds > plan.epoch_protocol.Protocol.horizon then
            Invariant.record m ~check:"budget" ~round:r.rounds
              ~detail:
                (Printf.sprintf "epoch %d ran %d rounds past horizon %d"
                   !epoch r.rounds plan.epoch_protocol.Protocol.horizon));
      (* The epoch restarted from every knower, so its final flags are
         the current truth (amnesia included): replace, don't merge. *)
      let epoch_push = ref 0 and epoch_pull = ref 0 in
      let epoch_informed = ref max_int in
      for j = 0 to nt - 1 do
        let t = r.tables.(j) in
        Bitset.blit ~src:t.knows ~dst:knows.(j);
        acc_push.(j) <- acc_push.(j) + t.push_tx;
        acc_pull.(j) <- acc_pull.(j) + t.pull_tx;
        epoch_push := !epoch_push + t.push_tx;
        epoch_pull := !epoch_pull + t.pull_tx;
        if t.informed < !epoch_informed then epoch_informed := t.informed
      done;
      forget_down r;
      stats :=
        {
          epoch = !epoch;
          epoch_rounds = r.rounds;
          epoch_informed = !epoch_informed;
          epoch_population = r.population;
          repair_push_tx = !epoch_push;
          repair_pull_tx = !epoch_pull;
          repair_channels = r.channels;
        }
        :: !stats;
      rounds := !rounds + r.rounds;
      chans := !chans + r.channels;
      down := r.down
    end
  done;
  let live, know = live_census () in
  ( {
      rounds = !rounds;
      population = live;
      channels = !chans;
      down = !down;
      trace = main.trace;
      tables =
        Array.init nt (fun j ->
            {
              completion_round = main.tables.(j).completion_round;
              informed = know.(j);
              push_tx = acc_push.(j);
              pull_tx = acc_pull.(j);
              knows = knows.(j);
            });
    },
    List.rev !stats )

type async_result = {
  activations : int;
  time : float;
  completion_time : float option;
  informed : int;
  transmissions : int;
  trace : Trace.t option;
}

let run_async ?(fault = Fault.none) ?(stop_when_complete = false)
    ?(collect_trace = false) ?on_round_end ?reset ?monitor ?(packed = true)
    ~rng ~graph ~protocol ~sources () =
  let open Protocol in
  let n = Graph.n graph in
  let informed = Bitset.create n in
  let store = store_of ~packed protocol n in
  List.iter
    (fun s ->
      Bitset.set informed s;
      store.s_init s ~informed:true)
    sources;
  let selector = Selector.make protocol.selector ~capacity:n in
  let scratch = Array.make (max (Selector.fanout protocol.selector) 1) 0 in
  let time = ref 0. in
  let activations = ref 0 in
  let transmissions = ref 0 in
  let informed_count = ref (List.length sources) in
  let completion = ref (if !informed_count = n then Some 0. else None) in
  let horizon = float_of_int protocol.horizon in
  let logical () = int_of_float !time + 1 in
  (* Quiescence is only re-checked occasionally (it costs O(n)); the
     horizon bounds the run regardless. The scan exits at the first
     talkative node, checking last time's witness first. *)
  let witness = ref 0 in
  let all_quiet () =
    let round = logical () in
    let w = !witness in
    if
      w < n && Bitset.get informed w
      && not (store.s_quiescent w ~round)
    then false
    else begin
      let quiet = ref true in
      let v = ref 0 in
      while !quiet && !v < n do
        let u = !v in
        if Bitset.get informed u && not (store.s_quiescent u ~round)
        then begin
          quiet := false;
          witness := u
        end;
        incr v
      done;
      !quiet
    end
  in
  (* Hoisted out of the activation loop so steady-state activations
     allocate nothing; [cur_round] carries the logical round. *)
  let cur_round = ref 1 in
  (* Unit-boundary machinery: a unit of continuous time is the
     asynchronous analogue of a round, so trace rows, [on_round_end]
     and [reset] land at the integer boundaries the run crosses. All of
     it draws nothing, and without hooks or tracing none of it runs. *)
  let trace = if collect_trace then Some (Trace.create ()) else None in
  let unit_boundaries =
    collect_trace
    || Option.is_some on_round_end
    || Option.is_some reset
    || Option.is_some monitor
  in
  let prev_informed = ref !informed_count in
  let unit_done = ref 0 in
  let unit_newly = ref 0 in
  let unit_push = ref 0 and unit_pull = ref 0 and unit_channels = ref 0 in
  let flush_row u =
    match trace with
    | Some t ->
        Trace.add t
          {
            Trace.round = u;
            informed = !informed_count;
            newly = !unit_newly;
            push_tx = !unit_push;
            pull_tx = !unit_pull;
            channels = !unit_channels;
          };
        unit_newly := 0;
        unit_push := 0;
        unit_pull := 0;
        unit_channels := 0
    | None -> ()
  in
  let flush_unit u =
    (* Monitor checks run before the churn hooks so they observe the
       state the protocol produced, not the harness's mutations. *)
    (match monitor with
    | None -> ()
    | Some m ->
        Invariant.tick m;
        let c = Bitset.cardinal informed in
        if c <> !informed_count then
          Invariant.record m ~check:"census" ~round:u
            ~detail:
              (Printf.sprintf "informed: recount %d, kernel %d" c
                 !informed_count);
        if Option.is_none reset && !informed_count < !prev_informed then
          Invariant.record m ~check:"monotone" ~round:u
            ~detail:
              (Printf.sprintf "informed fell %d -> %d" !prev_informed
                 !informed_count);
        prev_informed := !informed_count);
    flush_row u;
    (match on_round_end with Some f -> f u | None -> ());
    match reset with
    | Some f ->
        List.iter
          (fun v ->
            if v >= 0 && v < n then begin
              if Bitset.get informed v then begin
                Bitset.clear informed v;
                decr informed_count
              end;
              store.s_init v ~informed:false
            end)
          (f ())
    | None -> ()
  in
  let advance_units () =
    if unit_boundaries then begin
      let nu = int_of_float !time in
      while !unit_done < nu do
        incr unit_done;
        flush_unit !unit_done
      done
    end
  in
  let deliver ~sender target =
    let round = !cur_round in
    if not (Bitset.get informed target) then begin
      Bitset.set informed target;
      store.s_receive target ~round;
      incr informed_count;
      incr unit_newly;
      if !informed_count = n then completion := Some !time
    end
    else store.s_feedback sender ~round
  in
  let stop = ref false in
  while (not !stop) && !time < horizon do
    (* Superposition of n rate-1 clocks: global rate n. *)
    time := !time +. Dist.exponential rng ~rate:(float_of_int n);
    if !time < horizon then begin
      advance_units ();
      incr activations;
      let v = Rng.int rng n in
      let deg = Graph.degree graph v in
      if deg > 0 then begin
        let round = logical () in
        cur_round := round;
        let k = Selector.select selector ~rng ~node:v ~degree:deg ~out:scratch in
        for i = 0 to k - 1 do
          let w = Graph.neighbor graph v scratch.(i) in
          if Fault.channel_ok fault rng then begin
            incr unit_channels;
            (* push: the activated caller transmits to the callee. *)
            if Bitset.get informed v && (store.s_decide v ~round).push
               && Fault.delivery_ok ~dir:`Push fault rng
            then begin
              incr transmissions;
              incr unit_push;
              deliver ~sender:v w
            end;
            (* pull: the callee answers the caller. *)
            if Bitset.get informed w && (store.s_decide w ~round).pull
               && Fault.delivery_ok ~dir:`Pull fault rng
            then begin
              incr transmissions;
              incr unit_pull;
              deliver ~sender:w v
            end
          end
        done
      end;
      if stop_when_complete && !informed_count = n then stop := true;
      if !activations mod (4 * n) = 0 && all_quiet () then stop := true
    end
  done;
  (* The run usually ends mid-unit: emit the partial unit's row so the
     trace accounts for every delivery. *)
  if collect_trace && (!time > float_of_int !unit_done || !unit_done = 0)
  then flush_row (!unit_done + 1);
  {
    activations = !activations;
    time = !time;
    completion_time = !completion;
    informed = !informed_count;
    transmissions = !transmissions;
    trace;
  }
