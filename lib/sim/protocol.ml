type decision = { push : bool; pull : bool }

let silent = { push = false; pull = false }
let push_only = { push = true; pull = false }
let pull_only = { push = false; pull = true }
let push_pull = { push = true; pull = true }

type packed_ops = {
  bits : int;
  p_init : informed:bool -> int;
  p_decide : int -> round:int -> decision;
  p_receive : int -> round:int -> int;
  p_feedback : int -> round:int -> int;
  p_quiescent : int -> round:int -> bool;
}

type 'st packed = {
  ops : packed_ops;
  encode : 'st -> int;
  decode : int -> 'st;
}

type 'st t = {
  name : string;
  selector : Selector.spec;
  horizon : int;
  init : informed:bool -> 'st;
  decide : 'st -> round:int -> decision;
  receive : 'st -> round:int -> 'st;
  feedback : 'st -> round:int -> 'st;
  quiescent : 'st -> round:int -> bool;
  packed : 'st packed option;
}

let no_feedback st ~round =
  ignore round;
  st

let p_no_feedback code ~round =
  ignore round;
  code
