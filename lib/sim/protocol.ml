type decision = { push : bool; pull : bool }

let silent = { push = false; pull = false }
let push_only = { push = true; pull = false }
let pull_only = { push = false; pull = true }
let push_pull = { push = true; pull = true }

type 'st t = {
  name : string;
  selector : Selector.spec;
  horizon : int;
  init : informed:bool -> 'st;
  decide : 'st -> round:int -> decision;
  receive : 'st -> round:int -> 'st;
  feedback : 'st -> round:int -> 'st;
  quiescent : 'st -> round:int -> bool;
}

let no_feedback st ~round =
  ignore round;
  st
