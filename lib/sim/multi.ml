(* The multi-rumor driver: one kernel table per message under
   stateless fault sampling, sharing each round's channel set. All
   round machinery lives in {!Kernel}. *)

type message = { source : int; created : int }

type message_result = {
  completion_round : int option;
  informed : int;
  transmissions : int;
}

type result = {
  rounds : int;
  channels : int;
  population : int;
  messages : message_result array;
  repair : Kernel.epoch_stat list;
  trace : Trace.t option;
}

let total_transmissions r =
  Array.fold_left (fun acc m -> acc + m.transmissions) 0 r.messages

let all_complete r =
  r.population > 0
  && Array.for_all (fun m -> m.informed = r.population) r.messages

let validate ~topology messages =
  let cap = topology.Topology.capacity in
  if messages = [] then invalid_arg "Multi.run: no messages";
  List.iter
    (fun m ->
      if m.source < 0 || m.source >= cap || not (topology.Topology.alive m.source)
      then invalid_arg "Multi.run: bad source";
      if m.created < 0 then invalid_arg "Multi.run: negative creation time")
    messages

let tables_of messages =
  Array.of_list
    (List.map
       (fun m -> { Kernel.sources = [ m.source ]; created = m.created })
       messages)

let of_kernel ~repair (k : Kernel.result) =
  {
    rounds = k.Kernel.rounds;
    channels = k.Kernel.channels;
    population = k.Kernel.population;
    messages =
      Array.map
        (fun (t : Kernel.table_result) ->
          {
            completion_round = t.Kernel.completion_round;
            informed = t.Kernel.informed;
            transmissions = t.Kernel.push_tx + t.Kernel.pull_tx;
          })
        k.Kernel.tables;
    repair;
    trace = k.Kernel.trace;
  }

let run ?(fault = Fault.none) ?collect_trace ?on_round_end ?reset ?monitor
    ?packed ~rng ~topology ~protocol ~messages () =
  validate ~topology messages;
  of_kernel ~repair:[]
    (Kernel.run ~fault:(Kernel.Stateless fault) ?collect_trace ?on_round_end
       ?reset ?monitor ?packed ~rng ~topology ~protocol
       ~tables:(tables_of messages) ())

let run_epochs ?fault ?collect_trace ?forget_on_recover ?on_round_end ?reset
    ?(max_epochs = 8) ?monitor ?packed ~rng ~topology ~protocol ~repair
    ~messages () =
  if max_epochs < 0 then invalid_arg "Multi.run_epochs: max_epochs < 0";
  validate ~topology messages;
  let k, stats =
    Kernel.run_epochs ?fault ?collect_trace ?forget_on_recover ?on_round_end
      ?reset ~max_epochs ?monitor ?packed ~rng ~topology ~protocol ~repair
      ~tables:(tables_of messages) ()
  in
  of_kernel ~repair:stats k
