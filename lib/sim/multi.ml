module Rng = Rumor_rng.Rng

type message = { source : int; created : int }

type message_result = {
  completion_round : int option;
  informed : int;
  transmissions : int;
}

type result = {
  rounds : int;
  channels : int;
  population : int;
  messages : message_result array;
}

let total_transmissions r =
  Array.fold_left (fun acc m -> acc + m.transmissions) 0 r.messages

let all_complete r =
  r.population > 0
  && Array.for_all (fun m -> m.informed = r.population) r.messages

let run ?(fault = Fault.none) ~rng ~topology ~protocol ~messages () =
  let open Topology in
  let open Protocol in
  let cap = topology.capacity in
  if messages = [] then invalid_arg "Multi.run: no messages";
  List.iter
    (fun m ->
      if m.source < 0 || m.source >= cap || not (topology.alive m.source) then
        invalid_arg "Multi.run: bad source";
      if m.created < 0 then invalid_arg "Multi.run: negative creation time")
    messages;
  let msgs = Array.of_list messages in
  let k = Array.length msgs in
  (* Per-message per-node state, informed flags and accounting. *)
  let state = Array.init k (fun _ -> Array.init cap (fun _ -> protocol.init ~informed:false)) in
  let informed = Array.init k (fun _ -> Bitset.create cap) in
  let tx = Array.make k 0 in
  let completion = Array.make k None in
  let selector = Selector.make protocol.selector ~capacity:cap in
  let scratch = Array.make (max (Selector.fanout protocol.selector) 1) 0 in
  (* Decision cache per (message, node, round). *)
  let dec_push = Array.init k (fun _ -> Bitset.create cap) in
  let dec_pull = Array.init k (fun _ -> Bitset.create cap) in
  let stamp = Array.make_matrix k cap (-1) in
  let pending = Array.init k (fun _ -> Bitset.create cap) in
  let pending_ids = Array.make_matrix k cap 0 in
  let pending_len = Array.make k 0 in
  let channels = ref 0 in
  (* [Multi] has no churn or crash hook, so [topology.alive] is stable
     for the whole run: census the population once and keep a per-message
     informed count incrementally (receiving nodes are always behind a
     channel whose liveness was just checked). *)
  let live = ref 0 in
  for v = 0 to cap - 1 do
    if topology.alive v then incr live
  done;
  let live = !live in
  let know = Array.make k 0 in
  let witness = Array.make k 0 in
  let cur_round = ref 0 in
  let decide_at j v logical =
    let d = protocol.decide state.(j).(v) ~round:logical in
    Bitset.assign dec_push.(j) v d.push;
    Bitset.assign dec_pull.(j) v d.pull;
    stamp.(j).(v) <- !cur_round
  in
  let push_of j v logical =
    if stamp.(j).(v) <> !cur_round then decide_at j v logical;
    Bitset.get dec_push.(j) v
  in
  let pull_of j v logical =
    if stamp.(j).(v) <> !cur_round then decide_at j v logical;
    Bitset.get dec_pull.(j) v
  in
  let horizon =
    Array.fold_left (fun acc m -> max acc (m.created + protocol.horizon)) 0 msgs
  in
  let round = ref 0 in
  let stop = ref false in
  while (not !stop) && !round < horizon do
    incr round;
    let r = !round in
    cur_round := r;
    (* Inject rumors created at the end of the previous round. *)
    Array.iteri
      (fun j m ->
        if m.created = r - 1 && not (Bitset.get informed.(j) m.source) then begin
          Bitset.set informed.(j) m.source;
          state.(j).(m.source) <- protocol.init ~informed:true;
          know.(j) <- know.(j) + 1
        end)
      msgs;
    (* One shared channel set for the round. *)
    for u = 0 to cap - 1 do
      if topology.alive u then begin
        let d = topology.degree u in
        if d > 0 then begin
          let kk = Selector.select selector ~rng ~node:u ~degree:d ~out:scratch in
          for i = 0 to kk - 1 do
            let w = topology.neighbor u scratch.(i) in
            if topology.alive w && Fault.channel_ok fault rng then begin
              incr channels;
              for j = 0 to k - 1 do
                let logical = r - msgs.(j).created in
                if logical >= 1 then begin
                  if Bitset.get informed.(j) u && push_of j u logical
                     && Fault.delivery_ok ~dir:`Push fault rng
                  then begin
                    tx.(j) <- tx.(j) + 1;
                    if Bitset.get informed.(j) w then
                      state.(j).(u) <- protocol.feedback state.(j).(u) ~round:logical
                    else if not (Bitset.get pending.(j) w) then begin
                      Bitset.set pending.(j) w;
                      pending_ids.(j).(pending_len.(j)) <- w;
                      pending_len.(j) <- pending_len.(j) + 1
                    end
                  end;
                  if Bitset.get informed.(j) w && pull_of j w logical
                     && Fault.delivery_ok ~dir:`Pull fault rng
                  then begin
                    tx.(j) <- tx.(j) + 1;
                    if Bitset.get informed.(j) u then
                      state.(j).(w) <- protocol.feedback state.(j).(w) ~round:logical
                    else if not (Bitset.get pending.(j) u) then begin
                      Bitset.set pending.(j) u;
                      pending_ids.(j).(pending_len.(j)) <- u;
                      pending_len.(j) <- pending_len.(j) + 1
                    end
                  end
                end
              done
            end
          done
        end
      end
    done;
    (* Apply receipts per message. *)
    for j = 0 to k - 1 do
      let logical = r - msgs.(j).created in
      for i = 0 to pending_len.(j) - 1 do
        let v = pending_ids.(j).(i) in
        Bitset.clear pending.(j) v;
        Bitset.set informed.(j) v;
        state.(j).(v) <- protocol.receive state.(j).(v) ~round:logical
      done;
      know.(j) <- know.(j) + pending_len.(j);
      pending_len.(j) <- 0
    done;
    (* Census: completions from the incremental counts; quiescence by
       early-exit scan, seeded with the last talkative node (see the
       witness rationale in {!Engine}). *)
    let all_quiet = ref true in
    for j = 0 to k - 1 do
      if completion.(j) = None && live > 0 && know.(j) = live then
        completion.(j) <- Some r;
      if msgs.(j).created >= r then all_quiet := false
      else if !all_quiet then begin
        let logical = r - msgs.(j).created in
        let quiet_at v =
          logical < 0
          || protocol.quiescent state.(j).(v) ~round:(logical + 1)
        in
        let wt = witness.(j) in
        if
          wt < cap && topology.alive wt
          && Bitset.get informed.(j) wt
          && not (quiet_at wt)
        then all_quiet := false
        else begin
          let v = ref 0 in
          while !all_quiet && !v < cap do
            let u = !v in
            if topology.alive u && Bitset.get informed.(j) u
               && not (quiet_at u)
            then begin
              all_quiet := false;
              witness.(j) <- u
            end;
            incr v
          done
        end
      end
    done;
    if !all_quiet then stop := true
  done;
  let messages =
    Array.init k (fun j ->
        let know = ref 0 in
        for v = 0 to cap - 1 do
          if topology.alive v && Bitset.get informed.(j) v then incr know
        done;
        {
          completion_round = completion.(j);
          informed = !know;
          transmissions = tx.(j);
        })
  in
  {
    rounds = !round;
    channels = !channels;
    population = live;
    messages;
  }
