module Rng = Rumor_rng.Rng

type message = { source : int; created : int }

type message_result = {
  completion_round : int option;
  informed : int;
  transmissions : int;
}

type result = {
  rounds : int;
  channels : int;
  population : int;
  messages : message_result array;
}

let total_transmissions r =
  Array.fold_left (fun acc m -> acc + m.transmissions) 0 r.messages

let all_complete r =
  r.population > 0
  && Array.for_all (fun m -> m.informed = r.population) r.messages

let run ?(fault = Fault.none) ~rng ~topology ~protocol ~messages () =
  let open Topology in
  let open Protocol in
  let cap = topology.capacity in
  if messages = [] then invalid_arg "Multi.run: no messages";
  List.iter
    (fun m ->
      if m.source < 0 || m.source >= cap || not (topology.alive m.source) then
        invalid_arg "Multi.run: bad source";
      if m.created < 0 then invalid_arg "Multi.run: negative creation time")
    messages;
  let msgs = Array.of_list messages in
  let k = Array.length msgs in
  (* Per-message per-node state, informed flags and accounting. *)
  let state = Array.init k (fun _ -> Array.init cap (fun _ -> protocol.init ~informed:false)) in
  let informed = Array.make_matrix k cap false in
  let tx = Array.make k 0 in
  let completion = Array.make k None in
  let selector = Selector.make protocol.selector ~capacity:cap in
  let scratch = Array.make (max (Selector.fanout protocol.selector) 1) 0 in
  (* Decision cache per (message, node, round). *)
  let dec = Array.make_matrix k cap Protocol.silent in
  let stamp = Array.make_matrix k cap (-1) in
  let pending = Array.make_matrix k cap false in
  let pending_ids = Array.make cap 0 in
  let channels = ref 0 in
  let horizon =
    Array.fold_left (fun acc m -> max acc (m.created + protocol.horizon)) 0 msgs
  in
  let round = ref 0 in
  let stop = ref false in
  while (not !stop) && !round < horizon do
    incr round;
    let r = !round in
    (* Inject rumors created at the end of the previous round. *)
    Array.iteri
      (fun j m ->
        if m.created = r - 1 && not informed.(j).(m.source) then begin
          informed.(j).(m.source) <- true;
          state.(j).(m.source) <- protocol.init ~informed:true
        end)
      msgs;
    let decision_of j v logical =
      if stamp.(j).(v) <> r then begin
        dec.(j).(v) <- protocol.decide state.(j).(v) ~round:logical;
        stamp.(j).(v) <- r
      end;
      dec.(j).(v)
    in
    (* One shared channel set for the round. *)
    for u = 0 to cap - 1 do
      if topology.alive u then begin
        let d = topology.degree u in
        if d > 0 then begin
          let kk = Selector.select selector ~rng ~node:u ~degree:d ~out:scratch in
          for i = 0 to kk - 1 do
            let w = topology.neighbor u scratch.(i) in
            if topology.alive w && Fault.channel_ok fault rng then begin
              incr channels;
              for j = 0 to k - 1 do
                let logical = r - msgs.(j).created in
                if logical >= 1 then begin
                  if informed.(j).(u) && (decision_of j u logical).push
                     && Fault.delivery_ok ~dir:`Push fault rng
                  then begin
                    tx.(j) <- tx.(j) + 1;
                    if informed.(j).(w) then
                      state.(j).(u) <- protocol.feedback state.(j).(u) ~round:logical
                    else pending.(j).(w) <- true
                  end;
                  if informed.(j).(w) && (decision_of j w logical).pull
                     && Fault.delivery_ok ~dir:`Pull fault rng
                  then begin
                    tx.(j) <- tx.(j) + 1;
                    if informed.(j).(u) then
                      state.(j).(w) <- protocol.feedback state.(j).(w) ~round:logical
                    else pending.(j).(u) <- true
                  end
                end
              done
            end
          done
        end
      end
    done;
    (* Apply receipts per message. *)
    for j = 0 to k - 1 do
      let logical = r - msgs.(j).created in
      let count = ref 0 in
      for v = 0 to cap - 1 do
        if pending.(j).(v) then begin
          pending.(j).(v) <- false;
          pending_ids.(!count) <- v;
          incr count
        end
      done;
      for i = 0 to !count - 1 do
        let v = pending_ids.(i) in
        informed.(j).(v) <- true;
        state.(j).(v) <- protocol.receive state.(j).(v) ~round:logical
      done
    done;
    (* Census: completions and global quiescence. *)
    let live = ref 0 in
    for v = 0 to cap - 1 do
      if topology.alive v then incr live
    done;
    let all_quiet = ref true in
    for j = 0 to k - 1 do
      let logical = r - msgs.(j).created in
      let know = ref 0 in
      for v = 0 to cap - 1 do
        if topology.alive v && informed.(j).(v) then begin
          incr know;
          if logical >= 0
             && not (protocol.quiescent state.(j).(v) ~round:(logical + 1))
          then all_quiet := false
        end
      done;
      if msgs.(j).created >= r then all_quiet := false;
      if completion.(j) = None && !live > 0 && !know = !live then
        completion.(j) <- Some r
    done;
    if !all_quiet then stop := true
  done;
  let live = ref 0 in
  for v = 0 to cap - 1 do
    if topology.alive v then incr live
  done;
  let messages =
    Array.init k (fun j ->
        let know = ref 0 in
        for v = 0 to cap - 1 do
          if topology.alive v && informed.(j).(v) then incr know
        done;
        {
          completion_round = completion.(j);
          informed = !know;
          transmissions = tx.(j);
        })
  in
  {
    rounds = !round;
    channels = !channels;
    population = !live;
    messages;
  }
