module Graph = Rumor_graph.Graph

type t = {
  capacity : int;
  degree : int -> int;
  neighbor : int -> int -> int;
  alive : int -> bool;
  live_count : (unit -> int) option;
}

let of_graph g =
  {
    capacity = Graph.n g;
    degree = Graph.degree g;
    neighbor = Graph.neighbor g;
    alive = (fun _ -> true);
    live_count = Some (fun () -> Graph.n g);
  }

let alive_count t =
  match t.live_count with
  | Some f -> f ()
  | None ->
      let count = ref 0 in
      for v = 0 to t.capacity - 1 do
        if t.alive v then incr count
      done;
      !count
