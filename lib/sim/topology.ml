module Graph = Rumor_graph.Graph

type t = {
  capacity : int;
  degree : int -> int;
  neighbor : int -> int -> int;
  alive : int -> bool;
  live_count : (unit -> int) option;
}

let of_graph g =
  {
    capacity = Graph.n g;
    degree = Graph.degree g;
    neighbor = Graph.neighbor g;
    alive = (fun _ -> true);
    live_count = Some (fun () -> Graph.n g);
  }

let alive_count t =
  match t.live_count with
  | Some f -> f ()
  | None ->
      let count = ref 0 in
      for v = 0 to t.capacity - 1 do
        if t.alive v then incr count
      done;
      !count

(* --- implicit views: neighbours computed from a seed, no CSR ---

   A materialised configuration-model graph caps practical runs near
   n = 2^20 (stub arrays, shuffles, CSR). The views below keep only
   O(d) words of state and answer [degree]/[neighbor] in O(1)-ish
   time, so the same kernel drives n = 10^7..10^8 networks.

   The random-regular and chord views are unions of seed-derived
   perfect matchings. Each matching is defined by a keyed Feistel
   permutation [P] of [0, n): node [v] sits at position [P v], position
   [p] is paired with [p lxor 1], and the partner is read back through
   the inverse permutation. Symmetry (w ∈ N(v) ⇔ v ∈ N(w)) and
   freedom from self-loops hold by construction — a pairing is an
   involution with no fixed point — rather than by audit. All
   arithmetic is on untagged native ints: no allocation per call. *)

(* splitmix64-style finalizer truncated to OCaml's 63-bit native int.
   The multipliers are odd 62-bit constants, so the low bits mix just
   like the 64-bit original; only the (unused) top bit differs. *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * 0x2B2F159E4BC5AB1D in
  x lxor (x lsr 31)

(* A Feistel permutation of [0, 2^bits) with [bits] even: four rounds
   of [L, R -> R, L lxor F(R)] on half-words, keyed by [key]. *)
let feistel_rounds = 4

let feistel_enc ~key ~half ~hmask x =
  let l = ref (x lsr half) and r = ref (x land hmask) in
  for i = 0 to feistel_rounds - 1 do
    let l' = !r in
    let r' = !l lxor (mix (!r lxor key lxor (i * 0x9E3779B97F4A7C)) land hmask) in
    l := l';
    r := r'
  done;
  (!l lsl half) lor !r

let feistel_dec ~key ~half ~hmask x =
  let l = ref (x lsr half) and r = ref (x land hmask) in
  for i = feistel_rounds - 1 downto 0 do
    let r' = !l in
    let l' = !r lxor (mix (!l lxor key lxor (i * 0x9E3779B97F4A7C)) land hmask) in
    l := l';
    r := r'
  done;
  (!l lsl half) lor !r

(* Cycle-walking restricts the permutation to [0, n): iterate until the
   image lands back inside the domain. Expected iterations are
   2^bits / n < 4, and termination is guaranteed because the cycle of
   [x] under the full permutation re-enters [0, n) at [x] itself. *)
let rec walk_enc ~key ~half ~hmask ~n x =
  let y = feistel_enc ~key ~half ~hmask x in
  if y < n then y else walk_enc ~key ~half ~hmask ~n y

let rec walk_dec ~key ~half ~hmask ~n x =
  let y = feistel_dec ~key ~half ~hmask x in
  if y < n then y else walk_dec ~key ~half ~hmask ~n y

(* Smallest even [bits] with [2^bits >= n], so the Feistel halves are
   balanced. *)
let even_bits n =
  let b = ref 2 in
  while 1 lsl !b < n do
    b := !b + 2
  done;
  !b

(* Partner of [v] in the matching keyed by [key]: position [p] pairs
   with [p lxor 1]. With [n] even both positions are in range, so the
   partner is total, never [v] itself, and partnering twice returns
   [v]. *)
let matching_partner ~key ~half ~hmask ~n v =
  let p = walk_enc ~key ~half ~hmask ~n v in
  walk_dec ~key ~half ~hmask ~n (p lxor 1)

let matching_keys ~salt ~seed d =
  Array.init d (fun j -> mix (mix (seed lxor salt) + (j + 1) * 0x3C79AC492BA7B653))

let implicit_regular ~seed ~n ~d =
  if n < 2 then invalid_arg "Topology.implicit_regular: n < 2";
  if n land 1 = 1 then
    invalid_arg "Topology.implicit_regular: n must be even (perfect matchings)";
  if d < 1 then invalid_arg "Topology.implicit_regular: d < 1";
  let bits = even_bits n in
  let half = bits / 2 in
  let hmask = (1 lsl half) - 1 in
  let keys = matching_keys ~salt:0x51ED2701 ~seed d in
  {
    capacity = n;
    degree = (fun _ -> d);
    neighbor =
      (fun v i -> matching_partner ~key:keys.(i) ~half ~hmask ~n v);
    alive = (fun _ -> true);
    live_count = Some (fun () -> n);
  }

(* The [k]-cube on [2^k] ids. Neighbours are listed in ascending id
   order — exactly the CSR order [Rumor_gen.Classic.hypercube] builds
   (edges inserted by (min endpoint, bit) give each vertex its
   smaller-id neighbours first, both blocks ascending) — so a broadcast
   over this view is bit-identical to one over the materialised cube. *)
let hypercube_dim n =
  let k = ref 0 in
  while 1 lsl !k < n do
    incr k
  done;
  !k

let implicit_hypercube ~n =
  if n < 2 then invalid_arg "Topology.implicit_hypercube: n < 2";
  let dim = hypercube_dim n in
  if dim > 25 then invalid_arg "Topology.implicit_hypercube: n > 2^25";
  let cap = 1 lsl dim in
  let neighbor v i =
    (* i-th smallest of { v lxor (1 lsl b) }: clearing set bits from
       the top yields the ascending below-v block, then setting clear
       bits from the bottom yields the ascending above-v block. *)
    let result = ref (-1) in
    let seen = ref 0 in
    let b = ref (dim - 1) in
    while !result < 0 && !b >= 0 do
      if v land (1 lsl !b) <> 0 then begin
        if !seen = i then result := v lxor (1 lsl !b);
        incr seen
      end;
      decr b
    done;
    let b = ref 0 in
    while !result < 0 && !b < dim do
      if v land (1 lsl !b) = 0 then begin
        if !seen = i then result := v lor (1 lsl !b);
        incr seen
      end;
      incr b
    done;
    !result
  in
  {
    capacity = cap;
    degree = (fun _ -> dim);
    neighbor;
    alive = (fun _ -> true);
    live_count = Some (fun () -> cap);
  }

let implicit_chords ~seed ~n ~d =
  if n < 3 then invalid_arg "Topology.implicit_chords: n < 3";
  if d < 2 then invalid_arg "Topology.implicit_chords: d < 2";
  let chords = d - 2 in
  if chords > 0 && n land 1 = 1 then
    invalid_arg "Topology.implicit_chords: n must be even when d > 2";
  let bits = even_bits n in
  let half = bits / 2 in
  let hmask = (1 lsl half) - 1 in
  let keys = matching_keys ~salt:0x3C6EF372 ~seed chords in
  let neighbor v i =
    if i = 0 then if v = 0 then n - 1 else v - 1
    else if i = 1 then if v = n - 1 then 0 else v + 1
    else matching_partner ~key:keys.(i - 2) ~half ~hmask ~n v
  in
  {
    capacity = n;
    degree = (fun _ -> 2 + chords);
    neighbor;
    alive = (fun _ -> true);
    live_count = Some (fun () -> n);
  }

let to_graph t =
  let b = Rumor_graph.Builder.create ~capacity:(max t.capacity 1) ~n:t.capacity () in
  for v = 0 to t.capacity - 1 do
    if t.alive v then begin
      let d = t.degree v in
      for i = 0 to d - 1 do
        let w = t.neighbor v i in
        (* A symmetric view lists every edge from both endpoints; keep
           the copy seen from the smaller id (all copies, for
           multi-edges). *)
        if v < w then Rumor_graph.Builder.add_edge b v w
      done
    end
  done;
  Rumor_graph.Builder.build b
