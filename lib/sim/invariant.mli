(** Runtime kernel-invariant monitor.

    [kernel.mli] states several informal contracts — the incremental
    census equals a full recount, the informed set only grows absent
    node faults, every delivery is accounted to a channel. This module
    makes them executable: pass [?monitor:(Invariant.create ())] to a
    kernel driver and the kernel re-derives each quantity independently
    at every round boundary, recording a {!violation} whenever the
    cheap incremental answer disagrees with the recomputed one.

    The monitor is pure observation: it draws no randomness, never
    changes control flow, and when absent costs nothing — the kernel
    hot path stays allocation-free and every golden trajectory is
    bit-identical with or without it. It exists for the chaos harness
    ([rumor chaos]) and for tests; production sweeps leave it off.

    Checks performed by the kernel when a monitor is installed, keyed
    by the [check] field of the violation:

    - ["census"] — the incremental live count and each table's informed
      count (and, under the incremental census, its down-informed
      count) equal a full O(capacity) recount of the bitsets;
    - ["monotone"] — a table's informed count never decreases when the
      plan has no node faults, no churn hook and no state reset (only
      crashes, churn departures and amnesia may shrink the rumor);
    - ["conserve"] — newly informed nodes never exceed surviving
      deliveries; push and pull deliveries never exceed the number of
      open channels per table; informed never exceeds live;
    - ["drain"] — per-table pending/duplicate staging buffers are empty
      after the round's deliveries are applied;
    - ["budget"] — repair epochs never exceed [max_epochs] and no epoch
      outlives its protocol's horizon. *)

type violation = { check : string; round : int; detail : string }

type t

val create : ?limit:int -> unit -> t
(** Fresh monitor. At most [limit] (default 32) violations are kept;
    further ones are still counted by {!count} but not stored.
    @raise Invalid_argument if [limit < 1]. *)

val record : t -> check:string -> round:int -> detail:string -> unit
(** Record one violation. Called by the kernel; callers only read. *)

val tick : t -> unit
(** Count one checked round boundary (see {!rounds_checked}). *)

val ok : t -> bool
(** No violation recorded so far. *)

val count : t -> int
(** Total violations recorded, including ones dropped past [limit]. *)

val rounds_checked : t -> int
(** Round boundaries at which the kernel ran the checks. *)

val violations : t -> violation list
(** Stored violations, oldest first. *)

val pp_violation : Format.formatter -> violation -> unit

val to_string : violation -> string
(** ["check (round r): detail"] rendering of {!pp_violation}. *)
