(** Asynchronous (continuous-time) execution of phone-call protocols.

    The paper's model is synchronous: all nodes act in lockstep rounds
    driven by a global clock. Real P2P systems are only loosely
    synchronised, and the standard asynchronous relaxation gives every
    node an independent rate-1 Poisson clock: when a node's clock
    rings, it opens its channels and transmits exactly as it would in a
    round. One unit of continuous time corresponds to one expected
    activation per node, so a protocol's round-indexed schedule maps
    onto time by [logical round = floor time + 1] — nodes still share
    a clock for {e timestamps} (message age), but not for {e actions}.

    Comparing {!run} against {!Engine.run} measures how much of the
    paper's analysis survives without the synchrony assumption
    (ablation A2 stresses bounded skew; this module removes lockstep
    entirely). *)

type result = {
  activations : int;  (** node activations executed *)
  time : float;  (** continuous time at the end of the run *)
  completion_time : float option;
      (** time at which the last node became informed *)
  informed : int;
  transmissions : int;  (** deliveries, counted as in {!Engine} *)
}

val run :
  ?fault:Fault.t ->
  ?stop_when_complete:bool ->
  rng:Rumor_rng.Rng.t ->
  graph:Rumor_graph.Graph.t ->
  protocol:'st Protocol.t ->
  sources:int list ->
  unit ->
  result
(** [run ~protocol ~sources ()] executes activations in Poisson order
    until every informed node is quiescent at its current logical round
    or continuous time exceeds the protocol's [horizon] (in time
    units); [stop_when_complete] (default false) additionally stops as
    soon as everyone is informed — the oracle-stopped accounting used
    for baselines. Only the [Uniform] selector is meaningful per-activation;
    stateful selectors are accepted and keep their per-node state
    across activations. [fault] is sampled through the stateless view
    ({!Fault.channel_ok}, {!Fault.delivery_ok} with the transmission's
    direction): independent failures and asymmetric push/pull loss
    apply; burst and crash modes need {!Engine.run}'s runtime and are
    ignored here.
    @raise Invalid_argument if [sources] is empty or out of range. *)
