(** Asynchronous (continuous-time) execution of phone-call protocols.

    The paper's model is synchronous: all nodes act in lockstep rounds
    driven by a global clock. Real P2P systems are only loosely
    synchronised, and the standard asynchronous relaxation gives every
    node an independent rate-1 Poisson clock: when a node's clock
    rings, it opens its channels and transmits exactly as it would in a
    round. One unit of continuous time corresponds to one expected
    activation per node, so a protocol's round-indexed schedule maps
    onto time by [logical round = floor time + 1] — nodes still share
    a clock for {e timestamps} (message age), but not for {e actions}.

    Comparing {!run} against {!Engine.run} measures how much of the
    paper's analysis survives without the synchrony assumption
    (ablation A2 stresses bounded skew; this module removes lockstep
    entirely). The implementation is {!Kernel.run_async}, which shares
    the selection, fault-sampling, delivery and quiescence machinery
    with the synchronous kernel. *)

type result = Kernel.async_result = {
  activations : int;  (** node activations executed *)
  time : float;  (** continuous time at the end of the run *)
  completion_time : float option;
      (** time at which the last node became informed *)
  informed : int;
  transmissions : int;  (** deliveries, counted as in {!Engine} *)
  trace : Trace.t option;
      (** one row per elapsed unit of continuous time (= logical round)
          when requested, final partial unit included *)
}

val run :
  ?fault:Fault.t ->
  ?stop_when_complete:bool ->
  ?collect_trace:bool ->
  ?on_round_end:(int -> unit) ->
  ?reset:(unit -> int list) ->
  ?monitor:Invariant.t ->
  ?packed:bool ->
  rng:Rumor_rng.Rng.t ->
  graph:Rumor_graph.Graph.t ->
  protocol:'st Protocol.t ->
  sources:int list ->
  unit ->
  result
(** [run ~protocol ~sources ()] executes activations in Poisson order
    to the kernel's stopping rule (quiescence at the current logical
    round, continuous time [protocol.horizon], or — with
    [stop_when_complete] — the oracle-stopped accounting; see
    {!Kernel}). Only the [Uniform] selector is meaningful
    per-activation; stateful selectors are accepted and keep their
    per-node state across activations. [fault] is sampled through the
    stateless view ({!Fault.channel_ok}, {!Fault.delivery_ok} with the
    transmission's direction): independent failures and asymmetric
    push/pull loss apply; burst and crash modes need a fault runtime
    ({!Kernel.Full}, as driven by {!Engine.run}) and are ignored here.
    [on_round_end] and [reset] fire at each integer time-unit boundary
    the run crosses — the asynchronous analogue of a round end; ids
    returned by [reset] restart uninformed.
    @raise Invalid_argument if [sources] is empty or out of range. *)
