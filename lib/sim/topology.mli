(** The simulator's view of a network.

    A topology is a record of accessors rather than a concrete graph so
    that the same kernel drives static CSR graphs ({!of_graph}), the
    mutable peer-to-peer overlays of [Rumor_p2p] (which change between
    rounds under churn), and the {e implicit} seed-derived views below
    (which never materialise an edge list at all). Node identifiers are
    [0 .. capacity-1]; dead identifiers (departed peers) are skipped
    via [alive].

    {2 The implicit-topology contract}

    {!implicit_regular}, {!implicit_hypercube} and {!implicit_chords}
    compute [degree]/[neighbor] on the fly from a seed in O(1)-ish time
    and O(d) memory, lifting the scale ceiling from the
    configuration-model's n = 2^20 to n = 10^7..10^8. They guarantee:

    - {b determinism}: the seed fully determines the neighbour
      function; two views with the same parameters are the same graph,
      on any machine;
    - {b symmetry}: [w] appears in [v]'s neighbour list exactly as many
      times as [v] appears in [w]'s (edges are unions of seed-keyed
      perfect matchings and fixed lattice edges, never one-sided
      hashes);
    - {b no self-loops}: a matching pairs distinct positions, so
      [neighbor v i <> v] always;
    - {b liveness is orthogonal}: churn, crashes and partitions mutate
      [alive]/fault state, never the edge set — the kernel already
      checks [alive u && alive w] before a call, so the implicit views
      compose with the whole fault layer unchanged.

    Random-regular and chord views may contain parallel edges (two
    matchings can pair the same nodes), exactly like the paper's
    configuration-model multigraphs before erasure; at d ≪ n their
    expected number is O(d²). *)

type t = {
  capacity : int;  (** exclusive upper bound on node ids *)
  degree : int -> int;  (** current degree of a node *)
  neighbor : int -> int -> int;  (** [neighbor v i], [0 <= i < degree v] *)
  alive : int -> bool;  (** whether the id denotes a present node *)
  live_count : (unit -> int) option;
      (** O(1) live-node count when the backing structure already
          tracks it (graphs, overlays); [None] makes {!alive_count}
          fall back to an O(capacity) scan. Must agree with [alive]. *)
}

val of_graph : Rumor_graph.Graph.t -> t
(** View a static graph as a topology (every node alive). *)

val alive_count : t -> int
(** Number of live nodes — via [live_count] when provided (O(1)),
    otherwise by scanning [alive] over the id space. The kernel seeds
    its incrementally maintained census from this, so broadcast results
    report live counts without any per-run O(capacity) rescan. *)

val implicit_regular : seed:int -> n:int -> d:int -> t
(** [implicit_regular ~seed ~n ~d] is a random [d]-regular multigraph
    on [n] nodes: the union of [d] seed-keyed perfect matchings, each a
    Feistel permutation of [0, n) pairing position [p] with
    [p lxor 1]. Every node has degree exactly [d]; [neighbor v i] is
    [v]'s partner in matching [i], costing one Feistel encryption plus
    one decryption (no allocation, no materialised state beyond the [d]
    keys). Connected with high probability for [d >= 3], as for
    configuration-model regular graphs.
    @raise Invalid_argument if [n < 2], [n] is odd, or [d < 1]. *)

val implicit_hypercube : n:int -> t
(** [implicit_hypercube ~n] is the [k]-dimensional hypercube with
    [k = ceil(log2 n)] (capacity [2^k], every node degree [k]).
    Neighbours are listed in ascending id order — the same order
    [Rumor_gen.Classic.hypercube]'s CSR produces — so a broadcast over
    this view consumes randomness identically to one over the
    materialised cube and yields bit-identical results.
    @raise Invalid_argument if [n < 2] or [n > 2^25]. *)

val implicit_chords : seed:int -> n:int -> d:int -> t
(** [implicit_chords ~seed ~n ~d] is the [n]-cycle ([neighbor v 0] the
    predecessor, [neighbor v 1] the successor) plus [d - 2] seed-keyed
    chord matchings — a small-world ring in the spirit of the paper's
    peer-to-peer overlays, with guaranteed connectivity from the ring
    and random long-range chords for O(log n) broadcast.
    @raise Invalid_argument if [n < 3], [d < 2], or [d > 2] with [n]
    odd. *)

val to_graph : t -> Rumor_graph.Graph.t
(** Materialise a {e symmetric} topology view as a CSR graph (each
    undirected edge kept once from its smaller endpoint, self-loops
    dropped, dead nodes isolated). Intended for differential tests and
    small-n inspection — it is exactly the O(capacity · d) cost the
    implicit views exist to avoid, so don't call it at scale. The CSR
    neighbour {e order} generally differs from the view's; compare
    adjacency multisets, not sequences. *)
