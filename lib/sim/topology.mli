(** The simulator's view of a network.

    A topology is a record of accessors rather than a concrete graph so
    that the same kernel drives static CSR graphs ({!of_graph}) and the
    mutable peer-to-peer overlays of [Rumor_p2p] (which change between
    rounds under churn). Node identifiers are [0 .. capacity-1]; dead
    identifiers (departed peers) are skipped via [alive]. *)

type t = {
  capacity : int;  (** exclusive upper bound on node ids *)
  degree : int -> int;  (** current degree of a node *)
  neighbor : int -> int -> int;  (** [neighbor v i], [0 <= i < degree v] *)
  alive : int -> bool;  (** whether the id denotes a present node *)
  live_count : (unit -> int) option;
      (** O(1) live-node count when the backing structure already
          tracks it (graphs, overlays); [None] makes {!alive_count}
          fall back to an O(capacity) scan. Must agree with [alive]. *)
}

val of_graph : Rumor_graph.Graph.t -> t
(** View a static graph as a topology (every node alive). *)

val alive_count : t -> int
(** Number of live nodes — via [live_count] when provided (O(1)),
    otherwise by scanning [alive] over the id space. The kernel seeds
    its incrementally maintained census from this, so broadcast results
    report live counts without any per-run O(capacity) rescan. *)
