module Rng = Rumor_rng.Rng

type epoch_stat = {
  epoch : int;
  epoch_rounds : int;
  epoch_informed : int;
  epoch_population : int;
  repair_push_tx : int;
  repair_pull_tx : int;
  repair_channels : int;
}

type result = {
  rounds : int;
  completion_round : int option;
  informed : int;
  population : int;
  push_tx : int;
  pull_tx : int;
  channels : int;
  knows : bool array;
  down : int list;
  repair : epoch_stat list;
  trace : Trace.t option;
}

let transmissions r = r.push_tx + r.pull_tx
let success r = r.population > 0 && r.informed = r.population
let epochs_used r = List.length r.repair

let repair_tx r =
  List.fold_left
    (fun acc e -> acc + e.repair_push_tx + e.repair_pull_tx)
    0 r.repair

let coverage r =
  if r.population = 0 then 0.
  else float_of_int r.informed /. float_of_int r.population

let run ?(fault = Fault.none) ?(collect_trace = false) ?(stop_when_complete = false)
    ?gate ?(forget_on_recover = false) ?reset ?on_round_end ?skew ~rng ~topology
    ~protocol ~sources () =
  let open Topology in
  let open Protocol in
  let cap = topology.capacity in
  let skew = match skew with Some f -> f | None -> fun _ -> 0 in
  let max_skew =
    let worst = ref 0 in
    for v = 0 to cap - 1 do
      if skew v > !worst then worst := skew v
    done;
    !worst
  in
  if sources = [] then invalid_arg "Engine.run: no sources";
  List.iter
    (fun s ->
      if s < 0 || s >= cap || not (topology.alive s) then
        invalid_arg "Engine.run: bad source")
    sources;
  let informed = Bitset.create cap in
  let state = Array.init cap (fun _ -> protocol.init ~informed:false) in
  List.iter
    (fun s ->
      Bitset.set informed s;
      state.(s) <- protocol.init ~informed:true)
    sources;
  let selector = Selector.make protocol.selector ~capacity:cap in
  let scratch = Array.make (max (Selector.fanout protocol.selector) 1) 0 in
  (* Per-round decision cache: [decide] runs once per informed node. *)
  let dec_push = Bitset.create cap in
  let dec_pull = Bitset.create cap in
  let stamp = Array.make cap (-1) in
  (* Newly-informed set, applied at the end of the round so a node never
     forwards a rumor in the round it first receives it. *)
  let pending = Bitset.create cap in
  let pending_ids = Array.make cap 0 in
  let pending_len = ref 0 in
  let mark v =
    if not (Bitset.get pending v) then begin
      Bitset.set pending v;
      pending_ids.(!pending_len) <- v;
      incr pending_len
    end
  in
  (* Sender-side feedback: how many of a node's transmissions this
     round reached partners that already knew the rumor; applied after
     receipts at the end of the round. *)
  let dups = Array.make cap 0 in
  let dup_ids = Array.make cap 0 in
  let dup_len = ref 0 in
  let record_dup v =
    if dups.(v) = 0 then begin
      dup_ids.(!dup_len) <- v;
      incr dup_len
    end;
    dups.(v) <- dups.(v) + 1
  in
  let trace = if collect_trace then Some (Trace.create ()) else None in
  let frt = Fault.start fault ~capacity:cap in
  let total_push = ref 0
  and total_pull = ref 0
  and total_channels = ref 0 in
  let completion = ref None in
  (* Census. When [on_round_end] is absent, [topology.alive] cannot
     change mid-run (churn is the only client that mutates it), so the
     live/know counts are maintained incrementally at the only events
     that move them — crash, recovery, receipt, reset — instead of
     rescanning the whole population every round. [down_informed]
     counts informed crashed nodes: while any can still recover the
     system must not be declared quiet. Under churn ([on_round_end]
     present) the engine falls back to the original full per-round
     census; none of this draws randomness, so both paths replay
     identical trajectories. *)
  let census_incremental = on_round_end = None in
  let live = ref 0 and know = ref 0 and down_informed = ref 0 in
  if census_incremental then
    for v = 0 to cap - 1 do
      if topology.alive v then begin
        incr live;
        if Bitset.get informed v then incr know
      end
    done;
  let on_crash =
    if census_incremental then
      Some
        (fun v ->
          decr live;
          if Bitset.get informed v then begin
            decr know;
            incr down_informed
          end)
    else None
  in
  let on_recover =
    (* Recovery amnesia: the node lost its volatile state while it was
       down and re-enters the uninformed census. Nodes only crash while
       alive and active, so a recovering node is alive here. *)
    if forget_on_recover then
      Some
        (fun v ->
          if census_incremental then begin
            incr live;
            if Bitset.get informed v then decr down_informed
          end;
          Bitset.clear informed v;
          state.(v) <- protocol.init ~informed:false)
    else if census_incremental then
      Some
        (fun v ->
          incr live;
          if Bitset.get informed v then begin
            incr know;
            decr down_informed
          end)
    else None
  in
  let informed_fn v = Bitset.get informed v in
  (* Decision cache accessors, hoisted out of the round loop (the
     closures close over [cur_round] instead of the round variable). *)
  let cur_round = ref 0 in
  let decide_at v =
    let r = !cur_round in
    let logical = r - skew v in
    let d =
      if logical < 1 then Protocol.silent
      else protocol.decide state.(v) ~round:logical
    in
    Bitset.assign dec_push v d.push;
    Bitset.assign dec_pull v d.pull;
    stamp.(v) <- r
  in
  let push_of v =
    if stamp.(v) <> !cur_round then decide_at v;
    Bitset.get dec_push v
  in
  let pull_of v =
    if stamp.(v) <> !cur_round then decide_at v;
    Bitset.get dec_pull v
  in
  (* Quiescence is a pure conjunction over informed live nodes, so the
     scan may exit at the first talkative node; remembering that node
     as a witness makes the steady-state check O(1) — it stays
     talkative round after round until the protocol winds down, and
     only then does a full scan run (right before the loop stops). *)
  let witness = ref 0 in
  let quiet_at r v =
    let logical = r + 1 - skew v in
    logical >= 1 && protocol.quiescent state.(v) ~round:logical
  in
  let all_quiet_fast r =
    if Fault.may_recover frt && !down_informed > 0 then false
    else begin
      let w = !witness in
      if
        w < cap && topology.alive w && Fault.active frt w
        && Bitset.get informed w
        && not (quiet_at r w)
      then false
      else begin
        let v = ref 0 and quiet = ref true in
        while !quiet && !v < cap do
          let u = !v in
          if
            topology.alive u && Fault.active frt u && Bitset.get informed u
            && not (quiet_at r u)
          then begin
            quiet := false;
            witness := u
          end;
          incr v
        done;
        !quiet
      end
    end
  in
  let round = ref 0 in
  let stop = ref false in
  while (not !stop) && !round < protocol.horizon + max_skew do
    incr round;
    let r = !round in
    cur_round := r;
    Fault.begin_round ?on_recover ?on_crash frt ~rng ~round:r
      ~degree:topology.degree ~alive:topology.alive ~informed:informed_fn;
    let push_now = ref 0 and pull_now = ref 0 and channels_now = ref 0 in
    for u = 0 to cap - 1 do
      if
        topology.alive u && Fault.active frt u
        && (match gate with
           | None -> true
           | Some g -> g ~informed:(Bitset.get informed u) ~node:u ~round:r)
      then begin
        let d = topology.degree u in
        if d > 0 then begin
          let k = Selector.select selector ~rng ~node:u ~degree:d ~out:scratch in
          for i = 0 to k - 1 do
            let w = topology.neighbor u scratch.(i) in
            if topology.alive w && Fault.active frt w && Fault.open_ok frt rng
            then begin
              incr channels_now;
              if Bitset.get informed u && push_of u
                 && Fault.push_ok frt rng ~sender:u
              then begin
                incr push_now;
                if Bitset.get informed w || Bitset.get pending w then
                  record_dup u
                else mark w
              end;
              if Bitset.get informed w && pull_of w
                 && Fault.pull_ok frt rng ~sender:w
              then begin
                incr pull_now;
                if Bitset.get informed u || Bitset.get pending u then
                  record_dup w
                else mark u
              end
            end
          done
        end
      end
    done;
    let newly = !pending_len in
    for i = 0 to !pending_len - 1 do
      let v = pending_ids.(i) in
      Bitset.clear pending v;
      Bitset.set informed v;
      state.(v) <- protocol.receive state.(v) ~round:(max 0 (r - skew v))
    done;
    pending_len := 0;
    (* Every marked node was alive and active when marked (both are
       checked before a channel carries anything, and crashes land only
       at round start), so the incremental count moves by [newly]. *)
    if census_incremental then know := !know + newly;
    for i = 0 to !dup_len - 1 do
      let v = dup_ids.(i) in
      let logical = max 0 (r - skew v) in
      for _ = 1 to dups.(v) do
        state.(v) <- protocol.feedback state.(v) ~round:logical
      done;
      dups.(v) <- 0
    done;
    dup_len := 0;
    total_push := !total_push + !push_now;
    total_pull := !total_pull + !pull_now;
    total_channels := !total_channels + !channels_now;
    (match on_round_end with Some f -> f r | None -> ());
    (match reset with
    | Some f ->
        (* Ids handed back by the churn harness (fresh joins, id reuse)
           restart uninformed regardless of any stale flag. *)
        List.iter
          (fun v ->
            if v >= 0 && v < cap then begin
              if census_incremental && Bitset.get informed v
                 && topology.alive v
              then
                if Fault.active frt v then decr know else decr down_informed;
              Bitset.clear informed v;
              state.(v) <- protocol.init ~informed:false
            end)
          (f ())
    | None -> ());
    let all_quiet =
      if census_incremental then all_quiet_fast r
      else begin
        (* Census after churn: [alive] may have changed arbitrarily, so
           recount; completion means every live node knows. *)
        live := 0;
        know := 0;
        let quiet = ref true in
        for v = 0 to cap - 1 do
          if topology.alive v then begin
            if Fault.active frt v then begin
              incr live;
              if Bitset.get informed v then begin
                incr know;
                if not (quiet_at r v) then quiet := false
              end
            end
            else if Bitset.get informed v && Fault.may_recover frt then
              (* An informed crashed node may come back and resume its
                 schedule; don't declare the system quiet without it. *)
              quiet := false
          end
        done;
        !quiet
      end
    in
    (match trace with
    | Some t ->
        Trace.add t
          {
            Trace.round = r;
            informed = !know;
            newly;
            push_tx = !push_now;
            pull_tx = !pull_now;
            channels = !channels_now;
          }
    | None -> ());
    if !completion = None && !live > 0 && !know = !live then completion := Some r;
    if all_quiet then stop := true;
    if stop_when_complete && !completion <> None then stop := true
  done;
  let live = ref 0 and know = ref 0 in
  let down = ref [] in
  for v = cap - 1 downto 0 do
    if topology.alive v then
      if Fault.active frt v then begin
        incr live;
        if Bitset.get informed v then incr know
      end
      else down := v :: !down
  done;
  {
    rounds = !round;
    completion_round = !completion;
    informed = !know;
    population = !live;
    push_tx = !total_push;
    pull_tx = !total_pull;
    channels = !total_channels;
    knows = Bitset.to_bool_array informed;
    down = !down;
    repair = [];
    trace;
  }

type 'st epoch_plan = {
  epoch_protocol : 'st Protocol.t;
  epoch_gate : informed:bool -> node:int -> round:int -> bool;
}

let run_epochs ?(fault = Fault.none) ?(collect_trace = false)
    ?(forget_on_recover = false) ?reset ?on_round_end ?skew ?(max_epochs = 8)
    ~rng ~topology ~protocol ~repair ~sources () =
  if max_epochs < 0 then invalid_arg "Engine.run_epochs: max_epochs < 0";
  let main =
    run ~fault ~collect_trace ~forget_on_recover ?reset ?on_round_end ?skew
      ~rng ~topology ~protocol ~sources ()
  in
  let cap = topology.Topology.capacity in
  let knows = Array.copy main.knows in
  (* Nodes still down when a run stops would come back up under the next
     epoch's fresh fault runtime; with amnesia their knowledge is gone. *)
  let forget_down r =
    if forget_on_recover then List.iter (fun v -> knows.(v) <- false) r.down
  in
  forget_down main;
  let live_census () =
    let live = ref 0 and know = ref 0 in
    for v = 0 to cap - 1 do
      if topology.Topology.alive v then begin
        incr live;
        if knows.(v) then incr know
      end
    done;
    (!live, !know)
  in
  let stats = ref [] in
  let rounds = ref main.rounds in
  let push = ref main.push_tx in
  let pull = ref main.pull_tx in
  let chans = ref main.channels in
  let down = ref main.down in
  let epoch = ref 0 in
  let continue = ref true in
  while !continue && !epoch < max_epochs do
    let live, know = live_census () in
    if live = 0 || know = live || know = 0 then
      (* covered, empty network, or the rumor died out: nothing to pull *)
      continue := false
    else begin
      incr epoch;
      let srcs = ref [] in
      for v = cap - 1 downto 0 do
        if topology.Topology.alive v && knows.(v) then srcs := v :: !srcs
      done;
      let plan = repair ~epoch:!epoch ~knows in
      (* Epochs fight the channel, not the reaper: communication faults
         (loss, call failure, bursts) stay on, while the node-dynamics
         modes (crash_rate, strike) act on the main timeline only —
         otherwise perpetual mid-repair amnesia makes the total-coverage
         target unreachable by construction. *)
      let epoch_fault = { fault with Fault.crash_rate = 0.; strike = None } in
      let r =
        run ~fault:epoch_fault ~forget_on_recover ~stop_when_complete:true
          ~gate:plan.epoch_gate ~rng ~topology ~protocol:plan.epoch_protocol
          ~sources:!srcs ()
      in
      (* The epoch restarted from every knower, so its final flags are
         the current truth (amnesia included): replace, don't merge. *)
      Array.blit r.knows 0 knows 0 cap;
      forget_down r;
      stats :=
        {
          epoch = !epoch;
          epoch_rounds = r.rounds;
          epoch_informed = r.informed;
          epoch_population = r.population;
          repair_push_tx = r.push_tx;
          repair_pull_tx = r.pull_tx;
          repair_channels = r.channels;
        }
        :: !stats;
      rounds := !rounds + r.rounds;
      push := !push + r.push_tx;
      pull := !pull + r.pull_tx;
      chans := !chans + r.channels;
      down := r.down
    end
  done;
  let live, know = live_census () in
  {
    rounds = !rounds;
    completion_round = main.completion_round;
    informed = know;
    population = live;
    push_tx = !push;
    pull_tx = !pull;
    channels = !chans;
    knows;
    down = !down;
    repair = List.rev !stats;
    trace = main.trace;
  }
