(* The synchronous single-rumor driver: one kernel table under a full
   fault runtime. All round machinery lives in {!Kernel}. *)

type epoch_stat = Kernel.epoch_stat = {
  epoch : int;
  epoch_rounds : int;
  epoch_informed : int;
  epoch_population : int;
  repair_push_tx : int;
  repair_pull_tx : int;
  repair_channels : int;
}

type result = {
  rounds : int;
  completion_round : int option;
  informed : int;
  population : int;
  push_tx : int;
  pull_tx : int;
  channels : int;
  knows : Bitset.t;
  down : int list;
  repair : epoch_stat list;
  trace : Trace.t option;
}

let transmissions r = r.push_tx + r.pull_tx
let success r = r.population > 0 && r.informed = r.population
let epochs_used r = List.length r.repair

let repair_tx r =
  List.fold_left
    (fun acc e -> acc + e.repair_push_tx + e.repair_pull_tx)
    0 r.repair

let coverage r =
  if r.population = 0 then 0.
  else float_of_int r.informed /. float_of_int r.population

let validate ~where ~topology sources =
  let cap = topology.Topology.capacity in
  if sources = [] then invalid_arg (where ^ ": no sources");
  List.iter
    (fun s ->
      if s < 0 || s >= cap || not (topology.Topology.alive s) then
        invalid_arg (where ^ ": bad source"))
    sources

let of_kernel ~repair (k : Kernel.result) =
  let t = k.Kernel.tables.(0) in
  {
    rounds = k.Kernel.rounds;
    completion_round = t.Kernel.completion_round;
    informed = t.Kernel.informed;
    population = k.Kernel.population;
    push_tx = t.Kernel.push_tx;
    pull_tx = t.Kernel.pull_tx;
    channels = k.Kernel.channels;
    knows = t.Kernel.knows;
    down = k.Kernel.down;
    repair;
    trace = k.Kernel.trace;
  }

let run ?(fault = Fault.none) ?collect_trace ?stop_when_complete ?gate
    ?forget_on_recover ?reset ?on_round_end ?skew ?monitor ?packed ~rng
    ~topology ~protocol ~sources () =
  validate ~where:"Engine.run" ~topology sources;
  of_kernel ~repair:[]
    (Kernel.run ~fault:(Kernel.Full fault) ?collect_trace ?stop_when_complete
       ?gate ?forget_on_recover ?reset ?on_round_end ?skew ?monitor ?packed
       ~rng ~topology ~protocol
       ~tables:[| { Kernel.sources; created = 0 } |]
       ())

type 'st epoch_plan = 'st Kernel.epoch_plan = {
  epoch_protocol : 'st Protocol.t;
  epoch_gate : informed:bool -> node:int -> round:int -> bool;
}

let run_epochs ?fault ?collect_trace ?forget_on_recover ?reset ?on_round_end
    ?skew ?(max_epochs = 8) ?monitor ?packed ~rng ~topology ~protocol ~repair
    ~sources () =
  if max_epochs < 0 then invalid_arg "Engine.run_epochs: max_epochs < 0";
  validate ~where:"Engine.run" ~topology sources;
  let k, stats =
    Kernel.run_epochs ?fault ?collect_trace ?forget_on_recover ?reset
      ?on_round_end ?skew ~max_epochs ?monitor ?packed ~rng ~topology ~protocol
      ~repair:(fun ~epoch ~knows -> repair ~epoch ~knows:knows.(0))
      ~tables:[| { Kernel.sources; created = 0 } |]
      ()
  in
  of_kernel ~repair:stats k
