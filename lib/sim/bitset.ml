(* Bytes-backed bitset for per-node boolean flags.

   A [bool array] costs one word (8 bytes) per element; at the
   million-node scale the informed/pending flags alone would occupy
   16 MB and thrash the cache. One bit per node keeps the whole flag
   set of an n = 2^20 network in 128 KB, and an n = 10^7 one in 1.2 MB.

   The buffer is sized in whole 64-bit words so that [cardinal],
   [iter_set] and [next_set] can scan 64 nodes per load. Two invariants
   make the word-level paths correct:

   - indices are bounds-checked against [len] (not against the byte
     buffer), so the padding bits in [len .. 64*words) are unreachable
     through [get]/[set]/[clear]/[assign];
   - padding bits are always zero ([create] and [reset] clear them,
     and nothing else can touch them), so a word-level scan never
     reports a phantom member and [cardinal] never overcounts. *)

type t = { bits : Bytes.t; len : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative length";
  (* Whole 64-bit words, so every word-level load is in bounds. *)
  { bits = Bytes.make (((n + 63) lsr 6) lsl 3) '\000'; len = n }

let length t = t.len

let check t i op =
  if i < 0 || i >= t.len then
    invalid_arg
      (Printf.sprintf "Bitset.%s: index %d out of bounds [0, %d)" op i t.len)

let get t i =
  check t i "get";
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i "set";
  let j = i lsr 3 in
  Bytes.unsafe_set t.bits j
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits j) lor (1 lsl (i land 7))))

let clear t i =
  check t i "clear";
  let j = i lsr 3 in
  Bytes.unsafe_set t.bits j
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits j)
       land lnot (1 lsl (i land 7)) land 0xFF))

let assign t i b = if b then set t i else clear t i
let reset t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

(* --- word-level scans --- *)

let words t = Bytes.length t.bits lsr 3

(* The two 32-bit halves of word [w] as untagged native ints, so the
   per-word arithmetic below never boxes an Int64. *)
let half_lo t w = Int64.to_int (Int64.logand (Bytes.get_int64_le t.bits (w lsl 3)) 0xFFFFFFFFL)
let half_hi t w = Int64.to_int (Int64.shift_right_logical (Bytes.get_int64_le t.bits (w lsl 3)) 32)

(* SWAR popcount on a 32-bit value held in a native int. *)
let pop32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* native ints don't truncate at 32 bits, so mask the count byte *)
  ((x * 0x01010101) lsr 24) land 0xFF

(* Index of the lowest set bit of a non-zero 32-bit value. *)
let ntz32 x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFF = 0 then begin n := !n + 16; x := !x lsr 16 end;
  if !x land 0xFF = 0 then begin n := !n + 8; x := !x lsr 8 end;
  if !x land 0xF = 0 then begin n := !n + 4; x := !x lsr 4 end;
  if !x land 0x3 = 0 then begin n := !n + 2; x := !x lsr 2 end;
  if !x land 0x1 = 0 then incr n;
  !n

let cardinal t =
  let n = ref 0 in
  for w = 0 to words t - 1 do
    n := !n + pop32 (half_lo t w) + pop32 (half_hi t w)
  done;
  !n

let iter_set t f =
  for w = 0 to words t - 1 do
    let base = w lsl 6 in
    let lo = ref (half_lo t w) in
    while !lo <> 0 do
      f (base + ntz32 !lo);
      lo := !lo land (!lo - 1)
    done;
    let hi = ref (half_hi t w) in
    while !hi <> 0 do
      f (base + 32 + ntz32 !hi);
      hi := !hi land (!hi - 1)
    done
  done

let next_set t i =
  if i < 0 then invalid_arg "Bitset.next_set: negative index";
  if i >= t.len then -1
  else begin
    let nw = words t in
    let result = ref (-1) in
    let w = ref (i lsr 6) in
    (* First word: mask off the bits below [i]. *)
    let off = i land 63 in
    let lo = if off >= 32 then 0 else half_lo t !w land (-1 lsl off) land 0xFFFFFFFF in
    let hi =
      if off <= 32 then half_hi t !w land (-1 lsl max 0 (off - 32)) land 0xFFFFFFFF
      else half_hi t !w land (-1 lsl (off - 32)) land 0xFFFFFFFF
    in
    if lo <> 0 then result := (!w lsl 6) + ntz32 lo
    else if hi <> 0 then result := (!w lsl 6) + 32 + ntz32 hi
    else begin
      incr w;
      while !result < 0 && !w < nw do
        let lo = half_lo t !w in
        if lo <> 0 then result := (!w lsl 6) + ntz32 lo
        else begin
          let hi = half_hi t !w in
          if hi <> 0 then result := (!w lsl 6) + 32 + ntz32 hi
        end;
        if !result < 0 then incr w
      done
    end;
    (* Padding bits are always zero, so a hit is always < len. *)
    !result
  end

let to_bool_array t = Array.init t.len (get t)

let copy t = { bits = Bytes.copy t.bits; len = t.len }

let blit ~src ~dst =
  if src.len <> dst.len then
    invalid_arg
      (Printf.sprintf "Bitset.blit: length mismatch (%d vs %d)" src.len
         dst.len);
  Bytes.blit src.bits 0 dst.bits 0 (Bytes.length src.bits)
