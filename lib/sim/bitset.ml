(* Bytes-backed bitset for per-node boolean flags.

   A [bool array] costs one word (8 bytes) per element; at the
   million-node scale the informed/pending flags alone would occupy
   16 MB and thrash the cache. One bit per node keeps the whole flag
   set of an n = 2^20 network in 128 KB. *)

type t = { bits : Bytes.t; len : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative length";
  { bits = Bytes.make ((n + 7) lsr 3) '\000'; len = n }

let length t = t.len

let get t i =
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  let j = i lsr 3 in
  Bytes.set t.bits j
    (Char.unsafe_chr (Char.code (Bytes.get t.bits j) lor (1 lsl (i land 7))))

let clear t i =
  let j = i lsr 3 in
  Bytes.set t.bits j
    (Char.unsafe_chr
       (Char.code (Bytes.get t.bits j) land lnot (1 lsl (i land 7)) land 0xFF))

let assign t i b = if b then set t i else clear t i
let reset t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let cardinal t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if get t i then incr n
  done;
  !n

let to_bool_array t = Array.init t.len (get t)
