(** Bytes-backed bitset: one bit per node id, word-parallel scans.

    The engine's per-node flags ([informed], [pending], the decision
    cache) live here instead of in [bool array]s — 8× less memory and
    far better cache behaviour at the n = 2^20..10^8 scale the paper's
    asymptotic separations need. The backing buffer is sized in whole
    64-bit words; {!cardinal}, {!iter_set} and {!next_set} scan 64 bits
    per load, so walking an informed set costs O(words touched), not
    O(capacity) bit probes.

    Invariants: indices are bounds-checked against {!length} (an index
    in the padding of the last word raises [Invalid_argument] instead
    of silently reading or corrupting padding bits), and padding bits
    are always zero — which is exactly what keeps the word-level scans
    honest after arbitrary [set]/[clear]/[assign] churn. *)

type t

val create : int -> t
(** [create n] is a bitset of [n] bits, all unset.
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int
(** Number of bits. *)

val get : t -> int -> bool
(** @raise Invalid_argument if the index is outside [\[0, length)]. *)

val set : t -> int -> unit
(** @raise Invalid_argument if the index is outside [\[0, length)]. *)

val clear : t -> int -> unit
(** @raise Invalid_argument if the index is outside [\[0, length)]. *)

val assign : t -> int -> bool -> unit
(** [assign t i b] sets bit [i] to [b].
    @raise Invalid_argument if the index is outside [\[0, length)]. *)

val reset : t -> unit
(** Unset every bit. *)

val cardinal : t -> int
(** Number of set bits, by word-level popcount (no per-bit probing). *)

val iter_set : t -> (int -> unit) -> unit
(** [iter_set t f] applies [f] to every set index in increasing order,
    skipping zero words 64 bits at a time. *)

val next_set : t -> int -> int
(** [next_set t i] is the smallest set index [>= i], or [-1] if there
    is none. [i >= length t] returns [-1], so [next_set t (j + 1)]
    iterates without a separate end test.
    @raise Invalid_argument if [i < 0]. *)

val to_bool_array : t -> bool array
(** Expand to a [bool array] of [length] elements. *)

val copy : t -> t
(** An independent bitset with the same length and contents. *)

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with the contents of [src], word-parallel.
    @raise Invalid_argument if the lengths differ. *)
