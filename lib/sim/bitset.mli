(** Bytes-backed bitset: one bit per node id.

    The engine's per-node flags ([informed], [pending], the decision
    cache) live here instead of in [bool array]s — 8× less memory and
    far better cache behaviour at the n = 2^20 scale the paper's
    asymptotic separations need. Indices are byte-bounds-checked (via
    the underlying [Bytes] accessors); callers keep indices in
    [0, length). *)

type t

val create : int -> t
(** [create n] is a bitset of [n] bits, all unset.
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int
(** Number of bits. *)

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val assign : t -> int -> bool -> unit
(** [assign t i b] sets bit [i] to [b]. *)

val reset : t -> unit
(** Unset every bit. *)

val cardinal : t -> int
(** Number of set bits. *)

val to_bool_array : t -> bool array
(** Expand to a [bool array] of [length] elements. *)
