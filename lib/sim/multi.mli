(** Broadcasting many rumors over shared channels.

    The random phone call model opens channels {e blindly} — every node
    calls whether or not it has something to say. The paper (after
    [25]) argues this is the right model when messages are generated
    frequently, because one round's channels carry every active rumor
    at once and the per-message channel cost vanishes. This runner
    simulates exactly that: [k] rumors with independent creation times
    share one channel set per round, each following its own copy of the
    protocol schedule (ages are per-rumor), with per-rumor transmission
    accounting. *)

type message = { source : int; created : int }
(** A rumor, injected at [source] at the end of round [created]
    (so it first transmits in round [created + 1]; use [created = 0]
    for a rumor present from the start). *)

type message_result = {
  completion_round : int option;
      (** absolute round at whose end every live node knew this rumor *)
  informed : int;  (** live nodes that ended up knowing it *)
  transmissions : int;  (** copies of this rumor delivered *)
}

type result = {
  rounds : int;  (** rounds executed *)
  channels : int;  (** channels opened — shared by all rumors *)
  population : int;  (** live nodes at the end *)
  messages : message_result array;  (** indexed like the input list *)
}

val total_transmissions : result -> int
(** Sum of per-rumor transmissions. *)

val all_complete : result -> bool
(** Every rumor reached every live node. *)

val run :
  ?fault:Fault.t ->
  rng:Rumor_rng.Rng.t ->
  topology:Topology.t ->
  protocol:'st Protocol.t ->
  messages:message list ->
  unit ->
  result
(** [run ~messages ()] drives all rumors to quiescence (each rumor [m]
    runs its protocol with logical round [round - m.created]) and stops
    when every rumor is quiescent on every informed node, or at
    [max created + protocol.horizon]. [fault] is sampled through the
    stateless view ({!Fault.channel_ok}, {!Fault.delivery_ok} with the
    transmission's direction): independent failures and asymmetric
    push/pull loss apply; burst and crash modes need {!Engine.run}'s
    runtime and are ignored here.
    @raise Invalid_argument if [messages] is empty or a source is dead
    or out of range. *)
