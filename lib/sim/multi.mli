(** Broadcasting many rumors over shared channels.

    The random phone call model opens channels {e blindly} — every node
    calls whether or not it has something to say. The paper (after
    [25]) argues this is the right model when messages are generated
    frequently, because one round's channels carry every active rumor
    at once and the per-message channel cost vanishes. This runner
    simulates exactly that: [k] rumors with independent creation times
    share one channel set per round, each following its own copy of the
    protocol schedule (ages are per-rumor), with per-rumor transmission
    accounting. It is a thin instantiation of {!Kernel} — one table per
    message under {!Kernel.Stateless} fault sampling — and inherits the
    kernel's stopping rule, hook surface and census machinery. *)

type message = { source : int; created : int }
(** A rumor, injected at [source] at the end of round [created]
    (so it first transmits in round [created + 1]; use [created = 0]
    for a rumor present from the start). *)

type message_result = {
  completion_round : int option;
      (** absolute round at whose end every live node knew this rumor *)
  informed : int;  (** live nodes that ended up knowing it *)
  transmissions : int;  (** copies of this rumor delivered *)
}

type result = {
  rounds : int;  (** rounds executed *)
  channels : int;  (** channels opened — shared by all rumors *)
  population : int;  (** live nodes at the end *)
  messages : message_result array;  (** indexed like the input list *)
  repair : Kernel.epoch_stat list;
      (** per-epoch repair accounting, oldest first; [[]] for plain
          {!run} results *)
  trace : Trace.t option;
      (** per-round rows when requested ([informed] / [newly] sum over
          rumors) *)
}

val total_transmissions : result -> int
(** Sum of per-rumor transmissions. *)

val all_complete : result -> bool
(** Every rumor reached every live node. *)

val run :
  ?fault:Fault.t ->
  ?collect_trace:bool ->
  ?on_round_end:(int -> unit) ->
  ?reset:(unit -> int list) ->
  ?monitor:Invariant.t ->
  ?packed:bool ->
  rng:Rumor_rng.Rng.t ->
  topology:Topology.t ->
  protocol:'st Protocol.t ->
  messages:message list ->
  unit ->
  result
(** [run ~messages ()] drives all rumors to the kernel's stopping rule
    (each rumor [m] runs its protocol with logical round
    [round - m.created]; see {!Kernel} for horizon and quiescence).
    [fault] is sampled through the stateless view ({!Fault.channel_ok},
    {!Fault.delivery_ok} with the transmission's direction): independent
    failures and asymmetric push/pull loss apply; burst and crash modes
    need a fault runtime ({!Kernel.Full}, as driven by {!Engine.run})
    and are ignored here. [on_round_end] and [reset] behave as on
    {!Engine.run} — installing [on_round_end] switches the census to
    the full per-round recount so churn stays correct; [reset] ids
    forget {e every} rumor.
    @raise Invalid_argument if [messages] is empty or a source is dead
    or out of range. *)

val run_epochs :
  ?fault:Fault.t ->
  ?collect_trace:bool ->
  ?forget_on_recover:bool ->
  ?on_round_end:(int -> unit) ->
  ?reset:(unit -> int list) ->
  ?max_epochs:int ->
  ?monitor:Invariant.t ->
  ?packed:bool ->
  rng:Rumor_rng.Rng.t ->
  topology:Topology.t ->
  protocol:'st Protocol.t ->
  repair:(epoch:int -> knows:Bitset.t array -> 'r Kernel.epoch_plan) ->
  messages:message list ->
  unit ->
  result
(** Self-healing repair epochs for a multi-rumor workload
    ({!Kernel.run_epochs}; the analogue of {!Engine.run_epochs}).
    Unlike {!run}, the main schedule and every epoch drive the whole
    plan through a fault runtime, so burst and crash modes apply.
    [repair] receives one [knows] bitset per message (indexed like
    [messages]); each epoch restarts every rumor from all its current
    knowers with the plan's gate installed. The result aggregates
    rounds / channels / per-rumor transmissions across the main run
    and all epochs; [repair] holds one {!Kernel.epoch_stat} per epoch
    ([epoch_informed] counts nodes informed of {e every} rumor).
    @raise Invalid_argument if [max_epochs < 0] or [messages] is
    invalid for {!run}. *)
