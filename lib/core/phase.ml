type variant = Small | Large

let variant_to_string = function Small -> "small-degree" | Large -> "large-degree"

let auto_variant (p : Params.t) =
  let ll = Params.log2 (Params.log2 (float_of_int p.Params.n_estimate)) in
  if float_of_int p.Params.d <= 3. *. Float.max 1. ll then Small else Large

type schedule = {
  variant : variant;
  p1_end : int;
  p2_end : int;
  p3_end : int;
  last : int;
}

type phase = Phase1 | Phase2 | Phase3 | Phase4 | Finished

let schedule (p : Params.t) variant =
  let open Params in
  let lg = log2 (float_of_int p.n_estimate) in
  let llg = loglog p in
  let p1_end = int_of_float (ceil (p.alpha *. lg)) in
  let p2_end = int_of_float (ceil (p.alpha *. (lg +. llg))) in
  match variant with
  | Small ->
      let p3_end = p2_end + 1 in
      (* Phase 4 is "ceil(alpha log n) further rounds" after the pull
         round, so anchor it at p3_end. The earlier closed form
         2*ceil(alpha*lg) + ceil(alpha*llg) undercounts by one round
         whenever ceil(a*lg) + ceil(a*llg) > ceil(a*(lg+llg)). *)
      let last = p3_end + p1_end in
      { variant; p1_end; p2_end; p3_end; last }
  | Large ->
      let p3_end = int_of_float (ceil ((p.alpha *. lg) +. (2. *. p.alpha *. llg))) in
      let p3_end = max p3_end (p2_end + 1) in
      { variant; p1_end; p2_end; p3_end; last = p3_end }

let phase_of s ~round =
  if round <= s.p1_end then Phase1
  else if round <= s.p2_end then Phase2
  else if round <= s.p3_end then Phase3
  else if round <= s.last then
    match s.variant with Small -> Phase4 | Large -> Finished
  else Finished
