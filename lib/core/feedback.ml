module Protocol = Rumor_sim.Protocol
module Selector = Rumor_sim.Selector
module Rng = Rumor_rng.Rng

type state =
  | Uninformed
  | Active of { received : int; heard_back : int }
  | Removed  (* informed but no longer spreading *)

let check ~k ~horizon =
  if k < 1 then invalid_arg "Feedback: k < 1";
  if horizon < 1 then invalid_arg "Feedback: horizon < 1"

let init ~informed =
  if informed then Active { received = 0; heard_back = 0 } else Uninformed

let receive state ~round =
  match state with
  | Uninformed -> Active { received = round; heard_back = 0 }
  | Active _ | Removed -> state

let decide state ~round =
  ignore round;
  match state with
  | Active _ -> Protocol.push_pull
  | Uninformed | Removed -> Protocol.silent

(* Blind variants advance on every active round; [decide] is called
   exactly once per round per informed node (the engine caches it), but
   mutating state from [decide] is not possible — instead blind
   variants interpret the age [round - received]. *)

let make ~name ~fanout ~horizon ~feedback ~quiescent_active =
  {
    Protocol.name;
    selector = Selector.Uniform { fanout };
    horizon;
    init;
    decide;
    receive;
    feedback;
    quiescent =
      (fun state ~round ->
        match state with
        | Uninformed | Removed -> true
        | Active _ as st -> round > horizon || quiescent_active st ~round);
  }

let feedback_coin ~rng ~k ?(fanout = 1) ~horizon () =
  check ~k ~horizon;
  let p = 1. /. float_of_int k in
  make
    ~name:(Printf.sprintf "demers-feedback-coin-k%d" k)
    ~fanout ~horizon
    ~feedback:(fun state ~round ->
      ignore round;
      match state with
      | Active _ when Rng.bernoulli rng p -> Removed
      | Active _ | Uninformed | Removed -> state)
    ~quiescent_active:(fun _ ~round -> ignore round; false)

let feedback_counter ~k ?(fanout = 1) ~horizon () =
  check ~k ~horizon;
  make
    ~name:(Printf.sprintf "demers-feedback-counter-k%d" k)
    ~fanout ~horizon
    ~feedback:(fun state ~round ->
      ignore round;
      match state with
      | Active { received; heard_back } ->
          if heard_back + 1 >= k then Removed
          else Active { received; heard_back = heard_back + 1 }
      | Uninformed | Removed -> state)
    ~quiescent_active:(fun _ ~round -> ignore round; false)

let blind_coin ~rng ~k ?(fanout = 1) ~horizon () =
  check ~k ~horizon;
  let p = 1. /. float_of_int k in
  (* Survival of the blind coin is memoryless; sample the death age once
     per node at first receipt by folding the geometric into state via
     absorb-free bookkeeping: simplest honest encoding is to flip when
     the node becomes active and store the age at which it stops. *)
  make
    ~name:(Printf.sprintf "demers-blind-coin-k%d" k)
    ~fanout ~horizon
    ~feedback:Protocol.no_feedback
    ~quiescent_active:(fun _ ~round -> ignore round; false)
  |> fun proto ->
  {
    proto with
    Protocol.receive =
      (fun state ~round ->
        match state with
        | Uninformed ->
            (* Age at which interest dies: 1 + Geometric(p) rounds. *)
            let lifetime = 1 + Rumor_rng.Dist.geometric rng ~p in
            Active { received = round; heard_back = lifetime }
        | Active _ | Removed -> state);
    init =
      (fun ~informed ->
        if informed then begin
          let lifetime = 1 + Rumor_rng.Dist.geometric rng ~p in
          Active { received = 0; heard_back = lifetime }
        end
        else Uninformed);
    decide =
      (fun state ~round ->
        match state with
        | Active { received; heard_back = lifetime } ->
            if round - received <= lifetime then Protocol.push_pull
            else Protocol.silent
        | Uninformed | Removed -> Protocol.silent);
    quiescent =
      (fun state ~round ->
        match state with
        | Uninformed | Removed -> true
        | Active { received; heard_back = lifetime } ->
            round - received > lifetime);
  }

let blind_counter ~k ?(fanout = 1) ~horizon () =
  check ~k ~horizon;
  let proto =
    make
      ~name:(Printf.sprintf "demers-blind-counter-k%d" k)
      ~fanout ~horizon ~feedback:Protocol.no_feedback
      ~quiescent_active:(fun _ ~round -> ignore round; false)
  in
  {
    proto with
    Protocol.decide =
      (fun state ~round ->
        match state with
        | Active { received; _ } ->
            if round - received <= k then Protocol.push_pull
            else Protocol.silent
        | Uninformed | Removed -> Protocol.silent);
    quiescent =
      (fun state ~round ->
        match state with
        | Uninformed | Removed -> true
        | Active { received; _ } -> round - received > k);
  }
