module Protocol = Rumor_sim.Protocol
module Selector = Rumor_sim.Selector
module Cells = Rumor_sim.Cells
module Rng = Rumor_rng.Rng

type state =
  | Uninformed
  | Active of { received : int; heard_back : int }
  | Removed  (* informed but no longer spreading *)

let check ~k ~horizon =
  if k < 1 then invalid_arg "Feedback: k < 1";
  if horizon < 1 then invalid_arg "Feedback: horizon < 1"

let init ~informed =
  if informed then Active { received = 0; heard_back = 0 } else Uninformed

let receive state ~round =
  match state with
  | Uninformed -> Active { received = round; heard_back = 0 }
  | Active _ | Removed -> state

let decide state ~round =
  ignore round;
  match state with
  | Active _ -> Protocol.push_pull
  | Uninformed | Removed -> Protocol.silent

(* Packed codes: 0 = Uninformed, 1 = Removed, and an Active node packs
   both counters into [2 + heard_back * stride + received] with
   [stride = horizon + 1] (receipt rounds never exceed the horizon).
   Only the counter variants are packable: the coin variants draw from
   [rng] inside [feedback]/[receive], which the packed kernel path —
   applying staged updates in id order, not delivery order — must never
   do (see {!Protocol.packed_ops}). *)

let encode_packed ~stride state =
  match state with
  | Uninformed -> 0
  | Removed -> 1
  | Active { received; heard_back } -> 2 + (heard_back * stride) + received

let decode_packed ~stride c =
  if c = 0 then Uninformed
  else if c = 1 then Removed
  else Active { received = (c - 2) mod stride; heard_back = (c - 2) / stride }

let packed_counter ~k ~horizon ~p_decide ~p_feedback ~p_quiescent =
  let stride = horizon + 1 in
  let max_code = 1 + (k * stride) in
  if max_code > 0xFFFFFFFF then None
  else
    let bits = Cells.bits_of_width (Cells.width_for max_code) in
    Some
      {
        Protocol.ops =
          {
            Protocol.bits;
            p_init = (fun ~informed -> if informed then 2 else 0);
            p_decide;
            p_receive = (fun c ~round -> if c = 0 then 2 + round else c);
            p_feedback;
            p_quiescent;
          };
        encode = encode_packed ~stride;
        decode = decode_packed ~stride;
      }

(* Blind variants advance on every active round; [decide] is called
   exactly once per round per informed node (the engine caches it), but
   mutating state from [decide] is not possible — instead blind
   variants interpret the age [round - received]. *)

let make ~name ~fanout ~horizon ~feedback ~quiescent_active ~packed =
  {
    Protocol.name;
    selector = Selector.Uniform { fanout };
    horizon;
    init;
    decide;
    receive;
    feedback;
    quiescent =
      (fun state ~round ->
        match state with
        | Uninformed | Removed -> true
        | Active _ as st -> round > horizon || quiescent_active st ~round);
    packed;
  }

let feedback_coin ~rng ~k ?(fanout = 1) ~horizon () =
  check ~k ~horizon;
  let p = 1. /. float_of_int k in
  (* [feedback] draws — not packable by contract. *)
  make
    ~name:(Printf.sprintf "demers-feedback-coin-k%d" k)
    ~fanout ~horizon
    ~feedback:(fun state ~round ->
      ignore round;
      match state with
      | Active _ when Rng.bernoulli rng p -> Removed
      | Active _ | Uninformed | Removed -> state)
    ~quiescent_active:(fun _ ~round -> ignore round; false)
    ~packed:None

let feedback_counter ~k ?(fanout = 1) ~horizon () =
  check ~k ~horizon;
  let stride = horizon + 1 in
  make
    ~name:(Printf.sprintf "demers-feedback-counter-k%d" k)
    ~fanout ~horizon
    ~feedback:(fun state ~round ->
      ignore round;
      match state with
      | Active { received; heard_back } ->
          if heard_back + 1 >= k then Removed
          else Active { received; heard_back = heard_back + 1 }
      | Uninformed | Removed -> state)
    ~quiescent_active:(fun _ ~round -> ignore round; false)
    ~packed:
      (packed_counter ~k ~horizon
         ~p_decide:(fun c ~round ->
           ignore round;
           if c >= 2 then Protocol.push_pull else Protocol.silent)
         ~p_feedback:(fun c ~round ->
           ignore round;
           if c < 2 then c
           else if ((c - 2) / stride) + 1 >= k then 1
           else c + stride)
         ~p_quiescent:(fun c ~round -> c < 2 || round > horizon))

let blind_coin ~rng ~k ?(fanout = 1) ~horizon () =
  check ~k ~horizon;
  let p = 1. /. float_of_int k in
  (* Survival of the blind coin is memoryless; sample the death age once
     per node at first receipt by folding the geometric into state via
     absorb-free bookkeeping: simplest honest encoding is to flip when
     the node becomes active and store the age at which it stops. *)
  make
    ~name:(Printf.sprintf "demers-blind-coin-k%d" k)
    ~fanout ~horizon
    ~feedback:Protocol.no_feedback
    ~quiescent_active:(fun _ ~round -> ignore round; false)
    ~packed:None
  |> fun proto ->
  {
    proto with
    Protocol.receive =
      (fun state ~round ->
        match state with
        | Uninformed ->
            (* Age at which interest dies: 1 + Geometric(p) rounds. *)
            let lifetime = 1 + Rumor_rng.Dist.geometric rng ~p in
            Active { received = round; heard_back = lifetime }
        | Active _ | Removed -> state);
    init =
      (fun ~informed ->
        if informed then begin
          let lifetime = 1 + Rumor_rng.Dist.geometric rng ~p in
          Active { received = 0; heard_back = lifetime }
        end
        else Uninformed);
    decide =
      (fun state ~round ->
        match state with
        | Active { received; heard_back = lifetime } ->
            if round - received <= lifetime then Protocol.push_pull
            else Protocol.silent
        | Uninformed | Removed -> Protocol.silent);
    quiescent =
      (fun state ~round ->
        match state with
        | Uninformed | Removed -> true
        | Active { received; heard_back = lifetime } ->
            round - received > lifetime);
    (* [receive]/[init] draw the geometric — keep the boxed path. *)
    packed = None;
  }

let blind_counter ~k ?(fanout = 1) ~horizon () =
  check ~k ~horizon;
  let stride = horizon + 1 in
  let proto =
    make
      ~name:(Printf.sprintf "demers-blind-counter-k%d" k)
      ~fanout ~horizon ~feedback:Protocol.no_feedback
      ~quiescent_active:(fun _ ~round -> ignore round; false)
      ~packed:None
  in
  {
    proto with
    Protocol.decide =
      (fun state ~round ->
        match state with
        | Active { received; _ } ->
            if round - received <= k then Protocol.push_pull
            else Protocol.silent
        | Uninformed | Removed -> Protocol.silent);
    quiescent =
      (fun state ~round ->
        match state with
        | Uninformed | Removed -> true
        | Active { received; _ } -> round - received > k);
    (* The record update replaced [decide]/[quiescent], so the packed
       ops are stated here to match the {e overridden} behaviour. *)
    packed =
      packed_counter ~k ~horizon
        ~p_decide:(fun c ~round ->
          if c < 2 then Protocol.silent
          else if round - ((c - 2) mod stride) <= k then Protocol.push_pull
          else Protocol.silent)
        ~p_feedback:Protocol.p_no_feedback
        ~p_quiescent:(fun c ~round ->
          c < 2 || round - ((c - 2) mod stride) > k);
  }
