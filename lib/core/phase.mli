(** Phase schedules of Algorithms 1 and 2 (Section 3).

    Rounds are numbered from 1 (the rumor is created at time 0). For
    the small-degree Algorithm 1:

    - phase 1: rounds [1 .. ceil(alpha*log n)] — newly informed push once;
    - phase 2: next [ceil(alpha*log log n)] rounds — every informed
      node pushes;
    - phase 3: a single round of pull;
    - phase 4: the next [ceil(alpha*log n)] rounds — nodes first
      informed in phase 3 or 4 ("active") push.

    For the large-degree Algorithm 2 phases 1–2 coincide and phase 3 is
    [~alpha*log log n] rounds of pull with no phase 4. *)

type variant =
  | Small  (** Algorithm 1, for [delta <= d <= delta log log n] *)
  | Large  (** Algorithm 2, for [delta log log n <= d <= delta log n] *)

val variant_to_string : variant -> string

val auto_variant : Params.t -> variant
(** Pick the variant the paper prescribes for the given degree:
    [Small] when [d <= 3 * log2 (log2 n_estimate)], [Large] otherwise
    (the factor 3 plays the role of the paper's constant [delta]). *)

type schedule = {
  variant : variant;
  p1_end : int;  (** last round of phase 1 *)
  p2_end : int;  (** last round of phase 2 *)
  p3_end : int;  (** last round of phase 3 *)
  last : int;  (** last round of the whole schedule *)
}

type phase = Phase1 | Phase2 | Phase3 | Phase4 | Finished

val schedule : Params.t -> variant -> schedule
(** Compute the round boundaries from the parameters. *)

val phase_of : schedule -> round:int -> phase
(** Which phase a (1-based) round belongs to. *)
