(** Convenience entry points: run a protocol on a static graph. *)

val random_source : Rumor_rng.Rng.t -> Rumor_graph.Graph.t -> int
(** A uniformly random vertex to start the rumor at.
    @raise Invalid_argument on the empty graph. *)

val once :
  ?fault:Rumor_sim.Fault.t ->
  ?collect_trace:bool ->
  ?stop_when_complete:bool ->
  ?packed:bool ->
  rng:Rumor_rng.Rng.t ->
  graph:Rumor_graph.Graph.t ->
  protocol:'st Rumor_sim.Protocol.t ->
  source:int ->
  unit ->
  Rumor_sim.Engine.result
(** Broadcast once from [source] on a static graph. *)

val repeat :
  ?fault:Rumor_sim.Fault.t ->
  ?stop_when_complete:bool ->
  rng:Rumor_rng.Rng.t ->
  graph:Rumor_graph.Graph.t ->
  protocol:(unit -> 'st Rumor_sim.Protocol.t) ->
  times:int ->
  unit ->
  Rumor_sim.Engine.result list
(** [repeat ~times ()] runs [times] independent broadcasts, each from a
    fresh random source with a forked random stream (so runs are
    reproducible individually). The protocol is rebuilt per run because
    stateful selectors carry per-node memory. *)
