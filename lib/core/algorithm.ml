module Protocol = Rumor_sim.Protocol
module Selector = Rumor_sim.Selector
module Cells = Rumor_sim.Cells

type state = Uninformed | Informed of { received : int }

(* The decision/quiescence logic on the receipt round alone, shared by
   the boxed and packed representations so they cannot drift apart.
   [push_window] is how many consecutive rounds a phase-1 node pushes
   after first receipt: 1 in the 4-choice model, 4 in the sequentialised
   memory variant (where four 1-call rounds simulate one round). *)
let decide_informed ~push_window (s : Phase.schedule) ~received ~round =
  match Phase.phase_of s ~round with
  | Phase.Phase1 ->
      let age = round - received in
      if age >= 1 && age <= push_window then Protocol.push_only
      else Protocol.silent
  | Phase.Phase2 -> Protocol.push_only
  | Phase.Phase3 -> Protocol.pull_only
  | Phase.Phase4 ->
      (* Only nodes first informed in phase 3 or 4 are active. *)
      if received > s.Phase.p2_end then Protocol.push_only
      else Protocol.silent
  | Phase.Finished -> Protocol.silent

let quiescent_informed (s : Phase.schedule) ~received ~round =
  if round > s.Phase.last then true
  else
    match s.Phase.variant with
    | Phase.Large -> false
    | Phase.Small ->
        (* In phase 4 a node informed before phase 3 never transmits
           again. *)
        round > s.Phase.p3_end && received <= s.Phase.p2_end

let decide_with ~push_window (s : Phase.schedule) state ~round =
  match state with
  | Uninformed -> Protocol.silent
  | Informed { received } -> decide_informed ~push_window s ~received ~round

let quiescent_with (s : Phase.schedule) state ~round =
  match state with
  | Uninformed -> true
  | Informed { received } -> quiescent_informed s ~received ~round

(* Packed codes: 0 = Uninformed, c > 0 = Informed { received = c - 1 }.
   Receipt rounds are bounded by the schedule ([decide] is silent past
   [last], so nothing is ever received later), hence every code fits in
   [width_for (last + 1)] — one byte for the paper's O(log n) schedules
   all the way to n = 10^8. *)
let packed_with ~push_window (s : Phase.schedule) =
  let bits = Cells.bits_of_width (Cells.width_for (s.Phase.last + 1)) in
  Some
    {
      Protocol.ops =
        {
          Protocol.bits;
          p_init = (fun ~informed -> if informed then 1 else 0);
          p_decide =
            (fun c ~round ->
              if c = 0 then Protocol.silent
              else decide_informed ~push_window s ~received:(c - 1) ~round);
          p_receive = (fun c ~round -> if c = 0 then round + 1 else c);
          p_feedback = Protocol.p_no_feedback;
          p_quiescent =
            (fun c ~round ->
              c = 0 || quiescent_informed s ~received:(c - 1) ~round);
        };
      encode =
        (fun state ->
          match state with
          | Uninformed -> 0
          | Informed { received } -> received + 1);
      decode = (fun c -> if c = 0 then Uninformed else Informed { received = c - 1 });
    }

let make_with ~name ~push_window ~selector (s : Phase.schedule) =
  Selector.validate selector;
  {
    Protocol.name;
    selector;
    horizon = s.Phase.last;
    init =
      (fun ~informed -> if informed then Informed { received = 0 } else Uninformed);
    decide = decide_with ~push_window s;
    receive =
      (fun state ~round ->
        match state with
        | Uninformed -> Informed { received = round }
        | Informed _ as st -> st);
    feedback = Protocol.no_feedback;
    quiescent = quiescent_with s;
    packed = packed_with ~push_window s;
  }

let schedule_of params variant =
  let variant =
    match variant with Some v -> v | None -> Phase.auto_variant params
  in
  Phase.schedule params variant

let make ?variant ?selector params =
  let s = schedule_of params variant in
  let selector =
    match selector with
    | Some sel -> sel
    | None -> Selector.Uniform { fanout = params.Params.fanout }
  in
  let name =
    Printf.sprintf "bef-%s-f%d" (Phase.variant_to_string s.Phase.variant)
      (Selector.fanout selector)
  in
  make_with ~name ~push_window:1 ~selector s

let sequentialised params =
  let s = schedule_of params None in
  let stretch x = 4 * x in
  let s =
    {
      s with
      Phase.p1_end = stretch s.Phase.p1_end;
      p2_end = stretch s.Phase.p2_end;
      p3_end = stretch s.Phase.p3_end;
      last = stretch s.Phase.last;
    }
  in
  make_with ~name:"bef-memory-w3" ~push_window:4
    ~selector:(Selector.Avoid_recent { fanout = 1; window = 3 })
    s
