module Protocol = Rumor_sim.Protocol
module Selector = Rumor_sim.Selector

type state = Uninformed | Informed of { received : int }

(* [push_window] is how many consecutive rounds a phase-1 node pushes
   after first receipt: 1 in the 4-choice model, 4 in the sequentialised
   memory variant (where four 1-call rounds simulate one round). *)
let decide_with ~push_window (s : Phase.schedule) state ~round =
  match state with
  | Uninformed -> Protocol.silent
  | Informed { received } -> begin
      match Phase.phase_of s ~round with
      | Phase.Phase1 ->
          let age = round - received in
          if age >= 1 && age <= push_window then Protocol.push_only
          else Protocol.silent
      | Phase.Phase2 -> Protocol.push_only
      | Phase.Phase3 -> Protocol.pull_only
      | Phase.Phase4 ->
          (* Only nodes first informed in phase 3 or 4 are active. *)
          if received > s.Phase.p2_end then Protocol.push_only
          else Protocol.silent
      | Phase.Finished -> Protocol.silent
    end

let quiescent_with (s : Phase.schedule) state ~round =
  match state with
  | Uninformed -> true
  | Informed { received } -> begin
      if round > s.Phase.last then true
      else
        match s.Phase.variant with
        | Phase.Large -> false
        | Phase.Small ->
            (* In phase 4 a node informed before phase 3 never transmits
               again. *)
            round > s.Phase.p3_end && received <= s.Phase.p2_end
    end

let make_with ~name ~push_window ~selector (s : Phase.schedule) =
  Selector.validate selector;
  {
    Protocol.name;
    selector;
    horizon = s.Phase.last;
    init =
      (fun ~informed -> if informed then Informed { received = 0 } else Uninformed);
    decide = decide_with ~push_window s;
    receive =
      (fun state ~round ->
        match state with
        | Uninformed -> Informed { received = round }
        | Informed _ as st -> st);
    feedback = Protocol.no_feedback;
    quiescent = quiescent_with s;
  }

let schedule_of params variant =
  let variant =
    match variant with Some v -> v | None -> Phase.auto_variant params
  in
  Phase.schedule params variant

let make ?variant ?selector params =
  let s = schedule_of params variant in
  let selector =
    match selector with
    | Some sel -> sel
    | None -> Selector.Uniform { fanout = params.Params.fanout }
  in
  let name =
    Printf.sprintf "bef-%s-f%d" (Phase.variant_to_string s.Phase.variant)
      (Selector.fanout selector)
  in
  make_with ~name ~push_window:1 ~selector s

let sequentialised params =
  let s = schedule_of params None in
  let stretch x = 4 * x in
  let s =
    {
      s with
      Phase.p1_end = stretch s.Phase.p1_end;
      p2_end = stretch s.Phase.p2_end;
      p3_end = stretch s.Phase.p3_end;
      last = stretch s.Phase.last;
    }
  in
  make_with ~name:"bef-memory-w3" ~push_window:4
    ~selector:(Selector.Avoid_recent { fanout = 1; window = 3 })
    s
