(** Self-healing repair epochs: pull-timeout with randomized backoff.

    The main algorithm ({!Algorithm}) is fast but fragile at the tail:
    a node that joins mid-broadcast, recovers from a crash after the
    wave passes, or loses every delivery to a bad burst stays
    uninformed forever once the informed nodes go quiescent. This
    module supplies the cheap steady-state layer that closes the gap —
    Demers-style anti-entropy in the address-oblivious spirit of
    Avin–Elsässer: after the main schedule, bounded {e repair epochs}
    run in which

    - uninformed nodes that have sat through [timeout] silent rounds
      open a single pull channel to a uniformly random neighbour, and
      on failure retry after a randomized exponentially growing gap
      (jitter drawn from [Rumor_rng], capped at [backoff_cap]);
    - informed nodes initiate nothing but answer pulls, aging out after
      a [quiescence] budget of rounds.

    Each epoch costs [O(u)] pull attempts for [u] uninformed nodes plus
    their answers — [O(n)] transmissions per epoch in the worst case —
    and epochs repeat until every live node is covered or [max_epochs]
    is exhausted (see {!Rumor_sim.Engine.run_epochs}). *)

type config = {
  timeout : int;  (** silent rounds an uninformed node waits before pulling *)
  backoff_base : int;  (** initial backoff window, in rounds (>= 1) *)
  backoff_cap : int;  (** backoff window ceiling (>= [backoff_base]) *)
  quiescence : int;  (** rounds an informed node keeps answering pulls *)
  epoch_rounds : int;  (** horizon of one repair epoch *)
  max_epochs : int;  (** epoch budget for a healing run *)
}

type backoff = {
  base : int;  (** initial window, in scheduling units (>= 1) *)
  cap : int;  (** window ceiling (>= [base]) *)
}
(** A randomized-exponential-backoff policy, shared between the repair
    epochs below (units are rounds) and the [Rumor_serve] session
    retries (units are milliseconds): attempt [k] waits a uniformly
    random gap in [\[1, w_k\]] where the window [w_k = min cap (base *
    2^k)] doubles until it saturates at [cap]. *)

val backoff : ?base:int -> ?cap:int -> unit -> backoff
(** Validated policy ([base] defaults to 1, [cap] to 8).
    @raise Invalid_argument if [base < 1] or [cap < base]. *)

val backoff_window : backoff -> attempt:int -> int
(** [backoff_window b ~attempt] is the window [w_attempt] (attempts are
    0-based): [min cap (base * 2^min(attempt, 16))].
    @raise Invalid_argument if [attempt < 0]. *)

val backoff_gap : backoff -> rng:Rumor_rng.Rng.t -> attempt:int -> int
(** [backoff_gap b ~rng ~attempt] draws the randomized gap before the
    next try: [1 + uniform(0, backoff_window b ~attempt - 1)], so it
    always lies in [\[1, backoff_window b ~attempt\]].
    @raise Invalid_argument if [attempt < 0]. *)

val backoff_of_config : config -> backoff
(** The policy embedded in a repair {!config}
    ([{base = backoff_base; cap = backoff_cap}]). *)

val config :
  ?timeout:int ->
  ?backoff_base:int ->
  ?backoff_cap:int ->
  ?quiescence:int ->
  ?epoch_rounds:int ->
  ?max_epochs:int ->
  n:int ->
  unit ->
  config
(** [config ~n ()] builds a validated configuration with network-size
    aware defaults: [timeout = 2], [backoff_base = 1], [backoff_cap =
    8], [epoch_rounds = max 8 (2 ceil_log2 n)], [quiescence =
    epoch_rounds], [max_epochs = 8].
    @raise Invalid_argument on non-positive or inconsistent values. *)

val protocol : config -> unit Rumor_sim.Protocol.t
(** The per-epoch protocol: informed nodes push never, answer pulls
    while [round <= quiescence], and are quiescent afterwards; horizon
    is [epoch_rounds]. Pair it with the gate from {!strategy} — without
    a gate every node (informed included) would open channels each
    round. *)

val strategy :
  config ->
  rng:Rumor_rng.Rng.t ->
  capacity:int ->
  epoch:int ->
  knows:Rumor_sim.Bitset.t ->
  unit Rumor_sim.Engine.epoch_plan
(** Epoch-plan builder for {!Rumor_sim.Engine.run_epochs}: partially
    apply [strategy cfg ~rng ~capacity] to obtain the [repair]
    callback. Per epoch it allocates fresh pull schedules — node [v]
    uninformed at the epoch's start first pulls at round [timeout + 1],
    then after gaps [1 + uniform(0, w)] where the window [w] doubles
    from [backoff_base] up to [backoff_cap]; nodes that lose the rumor
    mid-epoch (recovery amnesia) restart their timeout from that
    round. *)

val self_heal :
  ?fault:Rumor_sim.Fault.t ->
  ?collect_trace:bool ->
  ?forget_on_recover:bool ->
  ?reset:(unit -> int list) ->
  ?on_round_end:(int -> unit) ->
  ?skew:(int -> int) ->
  ?monitor:Rumor_sim.Invariant.t ->
  ?packed:bool ->
  config:config ->
  rng:Rumor_rng.Rng.t ->
  topology:Rumor_sim.Topology.t ->
  protocol:'st Rumor_sim.Protocol.t ->
  sources:int list ->
  unit ->
  Rumor_sim.Engine.result
(** [self_heal ~config ~rng ~topology ~protocol ~sources ()] runs the
    main [protocol] once, then up to [config.max_epochs] repair epochs
    until every live node is informed
    ({!Rumor_sim.Engine.run_epochs}). [forget_on_recover] defaults to
    [true] here — self-healing is exactly the regime in which stale
    post-crash state should not be trusted. The result's [repair] field
    carries the per-epoch accounting. *)

val heal :
  ?fault:Rumor_sim.Fault.t ->
  ?collect_trace:bool ->
  ?forget_on_recover:bool ->
  ?monitor:Rumor_sim.Invariant.t ->
  ?packed:bool ->
  config:config ->
  rng:Rumor_rng.Rng.t ->
  graph:Rumor_graph.Graph.t ->
  protocol:'st Rumor_sim.Protocol.t ->
  source:int ->
  unit ->
  Rumor_sim.Engine.result
(** {!self_heal} on a static graph from a single source (the
    {!Run.once} analogue). *)
