(** Self-healing repair epochs: pull-timeout with randomized backoff.

    The main algorithm ({!Algorithm}) is fast but fragile at the tail:
    a node that joins mid-broadcast, recovers from a crash after the
    wave passes, or loses every delivery to a bad burst stays
    uninformed forever once the informed nodes go quiescent. This
    module supplies the cheap steady-state layer that closes the gap —
    Demers-style anti-entropy in the address-oblivious spirit of
    Avin–Elsässer: after the main schedule, bounded {e repair epochs}
    run in which

    - uninformed nodes that have sat through [timeout] silent rounds
      open a single pull channel to a uniformly random neighbour, and
      on failure retry after a randomized exponentially growing gap
      (jitter drawn from [Rumor_rng], capped at [backoff_cap]);
    - informed nodes initiate nothing but answer pulls, aging out after
      a [quiescence] budget of rounds.

    Each epoch costs [O(u)] pull attempts for [u] uninformed nodes plus
    their answers — [O(n)] transmissions per epoch in the worst case —
    and epochs repeat until every live node is covered or [max_epochs]
    is exhausted (see {!Rumor_sim.Engine.run_epochs}). *)

type config = {
  timeout : int;  (** silent rounds an uninformed node waits before pulling *)
  backoff_base : int;  (** initial backoff window, in rounds (>= 1) *)
  backoff_cap : int;  (** backoff window ceiling (>= [backoff_base]) *)
  quiescence : int;  (** rounds an informed node keeps answering pulls *)
  epoch_rounds : int;  (** horizon of one repair epoch *)
  max_epochs : int;  (** epoch budget for a healing run *)
}

val config :
  ?timeout:int ->
  ?backoff_base:int ->
  ?backoff_cap:int ->
  ?quiescence:int ->
  ?epoch_rounds:int ->
  ?max_epochs:int ->
  n:int ->
  unit ->
  config
(** [config ~n ()] builds a validated configuration with network-size
    aware defaults: [timeout = 2], [backoff_base = 1], [backoff_cap =
    8], [epoch_rounds = max 8 (2 ceil_log2 n)], [quiescence =
    epoch_rounds], [max_epochs = 8].
    @raise Invalid_argument on non-positive or inconsistent values. *)

val protocol : config -> unit Rumor_sim.Protocol.t
(** The per-epoch protocol: informed nodes push never, answer pulls
    while [round <= quiescence], and are quiescent afterwards; horizon
    is [epoch_rounds]. Pair it with the gate from {!strategy} — without
    a gate every node (informed included) would open channels each
    round. *)

val strategy :
  config ->
  rng:Rumor_rng.Rng.t ->
  capacity:int ->
  epoch:int ->
  knows:bool array ->
  unit Rumor_sim.Engine.epoch_plan
(** Epoch-plan builder for {!Rumor_sim.Engine.run_epochs}: partially
    apply [strategy cfg ~rng ~capacity] to obtain the [repair]
    callback. Per epoch it allocates fresh pull schedules — node [v]
    uninformed at the epoch's start first pulls at round [timeout + 1],
    then after gaps [1 + uniform(0, w)] where the window [w] doubles
    from [backoff_base] up to [backoff_cap]; nodes that lose the rumor
    mid-epoch (recovery amnesia) restart their timeout from that
    round. *)

val self_heal :
  ?fault:Rumor_sim.Fault.t ->
  ?collect_trace:bool ->
  ?forget_on_recover:bool ->
  ?reset:(unit -> int list) ->
  ?on_round_end:(int -> unit) ->
  ?skew:(int -> int) ->
  ?monitor:Rumor_sim.Invariant.t ->
  config:config ->
  rng:Rumor_rng.Rng.t ->
  topology:Rumor_sim.Topology.t ->
  protocol:'st Rumor_sim.Protocol.t ->
  sources:int list ->
  unit ->
  Rumor_sim.Engine.result
(** [self_heal ~config ~rng ~topology ~protocol ~sources ()] runs the
    main [protocol] once, then up to [config.max_epochs] repair epochs
    until every live node is informed
    ({!Rumor_sim.Engine.run_epochs}). [forget_on_recover] defaults to
    [true] here — self-healing is exactly the regime in which stale
    post-crash state should not be trusted. The result's [repair] field
    carries the per-epoch accounting. *)

val heal :
  ?fault:Rumor_sim.Fault.t ->
  ?collect_trace:bool ->
  ?forget_on_recover:bool ->
  ?monitor:Rumor_sim.Invariant.t ->
  config:config ->
  rng:Rumor_rng.Rng.t ->
  graph:Rumor_graph.Graph.t ->
  protocol:'st Rumor_sim.Protocol.t ->
  source:int ->
  unit ->
  Rumor_sim.Engine.result
(** {!self_heal} on a static graph from a single source (the
    {!Run.once} analogue). *)
