module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Engine = Rumor_sim.Engine
module Topology = Rumor_sim.Topology

let random_source rng g =
  if Graph.n g = 0 then invalid_arg "Run.random_source: empty graph";
  Rng.int rng (Graph.n g)

let once ?fault ?collect_trace ?stop_when_complete ?packed ~rng ~graph ~protocol
    ~source () =
  Engine.run ?fault ?collect_trace ?stop_when_complete ?packed ~rng
    ~topology:(Topology.of_graph graph) ~protocol ~sources:[ source ] ()

let repeat ?fault ?stop_when_complete ~rng ~graph ~protocol ~times () =
  List.init times (fun i ->
      let stream = Rng.fork rng i in
      let source = random_source stream graph in
      once ?fault ?stop_when_complete ~rng:stream ~graph
        ~protocol:(protocol ()) ~source ())
