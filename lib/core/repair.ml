module Rng = Rumor_rng.Rng
module Engine = Rumor_sim.Engine
module Protocol = Rumor_sim.Protocol
module Selector = Rumor_sim.Selector
module Topology = Rumor_sim.Topology
module Bitset = Rumor_sim.Bitset

type config = {
  timeout : int;
  backoff_base : int;
  backoff_cap : int;
  quiescence : int;
  epoch_rounds : int;
  max_epochs : int;
}

type backoff = { base : int; cap : int }

let backoff ?(base = 1) ?(cap = 8) () =
  if base < 1 then invalid_arg "Repair.backoff: base must be >= 1";
  if cap < base then invalid_arg "Repair.backoff: cap must be >= base";
  { base; cap }

(* The window doubles per attempt, saturating at [cap]; the shift count
   is clamped so attempt counts past 62 cannot overflow the shift. *)
let backoff_window b ~attempt =
  if attempt < 0 then invalid_arg "Repair.backoff_window: attempt < 0";
  min b.cap (b.base lsl min attempt 16)

let backoff_gap b ~rng ~attempt =
  let window = backoff_window b ~attempt in
  1 + Rng.int rng (max window 1)

let backoff_of_config cfg = { base = cfg.backoff_base; cap = cfg.backoff_cap }

let config ?(timeout = 2) ?(backoff_base = 1) ?(backoff_cap = 8) ?quiescence
    ?epoch_rounds ?(max_epochs = 8) ~n () =
  if n < 1 then invalid_arg "Repair.config: n must be >= 1";
  if timeout < 0 then invalid_arg "Repair.config: timeout must be >= 0";
  if backoff_base < 1 then
    invalid_arg "Repair.config: backoff_base must be >= 1";
  if backoff_cap < backoff_base then
    invalid_arg "Repair.config: backoff_cap must be >= backoff_base";
  if max_epochs < 0 then invalid_arg "Repair.config: max_epochs must be >= 0";
  let epoch_rounds =
    match epoch_rounds with
    | Some e ->
        if e < 1 then invalid_arg "Repair.config: epoch_rounds must be >= 1";
        e
    | None -> max 8 (2 * Params.ceil_log2 (max 2 n))
  in
  let quiescence =
    match quiescence with
    | Some q ->
        if q < 1 then invalid_arg "Repair.config: quiescence must be >= 1";
        q
    | None -> epoch_rounds
  in
  { timeout; backoff_base; backoff_cap; quiescence; epoch_rounds; max_epochs }

(* One repair epoch's protocol. Informed nodes never push; they stay
   available to answer pulls until the quiescence budget runs out, then
   age out. Uninformed nodes carry no protocol state — their behaviour
   (when to open a pull channel) lives entirely in the gate. *)
let protocol cfg =
  {
    Protocol.name = "repair-pull";
    selector = Selector.Uniform { fanout = 1 };
    horizon = cfg.epoch_rounds;
    init = (fun ~informed:_ -> ());
    decide =
      (fun () ~round ->
        if round <= cfg.quiescence then Protocol.pull_only else Protocol.silent);
    receive = (fun () ~round:_ -> ());
    feedback = Protocol.no_feedback;
    quiescent = (fun () ~round -> round > cfg.quiescence);
    (* Unit state packs to a single constant code, so repair epochs at
       the 10^7+ scale skip the capacity-sized unit array too. *)
    packed =
      Some
        {
          Protocol.ops =
            {
              Protocol.bits = 8;
              p_init = (fun ~informed:_ -> 0);
              p_decide =
                (fun _ ~round ->
                  if round <= cfg.quiescence then Protocol.pull_only
                  else Protocol.silent);
              p_receive = (fun _ ~round:_ -> 0);
              p_feedback = Protocol.p_no_feedback;
              p_quiescent = (fun _ ~round -> round > cfg.quiescence);
            };
          encode = (fun () -> 0);
          decode = (fun _ -> ());
        };
  }

let strategy cfg ~rng ~capacity ~epoch:_ ~knows =
  let next = Array.make capacity max_int in
  let attempt = Array.make capacity 0 in
  let policy = backoff_of_config cfg in
  for v = 0 to capacity - 1 do
    if not (Bitset.get knows v) then next.(v) <- cfg.timeout + 1
  done;
  let gate ~informed ~node ~round =
    if informed then
      (* Informed nodes initiate nothing during repair: they only answer
         pulls on channels uninformed nodes open towards them. *)
      false
    else if next.(node) = max_int then begin
      (* Became uninformed mid-epoch (recovery amnesia): its silence
         timeout starts now. *)
      next.(node) <- round + cfg.timeout + 1;
      false
    end
    else if round >= next.(node) then begin
      let gap = backoff_gap policy ~rng ~attempt:attempt.(node) in
      attempt.(node) <- attempt.(node) + 1;
      next.(node) <- round + gap;
      true
    end
    else false
  in
  { Engine.epoch_protocol = protocol cfg; epoch_gate = gate }

let self_heal ?fault ?collect_trace ?(forget_on_recover = true) ?reset
    ?on_round_end ?skew ?monitor ?packed ~config:cfg ~rng ~topology ~protocol
    ~sources () =
  Engine.run_epochs ?fault ?collect_trace ~forget_on_recover ?reset
    ?on_round_end ?skew ?packed ~max_epochs:cfg.max_epochs ?monitor ~rng ~topology
    ~protocol
    ~repair:(strategy cfg ~rng ~capacity:topology.Topology.capacity)
    ~sources ()

let heal ?fault ?collect_trace ?forget_on_recover ?monitor ?packed ~config ~rng
    ~graph ~protocol ~source () =
  self_heal ?fault ?collect_trace ?forget_on_recover ?monitor ?packed ~config
    ~rng
    ~topology:(Topology.of_graph graph) ~protocol ~sources:[ source ] ()
