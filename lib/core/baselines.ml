module Protocol = Rumor_sim.Protocol
module Selector = Rumor_sim.Selector
module Cells = Rumor_sim.Cells

type state = Algorithm.state

let init ~informed =
  if informed then Algorithm.Informed { received = 0 } else Algorithm.Uninformed

let receive state ~round =
  match state with
  | Algorithm.Uninformed -> Algorithm.Informed { received = round }
  | Algorithm.Informed _ as st -> st

(* Packed codes, shared with {!Algorithm}: 0 = Uninformed, [c > 0] =
   Informed { received = c - 1 }. Baseline decisions depend only on
   informedness and the round, so the packed decide takes the same
   [decide_code] closure each constructor already has. *)
let encode state =
  match state with
  | Algorithm.Uninformed -> 0
  | Algorithm.Informed { received } -> received + 1

let decode c =
  if c = 0 then Algorithm.Uninformed else Algorithm.Informed { received = c - 1 }

let packed_of ~horizon ~decide_code ~quiescent_code =
  if horizon + 1 > 0xFFFFFFFF then None
  else
    let bits = Cells.bits_of_width (Cells.width_for (horizon + 1)) in
    Some
      {
        Protocol.ops =
          {
            Protocol.bits;
            p_init = (fun ~informed -> if informed then 1 else 0);
            p_decide =
              (fun c ~round ->
                if c = 0 then Protocol.silent else decide_code ~round);
            p_receive = (fun c ~round -> if c = 0 then round + 1 else c);
            p_feedback = Protocol.p_no_feedback;
            p_quiescent = (fun _ ~round -> quiescent_code ~round);
          };
        encode;
        decode;
      }

let constant_protocol ~name ~selector ~horizon ~decision =
  Selector.validate selector;
  let decide_code ~round =
    if round <= horizon then decision else Protocol.silent
  in
  {
    Protocol.name;
    selector;
    horizon;
    init;
    decide =
      (fun state ~round ->
        match state with
        | Algorithm.Uninformed -> Protocol.silent
        | Algorithm.Informed _ -> decide_code ~round);
    receive;
    feedback = Protocol.no_feedback;
    quiescent = (fun _ ~round -> round > horizon);
    packed =
      packed_of ~horizon ~decide_code ~quiescent_code:(fun ~round ->
          round > horizon);
  }

let push ?(fanout = 1) ~horizon () =
  constant_protocol ~name:(Printf.sprintf "push-f%d" fanout)
    ~selector:(Selector.Uniform { fanout })
    ~horizon
    ~decision:Protocol.push_only

let pull ?(fanout = 1) ~horizon () =
  constant_protocol ~name:(Printf.sprintf "pull-f%d" fanout)
    ~selector:(Selector.Uniform { fanout })
    ~horizon
    ~decision:Protocol.pull_only

let push_pull ?(fanout = 1) ~horizon () =
  constant_protocol ~name:(Printf.sprintf "push-pull-f%d" fanout)
    ~selector:(Selector.Uniform { fanout })
    ~horizon
    ~decision:Protocol.push_pull

let push_pull_age ?(fanout = 1) ~push_rounds ~total_rounds () =
  if total_rounds < push_rounds then
    invalid_arg "Baselines.push_pull_age: total_rounds < push_rounds";
  let decide_code ~round =
    if round <= push_rounds then Protocol.push_pull
    else if round <= total_rounds then Protocol.pull_only
    else Protocol.silent
  in
  {
    Protocol.name = Printf.sprintf "push-pull-age-f%d" fanout;
    selector = Selector.Uniform { fanout };
    horizon = total_rounds;
    init;
    decide =
      (fun state ~round ->
        match state with
        | Algorithm.Uninformed -> Protocol.silent
        | Algorithm.Informed _ -> decide_code ~round);
    receive;
    feedback = Protocol.no_feedback;
    quiescent = (fun _ ~round -> round > total_rounds);
    packed =
      packed_of ~horizon:total_rounds ~decide_code ~quiescent_code:(fun ~round ->
          round > total_rounds);
  }

let push_then_pull ?(fanout = 1) ~push_rounds ~total_rounds () =
  if total_rounds < push_rounds then
    invalid_arg "Baselines.push_then_pull: total_rounds < push_rounds";
  let decide_code ~round =
    if round <= push_rounds then Protocol.push_only
    else if round <= total_rounds then Protocol.pull_only
    else Protocol.silent
  in
  {
    Protocol.name = Printf.sprintf "push-then-pull-f%d" fanout;
    selector = Selector.Uniform { fanout };
    horizon = total_rounds;
    init;
    decide =
      (fun state ~round ->
        match state with
        | Algorithm.Uninformed -> Protocol.silent
        | Algorithm.Informed _ -> decide_code ~round);
    receive;
    feedback = Protocol.no_feedback;
    quiescent = (fun _ ~round -> round > total_rounds);
    packed =
      packed_of ~horizon:total_rounds ~decide_code ~quiescent_code:(fun ~round ->
          round > total_rounds);
  }

let quasirandom ~fanout ~horizon =
  constant_protocol ~name:(Printf.sprintf "quasirandom-f%d" fanout)
    ~selector:(Selector.Quasirandom { fanout })
    ~horizon
    ~decision:Protocol.push_only
