module Protocol = Rumor_sim.Protocol
module Selector = Rumor_sim.Selector

type state = Algorithm.state

let init ~informed =
  if informed then Algorithm.Informed { received = 0 } else Algorithm.Uninformed

let receive state ~round =
  match state with
  | Algorithm.Uninformed -> Algorithm.Informed { received = round }
  | Algorithm.Informed _ as st -> st

let constant_protocol ~name ~selector ~horizon ~decision =
  Selector.validate selector;
  {
    Protocol.name;
    selector;
    horizon;
    init;
    decide =
      (fun state ~round ->
        match state with
        | Algorithm.Uninformed -> Protocol.silent
        | Algorithm.Informed _ ->
            if round <= horizon then decision else Protocol.silent);
    receive;
    feedback = Protocol.no_feedback;
    quiescent = (fun _ ~round -> round > horizon);
  }

let push ?(fanout = 1) ~horizon () =
  constant_protocol ~name:(Printf.sprintf "push-f%d" fanout)
    ~selector:(Selector.Uniform { fanout })
    ~horizon
    ~decision:Protocol.push_only

let pull ?(fanout = 1) ~horizon () =
  constant_protocol ~name:(Printf.sprintf "pull-f%d" fanout)
    ~selector:(Selector.Uniform { fanout })
    ~horizon
    ~decision:Protocol.pull_only

let push_pull ?(fanout = 1) ~horizon () =
  constant_protocol ~name:(Printf.sprintf "push-pull-f%d" fanout)
    ~selector:(Selector.Uniform { fanout })
    ~horizon
    ~decision:Protocol.push_pull

let push_pull_age ?(fanout = 1) ~push_rounds ~total_rounds () =
  if total_rounds < push_rounds then
    invalid_arg "Baselines.push_pull_age: total_rounds < push_rounds";
  {
    Protocol.name = Printf.sprintf "push-pull-age-f%d" fanout;
    selector = Selector.Uniform { fanout };
    horizon = total_rounds;
    init;
    decide =
      (fun state ~round ->
        match state with
        | Algorithm.Uninformed -> Protocol.silent
        | Algorithm.Informed _ ->
            if round <= push_rounds then Protocol.push_pull
            else if round <= total_rounds then Protocol.pull_only
            else Protocol.silent);
    receive;
    feedback = Protocol.no_feedback;
    quiescent = (fun _ ~round -> round > total_rounds);
  }

let push_then_pull ?(fanout = 1) ~push_rounds ~total_rounds () =
  if total_rounds < push_rounds then
    invalid_arg "Baselines.push_then_pull: total_rounds < push_rounds";
  {
    Protocol.name = Printf.sprintf "push-then-pull-f%d" fanout;
    selector = Selector.Uniform { fanout };
    horizon = total_rounds;
    init;
    decide =
      (fun state ~round ->
        match state with
        | Algorithm.Uninformed -> Protocol.silent
        | Algorithm.Informed _ ->
            if round <= push_rounds then Protocol.push_only
            else if round <= total_rounds then Protocol.pull_only
            else Protocol.silent);
    receive;
    feedback = Protocol.no_feedback;
    quiescent = (fun _ ~round -> round > total_rounds);
  }

let quasirandom ~fanout ~horizon =
  constant_protocol ~name:(Printf.sprintf "quasirandom-f%d" fanout)
    ~selector:(Selector.Quasirandom { fanout })
    ~horizon
    ~decision:Protocol.push_only
