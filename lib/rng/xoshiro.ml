(* Xoshiro256** on 32-bit halves held in native ints.

   OCaml's [int64] is boxed outside of flambda builds: every temporary in
   the reference implementation costs a 3-word minor allocation, and the
   generator sits under every channel draw of the simulator — profiling
   put it at ~31 minor words per bounded draw, the single largest
   allocator in the whole engine. Keeping each 64-bit state word as two
   untagged 32-bit halves makes [step] allocation-free while producing
   bit-identical streams (the golden tests pin exact outputs).

   Invariant: every [s*h]/[s*l]/[out*] field is in [0, 2^32). *)

type t = {
  mutable s0h : int;
  mutable s0l : int;
  mutable s1h : int;
  mutable s1l : int;
  mutable s2h : int;
  mutable s2l : int;
  mutable s3h : int;
  mutable s3l : int;
  (* Halves of the last scrambled output, written by [step]. Scratch
     fields rather than a returned pair so that drawing never allocates. *)
  mutable outh : int;
  mutable outl : int;
}

let mask32 = 0xFFFFFFFF
let hi64 x = Int64.to_int (Int64.shift_right_logical x 32)
let lo64 x = Int64.to_int (Int64.logand x 0xFFFFFFFFL)

let to64 h l =
  Int64.logor (Int64.shift_left (Int64.of_int h) 32) (Int64.of_int l)

let step t =
  (* out = rotl64 (s1 * 5) 7 * 9, carried across the 32-bit seam. *)
  let p = t.s1l * 5 in
  let ml = p land mask32 in
  let mh = ((t.s1h * 5) + (p lsr 32)) land mask32 in
  let rh = ((mh lsl 7) lor (ml lsr 25)) land mask32 in
  let rl = ((ml lsl 7) lor (mh lsr 25)) land mask32 in
  let q = rl * 9 in
  t.outl <- q land mask32;
  t.outh <- ((rh * 9) + (q lsr 32)) land mask32;
  (* tt = s1 lsl 17 *)
  let th = ((t.s1h lsl 17) lor (t.s1l lsr 15)) land mask32 in
  let tl = (t.s1l lsl 17) land mask32 in
  t.s2h <- t.s2h lxor t.s0h;
  t.s2l <- t.s2l lxor t.s0l;
  t.s3h <- t.s3h lxor t.s1h;
  t.s3l <- t.s3l lxor t.s1l;
  t.s1h <- t.s1h lxor t.s2h;
  t.s1l <- t.s1l lxor t.s2l;
  t.s0h <- t.s0h lxor t.s3h;
  t.s0l <- t.s0l lxor t.s3l;
  t.s2h <- t.s2h lxor th;
  t.s2l <- t.s2l lxor tl;
  (* s3 = rotl64 s3 45: a half swap (rotl 32) followed by rotl 13. *)
  let h = t.s3h and l = t.s3l in
  t.s3h <- ((l lsl 13) lor (h lsr 19)) land mask32;
  t.s3l <- ((h lsl 13) lor (l lsr 19)) land mask32

let bits62 t =
  step t;
  (t.outh lsl 30) lor (t.outl lsr 2)

let bits53 t =
  step t;
  (t.outh lsl 21) lor (t.outl lsr 11)

let bit t =
  step t;
  t.outl land 1

let next t =
  step t;
  to64 t.outh t.outl

let make s0 s1 s2 s3 =
  {
    s0h = hi64 s0;
    s0l = lo64 s0;
    s1h = hi64 s1;
    s1l = lo64 s1;
    s2h = hi64 s2;
    s2l = lo64 s2;
    s3h = hi64 s3;
    s3l = lo64 s3;
    outh = 0;
    outl = 0;
  }

let create seed =
  let sm = Splitmix64.create seed in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  (* SplitMix64 output is never all-zero across four draws in practice,
     but guard anyway: an all-zero xoshiro state is a fixed point. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    make 1L s1 s2 s3
  else make s0 s1 s2 s3

let of_state s0 s1 s2 s3 =
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    invalid_arg "Xoshiro.of_state: all-zero state";
  make s0 s1 s2 s3

let copy t =
  {
    s0h = t.s0h;
    s0l = t.s0l;
    s1h = t.s1h;
    s1l = t.s1l;
    s2h = t.s2h;
    s2l = t.s2l;
    s3h = t.s3h;
    s3l = t.s3l;
    outh = t.outh;
    outl = t.outl;
  }

(* Jump polynomial for 2^128 steps, from the reference implementation. *)
let jump_tbl = [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL;
                  0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  for i = 0 to 3 do
    for b = 0 to 63 do
      if Int64.logand jump_tbl.(i) (Int64.shift_left 1L b) <> 0L then begin
        s0 := Int64.logxor !s0 (to64 t.s0h t.s0l);
        s1 := Int64.logxor !s1 (to64 t.s1h t.s1l);
        s2 := Int64.logxor !s2 (to64 t.s2h t.s2l);
        s3 := Int64.logxor !s3 (to64 t.s3h t.s3l)
      end;
      ignore (next t)
    done
  done;
  t.s0h <- hi64 !s0;
  t.s0l <- lo64 !s0;
  t.s1h <- hi64 !s1;
  t.s1l <- lo64 !s1;
  t.s2h <- hi64 !s2;
  t.s2l <- lo64 !s2;
  t.s3h <- hi64 !s3;
  t.s3l <- lo64 !s3
