type t = Xoshiro.t

let create seed = Xoshiro.create (Int64.of_int seed)
let copy = Xoshiro.copy

let split t =
  let s0 = Xoshiro.next t in
  let s1 = Xoshiro.next t in
  let s2 = Xoshiro.next t in
  let s3 = Xoshiro.next t in
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    Xoshiro.of_state 1L s1 s2 s3
  else Xoshiro.of_state s0 s1 s2 s3

let fork t i =
  let probe = Xoshiro.copy t in
  let base = Xoshiro.next probe in
  let sm = Splitmix64.create (Int64.logxor base (Int64.of_int (i * 2 + 1))) in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    Xoshiro.of_state 1L s1 s2 s3
  else Xoshiro.of_state s0 s1 s2 s3

let bits64 = Xoshiro.next

(* Unbiased bounded integers via rejection on the top 62 bits. Plain
   loops over local refs (which ocamlopt keeps in registers) rather than
   local recursive functions, so a draw allocates nothing. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let mask = ref 1 in
  while !mask < bound - 1 do
    mask := (!mask lsl 1) lor 1
  done;
  let mask = !mask in
  let x = ref (Xoshiro.bits62 t land mask) in
  while !x >= bound do
    x := Xoshiro.bits62 t land mask
  done;
  !x

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t = float_of_int (Xoshiro.bits53 t) *. 0x1.0p-53
let bool t = Xoshiro.bit t = 1

(* [float] is expanded by hand so the draw stays an unboxed compare —
   calling [float t] would box its result at the function return. *)
let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float_of_int (Xoshiro.bits53 t) *. 0x1.0p-53 < p

let shuffle_prefix t a k =
  let n = Array.length a in
  if k < 0 || k > n then invalid_arg "Rng.shuffle_prefix";
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t a = shuffle_prefix t a (Array.length a)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let distinct_into t ~bound ~k out =
  if k < 0 || k > bound then invalid_arg "Rng.distinct_into: k out of range";
  if Array.length out < k then invalid_arg "Rng.distinct_into: out too short";
  if 2 * k <= bound then begin
    (* Rejection: for k <= bound/2 the expected number of retries per
       position is at most 1, and k is tiny (4 in the paper's model). *)
    let i = ref 0 in
    while !i < k do
      let x = int t bound in
      let dup = ref false in
      for j = 0 to !i - 1 do
        if out.(j) = x then dup := true
      done;
      if not !dup then begin
        out.(!i) <- x;
        incr i
      end
    done;
    k
  end
  else begin
    (* Dense case: partial Fisher–Yates over a scratch identity array. *)
    let scratch = Array.init bound (fun i -> i) in
    shuffle_prefix t scratch k;
    Array.blit scratch 0 out 0 k;
    k
  end

let distinct t ~bound ~k =
  let out = Array.make (max k 1) 0 in
  let _ = distinct_into t ~bound ~k out in
  Array.sub out 0 k

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
