(** Xoshiro256** pseudo-random number generator (Blackman & Vigna 2018).

    The workhorse generator of the library: 256 bits of state, period
    [2^256 - 1], passes BigCrush, and is very fast. All simulation code
    goes through {!Rng}, which wraps this module.

    The state is stored as untagged 32-bit halves in native ints, so
    advancing the generator allocates nothing (a boxed [int64]
    implementation costs three minor words per temporary on non-flambda
    builds, which dominated the simulator's allocation profile). The
    {!bits62}, {!bits53} and {!bit} accessors expose the exact bit
    ranges the bounded-draw code needs without ever materialising an
    [int64]; streams are bit-identical to the reference generator. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] expands [seed] through SplitMix64 into a full 256-bit
    state, as recommended by the xoshiro authors. *)

val of_state : int64 -> int64 -> int64 -> int64 -> t
(** [of_state s0 s1 s2 s3] builds a generator from an explicit state.
    The state must not be all zero.
    @raise Invalid_argument on the all-zero state. *)

val copy : t -> t
(** [copy t] duplicates the state; the copies evolve independently. *)

val next : t -> int64
(** [next t] advances the state and returns 64 pseudo-random bits. The
    returned [int64] is boxed; hot paths should prefer {!bits62},
    {!bits53} or {!bit}. *)

val bits62 : t -> int
(** [bits62 t] advances the state once and returns the top 62 bits of
    the same output [next] would have produced
    ([Int64.to_int (Int64.shift_right_logical (next t) 2)]), without
    allocating. Always non-negative. *)

val bits53 : t -> int
(** [bits53 t] advances the state once and returns the top 53 bits of
    the same output [next] would have produced — the mantissa-sized
    slice used for unit-interval floats — without allocating. *)

val bit : t -> int
(** [bit t] advances the state once and returns the lowest bit (0 or 1)
    of the same output [next] would have produced, without
    allocating. *)

val jump : t -> unit
(** [jump t] advances [t] by [2^128] steps. Starting from a common seed,
    repeated jumps produce non-overlapping subsequences — one per
    parallel experiment stream. *)
