module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Builder = Rumor_graph.Builder

let pair ~rng ~deg =
  let n = Array.length deg in
  let total = Array.fold_left ( + ) 0 deg in
  Array.iter (fun d -> if d < 0 then invalid_arg "Config_model.pair: negative degree") deg;
  if total mod 2 <> 0 then invalid_arg "Config_model.pair: odd degree sum";
  (* stubs.(i) = owner of stub i; a uniform shuffle then pairing of
     consecutive entries is exactly a uniform perfect matching. *)
  let stubs = Array.make total 0 in
  let k = ref 0 in
  for v = 0 to n - 1 do
    for _ = 1 to deg.(v) do
      stubs.(!k) <- v;
      incr k
    done
  done;
  Rng.shuffle rng stubs;
  let b = Builder.create ~capacity:(max (total / 2) 1) ~n () in
  let i = ref 0 in
  while !i + 1 < total do
    Builder.add_edge b stubs.(!i) stubs.(!i + 1);
    i := !i + 2
  done;
  Builder.build b

let pair_simple ~rng ~deg ~max_attempts =
  let rec go attempts =
    if attempts <= 0 then None
    else begin
      let g = pair ~rng ~deg in
      if Graph.is_simple g then Some g else go (attempts - 1)
    end
  in
  go max_attempts

let erase g =
  let n = Graph.n g in
  let b = Builder.create ~capacity:(max (Graph.m g) 1) ~n () in
  (* Collapse parallel edges with a per-vertex sorted scan. *)
  for v = 0 to n - 1 do
    let nbrs = Graph.neighbors g v in
    (* Monomorphic comparison: the polymorphic [compare] walks the
       generic structural path on every element pair. *)
    Array.sort Int.compare nbrs;
    let prev = ref (-1) in
    Array.iter
      (fun w ->
        if w > v && w <> !prev then begin
          Builder.add_edge b v w;
          prev := w
        end
        else if w > v then prev := w)
      nbrs
  done;
  Builder.build b
