(** SplitMix64 pseudo-random number generator (Steele, Lea & Flood 2014).

    A tiny, fast, well-distributed 64-bit generator with a 64-bit state.
    Its main role here is to seed {!Xoshiro} from a single integer seed,
    but it is a usable generator in its own right (e.g. for cheap,
    independent per-node streams). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator initialised with [seed].
    Distinct seeds give independent-looking streams. *)

val copy : t -> t
(** [copy t] is a generator with the same state as [t]; the two evolve
    independently afterwards. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_in : t -> int -> int
(** [next_in t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** [next_float t] is a uniform float in [\[0, 1)] with 53 random bits. *)
