(** Xoshiro256** pseudo-random number generator (Blackman & Vigna 2018).

    The workhorse generator of the library: 256 bits of state, period
    [2^256 - 1], passes BigCrush, and is very fast. All simulation code
    goes through {!Rng}, which wraps this module. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] expands [seed] through SplitMix64 into a full 256-bit
    state, as recommended by the xoshiro authors. *)

val of_state : int64 -> int64 -> int64 -> int64 -> t
(** [of_state s0 s1 s2 s3] builds a generator from an explicit state.
    The state must not be all zero.
    @raise Invalid_argument on the all-zero state. *)

val copy : t -> t
(** [copy t] duplicates the state; the copies evolve independently. *)

val next : t -> int64
(** [next t] advances the state and returns 64 pseudo-random bits. *)

val jump : t -> unit
(** [jump t] advances [t] by [2^128] steps. Starting from a common seed,
    repeated jumps produce non-overlapping subsequences — one per
    parallel experiment stream. *)
