(** Standard probability distributions on top of {!Rng}.

    Used by workload generators (update arrival processes, key
    popularity), churn models (session lengths) and statistical tests. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** [uniform t ~lo ~hi] is uniform on [\[lo, hi)].
    @raise Invalid_argument if [hi < lo]. *)

val exponential : Rng.t -> rate:float -> float
(** [exponential t ~rate] draws from Exp(rate) by inversion.
    @raise Invalid_argument if [rate <= 0]. *)

val geometric : Rng.t -> p:float -> int
(** [geometric t ~p] is the number of failures before the first success
    of a Bernoulli(p) sequence (support [0, 1, 2, ...]).
    @raise Invalid_argument if [p <= 0] or [p > 1]. *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** [normal t ~mu ~sigma] draws from N(mu, sigma^2) (Marsaglia polar).
    @raise Invalid_argument if [sigma < 0]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** [binomial t ~n ~p] draws from Bin(n, p). Exact for all parameters:
    geometric skipping when [n*p] is small, inversion otherwise.
    @raise Invalid_argument if [n < 0] or [p] outside [\[0,1\]]. *)

val poisson : Rng.t -> lambda:float -> int
(** [poisson t ~lambda] draws from Poisson(lambda); exact (Knuth) for
    small lambda, split recursively for large lambda.
    @raise Invalid_argument if [lambda < 0]. *)

val zipf : Rng.t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws a rank in [\[0, n)] with probability
    proportional to [1/(rank+1)^s] — the classic skewed key-popularity
    distribution for replicated-database workloads. Uses rejection
    sampling (Devroye); O(1) expected time.
    @raise Invalid_argument if [n <= 0] or [s < 0]. *)
