lib/rng/rng.mli:
