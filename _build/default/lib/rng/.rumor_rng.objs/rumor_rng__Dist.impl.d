lib/rng/dist.ml: Float Rng
