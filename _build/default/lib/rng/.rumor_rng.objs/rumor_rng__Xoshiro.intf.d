lib/rng/xoshiro.mli:
