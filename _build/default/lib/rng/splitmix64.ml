type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* Constants from the reference implementation of SplitMix64. *)
let golden = 0x9E3779B97F4A7C15L
let mix1 = 0xBF58476D1CE4E5B9L
let mix2 = 0x94D049BB133111EBL

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) mix1 in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) mix2 in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_in t bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_in: bound <= 0";
  (* Use the top bits via multiply-shift on the positive 62-bit part;
     bias is negligible for bounds far below 2^62. *)
  let x = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  x mod bound

let next_float t =
  let x = Int64.shift_right_logical (next t) 11 in
  Int64.to_float x *. 0x1.0p-53
