let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform: hi < lo";
  lo +. ((hi -. lo) *. Rng.float t)

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate <= 0";
  (* 1 - U avoids log 0. *)
  -.log (1. -. Rng.float t) /. rate

let geometric t ~p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: p out of range";
  if p = 1. then 0
  else
    let u = 1. -. Rng.float t in
    int_of_float (floor (log u /. log (1. -. p)))

let normal t ~mu ~sigma =
  if sigma < 0. then invalid_arg "Dist.normal: sigma < 0";
  let rec polar () =
    let u = (2. *. Rng.float t) -. 1. in
    let v = (2. *. Rng.float t) -. 1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then polar ()
    else u *. sqrt (-2. *. log s /. s)
  in
  mu +. (sigma *. polar ())

(* Geometric skipping (BG algorithm): expected time O(n*p + 1). For the
   parameter ranges in this project (n*p modest) this is exact and fast. *)
let binomial_small t n p =
  let lq = log (1. -. p) in
  let count = ref 0 in
  let pos = ref (-1) in
  let continue = ref true in
  while !continue do
    let u = 1. -. Rng.float t in
    let skip = int_of_float (floor (log u /. lq)) in
    pos := !pos + skip + 1;
    if !pos < n then incr count else continue := false
  done;
  !count

let binomial t ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial: n < 0";
  if p < 0. || p > 1. then invalid_arg "Dist.binomial: p out of range";
  if p = 0. || n = 0 then 0
  else if p = 1. then n
  else if p > 0.5 then n - binomial_small t n (1. -. p)
  else binomial_small t n p

let rec poisson t ~lambda =
  if lambda < 0. then invalid_arg "Dist.poisson: lambda < 0";
  if lambda = 0. then 0
  else if lambda > 30. then begin
    (* Split: Poisson(a+b) = Poisson(a) + Poisson(b). *)
    let half = lambda /. 2. in
    poisson t ~lambda:half + poisson t ~lambda:(lambda -. half)
  end
  else begin
    let limit = exp (-.lambda) in
    let k = ref 0 in
    let prod = ref (Rng.float t) in
    while !prod > limit do
      incr k;
      prod := !prod *. Rng.float t
    done;
    !k
  end

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n <= 0";
  if s < 0. then invalid_arg "Dist.zipf: s < 0";
  if s = 0. then Rng.int t n
  else begin
    (* Hörmann–Derflinger rejection-inversion for ranks 1..n with pmf
       proportional to k^(-s) (the algorithm behind Apache Commons'
       Zipf sampler). H is the integral of the envelope x^(-s); at
       s = 1 it degenerates to log. *)
    let nf = float_of_int n in
    let h_integral x =
      if s = 1. then log x else ((x ** (1. -. s)) -. 1.) /. (1. -. s)
    in
    let h_integral_inverse y =
      if s = 1. then exp y
      else ((y *. (1. -. s)) +. 1.) ** (1. /. (1. -. s))
    in
    let h x = x ** -.s in
    let hi1 = h_integral 1.5 -. 1. in
    let hin = h_integral (nf +. 0.5) in
    let threshold = 2. -. h_integral_inverse (h_integral 2.5 -. h 2.) in
    let rec draw () =
      let u = hin +. (Rng.float t *. (hi1 -. hin)) in
      let x = h_integral_inverse u in
      let k = Float.round x in
      let k = if k < 1. then 1. else if k > nf then nf else k in
      if k -. x <= threshold then int_of_float k - 1
      else if u >= h_integral (k +. 0.5) -. h k then int_of_float k - 1
      else draw ()
    in
    draw ()
  end
