(** Unified random-number interface used by every other library.

    All randomness in the project flows through a value of type {!t},
    created from an integer seed, so that every graph, protocol run and
    experiment is exactly reproducible. The implementation is
    {!Xoshiro}256** seeded through SplitMix64. *)

type t
(** A mutable stream of pseudo-random values. *)

val create : int -> t
(** [create seed] returns a fresh stream determined by [seed]. *)

val copy : t -> t
(** [copy t] duplicates the stream state. *)

val split : t -> t
(** [split t] returns a new stream whose future output is independent of
    [t]'s (seeded from [t]'s next outputs); [t] itself advances. Use it
    to hand sub-streams to components without coupling their draws. *)

val fork : t -> int -> t
(** [fork t i] derives a stream from [t]'s current state and the index
    [i] {e without} advancing [t]. Two different indices give independent
    streams: the canonical way to give each of [k] repetitions its own
    reproducible randomness. *)

val bits64 : t -> int64
(** [bits64 t] is 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)], without modulo bias.
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** [float t] is uniform on [\[0, 1)] with 53 random bits. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] ([p] clamped to
    [\[0,1\]]). *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] uniformly in place (Fisher–Yates). *)

val shuffle_prefix : t -> 'a array -> int -> unit
(** [shuffle_prefix t a k] places a uniform [k]-subset of [a] in
    uniform order into [a.(0..k-1)] (partial Fisher–Yates); the rest of
    [a] holds the remaining elements in unspecified order.
    @raise Invalid_argument if [k < 0] or [k > Array.length a]. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniform element of [a].
    @raise Invalid_argument if [a] is empty. *)

val distinct : t -> bound:int -> k:int -> int array
(** [distinct t ~bound ~k] is an array of [k] pairwise-distinct uniform
    integers from [\[0, bound)] — the "choose four distinct neighbours"
    primitive of the paper's model. Uses rejection for small [k]
    (expected O(k^2) comparisons) and partial Fisher–Yates otherwise.
    @raise Invalid_argument if [k < 0] or [k > bound]. *)

val distinct_into : t -> bound:int -> k:int -> int array -> int
(** [distinct_into t ~bound ~k out] writes [k] pairwise-distinct uniform
    integers from [\[0, bound)] into [out.(0..k-1)] and returns [k];
    allocation-free fast path for the simulator inner loop.
    @raise Invalid_argument if [k < 0], [k > bound] or
    [Array.length out < k]. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0..n-1]. *)
