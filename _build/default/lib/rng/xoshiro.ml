type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let create seed =
  let sm = Splitmix64.create seed in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  (* SplitMix64 output is never all-zero across four draws in practice,
     but guard anyway: an all-zero xoshiro state is a fixed point. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let of_state s0 s1 s2 s3 =
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    invalid_arg "Xoshiro.of_state: all-zero state";
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let next t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

(* Jump polynomial for 2^128 steps, from the reference implementation. *)
let jump_tbl = [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL;
                  0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  for i = 0 to 3 do
    for b = 0 to 63 do
      if Int64.logand jump_tbl.(i) (Int64.shift_left 1L b) <> 0L then begin
        s0 := Int64.logxor !s0 t.s0;
        s1 := Int64.logxor !s1 t.s1;
        s2 := Int64.logxor !s2 t.s2;
        s3 := Int64.logxor !s3 t.s3
      end;
      ignore (next t)
    done
  done;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3
