lib/gen/smallworld.ml: Rumor_graph Rumor_rng
