lib/gen/smallworld.mli: Rumor_graph Rumor_rng
