lib/gen/config_model.ml: Array Rumor_graph Rumor_rng
