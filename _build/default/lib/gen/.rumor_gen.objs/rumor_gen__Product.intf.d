lib/gen/product.mli: Rumor_graph
