lib/gen/config_model.mli: Rumor_graph Rumor_rng
