lib/gen/classic.mli: Rumor_graph
