lib/gen/preferential.mli: Rumor_graph Rumor_rng
