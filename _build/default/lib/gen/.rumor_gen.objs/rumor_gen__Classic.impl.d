lib/gen/classic.ml: List Rumor_graph
