lib/gen/regular.mli: Rumor_graph Rumor_rng
