lib/gen/gnp.mli: Rumor_graph Rumor_rng
