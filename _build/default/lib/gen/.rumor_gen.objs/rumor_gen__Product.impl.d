lib/gen/product.ml: Classic Rumor_graph
