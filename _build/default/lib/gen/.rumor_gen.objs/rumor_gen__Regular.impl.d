lib/gen/regular.ml: Array Config_model Printf Rumor_graph Rumor_rng
