lib/gen/gnp.ml: Hashtbl Rumor_graph Rumor_rng
