lib/gen/preferential.ml: Array Rumor_graph Rumor_rng
