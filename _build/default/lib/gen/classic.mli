(** Deterministic graph families used as baselines and test fixtures. *)

val complete : int -> Rumor_graph.Graph.t
(** [complete n] is [K_n] — the topology of the original phone call
    analyses ([25], [7], [33]). *)

val cycle : int -> Rumor_graph.Graph.t
(** [cycle n] is the [n]-cycle (2-regular, diameter [n/2]).
    @raise Invalid_argument if [n < 3]. *)

val path : int -> Rumor_graph.Graph.t
(** [path n] is the path on [n] vertices. *)

val star : int -> Rumor_graph.Graph.t
(** [star n] has vertex 0 adjacent to all others. *)

val hypercube : int -> Rumor_graph.Graph.t
(** [hypercube k] is the [k]-dimensional hypercube on [2^k] vertices
    ([k]-regular, the bounded-degree benchmark of [17]).
    @raise Invalid_argument if [k < 0] or [k > 25]. *)

val torus2d : int -> int -> Rumor_graph.Graph.t
(** [torus2d rows cols] is the 4-regular wrap-around grid.
    @raise Invalid_argument if either side is [< 3]. *)

val circulant : int -> int list -> Rumor_graph.Graph.t
(** [circulant n offsets] connects [v] to [v ± o mod n] for each offset
    [o] — a deterministic regular expander-ish family for contrast with
    random regular graphs.
    @raise Invalid_argument on offsets outside [\[1, n/2\]]. *)
