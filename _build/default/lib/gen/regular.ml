module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Traversal = Rumor_graph.Traversal

type variant =
  | Pairing
  | Simple of { max_attempts : int }
  | Erased

let feasible ~n ~d = d >= 0 && d < n && n * d mod 2 = 0

let sample ~rng ~n ~d variant =
  if not (feasible ~n ~d) then invalid_arg "Regular.sample: infeasible (n, d)";
  let deg = Array.make n d in
  match variant with
  | Pairing -> Config_model.pair ~rng ~deg
  | Simple { max_attempts } -> begin
      match Config_model.pair_simple ~rng ~deg ~max_attempts with
      | Some g -> g
      | None ->
          failwith
            (Printf.sprintf
               "Regular.sample: no simple pairing after %d attempts (n=%d d=%d)"
               max_attempts n d)
    end
  | Erased -> Config_model.erase (Config_model.pair ~rng ~deg)

let sample_connected ~rng ~n ~d ?(max_attempts = 100) variant =
  let rec go attempts =
    if attempts <= 0 then
      failwith
        (Printf.sprintf "Regular.sample_connected: still disconnected (n=%d d=%d)" n d);
    let g = sample ~rng ~n ~d variant in
    if Traversal.is_connected g then g else go (attempts - 1)
  in
  go max_attempts
