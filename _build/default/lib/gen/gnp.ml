module Rng = Rumor_rng.Rng
module Dist = Rumor_rng.Dist
module Builder = Rumor_graph.Builder

let sample ~rng ~n ~p =
  if n < 0 then invalid_arg "Gnp.sample: n < 0";
  if p < 0. || p > 1. then invalid_arg "Gnp.sample: p out of range";
  let b = Builder.create ~n () in
  if p > 0. then begin
    if p >= 1. then
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          Builder.add_edge b u v
        done
      done
    else begin
      (* Walk the upper triangle with geometric skips between edges. *)
      let total = n * (n - 1) / 2 in
      let pos = ref (-1) in
      let continue = ref (total > 0) in
      while !continue do
        let skip = Dist.geometric rng ~p in
        pos := !pos + skip + 1;
        if !pos >= total then continue := false
        else begin
          (* Invert the row-major index of the strict upper triangle. *)
          let idx = !pos in
          let u = ref 0 and acc = ref 0 in
          while !acc + (n - 1 - !u) <= idx do
            acc := !acc + (n - 1 - !u);
            incr u
          done;
          let v = !u + 1 + (idx - !acc) in
          Builder.add_edge b !u v
        end
      done
    end
  end;
  Builder.build b

let sample_gnm ~rng ~n ~m =
  let total = n * (n - 1) / 2 in
  if m < 0 || m > total then invalid_arg "Gnp.sample_gnm: m out of range";
  let seen = Hashtbl.create (2 * max m 1) in
  let b = Builder.create ~capacity:(max m 1) ~n () in
  let added = ref 0 in
  while !added < m do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let key = (min u v * n) + max u v in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        Builder.add_edge b u v;
        incr added
      end
    end
  done;
  Builder.build b
