(** Random [d]-regular graphs [G(n,d)] — the paper's network model. *)

type variant =
  | Pairing
      (** Raw configuration model; may contain self-loops and parallel
          edges. The paper's analysis works in this model directly. *)
  | Simple of { max_attempts : int }
      (** Retry the pairing until simple: uniform over simple
          [d]-regular graphs. *)
  | Erased
      (** Drop loops, collapse multi-edges: simple and near-regular. *)

val feasible : n:int -> d:int -> bool
(** A [d]-regular graph on [n] vertices exists iff [n*d] is even and
    [0 <= d < n]. *)

val sample :
  rng:Rumor_rng.Rng.t -> n:int -> d:int -> variant -> Rumor_graph.Graph.t
(** [sample ~rng ~n ~d variant] draws one random [d]-regular graph.
    @raise Invalid_argument if [not (feasible ~n ~d)].
    @raise Failure if [Simple] exhausts its attempts (use a larger
    budget or the [Erased] variant for large [d]). *)

val sample_connected :
  rng:Rumor_rng.Rng.t -> n:int -> d:int -> ?max_attempts:int -> variant ->
  Rumor_graph.Graph.t
(** Like {!sample} but retries (fresh randomness each time) until the
    instance is connected, which for [d >= 3] succeeds almost surely on
    the first try.
    @raise Failure after [max_attempts] (default 100) disconnected
    draws. *)
