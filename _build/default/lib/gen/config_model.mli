(** The configuration (pairing) model of Section 1.2 of the paper.

    Every vertex [v] gets [deg.(v)] stubs; a uniform perfect matching on
    the stubs defines the multigraph: repeatedly pair the first
    unmatched stub with a uniform unmatched stub. Conditioned on the
    result being simple, the graph is uniform among simple graphs with
    that degree sequence. *)

val pair : rng:Rumor_rng.Rng.t -> deg:int array -> Rumor_graph.Graph.t
(** [pair ~rng ~deg] samples one pairing. The result may contain
    self-loops and parallel edges, exactly as the paper's process.
    @raise Invalid_argument if the degree sum is odd or a degree is
    negative. *)

val pair_simple :
  rng:Rumor_rng.Rng.t -> deg:int array -> max_attempts:int ->
  Rumor_graph.Graph.t option
(** [pair_simple ~rng ~deg ~max_attempts] retries {!pair} until the
    result is simple — uniform over simple graphs with degree sequence
    [deg]. [None] after [max_attempts] failures. For [d]-regular
    sequences the per-attempt success probability is about
    [exp(-(d^2-1)/4)], so a few hundred attempts suffice for the small
    degrees this project targets. *)

val erase : Rumor_graph.Graph.t -> Rumor_graph.Graph.t
(** [erase g] drops self-loops and collapses parallel edges — the
    "erased configuration model". The result is simple but only
    near-regular; for [d = O(polylog n)] an expected [O(d^2)] edges are
    lost in total. *)
