module Builder = Rumor_graph.Builder

let complete n =
  let b = Builder.create ~capacity:(max (n * (n - 1) / 2) 1) ~n () in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Builder.add_edge b u v
    done
  done;
  Builder.build b

let cycle n =
  if n < 3 then invalid_arg "Classic.cycle: n < 3";
  let b = Builder.create ~capacity:n ~n () in
  for v = 0 to n - 1 do
    Builder.add_edge b v ((v + 1) mod n)
  done;
  Builder.build b

let path n =
  let b = Builder.create ~capacity:(max (n - 1) 1) ~n () in
  for v = 0 to n - 2 do
    Builder.add_edge b v (v + 1)
  done;
  Builder.build b

let star n =
  let b = Builder.create ~capacity:(max (n - 1) 1) ~n () in
  for v = 1 to n - 1 do
    Builder.add_edge b 0 v
  done;
  Builder.build b

let hypercube k =
  if k < 0 || k > 25 then invalid_arg "Classic.hypercube: k out of range";
  let n = 1 lsl k in
  let b = Builder.create ~capacity:(max (n * k / 2) 1) ~n () in
  for v = 0 to n - 1 do
    for bit = 0 to k - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then Builder.add_edge b v w
    done
  done;
  Builder.build b

let torus2d rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Classic.torus2d: side < 3";
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let b = Builder.create ~capacity:(2 * n) ~n () in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Builder.add_edge b (id r c) (id r ((c + 1) mod cols));
      Builder.add_edge b (id r c) (id ((r + 1) mod rows) c)
    done
  done;
  Builder.build b

let circulant n offsets =
  List.iter
    (fun o ->
      if o < 1 || o > n / 2 then invalid_arg "Classic.circulant: offset range")
    offsets;
  let b = Builder.create ~capacity:(n * List.length offsets) ~n () in
  List.iter
    (fun o ->
      if 2 * o = n then
        (* Antipodal offset: each edge would otherwise be added twice. *)
        for v = 0 to (n / 2) - 1 do
          Builder.add_edge b v (v + o)
        done
      else
        for v = 0 to n - 1 do
          Builder.add_edge b v ((v + o) mod n)
        done)
    offsets;
  Builder.build b
