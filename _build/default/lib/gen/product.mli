(** Cartesian graph products.

    The paper's conclusion singles out the Cartesian product of a
    random regular graph with [K_5] as a graph with expansion and
    connectivity similar to [G(n,d)] on which the multi-choice model
    brings {e no} improvement — experiment E10 reproduces this. *)

val cartesian :
  Rumor_graph.Graph.t -> Rumor_graph.Graph.t -> Rumor_graph.Graph.t
(** [cartesian g h] is the Cartesian product [g □ h]: vertex [(u, a)]
    is encoded as [u * n_h + a]; [(u,a) ~ (v,b)] iff ([u = v] and
    [a ~ b]) or ([a = b] and [u ~ v]). If [g] is [d1]-regular and [h]
    is [d2]-regular the product is [(d1 + d2)]-regular. *)

val with_clique :
  Rumor_graph.Graph.t -> k:int -> Rumor_graph.Graph.t
(** [with_clique g ~k] is [g □ K_k] — the conclusion's counterexample
    family for [k = 5]. *)
