module Graph = Rumor_graph.Graph
module Builder = Rumor_graph.Builder

let cartesian g h =
  let ng = Graph.n g and nh = Graph.n h in
  let n = ng * nh in
  let id u a = (u * nh) + a in
  let b = Builder.create ~capacity:(max ((Graph.m g * nh) + (Graph.m h * ng)) 1) ~n () in
  (* Copies of h at each vertex of g. *)
  for u = 0 to ng - 1 do
    Graph.iter_edges h (fun a bb -> Builder.add_edge b (id u a) (id u bb))
  done;
  (* Copies of g in each coordinate of h. *)
  for a = 0 to nh - 1 do
    Graph.iter_edges g (fun u v -> Builder.add_edge b (id u a) (id v a))
  done;
  Builder.build b

let with_clique g ~k = cartesian g (Classic.complete k)
