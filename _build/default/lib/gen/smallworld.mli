(** Watts–Strogatz small-world graphs.

    A ring lattice where each node connects to its [k] nearest
    neighbours per side, with every edge rewired to a uniform endpoint
    with probability [beta]. At [beta = 0] this is a (poorly mixing)
    circulant; at [beta = 1] it is close to a random graph. A useful
    contrast topology: broadcasting on it interpolates between the
    cycle-like and random-regular regimes. *)

val sample :
  rng:Rumor_rng.Rng.t -> n:int -> k:int -> beta:float -> Rumor_graph.Graph.t
(** [sample ~rng ~n ~k ~beta] builds the Watts–Strogatz graph on [n]
    vertices with [n * k] edges (degree [2k] before rewiring). Rewiring
    retargets the far endpoint uniformly, avoiding self-loops; parallel
    edges may occur with tiny probability and are kept (the simulator
    tolerates multigraphs).
    @raise Invalid_argument if [k < 1], [n <= 2 * k] or [beta] is
    outside [\[0, 1\]]. *)
