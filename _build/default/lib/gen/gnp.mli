(** Erdős–Rényi random graphs [G(n,p)], the baseline model of the
    related work ([11], [13]). *)

val sample : rng:Rumor_rng.Rng.t -> n:int -> p:float -> Rumor_graph.Graph.t
(** [sample ~rng ~n ~p] draws each of the [n(n-1)/2] possible edges
    independently with probability [p], in expected time
    O(n + p*n^2) via geometric edge skipping.
    @raise Invalid_argument if [p] is outside [\[0, 1\]] or [n < 0]. *)

val sample_gnm : rng:Rumor_rng.Rng.t -> n:int -> m:int -> Rumor_graph.Graph.t
(** [sample_gnm ~rng ~n ~m] is a uniform simple graph with exactly [m]
    edges (rejection over uniform pairs; requires
    [m <= n(n-1)/2]).
    @raise Invalid_argument if [m] is out of range. *)
