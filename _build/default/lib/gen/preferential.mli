(** Preferential-attachment (Barabási–Albert) graphs.

    The related work ([8], Doerr–Fouz–Friedrich) shows that avoiding
    the previously contacted neighbour gives sub-logarithmic broadcast
    time on these graphs; they serve as a contrasting topology in the
    examples and the fanout experiments. *)

val sample :
  rng:Rumor_rng.Rng.t -> n:int -> m:int -> Rumor_graph.Graph.t
(** [sample ~rng ~n ~m] grows a graph node by node; each new node
    attaches [m] edges to existing nodes chosen proportionally to their
    current degree (the classic repeated-endpoint trick). The seed is a
    complete graph on [m + 1] vertices.
    @raise Invalid_argument if [m < 1] or [n < m + 1]. *)
