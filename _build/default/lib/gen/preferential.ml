module Rng = Rumor_rng.Rng
module Builder = Rumor_graph.Builder

let sample ~rng ~n ~m =
  if m < 1 then invalid_arg "Preferential.sample: m < 1";
  if n < m + 1 then invalid_arg "Preferential.sample: n < m + 1";
  let b = Builder.create ~capacity:(n * m) ~n () in
  (* endpoints records every edge endpoint; sampling a uniform entry is
     sampling a vertex proportionally to its degree. *)
  let cap = 2 * ((m * (m + 1) / 2) + ((n - m - 1) * m)) in
  let endpoints = Array.make (max cap 1) 0 in
  let len = ref 0 in
  let push v =
    endpoints.(!len) <- v;
    incr len
  in
  let connect u v =
    Builder.add_edge b u v;
    push u;
    push v
  in
  for u = 0 to m do
    for v = u + 1 to m do
      connect u v
    done
  done;
  let targets = Array.make m 0 in
  for v = m + 1 to n - 1 do
    (* Choose m distinct targets by degree-proportional rejection. *)
    let chosen = ref 0 in
    while !chosen < m do
      let cand = endpoints.(Rng.int rng !len) in
      let dup = ref false in
      for j = 0 to !chosen - 1 do
        if targets.(j) = cand then dup := true
      done;
      if not !dup then begin
        targets.(!chosen) <- cand;
        incr chosen
      end
    done;
    for j = 0 to m - 1 do
      connect v targets.(j)
    done
  done;
  Builder.build b
