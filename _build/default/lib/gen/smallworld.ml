module Rng = Rumor_rng.Rng
module Builder = Rumor_graph.Builder

let sample ~rng ~n ~k ~beta =
  if k < 1 then invalid_arg "Smallworld.sample: k < 1";
  if n <= 2 * k then invalid_arg "Smallworld.sample: n <= 2k";
  if beta < 0. || beta > 1. then invalid_arg "Smallworld.sample: beta out of range";
  let b = Builder.create ~capacity:(n * k) ~n () in
  for v = 0 to n - 1 do
    for o = 1 to k do
      let w = (v + o) mod n in
      if Rng.bernoulli rng beta then begin
        (* Rewire the far endpoint to a uniform non-self target. *)
        let rec fresh () =
          let c = Rng.int rng n in
          if c = v then fresh () else c
        in
        Builder.add_edge b v (fresh ())
      end
      else Builder.add_edge b v w
    done
  done;
  Builder.build b
