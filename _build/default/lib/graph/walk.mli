(** Random walks on graphs.

    Random walks are the workhorse of decentralised peer sampling in
    the P2P systems the paper targets ([5], [27], [32]): on a regular
    graph the walk's stationary distribution is uniform, so a walk of
    length a few multiples of the mixing time ends at an almost-uniform
    peer — without any global knowledge. *)

val step : Rumor_rng.Rng.t -> Graph.t -> int -> int
(** One uniform step from a vertex.
    @raise Invalid_argument on an isolated vertex. *)

val endpoint : Rumor_rng.Rng.t -> Graph.t -> start:int -> length:int -> int
(** The endpoint of a [length]-step walk from [start]. [length = 0]
    returns [start].
    @raise Invalid_argument if the walk hits an isolated vertex (only
    possible at [start]) or [length < 0]. *)

val path : Rumor_rng.Rng.t -> Graph.t -> start:int -> length:int -> int array
(** The full visited sequence, [length + 1] vertices. *)

val endpoint_counts :
  Rumor_rng.Rng.t -> Graph.t -> start:int -> length:int -> samples:int ->
  int array
(** Histogram of walk endpoints over [samples] independent walks. *)

val total_variation_from_uniform : int array -> float
(** [1/2 * sum |p_v - 1/n|] of an endpoint histogram — 0 means the walk
    samples peers perfectly uniformly.
    @raise Invalid_argument on an empty or all-zero histogram. *)

val cover_steps :
  Rumor_rng.Rng.t -> Graph.t -> start:int -> limit:int -> int option
(** Steps until the walk has visited every vertex, or [None] if [limit]
    steps were not enough. Expected [Theta(n log n)] on expanders. *)
