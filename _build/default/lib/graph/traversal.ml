module Rng = Rumor_rng.Rng

let bfs_into g srcs dist =
  Array.fill dist 0 (Array.length dist) (-1);
  let queue = Array.make (Graph.n g) 0 in
  let head = ref 0 and tail = ref 0 in
  List.iter
    (fun s ->
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        queue.(!tail) <- s;
        incr tail
      end)
    srcs;
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    Graph.iter_neighbors g v (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          queue.(!tail) <- w;
          incr tail
        end)
  done

let bfs_multi g srcs =
  let dist = Array.make (Graph.n g) (-1) in
  bfs_into g srcs dist;
  dist

let bfs g src = bfs_multi g [ src ]

let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let queue = Array.make n 0 in
  let k = ref 0 in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      let c = !k in
      incr k;
      label.(s) <- c;
      let head = ref 0 and tail = ref 1 in
      queue.(0) <- s;
      while !head < !tail do
        let v = queue.(!head) in
        incr head;
        Graph.iter_neighbors g v (fun w ->
            if label.(w) < 0 then begin
              label.(w) <- c;
              queue.(!tail) <- w;
              incr tail
            end)
      done
    end
  done;
  (label, !k)

let is_connected g =
  let _, k = components g in
  k <= 1

let largest_component g =
  let label, k = components g in
  if k = 0 then 0
  else begin
    let size = Array.make k 0 in
    Array.iter (fun c -> size.(c) <- size.(c) + 1) label;
    Array.fold_left max 0 size
  end

let eccentricity g v =
  let dist = bfs g v in
  Array.fold_left max 0 dist

let farthest g v =
  let dist = bfs g v in
  let best = ref v and best_d = ref 0 in
  Array.iteri
    (fun w d ->
      if d > !best_d then begin
        best := w;
        best_d := d
      end)
    dist;
  (!best, !best_d)

let diameter_lower_bound g ~rng ~samples =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let best = ref 0 in
    for _ = 1 to max samples 1 do
      let s = Rng.int rng n in
      (* Double sweep: BFS to the farthest vertex, then BFS back. *)
      let far, d1 = farthest g s in
      let _, d2 = farthest g far in
      if d1 > !best then best := d1;
      if d2 > !best then best := d2
    done;
    !best
  end

let average_distance g ~rng ~samples =
  let n = Graph.n g in
  if n = 0 then nan
  else begin
    let total = ref 0 and count = ref 0 in
    for _ = 1 to max samples 1 do
      let s = Rng.int rng n in
      let dist = bfs g s in
      Array.iter
        (fun d ->
          if d > 0 then begin
            total := !total + d;
            incr count
          end)
        dist
    done;
    if !count = 0 then nan else float_of_int !total /. float_of_int !count
  end
