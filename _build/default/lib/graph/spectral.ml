module Rng = Rumor_rng.Rng

let norm x = sqrt (Array.fold_left (fun s v -> s +. (v *. v)) 0. x)

let deflate_ones x =
  let n = Array.length x in
  if n > 0 then begin
    let mean = Array.fold_left ( +. ) 0. x /. float_of_int n in
    for i = 0 to n - 1 do
      x.(i) <- x.(i) -. mean
    done
  end

let multiply g x y =
  let n = Graph.n g in
  for v = 0 to n - 1 do
    let acc = ref 0. in
    Graph.iter_neighbors g v (fun w -> acc := !acc +. x.(w));
    y.(v) <- !acc
  done

let lambda2 g ~rng ~iters =
  let n = Graph.n g in
  if n <= 1 then 0.
  else begin
    let x = Array.init n (fun _ -> Rng.float rng -. 0.5) in
    let y = Array.make n 0. in
    deflate_ones x;
    let nx = norm x in
    if nx = 0. then 0.
    else begin
      Array.iteri (fun i v -> x.(i) <- v /. nx) x;
      let estimate = ref 0. in
      for _ = 1 to max iters 1 do
        multiply g x y;
        deflate_ones y;
        let ny = norm y in
        if ny > 0. then begin
          estimate := ny;
          for i = 0 to n - 1 do
            x.(i) <- y.(i) /. ny
          done
        end
      done;
      !estimate
    end
  end

let spectral_gap g ~rng ~iters =
  let d =
    match Graph.is_regular g with
    | Some d -> float_of_int d
    | None -> (Metrics.degree_stats g).Metrics.mean
  in
  d -. lambda2 g ~rng ~iters

let ramanujan_bound d = 2. *. sqrt (float_of_int (max (d - 1) 0))

let mixing_time_estimate g ~rng ~eps =
  let n = float_of_int (Graph.n g) in
  if n <= 1. then 0.
  else begin
    let d =
      match Graph.is_regular g with
      | Some d -> float_of_int d
      | None -> (Metrics.degree_stats g).Metrics.mean
    in
    let l2 = lambda2 g ~rng ~iters:60 in
    if l2 <= 0. || l2 >= d then infinity
    else log (n /. eps) /. log (d /. l2)
  end
