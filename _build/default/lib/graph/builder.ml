type t = {
  n : int;
  mutable us : int array;
  mutable vs : int array;
  mutable len : int;
}

let create ?(capacity = 64) ~n () =
  if n < 0 then invalid_arg "Builder.create: n < 0";
  let capacity = max capacity 1 in
  { n; us = Array.make capacity 0; vs = Array.make capacity 0; len = 0 }

let n b = b.n
let edge_count b = b.len

let grow b =
  let cap = Array.length b.us in
  let us = Array.make (2 * cap) 0 and vs = Array.make (2 * cap) 0 in
  Array.blit b.us 0 us 0 b.len;
  Array.blit b.vs 0 vs 0 b.len;
  b.us <- us;
  b.vs <- vs

let add_edge b u v =
  if u < 0 || u >= b.n || v < 0 || v >= b.n then
    invalid_arg "Builder.add_edge: endpoint range";
  if b.len = Array.length b.us then grow b;
  b.us.(b.len) <- u;
  b.vs.(b.len) <- v;
  b.len <- b.len + 1

let build b =
  let deg = Array.make b.n 0 in
  for i = 0 to b.len - 1 do
    deg.(b.us.(i)) <- deg.(b.us.(i)) + 1;
    deg.(b.vs.(i)) <- deg.(b.vs.(i)) + 1
  done;
  let off = Array.make (b.n + 1) 0 in
  for i = 0 to b.n - 1 do
    off.(i + 1) <- off.(i) + deg.(i)
  done;
  let adj = Array.make off.(b.n) 0 in
  let cursor = Array.copy off in
  for i = 0 to b.len - 1 do
    let u = b.us.(i) and v = b.vs.(i) in
    adj.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1;
    adj.(cursor.(v)) <- u;
    cursor.(v) <- cursor.(v) + 1
  done;
  Graph.create ~n:b.n ~off ~adj
