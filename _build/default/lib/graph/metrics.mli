(** Descriptive statistics of a graph: degrees, triangles, clustering. *)

type degree_stats = {
  min : int;
  max : int;
  mean : float;
  variance : float;
}
(** Summary of the degree sequence. *)

val degree_stats : Graph.t -> degree_stats
(** Degree summary; all-zero on the empty graph. *)

val degree_histogram : Graph.t -> int array
(** [degree_histogram g] has length [max_degree g + 1];
    entry [d] counts vertices of degree [d]. *)

val triangles_at : Graph.t -> int -> int
(** [triangles_at g v] counts unordered neighbour pairs of [v] that are
    themselves adjacent. O(deg^2 * min-deg) per vertex — fine for the
    small degrees this project targets. *)

val local_clustering : Graph.t -> int -> float
(** Local clustering coefficient of a vertex; 0 if degree < 2. *)

val global_clustering : Graph.t -> rng:Rumor_rng.Rng.t -> samples:int -> float
(** Average local clustering over [samples] random vertices. Random
    regular graphs with small [d] should score close to 0. *)

val edge_boundary : Graph.t -> bool array -> int
(** [edge_boundary g inside] counts edges with exactly one endpoint in
    the set marked by [inside]. *)

val internal_edges : Graph.t -> bool array -> int
(** Edges with both endpoints inside the marked set (self-loops count
    once). *)

val conductance : Graph.t -> bool array -> float
(** [conductance g s] is [boundary / min(vol S, vol V\S)], the standard
    cut conductance; [nan] if either side has volume 0. *)
