(** Empirical checks of the Expander-Mixing Lemma.

    For a [d]-regular graph with second eigenvalue [lambda], the lemma
    bounds [| e(S, V\S) - d|S||V\S|/n | <= lambda * sqrt(|S||V\S|)] for
    every vertex set [S]. The lower-bound proof (Section 2) applies it
    to the informed/uninformed cut; this module lets experiments verify
    the inequality on sampled sets of generated graphs. *)

type sample = {
  set_size : int;          (** |S| *)
  boundary : int;          (** e(S, V\S) *)
  expected : float;        (** d|S||V\S|/n *)
  discrepancy : float;     (** |boundary - expected| / sqrt(|S||V\S|) *)
}
(** One sampled set and its mixing discrepancy — the discrepancy is an
    empirical lower bound on [lambda]. *)

val sample_set : Graph.t -> rng:Rumor_rng.Rng.t -> size:int -> sample
(** Evaluate the lemma on one uniform random set of [size] vertices.
    @raise Invalid_argument if [size] is outside [\[1, n-1\]]. *)

val max_discrepancy :
  Graph.t -> rng:Rumor_rng.Rng.t -> sizes:int list -> per_size:int -> float
(** Largest discrepancy over [per_size] random sets of each size in
    [sizes]: an empirical certificate that the instance mixes. *)
