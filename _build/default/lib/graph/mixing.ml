module Rng = Rumor_rng.Rng

type sample = {
  set_size : int;
  boundary : int;
  expected : float;
  discrepancy : float;
}

let sample_set g ~rng ~size =
  let n = Graph.n g in
  if size < 1 || size >= n then invalid_arg "Mixing.sample_set: size";
  let members = Rng.distinct rng ~bound:n ~k:size in
  let inside = Array.make n false in
  Array.iter (fun v -> inside.(v) <- true) members;
  let boundary = Metrics.edge_boundary g inside in
  let d =
    match Graph.is_regular g with
    | Some d -> float_of_int d
    | None -> (Metrics.degree_stats g).Metrics.mean
  in
  let s = float_of_int size and c = float_of_int (n - size) in
  let expected = d *. s *. c /. float_of_int n in
  let discrepancy = abs_float (float_of_int boundary -. expected) /. sqrt (s *. c) in
  { set_size = size; boundary; expected; discrepancy }

let max_discrepancy g ~rng ~sizes ~per_size =
  List.fold_left
    (fun acc size ->
      let worst = ref acc in
      for _ = 1 to max per_size 1 do
        let s = sample_set g ~rng ~size in
        if s.discrepancy > !worst then worst := s.discrepancy
      done;
      !worst)
    0. sizes
