(** Spectral estimates for (near-)regular graphs.

    The lower-bound proof (Section 2) relies on the Expander-Mixing
    Lemma with [lambda_2 <= 2*sqrt(d-1)*(1+o(1))] for random regular
    graphs (Friedman's theorem). This module estimates [lambda_2] by
    power iteration so experiments and tests can verify the property on
    generated instances. *)

val lambda2 : Graph.t -> rng:Rumor_rng.Rng.t -> iters:int -> float
(** [lambda2 g ~rng ~iters] estimates [max(|mu_2|, |mu_n|)] — the
    largest adjacency eigenvalue in absolute value after deflating the
    all-ones direction — by [iters] rounds of power iteration from a
    random start vector. Meaningful for regular or near-regular graphs,
    where the top eigenvector is (close to) the all-ones vector. *)

val spectral_gap : Graph.t -> rng:Rumor_rng.Rng.t -> iters:int -> float
(** [spectral_gap g] is [d - lambda2 g] for a [d]-regular graph, using
    the mean degree for irregular graphs. *)

val ramanujan_bound : int -> float
(** [ramanujan_bound d] is [2 * sqrt (d - 1)], the asymptotic
    second-eigenvalue bound met by random regular graphs. *)

val mixing_time_estimate : Graph.t -> rng:Rumor_rng.Rng.t -> eps:float -> float
(** Crude upper estimate of the lazy-random-walk mixing time
    [log(n/eps) / log(d/lambda2)]; [infinity] when the spectral
    estimate gives no gap. *)
