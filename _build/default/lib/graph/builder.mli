(** Incremental construction of {!Graph.t} values.

    Generators accumulate edges into a builder (amortised O(1) per
    edge, arrays rather than lists) and seal it into a CSR graph. *)

type t
(** A mutable edge accumulator over a fixed vertex set. *)

val create : ?capacity:int -> n:int -> unit -> t
(** [create ~n ()] is an empty builder on vertices [0 .. n-1].
    [capacity] pre-sizes the edge store. *)

val n : t -> int
(** Number of vertices. *)

val edge_count : t -> int
(** Number of edges added so far. *)

val add_edge : t -> int -> int -> unit
(** [add_edge b u v] records the undirected edge [(u, v)]. Parallel
    edges and self-loops are recorded as given.
    @raise Invalid_argument if an endpoint is outside [\[0, n)]. *)

val build : t -> Graph.t
(** [build b] seals the accumulated edges into a graph. The builder
    may continue to accumulate afterwards (the graph is a snapshot). *)
