(** Breadth-first search, connectivity and distance queries. *)

val bfs : Graph.t -> int -> int array
(** [bfs g src] is the array of hop distances from [src]; unreachable
    vertices get [-1]. O(n + m). *)

val bfs_multi : Graph.t -> int list -> int array
(** [bfs_multi g srcs] is the distance to the nearest of [srcs]. *)

val components : Graph.t -> int array * int
(** [components g] labels each vertex with a component id in
    [\[0, k)] and returns [(labels, k)]. *)

val is_connected : Graph.t -> bool
(** Whether the graph has exactly one connected component (the empty
    graph counts as connected). *)

val largest_component : Graph.t -> int
(** Size of the largest connected component (0 for the empty graph). *)

val eccentricity : Graph.t -> int -> int
(** [eccentricity g v] is the largest finite BFS distance from [v]
    within [v]'s component. *)

val diameter_lower_bound : Graph.t -> rng:Rumor_rng.Rng.t -> samples:int -> int
(** [diameter_lower_bound g ~rng ~samples] runs BFS from [samples]
    random vertices (plus a double-sweep refinement) and returns the
    largest eccentricity seen — a lower bound on the diameter, and for
    random regular graphs an accurate estimate. *)

val average_distance : Graph.t -> rng:Rumor_rng.Rng.t -> samples:int -> float
(** Mean pairwise distance estimated from [samples] BFS sources,
    ignoring unreachable pairs. Returns [nan] on the empty graph. *)
