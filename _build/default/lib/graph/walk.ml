module Rng = Rumor_rng.Rng

let step rng g v =
  let d = Graph.degree g v in
  if d = 0 then invalid_arg "Walk.step: isolated vertex";
  Graph.neighbor g v (Rng.int rng d)

let endpoint rng g ~start ~length =
  if length < 0 then invalid_arg "Walk.endpoint: negative length";
  let v = ref start in
  for _ = 1 to length do
    v := step rng g !v
  done;
  !v

let path rng g ~start ~length =
  if length < 0 then invalid_arg "Walk.path: negative length";
  let out = Array.make (length + 1) start in
  for i = 1 to length do
    out.(i) <- step rng g out.(i - 1)
  done;
  out

let endpoint_counts rng g ~start ~length ~samples =
  let counts = Array.make (Graph.n g) 0 in
  for _ = 1 to max samples 1 do
    let v = endpoint rng g ~start ~length in
    counts.(v) <- counts.(v) + 1
  done;
  counts

let total_variation_from_uniform counts =
  let n = Array.length counts in
  if n = 0 then invalid_arg "Walk.total_variation_from_uniform: empty";
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then invalid_arg "Walk.total_variation_from_uniform: no samples";
  let uniform = 1. /. float_of_int n in
  let sum =
    Array.fold_left
      (fun acc c ->
        acc +. abs_float ((float_of_int c /. float_of_int total) -. uniform))
      0. counts
  in
  sum /. 2.

let cover_steps rng g ~start ~limit =
  let n = Graph.n g in
  let seen = Array.make n false in
  seen.(start) <- true;
  let remaining = ref (n - 1) in
  let v = ref start in
  let steps = ref 0 in
  while !remaining > 0 && !steps < limit do
    incr steps;
    v := step rng g !v;
    if not seen.(!v) then begin
      seen.(!v) <- true;
      decr remaining
    end
  done;
  if !remaining = 0 then Some !steps else None
