module Rng = Rumor_rng.Rng

(* Shortest cycle through a BFS root, the classic O(m) per-root bound:
   any non-tree edge (u, w) closes a cycle of length <= dist u + dist w
   + 1; the minimum over roots is the girth for simple graphs. *)
let cycle_through g root =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 1 in
  queue.(0) <- root;
  dist.(root) <- 0;
  let best = ref max_int in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    (* One adjacency entry equal to parent.(u) is the tree edge; skip
       exactly one occurrence of it. *)
    let parent_skipped = ref false in
    Graph.iter_neighbors g u (fun w ->
        if w = parent.(u) && not !parent_skipped then parent_skipped := true
        else if dist.(w) < 0 then begin
          dist.(w) <- dist.(u) + 1;
          parent.(w) <- u;
          queue.(!tail) <- w;
          incr tail
        end
        else begin
          let candidate = dist.(u) + dist.(w) + 1 in
          if candidate < !best then best := candidate
        end)
  done;
  !best

let girth ?(max_roots = 512) ~rng g =
  if Graph.count_self_loops g > 0 then Some 1
  else if Graph.count_parallel_edges g > 0 then Some 2
  else begin
    let n = Graph.n g in
    let best = ref max_int in
    if n <= max_roots then
      for v = 0 to n - 1 do
        let c = cycle_through g v in
        if c < !best then best := c
      done
    else
      for _ = 1 to max_roots do
        let c = cycle_through g (Rng.int rng n) in
        if c < !best then best := c
      done;
    if !best = max_int then None else Some !best
  end

let ball_is_tree g v ~radius =
  (* Collect the ball, then compare induced edge count to |ball| - 1. *)
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let members = ref [] in
  let queue = Queue.create () in
  dist.(v) <- 0;
  Queue.push v queue;
  members := [ v ];
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    if dist.(u) < radius then
      Graph.iter_neighbors g u (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(u) + 1;
            members := w :: !members;
            Queue.push w queue
          end)
  done;
  let size = List.length !members in
  let stubs =
    List.fold_left
      (fun acc u ->
        Graph.fold_neighbors g u
          (fun acc w -> if dist.(w) >= 0 then acc + 1 else acc)
          acc)
      0 !members
  in
  (* Each induced edge contributes two stubs (self-loops also two). *)
  stubs / 2 = size - 1

let tree_fraction g ~rng ~radius ~samples =
  let n = Graph.n g in
  if n = 0 then nan
  else begin
    let hits = ref 0 in
    let samples = max samples 1 in
    for _ = 1 to samples do
      if ball_is_tree g (Rng.int rng n) ~radius then incr hits
    done;
    float_of_int !hits /. float_of_int samples
  end
