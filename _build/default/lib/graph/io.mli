(** Plain-text serialisation of graphs.

    The format is a line-oriented edge list:

    {v
    rumor-graph 1 <n> <m>
    <u> <v>        (m lines, one per edge copy; self-loops as u u)
    v}

    Stable across versions of this library, diff-friendly, and loadable
    by any script — the CLI uses it to pass generated instances between
    invocations. *)

val to_string : Graph.t -> string
(** Serialise. Edges are emitted in [iter_edges] order. *)

val of_string : string -> Graph.t
(** Parse; inverse of {!to_string} up to edge order.
    @raise Failure with a line number on malformed input. *)

val to_file : string -> Graph.t -> unit
(** Write to a path (truncates).
    @raise Sys_error on IO failure. *)

val of_file : string -> Graph.t
(** Load from a path.
    @raise Sys_error on IO failure.
    @raise Failure on malformed content. *)
