lib/graph/structure.mli: Graph Rumor_rng
