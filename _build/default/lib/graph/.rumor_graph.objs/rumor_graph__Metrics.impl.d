lib/graph/metrics.ml: Array Graph Rumor_rng
