lib/graph/graph.mli:
