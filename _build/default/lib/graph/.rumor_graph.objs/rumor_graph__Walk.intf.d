lib/graph/walk.mli: Graph Rumor_rng
