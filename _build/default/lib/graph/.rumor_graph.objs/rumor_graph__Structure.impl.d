lib/graph/structure.ml: Array Graph List Queue Rumor_rng
