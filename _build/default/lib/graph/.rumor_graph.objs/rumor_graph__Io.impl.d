lib/graph/io.ml: Buffer Fun Graph List Printf String
