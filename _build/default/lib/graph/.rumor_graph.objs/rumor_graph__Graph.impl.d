lib/graph/graph.ml: Array List
