lib/graph/mixing.ml: Array Graph List Metrics Rumor_rng
