lib/graph/spectral.ml: Array Graph Metrics Rumor_rng
