lib/graph/walk.ml: Array Graph Rumor_rng
