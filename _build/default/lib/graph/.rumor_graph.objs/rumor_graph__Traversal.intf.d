lib/graph/traversal.mli: Graph Rumor_rng
