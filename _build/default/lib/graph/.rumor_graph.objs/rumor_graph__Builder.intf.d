lib/graph/builder.mli: Graph
