lib/graph/mixing.mli: Graph Rumor_rng
