lib/graph/traversal.ml: Array Graph List Rumor_rng
