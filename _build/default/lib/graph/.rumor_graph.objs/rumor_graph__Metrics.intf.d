lib/graph/metrics.mli: Graph Rumor_rng
