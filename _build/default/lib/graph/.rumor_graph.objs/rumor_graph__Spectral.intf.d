lib/graph/spectral.mli: Graph Rumor_rng
