module Rng = Rumor_rng.Rng

type degree_stats = {
  min : int;
  max : int;
  mean : float;
  variance : float;
}

let degree_stats g =
  let n = Graph.n g in
  if n = 0 then { min = 0; max = 0; mean = 0.; variance = 0. }
  else begin
    let mn = ref max_int and mx = ref 0 and sum = ref 0 and sq = ref 0. in
    for v = 0 to n - 1 do
      let d = Graph.degree g v in
      if d < !mn then mn := d;
      if d > !mx then mx := d;
      sum := !sum + d;
      sq := !sq +. (float_of_int d *. float_of_int d)
    done;
    let mean = float_of_int !sum /. float_of_int n in
    { min = !mn; max = !mx; mean; variance = (!sq /. float_of_int n) -. (mean *. mean) }
  end

let degree_histogram g =
  let hist = Array.make (Graph.max_degree g + 1) 0 in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    hist.(d) <- hist.(d) + 1
  done;
  hist

let triangles_at g v =
  let d = Graph.degree g v in
  let count = ref 0 in
  for i = 0 to d - 1 do
    for j = i + 1 to d - 1 do
      let a = Graph.neighbor g v i and b = Graph.neighbor g v j in
      if a <> v && b <> v && a <> b && Graph.mem_edge g a b then incr count
    done
  done;
  !count

let local_clustering g v =
  let d = Graph.degree g v in
  if d < 2 then 0.
  else begin
    let pairs = d * (d - 1) / 2 in
    float_of_int (triangles_at g v) /. float_of_int pairs
  end

let global_clustering g ~rng ~samples =
  let n = Graph.n g in
  if n = 0 then nan
  else begin
    let total = ref 0. in
    let samples = max samples 1 in
    for _ = 1 to samples do
      total := !total +. local_clustering g (Rng.int rng n)
    done;
    !total /. float_of_int samples
  end

let edge_boundary g inside =
  let cut = ref 0 in
  Graph.iter_edges g (fun u v -> if inside.(u) <> inside.(v) then incr cut);
  !cut

let internal_edges g inside =
  let total = ref 0 in
  Graph.iter_edges g (fun u v -> if inside.(u) && inside.(v) then incr total);
  !total

let conductance g inside =
  let vol_in = ref 0 and vol_out = ref 0 in
  for v = 0 to Graph.n g - 1 do
    if inside.(v) then vol_in := !vol_in + Graph.degree g v
    else vol_out := !vol_out + Graph.degree g v
  done;
  let denom = min !vol_in !vol_out in
  if denom = 0 then nan
  else float_of_int (edge_boundary g inside) /. float_of_int denom
