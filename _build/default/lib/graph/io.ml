let magic = "rumor-graph"
let version = 1

let to_string g =
  let buf = Buffer.create (16 * (Graph.m g + 1)) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d %d\n" magic version (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let parse_error line msg = failwith (Printf.sprintf "Io.of_string: line %d: %s" line msg)

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | [] -> parse_error 0 "empty input"
  | header :: rest -> begin
      let n, m =
        match String.split_on_char ' ' (String.trim header) with
        | [ word; ver; n; m ] when word = magic -> begin
            (match int_of_string_opt ver with
            | Some v when v = version -> ()
            | Some _ -> parse_error 1 "unsupported version"
            | None -> parse_error 1 "bad version field");
            match (int_of_string_opt n, int_of_string_opt m) with
            | Some n, Some m when n >= 0 && m >= 0 -> (n, m)
            | _ -> parse_error 1 "bad counts"
          end
        | _ -> parse_error 1 "bad header"
      in
      let edges = ref [] in
      let count = ref 0 in
      List.iteri
        (fun i line ->
          let line = String.trim line in
          if line <> "" then begin
            match String.split_on_char ' ' line with
            | [ u; v ] -> begin
                match (int_of_string_opt u, int_of_string_opt v) with
                | Some u, Some v ->
                    if u < 0 || u >= n || v < 0 || v >= n then
                      parse_error (i + 2) "endpoint out of range";
                    edges := (u, v) :: !edges;
                    incr count
                | _ -> parse_error (i + 2) "bad endpoints"
              end
            | _ -> parse_error (i + 2) "expected two fields"
          end)
        rest;
      if !count <> m then
        parse_error (List.length lines)
          (Printf.sprintf "edge count mismatch: header says %d, found %d" m !count);
      Graph.of_edges ~n !edges
    end

let to_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string g))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      of_string s)
