(** Compact immutable undirected graphs in compressed-sparse-row form.

    Vertices are integers [0 .. n-1]. The adjacency of each vertex is a
    {e multiset}: parallel edges appear once per copy and a self-loop
    [(v,v)] appears twice in [v]'s list (it consumes two stubs of [v],
    matching the configuration model of the paper, Section 1.2). The
    degree of [v] is the length of its adjacency list. *)

type t
(** An immutable undirected multigraph. *)

val create : n:int -> off:int array -> adj:int array -> t
(** [create ~n ~off ~adj] wraps raw CSR arrays. [off] must have length
    [n+1], be non-decreasing, start at 0 and end at [Array.length adj];
    every entry of [adj] must lie in [\[0, n)].
    @raise Invalid_argument if the arrays are malformed. *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph on [n] vertices from an
    undirected edge list. Each pair [(u, v)] contributes one edge; pass
    a pair twice for a parallel edge. Self-loops are allowed.
    @raise Invalid_argument if an endpoint is outside [\[0, n)]. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of undirected edges (self-loops count once, parallel edges
    once per copy). *)

val degree : t -> int -> int
(** [degree g v] is the size of [v]'s adjacency multiset. *)

val neighbor : t -> int -> int -> int
(** [neighbor g v i] is the [i]-th entry of [v]'s adjacency list,
    [0 <= i < degree g v]. Unchecked for speed in inner loops. *)

val neighbors : t -> int -> int array
(** [neighbors g v] is a fresh array of [v]'s adjacency list. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g v f] applies [f] to each neighbour of [v]
    (with multiplicity). *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** [fold_neighbors g v f init] folds over [v]'s adjacency list. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges g f] applies [f u v] once per undirected edge with
    [u <= v] (once per copy for parallel edges). *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests adjacency by scanning the shorter list;
    O(min degree). *)

val max_degree : t -> int
(** Largest degree, 0 for the empty graph. *)

val min_degree : t -> int
(** Smallest degree, 0 for the empty graph. *)

val is_regular : t -> int option
(** [is_regular g] is [Some d] if every vertex has degree [d]. *)

val count_self_loops : t -> int
(** Number of self-loops. *)

val count_parallel_edges : t -> int
(** Number of surplus edge copies: a pair joined by [k >= 2] edges
    contributes [k - 1]. A simple graph scores 0 on this and on
    {!count_self_loops}. *)

val is_simple : t -> bool
(** No self-loops and no parallel edges. *)

val to_edges : t -> (int * int) list
(** Edge list with [u <= v], suitable for {!of_edges} round-trips. *)

val invariant : t -> bool
(** Structural self-check: offsets well-formed, adjacency symmetric as
    a multiset. Intended for tests; O(n + m log m). *)
