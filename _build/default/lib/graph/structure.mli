(** Structural properties the paper's proofs lean on.

    The phase-1 analysis (Lemma 1) treats the neighbourhood of a newly
    informed node as if freshly generated — valid because sparse random
    regular graphs are locally tree-like: short cycles are rare and
    girth is large. These functions measure exactly that on concrete
    instances, so experiments can certify their inputs satisfy the
    proofs' structural assumptions. *)

val girth : ?max_roots:int -> rng:Rumor_rng.Rng.t -> Graph.t -> int option
(** Length of a shortest cycle: 1 for a self-loop, 2 for a parallel
    edge, the usual BFS bound otherwise; [None] for forests. For
    graphs with more than [max_roots] (default 512) vertices the BFS
    roots are sampled, making the result an upper bound on the girth
    (exact w.h.p. for the small girths of random graphs). *)

val ball_is_tree : Graph.t -> int -> radius:int -> bool
(** [ball_is_tree g v ~radius] — whether the subgraph induced by all
    vertices within [radius] hops of [v] is acyclic (a tree). *)

val tree_fraction :
  Graph.t -> rng:Rumor_rng.Rng.t -> radius:int -> samples:int -> float
(** Fraction of [samples] random vertices whose [radius]-ball is a
    tree. Close to 1 on sparse random regular graphs for
    [radius = O(log_d n)] — the "locally tree-like" certificate. *)
