type fit = { slope : float; intercept : float; r2 : float }

let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.linear: need >= 2 points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let mx = sx /. nf and my = sy /. nf in
  let sxx =
    List.fold_left (fun a (x, _) -> a +. ((x -. mx) *. (x -. mx))) 0. points
  in
  let sxy =
    List.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0. points
  in
  let syy =
    List.fold_left (fun a (_, y) -> a +. ((y -. my) *. (y -. my))) 0. points
  in
  if sxx = 0. then invalid_arg "Regression.linear: zero variance in x";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if syy = 0. then 1. else sxy *. sxy /. (sxx *. syy) in
  { slope; intercept; r2 }

let loglog points =
  let mapped =
    List.map
      (fun (x, y) ->
        if x <= 0. || y <= 0. then
          invalid_arg "Regression.loglog: non-positive data";
        (log x, log y))
      points
  in
  linear mapped

let semilogx points =
  let lg2 = log 2. in
  let mapped =
    List.map
      (fun (x, y) ->
        if x <= 0. then invalid_arg "Regression.semilogx: non-positive x";
        (log x /. lg2, y))
      points
  in
  linear mapped
