(** Least-squares fits, used to recover empirical scaling exponents
    (e.g. "transmissions per node grow like [log n]" shows up as slope
    ≈ 1 in a fit against [log2 n]). *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination *)
}

val linear : (float * float) list -> fit
(** [linear points] fits [y = slope*x + intercept].
    @raise Invalid_argument with fewer than 2 points or zero variance
    in [x]. *)

val loglog : (float * float) list -> fit
(** [loglog points] fits [log y = slope * log x + intercept] — the
    slope is the power-law exponent. Points with non-positive
    coordinates are rejected.
    @raise Invalid_argument as {!linear}, or on non-positive data. *)

val semilogx : (float * float) list -> fit
(** [semilogx points] fits [y = slope * log2 x + intercept]: slope is
    the "per doubling of x" growth — the natural scale for
    [Theta(log n)] claims. *)
