let glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let render data =
  if Array.length data = 0 then ""
  else begin
    let finite = Array.to_list data |> List.filter (fun x -> Float.is_finite x) in
    match finite with
    | [] -> String.concat "" (List.init (Array.length data) (fun _ -> " "))
    | first :: rest ->
        let lo = List.fold_left Float.min first rest in
        let hi = List.fold_left Float.max first rest in
        let span = hi -. lo in
        let buf = Buffer.create (3 * Array.length data) in
        Array.iter
          (fun x ->
            if not (Float.is_finite x) then Buffer.add_char buf ' '
            else begin
              let level =
                if span = 0. then 3
                else begin
                  let raw = int_of_float ((x -. lo) /. span *. 7.99) in
                  if raw < 0 then 0 else if raw > 7 then 7 else raw
                end
              in
              Buffer.add_string buf glyphs.(level)
            end)
          data;
        Buffer.contents buf
  end

let render_ints data = render (Array.map float_of_int data)

let with_scale data =
  if Array.length data = 0 then ""
  else begin
    let lo = Array.fold_left Float.min data.(0) data in
    let hi = Array.fold_left Float.max data.(0) data in
    Printf.sprintf "%.3g %s %.3g" lo (render data) hi
  end
