type outcome = {
  statistic : float;
  dof : int;
  p_value : float;
  uniform_plausible : bool;
}

let goodness_of_fit ~observed ~expected =
  let cells = Array.length observed in
  if cells < 2 then invalid_arg "Chisq.goodness_of_fit: need >= 2 cells";
  if Array.length expected <> cells then
    invalid_arg "Chisq.goodness_of_fit: length mismatch";
  Array.iter
    (fun e -> if e <= 0. then invalid_arg "Chisq.goodness_of_fit: expected <= 0")
    expected;
  let statistic = ref 0. in
  for i = 0 to cells - 1 do
    let diff = float_of_int observed.(i) -. expected.(i) in
    statistic := !statistic +. (diff *. diff /. expected.(i))
  done;
  let dof = cells - 1 in
  let p_value =
    Special.regularized_gamma_q (float_of_int dof /. 2.) (!statistic /. 2.)
  in
  { statistic = !statistic; dof; p_value; uniform_plausible = p_value >= 0.01 }

let uniform counts =
  let cells = Array.length counts in
  if cells < 2 then invalid_arg "Chisq.uniform: need >= 2 cells";
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then invalid_arg "Chisq.uniform: zero total";
  let expected =
    Array.make cells (float_of_int total /. float_of_int cells)
  in
  goodness_of_fit ~observed:counts ~expected
