(** Descriptive statistics of a sample of floats. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p10 : float;
  p90 : float;
}

val of_array : float array -> t
(** Summarise a sample.
    @raise Invalid_argument on the empty array. *)

val of_list : float list -> t
(** List version of {!of_array}. *)

val of_ints : int list -> t
(** Convenience for integer observations. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0, 1\]] interpolates linearly
    in an already-sorted array.
    @raise Invalid_argument on an empty array or [q] out of range. *)

val ci95_halfwidth : t -> float
(** Half-width of the normal-approximation 95% confidence interval of
    the mean: [1.96 * stddev / sqrt count]; 0 for singleton samples. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering ["mean ± ci [min, max]"]. *)
