(** Welch's two-sample t-test, for deciding whether two protocols'
    measurements genuinely differ across seeded repetitions. *)

type outcome = {
  t_stat : float;  (** Welch's t statistic *)
  dof : float;  (** Welch–Satterthwaite degrees of freedom *)
  p_value : float;  (** two-sided, via the normal approximation for
                        [dof >= 30] and a t-CDF series otherwise *)
  significant : bool;  (** [p_value < 0.05] *)
}

val welch : Summary.t -> Summary.t -> outcome
(** [welch a b] tests mean equality of the two summarised samples.
    @raise Invalid_argument if either sample has fewer than 2 points or
    both variances are 0. *)

val normal_cdf : float -> float
(** Standard normal CDF (Abramowitz–Stegun 7.1.26 via erf, absolute
    error below 1.5e-7) — exposed for tests and other approximations. *)
