(** Special functions backing the statistical tests. All are classical
    numerical approximations accurate to at least 1e-7 over the ranges
    the library uses. *)

val erf : float -> float
(** Error function (Abramowitz–Stegun 7.1.26). *)

val normal_cdf : float -> float
(** Standard normal CDF. *)

val log_gamma : float -> float
(** [log (Gamma x)] for [x > 0] (Lanczos), with the reflection formula
    for [x < 0.5]. *)

val incomplete_beta : float -> float -> float -> float
(** [incomplete_beta a b x] is the regularised incomplete beta
    [I_x(a, b)], computed with Lentz's continued fraction. *)

val regularized_gamma_p : float -> float -> float
(** [regularized_gamma_p a x] is [P(a, x) = gamma(a, x)/Gamma(a)]
    (series for [x < a+1], continued fraction otherwise).
    @raise Invalid_argument if [a <= 0] or [x < 0]. *)

val regularized_gamma_q : float -> float -> float
(** [Q(a, x) = 1 - P(a, x)] — the upper tail, e.g. the chi-square
    survival function with [a = dof/2], [x = stat/2]. *)
