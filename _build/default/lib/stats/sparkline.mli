(** One-line unicode charts for terminals. *)

val render : float array -> string
(** [render data] maps each value to one of eight block glyphs
    (▁ .. █), scaled to the data's range; a constant series renders as
    mid-height blocks, the empty array as [""]. NaNs render as spaces. *)

val render_ints : int array -> string
(** Integer convenience wrapper. *)

val with_scale : float array -> string
(** ["min [spark] max"] — the sparkline bracketed by its range. *)
