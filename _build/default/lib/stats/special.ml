let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = abs_float x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let y =
    1.
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
         -. 0.284496736)
        *. t
       +. 0.254829592)
       *. t
       *. exp (-.x *. x)
  in
  sign *. y

let normal_cdf x = 0.5 *. (1. +. erf (x /. sqrt 2.))

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let g = 7. in
    let coef =
      [|
        0.99999999999980993; 676.5203681218851; -1259.1392167224028;
        771.32342877765313; -176.61502916214059; 12.507343278686905;
        -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
      |]
    in
    let x = x -. 1. in
    let a = ref coef.(0) in
    for i = 1 to 8 do
      a := !a +. (coef.(i) /. (x +. float_of_int i))
    done;
    let t = x +. g +. 0.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let betacf a b x =
  let max_iter = 200 and eps = 3e-12 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if abs_float !d < fpmin then d := fpmin;
  d := 1. /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue = ref true in
  while !continue && !m <= max_iter do
    let mf = float_of_int !m in
    let m2 = 2. *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1. +. (aa *. !d);
    if abs_float !d < fpmin then d := fpmin;
    c := 1. +. (aa /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1. /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1. +. (aa *. !d);
    if abs_float !d < fpmin then d := fpmin;
    c := 1. +. (aa /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if abs_float (del -. 1.) < eps then continue := false;
    incr m
  done;
  !h

let incomplete_beta a b x =
  if x <= 0. then 0.
  else if x >= 1. then 1.
  else begin
    let bt =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. log x)
        +. (b *. log (1. -. x)))
    in
    if x < (a +. 1.) /. (a +. b +. 2.) then bt *. betacf a b x /. a
    else 1. -. (bt *. betacf b a (1. -. x) /. b)
  end

(* Regularised incomplete gamma, Numerical-Recipes style. *)
let gamma_series a x =
  let eps = 3e-12 and max_iter = 500 in
  let ap = ref a in
  let sum = ref (1. /. a) in
  let del = ref !sum in
  let iter = ref 0 in
  let continue = ref true in
  while !continue && !iter < max_iter do
    incr iter;
    ap := !ap +. 1.;
    del := !del *. x /. !ap;
    sum := !sum +. !del;
    if abs_float !del < abs_float !sum *. eps then continue := false
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. log_gamma a)

let gamma_cf a x =
  let eps = 3e-12 and fpmin = 1e-300 and max_iter = 500 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. fpmin) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue = ref true in
  while !continue && !i <= max_iter do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.;
    d := (an *. !d) +. !b;
    if abs_float !d < fpmin then d := fpmin;
    c := !b +. (an /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if abs_float (del -. 1.) < eps then continue := false;
    incr i
  done;
  !h *. exp ((-.x) +. (a *. log x) -. log_gamma a)

let regularized_gamma_p a x =
  if a <= 0. then invalid_arg "Special.regularized_gamma_p: a <= 0";
  if x < 0. then invalid_arg "Special.regularized_gamma_p: x < 0";
  if x = 0. then 0.
  else if x < a +. 1. then gamma_series a x
  else 1. -. gamma_cf a x

let regularized_gamma_q a x = 1. -. regularized_gamma_p a x
