type series = { name : string; marker : char; points : (float * float) list }

let render ?(width = 60) ?(height = 16) ?(x_label = "x") ?(y_label = "y")
    series_list =
  if width < 8 then invalid_arg "Plot.render: width < 8";
  if height < 4 then invalid_arg "Plot.render: height < 4";
  let finite =
    List.concat_map
      (fun s ->
        List.filter
          (fun (x, y) -> Float.is_finite x && Float.is_finite y)
          s.points)
      series_list
  in
  let buf = Buffer.create (width * height * 2) in
  (match finite with
  | [] ->
      Buffer.add_string buf "(empty plot)\n"
  | (x0, y0) :: rest ->
      let xmin = List.fold_left (fun a (x, _) -> Float.min a x) x0 rest in
      let xmax = List.fold_left (fun a (x, _) -> Float.max a x) x0 rest in
      let ymin = List.fold_left (fun a (_, y) -> Float.min a y) y0 rest in
      let ymax = List.fold_left (fun a (_, y) -> Float.max a y) y0 rest in
      let xspan = if xmax = xmin then 1. else xmax -. xmin in
      let yspan = if ymax = ymin then 1. else ymax -. ymin in
      let grid = Array.make_matrix height width ' ' in
      List.iter
        (fun s ->
          List.iter
            (fun (x, y) ->
              if Float.is_finite x && Float.is_finite y then begin
                let col =
                  int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
                in
                let row =
                  (height - 1)
                  - int_of_float
                      ((y -. ymin) /. yspan *. float_of_int (height - 1))
                in
                let col = max 0 (min (width - 1) col) in
                let row = max 0 (min (height - 1) row) in
                grid.(row).(col) <- s.marker
              end)
            s.points)
        series_list;
      Buffer.add_string buf
        (Printf.sprintf "%s (%.3g .. %.3g) vs %s (%.3g .. %.3g)\n" y_label ymin
           ymax x_label xmin xmax);
      let legend =
        String.concat "  "
          (List.map (fun s -> Printf.sprintf "%c=%s" s.marker s.name) series_list)
      in
      if legend <> "" then Buffer.add_string buf (legend ^ "\n");
      Array.iter
        (fun row ->
          Buffer.add_char buf '|';
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_string buf "|\n")
        grid;
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make width '-');
      Buffer.add_string buf "+\n");
  Buffer.contents buf
