lib/stats/table.mli:
