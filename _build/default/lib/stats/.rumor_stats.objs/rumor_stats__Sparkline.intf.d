lib/stats/sparkline.mli:
