lib/stats/ttest.mli: Summary
