lib/stats/chisq.ml: Array Special
