lib/stats/ttest.ml: Float Special Summary
