lib/stats/special.mli:
