lib/stats/experiment.ml: Array Domain List Rumor_rng Summary
