lib/stats/chisq.mli:
