lib/stats/sparkline.ml: Array Buffer Float List Printf String
