lib/stats/experiment.mli: Rumor_rng Summary
