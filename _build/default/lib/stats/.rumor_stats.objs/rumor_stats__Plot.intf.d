lib/stats/plot.mli:
