lib/stats/regression.mli:
