type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list;  (* reversed *)
}

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- row :: t.rows

let add_float_row t ?(decimals = 2) row =
  add_row t (List.map (fun x -> Printf.sprintf "%.*f" decimals x) row)

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.headers
  in
  let pad align width s =
    let gap = width - String.length s in
    if gap <= 0 then s
    else
      match align with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let line cells aligns =
    String.concat "  " (List.map2 (fun (w, a) c -> pad a w c)
        (List.combine widths aligns) cells)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.headers t.aligns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (line row t.aligns))
    rows;
  Buffer.contents buf

let print t = print_endline (render t)
