(** Seeded repetition of randomized measurements.

    Every experiment in the bench harness follows the same pattern:
    run a measurement under [reps] independent random streams (forked
    from a base seed, so any single repetition can be replayed) and
    summarise each extracted metric. *)

val replicate :
  seed:int -> reps:int -> (Rumor_rng.Rng.t -> 'a) -> 'a list
(** [replicate ~seed ~reps f] calls [f] once per repetition with an
    independent stream forked from [seed].
    @raise Invalid_argument if [reps < 1]. *)

val replicate_parallel :
  ?domains:int -> seed:int -> reps:int -> (Rumor_rng.Rng.t -> 'a) -> 'a list
(** Same results as {!replicate} (bit-for-bit: repetition [i] always
    gets stream [fork seed i]), computed on up to [domains] (default 4)
    OCaml domains. [f] must not share mutable state across calls. *)

val summarize :
  seed:int -> reps:int -> (Rumor_rng.Rng.t -> float) -> Summary.t
(** Replicate a scalar measurement and summarise it. *)

val mean_of :
  seed:int -> reps:int -> (Rumor_rng.Rng.t -> float) -> float
(** Shorthand for [(summarize ...).mean]. *)

val success_rate :
  seed:int -> reps:int -> (Rumor_rng.Rng.t -> bool) -> float
(** Fraction of repetitions returning [true]. *)
