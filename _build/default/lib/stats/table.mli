(** ASCII tables — the output format of the bench harness. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] starts a table with the given headers.
    @raise Invalid_argument on an empty column list. *)

val add_row : t -> string list -> unit
(** Append a row.
    @raise Invalid_argument if the width differs from the header. *)

val add_float_row : t -> ?decimals:int -> float list -> unit
(** Format every cell with [decimals] (default 2) fraction digits. *)

val render : t -> string
(** The table as a string with aligned columns and a separator line. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
