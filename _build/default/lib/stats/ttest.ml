type outcome = {
  t_stat : float;
  dof : float;
  p_value : float;
  significant : bool;
}

let normal_cdf = Special.normal_cdf

let t_two_sided_p ~t ~dof =
  let x = dof /. (dof +. (t *. t)) in
  Special.incomplete_beta (dof /. 2.) 0.5 x

let welch (a : Summary.t) (b : Summary.t) =
  if a.Summary.count < 2 || b.Summary.count < 2 then
    invalid_arg "Ttest.welch: need >= 2 points per sample";
  let va = a.Summary.stddev ** 2. /. float_of_int a.Summary.count in
  let vb = b.Summary.stddev ** 2. /. float_of_int b.Summary.count in
  if va +. vb = 0. then begin
    if a.Summary.mean = b.Summary.mean then
      { t_stat = 0.; dof = infinity; p_value = 1.; significant = false }
    else invalid_arg "Ttest.welch: zero variance with distinct means"
  end
  else begin
    let t = (a.Summary.mean -. b.Summary.mean) /. sqrt (va +. vb) in
    let dof =
      ((va +. vb) ** 2.)
      /. ((va ** 2. /. float_of_int (a.Summary.count - 1))
         +. (vb ** 2. /. float_of_int (b.Summary.count - 1)))
    in
    let p =
      if dof >= 30. then 2. *. (1. -. Special.normal_cdf (abs_float t))
      else t_two_sided_p ~t ~dof
    in
    let p = Float.min 1. (Float.max 0. p) in
    { t_stat = t; dof; p_value = p; significant = p < 0.05 }
  end
