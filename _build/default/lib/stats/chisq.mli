(** Chi-square goodness-of-fit tests — the principled version of the
    "is this histogram uniform?" checks used on PRNG output and
    random-walk endpoint distributions. *)

type outcome = {
  statistic : float;  (** the chi-square statistic *)
  dof : int;  (** degrees of freedom, cells - 1 *)
  p_value : float;  (** upper-tail probability *)
  uniform_plausible : bool;  (** [p_value >= 0.01] *)
}

val goodness_of_fit : observed:int array -> expected:float array -> outcome
(** Test observed counts against expected counts.
    @raise Invalid_argument if lengths differ, fewer than 2 cells, or
    an expected count is [<= 0]. *)

val uniform : int array -> outcome
(** [uniform counts] tests the histogram against the uniform
    distribution over its cells.
    @raise Invalid_argument on fewer than 2 cells or zero total. *)
