(** Multi-series ASCII scatter plots — the harness's "figures".

    Each series gets a marker character; points are binned onto a
    character grid with linear axes and the ranges printed on the
    frame. Intended for quick visual inspection of scaling
    relationships in terminal output (the numeric tables remain the
    primary record). *)

type series = { name : string; marker : char; points : (float * float) list }

val render :
  ?width:int -> ?height:int -> ?x_label:string -> ?y_label:string ->
  series list -> string
(** [render series] draws all series on one grid (default 60x16).
    Series listed later overwrite earlier markers on collision. Points
    with non-finite coordinates are skipped; an empty plot renders an
    empty frame.
    @raise Invalid_argument if [width] or [height] is below 8/4. *)
