(** Transient network partitions.

    The paper's failure story covers lost messages; real P2P systems
    also suffer {e partitions} — the overlay splits into components
    that cannot talk until connectivity heals. This module cuts an
    overlay along a vertex bipartition (removing all cross edges,
    remembering them) and can later heal it (re-adding exactly the
    removed edges). Combined with the engine's [on_round_end] hook it
    models a partition window during a broadcast. *)

type t
(** The set of removed cross edges, owned until {!heal}. *)

val split_random :
  Overlay.t -> rng:Rumor_rng.Rng.t -> fraction:float -> t
(** [split_random o ~fraction] assigns each live node to the minority
    side with probability [fraction] and removes every edge crossing
    the cut.
    @raise Invalid_argument if [fraction] is outside [\[0, 1\]]. *)

val split_by : Overlay.t -> side:(int -> bool) -> t
(** Partition along an explicit predicate (minority = [side v]). *)

val cut_size : t -> int
(** Number of edges currently removed. *)

val heal : Overlay.t -> t -> unit
(** Re-add all removed edges (skipping endpoints that died in the
    meantime). Idempotent: healing twice adds nothing twice. *)
