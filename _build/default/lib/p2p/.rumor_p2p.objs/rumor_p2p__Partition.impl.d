lib/p2p/partition.ml: Array List Overlay Rumor_rng
