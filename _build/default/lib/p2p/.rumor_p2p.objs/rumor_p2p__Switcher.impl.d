lib/p2p/switcher.ml: Overlay
