lib/p2p/estimator.ml: Array Float Overlay Rumor_rng
