lib/p2p/estimator.mli: Overlay Rumor_rng
