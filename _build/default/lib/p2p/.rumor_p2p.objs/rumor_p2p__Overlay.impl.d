lib/p2p/overlay.ml: Array Rumor_graph Rumor_rng Rumor_sim
