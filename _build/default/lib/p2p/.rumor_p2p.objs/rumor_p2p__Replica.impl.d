lib/p2p/replica.ml: Array Hashtbl Overlay Rumor_rng Rumor_sim
