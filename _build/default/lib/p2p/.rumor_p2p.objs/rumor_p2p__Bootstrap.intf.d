lib/p2p/bootstrap.mli: Overlay Rumor_rng
