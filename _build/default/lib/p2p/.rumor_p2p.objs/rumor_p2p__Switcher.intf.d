lib/p2p/switcher.mli: Overlay Rumor_rng
