lib/p2p/churn.mli: Overlay Rumor_rng
