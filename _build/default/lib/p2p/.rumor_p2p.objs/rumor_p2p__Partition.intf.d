lib/p2p/partition.mli: Overlay Rumor_rng
