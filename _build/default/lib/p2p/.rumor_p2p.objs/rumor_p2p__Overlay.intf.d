lib/p2p/overlay.mli: Rumor_graph Rumor_rng Rumor_sim
