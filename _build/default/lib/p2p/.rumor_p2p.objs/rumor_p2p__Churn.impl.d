lib/p2p/churn.ml: Array List Overlay Rumor_rng
