lib/p2p/bootstrap.ml: Array Churn Overlay Rumor_graph Rumor_rng Switcher
