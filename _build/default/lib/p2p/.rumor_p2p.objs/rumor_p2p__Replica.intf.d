lib/p2p/replica.mli: Overlay Rumor_rng Rumor_sim
