module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Traversal = Rumor_graph.Traversal
module Spectral = Rumor_graph.Spectral

let grow ~rng ~n ~d ?switches_per_join ~capacity () =
  if d <= 0 || d mod 2 <> 0 then invalid_arg "Bootstrap.grow: d must be positive and even";
  if n < d + 1 then invalid_arg "Bootstrap.grow: n < d + 1";
  if capacity < n then invalid_arg "Bootstrap.grow: capacity < n";
  let switches = match switches_per_join with Some s -> s | None -> 2 * d in
  let o = Overlay.create ~capacity in
  (* Seed: the complete graph on d+1 peers is d-regular. *)
  let seed = Array.init (d + 1) (fun _ -> Overlay.activate o) in
  Array.iteri
    (fun i u ->
      Array.iteri (fun j w -> if i < j then Overlay.add_edge o u w) seed)
    seed;
  for _ = d + 2 to n do
    ignore (Churn.join o ~rng ~d);
    ignore (Switcher.run o ~rng ~steps:switches)
  done;
  o

type quality = {
  regular : bool;
  connected : bool;
  lambda2 : float;
  ramanujan : float;
}

(* Re-index the live nodes to 0..live-1 so isolated dead ids do not
   pollute spectral estimates. *)
let compact o =
  let cap = Overlay.capacity o in
  let index = Array.make cap (-1) in
  let live = ref 0 in
  for v = 0 to cap - 1 do
    if Overlay.is_alive o v then begin
      index.(v) <- !live;
      incr live
    end
  done;
  let g = Overlay.snapshot o in
  let edges = ref [] in
  Graph.iter_edges g (fun u w -> edges := (index.(u), index.(w)) :: !edges);
  Graph.of_edges ~n:!live !edges

let quality ~rng ~d o =
  let regular = ref true in
  for v = 0 to Overlay.capacity o - 1 do
    if Overlay.is_alive o v && Overlay.degree o v <> d then regular := false
  done;
  let g = compact o in
  {
    regular = !regular;
    connected = Traversal.is_connected g;
    lambda2 = Spectral.lambda2 g ~rng ~iters:80;
    ramanujan = Spectral.ramanujan_bound d;
  }
