let switch_once t ~rng =
  match Overlay.random_edge t rng with
  | None -> false
  | Some (a, b) -> begin
      match Overlay.random_edge t rng with
      | None -> false
      | Some (c, d) ->
          (* Reject proposals that would create self-loops; rejecting
             keeps the chain symmetric. Identical draws are rejected by
             the same rule (a = d would make (a, d) a loop only when
             a = d; distinctness of the two edge copies is not required
             for degree preservation). *)
          if a = d || c = b || (a = c && b = d) then false
          else if not (Overlay.remove_edge t a b) then false
          else if not (Overlay.remove_edge t c d) then begin
            (* The second edge disappeared with the first removal (it
               was the same copy); restore and reject. *)
            Overlay.add_edge t a b;
            false
          end
          else begin
            Overlay.add_edge t a d;
            Overlay.add_edge t c b;
            true
          end
    end

let run t ~rng ~steps =
  let applied = ref 0 in
  for _ = 1 to steps do
    if switch_once t ~rng then incr applied
  done;
  !applied

let scramble t ~rng ~passes =
  let steps = passes * Overlay.edge_count t in
  ignore (run t ~rng ~steps)
