(** Growing a random regular overlay from nothing.

    The paper's model assumes the P2P system {e is} a random
    [d]-regular graph; this module shows the overlay actually reaching
    that state by purely local operations: start from a [(d+1)]-clique,
    let peers join one at a time through degree-preserving edge
    splitting ({!Churn.join}), and keep mixing with the edge-switch
    chain ({!Switcher}). The result is statistically indistinguishable
    from a configuration-model sample — {!quality} quantifies how close
    via the spectral gap. *)

val grow :
  rng:Rumor_rng.Rng.t ->
  n:int ->
  d:int ->
  ?switches_per_join:int ->
  capacity:int ->
  unit ->
  Overlay.t
(** [grow ~rng ~n ~d ~capacity ()] builds an [n]-node [d]-regular
    overlay: a [(d+1)]-clique seed, then [n - d - 1] joins, each
    followed by [switches_per_join] (default [2 * d]) switch attempts.
    Requires [d] even (edge-splitting joins) and [d + 1 <= n].
    @raise Invalid_argument on an odd or non-positive [d], [n < d + 1]
    or [capacity < n]. *)

type quality = {
  regular : bool;  (** every live node has degree exactly [d] *)
  connected : bool;
  lambda2 : float;  (** spectral estimate of the snapshot *)
  ramanujan : float;  (** [2 sqrt (d-1)], the random-graph benchmark *)
}

val quality : rng:Rumor_rng.Rng.t -> d:int -> Overlay.t -> quality
(** Structural health check of a grown overlay. *)
