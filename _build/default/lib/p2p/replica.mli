(** Replicated key-value databases over a gossip substrate — the
    motivating application of the paper ([7], Demers et al.): every
    node holds a replica, updates enter at arbitrary nodes and must
    reach all replicas with as few message transmissions as possible.

    Versions are globally increasing integers (last-writer-wins), so
    replicas converge to the same contents regardless of delivery
    order. Updates propagate either by {!broadcast} (rumor mongering
    with a pluggable protocol — the paper's algorithm in the
    experiments) or by {!anti_entropy_round} (pairwise full sync, the
    expensive fallback of [7]). *)

type t

val create : capacity:int -> t
(** Empty replicas for node ids [0 .. capacity-1]. *)

val read : t -> node:int -> key:int -> (int * int) option
(** [read t ~node ~key] is [Some (data, version)] if the replica holds
    the key. *)

val store_size : t -> node:int -> int
(** Number of keys the node's replica holds. *)

val local_write : t -> node:int -> key:int -> data:int -> int
(** Apply a fresh update at its origin; returns the assigned version. *)

val apply : t -> node:int -> key:int -> data:int -> version:int -> bool
(** Merge a remote update; [true] if it was newer and got applied. *)

val broadcast :
  ?fault:Rumor_sim.Fault.t ->
  rng:Rumor_rng.Rng.t ->
  overlay:Overlay.t ->
  protocol:'st Rumor_sim.Protocol.t ->
  t ->
  origin:int ->
  key:int ->
  data:int ->
  Rumor_sim.Engine.result
(** Write at [origin] and spread the update with one run of the
    broadcast engine over the overlay; the update is delivered to
    exactly the nodes the rumor reached. *)

type sync_cost = {
  transfers : int;  (** entries actually copied (receiver was behind) *)
  compared : int;  (** entries examined to compute the deltas — the
                       full-store digest exchange that makes
                       anti-entropy expensive in [7] *)
}

val anti_entropy_round : rng:Rumor_rng.Rng.t -> overlay:Overlay.t -> t -> sync_cost
(** One classic anti-entropy round: every live node picks a uniform
    random neighbour and the pair reconcile their full stores (both
    directions, last-writer-wins). *)

val staleness : t -> overlay:Overlay.t -> key:int -> float
(** Fraction of live nodes {e not} holding the globally newest version
    of [key]; 0 when everyone is current, [nan] if the key was never
    written. *)

val converged : t -> overlay:Overlay.t -> bool
(** Whether all live replicas have identical contents. *)
