(** The local edge-switch Markov chain that re-randomises an overlay.

    A switch picks two uniform edges [(a, b)] and [(c, d)] and rewires
    them to [(a, d)] and [(c, b)]. Switches preserve every degree, and
    the chain's stationary distribution is uniform over multigraphs
    with the given degree sequence — this is the standard
    overlay-maintenance process of Feder et al. [16] and
    Mahlmann–Schindelhauer [29] that justifies the paper's
    random-regular-graph model of P2P networks. *)

val switch_once : Overlay.t -> rng:Rumor_rng.Rng.t -> bool
(** Attempt one switch; [false] when the proposal was rejected (it
    would have created a self-loop, touched fewer than 2 edges, or
    picked overlapping endpoints). *)

val run : Overlay.t -> rng:Rumor_rng.Rng.t -> steps:int -> int
(** [run t ~rng ~steps] attempts [steps] switches and returns how many
    were applied. A few [steps] per edge suffice to decorrelate the
    topology from its history. *)

val scramble : Overlay.t -> rng:Rumor_rng.Rng.t -> passes:int -> unit
(** [scramble t ~passes] runs [passes * edge_count] switch attempts —
    convenience for "mix well". *)
