module Rng = Rumor_rng.Rng
module Dist = Rumor_rng.Dist

type t = {
  overlay : Overlay.t;
  k : int;
  minima : float array array;  (* per node, length k; dead nodes unused *)
}

let create ~rng ~overlay ~k =
  if k < 1 then invalid_arg "Estimator.create: k < 1";
  let cap = Overlay.capacity overlay in
  let minima =
    Array.init cap (fun v ->
        if Overlay.is_alive overlay v then
          Array.init k (fun _ -> Dist.exponential rng ~rate:1.)
        else [||])
  in
  { overlay; k; minima }

let merge_into dst src =
  let changed = ref false in
  Array.iteri
    (fun i x ->
      if x < dst.(i) then begin
        dst.(i) <- x;
        changed := true
      end)
    src;
  !changed

let round ~rng t =
  let changed = ref 0 in
  let cap = Overlay.capacity t.overlay in
  for v = 0 to cap - 1 do
    if Overlay.is_alive t.overlay v then begin
      let d = Overlay.degree t.overlay v in
      if d > 0 then begin
        let w = Overlay.neighbor t.overlay v (Rng.int rng d) in
        if w <> v then begin
          let a = merge_into t.minima.(v) t.minima.(w) in
          let b = merge_into t.minima.(w) t.minima.(v) in
          if a then incr changed;
          if b then incr changed
        end
      end
    end
  done;
  !changed

let run ~rng ?max_rounds t =
  let cap = Overlay.capacity t.overlay in
  let limit = match max_rounds with Some m -> m | None -> max 10 (10 * cap) in
  let rounds = ref 0 in
  let continue = ref true in
  while !continue && !rounds < limit do
    incr rounds;
    if round ~rng t = 0 then continue := false
  done;
  !rounds

let estimate t ~node =
  let sum = Array.fold_left ( +. ) 0. t.minima.(node) in
  if sum <= 0. then infinity else float_of_int t.k /. sum

let worst_error t =
  let n = float_of_int (Overlay.node_count t.overlay) in
  let worst = ref 1. in
  for v = 0 to Overlay.capacity t.overlay - 1 do
    if Overlay.is_alive t.overlay v then begin
      let e = estimate t ~node:v in
      let err = Float.max (e /. n) (n /. e) in
      if err > !worst then worst := err
    end
  done;
  !worst
