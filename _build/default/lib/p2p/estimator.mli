(** Decentralised network-size estimation.

    The paper assumes every node knows [n] "to within a constant
    factor" (Section 1.2) but does not say where the estimate comes
    from; in a real P2P deployment it must itself be computed by
    gossip. This module provides the classic minimum-of-exponentials
    estimator (Mosk-Aoyama & Shah): every node draws [k] independent
    Exp(1) variables, the network computes coordinate-wise minima by
    flooding over the overlay (min is idempotent, so repeated exchange
    converges in diameter-many rounds), and each node estimates
    [n ≈ k / sum_of_minima]. The estimate is within a constant factor
    of [n] with probability [1 - e^{-Omega(k)}] — exactly the accuracy
    the broadcast algorithm needs. *)

type t
(** Per-node estimator state over an overlay. *)

val create : rng:Rumor_rng.Rng.t -> overlay:Overlay.t -> k:int -> t
(** [create ~rng ~overlay ~k] draws each live node's [k] exponentials.
    @raise Invalid_argument if [k < 1]. *)

val round : rng:Rumor_rng.Rng.t -> t -> int
(** One synchronous gossip round: every live node exchanges its minima
    vector with one uniform random neighbour (both directions) and
    keeps the coordinate-wise minima. Returns the number of nodes
    whose vector changed — 0 once converged. *)

val run : rng:Rumor_rng.Rng.t -> ?max_rounds:int -> t -> int
(** Gossip until no vector changes (or [max_rounds], default 10 times
    the trivial diameter bound); returns rounds executed. *)

val estimate : t -> node:int -> float
(** [estimate t ~node] is the node's current size estimate
    [k / sum (minima)]. *)

val worst_error : t -> float
(** [max over live nodes of max(est/n, n/est)] — the constant factor by
    which the worst node is off. 1.0 is a perfect estimate. *)
