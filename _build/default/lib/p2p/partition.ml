module Rng = Rumor_rng.Rng

type t = { mutable removed : (int * int) list; mutable healed : bool }

let split_by o ~side =
  let removed = ref [] in
  let cap = Overlay.capacity o in
  for v = 0 to cap - 1 do
    if Overlay.is_alive o v && side v then
      (* Remove every incident edge whose other endpoint is outside. *)
      List.iter
        (fun w ->
          if (not (side w)) && Overlay.remove_edge o v w then
            removed := (v, w) :: !removed)
        (Overlay.neighbors o v)
  done;
  { removed = !removed; healed = false }

let split_random o ~rng ~fraction =
  if fraction < 0. || fraction > 1. then
    invalid_arg "Partition.split_random: fraction out of range";
  let cap = Overlay.capacity o in
  let minority = Array.make cap false in
  for v = 0 to cap - 1 do
    if Overlay.is_alive o v then minority.(v) <- Rng.bernoulli rng fraction
  done;
  split_by o ~side:(fun v -> minority.(v))

let cut_size t = if t.healed then 0 else List.length t.removed

let heal o t =
  if not t.healed then begin
    List.iter
      (fun (u, v) ->
        if Overlay.is_alive o u && Overlay.is_alive o v then
          Overlay.add_edge o u v)
      t.removed;
    t.healed <- true;
    t.removed <- []
  end
