(** Baseline protocols from the literature the paper compares against.

    All of them live in the standard random phone call model (one
    uniformly random neighbour per round) unless a different selector
    is requested. State is the receipt round, as in {!Algorithm}. *)

type state = Algorithm.state

val push : ?fanout:int -> horizon:int -> unit -> state Rumor_sim.Protocol.t
(** The classic push algorithm [7,33]: every informed node pushes in
    every round until [horizon]. Run with [stop_when_complete:true] to
    measure its [Theta(n log n)] oracle-stopped transmission count. *)

val pull : ?fanout:int -> horizon:int -> unit -> state Rumor_sim.Protocol.t
(** The pull algorithm: every informed node answers every caller. *)

val push_pull : ?fanout:int -> horizon:int -> unit -> state Rumor_sim.Protocol.t
(** Combined push&pull [25] without termination — both directions every
    round until [horizon]. *)

val push_pull_age :
  ?fanout:int -> push_rounds:int -> total_rounds:int -> unit ->
  state Rumor_sim.Protocol.t
(** Age-based push&pull in the spirit of Karp et al. [25]: push&pull
    while the rumor is young ([round <= push_rounds]), pull-only
    afterwards, everything stops at [total_rounds]. With
    [push_rounds ~ log2 n] and [total_rounds - push_rounds ~ c log2 n]
    this is the strongest strictly oblivious single-choice protocol we
    measure against the lower bound (E3).
    @raise Invalid_argument if [total_rounds < push_rounds]. *)

val push_then_pull :
  ?fanout:int -> push_rounds:int -> total_rounds:int -> unit ->
  state Rumor_sim.Protocol.t
(** Karp-style two-phase schedule: push-only while
    [round <= push_rounds], pull-only afterwards until [total_rounds].
    With [push_rounds ~ log2 n] the pull tail length is the quantity
    the lower bound forces to be [Omega(log n / log d)] in the standard
    model — experiment E3 measures exactly this knob.
    @raise Invalid_argument if [total_rounds < push_rounds]. *)

val quasirandom : fanout:int -> horizon:int -> state Rumor_sim.Protocol.t
(** Quasirandom push of Doerr–Friedrich–Sauerwald [9]: push along the
    adjacency list from a random start position. *)
