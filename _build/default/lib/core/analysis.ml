module Trace = Rumor_sim.Trace

let rounds_to t ~population ~fraction =
  if fraction < 0. || fraction > 1. then
    invalid_arg "Analysis.rounds_to: fraction out of range";
  if population <= 0 then invalid_arg "Analysis.rounds_to: population <= 0";
  let target =
    int_of_float (ceil (fraction *. float_of_int population))
  in
  let rec scan = function
    | [] -> None
    | r :: rest ->
        if r.Trace.informed >= target then Some r.Trace.round else scan rest
  in
  scan (Trace.rows t)

let growth_factors t =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        let acc =
          if a.Trace.informed > 0 then
            (float_of_int b.Trace.informed /. float_of_int a.Trace.informed)
            :: acc
          else acc
        in
        go acc rest
    | _ -> List.rev acc
  in
  go [] (Trace.rows t)

let peak_growth t = List.fold_left Float.max 1. (growth_factors t)

let shrink_factors t ~population =
  let uninformed r = population - r.Trace.informed in
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        let acc =
          if uninformed a > 0 then
            (float_of_int (uninformed b) /. float_of_int (uninformed a)) :: acc
          else acc
        in
        go acc rest
    | _ -> List.rev acc
  in
  go [] (Trace.rows t)

let phase_transmissions t schedule =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let phase = Phase.phase_of schedule ~round:r.Trace.round in
      let prev = Option.value ~default:0 (Hashtbl.find_opt totals phase) in
      Hashtbl.replace totals phase (prev + r.Trace.push_tx + r.Trace.pull_tx))
    (Trace.rows t);
  List.map
    (fun phase ->
      (phase, Option.value ~default:0 (Hashtbl.find_opt totals phase)))
    [ Phase.Phase1; Phase.Phase2; Phase.Phase3; Phase.Phase4; Phase.Finished ]
