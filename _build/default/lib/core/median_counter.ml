module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph

type config = { fanout : int; ctr_max : int; c_rounds : int; horizon : int }

let default_config ~n ~fanout =
  if n < 4 then invalid_arg "Median_counter.default_config: n < 4";
  if fanout < 1 then invalid_arg "Median_counter.default_config: fanout < 1";
  let loglog =
    max 1 (int_of_float (ceil (Params.log2 (Params.log2 (float_of_int n)))))
  in
  {
    fanout;
    ctr_max = (2 * loglog) + 2;
    c_rounds = (2 * loglog) + 2;
    horizon = 8 * Params.ceil_log2 n;
  }

type state =
  | A  (* uninformed *)
  | B of int  (* informed, counting *)
  | C of int  (* informed, transmitting for a fixed residue of rounds *)
  | D  (* informed, silent *)

type result = {
  rounds : int;
  completion_round : int option;
  quiescent_round : int option;
  informed : int;
  transmissions : int;
}

let transmits = function B _ | C _ -> true | A | D -> false
let informed = function A -> false | B _ | C _ | D -> true

let run ~rng ~graph ~config ~source =
  let n = Graph.n graph in
  if n = 0 then invalid_arg "Median_counter.run: empty graph";
  if source < 0 || source >= n then invalid_arg "Median_counter.run: bad source";
  let state = Array.make n A in
  state.(source) <- B 1;
  (* Channels are bidirectional: both endpoints observe each other's
     (state, counter), and the rumor flows from any transmitting
     endpoint. partners.(v) collects the states v saw this round. *)
  let partners = Array.make n [] in
  let got_rumor = Array.make n false in
  let got_from_c = Array.make n false in
  let scratch = Array.make (max config.fanout 1) 0 in
  let total_tx = ref 0 in
  let completion = ref None and quiet = ref None in
  let round = ref 0 in
  while !quiet = None && !round < config.horizon do
    incr round;
    let meet u w =
      partners.(u) <- state.(w) :: partners.(u);
      partners.(w) <- state.(u) :: partners.(w);
      if transmits state.(u) then begin
        incr total_tx;
        got_rumor.(w) <- true;
        match state.(u) with
        | C _ -> got_from_c.(w) <- true
        | A | B _ | D -> ()
      end;
      if transmits state.(w) then begin
        incr total_tx;
        got_rumor.(u) <- true;
        match state.(w) with
        | C _ -> got_from_c.(u) <- true
        | A | B _ | D -> ()
      end
    in
    for u = 0 to n - 1 do
      let deg = Graph.degree graph u in
      if deg > 0 then begin
        let k = min config.fanout deg in
        let k = Rng.distinct_into rng ~bound:deg ~k scratch in
        for i = 0 to k - 1 do
          meet u (Graph.neighbor graph u scratch.(i))
        done
      end
    done;
    (* Synchronous transitions. *)
    let next = Array.make n A in
    for v = 0 to n - 1 do
      next.(v) <-
        (match state.(v) with
        | A ->
            if got_from_c.(v) then C config.c_rounds
            else if got_rumor.(v) then B 1
            else A
        | B m ->
            (* Median rule of [25]: advance when the majority of this
               round's partners are at least as far along — uninformed
               partners and smaller counters vote "behind", so counters
               only start climbing once the neighbourhood saturates. *)
            let ahead = ref 0 and behind = ref 0 in
            List.iter
              (fun st ->
                match st with
                | C _ | D -> incr ahead
                | B m' -> if m' >= m then incr ahead else incr behind
                | A -> incr behind)
              partners.(v);
            if !ahead > !behind then begin
              if m + 1 > config.ctr_max then C config.c_rounds else B (m + 1)
            end
            else B m
        | C k -> if k <= 1 then D else C (k - 1)
        | D -> D)
    done;
    Array.blit next 0 state 0 n;
    Array.fill partners 0 n [];
    Array.fill got_rumor 0 n false;
    Array.fill got_from_c 0 n false;
    let know = ref 0 and talking = ref 0 in
    for v = 0 to n - 1 do
      if informed state.(v) then incr know;
      if transmits state.(v) then incr talking
    done;
    if !completion = None && !know = n then completion := Some !round;
    if !talking = 0 then quiet := Some !round
  done;
  let know = ref 0 in
  for v = 0 to n - 1 do
    if informed state.(v) then incr know
  done;
  {
    rounds = !round;
    completion_round = !completion;
    quiescent_round = !quiet;
    informed = !know;
    transmissions = !total_tx;
  }
