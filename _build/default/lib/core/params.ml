type t = { n_estimate : int; d : int; alpha : float; fanout : int }

let make ?(alpha = 1.0) ?(fanout = 4) ~n_estimate ~d () =
  if n_estimate < 4 then invalid_arg "Params.make: n_estimate < 4";
  if d < 1 then invalid_arg "Params.make: d < 1";
  if alpha <= 0. then invalid_arg "Params.make: alpha <= 0";
  if fanout < 1 then invalid_arg "Params.make: fanout < 1";
  { n_estimate; d; alpha; fanout }

let log2 x = log x /. log 2.

let ceil_log2 n =
  if n < 1 then invalid_arg "Params.ceil_log2: n < 1";
  let rec go acc p = if p >= n then acc else go (acc + 1) (2 * p) in
  go 0 1

let loglog t = Float.max 1. (log2 (log2 (float_of_int t.n_estimate)))
