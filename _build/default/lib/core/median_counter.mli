(** The median-counter algorithm of Karp, Schindelhauer, Shenker and
    Vöcking [25] — the termination mechanism the paper's related-work
    section builds on.

    Unlike the age-based schedules in {!Algorithm} and {!Baselines},
    median-counter termination is {e not} strictly oblivious: nodes
    attach a small state (phase + counter) to every rumor copy and
    decide when to stop from the counters they observe. This cannot be
    expressed through the metadata-free {!Rumor_sim.Engine} interface,
    so the module ships its own round simulator with the same
    open/push&pull/close schedule and the same transmission accounting.

    States per node: [A] (uninformed) → [B m] (counting; the counter
    increments whenever the strict majority of informed communication
    partners are further along) → [C k] (transmit for [k] more rounds
    without counting) → [D] (silent). On complete graphs this
    terminates with [O(n log log n)] transmissions w.h.p.; running it
    on [G(n,d)] gives an adaptive baseline for the paper's oblivious
    algorithm. *)

type config = {
  fanout : int;  (** distinct neighbours contacted per round *)
  ctr_max : int;  (** B-counter value that triggers the C state *)
  c_rounds : int;  (** rounds a node spends in state C *)
  horizon : int;  (** hard stop (Monte-Carlo time bound) *)
}

val default_config : n:int -> fanout:int -> config
(** Counter and C-phase lengths of order [log log n], horizon of order
    [log n], as in [25].
    @raise Invalid_argument if [n < 4] or [fanout < 1]. *)

type result = {
  rounds : int;  (** rounds executed *)
  completion_round : int option;  (** when everyone became informed *)
  quiescent_round : int option;
      (** when every node had stopped transmitting (all in A or D) —
          the self-termination event that age-based schedules lack *)
  informed : int;
  transmissions : int;  (** rumor copies delivered, as in the engine *)
}

val run :
  rng:Rumor_rng.Rng.t ->
  graph:Rumor_graph.Graph.t ->
  config:config ->
  source:int ->
  result
(** Broadcast from [source] until every node is silent or the horizon
    is reached.
    @raise Invalid_argument on a bad source or empty graph. *)
