(** Algorithm parameters.

    The paper assumes every node knows the degree [d] exactly and the
    network size [n] "to within a constant factor" — hence the phase
    lengths are computed from an {e estimate} [n_estimate], and
    experiment E7 stresses what happens when the estimate is off.
    Logarithms in phase lengths are base 2; the constant [alpha]
    absorbs base changes, as in the paper. *)

type t = {
  n_estimate : int;  (** the nodes' common estimate of the network size *)
  d : int;  (** the (known) degree of the regular graph *)
  alpha : float;  (** the phase-length constant of Algorithms 1 and 2 *)
  fanout : int;  (** distinct neighbours called per round (paper: 4) *)
}

val make : ?alpha:float -> ?fanout:int -> n_estimate:int -> d:int -> unit -> t
(** [make ~n_estimate ~d ()] with [alpha] defaulting to [1.0] and
    [fanout] to [4].
    @raise Invalid_argument if [n_estimate < 4], [d < 1],
    [alpha <= 0] or [fanout < 1]. *)

val log2 : float -> float
(** Base-2 logarithm. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is [ceil (log2 n)] for [n >= 1]. *)

val loglog : t -> float
(** [max 1. (log2 (log2 n_estimate))] — the [log log n] of the phase
    lengths, floored at 1 so schedules are well formed for tiny [n]. *)
