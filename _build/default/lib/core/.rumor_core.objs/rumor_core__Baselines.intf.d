lib/core/baselines.mli: Algorithm Rumor_sim
