lib/core/run.ml: List Rumor_graph Rumor_rng Rumor_sim
