lib/core/analysis.ml: Float Hashtbl List Option Phase Rumor_sim
