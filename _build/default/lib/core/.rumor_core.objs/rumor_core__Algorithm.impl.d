lib/core/algorithm.ml: Params Phase Printf Rumor_sim
