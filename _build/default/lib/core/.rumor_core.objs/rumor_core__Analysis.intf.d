lib/core/analysis.mli: Phase Rumor_sim
