lib/core/phase.mli: Params
