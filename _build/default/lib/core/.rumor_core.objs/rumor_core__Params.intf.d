lib/core/params.mli:
