lib/core/phase.ml: Float Params
