lib/core/feedback.mli: Rumor_rng Rumor_sim
