lib/core/median_counter.mli: Rumor_graph Rumor_rng
