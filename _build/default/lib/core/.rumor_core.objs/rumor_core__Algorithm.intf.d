lib/core/algorithm.mli: Params Phase Rumor_sim
