lib/core/median_counter.ml: Array List Params Rumor_graph Rumor_rng
