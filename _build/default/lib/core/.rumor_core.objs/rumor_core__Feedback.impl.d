lib/core/feedback.ml: Printf Rumor_rng Rumor_sim
