lib/core/run.mli: Rumor_graph Rumor_rng Rumor_sim
