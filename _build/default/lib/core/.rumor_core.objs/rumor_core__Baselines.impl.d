lib/core/baselines.ml: Algorithm Printf Rumor_sim
