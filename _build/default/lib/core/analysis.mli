(** Trace analytics: turning a per-round trace into the quantities the
    paper's lemmas talk about (growth factors, phase costs, time to a
    target fraction). *)

val rounds_to :
  Rumor_sim.Trace.t -> population:int -> fraction:float -> int option
(** First round at whose end at least [fraction * population] nodes
    were informed; [None] if never reached.
    @raise Invalid_argument if [fraction] is outside [\[0, 1\]] or
    [population <= 0]. *)

val growth_factors : Rumor_sim.Trace.t -> float list
(** [informed(t) / informed(t-1)] per round (the Lemma 1/2 quantity);
    the first round compares against the trace's first entry, so the
    list has [length - 1] elements. Rounds with zero previous informed
    are skipped. *)

val peak_growth : Rumor_sim.Trace.t -> float
(** Largest growth factor; 1.0 for traces with fewer than 2 rows. *)

val shrink_factors : Rumor_sim.Trace.t -> population:int -> float list
(** [uninformed(t) / uninformed(t-1)] per round where the previous
    count is positive (the Lemma 3 quantity). *)

val phase_transmissions :
  Rumor_sim.Trace.t -> Phase.schedule -> (Phase.phase * int) list
(** Total transmissions (push + pull) attributed to each phase of a
    schedule, in phase order; phases with no rounds in the trace report
    0. *)
