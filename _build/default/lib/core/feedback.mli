(** Rumor-mongering variants of Demers et al. [7] — the replicated
    database paper that motivates this work.

    In [7] a node spreads a "hot rumor" until it loses interest; the
    design space is how interest is lost:

    - {!feedback_coin}: on {e hearing the rumor back} from a partner
      that already knew it, stop with probability [1/k];
    - {!feedback_counter}: stop after hearing it back [k] times;
    - {!blind_coin}: after every active round, stop with probability
      [1/k] regardless of feedback;
    - {!blind_counter}: transmit in exactly [k] active rounds.

    All four are adaptive (feedback variants react to duplicate
    deliveries via the engine's [absorb] hook) and none needs an
    estimate of [n] — the trade-off against the paper's oblivious
    schedule is residue (uninformed fraction left when the rumor dies)
    versus traffic. Per [7], counter beats coin and feedback beats
    blind on residue at equal traffic. *)

type state
(** Informed/uninformed plus interest bookkeeping. *)

val feedback_coin :
  rng:Rumor_rng.Rng.t -> k:int -> ?fanout:int -> horizon:int -> unit ->
  state Rumor_sim.Protocol.t
(** Lose interest with probability [1/k] per duplicate heard. The coin
    flips consume randomness from [rng] (independent of the engine's).
    @raise Invalid_argument if [k < 1] or [horizon < 1]. *)

val feedback_counter :
  k:int -> ?fanout:int -> horizon:int -> unit -> state Rumor_sim.Protocol.t
(** Lose interest after [k] duplicates heard. *)

val blind_coin :
  rng:Rumor_rng.Rng.t -> k:int -> ?fanout:int -> horizon:int -> unit ->
  state Rumor_sim.Protocol.t
(** Lose interest with probability [1/k] after each active round. *)

val blind_counter :
  k:int -> ?fanout:int -> horizon:int -> unit -> state Rumor_sim.Protocol.t
(** Transmit for exactly [k] rounds after first receipt. *)
