(** The paper's broadcasting algorithm (Section 3, Algorithms 1 and 2).

    Every node opens channels to four distinct random neighbours per
    round and decides from the global time alone whether to push or
    pull — the protocol is strictly oblivious. The state records only
    the round in which the rumor arrived ([0] for the source). *)

type state =
  | Uninformed
  | Informed of { received : int }
      (** [received] is the round of first receipt; sources carry 0. *)

val make :
  ?variant:Phase.variant ->
  ?selector:Rumor_sim.Selector.spec ->
  Params.t ->
  state Rumor_sim.Protocol.t
(** [make params] builds the paper's protocol:

    - [variant] defaults to {!Phase.auto_variant}[ params];
    - [selector] defaults to
      [Uniform {fanout = params.fanout}] (the paper's four distinct
      choices); pass
      [Avoid_recent {fanout = 1; window = 3}] together with
      {!sequentialised} phase lengths for the memory variant of [13].

    The protocol's horizon is the end of the schedule; runs stop
    earlier once every informed node is quiescent. *)

val schedule_of : Params.t -> Phase.variant option -> Phase.schedule
(** The schedule [make] would use — for tests and reporting. *)

val sequentialised : Params.t -> state Rumor_sim.Protocol.t
(** The sequentialised memory variant (footnote 2 of the paper and
    [13]): one call per round avoiding the three most recent choices,
    with every phase stretched by a factor of four so that four rounds
    simulate one round of the 4-choice model. *)
