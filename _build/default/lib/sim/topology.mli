(** The simulator's view of a network.

    A topology is a record of accessors rather than a concrete graph so
    that the same engine drives static CSR graphs ({!of_graph}) and the
    mutable peer-to-peer overlays of [Rumor_p2p] (which change between
    rounds under churn). Node identifiers are [0 .. capacity-1]; dead
    identifiers (departed peers) are skipped via [alive]. *)

type t = {
  capacity : int;  (** exclusive upper bound on node ids *)
  degree : int -> int;  (** current degree of a node *)
  neighbor : int -> int -> int;  (** [neighbor v i], [0 <= i < degree v] *)
  alive : int -> bool;  (** whether the id denotes a present node *)
}

val of_graph : Rumor_graph.Graph.t -> t
(** View a static graph as a topology (every node alive). *)

val alive_count : t -> int
(** Number of live nodes; O(capacity). *)
