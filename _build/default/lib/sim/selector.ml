module Rng = Rumor_rng.Rng

type spec =
  | Uniform of { fanout : int }
  | Avoid_recent of { fanout : int; window : int }
  | Quasirandom of { fanout : int }

let fanout = function
  | Uniform { fanout } | Avoid_recent { fanout; _ } | Quasirandom { fanout } ->
      fanout

let validate spec =
  if fanout spec < 1 then invalid_arg "Selector: fanout < 1";
  match spec with
  | Avoid_recent { window; _ } when window < 0 ->
      invalid_arg "Selector: window < 0"
  | Uniform _ | Avoid_recent _ | Quasirandom _ -> ()

type t =
  | Stateless of { k : int }
  | Memory of {
      k : int;
      window : int;
      recent : int array;  (* capacity * window ring of neighbour indices *)
      cursor : int array;  (* next ring slot per node *)
    }
  | Cyclic of { k : int; pos : int array (* -1 = not started *) }

let make spec ~capacity =
  validate spec;
  match spec with
  | Uniform { fanout } -> Stateless { k = fanout }
  | Avoid_recent { fanout; window } ->
      Memory
        {
          k = fanout;
          window;
          recent = Array.make (max (capacity * window) 1) (-1);
          cursor = Array.make (max capacity 1) 0;
        }
  | Quasirandom { fanout } ->
      Cyclic { k = fanout; pos = Array.make (max capacity 1) (-1) }

let select t ~rng ~node ~degree ~out =
  if degree <= 0 then 0
  else
    match t with
    | Stateless { k } ->
        let k = min k degree in
        Rng.distinct_into rng ~bound:degree ~k out
    | Cyclic { k; pos } ->
        let k = min k degree in
        if pos.(node) < 0 then pos.(node) <- Rng.int rng degree;
        let p = ref pos.(node) in
        for i = 0 to k - 1 do
          out.(i) <- !p;
          p := (!p + 1) mod degree
        done;
        pos.(node) <- !p;
        k
    | Memory { k; window; recent; cursor } ->
        let k = min k degree in
        let base = node * window in
        let blocked i =
          let b = ref false in
          for j = 0 to window - 1 do
            if recent.(base + j) = i then b := true
          done;
          !b
        in
        (* If the memory window plus this round's picks would exhaust the
           adjacency list, amnesia is the only sound choice. *)
        let usable = window + k <= degree in
        let chosen = ref 0 in
        let guard = ref 0 in
        while !chosen < k && !guard < 64 * (k + 1) do
          incr guard;
          let i = Rng.int rng degree in
          let dup = ref (usable && blocked i) in
          for j = 0 to !chosen - 1 do
            if out.(j) = i then dup := true
          done;
          if not !dup then begin
            out.(!chosen) <- i;
            incr chosen
          end
        done;
        (* Rejection virtually always succeeds; fall back to a scan if the
           guard tripped (tiny degrees). *)
        if !chosen < k then begin
          chosen := 0;
          let i = ref 0 in
          while !chosen < k && !i < degree do
            let taken = ref false in
            for j = 0 to !chosen - 1 do
              if out.(j) = !i then taken := true
            done;
            if not !taken then begin
              out.(!chosen) <- !i;
              incr chosen
            end;
            incr i
          done
        end;
        for j = 0 to !chosen - 1 do
          if window > 0 then begin
            recent.(base + cursor.(node)) <- out.(j);
            cursor.(node) <- (cursor.(node) + 1) mod window
          end
        done;
        !chosen
