(** Per-round record of a broadcast run, for phase-dynamics experiments
    (E4) and debugging. *)

type row = {
  round : int;
  informed : int;  (** informed nodes at the end of the round *)
  newly : int;  (** nodes informed during this round *)
  push_tx : int;  (** push transmissions this round *)
  pull_tx : int;  (** pull transmissions this round *)
  channels : int;  (** channels successfully opened this round *)
}

type t
(** A growable trace. *)

val create : unit -> t
val add : t -> row -> unit
val length : t -> int
val get : t -> int -> row
val rows : t -> row list
(** Rows in round order. *)

val pp_row : Format.formatter -> row -> unit
val pp : Format.formatter -> t -> unit
(** Render the whole trace as an aligned table. *)

val to_csv : t -> string
(** Comma-separated rendering with a header line
    [round,informed,newly,push_tx,pull_tx,channels] — for external
    plotting. *)

val informed_series : t -> float array
(** The informed count per round, as floats (sparkline / fit input). *)
