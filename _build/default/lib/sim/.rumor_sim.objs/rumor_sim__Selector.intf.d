lib/sim/selector.mli: Rumor_rng
