lib/sim/engine.mli: Fault Protocol Rumor_rng Topology Trace
