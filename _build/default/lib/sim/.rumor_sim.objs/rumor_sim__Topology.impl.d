lib/sim/topology.ml: Rumor_graph
