lib/sim/selector.ml: Array Rumor_rng
