lib/sim/protocol.ml: Selector
