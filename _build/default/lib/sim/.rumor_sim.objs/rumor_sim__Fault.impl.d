lib/sim/fault.ml: Rumor_rng
