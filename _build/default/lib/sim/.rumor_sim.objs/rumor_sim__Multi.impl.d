lib/sim/multi.ml: Array Fault List Protocol Rumor_rng Selector Topology
