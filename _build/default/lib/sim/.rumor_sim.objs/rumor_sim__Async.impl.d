lib/sim/async.ml: Array Fault List Protocol Rumor_graph Rumor_rng Selector
