lib/sim/topology.mli: Rumor_graph
