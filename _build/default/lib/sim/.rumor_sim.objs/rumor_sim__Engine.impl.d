lib/sim/engine.ml: Array Fault List Protocol Rumor_rng Selector Topology Trace
