lib/sim/protocol.mli: Selector
