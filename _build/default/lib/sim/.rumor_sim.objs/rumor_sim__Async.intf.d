lib/sim/async.mli: Fault Protocol Rumor_graph Rumor_rng
