lib/sim/multi.mli: Fault Protocol Rumor_rng Topology
