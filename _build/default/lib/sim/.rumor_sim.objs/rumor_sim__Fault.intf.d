lib/sim/fault.mli: Rumor_rng
