type row = {
  round : int;
  informed : int;
  newly : int;
  push_tx : int;
  pull_tx : int;
  channels : int;
}

type t = { mutable rows : row array; mutable len : int }

let create () = { rows = [||]; len = 0 }

let dummy = { round = 0; informed = 0; newly = 0; push_tx = 0; pull_tx = 0; channels = 0 }

let add t row =
  if t.len = Array.length t.rows then begin
    let cap = max 16 (2 * Array.length t.rows) in
    let rows = Array.make cap dummy in
    Array.blit t.rows 0 rows 0 t.len;
    t.rows <- rows
  end;
  t.rows.(t.len) <- row;
  t.len <- t.len + 1

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: index";
  t.rows.(i)

let rows t = Array.to_list (Array.sub t.rows 0 t.len)

let pp_row ppf r =
  Format.fprintf ppf "%5d %9d %8d %9d %9d %9d" r.round r.informed r.newly
    r.push_tx r.pull_tx r.channels

let to_csv t =
  let buf = Buffer.create (64 * (t.len + 1)) in
  Buffer.add_string buf "round,informed,newly,push_tx,pull_tx,channels\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d\n" r.round r.informed r.newly
           r.push_tx r.pull_tx r.channels))
    (rows t);
  Buffer.contents buf

let informed_series t =
  Array.init t.len (fun i -> float_of_int t.rows.(i).informed)

let pp ppf t =
  Format.fprintf ppf "%5s %9s %8s %9s %9s %9s@." "round" "informed" "newly"
    "push_tx" "pull_tx" "channels";
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_row r) (rows t)
