module Rng = Rumor_rng.Rng

type t = { call_failure : float; link_loss : float }

let none = { call_failure = 0.; link_loss = 0. }

let make ?(call_failure = 0.) ?(link_loss = 0.) () =
  let check name p =
    if p < 0. || p > 1. then invalid_arg ("Fault.make: " ^ name ^ " out of range")
  in
  check "call_failure" call_failure;
  check "link_loss" link_loss;
  { call_failure; link_loss }

let channel_ok t rng =
  t.call_failure = 0. || not (Rng.bernoulli rng t.call_failure)

let delivery_ok t rng = t.link_loss = 0. || not (Rng.bernoulli rng t.link_loss)
