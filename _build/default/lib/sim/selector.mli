(** Neighbour-selection strategies — how a node picks whom to call.

    The paper's model and its relatives differ only in this component:

    - {!constructor:Uniform} with [fanout = 1] is the standard random
      phone call model of Karp et al. [25];
    - {!constructor:Uniform} with [fanout = 4] is the paper's modified
      model (four distinct neighbours per round);
    - {!constructor:Avoid_recent} with [fanout = 1], [window = 3] is the
      sequentialised variant of Elsässer–Sauerwald [13] that the paper
      notes is equivalent to the 4-choice model over 4 steps;
    - {!constructor:Quasirandom} is the list-based model of Doerr,
      Friedrich and Sauerwald [9]. *)

type spec =
  | Uniform of { fanout : int }
      (** Each round: [fanout] distinct neighbours, uniformly. *)
  | Avoid_recent of { fanout : int; window : int }
      (** Uniform among neighbours not contacted in the last [window]
          rounds (falls back to uniform when degree is too small). *)
  | Quasirandom of { fanout : int }
      (** Cyclic walk through the adjacency list from a random start
          position (chosen independently per node). *)

val fanout : spec -> int
(** Channels a node opens per round under this spec. *)

val validate : spec -> unit
(** @raise Invalid_argument if [fanout < 1] or [window < 0]. *)

type t
(** Runtime selection state (per-node memory for the stateful specs). *)

val make : spec -> capacity:int -> t
(** Allocate runtime state for nodes [0 .. capacity-1]. *)

val select :
  t -> rng:Rumor_rng.Rng.t -> node:int -> degree:int -> out:int array -> int
(** [select t ~rng ~node ~degree ~out] writes the chosen neighbour
    {e indices} (positions in the adjacency list, in [\[0, degree)])
    into [out] and returns how many were chosen —
    [min fanout degree]. *)
