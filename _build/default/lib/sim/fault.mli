(** Communication-failure injection.

    The paper claims the algorithm "efficiently handles limited
    communication failures" — experiment E6 quantifies this. Two
    independent failure modes are modelled:

    - a {e call failure} drops the whole channel for the round (neither
      direction can be used), as if the connection attempt timed out;
    - {e link loss} drops each individual message transmission. *)

type t = {
  call_failure : float;  (** probability a channel fails to establish *)
  link_loss : float;  (** probability a single transmission is lost *)
}

val none : t
(** Fault-free communication. *)

val make : ?call_failure:float -> ?link_loss:float -> unit -> t
(** [make ()] builds a fault model; probabilities default to 0.
    @raise Invalid_argument if a probability is outside [\[0, 1\]]. *)

val channel_ok : t -> Rumor_rng.Rng.t -> bool
(** Sample whether a channel establishes. *)

val delivery_ok : t -> Rumor_rng.Rng.t -> bool
(** Sample whether one transmission survives. *)
