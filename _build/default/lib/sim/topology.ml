module Graph = Rumor_graph.Graph

type t = {
  capacity : int;
  degree : int -> int;
  neighbor : int -> int -> int;
  alive : int -> bool;
}

let of_graph g =
  {
    capacity = Graph.n g;
    degree = Graph.degree g;
    neighbor = Graph.neighbor g;
    alive = (fun _ -> true);
  }

let alive_count t =
  let count = ref 0 in
  for v = 0 to t.capacity - 1 do
    if t.alive v then incr count
  done;
  !count
