module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Engine = Rumor_sim.Engine
module Fault = Rumor_sim.Fault
module Params = Rumor_core.Params
module Algorithm = Rumor_core.Algorithm
module Baselines = Rumor_core.Baselines
module Run_ = Rumor_core.Run
module Summary = Rumor_stats.Summary
module Experiment = Rumor_stats.Experiment

type t = {
  seed : int;
  n : int;
  d : int;
  topology : string;
  protocol : string;
  alpha : float;
  fanout : int;
  loss : float;
  call_failure : float;
  reps : int;
}

let default =
  {
    seed = 1;
    n = 16384;
    d = 8;
    topology = "regular";
    protocol = "bef";
    alpha = 1.0;
    fanout = 4;
    loss = 0.;
    call_failure = 0.;
    reps = 5;
  }

let topologies = [ "regular"; "hypercube"; "torus"; "complete"; "gnp"; "product-k5" ]
let protocols = [ "bef"; "bef-seq"; "push"; "pull"; "push-pull"; "quasirandom" ]

let parse text =
  let err line msg = Error (Printf.sprintf "line %d: %s" line msg) in
  let strip_comment s =
    match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let parse_int line v k =
    match int_of_string_opt (String.trim v) with
    | Some x -> k x
    | None -> err line "expected an integer"
  in
  let parse_float line v k =
    match float_of_string_opt (String.trim v) with
    | Some x -> k x
    | None -> err line "expected a number"
  in
  let lines = String.split_on_char '\n' text in
  let rec go acc i = function
    | [] -> Ok acc
    | raw :: rest -> begin
        let line = i + 1 in
        let s = String.trim (strip_comment raw) in
        if s = "" then go acc (i + 1) rest
        else
          match String.index_opt s '=' with
          | None -> err line "expected 'key = value'"
          | Some eq -> begin
              let key = String.trim (String.sub s 0 eq) in
              let value = String.trim (String.sub s (eq + 1) (String.length s - eq - 1)) in
              let continue acc = go acc (i + 1) rest in
              match key with
              | "seed" -> parse_int line value (fun x -> continue { acc with seed = x })
              | "n" ->
                  parse_int line value (fun x ->
                      if x < 4 then err line "n must be >= 4"
                      else continue { acc with n = x })
              | "d" ->
                  parse_int line value (fun x ->
                      if x < 1 then err line "d must be >= 1"
                      else continue { acc with d = x })
              | "topology" ->
                  if List.mem value topologies then continue { acc with topology = value }
                  else err line ("unknown topology: " ^ value)
              | "protocol" ->
                  if List.mem value protocols then continue { acc with protocol = value }
                  else err line ("unknown protocol: " ^ value)
              | "alpha" ->
                  parse_float line value (fun x ->
                      if x <= 0. then err line "alpha must be positive"
                      else continue { acc with alpha = x })
              | "fanout" ->
                  parse_int line value (fun x ->
                      if x < 1 then err line "fanout must be >= 1"
                      else continue { acc with fanout = x })
              | "loss" ->
                  parse_float line value (fun x ->
                      if x < 0. || x > 1. then err line "loss must be in [0, 1]"
                      else continue { acc with loss = x })
              | "call_failure" ->
                  parse_float line value (fun x ->
                      if x < 0. || x > 1. then err line "call_failure must be in [0, 1]"
                      else continue { acc with call_failure = x })
              | "reps" ->
                  parse_int line value (fun x ->
                      if x < 1 then err line "reps must be >= 1"
                      else continue { acc with reps = x })
              | other -> err line ("unknown key: " ^ other)
            end
      end
  in
  go default 0 lines

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          parse (really_input_string ic len))

let make_graph ~rng ~topology ~n ~d =
  match topology with
  | "regular" ->
      Rumor_gen.Regular.sample_connected ~rng ~n ~d Rumor_gen.Regular.Pairing
  | "hypercube" -> Rumor_gen.Classic.hypercube (Params.ceil_log2 n)
  | "torus" ->
      let side = max 3 (int_of_float (sqrt (float_of_int n))) in
      Rumor_gen.Classic.torus2d side side
  | "complete" -> Rumor_gen.Classic.complete n
  | "gnp" ->
      Rumor_gen.Gnp.sample ~rng ~n ~p:(float_of_int d /. float_of_int (n - 1))
  | "product-k5" ->
      let base =
        Rumor_gen.Regular.sample_connected ~rng ~n:(max 4 (n / 5))
          ~d:(max 1 (d - 4)) Rumor_gen.Regular.Pairing
      in
      Rumor_gen.Product.with_clique base ~k:5
  | other -> failwith (Printf.sprintf "unknown topology %S" other)

let make_protocol ~protocol ~n ~d ~alpha ~fanout =
  let params = Params.make ~alpha ~fanout ~n_estimate:n ~d () in
  let horizon = 20 * Params.ceil_log2 (max n 2) in
  match protocol with
  | "bef" -> Algorithm.make params
  | "bef-seq" -> Algorithm.sequentialised params
  | "push" -> Baselines.push ~fanout:1 ~horizon ()
  | "pull" -> Baselines.pull ~fanout:1 ~horizon ()
  | "push-pull" -> Baselines.push_pull ~fanout:1 ~horizon ()
  | "quasirandom" -> Baselines.quasirandom ~fanout:1 ~horizon
  | other -> failwith (Printf.sprintf "unknown protocol %S" other)

type report = {
  scenario : t;
  protocol_name : string;
  success_rate : float;
  coverage : Summary.t;
  tx_per_node : Summary.t;
  rounds : Summary.t;
}

let run scenario =
  let fault =
    Fault.make ~link_loss:scenario.loss ~call_failure:scenario.call_failure ()
  in
  let stop = scenario.protocol <> "bef" && scenario.protocol <> "bef-seq" in
  let protocol_name = ref "" in
  let results =
    Experiment.replicate ~seed:scenario.seed ~reps:scenario.reps (fun rng ->
        let g =
          make_graph ~rng ~topology:scenario.topology ~n:scenario.n
            ~d:scenario.d
        in
        let p =
          make_protocol ~protocol:scenario.protocol ~n:(Graph.n g)
            ~d:scenario.d ~alpha:scenario.alpha ~fanout:scenario.fanout
        in
        protocol_name := p.Rumor_sim.Protocol.name;
        Run_.once ~fault ~stop_when_complete:stop ~rng ~graph:g ~protocol:p
          ~source:(Run_.random_source rng g) ())
  in
  let of_metric f = Summary.of_list (List.map f results) in
  {
    scenario;
    protocol_name = !protocol_name;
    success_rate =
      float_of_int (List.length (List.filter Engine.success results))
      /. float_of_int (List.length results);
    coverage =
      of_metric (fun r ->
          float_of_int r.Engine.informed /. float_of_int r.Engine.population);
    tx_per_node =
      of_metric (fun r ->
          float_of_int (Engine.transmissions r) /. float_of_int r.Engine.population);
    rounds = of_metric (fun r -> float_of_int r.Engine.rounds);
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>protocol    %s@,topology    %s (n=%d, d=%d)@,faults      loss %.2f, call failure %.2f@,reps        %d (seed %d)@,success     %.0f%%@,coverage    %a@,tx/node     %a@,rounds      %a@]"
    r.protocol_name r.scenario.topology r.scenario.n r.scenario.d
    r.scenario.loss r.scenario.call_failure r.scenario.reps r.scenario.seed
    (100. *. r.success_rate) Summary.pp r.coverage Summary.pp r.tx_per_node
    Summary.pp r.rounds
