(** Declarative experiment scenarios.

    A scenario is a plain-text [key = value] file (['#'] starts a
    comment) describing one repeated broadcast measurement:

    {v
    # 16k peers, lossy links, the paper's algorithm
    seed     = 7
    n        = 16384
    d        = 8
    topology = regular        # regular|hypercube|torus|complete|gnp|product-k5
    protocol = bef            # bef|bef-seq|push|pull|push-pull|quasirandom
    alpha    = 1.0
    fanout   = 4
    loss     = 0.05
    reps     = 5
    v}

    Unknown keys, malformed values and out-of-range parameters are
    rejected with a line-numbered message. The CLI's [run] subcommand
    executes scenario files; the module is also the shared home of the
    topology/protocol factories used across the binaries. *)

type t = {
  seed : int;
  n : int;
  d : int;
  topology : string;
  protocol : string;
  alpha : float;
  fanout : int;
  loss : float;
  call_failure : float;
  reps : int;
}

val default : t
(** [seed 1, n 16384, d 8, regular, bef, alpha 1.0, fanout 4, no
    faults, 5 reps]. *)

val parse : string -> (t, string) result
(** Parse scenario text over {!default}. *)

val parse_file : string -> (t, string) result
(** Read and {!parse} a file; IO failures map to [Error]. *)

val make_graph :
  rng:Rumor_rng.Rng.t -> topology:string -> n:int -> d:int ->
  Rumor_graph.Graph.t
(** Topology factory (shared with the CLI).
    @raise Failure on an unknown topology name. *)

val make_protocol :
  protocol:string -> n:int -> d:int -> alpha:float -> fanout:int ->
  Rumor_core.Algorithm.state Rumor_sim.Protocol.t
(** Protocol factory (shared with the CLI).
    @raise Failure on an unknown protocol name. *)

type report = {
  scenario : t;
  protocol_name : string;
  success_rate : float;
  coverage : Rumor_stats.Summary.t;
  tx_per_node : Rumor_stats.Summary.t;
  rounds : Rumor_stats.Summary.t;
}

val run : t -> report
(** Execute the scenario: [reps] broadcasts on fresh graphs with forked
    seeds, summarised. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable rendering of a report. *)
