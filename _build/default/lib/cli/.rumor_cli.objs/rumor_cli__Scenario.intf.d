lib/cli/scenario.mli: Format Rumor_core Rumor_graph Rumor_rng Rumor_sim Rumor_stats
