lib/cli/scenario.ml: Format Fun List Printf Rumor_core Rumor_gen Rumor_graph Rumor_rng Rumor_sim Rumor_stats String
