(* Many rumors at once: the phone call model opens channels blindly, so
   its fixed per-round channel cost is shared by every rumor alive in
   the network — the regime the paper (after Karp et al.) designed the
   model for. This example injects a stream of rumors at random peers
   and random times and watches the per-rumor cost.

   Run with: dune exec examples/multi_rumor.exe *)

module Rng = Rumor_rng.Rng
module Regular = Rumor_gen.Regular
module Multi = Rumor_sim.Multi
module Topology = Rumor_sim.Topology
module Params = Rumor_core.Params
module Algorithm = Rumor_core.Algorithm
module Table = Rumor_stats.Table

let () =
  let rng = Rng.create 99 in
  let n = 8192 and d = 8 in
  let graph = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  let params = Params.make ~n_estimate:n ~d () in

  let t =
    Table.create
      ~columns:
        [
          ("rumors", Table.Right);
          ("rounds", Table.Right);
          ("channels/rumor/node", Table.Right);
          ("tx/rumor/node", Table.Right);
          ("all delivered", Table.Right);
        ]
  in
  List.iter
    (fun k ->
      (* k rumors, a new one born every other round at a random peer. *)
      let messages =
        List.init k (fun j ->
            { Multi.source = Rng.int rng n; created = 2 * j })
      in
      let r =
        Multi.run ~rng
          ~topology:(Topology.of_graph graph)
          ~protocol:(Algorithm.make params) ~messages ()
      in
      Table.add_row t
        [
          string_of_int k;
          string_of_int r.Multi.rounds;
          Printf.sprintf "%.1f"
            (float_of_int r.Multi.channels /. float_of_int k /. float_of_int n);
          Printf.sprintf "%.1f"
            (float_of_int (Multi.total_transmissions r)
            /. float_of_int k /. float_of_int n);
          string_of_bool (Multi.all_complete r);
        ])
    [ 1; 4; 16; 64 ];
  Table.print t;
  print_endline
    "\nTransmissions per rumor stay flat while the channel overhead per rumor\n\
     collapses: the cost of opening channels amortises over concurrent rumors,\n\
     which is why the model charges for transmissions, not connections."
