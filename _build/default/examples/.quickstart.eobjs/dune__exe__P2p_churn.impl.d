examples/p2p_churn.ml: Printf Rumor_core Rumor_gen Rumor_graph Rumor_p2p Rumor_rng Rumor_sim Rumor_stats
