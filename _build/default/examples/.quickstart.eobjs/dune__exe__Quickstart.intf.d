examples/quickstart.mli:
