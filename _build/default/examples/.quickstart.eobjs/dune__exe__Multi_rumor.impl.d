examples/multi_rumor.ml: List Printf Rumor_core Rumor_gen Rumor_rng Rumor_sim Rumor_stats
