examples/multi_rumor.mli:
