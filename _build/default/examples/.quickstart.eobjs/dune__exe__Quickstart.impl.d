examples/quickstart.ml: Format Printf Rumor_core Rumor_gen Rumor_rng Rumor_sim
