examples/p2p_churn.mli:
