examples/replicated_db.mli:
