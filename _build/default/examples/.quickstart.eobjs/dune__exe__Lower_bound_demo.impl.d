examples/lower_bound_demo.ml: List Printf Rumor_core Rumor_gen Rumor_rng Rumor_sim Rumor_stats
