examples/replicated_db.ml: Printf Rumor_core Rumor_gen Rumor_p2p Rumor_rng Rumor_sim
