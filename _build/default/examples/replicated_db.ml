(* Replicated database maintenance (Demers et al. [7], the paper's
   motivating application): every peer holds a key-value replica;
   updates enter at random peers and are spread by rumor mongering with
   the paper's algorithm, with anti-entropy as a safety net.

   Run with: dune exec examples/replicated_db.exe *)

module Rng = Rumor_rng.Rng
module Dist = Rumor_rng.Dist
module Regular = Rumor_gen.Regular
module Engine = Rumor_sim.Engine
module Fault = Rumor_sim.Fault
module Params = Rumor_core.Params
module Algorithm = Rumor_core.Algorithm
module Overlay = Rumor_p2p.Overlay
module Replica = Rumor_p2p.Replica

let () =
  let rng = Rng.create 11 in
  let n = 4096 and d = 8 in
  let graph = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  let overlay = Overlay.of_graph ~capacity:n graph in
  let db = Replica.create ~capacity:n in
  let protocol () = Algorithm.make (Params.make ~n_estimate:n ~d ()) in

  (* Inject 32 updates with zipf-distributed keys (hot keys are updated
     more often), each spread by one broadcast — over a slightly lossy
     network, so a few replicas can miss an update. *)
  let fault = Fault.make ~link_loss:0.05 () in
  let total_tx = ref 0 in
  let missed = ref 0 in
  for u = 1 to 32 do
    let origin = Overlay.random_node overlay rng in
    let key = Dist.zipf rng ~n:64 ~s:1. in
    let res =
      Replica.broadcast ~fault ~rng ~overlay ~protocol:(protocol ()) db ~origin
        ~key ~data:u
    in
    total_tx := !total_tx + Engine.transmissions res;
    if not (Engine.success res) then incr missed;
    let staleness = Replica.staleness db ~overlay ~key in
    if u mod 8 = 0 then
      Printf.printf "after update %2d: key %2d staleness %.5f\n" u key staleness
  done;
  Printf.printf "\n32 updates spread: %.1f transmissions/node/update, %d incomplete\n"
    (float_of_int !total_tx /. float_of_int n /. 32.)
    !missed;
  Printf.printf "replicas converged: %b\n" (Replica.converged db ~overlay);

  (* Anti-entropy mops up whatever the lossy broadcasts missed. *)
  let rounds = ref 0 in
  while (not (Replica.converged db ~overlay)) && !rounds < 50 do
    let c = Replica.anti_entropy_round ~rng ~overlay db in
    incr rounds;
    Printf.printf "anti-entropy round %d: %d entries transferred (%d examined)\n"
      !rounds c.Replica.transfers c.Replica.compared
  done;
  Printf.printf "converged after %d anti-entropy rounds: %b\n" !rounds
    (Replica.converged db ~overlay)
