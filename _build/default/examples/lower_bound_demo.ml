(* The gap the paper proves: in the standard one-call phone call model,
   any fast oblivious broadcast needs Omega(n log n / log d)
   transmissions (Theorem 1), while four choices per round bring the
   cost down to O(n log log n) (Theorems 2/3).

   This demo measures both sides on the same graphs.

   Run with: dune exec examples/lower_bound_demo.exe *)

module Rng = Rumor_rng.Rng
module Regular = Rumor_gen.Regular
module Engine = Rumor_sim.Engine
module Params = Rumor_core.Params
module Algorithm = Rumor_core.Algorithm
module Baselines = Rumor_core.Baselines
module Run = Rumor_core.Run
module Table = Rumor_stats.Table
module Experiment = Rumor_stats.Experiment

let n = 16384
let reps = 3

(* Mean per-node transmissions of a protocol on fresh G(n,d) instances. *)
let measure ~seed ~d protocol_of =
  Experiment.mean_of ~seed ~reps (fun rng ->
      let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
      let res =
        Run.once ~rng ~graph:g ~protocol:(protocol_of ())
          ~source:(Run.random_source rng g) ()
      in
      float_of_int (Engine.transmissions res) /. float_of_int n)

let () =
  Printf.printf
    "standard model (1 call) vs the paper's model (4 distinct calls), n = %d\n\n"
    n;
  let t =
    Table.create
      ~columns:
        [
          ("d", Table.Right);
          ("log n/log d", Table.Right);
          ("1-call tx/node", Table.Right);
          ("4-call tx/node", Table.Right);
        ]
  in
  List.iteri
    (fun i d ->
      (* The strongest simple oblivious schedule in the standard model:
         push to saturation, then pull; generously provisioned. *)
      let lg = Params.ceil_log2 n in
      let one_call =
        measure ~seed:(10 + i) ~d (fun () ->
            Baselines.push_then_pull ~push_rounds:(lg + 2)
              ~total_rounds:(lg + 2 + (2 * lg / Params.ceil_log2 d)) ())
      in
      let four_call =
        measure ~seed:(20 + i) ~d (fun () ->
            Algorithm.make (Params.make ~n_estimate:n ~d ()))
      in
      Table.add_row t
        [
          string_of_int d;
          Printf.sprintf "%.2f"
            (Params.log2 (float_of_int n) /. Params.log2 (float_of_int d));
          Printf.sprintf "%.1f" one_call;
          Printf.sprintf "%.1f" four_call;
        ])
    [ 4; 8; 16; 32 ];
  Table.print t;
  print_endline
    "\nThe 1-call cost tracks log n / log d (Theorem 1's lower bound shape);\n\
     the 4-call cost is flat in n — rerun with a larger n to see the contrast\n\
     grow (examples/quickstart.ml shows the O(log log n) side in isolation)."
