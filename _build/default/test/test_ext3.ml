(* Tests for the third extension wave: structural certificates (girth,
   tree-likeness), special functions, chi-square tests, ASCII plots and
   network partitions. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Structure = Rumor_graph.Structure
module Traversal = Rumor_graph.Traversal
module Classic = Rumor_gen.Classic
module Regular = Rumor_gen.Regular
module Engine = Rumor_sim.Engine
module Overlay = Rumor_p2p.Overlay
module Partition = Rumor_p2p.Partition
module Special = Rumor_stats.Special
module Chisq = Rumor_stats.Chisq
module Plot = Rumor_stats.Plot

let rng0 () = Rng.create 1

(* --- Structure --- *)

let test_girth_known_graphs () =
  let g girth_of = Structure.girth ~rng:(rng0 ()) girth_of in
  Alcotest.(check (option int)) "triangle" (Some 3) (g (Classic.complete 3));
  Alcotest.(check (option int)) "K5" (Some 3) (g (Classic.complete 5));
  Alcotest.(check (option int)) "C7" (Some 7) (g (Classic.cycle 7));
  Alcotest.(check (option int)) "hypercube" (Some 4) (g (Classic.hypercube 4));
  Alcotest.(check (option int)) "path acyclic" None (g (Classic.path 6));
  Alcotest.(check (option int)) "star acyclic" None (g (Classic.star 6))

let test_girth_multigraph () =
  let g = Structure.girth ~rng:(rng0 ()) in
  Alcotest.(check (option int)) "self loop" (Some 1)
    (g (Graph.of_edges ~n:2 [ (0, 0); (0, 1) ]));
  Alcotest.(check (option int)) "parallel edge" (Some 2)
    (g (Graph.of_edges ~n:2 [ (0, 1); (0, 1) ]))

let test_girth_sampled_roots () =
  (* Sampling roots on a large cycle still finds the only cycle. *)
  let g = Classic.cycle 600 in
  match Structure.girth ~max_roots:10 ~rng:(rng0 ()) g with
  | Some girth -> Alcotest.(check int) "cycle found" 600 girth
  | None -> Alcotest.fail "missed the cycle"

let test_ball_is_tree () =
  let path = Classic.path 9 in
  Alcotest.(check bool) "path ball" true (Structure.ball_is_tree path 4 ~radius:3);
  let tri = Classic.complete 3 in
  Alcotest.(check bool) "triangle ball radius 1" false
    (Structure.ball_is_tree tri 0 ~radius:1);
  let cyc = Classic.cycle 20 in
  Alcotest.(check bool) "short ball on long cycle is a path" true
    (Structure.ball_is_tree cyc 0 ~radius:3);
  Alcotest.(check bool) "whole cycle is not a tree" false
    (Structure.ball_is_tree cyc 0 ~radius:10)

let test_tree_fraction_random_regular () =
  let rng = Rng.create 2 in
  let g = Regular.sample_connected ~rng ~n:4096 ~d:4 Regular.Pairing in
  let f = Structure.tree_fraction g ~rng ~radius:2 ~samples:300 in
  Alcotest.(check bool)
    (Printf.sprintf "locally tree-like (%.2f)" f)
    true (f > 0.9);
  (* The whole graph is very much not a tree. *)
  let whole = Structure.tree_fraction g ~rng ~radius:20 ~samples:20 in
  Alcotest.(check (float 1e-9)) "global balls contain cycles" 0. whole

(* --- Special functions --- *)

let close ?(eps = 1e-4) a b = abs_float (a -. b) < eps

let test_log_gamma () =
  (* Gamma(5) = 24, Gamma(0.5) = sqrt pi. *)
  Alcotest.(check bool) "log_gamma 5" true
    (close (Special.log_gamma 5.) (log 24.));
  Alcotest.(check bool) "log_gamma 0.5" true
    (close (Special.log_gamma 0.5) (log (sqrt Float.pi)));
  Alcotest.(check bool) "log_gamma 1 = 0" true (close (Special.log_gamma 1.) 0.);
  Alcotest.(check bool) "log_gamma 10" true
    (close ~eps:1e-6 (Special.log_gamma 10.) (log 362880.))

let test_regularized_gamma () =
  (* P(1, x) = 1 - e^-x. *)
  Alcotest.(check bool) "P(1,1)" true
    (close (Special.regularized_gamma_p 1. 1.) (1. -. exp (-1.)));
  Alcotest.(check bool) "P(1,0) = 0" true
    (close (Special.regularized_gamma_p 1. 0.) 0.);
  Alcotest.(check bool) "Q complements P" true
    (close
       (Special.regularized_gamma_p 2.5 3.
       +. Special.regularized_gamma_q 2.5 3.)
       1.);
  (* chi-square with 2 dof: Q(1, x/2) = e^{-x/2}; at x = 5.991, p = 0.05. *)
  Alcotest.(check bool) "chi2 critical value" true
    (close ~eps:1e-3 (Special.regularized_gamma_q 1. (5.991 /. 2.)) 0.05);
  Alcotest.check_raises "bad a"
    (Invalid_argument "Special.regularized_gamma_p: a <= 0") (fun () ->
      ignore (Special.regularized_gamma_p 0. 1.))

let test_incomplete_beta () =
  (* I_x(1,1) = x. *)
  Alcotest.(check bool) "I_x(1,1)" true
    (close (Special.incomplete_beta 1. 1. 0.3) 0.3);
  (* Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a). *)
  Alcotest.(check bool) "symmetry" true
    (close
       (Special.incomplete_beta 2. 3. 0.4)
       (1. -. Special.incomplete_beta 3. 2. 0.6))

(* --- Chi-square --- *)

let test_chisq_uniform_accepts_uniform () =
  let rng = Rng.create 3 in
  let counts = Array.make 10 0 in
  for _ = 1 to 100_000 do
    let x = Rng.int rng 10 in
    counts.(x) <- counts.(x) + 1
  done;
  let o = Chisq.uniform counts in
  Alcotest.(check bool)
    (Printf.sprintf "PRNG passes (p=%.3f)" o.Chisq.p_value)
    true o.Chisq.uniform_plausible;
  Alcotest.(check int) "dof" 9 o.Chisq.dof

let test_chisq_rejects_biased () =
  let counts = [| 1000; 1000; 1000; 5000 |] in
  let o = Chisq.uniform counts in
  Alcotest.(check bool) "biased histogram rejected" false o.Chisq.uniform_plausible;
  Alcotest.(check bool) "p tiny" true (o.Chisq.p_value < 1e-6)

let test_chisq_goodness_of_fit () =
  (* Perfect fit: statistic 0, p = 1. *)
  let o =
    Chisq.goodness_of_fit ~observed:[| 10; 20; 30 |]
      ~expected:[| 10.; 20.; 30. |]
  in
  Alcotest.(check (float 1e-9)) "statistic 0" 0. o.Chisq.statistic;
  Alcotest.(check bool) "p = 1" true (o.Chisq.p_value > 0.999)

let test_chisq_validation () =
  Alcotest.check_raises "one cell" (Invalid_argument "Chisq.uniform: need >= 2 cells")
    (fun () -> ignore (Chisq.uniform [| 5 |]));
  Alcotest.check_raises "zero total" (Invalid_argument "Chisq.uniform: zero total")
    (fun () -> ignore (Chisq.uniform [| 0; 0 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Chisq.goodness_of_fit: length mismatch") (fun () ->
      ignore (Chisq.goodness_of_fit ~observed:[| 1; 2 |] ~expected:[| 1. |]));
  Alcotest.check_raises "bad expected"
    (Invalid_argument "Chisq.goodness_of_fit: expected <= 0") (fun () ->
      ignore (Chisq.goodness_of_fit ~observed:[| 1; 2 |] ~expected:[| 1.; 0. |]))

let test_chisq_walk_mixing () =
  (* A mixed random walk on a regular graph passes the uniformity test. *)
  let rng = Rng.create 4 in
  let g = Regular.sample_connected ~rng ~n:64 ~d:8 Regular.Pairing in
  let counts =
    Rumor_graph.Walk.endpoint_counts rng g ~start:0 ~length:60 ~samples:64_000
  in
  let o = Chisq.uniform counts in
  Alcotest.(check bool)
    (Printf.sprintf "walk endpoints uniform (p=%.3f)" o.Chisq.p_value)
    true o.Chisq.uniform_plausible

(* --- Plot --- *)

let test_plot_renders () =
  let s =
    Plot.render ~width:20 ~height:6
      [
        { Plot.name = "a"; marker = '*'; points = [ (0., 0.); (1., 1.) ] };
        { Plot.name = "b"; marker = 'o'; points = [ (0.5, 0.2) ] };
      ]
  in
  Alcotest.(check bool) "contains markers" true
    (String.contains s '*' && String.contains s 'o');
  Alcotest.(check bool) "contains legend" true (String.contains s '=');
  (* 6 grid rows with | borders *)
  let bars = String.fold_left (fun acc c -> if c = '|' then acc + 1 else acc) 0 s in
  Alcotest.(check int) "grid rows bordered" 12 bars

let test_plot_empty () =
  Alcotest.(check string) "empty plot" "(empty plot)\n" (Plot.render []);
  Alcotest.(check string) "nan-only plot" "(empty plot)\n"
    (Plot.render [ { Plot.name = "x"; marker = '*'; points = [ (nan, 1.) ] } ])

let test_plot_validation () =
  Alcotest.check_raises "width" (Invalid_argument "Plot.render: width < 8")
    (fun () -> ignore (Plot.render ~width:2 []));
  Alcotest.check_raises "height" (Invalid_argument "Plot.render: height < 4")
    (fun () -> ignore (Plot.render ~height:1 []))

let test_plot_constant_series () =
  (* Degenerate ranges must not divide by zero. *)
  let s =
    Plot.render
      [ { Plot.name = "c"; marker = '#'; points = [ (1., 1.); (1., 1.) ] } ]
  in
  Alcotest.(check bool) "renders" true (String.contains s '#')

(* --- Partition --- *)

let overlay_regular seed =
  let rng = Rng.create seed in
  let g = Regular.sample_connected ~rng ~n:128 ~d:6 Regular.Pairing in
  Overlay.of_graph ~capacity:128 g

let test_partition_split_and_heal () =
  let o = overlay_regular 5 in
  let edges_before = Overlay.edge_count o in
  let rng = Rng.create 6 in
  let p = Partition.split_random o ~rng ~fraction:0.3 in
  Alcotest.(check bool) "some edges cut" true (Partition.cut_size p > 0);
  Alcotest.(check int) "edges removed from overlay"
    (edges_before - Partition.cut_size p)
    (Overlay.edge_count o);
  Alcotest.(check bool) "invariant during partition" true (Overlay.invariant o);
  Partition.heal o p;
  Alcotest.(check int) "edges restored" edges_before (Overlay.edge_count o);
  Alcotest.(check bool) "invariant after heal" true (Overlay.invariant o);
  Alcotest.(check int) "heal emptied the cut" 0 (Partition.cut_size p);
  (* Idempotent. *)
  Partition.heal o p;
  Alcotest.(check int) "second heal is a no-op" edges_before (Overlay.edge_count o)

let test_partition_disconnects () =
  let o = overlay_regular 7 in
  let p = Partition.split_by o ~side:(fun v -> v < 64) in
  Alcotest.(check bool) "cut nonempty" true (Partition.cut_size p > 0);
  let g = Overlay.snapshot o in
  let halves_disconnected =
    let d = Rumor_graph.Traversal.bfs g 0 in
    let reaches_other = ref false in
    for v = 64 to 127 do
      if d.(v) >= 0 then reaches_other := true
    done;
    not !reaches_other
  in
  Alcotest.(check bool) "halves disconnected" true halves_disconnected

let test_partition_validation () =
  let o = overlay_regular 8 in
  let rng = Rng.create 9 in
  Alcotest.check_raises "fraction"
    (Invalid_argument "Partition.split_random: fraction out of range") (fun () ->
      ignore (Partition.split_random o ~rng ~fraction:1.5))

let test_partition_broadcast_window () =
  (* A partition during the broadcast leaves the minority side dark; a
     second broadcast after healing reaches everyone. *)
  let rng = Rng.create 10 in
  let n = 1024 in
  let g = Regular.sample_connected ~rng ~n ~d:8 Regular.Pairing in
  let o = Overlay.of_graph ~capacity:n g in
  let p = Partition.split_by o ~side:(fun v -> v >= n / 2) in
  let params = Rumor_core.Params.make ~alpha:2.0 ~n_estimate:n ~d:8 () in
  let res1 =
    Engine.run ~rng
      ~topology:(Overlay.to_topology o)
      ~protocol:(Rumor_core.Algorithm.make params)
      ~sources:[ 0 ] ()
  in
  Alcotest.(check bool) "minority side dark" true
    (res1.Engine.informed <= n / 2);
  Partition.heal o p;
  let res2 =
    Engine.run ~rng
      ~topology:(Overlay.to_topology o)
      ~protocol:(Rumor_core.Algorithm.make params)
      ~sources:[ 0 ] ()
  in
  Alcotest.(check bool) "healed broadcast completes" true (Engine.success res2)

(* --- qcheck properties --- *)

let prop_gamma_p_monotone =
  QCheck.Test.make ~count:100 ~name:"regularized gamma P is monotone in x"
    QCheck.(pair (float_range 0.5 5.) (float_range 0. 10.))
    (fun (a, x) ->
      Special.regularized_gamma_p a x
      <= Special.regularized_gamma_p a (x +. 0.5) +. 1e-9)

let prop_partition_heal_restores =
  QCheck.Test.make ~count:30 ~name:"partition + heal restores edge count"
    QCheck.(pair small_int (float_range 0. 1.))
    (fun (seed, fraction) ->
      let o = overlay_regular (seed + 100) in
      let before = Overlay.edge_count o in
      let rng = Rng.create (seed + 200) in
      let p = Partition.split_random o ~rng ~fraction in
      Partition.heal o p;
      Overlay.edge_count o = before && Overlay.invariant o)

let prop_chisq_p_in_range =
  QCheck.Test.make ~count:100 ~name:"chi-square p-value lies in [0,1]"
    QCheck.(array_of_size (Gen.int_range 2 12) (int_range 1 1000))
    (fun counts ->
      let o = Chisq.uniform counts in
      o.Chisq.p_value >= 0. && o.Chisq.p_value <= 1.)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_gamma_p_monotone; prop_partition_heal_restores; prop_chisq_p_in_range ]

let () =
  Alcotest.run "extensions-3"
    [
      ( "structure",
        [
          Alcotest.test_case "girth known" `Quick test_girth_known_graphs;
          Alcotest.test_case "girth multigraph" `Quick test_girth_multigraph;
          Alcotest.test_case "girth sampled" `Quick test_girth_sampled_roots;
          Alcotest.test_case "ball is tree" `Quick test_ball_is_tree;
          Alcotest.test_case "tree fraction" `Slow test_tree_fraction_random_regular;
        ] );
      ( "special",
        [
          Alcotest.test_case "log gamma" `Quick test_log_gamma;
          Alcotest.test_case "regularized gamma" `Quick test_regularized_gamma;
          Alcotest.test_case "incomplete beta" `Quick test_incomplete_beta;
        ] );
      ( "chisq",
        [
          Alcotest.test_case "accepts uniform" `Quick test_chisq_uniform_accepts_uniform;
          Alcotest.test_case "rejects biased" `Quick test_chisq_rejects_biased;
          Alcotest.test_case "goodness of fit" `Quick test_chisq_goodness_of_fit;
          Alcotest.test_case "validation" `Quick test_chisq_validation;
          Alcotest.test_case "walk mixing" `Slow test_chisq_walk_mixing;
        ] );
      ( "plot",
        [
          Alcotest.test_case "renders" `Quick test_plot_renders;
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "validation" `Quick test_plot_validation;
          Alcotest.test_case "constant series" `Quick test_plot_constant_series;
        ] );
      ( "partition",
        [
          Alcotest.test_case "split and heal" `Quick test_partition_split_and_heal;
          Alcotest.test_case "disconnects" `Quick test_partition_disconnects;
          Alcotest.test_case "validation" `Quick test_partition_validation;
          Alcotest.test_case "broadcast window" `Slow test_partition_broadcast_window;
        ] );
      ("properties", qcheck_cases);
    ]
