(* Tests for the extension modules: median-counter termination [25],
   the multi-message runner, clock skew, size estimation, overlay
   bootstrap, small-world graphs and Welch's t-test. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Traversal = Rumor_graph.Traversal
module Classic = Rumor_gen.Classic
module Regular = Rumor_gen.Regular
module Smallworld = Rumor_gen.Smallworld
module Engine = Rumor_sim.Engine
module Multi = Rumor_sim.Multi
module Topology = Rumor_sim.Topology
module Params = Rumor_core.Params
module Algorithm = Rumor_core.Algorithm
module Baselines = Rumor_core.Baselines
module Median_counter = Rumor_core.Median_counter
module Run = Rumor_core.Run
module Overlay = Rumor_p2p.Overlay
module Estimator = Rumor_p2p.Estimator
module Bootstrap = Rumor_p2p.Bootstrap
module Summary = Rumor_stats.Summary
module Ttest = Rumor_stats.Ttest

(* --- Median counter --- *)

let mc_run ~seed ~graph ~n ~fanout =
  let rng = Rng.create seed in
  let config = Median_counter.default_config ~n ~fanout in
  Median_counter.run ~rng ~graph ~config ~source:0

let test_mc_complete_graph () =
  let n = 1024 in
  let r = mc_run ~seed:1 ~graph:(Classic.complete n) ~n ~fanout:1 in
  Alcotest.(check int) "all informed" n r.Median_counter.informed;
  Alcotest.(check bool) "self-terminates" true
    (r.Median_counter.quiescent_round <> None);
  Alcotest.(check bool) "completion before quiescence" true
    (match (r.Median_counter.completion_round, r.Median_counter.quiescent_round) with
    | Some c, Some q -> c <= q
    | _ -> false)

let test_mc_regular_graph () =
  for seed = 1 to 5 do
    let rng = Rng.create (100 + seed) in
    let n = 2048 in
    let g = Regular.sample_connected ~rng ~n ~d:8 Regular.Pairing in
    let r = mc_run ~seed ~graph:g ~n ~fanout:1 in
    Alcotest.(check int)
      (Printf.sprintf "seed %d informs all" seed)
      n r.Median_counter.informed;
    Alcotest.(check bool) "quiescent" true (r.Median_counter.quiescent_round <> None)
  done

let test_mc_message_bound () =
  (* Self-terminating with O(n log log n) messages: assert an explicit
     generous per-node cap scaling with log log n, far below log n at
     this size. *)
  let n = 4096 in
  let r = mc_run ~seed:7 ~graph:(Classic.complete n) ~n ~fanout:1 in
  let per_node = float_of_int r.Median_counter.transmissions /. float_of_int n in
  let loglog = Params.log2 (Params.log2 (float_of_int n)) in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f per node <= 20(1+loglog)" per_node)
    true
    (per_node <= 20. *. (1. +. loglog))

let test_mc_config_validation () =
  Alcotest.check_raises "n" (Invalid_argument "Median_counter.default_config: n < 4")
    (fun () -> ignore (Median_counter.default_config ~n:2 ~fanout:1));
  Alcotest.check_raises "fanout"
    (Invalid_argument "Median_counter.default_config: fanout < 1") (fun () ->
      ignore (Median_counter.default_config ~n:16 ~fanout:0))

let test_mc_bad_source () =
  let g = Classic.complete 8 in
  let rng = Rng.create 1 in
  Alcotest.check_raises "source" (Invalid_argument "Median_counter.run: bad source")
    (fun () ->
      ignore
        (Median_counter.run ~rng ~graph:g
           ~config:(Median_counter.default_config ~n:8 ~fanout:1)
           ~source:9))

let test_mc_horizon_caps () =
  (* A disconnected graph can never complete; the run must still stop. *)
  let g = Graph.of_edges ~n:6 [ (0, 1); (2, 3); (4, 5) ] in
  let rng = Rng.create 2 in
  let config = Median_counter.default_config ~n:6 ~fanout:1 in
  let r = Median_counter.run ~rng ~graph:g ~config ~source:0 in
  Alcotest.(check bool) "stops" true (r.Median_counter.rounds <= config.Median_counter.horizon);
  Alcotest.(check bool) "did not inform isolated parts" true
    (r.Median_counter.informed <= 2)

(* --- Multi-message runner --- *)

let multi_run ?(fanout = 4) ~seed ~n ~messages () =
  let rng = Rng.create seed in
  let g = Regular.sample_connected ~rng ~n ~d:8 Regular.Pairing in
  let params = Params.make ~fanout ~n_estimate:n ~d:8 () in
  Multi.run ~rng
    ~topology:(Topology.of_graph g)
    ~protocol:(Algorithm.make params) ~messages ()

let test_multi_single_equals_engine_shape () =
  let r =
    multi_run ~seed:3 ~n:1024 ~messages:[ { Multi.source = 0; created = 0 } ] ()
  in
  Alcotest.(check bool) "complete" true (Multi.all_complete r);
  Alcotest.(check int) "one message" 1 (Array.length r.Multi.messages)

let test_multi_all_complete () =
  let messages =
    List.init 8 (fun i -> { Multi.source = i * 100; created = 0 })
  in
  let r = multi_run ~seed:4 ~n:1024 ~messages () in
  Alcotest.(check bool) "all rumors reach everyone" true (Multi.all_complete r);
  Array.iter
    (fun m ->
      Alcotest.(check bool) "completion round present" true
        (m.Multi.completion_round <> None))
    r.Multi.messages

let test_multi_channels_shared () =
  (* 8 rumors over shared channels must open far fewer channels than 8
     independent runs: at most ~1x the single-run channel count per
     round times the (slightly longer) schedule. *)
  let one =
    multi_run ~seed:5 ~n:1024 ~messages:[ { Multi.source = 0; created = 0 } ] ()
  in
  let eight =
    multi_run ~seed:5 ~n:1024
      ~messages:(List.init 8 (fun i -> { Multi.source = i; created = 0 }))
      ()
  in
  let per_round r = float_of_int r.Multi.channels /. float_of_int r.Multi.rounds in
  Alcotest.(check bool) "channels per round unchanged" true
    (abs_float (per_round one -. per_round eight) < 1.);
  Alcotest.(check bool) "8 rumors complete" true (Multi.all_complete eight)

let test_multi_staggered_creation () =
  let messages =
    [
      { Multi.source = 0; created = 0 };
      { Multi.source = 500; created = 5 };
      { Multi.source = 900; created = 10 };
    ]
  in
  let r = multi_run ~seed:6 ~n:1024 ~messages () in
  Alcotest.(check bool) "all complete" true (Multi.all_complete r);
  (* A later rumor cannot complete earlier than proportionally later. *)
  (match
     ( r.Multi.messages.(0).Multi.completion_round,
       r.Multi.messages.(2).Multi.completion_round )
   with
  | Some c0, Some c2 ->
      Alcotest.(check bool) "staggered completion order" true (c2 > c0)
  | _ -> Alcotest.fail "missing completion");
  ()

let test_multi_validation () =
  Alcotest.check_raises "no messages" (Invalid_argument "Multi.run: no messages")
    (fun () -> ignore (multi_run ~seed:7 ~n:64 ~messages:[] ()));
  Alcotest.check_raises "bad source" (Invalid_argument "Multi.run: bad source")
    (fun () ->
      ignore
        (multi_run ~seed:8 ~n:64
           ~messages:[ { Multi.source = 70; created = 0 } ]
           ()));
  Alcotest.check_raises "negative creation"
    (Invalid_argument "Multi.run: negative creation time") (fun () ->
      ignore
        (multi_run ~seed:9 ~n:64
           ~messages:[ { Multi.source = 0; created = -1 } ]
           ()))

let test_multi_per_message_cost_matches_single () =
  let one =
    multi_run ~seed:10 ~n:2048 ~messages:[ { Multi.source = 0; created = 0 } ] ()
  in
  let four =
    multi_run ~seed:10 ~n:2048
      ~messages:(List.init 4 (fun i -> { Multi.source = 200 * i; created = 0 }))
      ()
  in
  let single_tx = one.Multi.messages.(0).Multi.transmissions in
  Array.iter
    (fun m ->
      let ratio =
        float_of_int m.Multi.transmissions /. float_of_int single_tx
      in
      Alcotest.(check bool)
        (Printf.sprintf "per-message tx within 25%% (ratio %.2f)" ratio)
        true
        (ratio > 0.75 && ratio < 1.25))
    four.Multi.messages

(* --- Clock skew --- *)

let test_skew_zero_is_default () =
  let go skew =
    let rng = Rng.create 11 in
    let g = Regular.sample_connected ~rng ~n:512 ~d:8 Regular.Pairing in
    let params = Params.make ~n_estimate:512 ~d:8 () in
    Engine.run ?skew ~rng
      ~topology:(Topology.of_graph g)
      ~protocol:(Algorithm.make params) ~sources:[ 0 ] ()
  in
  let a = go None and b = go (Some (fun _ -> 0)) in
  Alcotest.(check int) "identical transmissions" (Engine.transmissions a)
    (Engine.transmissions b)

let test_skew_small_still_completes () =
  let rng = Rng.create 12 in
  let n = 2048 in
  let g = Regular.sample_connected ~rng ~n ~d:8 Regular.Pairing in
  let offsets = Array.init n (fun _ -> Rng.int rng 3) in
  let params = Params.make ~alpha:2.0 ~n_estimate:n ~d:8 () in
  let res =
    Engine.run ~skew:(fun v -> offsets.(v)) ~rng
      ~topology:(Topology.of_graph g)
      ~protocol:(Algorithm.make params) ~sources:[ 0 ] ()
  in
  Alcotest.(check bool) "completes under +-2 rounds of skew" true
    (Engine.success res)

let test_skew_delays_unstarted_nodes () =
  (* All nodes except the source start their clocks 500 rounds late:
     until round 500 only the source's own 10 pushes can inform anyone;
     the late nodes then wake up and run their schedule. *)
  let g = Classic.complete 64 in
  let rng = Rng.create 13 in
  let res =
    Engine.run ~collect_trace:true
      ~skew:(fun v -> if v = 0 then 0 else 500)
      ~rng
      ~topology:(Topology.of_graph g)
      ~protocol:(Baselines.push ~horizon:10 ())
      ~sources:[ 0 ] ()
  in
  match res.Engine.trace with
  | None -> Alcotest.fail "trace missing"
  | Some t ->
      let at_500 = (Rumor_sim.Trace.get t 499).Rumor_sim.Trace.informed in
      Alcotest.(check bool)
        (Printf.sprintf "only source pushes before clocks start (%d)" at_500)
        true (at_500 <= 11);
      Alcotest.(check bool) "late clocks spread afterwards" true
        (res.Engine.informed > at_500)

(* --- Estimator --- *)

let test_estimator_accuracy () =
  let rng = Rng.create 14 in
  let n = 1024 in
  let g = Regular.sample_connected ~rng ~n ~d:8 Regular.Pairing in
  let o = Overlay.of_graph ~capacity:n g in
  let est = Estimator.create ~rng ~overlay:o ~k:400 in
  let rounds = Estimator.run ~rng est in
  Alcotest.(check bool) "converged quickly" true (rounds < 200);
  let err = Estimator.worst_error est in
  Alcotest.(check bool)
    (Printf.sprintf "worst error %.2f within factor 2" err)
    true (err < 2.)

let test_estimator_consensus () =
  (* After convergence every node holds the same estimate. *)
  let rng = Rng.create 15 in
  let n = 256 in
  let g = Regular.sample_connected ~rng ~n ~d:6 Regular.Pairing in
  let o = Overlay.of_graph ~capacity:n g in
  let est = Estimator.create ~rng ~overlay:o ~k:64 in
  ignore (Estimator.run ~rng est);
  let e0 = Estimator.estimate est ~node:0 in
  for v = 1 to n - 1 do
    Alcotest.(check (float 1e-9)) "same estimate everywhere" e0
      (Estimator.estimate est ~node:v)
  done

let test_estimator_validation () =
  let rng = Rng.create 16 in
  let o = Overlay.of_graph ~capacity:8 (Classic.complete 8) in
  Alcotest.check_raises "k" (Invalid_argument "Estimator.create: k < 1")
    (fun () -> ignore (Estimator.create ~rng ~overlay:o ~k:0))

let test_estimator_round_reports_changes () =
  let rng = Rng.create 17 in
  let o = Overlay.of_graph ~capacity:16 (Classic.complete 16) in
  let est = Estimator.create ~rng ~overlay:o ~k:8 in
  let first = Estimator.round ~rng est in
  Alcotest.(check bool) "first round changes vectors" true (first > 0);
  ignore (Estimator.run ~rng est);
  Alcotest.(check int) "converged round changes nothing" 0
    (Estimator.round ~rng est)

(* --- Bootstrap --- *)

let test_bootstrap_grows_regular () =
  let rng = Rng.create 18 in
  let o = Bootstrap.grow ~rng ~n:200 ~d:4 ~capacity:256 () in
  Alcotest.(check int) "n nodes" 200 (Overlay.node_count o);
  Alcotest.(check bool) "invariant" true (Overlay.invariant o);
  let q = Bootstrap.quality ~rng ~d:4 o in
  Alcotest.(check bool) "4-regular" true q.Bootstrap.regular;
  Alcotest.(check bool) "connected" true q.Bootstrap.connected

let test_bootstrap_expansion () =
  let rng = Rng.create 19 in
  let o = Bootstrap.grow ~rng ~n:400 ~d:6 ~capacity:512 () in
  let q = Bootstrap.quality ~rng ~d:6 o in
  (* The grown overlay should mix nearly as well as a configuration-
     model sample: lambda2 within 40% of the Ramanujan benchmark. *)
  Alcotest.(check bool)
    (Printf.sprintf "lambda2 %.2f near benchmark %.2f" q.Bootstrap.lambda2
       q.Bootstrap.ramanujan)
    true
    (q.Bootstrap.lambda2 < q.Bootstrap.ramanujan *. 1.4)

let test_bootstrap_validation () =
  let rng = Rng.create 20 in
  Alcotest.check_raises "odd d"
    (Invalid_argument "Bootstrap.grow: d must be positive and even") (fun () ->
      ignore (Bootstrap.grow ~rng ~n:10 ~d:3 ~capacity:10 ()));
  Alcotest.check_raises "n too small" (Invalid_argument "Bootstrap.grow: n < d + 1")
    (fun () -> ignore (Bootstrap.grow ~rng ~n:4 ~d:4 ~capacity:10 ()));
  Alcotest.check_raises "capacity" (Invalid_argument "Bootstrap.grow: capacity < n")
    (fun () -> ignore (Bootstrap.grow ~rng ~n:10 ~d:4 ~capacity:5 ()))

let test_bootstrap_broadcast_works () =
  (* End-to-end: a bootstrapped overlay supports the paper's algorithm. *)
  let rng = Rng.create 21 in
  let n = 512 in
  let o = Bootstrap.grow ~rng ~n ~d:8 ~capacity:n () in
  let params = Params.make ~alpha:2.0 ~n_estimate:n ~d:8 () in
  let res =
    Engine.run ~rng
      ~topology:(Overlay.to_topology o)
      ~protocol:(Rumor_core.Algorithm.make params)
      ~sources:[ Overlay.random_node o rng ]
      ()
  in
  Alcotest.(check bool) "broadcast completes" true (Engine.success res)

(* --- Small world --- *)

let test_smallworld_beta0_is_lattice () =
  let rng = Rng.create 22 in
  let g = Smallworld.sample ~rng ~n:50 ~k:2 ~beta:0. in
  Alcotest.(check (option int)) "4-regular ring lattice" (Some 4)
    (Graph.is_regular g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  (* Lattice structure: 0 adjacent to 1, 2, 49, 48. *)
  List.iter
    (fun w -> Alcotest.(check bool) "lattice edge" true (Graph.mem_edge g 0 w))
    [ 1; 2; 48; 49 ]

let test_smallworld_edge_count () =
  let rng = Rng.create 23 in
  List.iter
    (fun beta ->
      let g = Smallworld.sample ~rng ~n:100 ~k:3 ~beta in
      Alcotest.(check int) "n*k edges" 300 (Graph.m g))
    [ 0.; 0.3; 1. ]

let test_smallworld_rewiring_shrinks_diameter () =
  let rng = Rng.create 24 in
  let lattice = Smallworld.sample ~rng ~n:400 ~k:2 ~beta:0. in
  let rewired = Smallworld.sample ~rng ~n:400 ~k:2 ~beta:0.3 in
  let d0 = Traversal.diameter_lower_bound lattice ~rng ~samples:3 in
  let d1 = Traversal.diameter_lower_bound rewired ~rng ~samples:3 in
  Alcotest.(check bool)
    (Printf.sprintf "diameter %d -> %d" d0 d1)
    true (d1 * 2 < d0)

let test_smallworld_no_self_loops () =
  let rng = Rng.create 25 in
  let g = Smallworld.sample ~rng ~n:200 ~k:3 ~beta:1. in
  Alcotest.(check int) "no self loops" 0 (Graph.count_self_loops g)

let test_smallworld_validation () =
  let rng = Rng.create 26 in
  Alcotest.check_raises "k" (Invalid_argument "Smallworld.sample: k < 1")
    (fun () -> ignore (Smallworld.sample ~rng ~n:10 ~k:0 ~beta:0.5));
  Alcotest.check_raises "n" (Invalid_argument "Smallworld.sample: n <= 2k")
    (fun () -> ignore (Smallworld.sample ~rng ~n:4 ~k:2 ~beta:0.5));
  Alcotest.check_raises "beta"
    (Invalid_argument "Smallworld.sample: beta out of range") (fun () ->
      ignore (Smallworld.sample ~rng ~n:10 ~k:2 ~beta:1.5))

(* --- Welch t-test --- *)

let test_normal_cdf_values () =
  let close a b = abs_float (a -. b) < 1e-4 in
  Alcotest.(check bool) "cdf(0)" true (close (Ttest.normal_cdf 0.) 0.5);
  Alcotest.(check bool) "cdf(1.96)" true (close (Ttest.normal_cdf 1.96) 0.975);
  Alcotest.(check bool) "cdf(-1.96)" true (close (Ttest.normal_cdf (-1.96)) 0.025);
  Alcotest.(check bool) "cdf(3)" true (close (Ttest.normal_cdf 3.) 0.99865)

let test_ttest_same_distribution () =
  let rng = Rng.create 27 in
  let draw () =
    Summary.of_list
      (List.init 50 (fun _ -> Rumor_rng.Dist.normal rng ~mu:10. ~sigma:2.))
  in
  let o = Ttest.welch (draw ()) (draw ()) in
  Alcotest.(check bool)
    (Printf.sprintf "same distribution not significant (p=%.3f)" o.Ttest.p_value)
    false o.Ttest.significant

let test_ttest_different_means () =
  let rng = Rng.create 28 in
  let draw mu =
    Summary.of_list
      (List.init 50 (fun _ -> Rumor_rng.Dist.normal rng ~mu ~sigma:1.))
  in
  let o = Ttest.welch (draw 0.) (draw 5.) in
  Alcotest.(check bool) "clearly different" true o.Ttest.significant;
  Alcotest.(check bool) "p tiny" true (o.Ttest.p_value < 1e-6);
  Alcotest.(check bool) "negative t for smaller first mean" true (o.Ttest.t_stat < 0.)

let test_ttest_small_samples () =
  (* Small dof exercises the t-distribution branch. *)
  let a = Summary.of_list [ 1.; 2.; 3.; 4. ] in
  let b = Summary.of_list [ 1.5; 2.5; 3.5; 4.5 ] in
  let o = Ttest.welch a b in
  Alcotest.(check bool) "dof small" true (o.Ttest.dof < 30.);
  Alcotest.(check bool) "overlapping samples not significant" false
    o.Ttest.significant;
  Alcotest.(check bool) "p in range" true (o.Ttest.p_value >= 0. && o.Ttest.p_value <= 1.)

let test_ttest_identical_constants () =
  let a = Summary.of_list [ 2.; 2.; 2. ] in
  let o = Ttest.welch a a in
  Alcotest.(check bool) "identical constants p=1" true (o.Ttest.p_value = 1.)

let test_ttest_validation () =
  let tiny = Summary.of_list [ 1. ] in
  let ok = Summary.of_list [ 1.; 2. ] in
  Alcotest.check_raises "sample size"
    (Invalid_argument "Ttest.welch: need >= 2 points per sample") (fun () ->
      ignore (Ttest.welch tiny ok))

(* --- qcheck properties --- *)

let prop_smallworld_degree_sum =
  QCheck.Test.make ~count:50 ~name:"small world keeps n*k edges for any beta"
    QCheck.(triple small_int (int_range 7 60) (float_bound_inclusive 1.))
    (fun (seed, n, beta) ->
      let rng = Rng.create seed in
      let g = Smallworld.sample ~rng ~n ~k:2 ~beta in
      Graph.m g = 2 * n)

let prop_ttest_symmetry =
  QCheck.Test.make ~count:50 ~name:"welch t is antisymmetric"
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let rng1 = Rng.create (s1 + 1) and rng2 = Rng.create (s2 + 100000) in
      let a =
        Summary.of_list (List.init 10 (fun _ -> Rumor_rng.Rng.float rng1))
      in
      let b =
        Summary.of_list
          (List.init 10 (fun _ -> 2. *. Rumor_rng.Rng.float rng2))
      in
      let ab = Ttest.welch a b and ba = Ttest.welch b a in
      abs_float (ab.Ttest.t_stat +. ba.Ttest.t_stat) < 1e-9
      && abs_float (ab.Ttest.p_value -. ba.Ttest.p_value) < 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_smallworld_degree_sum; prop_ttest_symmetry ]

let () =
  Alcotest.run "extensions"
    [
      ( "median-counter",
        [
          Alcotest.test_case "complete graph" `Quick test_mc_complete_graph;
          Alcotest.test_case "regular graph" `Slow test_mc_regular_graph;
          Alcotest.test_case "message bound" `Quick test_mc_message_bound;
          Alcotest.test_case "config validation" `Quick test_mc_config_validation;
          Alcotest.test_case "bad source" `Quick test_mc_bad_source;
          Alcotest.test_case "horizon caps" `Quick test_mc_horizon_caps;
        ] );
      ( "multi-message",
        [
          Alcotest.test_case "single message" `Quick
            test_multi_single_equals_engine_shape;
          Alcotest.test_case "all complete" `Quick test_multi_all_complete;
          Alcotest.test_case "channels shared" `Quick test_multi_channels_shared;
          Alcotest.test_case "staggered creation" `Quick test_multi_staggered_creation;
          Alcotest.test_case "validation" `Quick test_multi_validation;
          Alcotest.test_case "per-message cost" `Slow
            test_multi_per_message_cost_matches_single;
        ] );
      ( "clock-skew",
        [
          Alcotest.test_case "zero skew default" `Quick test_skew_zero_is_default;
          Alcotest.test_case "small skew completes" `Quick
            test_skew_small_still_completes;
          Alcotest.test_case "unstarted stay silent" `Quick
            test_skew_delays_unstarted_nodes;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "accuracy" `Quick test_estimator_accuracy;
          Alcotest.test_case "consensus" `Quick test_estimator_consensus;
          Alcotest.test_case "validation" `Quick test_estimator_validation;
          Alcotest.test_case "round changes" `Quick test_estimator_round_reports_changes;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "grows regular" `Quick test_bootstrap_grows_regular;
          Alcotest.test_case "expansion" `Quick test_bootstrap_expansion;
          Alcotest.test_case "validation" `Quick test_bootstrap_validation;
          Alcotest.test_case "broadcast works" `Quick test_bootstrap_broadcast_works;
        ] );
      ( "small-world",
        [
          Alcotest.test_case "beta 0 lattice" `Quick test_smallworld_beta0_is_lattice;
          Alcotest.test_case "edge count" `Quick test_smallworld_edge_count;
          Alcotest.test_case "rewiring shrinks diameter" `Quick
            test_smallworld_rewiring_shrinks_diameter;
          Alcotest.test_case "no self loops" `Quick test_smallworld_no_self_loops;
          Alcotest.test_case "validation" `Quick test_smallworld_validation;
        ] );
      ( "ttest",
        [
          Alcotest.test_case "normal cdf" `Quick test_normal_cdf_values;
          Alcotest.test_case "same distribution" `Quick test_ttest_same_distribution;
          Alcotest.test_case "different means" `Quick test_ttest_different_means;
          Alcotest.test_case "small samples" `Quick test_ttest_small_samples;
          Alcotest.test_case "identical constants" `Quick test_ttest_identical_constants;
          Alcotest.test_case "validation" `Quick test_ttest_validation;
        ] );
      ("properties", qcheck_cases);
    ]
