test/test_rng.ml: Alcotest Array Gen Int List Printf QCheck QCheck_alcotest Rumor_rng Set
