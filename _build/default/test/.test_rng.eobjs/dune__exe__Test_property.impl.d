test/test_property.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Rumor_core Rumor_gen Rumor_graph Rumor_p2p Rumor_rng Rumor_sim String
