test/test_ext3.ml: Alcotest Array Float Gen List Printf QCheck QCheck_alcotest Rumor_core Rumor_gen Rumor_graph Rumor_p2p Rumor_rng Rumor_sim Rumor_stats String
