test/test_analysis.ml: Alcotest Filename List Printf Rumor_cli Rumor_core Rumor_gen Rumor_rng Rumor_sim Sys
