test/test_ext4.mli:
