test/test_ext4.ml: Alcotest Format List Printf Rumor_cli Rumor_core Rumor_gen Rumor_graph Rumor_rng Rumor_sim Rumor_stats String
