test/test_stats.ml: Alcotest Format Gen List QCheck QCheck_alcotest Rumor_rng Rumor_stats String
