test/test_ext2.ml: Alcotest Array Char Filename Fun Gen List Printf QCheck QCheck_alcotest Rumor_core Rumor_gen Rumor_graph Rumor_p2p Rumor_rng Rumor_sim Rumor_stats String Sys
