test/test_ext.ml: Alcotest Array List Printf QCheck QCheck_alcotest Rumor_core Rumor_gen Rumor_graph Rumor_p2p Rumor_rng Rumor_sim Rumor_stats
