test/test_distshape.ml: Alcotest Array Hashtbl Printf Rumor_rng Rumor_stats
