test/test_distshape.mli:
