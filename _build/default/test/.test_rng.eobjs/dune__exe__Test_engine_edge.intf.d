test/test_engine_edge.mli:
