test/test_p2p.ml: Alcotest Float List Printf QCheck QCheck_alcotest Rumor_core Rumor_gen Rumor_graph Rumor_p2p Rumor_rng Rumor_sim
