test/test_integration.ml: Alcotest List Printf Rumor_core Rumor_gen Rumor_graph Rumor_rng Rumor_sim Rumor_stats
