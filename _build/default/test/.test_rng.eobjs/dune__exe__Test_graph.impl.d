test/test_graph.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Rumor_gen Rumor_graph Rumor_rng String
