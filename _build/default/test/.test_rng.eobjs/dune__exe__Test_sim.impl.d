test/test_sim.ml: Alcotest Array Format List QCheck QCheck_alcotest Rumor_gen Rumor_graph Rumor_rng Rumor_sim String
