test/test_core.ml: Alcotest List Printf QCheck QCheck_alcotest Rumor_core Rumor_gen Rumor_graph Rumor_rng Rumor_sim
