test/test_engine_edge.ml: Alcotest List Printf Rumor_core Rumor_gen Rumor_graph Rumor_rng Rumor_sim
