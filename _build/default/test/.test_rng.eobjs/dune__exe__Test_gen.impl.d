test/test_gen.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest Rumor_gen Rumor_graph Rumor_rng
