test/test_golden.ml: Alcotest Rumor_core Rumor_gen Rumor_graph Rumor_rng Rumor_sim
