(* Tests for the rumor_rng library: generators, bounded draws, sampling
   primitives and distributions. *)

module Splitmix64 = Rumor_rng.Splitmix64
module Xoshiro = Rumor_rng.Xoshiro
module Rng = Rumor_rng.Rng
module Dist = Rumor_rng.Dist

let check_float = Alcotest.(check (float 1e-9))

(* --- Splitmix64 --- *)

let test_splitmix_deterministic () =
  let a = Splitmix64.create 42L and b = Splitmix64.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix64.next a) (Splitmix64.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix64.create 1L and b = Splitmix64.create 2L in
  Alcotest.(check bool) "different seeds differ" true
    (Splitmix64.next a <> Splitmix64.next b)

let test_splitmix_copy () =
  let a = Splitmix64.create 7L in
  ignore (Splitmix64.next a);
  let b = Splitmix64.copy a in
  Alcotest.(check int64) "copy continues identically" (Splitmix64.next a)
    (Splitmix64.next b)

let test_splitmix_next_in_bounds () =
  let t = Splitmix64.create 3L in
  for _ = 1 to 1000 do
    let x = Splitmix64.next_in t 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_splitmix_next_in_invalid () =
  let t = Splitmix64.create 3L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix64.next_in: bound <= 0")
    (fun () -> ignore (Splitmix64.next_in t 0))

let test_splitmix_float_range () =
  let t = Splitmix64.create 5L in
  for _ = 1 to 1000 do
    let x = Splitmix64.next_float t in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

(* --- Xoshiro --- *)

let test_xoshiro_deterministic () =
  let a = Xoshiro.create 42L and b = Xoshiro.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_xoshiro_of_state_zero () =
  Alcotest.check_raises "all-zero rejected"
    (Invalid_argument "Xoshiro.of_state: all-zero state") (fun () ->
      ignore (Xoshiro.of_state 0L 0L 0L 0L))

let test_xoshiro_jump_disjoint () =
  (* After a jump the stream must differ from the unjumped stream. *)
  let a = Xoshiro.create 9L in
  let b = Xoshiro.copy a in
  Xoshiro.jump b;
  let differs = ref false in
  for _ = 1 to 32 do
    if Xoshiro.next a <> Xoshiro.next b then differs := true
  done;
  Alcotest.(check bool) "jumped stream differs" true !differs

let test_xoshiro_copy_independent () =
  let a = Xoshiro.create 11L in
  let b = Xoshiro.copy a in
  ignore (Xoshiro.next a);
  ignore (Xoshiro.next a);
  (* b still produces the original next value *)
  let c = Xoshiro.create 11L in
  Alcotest.(check int64) "copy kept old state" (Xoshiro.next c) (Xoshiro.next b)

(* --- Rng --- *)

let test_rng_int_bounds () =
  let t = Rng.create 1 in
  for bound = 1 to 40 do
    for _ = 1 to 200 do
      let x = Rng.int t bound in
      Alcotest.(check bool) "in range" true (x >= 0 && x < bound)
    done
  done

let test_rng_int_invalid () =
  let t = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int t 0))

let test_rng_int_uniform () =
  (* Rough uniformity: 8 cells, 80k draws; each cell within 5% of 10k. *)
  let t = Rng.create 123 in
  let cells = Array.make 8 0 in
  for _ = 1 to 80_000 do
    let x = Rng.int t 8 in
    cells.(x) <- cells.(x) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "cell count %d near 10000" c)
        true
        (c > 9_500 && c < 10_500))
    cells

let test_rng_int_in () =
  let t = Rng.create 2 in
  for _ = 1 to 1000 do
    let x = Rng.int_in t (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done;
  Alcotest.(check int) "degenerate range" 3 (Rng.int_in t 3 3);
  Alcotest.check_raises "hi < lo" (Invalid_argument "Rng.int_in: hi < lo")
    (fun () -> ignore (Rng.int_in t 2 1))

let test_rng_float_range () =
  let t = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float t in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_float_mean () =
  let t = Rng.create 4 in
  let total = ref 0. in
  let n = 100_000 in
  for _ = 1 to n do
    total := !total +. Rng.float t
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_rng_bool_fair () =
  let t = Rng.create 5 in
  let heads = ref 0 in
  for _ = 1 to 50_000 do
    if Rng.bool t then incr heads
  done;
  Alcotest.(check bool) "roughly fair" true (!heads > 24_000 && !heads < 26_000)

let test_rng_bernoulli_extremes () =
  let t = Rng.create 6 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli t 0.);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli t 1.);
    Alcotest.(check bool) "p<0 clamps" false (Rng.bernoulli t (-0.5));
    Alcotest.(check bool) "p>1 clamps" true (Rng.bernoulli t 1.5)
  done

let test_rng_bernoulli_freq () =
  let t = Rng.create 7 in
  let hits = ref 0 in
  for _ = 1 to 50_000 do
    if Rng.bernoulli t 0.3 then incr hits
  done;
  let f = float_of_int !hits /. 50_000. in
  Alcotest.(check bool) "frequency near 0.3" true (abs_float (f -. 0.3) < 0.02)

let test_rng_pick () =
  let t = Rng.create 8 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let x = Rng.pick t a in
    Alcotest.(check bool) "element of array" true (x = 10 || x = 20 || x = 30)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick t [||]))

let test_rng_distinct_validity () =
  let t = Rng.create 9 in
  for _ = 1 to 500 do
    let k = 1 + Rng.int t 6 and bound = 8 + Rng.int t 20 in
    let a = Rng.distinct t ~bound ~k in
    Alcotest.(check int) "length" k (Array.length a);
    Array.iter
      (fun x -> Alcotest.(check bool) "range" true (x >= 0 && x < bound))
      a;
    let sorted = Array.copy a in
    Array.sort compare sorted;
    for i = 1 to k - 1 do
      Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
    done
  done

let test_rng_distinct_full () =
  let t = Rng.create 10 in
  let a = Rng.distinct t ~bound:12 ~k:12 in
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k = bound is a permutation"
    (Array.init 12 (fun i -> i))
    sorted

let test_rng_distinct_invalid () =
  let t = Rng.create 11 in
  Alcotest.check_raises "k > bound"
    (Invalid_argument "Rng.distinct_into: k out of range") (fun () ->
      ignore (Rng.distinct t ~bound:3 ~k:4))

let test_rng_distinct_into_out_too_short () =
  let t = Rng.create 11 in
  Alcotest.check_raises "out too short"
    (Invalid_argument "Rng.distinct_into: out too short") (fun () ->
      ignore (Rng.distinct_into t ~bound:8 ~k:4 (Array.make 2 0)))

let test_rng_fork_nonadvancing () =
  let a = Rng.create 13 in
  let b = Rng.create 13 in
  ignore (Rng.fork a 0);
  ignore (Rng.fork a 1);
  Alcotest.(check int64) "fork does not advance parent" (Rng.bits64 b)
    (Rng.bits64 a)

let test_rng_fork_independent () =
  let a = Rng.create 14 in
  let s0 = Rng.fork a 0 and s1 = Rng.fork a 1 in
  Alcotest.(check bool) "forks differ" true (Rng.bits64 s0 <> Rng.bits64 s1)

let test_rng_fork_reproducible () =
  let a = Rng.create 15 and b = Rng.create 15 in
  let fa = Rng.fork a 3 and fb = Rng.fork b 3 in
  for _ = 1 to 20 do
    Alcotest.(check int64) "same fork same stream" (Rng.bits64 fa) (Rng.bits64 fb)
  done

let test_rng_split_advances () =
  let a = Rng.create 16 and b = Rng.create 16 in
  let _child = Rng.split a in
  Alcotest.(check bool) "split advances parent" true
    (Rng.bits64 a <> Rng.bits64 b)

(* --- Distributions --- *)

let test_dist_uniform () =
  let t = Rng.create 20 in
  for _ = 1 to 1000 do
    let x = Dist.uniform t ~lo:(-2.) ~hi:3. in
    Alcotest.(check bool) "in range" true (x >= -2. && x < 3.)
  done;
  Alcotest.check_raises "hi < lo" (Invalid_argument "Dist.uniform: hi < lo")
    (fun () -> ignore (Dist.uniform t ~lo:1. ~hi:0.))

let test_dist_exponential_mean () =
  let t = Rng.create 21 in
  let total = ref 0. in
  let n = 50_000 in
  for _ = 1 to n do
    let x = Dist.exponential t ~rate:2. in
    Alcotest.(check bool) "nonnegative" true (x >= 0.);
    total := !total +. x
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_dist_exponential_invalid () =
  let t = Rng.create 21 in
  Alcotest.check_raises "rate 0" (Invalid_argument "Dist.exponential: rate <= 0")
    (fun () -> ignore (Dist.exponential t ~rate:0.))

let test_dist_geometric_mean () =
  let t = Rng.create 22 in
  let total = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let x = Dist.geometric t ~p:0.25 in
    Alcotest.(check bool) "nonnegative" true (x >= 0);
    total := !total + x
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* E = (1-p)/p = 3 *)
  Alcotest.(check bool) "mean near 3" true (abs_float (mean -. 3.) < 0.1)

let test_dist_geometric_p1 () =
  let t = Rng.create 22 in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 is 0" 0 (Dist.geometric t ~p:1.)
  done

let test_dist_normal_moments () =
  let t = Rng.create 23 in
  let n = 100_000 in
  let total = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let x = Dist.normal t ~mu:5. ~sigma:2. in
    total := !total +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !total /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 5" true (abs_float (mean -. 5.) < 0.05);
  Alcotest.(check bool) "variance near 4" true (abs_float (var -. 4.) < 0.15)

let test_dist_normal_sigma_zero () =
  let t = Rng.create 23 in
  check_float "sigma 0 is mu" 7. (Dist.normal t ~mu:7. ~sigma:0.)

let test_dist_binomial_bounds () =
  let t = Rng.create 24 in
  for _ = 1 to 2000 do
    let x = Dist.binomial t ~n:30 ~p:0.4 in
    Alcotest.(check bool) "in [0, n]" true (x >= 0 && x <= 30)
  done

let test_dist_binomial_mean () =
  let t = Rng.create 25 in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total + Dist.binomial t ~n:50 ~p:0.3
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean near 15" true (abs_float (mean -. 15.) < 0.15)

let test_dist_binomial_edges () =
  let t = Rng.create 26 in
  Alcotest.(check int) "p=0" 0 (Dist.binomial t ~n:10 ~p:0.);
  Alcotest.(check int) "p=1" 10 (Dist.binomial t ~n:10 ~p:1.);
  Alcotest.(check int) "n=0" 0 (Dist.binomial t ~n:0 ~p:0.5)

let test_dist_binomial_high_p () =
  (* p > 1/2 goes through the complement branch. *)
  let t = Rng.create 27 in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total + Dist.binomial t ~n:40 ~p:0.9
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean near 36" true (abs_float (mean -. 36.) < 0.2)

let test_dist_poisson_mean () =
  let t = Rng.create 28 in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total + Dist.poisson t ~lambda:4.5
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean near 4.5" true (abs_float (mean -. 4.5) < 0.1)

let test_dist_poisson_large_lambda () =
  (* Exercises the recursive split. *)
  let t = Rng.create 29 in
  let total = ref 0 in
  let n = 5_000 in
  for _ = 1 to n do
    total := !total + Dist.poisson t ~lambda:100.
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean near 100" true (abs_float (mean -. 100.) < 1.5)

let test_dist_poisson_zero () =
  let t = Rng.create 29 in
  Alcotest.(check int) "lambda 0" 0 (Dist.poisson t ~lambda:0.)

let test_dist_zipf_range () =
  let t = Rng.create 30 in
  List.iter
    (fun s ->
      for _ = 1 to 2_000 do
        let x = Dist.zipf t ~n:50 ~s in
        Alcotest.(check bool) "rank in range" true (x >= 0 && x < 50)
      done)
    [ 0.; 0.8; 1.; 1.5 ]

let test_dist_zipf_skew () =
  let t = Rng.create 31 in
  let counts = Array.make 20 0 in
  for _ = 1 to 40_000 do
    let x = Dist.zipf t ~n:20 ~s:1. in
    counts.(x) <- counts.(x) + 1
  done;
  Alcotest.(check bool) "rank 0 dominates rank 10" true
    (counts.(0) > 3 * counts.(10))

let test_dist_zipf_uniform_when_s0 () =
  let t = Rng.create 32 in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let x = Dist.zipf t ~n:10 ~s:0. in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 4_300 && c < 5_700))
    counts

(* --- qcheck properties --- *)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~count:200 ~name:"shuffle is a permutation"
    QCheck.(pair small_int (array_of_size Gen.(int_range 0 50) int))
    (fun (seed, a) ->
      let t = Rng.create seed in
      let b = Array.copy a in
      Rng.shuffle t b;
      let sa = Array.copy a and sb = Array.copy b in
      Array.sort compare sa;
      Array.sort compare sb;
      sa = sb)

let prop_shuffle_prefix_subset =
  QCheck.Test.make ~count:200 ~name:"shuffle_prefix keeps the multiset"
    QCheck.(pair small_int (array_of_size Gen.(int_range 1 50) int))
    (fun (seed, a) ->
      let t = Rng.create seed in
      let k = Array.length a / 2 in
      let b = Array.copy a in
      Rng.shuffle_prefix t b k;
      let sa = Array.copy a and sb = Array.copy b in
      Array.sort compare sa;
      Array.sort compare sb;
      sa = sb)

let prop_permutation_valid =
  QCheck.Test.make ~count:200 ~name:"permutation covers 0..n-1"
    QCheck.(pair small_int (int_range 0 100))
    (fun (seed, n) ->
      let t = Rng.create seed in
      let p = Rng.permutation t n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let prop_distinct_distinct =
  QCheck.Test.make ~count:300 ~name:"distinct yields distinct in-range values"
    QCheck.(triple small_int (int_range 1 64) (int_range 0 64))
    (fun (seed, bound, kraw) ->
      let k = min kraw bound in
      let t = Rng.create seed in
      let a = Rng.distinct t ~bound ~k in
      let module S = Set.Make (Int) in
      let s = S.of_list (Array.to_list a) in
      S.cardinal s = k && S.for_all (fun x -> x >= 0 && x < bound) s)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_shuffle_is_permutation;
      prop_shuffle_prefix_subset;
      prop_permutation_valid;
      prop_distinct_distinct;
    ]

let () =
  Alcotest.run "rumor_rng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_splitmix_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_splitmix_copy;
          Alcotest.test_case "next_in bounds" `Quick test_splitmix_next_in_bounds;
          Alcotest.test_case "next_in invalid" `Quick test_splitmix_next_in_invalid;
          Alcotest.test_case "float range" `Quick test_splitmix_float_range;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "of_state zero" `Quick test_xoshiro_of_state_zero;
          Alcotest.test_case "jump disjoint" `Quick test_xoshiro_jump_disjoint;
          Alcotest.test_case "copy independent" `Quick test_xoshiro_copy_independent;
        ] );
      ( "rng",
        [
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "bool fair" `Quick test_rng_bool_fair;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli freq" `Quick test_rng_bernoulli_freq;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "distinct validity" `Quick test_rng_distinct_validity;
          Alcotest.test_case "distinct full range" `Quick test_rng_distinct_full;
          Alcotest.test_case "distinct invalid" `Quick test_rng_distinct_invalid;
          Alcotest.test_case "distinct_into short out" `Quick
            test_rng_distinct_into_out_too_short;
          Alcotest.test_case "fork non-advancing" `Quick test_rng_fork_nonadvancing;
          Alcotest.test_case "fork independent" `Quick test_rng_fork_independent;
          Alcotest.test_case "fork reproducible" `Quick test_rng_fork_reproducible;
          Alcotest.test_case "split advances" `Quick test_rng_split_advances;
        ] );
      ( "dist",
        [
          Alcotest.test_case "uniform" `Quick test_dist_uniform;
          Alcotest.test_case "exponential mean" `Quick test_dist_exponential_mean;
          Alcotest.test_case "exponential invalid" `Quick test_dist_exponential_invalid;
          Alcotest.test_case "geometric mean" `Quick test_dist_geometric_mean;
          Alcotest.test_case "geometric p=1" `Quick test_dist_geometric_p1;
          Alcotest.test_case "normal moments" `Quick test_dist_normal_moments;
          Alcotest.test_case "normal sigma 0" `Quick test_dist_normal_sigma_zero;
          Alcotest.test_case "binomial bounds" `Quick test_dist_binomial_bounds;
          Alcotest.test_case "binomial mean" `Quick test_dist_binomial_mean;
          Alcotest.test_case "binomial edges" `Quick test_dist_binomial_edges;
          Alcotest.test_case "binomial high p" `Quick test_dist_binomial_high_p;
          Alcotest.test_case "poisson mean" `Quick test_dist_poisson_mean;
          Alcotest.test_case "poisson large" `Quick test_dist_poisson_large_lambda;
          Alcotest.test_case "poisson zero" `Quick test_dist_poisson_zero;
          Alcotest.test_case "zipf range" `Quick test_dist_zipf_range;
          Alcotest.test_case "zipf skew" `Quick test_dist_zipf_skew;
          Alcotest.test_case "zipf s=0 uniform" `Quick test_dist_zipf_uniform_when_s0;
        ] );
      ("properties", qcheck_cases);
    ]
