(* Tests for the second extension wave: the asynchronous engine, random
   walks, graph serialisation, walk-based local joins, trace export and
   sparklines. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Walk = Rumor_graph.Walk
module Io = Rumor_graph.Io
module Classic = Rumor_gen.Classic
module Regular = Rumor_gen.Regular
module Async = Rumor_sim.Async
module Trace = Rumor_sim.Trace
module Params = Rumor_core.Params
module Algorithm = Rumor_core.Algorithm
module Baselines = Rumor_core.Baselines
module Run = Rumor_core.Run
module Overlay = Rumor_p2p.Overlay
module Churn = Rumor_p2p.Churn
module Sparkline = Rumor_stats.Sparkline

(* --- Async engine --- *)

let test_async_push_completes () =
  let rng = Rng.create 1 in
  let res =
    Async.run ~rng ~graph:(Classic.complete 256)
      ~protocol:(Baselines.push ~horizon:100 ())
      ~sources:[ 0 ] ()
  in
  Alcotest.(check int) "all informed" 256 res.Async.informed;
  Alcotest.(check bool) "completion time recorded" true
    (res.Async.completion_time <> None)

let test_async_time_logarithmic () =
  (* Async push on K_n completes in Theta(log n) time units. *)
  let time_for n =
    let rng = Rng.create 2 in
    let res =
      Async.run ~rng ~graph:(Classic.complete n)
        ~protocol:(Baselines.push ~horizon:200 ())
        ~sources:[ 0 ] ()
    in
    match res.Async.completion_time with
    | Some t -> t
    | None -> Alcotest.fail "did not complete"
  in
  let t256 = time_for 256 and t4096 = time_for 4096 in
  Alcotest.(check bool)
    (Printf.sprintf "sub-linear growth (%.1f -> %.1f)" t256 t4096)
    true
    (t4096 < 2.5 *. t256)

let test_async_algorithm_on_regular () =
  (* The paper's schedule survives asynchrony (clocks shared for
     timestamps, not for actions) with a widened constant. *)
  let rng = Rng.create 3 in
  let n = 2048 in
  let g = Regular.sample_connected ~rng ~n ~d:8 Regular.Pairing in
  let params = Params.make ~alpha:3.0 ~n_estimate:n ~d:8 () in
  let res =
    Async.run ~rng ~graph:g ~protocol:(Algorithm.make params) ~sources:[ 0 ] ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "nearly all informed (%d/%d)" res.Async.informed n)
    true
    (res.Async.informed >= n - n / 100)

let test_async_activation_rate () =
  (* Activations per unit time ~ n. *)
  let rng = Rng.create 4 in
  let n = 512 in
  let res =
    Async.run ~rng ~graph:(Classic.cycle n)
      ~protocol:(Baselines.push ~horizon:10 ())
      ~sources:[ 0 ] ()
  in
  let rate = float_of_int res.Async.activations /. res.Async.time in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.0f near n" rate)
    true
    (abs_float (rate -. float_of_int n) < 0.2 *. float_of_int n)

let test_async_validation () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "no sources" (Invalid_argument "Async.run: no sources")
    (fun () ->
      ignore
        (Async.run ~rng ~graph:(Classic.complete 4)
           ~protocol:(Baselines.push ~horizon:5 ())
           ~sources:[] ()));
  Alcotest.check_raises "bad source" (Invalid_argument "Async.run: bad source")
    (fun () ->
      ignore
        (Async.run ~rng ~graph:(Classic.complete 4)
           ~protocol:(Baselines.push ~horizon:5 ())
           ~sources:[ 7 ] ()))

let test_async_total_loss () =
  let rng = Rng.create 6 in
  let fault = Rumor_sim.Fault.make ~link_loss:1. () in
  let res =
    Async.run ~fault ~rng ~graph:(Classic.complete 64)
      ~protocol:(Baselines.push ~horizon:20 ())
      ~sources:[ 0 ] ()
  in
  Alcotest.(check int) "nothing spreads" 1 res.Async.informed

let test_async_deterministic () =
  let go () =
    let rng = Rng.create 7 in
    let res =
      Async.run ~rng ~graph:(Classic.complete 128)
        ~protocol:(Baselines.push ~horizon:50 ())
        ~sources:[ 0 ] ()
    in
    (res.Async.activations, res.Async.transmissions, res.Async.completion_time)
  in
  Alcotest.(check bool) "replay identical" true (go () = go ())

(* --- Random walks --- *)

let test_walk_step_adjacent () =
  let g = Classic.cycle 10 in
  let rng = Rng.create 8 in
  for _ = 1 to 100 do
    let w = Walk.step rng g 3 in
    Alcotest.(check bool) "adjacent" true (w = 2 || w = 4)
  done

let test_walk_step_isolated () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  let rng = Rng.create 9 in
  Alcotest.check_raises "isolated" (Invalid_argument "Walk.step: isolated vertex")
    (fun () -> ignore (Walk.step rng g 2))

let test_walk_endpoint_length_zero () =
  let g = Classic.cycle 10 in
  let rng = Rng.create 10 in
  Alcotest.(check int) "stays put" 7 (Walk.endpoint rng g ~start:7 ~length:0)

let test_walk_path_shape () =
  let g = Classic.complete 8 in
  let rng = Rng.create 11 in
  let p = Walk.path rng g ~start:0 ~length:20 in
  Alcotest.(check int) "length+1 vertices" 21 (Array.length p);
  Alcotest.(check int) "starts at start" 0 p.(0);
  for i = 1 to 20 do
    Alcotest.(check bool) "consecutive adjacent" true
      (Graph.mem_edge g p.(i - 1) p.(i))
  done

let test_walk_parity_on_bipartite () =
  (* On an even cycle the walk respects bipartition parity. *)
  let g = Classic.cycle 8 in
  let rng = Rng.create 12 in
  let e = Walk.endpoint rng g ~start:0 ~length:10 in
  Alcotest.(check int) "even length, even side" 0 (e mod 2)

let test_walk_mixes_to_uniform () =
  let rng = Rng.create 13 in
  let g = Regular.sample_connected ~rng ~n:256 ~d:8 Regular.Pairing in
  let counts = Walk.endpoint_counts rng g ~start:0 ~length:50 ~samples:20_000 in
  let tv = Walk.total_variation_from_uniform counts in
  Alcotest.(check bool)
    (Printf.sprintf "TV distance %.3f small" tv)
    true (tv < 0.12)

let test_walk_short_walk_not_uniform () =
  let rng = Rng.create 14 in
  let g = Classic.cycle 100 in
  let counts = Walk.endpoint_counts rng g ~start:0 ~length:3 ~samples:5_000 in
  let tv = Walk.total_variation_from_uniform counts in
  Alcotest.(check bool) "short walk on cycle far from uniform" true (tv > 0.5)

let test_walk_cover () =
  let rng = Rng.create 15 in
  let g = Classic.complete 32 in
  (match Walk.cover_steps rng g ~start:0 ~limit:10_000 with
  | Some steps ->
      (* Coupon collector: ~ n ln n = 111. *)
      Alcotest.(check bool)
        (Printf.sprintf "cover in %d steps" steps)
        true
        (steps > 31 && steps < 1_000)
  | None -> Alcotest.fail "did not cover K32 in 10k steps");
  Alcotest.(check bool) "limit respected" true
    (Walk.cover_steps rng (Classic.cycle 100) ~start:0 ~limit:5 = None)

let test_walk_tv_validation () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Walk.total_variation_from_uniform: empty") (fun () ->
      ignore (Walk.total_variation_from_uniform [||]));
  Alcotest.check_raises "no samples"
    (Invalid_argument "Walk.total_variation_from_uniform: no samples") (fun () ->
      ignore (Walk.total_variation_from_uniform [| 0; 0 |]))

(* --- Graph serialisation --- *)

let test_io_roundtrip_basic () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 2); (3, 4); (0, 1) ] in
  let g2 = Io.of_string (Io.to_string g) in
  Alcotest.(check int) "n" (Graph.n g) (Graph.n g2);
  Alcotest.(check int) "m" (Graph.m g) (Graph.m g2);
  for v = 0 to 4 do
    Alcotest.(check int) "degree" (Graph.degree g v) (Graph.degree g2 v)
  done

let test_io_empty_graph () =
  let g = Graph.of_edges ~n:0 [] in
  let g2 = Io.of_string (Io.to_string g) in
  Alcotest.(check int) "empty n" 0 (Graph.n g2)

let test_io_header_errors () =
  let expect_failure s =
    match Io.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected parse failure"
  in
  expect_failure "";
  expect_failure "not-a-graph 1 3 0\n";
  expect_failure "rumor-graph 99 3 0\n";
  expect_failure "rumor-graph 1 -1 0\n";
  expect_failure "rumor-graph 1 3\n"

let test_io_body_errors () =
  let expect_failure s =
    match Io.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected parse failure"
  in
  expect_failure "rumor-graph 1 3 1\n0 5\n";
  expect_failure "rumor-graph 1 3 1\n0\n";
  expect_failure "rumor-graph 1 3 1\nzero one\n";
  (* count mismatch *)
  expect_failure "rumor-graph 1 3 2\n0 1\n"

let test_io_file_roundtrip () =
  let rng = Rng.create 16 in
  let g = Regular.sample ~rng ~n:64 ~d:4 Regular.Pairing in
  let path = Filename.temp_file "rumor" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.to_file path g;
      let g2 = Io.of_file path in
      Alcotest.(check int) "same edges" (Graph.m g) (Graph.m g2);
      Alcotest.(check bool) "still 4-regular" true (Graph.is_regular g2 = Some 4))

(* --- Walk-based local join --- *)

let test_join_local_preserves_regularity () =
  let rng = Rng.create 17 in
  let g = Regular.sample_connected ~rng ~n:64 ~d:4 Regular.Pairing in
  let o = Overlay.of_graph ~capacity:80 g in
  let contact = Overlay.random_node o rng in
  let fresh = Churn.join_local o ~rng ~d:4 ~contact ~walk_length:8 in
  Alcotest.(check int) "newcomer degree" 4 (Overlay.degree o fresh);
  for v = 0 to 79 do
    if Overlay.is_alive o v then
      Alcotest.(check int) "still 4-regular" 4 (Overlay.degree o v)
  done;
  Alcotest.(check bool) "invariant" true (Overlay.invariant o)

let test_join_local_many () =
  let rng = Rng.create 18 in
  let g = Regular.sample_connected ~rng ~n:32 ~d:4 Regular.Pairing in
  let o = Overlay.of_graph ~capacity:128 g in
  for _ = 1 to 64 do
    let contact = Overlay.random_node o rng in
    ignore (Churn.join_local o ~rng ~d:4 ~contact ~walk_length:6)
  done;
  Alcotest.(check int) "96 nodes" 96 (Overlay.node_count o);
  Alcotest.(check bool) "invariant" true (Overlay.invariant o);
  for v = 0 to 127 do
    if Overlay.is_alive o v then
      Alcotest.(check int) "regular" 4 (Overlay.degree o v)
  done

let test_join_local_validation () =
  let rng = Rng.create 19 in
  let o = Overlay.of_graph ~capacity:16 (Classic.cycle 8) in
  Alcotest.check_raises "odd d"
    (Invalid_argument "Churn.join_local: d must be positive and even") (fun () ->
      ignore (Churn.join_local o ~rng ~d:3 ~contact:0 ~walk_length:4));
  Alcotest.check_raises "walk length"
    (Invalid_argument "Churn.join_local: walk_length < 1") (fun () ->
      ignore (Churn.join_local o ~rng ~d:2 ~contact:0 ~walk_length:0));
  Alcotest.check_raises "dead contact"
    (Invalid_argument "Churn.join_local: dead contact") (fun () ->
      ignore (Churn.join_local o ~rng ~d:2 ~contact:12 ~walk_length:4))

(* --- Trace export --- *)

let test_trace_csv () =
  let t = Trace.create () in
  Trace.add t
    { Trace.round = 1; informed = 2; newly = 1; push_tx = 4; pull_tx = 0;
      channels = 8 };
  Trace.add t
    { Trace.round = 2; informed = 5; newly = 3; push_tx = 8; pull_tx = 1;
      channels = 8 };
  let csv = Trace.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header"
    "round,informed,newly,push_tx,pull_tx,channels" (List.hd lines);
  Alcotest.(check string) "row 2" "2,5,3,8,1,8" (List.nth lines 2)

let test_trace_informed_series () =
  let t = Trace.create () in
  for r = 1 to 5 do
    Trace.add t
      { Trace.round = r; informed = r * r; newly = 0; push_tx = 0; pull_tx = 0;
        channels = 0 }
  done;
  Alcotest.(check (array (float 1e-9))) "series"
    [| 1.; 4.; 9.; 16.; 25. |]
    (Trace.informed_series t)

(* --- Sparkline --- *)

let utf8_glyph_count s =
  (* Count codepoints by skipping UTF-8 continuation bytes. *)
  let count = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr count) s;
  !count

let test_sparkline_shape () =
  let s = Sparkline.render [| 0.; 1.; 2.; 3. |] in
  Alcotest.(check int) "one glyph per value" 4 (utf8_glyph_count s);
  Alcotest.(check string) "empty input" "" (Sparkline.render [||])

let test_sparkline_monotone () =
  (* Increasing data renders with the lowest glyph first, highest last. *)
  let s = Sparkline.render [| 0.; 100. |] in
  Alcotest.(check bool) "starts low ends high" true
    (String.length s = 6
    && String.sub s 0 3 = "\xe2\x96\x81"
    && String.sub s 3 3 = "\xe2\x96\x88")

let test_sparkline_constant () =
  let s = Sparkline.render [| 5.; 5.; 5. |] in
  Alcotest.(check int) "renders" 3 (utf8_glyph_count s)

let test_sparkline_nan () =
  let s = Sparkline.render [| 1.; nan; 2. |] in
  Alcotest.(check bool) "nan becomes space" true (String.contains s ' ')

let test_sparkline_ints_and_scale () =
  let s = Sparkline.render_ints [| 1; 2; 3 |] in
  Alcotest.(check int) "ints render" 3 (utf8_glyph_count s);
  let ws = Sparkline.with_scale [| 1.; 3. |] in
  Alcotest.(check bool) "scale includes bounds" true
    (String.length ws > 0 && ws.[0] = '1')

(* --- End to end: trace a run, export, sparkline it --- *)

let test_trace_pipeline () =
  let rng = Rng.create 20 in
  let g = Regular.sample_connected ~rng ~n:512 ~d:8 Regular.Pairing in
  let params = Params.make ~n_estimate:512 ~d:8 () in
  let res =
    Run.once ~collect_trace:true ~rng ~graph:g
      ~protocol:(Algorithm.make params) ~source:0 ()
  in
  match res.Rumor_sim.Engine.trace with
  | None -> Alcotest.fail "no trace"
  | Some t ->
      let series = Trace.informed_series t in
      Alcotest.(check bool) "series nonempty" true (Array.length series > 0);
      Alcotest.(check bool) "csv nonempty" true (String.length (Trace.to_csv t) > 0);
      Alcotest.(check int) "sparkline matches series length"
        (Array.length series)
        (utf8_glyph_count (Sparkline.render series))

(* --- qcheck properties --- *)

let prop_io_roundtrip =
  QCheck.Test.make ~count:100 ~name:"graph serialisation round-trips"
    QCheck.(pair small_int (int_range 0 40))
    (fun (seed, extra) ->
      let rng = Rng.create seed in
      let n = 5 + (extra mod 20) in
      let edges =
        List.init extra (fun _ -> (Rng.int rng n, Rng.int rng n))
      in
      let g = Graph.of_edges ~n edges in
      let g2 = Io.of_string (Io.to_string g) in
      Graph.n g = Graph.n g2
      && Graph.m g = Graph.m g2
      && List.for_all
           (fun v -> Graph.degree g v = Graph.degree g2 v)
           (List.init n (fun i -> i)))

let prop_walk_stays_in_component =
  QCheck.Test.make ~count:50 ~name:"walks never leave the component"
    QCheck.(pair small_int (int_range 1 50))
    (fun (seed, length) ->
      let rng = Rng.create seed in
      let g = Graph.of_edges ~n:8 [ (0, 1); (1, 2); (2, 0); (3, 4) ] in
      let e = Walk.endpoint rng g ~start:0 ~length in
      e <= 2)

let prop_sparkline_glyph_count =
  QCheck.Test.make ~count:100 ~name:"sparkline emits one glyph per value"
    QCheck.(array_of_size Gen.(int_range 0 40) (float_bound_exclusive 100.))
    (fun data -> utf8_glyph_count (Sparkline.render data) = Array.length data)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_io_roundtrip; prop_walk_stays_in_component; prop_sparkline_glyph_count ]

let () =
  Alcotest.run "extensions-2"
    [
      ( "async",
        [
          Alcotest.test_case "push completes" `Quick test_async_push_completes;
          Alcotest.test_case "time logarithmic" `Quick test_async_time_logarithmic;
          Alcotest.test_case "algorithm on regular" `Slow
            test_async_algorithm_on_regular;
          Alcotest.test_case "activation rate" `Quick test_async_activation_rate;
          Alcotest.test_case "validation" `Quick test_async_validation;
          Alcotest.test_case "total loss" `Quick test_async_total_loss;
          Alcotest.test_case "deterministic" `Quick test_async_deterministic;
        ] );
      ( "walk",
        [
          Alcotest.test_case "step adjacent" `Quick test_walk_step_adjacent;
          Alcotest.test_case "step isolated" `Quick test_walk_step_isolated;
          Alcotest.test_case "endpoint zero" `Quick test_walk_endpoint_length_zero;
          Alcotest.test_case "path shape" `Quick test_walk_path_shape;
          Alcotest.test_case "bipartite parity" `Quick test_walk_parity_on_bipartite;
          Alcotest.test_case "mixes to uniform" `Slow test_walk_mixes_to_uniform;
          Alcotest.test_case "short walk biased" `Quick test_walk_short_walk_not_uniform;
          Alcotest.test_case "cover" `Quick test_walk_cover;
          Alcotest.test_case "tv validation" `Quick test_walk_tv_validation;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip_basic;
          Alcotest.test_case "empty graph" `Quick test_io_empty_graph;
          Alcotest.test_case "header errors" `Quick test_io_header_errors;
          Alcotest.test_case "body errors" `Quick test_io_body_errors;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
        ] );
      ( "join-local",
        [
          Alcotest.test_case "preserves regularity" `Quick
            test_join_local_preserves_regularity;
          Alcotest.test_case "many joins" `Quick test_join_local_many;
          Alcotest.test_case "validation" `Quick test_join_local_validation;
        ] );
      ( "trace-export",
        [
          Alcotest.test_case "csv" `Quick test_trace_csv;
          Alcotest.test_case "informed series" `Quick test_trace_informed_series;
          Alcotest.test_case "pipeline" `Quick test_trace_pipeline;
        ] );
      ( "sparkline",
        [
          Alcotest.test_case "shape" `Quick test_sparkline_shape;
          Alcotest.test_case "monotone" `Quick test_sparkline_monotone;
          Alcotest.test_case "constant" `Quick test_sparkline_constant;
          Alcotest.test_case "nan" `Quick test_sparkline_nan;
          Alcotest.test_case "ints and scale" `Quick test_sparkline_ints_and_scale;
        ] );
      ("properties", qcheck_cases);
    ]
