(* Statistical shape validation of the samplers in Rumor_rng.Dist:
   chi-square goodness-of-fit against the exact probability mass
   functions. These tests are stronger than the moment checks in
   test_rng.ml — a sampler with the right mean but the wrong shape
   fails here. Sample sizes and significance levels are chosen so the
   false-failure probability per test is ~1%, and the seeds are fixed,
   so the suite is deterministic. *)

module Rng = Rumor_rng.Rng
module Dist = Rumor_rng.Dist
module Chisq = Rumor_stats.Chisq

let log_fact =
  let memo = Hashtbl.create 64 in
  fun n ->
    match Hashtbl.find_opt memo n with
    | Some x -> x
    | None ->
        let rec go acc k = if k <= 1 then acc else go (acc +. log (float_of_int k)) (k - 1) in
        let x = go 0. n in
        Hashtbl.add memo n x;
        x

let binomial_pmf ~n ~p k =
  exp
    (log_fact n -. log_fact k -. log_fact (n - k)
    +. (float_of_int k *. log p)
    +. (float_of_int (n - k) *. log (1. -. p)))

let poisson_pmf ~lambda k =
  exp ((float_of_int k *. log lambda) -. lambda -. log_fact k)

let geometric_pmf ~p k = p *. ((1. -. p) ** float_of_int k)

(* Build observed counts for values 0..cells-2 plus a tail cell, and the
   matching expected counts from the pmf. *)
let fit ~seed ~samples ~cells ~pmf ~draw =
  let rng = Rng.create seed in
  let observed = Array.make cells 0 in
  for _ = 1 to samples do
    let x = draw rng in
    let cell = if x >= cells - 1 then cells - 1 else x in
    observed.(cell) <- observed.(cell) + 1
  done;
  let expected =
    Array.init cells (fun i ->
        if i < cells - 1 then float_of_int samples *. pmf i
        else begin
          let head = ref 0. in
          for j = 0 to cells - 2 do
            head := !head +. pmf j
          done;
          float_of_int samples *. (1. -. !head)
        end)
  in
  Chisq.goodness_of_fit ~observed ~expected

let check_fit name outcome =
  Alcotest.(check bool)
    (Printf.sprintf "%s matches its pmf (p=%.4f)" name outcome.Chisq.p_value)
    true
    (outcome.Chisq.p_value >= 0.01)

let test_geometric_shape () =
  check_fit "geometric(0.3)"
    (fit ~seed:1 ~samples:50_000 ~cells:12
       ~pmf:(geometric_pmf ~p:0.3)
       ~draw:(fun rng -> Dist.geometric rng ~p:0.3))

let test_binomial_shape () =
  check_fit "binomial(20, 0.35)"
    (fit ~seed:2 ~samples:50_000 ~cells:15
       ~pmf:(binomial_pmf ~n:20 ~p:0.35)
       ~draw:(fun rng -> Dist.binomial rng ~n:20 ~p:0.35))

let test_binomial_complement_shape () =
  (* p > 1/2 exercises the complement branch. *)
  check_fit "binomial(12, 0.8)"
    (fit ~seed:3 ~samples:50_000 ~cells:13
       ~pmf:(binomial_pmf ~n:12 ~p:0.8)
       ~draw:(fun rng -> Dist.binomial rng ~n:12 ~p:0.8))

let test_poisson_shape () =
  check_fit "poisson(3.7)"
    (fit ~seed:4 ~samples:50_000 ~cells:13
       ~pmf:(poisson_pmf ~lambda:3.7)
       ~draw:(fun rng -> Dist.poisson rng ~lambda:3.7))

let test_poisson_split_shape () =
  (* lambda > 30 goes through the recursive split. *)
  let lambda = 40. in
  let shift = 20 in
  check_fit "poisson(40) shifted window"
    (fit ~seed:5 ~samples:50_000 ~cells:41
       ~pmf:(fun i -> poisson_pmf ~lambda (i + shift))
       ~draw:(fun rng -> max 0 (Dist.poisson rng ~lambda - shift)))

let test_zipf_shape () =
  let n = 12 and s = 1.3 in
  let z = ref 0. in
  for k = 1 to n do
    z := !z +. (float_of_int k ** -.s)
  done;
  check_fit "zipf(12, 1.3)"
    (fit ~seed:6 ~samples:50_000 ~cells:n
       ~pmf:(fun i ->
         if i < n then (float_of_int (i + 1) ** -.s) /. !z else 0.)
       ~draw:(fun rng -> Dist.zipf rng ~n ~s))

let test_zipf_s1_shape () =
  let n = 10 in
  let h = ref 0. in
  for k = 1 to n do
    h := !h +. (1. /. float_of_int k)
  done;
  check_fit "zipf(10, 1)"
    (fit ~seed:7 ~samples:50_000 ~cells:n
       ~pmf:(fun i -> if i < n then 1. /. (float_of_int (i + 1) *. !h) else 0.)
       ~draw:(fun rng -> Dist.zipf rng ~n ~s:1.))

let test_exponential_shape () =
  (* Continuous: bin [0, 2.4) into 12 cells of width 0.2 plus a tail. *)
  let rate = 1.7 in
  let width = 0.2 in
  let cells = 13 in
  let rng = Rng.create 8 in
  let observed = Array.make cells 0 in
  let samples = 50_000 in
  for _ = 1 to samples do
    let x = Dist.exponential rng ~rate in
    let cell = int_of_float (x /. width) in
    let cell = if cell >= cells - 1 then cells - 1 else cell in
    observed.(cell) <- observed.(cell) + 1
  done;
  let cdf x = 1. -. exp (-.rate *. x) in
  let expected =
    Array.init cells (fun i ->
        let lo = float_of_int i *. width in
        let p =
          if i < cells - 1 then cdf (lo +. width) -. cdf lo else 1. -. cdf lo
        in
        float_of_int samples *. p)
  in
  check_fit "exponential(1.7)" (Chisq.goodness_of_fit ~observed ~expected)

let test_normal_shape () =
  (* Bin the standard normal into 10 equal-probability cells via the
     inverse CDF at precomputed points. *)
  let rng = Rng.create 9 in
  let samples = 50_000 in
  (* Deciles of N(0,1). *)
  let deciles =
    [| -1.2816; -0.8416; -0.5244; -0.2533; 0.; 0.2533; 0.5244; 0.8416; 1.2816 |]
  in
  let observed = Array.make 10 0 in
  for _ = 1 to samples do
    let x = Dist.normal rng ~mu:0. ~sigma:1. in
    let rec cell i = if i >= 9 || x < deciles.(i) then i else cell (i + 1) in
    let c = cell 0 in
    observed.(c) <- observed.(c) + 1
  done;
  let o = Chisq.uniform observed in
  Alcotest.(check bool)
    (Printf.sprintf "normal deciles uniform (p=%.4f)" o.Chisq.p_value)
    true o.Chisq.uniform_plausible

let test_rng_int_large_bound_shape () =
  (* The rejection sampler must stay unbiased for awkward bounds. *)
  let rng = Rng.create 10 in
  let bound = 769 (* prime, just above a power of two *) in
  let counts = Array.make 16 0 in
  for _ = 1 to 80_000 do
    let x = Rng.int rng bound in
    counts.(x * 16 / bound) <- counts.(x * 16 / bound) + 1
  done;
  (* The 16 buckets are not perfectly equal-sized for prime bounds; test
     against exact bucket masses. *)
  let sizes = Array.make 16 0 in
  for x = 0 to bound - 1 do
    sizes.(x * 16 / bound) <- sizes.(x * 16 / bound) + 1
  done;
  let expected =
    Array.map (fun s -> 80_000. *. float_of_int s /. float_of_int bound) sizes
  in
  let o = Chisq.goodness_of_fit ~observed:counts ~expected in
  Alcotest.(check bool)
    (Printf.sprintf "bounded ints unbiased (p=%.4f)" o.Chisq.p_value)
    true
    (o.Chisq.p_value >= 0.01)

let () =
  Alcotest.run "dist-shape"
    [
      ( "goodness-of-fit",
        [
          Alcotest.test_case "geometric" `Quick test_geometric_shape;
          Alcotest.test_case "binomial" `Quick test_binomial_shape;
          Alcotest.test_case "binomial p>1/2" `Quick test_binomial_complement_shape;
          Alcotest.test_case "poisson" `Quick test_poisson_shape;
          Alcotest.test_case "poisson split" `Quick test_poisson_split_shape;
          Alcotest.test_case "zipf" `Quick test_zipf_shape;
          Alcotest.test_case "zipf s=1" `Quick test_zipf_s1_shape;
          Alcotest.test_case "exponential" `Quick test_exponential_shape;
          Alcotest.test_case "normal" `Quick test_normal_shape;
          Alcotest.test_case "bounded ints" `Quick test_rng_int_large_bound_shape;
        ] );
    ]
