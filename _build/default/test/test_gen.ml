(* Tests for the rumor_gen library: configuration model, random regular
   graphs, G(n,p), classic families, products and preferential
   attachment. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Traversal = Rumor_graph.Traversal
module Config_model = Rumor_gen.Config_model
module Regular = Rumor_gen.Regular
module Gnp = Rumor_gen.Gnp
module Classic = Rumor_gen.Classic
module Product = Rumor_gen.Product
module Preferential = Rumor_gen.Preferential

let degrees g = Array.init (Graph.n g) (Graph.degree g)

(* --- Configuration model --- *)

let test_pair_degrees () =
  let rng = Rng.create 1 in
  let deg = [| 3; 1; 2; 4; 2 |] in
  let g = Config_model.pair ~rng ~deg in
  Alcotest.(check (array int)) "degrees preserved" deg (degrees g);
  Alcotest.(check bool) "invariant" true (Graph.invariant g)

let test_pair_odd_sum () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "odd sum"
    (Invalid_argument "Config_model.pair: odd degree sum") (fun () ->
      ignore (Config_model.pair ~rng ~deg:[| 1; 1; 1 |]))

let test_pair_negative () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "negative degree"
    (Invalid_argument "Config_model.pair: negative degree") (fun () ->
      ignore (Config_model.pair ~rng ~deg:[| 2; -1; 1 |]))

let test_pair_simple_is_simple () =
  let rng = Rng.create 2 in
  match Config_model.pair_simple ~rng ~deg:(Array.make 20 4) ~max_attempts:500 with
  | None -> Alcotest.fail "no simple pairing found in 500 attempts"
  | Some g ->
      Alcotest.(check bool) "simple" true (Graph.is_simple g);
      Alcotest.(check (option int)) "4-regular" (Some 4) (Graph.is_regular g)

let test_pair_simple_exhaust () =
  (* Degree sequence [2] forces a self-loop: simplicity is impossible. *)
  let rng = Rng.create 3 in
  Alcotest.(check bool) "impossible sequence gives None" true
    (Config_model.pair_simple ~rng ~deg:[| 2 |] ~max_attempts:20 = None)

let test_erase_simplifies () =
  let rng = Rng.create 4 in
  (* Many parallel edges expected: 2 nodes of degree 6. *)
  let g = Config_model.pair ~rng ~deg:[| 6; 6 |] in
  let e = Config_model.erase g in
  Alcotest.(check bool) "erased is simple" true (Graph.is_simple e);
  Alcotest.(check bool) "erased has fewer or equal edges" true
    (Graph.m e <= Graph.m g)

let test_erase_identity_on_simple () =
  let g = Classic.cycle 10 in
  let e = Config_model.erase g in
  Alcotest.(check int) "same m" (Graph.m g) (Graph.m e);
  Alcotest.(check (array int)) "same degrees" (degrees g) (degrees e)

(* --- Random regular --- *)

let test_feasible () =
  Alcotest.(check bool) "n=10 d=3 ok" true (Regular.feasible ~n:10 ~d:3);
  Alcotest.(check bool) "odd product infeasible" false (Regular.feasible ~n:5 ~d:3);
  Alcotest.(check bool) "d >= n infeasible" false (Regular.feasible ~n:4 ~d:4);
  Alcotest.(check bool) "d=0 feasible" true (Regular.feasible ~n:4 ~d:0)

let test_sample_pairing_regular () =
  let rng = Rng.create 5 in
  let g = Regular.sample ~rng ~n:100 ~d:6 Regular.Pairing in
  Alcotest.(check (option int)) "6-regular" (Some 6) (Graph.is_regular g);
  Alcotest.(check bool) "invariant" true (Graph.invariant g)

let test_sample_simple_variant () =
  let rng = Rng.create 6 in
  let g = Regular.sample ~rng ~n:60 ~d:4 (Regular.Simple { max_attempts = 1000 }) in
  Alcotest.(check bool) "simple" true (Graph.is_simple g);
  Alcotest.(check (option int)) "4-regular" (Some 4) (Graph.is_regular g)

let test_sample_erased_variant () =
  let rng = Rng.create 7 in
  let g = Regular.sample ~rng ~n:200 ~d:8 Regular.Erased in
  Alcotest.(check bool) "simple" true (Graph.is_simple g);
  Alcotest.(check bool) "max degree <= d" true (Graph.max_degree g <= 8);
  (* Erasure removes O(d^2) edges in expectation: degrees stay close. *)
  Alcotest.(check bool) "min degree >= d - 3" true (Graph.min_degree g >= 5)

let test_sample_infeasible () =
  let rng = Rng.create 8 in
  Alcotest.check_raises "infeasible"
    (Invalid_argument "Regular.sample: infeasible (n, d)") (fun () ->
      ignore (Regular.sample ~rng ~n:5 ~d:3 Regular.Pairing))

let test_sample_connected () =
  let rng = Rng.create 9 in
  for _ = 1 to 5 do
    let g = Regular.sample_connected ~rng ~n:64 ~d:3 Regular.Pairing in
    Alcotest.(check bool) "connected" true (Traversal.is_connected g)
  done

let test_sample_many_seeds_regular () =
  for seed = 1 to 20 do
    let rng = Rng.create seed in
    let g = Regular.sample ~rng ~n:50 ~d:4 Regular.Pairing in
    Alcotest.(check (option int)) "always 4-regular" (Some 4) (Graph.is_regular g)
  done

(* --- Gnp --- *)

let test_gnp_extremes () =
  let rng = Rng.create 10 in
  let empty = Gnp.sample ~rng ~n:20 ~p:0. in
  Alcotest.(check int) "p=0 no edges" 0 (Graph.m empty);
  let full = Gnp.sample ~rng ~n:20 ~p:1. in
  Alcotest.(check int) "p=1 complete" (20 * 19 / 2) (Graph.m full);
  Alcotest.(check bool) "complete simple" true (Graph.is_simple full)

let test_gnp_edge_count () =
  let rng = Rng.create 11 in
  let n = 300 and p = 0.05 in
  let g = Gnp.sample ~rng ~n ~p in
  let expect = p *. float_of_int (n * (n - 1) / 2) in
  let sd = sqrt (expect *. (1. -. p)) in
  let m = float_of_int (Graph.m g) in
  Alcotest.(check bool)
    (Printf.sprintf "m=%.0f within 5 sd of %.0f" m expect)
    true
    (abs_float (m -. expect) < 5. *. sd);
  Alcotest.(check bool) "simple" true (Graph.is_simple g)

let test_gnp_invalid () =
  let rng = Rng.create 12 in
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Gnp.sample: p out of range") (fun () ->
      ignore (Gnp.sample ~rng ~n:5 ~p:1.5))

let test_gnm_exact () =
  let rng = Rng.create 13 in
  let g = Gnp.sample_gnm ~rng ~n:40 ~m:100 in
  Alcotest.(check int) "exact edges" 100 (Graph.m g);
  Alcotest.(check bool) "simple" true (Graph.is_simple g)

let test_gnm_full () =
  let rng = Rng.create 14 in
  let g = Gnp.sample_gnm ~rng ~n:8 ~m:28 in
  Alcotest.(check int) "K8" 28 (Graph.m g)

let test_gnm_invalid () =
  let rng = Rng.create 15 in
  Alcotest.check_raises "too many edges"
    (Invalid_argument "Gnp.sample_gnm: m out of range") (fun () ->
      ignore (Gnp.sample_gnm ~rng ~n:4 ~m:7))

(* --- Classic families --- *)

let test_complete () =
  let g = Classic.complete 7 in
  Alcotest.(check int) "m" 21 (Graph.m g);
  Alcotest.(check (option int)) "regular" (Some 6) (Graph.is_regular g);
  Alcotest.(check bool) "simple" true (Graph.is_simple g)

let test_cycle () =
  let g = Classic.cycle 9 in
  Alcotest.(check int) "m" 9 (Graph.m g);
  Alcotest.(check (option int)) "2-regular" (Some 2) (Graph.is_regular g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.check_raises "too small" (Invalid_argument "Classic.cycle: n < 3")
    (fun () -> ignore (Classic.cycle 2))

let test_path_star () =
  let p = Classic.path 5 in
  Alcotest.(check int) "path m" 4 (Graph.m p);
  Alcotest.(check int) "path end degree" 1 (Graph.degree p 0);
  let s = Classic.star 6 in
  Alcotest.(check int) "star hub" 5 (Graph.degree s 0);
  Alcotest.(check int) "star leaf" 1 (Graph.degree s 3)

let test_hypercube () =
  let g = Classic.hypercube 4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check (option int)) "4-regular" (Some 4) (Graph.is_regular g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  (* Neighbours differ in exactly one bit. *)
  Graph.iter_edges g (fun u v ->
      let x = u lxor v in
      Alcotest.(check bool) "one-bit flip" true (x land (x - 1) = 0 && x <> 0));
  Alcotest.(check int) "diameter = dimension" 4 (Traversal.eccentricity g 0)

let test_torus () =
  let g = Classic.torus2d 4 5 in
  Alcotest.(check int) "n" 20 (Graph.n g);
  Alcotest.(check (option int)) "4-regular" (Some 4) (Graph.is_regular g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check bool) "simple" true (Graph.is_simple g)

let test_circulant () =
  let g = Classic.circulant 10 [ 1; 2 ] in
  Alcotest.(check (option int)) "4-regular" (Some 4) (Graph.is_regular g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  (* Antipodal offset halves the per-offset edge count. *)
  let h = Classic.circulant 10 [ 5 ] in
  Alcotest.(check int) "antipodal m" 5 (Graph.m h);
  Alcotest.(check (option int)) "1-regular" (Some 1) (Graph.is_regular h);
  Alcotest.check_raises "offset range"
    (Invalid_argument "Classic.circulant: offset range") (fun () ->
      ignore (Classic.circulant 10 [ 6 ]))

(* --- Products --- *)

let test_product_k2_k2 () =
  (* K2 x K2 is the 4-cycle. *)
  let g = Product.cartesian (Classic.complete 2) (Classic.complete 2) in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 4 (Graph.m g);
  Alcotest.(check (option int)) "2-regular" (Some 2) (Graph.is_regular g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check int) "girth-4: no triangles" 0
    (Rumor_graph.Metrics.triangles_at g 0)

let test_product_regularity () =
  let rng = Rng.create 16 in
  let g = Regular.sample_connected ~rng ~n:20 ~d:3 Regular.Pairing in
  let p = Product.with_clique g ~k:5 in
  Alcotest.(check int) "n multiplied" 100 (Graph.n p);
  Alcotest.(check (option int)) "(3+4)-regular" (Some 7) (Graph.is_regular p);
  Alcotest.(check bool) "connected" true (Traversal.is_connected p)

let test_product_edge_count () =
  let g = Classic.cycle 6 and h = Classic.path 3 in
  let p = Product.cartesian g h in
  (* m(g x h) = m(g)*n(h) + m(h)*n(g) *)
  Alcotest.(check int) "edge count" ((6 * 3) + (2 * 6)) (Graph.m p)

(* --- Preferential attachment --- *)

let test_preferential_structure () =
  let rng = Rng.create 17 in
  let g = Preferential.sample ~rng ~n:200 ~m:3 in
  Alcotest.(check int) "n" 200 (Graph.n g);
  Alcotest.(check int) "m total" ((3 * 4 / 2) + (196 * 3)) (Graph.m g);
  Alcotest.(check bool) "min degree >= m" true (Graph.min_degree g >= 3);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g)

let test_preferential_hubs () =
  let rng = Rng.create 18 in
  let g = Preferential.sample ~rng ~n:500 ~m:2 in
  (* Scale-free graphs grow hubs: max degree far above the minimum. *)
  Alcotest.(check bool) "has hubs" true (Graph.max_degree g > 15)

let test_preferential_invalid () =
  let rng = Rng.create 19 in
  Alcotest.check_raises "m < 1" (Invalid_argument "Preferential.sample: m < 1")
    (fun () -> ignore (Preferential.sample ~rng ~n:10 ~m:0));
  Alcotest.check_raises "n too small"
    (Invalid_argument "Preferential.sample: n < m + 1") (fun () ->
      ignore (Preferential.sample ~rng ~n:3 ~m:3))

(* --- qcheck properties --- *)

let prop_pairing_preserves_degrees =
  QCheck.Test.make ~count:100 ~name:"configuration model hits its degree sequence"
    QCheck.(pair small_int (list_of_size Gen.(int_range 2 20) (int_range 0 6)))
    (fun (seed, degs) ->
      let deg = Array.of_list degs in
      let total = Array.fold_left ( + ) 0 deg in
      (* Make the sum even by bumping the first entry if needed. *)
      if total mod 2 = 1 then deg.(0) <- deg.(0) + 1;
      let rng = Rng.create seed in
      let g = Config_model.pair ~rng ~deg in
      degrees g = deg)

let prop_regular_samples_are_regular =
  QCheck.Test.make ~count:60 ~name:"G(n,d) pairing sample is d-regular"
    QCheck.(triple small_int (int_range 4 60) (int_range 1 6))
    (fun (seed, n, d) ->
      QCheck.assume (Regular.feasible ~n ~d);
      let rng = Rng.create seed in
      Graph.is_regular (Regular.sample ~rng ~n ~d Regular.Pairing) = Some d)

let prop_gnm_edge_exact =
  QCheck.Test.make ~count:60 ~name:"G(n,m) has exactly m edges"
    QCheck.(triple small_int (int_range 3 30) (int_range 0 30))
    (fun (seed, n, m) ->
      QCheck.assume (m <= n * (n - 1) / 2);
      let rng = Rng.create seed in
      let g = Gnp.sample_gnm ~rng ~n ~m in
      Graph.m g = m && Graph.is_simple g)

let prop_product_degree_addition =
  QCheck.Test.make ~count:40 ~name:"cartesian product adds degrees"
    QCheck.(pair (int_range 3 8) (int_range 2 5))
    (fun (nc, k) ->
      let g = Classic.cycle nc and h = Classic.complete k in
      Graph.is_regular (Product.cartesian g h) = Some (2 + k - 1))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pairing_preserves_degrees;
      prop_regular_samples_are_regular;
      prop_gnm_edge_exact;
      prop_product_degree_addition;
    ]

let () =
  Alcotest.run "rumor_gen"
    [
      ( "config_model",
        [
          Alcotest.test_case "pair degrees" `Quick test_pair_degrees;
          Alcotest.test_case "odd sum" `Quick test_pair_odd_sum;
          Alcotest.test_case "negative degree" `Quick test_pair_negative;
          Alcotest.test_case "pair_simple" `Quick test_pair_simple_is_simple;
          Alcotest.test_case "pair_simple exhausts" `Quick test_pair_simple_exhaust;
          Alcotest.test_case "erase simplifies" `Quick test_erase_simplifies;
          Alcotest.test_case "erase on simple" `Quick test_erase_identity_on_simple;
        ] );
      ( "regular",
        [
          Alcotest.test_case "feasible" `Quick test_feasible;
          Alcotest.test_case "pairing regular" `Quick test_sample_pairing_regular;
          Alcotest.test_case "simple variant" `Quick test_sample_simple_variant;
          Alcotest.test_case "erased variant" `Quick test_sample_erased_variant;
          Alcotest.test_case "infeasible" `Quick test_sample_infeasible;
          Alcotest.test_case "connected" `Quick test_sample_connected;
          Alcotest.test_case "many seeds" `Quick test_sample_many_seeds_regular;
        ] );
      ( "gnp",
        [
          Alcotest.test_case "extremes" `Quick test_gnp_extremes;
          Alcotest.test_case "edge count" `Quick test_gnp_edge_count;
          Alcotest.test_case "invalid" `Quick test_gnp_invalid;
          Alcotest.test_case "gnm exact" `Quick test_gnm_exact;
          Alcotest.test_case "gnm full" `Quick test_gnm_full;
          Alcotest.test_case "gnm invalid" `Quick test_gnm_invalid;
        ] );
      ( "classic",
        [
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "path & star" `Quick test_path_star;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "circulant" `Quick test_circulant;
        ] );
      ( "product",
        [
          Alcotest.test_case "K2 x K2" `Quick test_product_k2_k2;
          Alcotest.test_case "regularity" `Quick test_product_regularity;
          Alcotest.test_case "edge count" `Quick test_product_edge_count;
        ] );
      ( "preferential",
        [
          Alcotest.test_case "structure" `Quick test_preferential_structure;
          Alcotest.test_case "hubs" `Quick test_preferential_hubs;
          Alcotest.test_case "invalid" `Quick test_preferential_invalid;
        ] );
      ("properties", qcheck_cases);
    ]
