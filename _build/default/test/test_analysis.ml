(* Tests for trace analytics and the shipped scenario files. *)

module Rng = Rumor_rng.Rng
module Regular = Rumor_gen.Regular
module Engine = Rumor_sim.Engine
module Trace = Rumor_sim.Trace
module Params = Rumor_core.Params
module Phase = Rumor_core.Phase
module Algorithm = Rumor_core.Algorithm
module Analysis = Rumor_core.Analysis
module Run = Rumor_core.Run
module Scenario = Rumor_cli.Scenario

let synthetic_trace rows =
  let t = Trace.create () in
  List.iteri
    (fun i (informed, push, pull) ->
      Trace.add t
        {
          Trace.round = i + 1;
          informed;
          newly = 0;
          push_tx = push;
          pull_tx = pull;
          channels = 0;
        })
    rows;
  t

(* --- rounds_to --- *)

let test_rounds_to () =
  let t = synthetic_trace [ (1, 0, 0); (5, 0, 0); (60, 0, 0); (100, 0, 0) ] in
  Alcotest.(check (option int)) "half" (Some 3)
    (Analysis.rounds_to t ~population:100 ~fraction:0.5);
  Alcotest.(check (option int)) "all" (Some 4)
    (Analysis.rounds_to t ~population:100 ~fraction:1.);
  Alcotest.(check (option int)) "immediately" (Some 1)
    (Analysis.rounds_to t ~population:100 ~fraction:0.01);
  Alcotest.(check (option int)) "never" None
    (Analysis.rounds_to t ~population:200 ~fraction:1.)

let test_rounds_to_validation () =
  let t = synthetic_trace [ (1, 0, 0) ] in
  Alcotest.check_raises "fraction"
    (Invalid_argument "Analysis.rounds_to: fraction out of range") (fun () ->
      ignore (Analysis.rounds_to t ~population:10 ~fraction:1.5));
  Alcotest.check_raises "population"
    (Invalid_argument "Analysis.rounds_to: population <= 0") (fun () ->
      ignore (Analysis.rounds_to t ~population:0 ~fraction:0.5))

(* --- growth and shrink factors --- *)

let test_growth_factors () =
  let t = synthetic_trace [ (2, 0, 0); (6, 0, 0); (12, 0, 0) ] in
  Alcotest.(check (list (float 1e-9))) "factors" [ 3.; 2. ]
    (Analysis.growth_factors t);
  Alcotest.(check (float 1e-9)) "peak" 3. (Analysis.peak_growth t)

let test_growth_empty () =
  let t = synthetic_trace [ (5, 0, 0) ] in
  Alcotest.(check (list (float 1e-9))) "singleton" [] (Analysis.growth_factors t);
  Alcotest.(check (float 1e-9)) "peak default" 1. (Analysis.peak_growth t)

let test_shrink_factors () =
  let t = synthetic_trace [ (90, 0, 0); (95, 0, 0); (100, 0, 0) ] in
  Alcotest.(check (list (float 1e-9))) "shrink" [ 0.5; 0. ]
    (Analysis.shrink_factors t ~population:100)

(* --- phase attribution --- *)

let test_phase_transmissions () =
  let params = Params.make ~alpha:1.0 ~n_estimate:65536 ~d:8 () in
  let s = Phase.schedule params Phase.Small in
  (* p1_end = 16, p2_end = 20, p3_end = 21, last = 36. *)
  let rows =
    List.init 22 (fun i ->
        let r = i + 1 in
        if r <= 16 then (0, 10, 0)
        else if r <= 20 then (0, 100, 0)
        else (0, 0, 1000))
  in
  let t = synthetic_trace rows in
  let per_phase = Analysis.phase_transmissions t s in
  let get phase = List.assoc phase per_phase in
  Alcotest.(check int) "phase 1" 160 (get Phase.Phase1);
  Alcotest.(check int) "phase 2" 400 (get Phase.Phase2);
  Alcotest.(check int) "phase 3" 1000 (get Phase.Phase3);
  Alcotest.(check int) "phase 4" 1000 (get Phase.Phase4);
  Alcotest.(check int) "finished" 0 (get Phase.Finished)

(* --- analytics on a real run reproduce the lemma shapes --- *)

let test_real_run_shapes () =
  let rng = Rng.create 1 in
  let n = 8192 in
  let g = Regular.sample_connected ~rng ~n ~d:8 Regular.Pairing in
  let params = Params.make ~n_estimate:n ~d:8 () in
  let res =
    Run.once ~collect_trace:true ~rng ~graph:g ~protocol:(Algorithm.make params)
      ~source:0 ()
  in
  match res.Engine.trace with
  | None -> Alcotest.fail "no trace"
  | Some t ->
      (* Lemma 1: early growth is at least a factor 2 somewhere. *)
      Alcotest.(check bool) "exponential growth observed" true
        (Analysis.peak_growth t >= 2.);
      (* Corollary 1: an eighth of the network knows within phase 1. *)
      let s = Algorithm.schedule_of params None in
      (match Analysis.rounds_to t ~population:n ~fraction:0.125 with
      | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "n/8 informed by round %d <= %d" r s.Phase.p1_end)
            true
            (r <= s.Phase.p1_end)
      | None -> Alcotest.fail "never reached n/8");
      (* Phase attribution covers all transmissions. *)
      let attributed =
        List.fold_left
          (fun acc (_, tx) -> acc + tx)
          0
          (Analysis.phase_transmissions t s)
      in
      Alcotest.(check int) "phases partition the cost"
        (Engine.transmissions res) attributed

(* --- shipped scenario files --- *)

let scenario_files =
  [
    "paper_default.txt";
    "lossy_network.txt";
    "push_baseline.txt";
    "memory_variant.txt";
    "k5_product.txt";
  ]

let scenario_dir =
  (* Tests run from the build sandbox; find the source scenarios through
     the dune workspace root. *)
  let rec search dir depth =
    if depth > 6 then None
    else begin
      let candidate = Filename.concat dir "scenarios" in
      if Sys.file_exists candidate && Sys.is_directory candidate then
        Some candidate
      else search (Filename.concat dir "..") (depth + 1)
    end
  in
  search (Sys.getcwd ()) 0

let test_shipped_scenarios_parse () =
  match scenario_dir with
  | None -> () (* sandboxed build layouts without the source tree *)
  | Some dir ->
      List.iter
        (fun file ->
          let path = Filename.concat dir file in
          match Scenario.parse_file path with
          | Ok s ->
              Alcotest.(check bool)
                (Printf.sprintf "%s has sane reps" file)
                true
                (s.Scenario.reps >= 1)
          | Error e -> Alcotest.failf "%s failed to parse: %s" file e)
        scenario_files

let test_shipped_scenario_runs () =
  (* Run one shipped scenario shrunk to test size. *)
  match scenario_dir with
  | None -> ()
  | Some dir -> begin
      match Scenario.parse_file (Filename.concat dir "lossy_network.txt") with
      | Error e -> Alcotest.failf "parse: %s" e
      | Ok s ->
          let report =
            Scenario.run { s with Scenario.n = 512; reps = 2 }
          in
          Alcotest.(check (float 1e-9)) "lossy scenario succeeds" 1.
            report.Scenario.success_rate
    end

let () =
  Alcotest.run "analysis"
    [
      ( "analysis",
        [
          Alcotest.test_case "rounds_to" `Quick test_rounds_to;
          Alcotest.test_case "rounds_to validation" `Quick test_rounds_to_validation;
          Alcotest.test_case "growth factors" `Quick test_growth_factors;
          Alcotest.test_case "growth empty" `Quick test_growth_empty;
          Alcotest.test_case "shrink factors" `Quick test_shrink_factors;
          Alcotest.test_case "phase transmissions" `Quick test_phase_transmissions;
          Alcotest.test_case "real run shapes" `Slow test_real_run_shapes;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "shipped files parse" `Quick test_shipped_scenarios_parse;
          Alcotest.test_case "shipped file runs" `Quick test_shipped_scenario_runs;
        ] );
    ]
