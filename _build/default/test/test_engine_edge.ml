(* Edge cases of the engine on degenerate and multigraph topologies:
   self-loops, parallel edges, tiny graphs, and accounting identities. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Classic = Rumor_gen.Classic
module Regular = Rumor_gen.Regular
module Engine = Rumor_sim.Engine
module Topology = Rumor_sim.Topology
module Trace = Rumor_sim.Trace
module Protocol = Rumor_sim.Protocol
module Params = Rumor_core.Params
module Algorithm = Rumor_core.Algorithm
module Baselines = Rumor_core.Baselines
module Run = Rumor_core.Run

let run_push ?(fanout = 1) ?(pull = false) ~graph ~horizon ~seed () =
  let rng = Rng.create seed in
  let p =
    if pull then Baselines.push_pull ~fanout ~horizon ()
    else Baselines.push ~fanout ~horizon ()
  in
  Engine.run ~collect_trace:true ~rng
    ~topology:(Topology.of_graph graph)
    ~protocol:p ~sources:[ 0 ] ()

(* --- degenerate graphs --- *)

let test_single_vertex () =
  let g = Graph.of_edges ~n:1 [] in
  let res = run_push ~graph:g ~horizon:5 ~seed:1 () in
  Alcotest.(check int) "informed" 1 res.Engine.informed;
  Alcotest.(check bool) "success" true (Engine.success res);
  Alcotest.(check int) "no transmissions" 0 (Engine.transmissions res);
  Alcotest.(check (option int)) "complete from the start... after round 1"
    (Some 1) res.Engine.completion_round

let test_self_loop_only () =
  (* A vertex whose only edge is a self-loop talks to itself. *)
  let g = Graph.of_edges ~n:2 [ (0, 0) ] in
  let res = run_push ~graph:g ~horizon:5 ~seed:2 () in
  Alcotest.(check int) "only source informed" 1 res.Engine.informed;
  (* Self-deliveries are redundant copies and still count as push
     transmissions. *)
  Alcotest.(check bool) "self pushes counted" true (res.Engine.push_tx > 0)

let test_two_vertices_parallel_edges () =
  let g = Graph.of_edges ~n:2 [ (0, 1); (0, 1); (0, 1) ] in
  let res = run_push ~graph:g ~horizon:5 ~seed:3 () in
  Alcotest.(check bool) "success" true (Engine.success res);
  Alcotest.(check (option int)) "one round" (Some 1) res.Engine.completion_round

let test_multigraph_fanout_counts_stubs () =
  (* Degree 4 made of two double edges: fanout 4 calls all stubs, so a
     round opens 4 channels per node even though there are only 2
     distinct neighbours. *)
  let g = Graph.of_edges ~n:3 [ (0, 1); (0, 1); (0, 2); (0, 2) ] in
  let rng = Rng.create 4 in
  let res =
    Engine.run ~rng
      ~topology:(Topology.of_graph g)
      ~protocol:(Baselines.push ~fanout:4 ~horizon:1 ())
      ~sources:[ 0 ] ()
  in
  (* Node 0 opens 4 channels; nodes 1 and 2 open 2 each. *)
  Alcotest.(check int) "channels" 8 res.Engine.channels;
  Alcotest.(check bool) "both informed" true (Engine.success res)

let test_pairing_model_graph_end_to_end () =
  (* The raw configuration model (self-loops, parallel edges) is the
     paper's own model; the full algorithm must run on it unmodified. *)
  for seed = 1 to 5 do
    let rng = Rng.create (100 + seed) in
    let g = Regular.sample ~rng ~n:512 ~d:6 Regular.Pairing in
    if Rumor_graph.Traversal.is_connected g then begin
      let params = Params.make ~alpha:2.0 ~n_estimate:512 ~d:6 () in
      let res = Run.once ~rng ~graph:g ~protocol:(Algorithm.make params) ~source:0 () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d completes on multigraph" seed)
        true (Engine.success res)
    end
  done

let test_star_pull_dynamics () =
  (* On a star, pull-only from the hub informs everyone in one round:
     every leaf calls the hub. *)
  let g = Classic.star 32 in
  let rng = Rng.create 5 in
  let res =
    Engine.run ~rng
      ~topology:(Topology.of_graph g)
      ~protocol:(Baselines.pull ~horizon:3 ())
      ~sources:[ 0 ] ()
  in
  Alcotest.(check (option int)) "one pull round" (Some 1) res.Engine.completion_round;
  (* Every one of the 31 leaves called the hub and got answered; the hub
     itself called a leaf that had nothing to answer with. *)
  Alcotest.(check bool)
    (Printf.sprintf "pull tx %d >= 31" res.Engine.pull_tx)
    true
    (res.Engine.pull_tx >= 31);
  Alcotest.(check int) "no pushes" 0 res.Engine.push_tx

let test_push_on_star_is_slow () =
  (* Push-only from a leaf must route through the hub: 2 rounds minimum,
     and informing all leaves needs ~n log n hub pushes — with fanout 1
     the hub informs one leaf per round. *)
  let g = Classic.star 16 in
  let rng = Rng.create 6 in
  let res =
    Engine.run ~stop_when_complete:true ~rng
      ~topology:(Topology.of_graph g)
      ~protocol:(Baselines.push ~horizon:500 ())
      ~sources:[ 1 ] ()
  in
  Alcotest.(check bool) "completes" true (Engine.success res);
  match res.Engine.completion_round with
  | Some r -> Alcotest.(check bool) "needs many rounds" true (r >= 15)
  | None -> Alcotest.fail "no completion"

(* --- accounting identities --- *)

let test_trace_totals_match_result () =
  let rng = Rng.create 7 in
  let g = Regular.sample_connected ~rng ~n:256 ~d:6 Regular.Pairing in
  let res =
    Engine.run ~collect_trace:true ~rng
      ~topology:(Topology.of_graph g)
      ~protocol:(Baselines.push_pull ~horizon:20 ())
      ~sources:[ 0 ] ()
  in
  match res.Engine.trace with
  | None -> Alcotest.fail "no trace"
  | Some t ->
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 (Trace.rows t) in
      Alcotest.(check int) "push" res.Engine.push_tx (sum (fun r -> r.Trace.push_tx));
      Alcotest.(check int) "pull" res.Engine.pull_tx (sum (fun r -> r.Trace.pull_tx));
      Alcotest.(check int) "channels" res.Engine.channels
        (sum (fun r -> r.Trace.channels));
      Alcotest.(check int) "rounds = rows" res.Engine.rounds (Trace.length t)

let test_channels_per_round_identity () =
  (* With no faults and fanout f <= min degree, channels per round equal
     n * f exactly. *)
  let g = Classic.complete 20 in
  let res = run_push ~fanout:3 ~graph:g ~horizon:6 ~seed:8 () in
  Alcotest.(check int) "channels = n*f*rounds" (20 * 3 * 6) res.Engine.channels

let test_push_tx_identity () =
  (* Every push by an informed node over an open channel is counted,
     whether or not the recipient was new: on round r the number of push
     transmissions equals fanout * informed-at-start-of-round. *)
  let g = Classic.complete 64 in
  let res = run_push ~fanout:2 ~graph:g ~horizon:10 ~seed:9 () in
  match res.Engine.trace with
  | None -> Alcotest.fail "no trace"
  | Some t ->
      let informed_before = ref 1 in
      List.iter
        (fun row ->
          Alcotest.(check int)
            (Printf.sprintf "round %d push accounting" row.Trace.round)
            (2 * !informed_before) row.Trace.push_tx;
          informed_before := row.Trace.informed)
        (Trace.rows t)

let test_completion_round_is_when_last_learned () =
  let rng = Rng.create 10 in
  let g = Regular.sample_connected ~rng ~n:128 ~d:4 Regular.Pairing in
  let res =
    Engine.run ~collect_trace:true ~rng
      ~topology:(Topology.of_graph g)
      ~protocol:(Baselines.push_pull ~horizon:200 ())
      ~sources:[ 0 ] ()
  in
  match (res.Engine.completion_round, res.Engine.trace) with
  | Some c, Some t ->
      let at r = (Trace.get t (r - 1)).Trace.informed in
      Alcotest.(check int) "full at completion" 128 (at c);
      if c > 1 then
        Alcotest.(check bool) "not full before" true (at (c - 1) < 128)
  | _ -> Alcotest.fail "missing completion or trace"

(* --- protocol horizon edge cases --- *)

let test_zero_round_impossible () =
  (* horizon >= 1 is implied: a 1-round run executes exactly one round. *)
  let res = run_push ~graph:(Classic.complete 4) ~horizon:1 ~seed:11 () in
  Alcotest.(check int) "one round" 1 res.Engine.rounds

let test_sources_all_nodes () =
  let g = Classic.complete 8 in
  let rng = Rng.create 12 in
  let res =
    Engine.run ~rng
      ~topology:(Topology.of_graph g)
      ~protocol:(Baselines.push ~horizon:3 ())
      ~sources:(List.init 8 (fun i -> i))
      ()
  in
  Alcotest.(check (option int)) "complete instantly" (Some 1)
    res.Engine.completion_round;
  Alcotest.(check int) "everyone informed" 8 res.Engine.informed

let test_duplicate_sources () =
  let g = Classic.complete 8 in
  let rng = Rng.create 13 in
  let res =
    Engine.run ~rng
      ~topology:(Topology.of_graph g)
      ~protocol:(Baselines.push ~horizon:5 ())
      ~sources:[ 0; 0; 0 ] ()
  in
  Alcotest.(check bool) "tolerated" true (res.Engine.informed >= 1)

(* --- Algorithm on extreme parameters --- *)

let test_algorithm_tiny_graph () =
  (* The smallest parameters the API accepts still terminate cleanly. *)
  let g = Classic.complete 4 in
  let rng = Rng.create 14 in
  let params = Params.make ~n_estimate:4 ~d:3 ~fanout:3 () in
  let res = Run.once ~rng ~graph:g ~protocol:(Algorithm.make params) ~source:0 () in
  Alcotest.(check bool) "completes" true (Engine.success res)

let test_algorithm_fanout_exceeds_degree () =
  (* fanout 4 on a 3-regular graph: selector caps at the degree. *)
  let rng = Rng.create 15 in
  let g = Regular.sample_connected ~rng ~n:128 ~d:3 Regular.Pairing in
  let params = Params.make ~alpha:2.0 ~n_estimate:128 ~d:3 () in
  let res = Run.once ~rng ~graph:g ~protocol:(Algorithm.make params) ~source:0 () in
  Alcotest.(check bool) "completes with capped fanout" true (Engine.success res)

let () =
  Alcotest.run "engine-edge"
    [
      ( "degenerate",
        [
          Alcotest.test_case "single vertex" `Quick test_single_vertex;
          Alcotest.test_case "self loop only" `Quick test_self_loop_only;
          Alcotest.test_case "parallel edges" `Quick test_two_vertices_parallel_edges;
          Alcotest.test_case "multigraph stubs" `Quick
            test_multigraph_fanout_counts_stubs;
          Alcotest.test_case "pairing model e2e" `Quick
            test_pairing_model_graph_end_to_end;
          Alcotest.test_case "star pull" `Quick test_star_pull_dynamics;
          Alcotest.test_case "star push slow" `Quick test_push_on_star_is_slow;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "trace totals" `Quick test_trace_totals_match_result;
          Alcotest.test_case "channels identity" `Quick
            test_channels_per_round_identity;
          Alcotest.test_case "push tx identity" `Quick test_push_tx_identity;
          Alcotest.test_case "completion round" `Quick
            test_completion_round_is_when_last_learned;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "one round" `Quick test_zero_round_impossible;
          Alcotest.test_case "all sources" `Quick test_sources_all_nodes;
          Alcotest.test_case "duplicate sources" `Quick test_duplicate_sources;
          Alcotest.test_case "tiny algorithm" `Quick test_algorithm_tiny_graph;
          Alcotest.test_case "fanout > degree" `Quick
            test_algorithm_fanout_exceeds_degree;
        ] );
    ]
