(* Tests for the rumor_graph library: CSR graphs, builder, traversal,
   metrics, spectral estimates and mixing checks. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Builder = Rumor_graph.Builder
module Traversal = Rumor_graph.Traversal
module Metrics = Rumor_graph.Metrics
module Spectral = Rumor_graph.Spectral
module Mixing = Rumor_graph.Mixing

let triangle () = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ]
let path4 () = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ]

(* --- Graph basics --- *)

let test_of_edges_basic () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  for v = 0 to 2 do
    Alcotest.(check int) "degree" 2 (Graph.degree g v)
  done

let test_of_edges_range_check () =
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "Graph.of_edges: endpoint range") (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 2) ]))

let test_create_validation () =
  Alcotest.check_raises "bad offsets"
    (Invalid_argument "Graph.create: offset endpoints") (fun () ->
      ignore (Graph.create ~n:2 ~off:[| 0; 1; 3 |] ~adj:[| 1; 0 |]));
  Alcotest.check_raises "decreasing offsets"
    (Invalid_argument "Graph.create: offsets decrease") (fun () ->
      ignore (Graph.create ~n:3 ~off:[| 0; 2; 1; 3 |] ~adj:[| 1; 2; 0 |]));
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "Graph.create: endpoint range") (fun () ->
      ignore (Graph.create ~n:2 ~off:[| 0; 1; 2 |] ~adj:[| 1; 5 |]))

let test_empty_graph () =
  let g = Graph.of_edges ~n:0 [] in
  Alcotest.(check int) "n" 0 (Graph.n g);
  Alcotest.(check int) "m" 0 (Graph.m g);
  Alcotest.(check int) "max degree" 0 (Graph.max_degree g);
  Alcotest.(check int) "min degree" 0 (Graph.min_degree g);
  Alcotest.(check bool) "simple" true (Graph.is_simple g)

let test_isolated_vertices () =
  let g = Graph.of_edges ~n:5 [ (0, 1) ] in
  Alcotest.(check int) "degree of isolated" 0 (Graph.degree g 3);
  Alcotest.(check int) "min degree" 0 (Graph.min_degree g);
  Alcotest.(check int) "max degree" 1 (Graph.max_degree g)

let test_neighbors () =
  let g = path4 () in
  let nb = Graph.neighbors g 1 in
  Array.sort compare nb;
  Alcotest.(check (array int)) "neighbors of 1" [| 0; 2 |] nb;
  Alcotest.(check int) "neighbor accessor" nb.(0)
    (min (Graph.neighbor g 1 0) (Graph.neighbor g 1 1))

let test_iter_fold_neighbors () =
  let g = triangle () in
  let seen = ref [] in
  Graph.iter_neighbors g 0 (fun w -> seen := w :: !seen);
  Alcotest.(check int) "iter visits degree-many" 2 (List.length !seen);
  let sum = Graph.fold_neighbors g 0 ( + ) 0 in
  Alcotest.(check int) "fold sums neighbors" 3 sum

let test_mem_edge () =
  let g = path4 () in
  Alcotest.(check bool) "0-1" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "1-0" true (Graph.mem_edge g 1 0);
  Alcotest.(check bool) "0-2 absent" false (Graph.mem_edge g 0 2);
  Alcotest.(check bool) "0-3 absent" false (Graph.mem_edge g 0 3)

let test_self_loop_convention () =
  let g = Graph.of_edges ~n:2 [ (0, 0); (0, 1) ] in
  Alcotest.(check int) "self loop adds 2 to degree" 3 (Graph.degree g 0);
  Alcotest.(check int) "m counts loop once" 2 (Graph.m g);
  Alcotest.(check int) "loop count" 1 (Graph.count_self_loops g);
  Alcotest.(check bool) "not simple" false (Graph.is_simple g)

let test_parallel_edges () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (0, 1); (1, 2) ] in
  Alcotest.(check int) "surplus copies" 1 (Graph.count_parallel_edges g);
  Alcotest.(check bool) "not simple" false (Graph.is_simple g);
  Alcotest.(check int) "degree counts copies" 3 (Graph.degree g 1)

let test_is_regular () =
  Alcotest.(check (option int)) "triangle is 2-regular" (Some 2)
    (Graph.is_regular (triangle ()));
  Alcotest.(check (option int)) "path is irregular" None
    (Graph.is_regular (path4 ()))

let test_to_edges_roundtrip () =
  let edges = [ (0, 1); (1, 2); (2, 3); (0, 3); (1, 1) ] in
  let g = Graph.of_edges ~n:4 edges in
  let g2 = Graph.of_edges ~n:4 (Graph.to_edges g) in
  Alcotest.(check int) "same m" (Graph.m g) (Graph.m g2);
  for v = 0 to 3 do
    Alcotest.(check int) "same degree" (Graph.degree g v) (Graph.degree g2 v)
  done

let test_iter_edges_count () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 3) ] in
  let count = ref 0 in
  Graph.iter_edges g (fun _ _ -> incr count);
  Alcotest.(check int) "edge visits" 4 !count

let test_invariant_holds () =
  Alcotest.(check bool) "triangle" true (Graph.invariant (triangle ()));
  Alcotest.(check bool) "path" true (Graph.invariant (path4 ()));
  let loops = Graph.of_edges ~n:2 [ (0, 0); (1, 1); (0, 1) ] in
  Alcotest.(check bool) "loops" true (Graph.invariant loops)

(* --- Builder --- *)

let test_builder_basic () =
  let b = Builder.create ~capacity:1 ~n:3 () in
  Alcotest.(check int) "n" 3 (Builder.n b);
  Builder.add_edge b 0 1;
  Builder.add_edge b 1 2;
  Alcotest.(check int) "edge count" 2 (Builder.edge_count b);
  let g = Builder.build b in
  Alcotest.(check int) "built m" 2 (Graph.m g);
  Alcotest.(check bool) "invariant" true (Graph.invariant g)

let test_builder_growth () =
  let b = Builder.create ~capacity:1 ~n:100 () in
  for i = 0 to 98 do
    Builder.add_edge b i (i + 1)
  done;
  Alcotest.(check int) "grew to 99 edges" 99 (Builder.edge_count b);
  let g = Builder.build b in
  Alcotest.(check int) "m" 99 (Graph.m g)

let test_builder_snapshot_semantics () =
  let b = Builder.create ~n:3 () in
  Builder.add_edge b 0 1;
  let g1 = Builder.build b in
  Builder.add_edge b 1 2;
  let g2 = Builder.build b in
  Alcotest.(check int) "snapshot unchanged" 1 (Graph.m g1);
  Alcotest.(check int) "new snapshot grows" 2 (Graph.m g2)

let test_builder_validation () =
  let b = Builder.create ~n:2 () in
  Alcotest.check_raises "range" (Invalid_argument "Builder.add_edge: endpoint range")
    (fun () -> Builder.add_edge b 0 2)

(* --- Traversal --- *)

let test_bfs_path () =
  let g = path4 () in
  Alcotest.(check (array int)) "distances from 0" [| 0; 1; 2; 3 |] (Traversal.bfs g 0)

let test_bfs_unreachable () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let d = Traversal.bfs g 0 in
  Alcotest.(check int) "reachable" 1 d.(1);
  Alcotest.(check int) "unreachable" (-1) d.(2)

let test_bfs_multi () =
  let g = Rumor_gen.Classic.cycle 10 in
  let d = Traversal.bfs_multi g [ 0; 5 ] in
  Alcotest.(check int) "nearest source 0" 0 d.(0);
  Alcotest.(check int) "nearest source 5" 0 d.(5);
  Alcotest.(check int) "between" 2 d.(3)

let test_components () =
  let g = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  let labels, k = Traversal.components g in
  Alcotest.(check int) "3 components" 3 k;
  Alcotest.(check bool) "0,1,2 together" true
    (labels.(0) = labels.(1) && labels.(1) = labels.(2));
  Alcotest.(check bool) "3,4 together" true (labels.(3) = labels.(4));
  Alcotest.(check bool) "5 alone" true
    (labels.(5) <> labels.(0) && labels.(5) <> labels.(3))

let test_is_connected () =
  Alcotest.(check bool) "triangle connected" true (Traversal.is_connected (triangle ()));
  Alcotest.(check bool) "two parts" false
    (Traversal.is_connected (Graph.of_edges ~n:4 [ (0, 1); (2, 3) ]))

let test_largest_component () =
  let g = Graph.of_edges ~n:7 [ (0, 1); (1, 2); (2, 0); (3, 4) ] in
  Alcotest.(check int) "largest" 3 (Traversal.largest_component g)

let test_eccentricity () =
  Alcotest.(check int) "path end" 3 (Traversal.eccentricity (path4 ()) 0);
  Alcotest.(check int) "path middle" 2 (Traversal.eccentricity (path4 ()) 1)

let test_diameter_cycle () =
  let g = Rumor_gen.Classic.cycle 12 in
  let rng = Rng.create 1 in
  Alcotest.(check int) "cycle diameter" 6
    (Traversal.diameter_lower_bound g ~rng ~samples:4)

let test_average_distance_complete () =
  let g = Rumor_gen.Classic.complete 20 in
  let rng = Rng.create 2 in
  let avg = Traversal.average_distance g ~rng ~samples:5 in
  Alcotest.(check (float 1e-9)) "complete graph distance 1" 1. avg

(* --- Metrics --- *)

let test_degree_stats () =
  let s = Metrics.degree_stats (Rumor_gen.Classic.complete 5) in
  Alcotest.(check int) "min" 4 s.Metrics.min;
  Alcotest.(check int) "max" 4 s.Metrics.max;
  Alcotest.(check (float 1e-9)) "mean" 4. s.Metrics.mean;
  Alcotest.(check (float 1e-9)) "variance" 0. s.Metrics.variance

let test_degree_histogram () =
  let g = Rumor_gen.Classic.star 5 in
  let h = Metrics.degree_histogram g in
  Alcotest.(check int) "hub bin" 1 h.(4);
  Alcotest.(check int) "leaf bin" 4 h.(1)

let test_triangles () =
  let k4 = Rumor_gen.Classic.complete 4 in
  Alcotest.(check int) "K4 triangles at a vertex" 3 (Metrics.triangles_at k4 0);
  Alcotest.(check int) "cycle has none" 0
    (Metrics.triangles_at (Rumor_gen.Classic.cycle 5) 0)

let test_clustering () =
  Alcotest.(check (float 1e-9)) "complete clustering" 1.
    (Metrics.local_clustering (Rumor_gen.Classic.complete 6) 0);
  Alcotest.(check (float 1e-9)) "cycle clustering" 0.
    (Metrics.local_clustering (Rumor_gen.Classic.cycle 6) 0);
  Alcotest.(check (float 1e-9)) "leaf clustering" 0.
    (Metrics.local_clustering (Rumor_gen.Classic.star 4) 1)

let test_global_clustering () =
  let rng = Rng.create 3 in
  let c =
    Metrics.global_clustering (Rumor_gen.Classic.complete 8) ~rng ~samples:20
  in
  Alcotest.(check (float 1e-9)) "complete global" 1. c

let test_edge_boundary () =
  let g = Rumor_gen.Classic.cycle 8 in
  let inside = Array.init 8 (fun i -> i < 4) in
  Alcotest.(check int) "cycle cut" 2 (Metrics.edge_boundary g inside);
  Alcotest.(check int) "internal edges" 3 (Metrics.internal_edges g inside)

let test_conductance () =
  let g = Rumor_gen.Classic.cycle 8 in
  let inside = Array.init 8 (fun i -> i < 4) in
  Alcotest.(check (float 1e-9)) "cycle conductance" (2. /. 8.)
    (Metrics.conductance g inside)

(* --- Spectral --- *)

let test_lambda2_complete () =
  (* K_n adjacency spectrum: n-1 once, -1 with multiplicity n-1. *)
  let rng = Rng.create 4 in
  let l2 = Spectral.lambda2 (Rumor_gen.Classic.complete 16) ~rng ~iters:80 in
  Alcotest.(check bool) "lambda2(K16) near 1" true (abs_float (l2 -. 1.) < 0.05)

let test_lambda2_cycle () =
  (* Even cycles are bipartite: the adjacency spectrum contains -2, so
     the largest non-principal absolute eigenvalue is exactly 2. *)
  let rng = Rng.create 5 in
  let l2 = Spectral.lambda2 (Rumor_gen.Classic.cycle 20) ~rng ~iters:400 in
  Alcotest.(check bool) "lambda2(C20) = 2" true (abs_float (l2 -. 2.) < 0.05);
  (* Odd cycles are not: the extreme is 2cos(pi (n-1)/n) in absolute
     value, about 1.978 for n = 21. *)
  let l2_odd = Spectral.lambda2 (Rumor_gen.Classic.cycle 21) ~rng ~iters:600 in
  let expected = 2. *. cos (Float.pi *. 20. /. 21.) |> abs_float in
  Alcotest.(check bool)
    (Printf.sprintf "lambda2(C21) = %.3f vs %.3f" l2_odd expected)
    true
    (abs_float (l2_odd -. expected) < 0.05)

let test_lambda2_random_regular () =
  let rng = Rng.create 6 in
  let g =
    Rumor_gen.Regular.sample_connected ~rng ~n:512 ~d:6 Rumor_gen.Regular.Pairing
  in
  let l2 = Spectral.lambda2 g ~rng ~iters:120 in
  let bound = Spectral.ramanujan_bound 6 in
  Alcotest.(check bool)
    (Printf.sprintf "friedman bound: %.3f vs %.3f (+25%%)" l2 bound)
    true
    (l2 < bound *. 1.25);
  Alcotest.(check bool) "gap positive" true
    (Spectral.spectral_gap g ~rng ~iters:120 > 0.5)

let test_ramanujan_bound () =
  Alcotest.(check (float 1e-9)) "d=5" 4. (Spectral.ramanujan_bound 5);
  Alcotest.(check (float 1e-9)) "d=1" 0. (Spectral.ramanujan_bound 1)

let test_mixing_time_reasonable () =
  let rng = Rng.create 7 in
  let g =
    Rumor_gen.Regular.sample_connected ~rng ~n:256 ~d:8 Rumor_gen.Regular.Pairing
  in
  let mt = Spectral.mixing_time_estimate g ~rng ~eps:0.01 in
  Alcotest.(check bool) "finite and small" true (mt > 0. && mt < 100.)

(* --- Mixing --- *)

let test_mixing_sample_validation () =
  let g = triangle () in
  let rng = Rng.create 8 in
  Alcotest.check_raises "size too big" (Invalid_argument "Mixing.sample_set: size")
    (fun () -> ignore (Mixing.sample_set g ~rng ~size:3))

let test_mixing_discrepancy_regular () =
  let rng = Rng.create 9 in
  let g =
    Rumor_gen.Regular.sample_connected ~rng ~n:512 ~d:8 Rumor_gen.Regular.Pairing
  in
  let disc =
    Mixing.max_discrepancy g ~rng ~sizes:[ 32; 128; 256 ] ~per_size:10
  in
  (* Random sets have discrepancy well below lambda <= 2 sqrt(d-1). *)
  Alcotest.(check bool)
    (Printf.sprintf "discrepancy %.3f below eigenvalue bound" disc)
    true
    (disc < Spectral.ramanujan_bound 8 *. 1.5)

let test_mixing_sample_fields () =
  let rng = Rng.create 10 in
  let g = Rumor_gen.Classic.complete 10 in
  let s = Mixing.sample_set g ~rng ~size:4 in
  Alcotest.(check int) "set size" 4 s.Mixing.set_size;
  (* In K10 every 4-set has boundary exactly 4 * 6 = 24. *)
  Alcotest.(check int) "K10 boundary" 24 s.Mixing.boundary;
  Alcotest.(check bool) "expected close" true
    (abs_float (s.Mixing.expected -. (9. *. 4. *. 6. /. 10.)) < 1e-9)

(* --- qcheck properties --- *)

let edge_list_gen =
  QCheck.Gen.(
    sized (fun size ->
        let n = max 2 (min 30 (size + 2)) in
        let edge = map2 (fun a b -> (a mod n, b mod n)) (int_bound 1000) (int_bound 1000) in
        map (fun es -> (n, es)) (list_size (int_bound 60) edge)))

let arbitrary_edge_list =
  QCheck.make ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) es)))
    edge_list_gen

let prop_invariant =
  QCheck.Test.make ~count:200 ~name:"of_edges result satisfies invariant"
    arbitrary_edge_list
    (fun (n, es) -> Graph.invariant (Graph.of_edges ~n es))

let prop_degree_sum =
  QCheck.Test.make ~count:200 ~name:"degree sum = 2 * adj entries / 1"
    arbitrary_edge_list
    (fun (n, es) ->
      let g = Graph.of_edges ~n es in
      let sum = ref 0 in
      for v = 0 to n - 1 do
        sum := !sum + Graph.degree g v
      done;
      !sum = 2 * List.length es)

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"to_edges/of_edges preserves degrees"
    arbitrary_edge_list
    (fun (n, es) ->
      let g = Graph.of_edges ~n es in
      let g2 = Graph.of_edges ~n (Graph.to_edges g) in
      let ok = ref true in
      for v = 0 to n - 1 do
        if Graph.degree g v <> Graph.degree g2 v then ok := false
      done;
      !ok)

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~count:100 ~name:"bfs distances obey edge relaxation"
    arbitrary_edge_list
    (fun (n, es) ->
      let g = Graph.of_edges ~n es in
      let d = Traversal.bfs g 0 in
      let ok = ref true in
      Graph.iter_edges g (fun u v ->
          if d.(u) >= 0 && d.(v) >= 0 && abs (d.(u) - d.(v)) > 1 then ok := false;
          if (d.(u) >= 0) <> (d.(v) >= 0) then ok := false);
      !ok)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_invariant; prop_degree_sum; prop_roundtrip; prop_bfs_triangle_inequality ]

let () =
  Alcotest.run "rumor_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "of_edges basic" `Quick test_of_edges_basic;
          Alcotest.test_case "of_edges range" `Quick test_of_edges_range_check;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "isolated vertices" `Quick test_isolated_vertices;
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "iter/fold neighbors" `Quick test_iter_fold_neighbors;
          Alcotest.test_case "mem_edge" `Quick test_mem_edge;
          Alcotest.test_case "self loops" `Quick test_self_loop_convention;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
          Alcotest.test_case "is_regular" `Quick test_is_regular;
          Alcotest.test_case "to_edges roundtrip" `Quick test_to_edges_roundtrip;
          Alcotest.test_case "iter_edges count" `Quick test_iter_edges_count;
          Alcotest.test_case "invariant" `Quick test_invariant_holds;
        ] );
      ( "builder",
        [
          Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "growth" `Quick test_builder_growth;
          Alcotest.test_case "snapshot" `Quick test_builder_snapshot_semantics;
          Alcotest.test_case "validation" `Quick test_builder_validation;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs path" `Quick test_bfs_path;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "bfs multi" `Quick test_bfs_multi;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "is_connected" `Quick test_is_connected;
          Alcotest.test_case "largest component" `Quick test_largest_component;
          Alcotest.test_case "eccentricity" `Quick test_eccentricity;
          Alcotest.test_case "diameter cycle" `Quick test_diameter_cycle;
          Alcotest.test_case "avg distance complete" `Quick
            test_average_distance_complete;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "degree stats" `Quick test_degree_stats;
          Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
          Alcotest.test_case "triangles" `Quick test_triangles;
          Alcotest.test_case "clustering" `Quick test_clustering;
          Alcotest.test_case "global clustering" `Quick test_global_clustering;
          Alcotest.test_case "edge boundary" `Quick test_edge_boundary;
          Alcotest.test_case "conductance" `Quick test_conductance;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "lambda2 complete" `Quick test_lambda2_complete;
          Alcotest.test_case "lambda2 cycle" `Quick test_lambda2_cycle;
          Alcotest.test_case "lambda2 random regular" `Quick
            test_lambda2_random_regular;
          Alcotest.test_case "ramanujan bound" `Quick test_ramanujan_bound;
          Alcotest.test_case "mixing time" `Quick test_mixing_time_reasonable;
        ] );
      ( "mixing",
        [
          Alcotest.test_case "validation" `Quick test_mixing_sample_validation;
          Alcotest.test_case "regular discrepancy" `Quick
            test_mixing_discrepancy_regular;
          Alcotest.test_case "sample fields" `Quick test_mixing_sample_fields;
        ] );
      ("properties", qcheck_cases);
    ]
