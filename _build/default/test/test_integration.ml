(* Cross-library integration tests: miniature versions of the paper's
   claims (the full-scale versions live in bench/main.ml). *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Regular = Rumor_gen.Regular
module Product = Rumor_gen.Product
module Engine = Rumor_sim.Engine
module Trace = Rumor_sim.Trace
module Params = Rumor_core.Params
module Phase = Rumor_core.Phase
module Algorithm = Rumor_core.Algorithm
module Baselines = Rumor_core.Baselines
module Run = Rumor_core.Run
module Experiment = Rumor_stats.Experiment
module Summary = Rumor_stats.Summary

let mean_tx_per_node ~protocol ~stop ~n ~d ~reps ~seed =
  Experiment.mean_of ~seed ~reps (fun rng ->
      let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
      let res =
        Run.once ~stop_when_complete:stop ~rng ~graph:g ~protocol:(protocol n)
          ~source:(Run.random_source rng g) ()
      in
      float_of_int (Engine.transmissions res) /. float_of_int n)

(* Theorem 2 shape: per-node cost of the 4-choice algorithm is (nearly)
   flat in n, while push's per-node cost grows by ~1 per doubling. *)
let test_message_scaling_shape () =
  let d = 8 and reps = 3 in
  let alg n = Algorithm.make (Params.make ~n_estimate:n ~d ()) in
  let push _n = Baselines.push ~horizon:10_000 () in
  let alg_small = mean_tx_per_node ~protocol:alg ~stop:false ~n:1024 ~d ~reps ~seed:1 in
  let alg_large = mean_tx_per_node ~protocol:alg ~stop:false ~n:8192 ~d ~reps ~seed:2 in
  let push_small = mean_tx_per_node ~protocol:push ~stop:true ~n:1024 ~d ~reps ~seed:3 in
  let push_large = mean_tx_per_node ~protocol:push ~stop:true ~n:8192 ~d ~reps ~seed:4 in
  (* 8x more nodes: push per-node cost must grow by >= 1.5 transmissions;
     the algorithm's must grow by < 1.5 (it grows like log log n). *)
  Alcotest.(check bool)
    (Printf.sprintf "push grows (%.2f -> %.2f)" push_small push_large)
    true
    (push_large -. push_small >= 1.5);
  Alcotest.(check bool)
    (Printf.sprintf "algorithm nearly flat (%.2f -> %.2f)" alg_small alg_large)
    true
    (alg_large -. alg_small < 1.5)

(* Theorem 2/3 shape: rounds grow logarithmically — the run length at
   8x the size gains at most a constant factor of the log. *)
let test_round_scaling_logarithmic () =
  let d = 8 in
  let rounds ~seed n =
    Experiment.mean_of ~seed ~reps:3 (fun rng ->
        let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
        let res =
          Run.once ~rng ~graph:g
            ~protocol:(Algorithm.make (Params.make ~n_estimate:n ~d ()))
            ~source:(Run.random_source rng g) ()
        in
        match res.Engine.completion_round with
        | Some r -> float_of_int r
        | None -> float_of_int res.Engine.rounds)
  in
  let r1 = rounds ~seed:5 1024 and r8 = rounds ~seed:6 8192 in
  Alcotest.(check bool)
    (Printf.sprintf "rounds sublinear (%.1f -> %.1f)" r1 r8)
    true
    (r8 < 2. *. r1)

(* Lemma 1/3 shape: the informed set grows until phase 2 ends with only
   a small fraction uninformed, and pull finishes the job. *)
let test_phase_dynamics () =
  let n = 4096 and d = 8 in
  let rng = Rng.create 7 in
  let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  let params = Params.make ~n_estimate:n ~d () in
  let s = Algorithm.schedule_of params None in
  let res =
    Run.once ~collect_trace:true ~rng ~graph:g ~protocol:(Algorithm.make params)
      ~source:0 ()
  in
  Alcotest.(check bool) "complete" true (Engine.success res);
  match res.Engine.trace with
  | None -> Alcotest.fail "trace missing"
  | Some t ->
      let informed_at r =
        if r <= Trace.length t then (Trace.get t (r - 1)).Trace.informed
        else res.Engine.informed
      in
      let end1 = informed_at s.Phase.p1_end in
      let end2 = informed_at s.Phase.p2_end in
      Alcotest.(check bool)
        (Printf.sprintf "constant fraction after phase 1 (%d)" end1)
        true
        (end1 >= n / 8);
      Alcotest.(check bool)
        (Printf.sprintf "phase 2 leaves few uninformed (%d)" (n - end2))
        true
        (n - end2 <= n / 50)

(* The conclusion's counterexample graph still gets fully informed (the
   claim is about message efficiency, not correctness). *)
let test_k5_product_completes () =
  let rng = Rng.create 8 in
  let base = Regular.sample_connected ~rng ~n:256 ~d:4 Regular.Pairing in
  let g = Product.with_clique base ~k:5 in
  Alcotest.(check (option int)) "8-regular product" (Some 8) (Graph.is_regular g);
  let params = Params.make ~alpha:2.0 ~n_estimate:(Graph.n g) ~d:8 () in
  let res =
    Run.once ~rng ~graph:g ~protocol:(Algorithm.make params) ~source:0 ()
  in
  Alcotest.(check bool) "product graph completes" true (Engine.success res)

(* Fanout ablation (conclusion): more choices never hurt completion. *)
let test_fanout_monotone_success () =
  let n = 1024 and d = 8 in
  List.iter
    (fun fanout ->
      let rate =
        Experiment.success_rate ~seed:9 ~reps:3 (fun rng ->
            let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
            let params = Params.make ~alpha:2.0 ~fanout ~n_estimate:n ~d () in
            Engine.success
              (Run.once ~rng ~graph:g ~protocol:(Algorithm.make params)
                 ~source:(Run.random_source rng g) ()))
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "fanout %d always succeeds" fanout)
        1. rate)
    [ 2; 3; 4 ]

(* Full-pipeline determinism: graph generation + broadcast + statistics
   under a fixed seed is bit-for-bit reproducible. *)
let test_pipeline_deterministic () =
  let go () =
    let rng = Rng.create 10 in
    let g = Regular.sample_connected ~rng ~n:512 ~d:6 Regular.Pairing in
    let params = Params.make ~n_estimate:512 ~d:6 () in
    let res = Run.once ~rng ~graph:g ~protocol:(Algorithm.make params) ~source:0 () in
    (Engine.transmissions res, res.Engine.rounds, res.Engine.completion_round)
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "identical replay" true (a = b)

(* Baseline cross-check (related work [20]): push on G(n,d) completes in
   about C_d ln n rounds; check the measured constant is in the right
   ballpark for d = 8 (C_8 ~ 1.98... in ln units). *)
let test_push_constant_ballpark () =
  let n = 8192 and d = 8 in
  let rounds =
    Experiment.summarize ~seed:11 ~reps:5 (fun rng ->
        let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
        let res =
          Run.once ~stop_when_complete:true ~rng ~graph:g
            ~protocol:(Baselines.push ~horizon:10_000 ())
            ~source:(Run.random_source rng g) ()
        in
        float_of_int res.Engine.rounds)
  in
  let dd = float_of_int d in
  let c_d =
    (1. /. log (2. *. (1. -. (1. /. dd)))) -. (1. /. (dd *. log (1. -. (1. /. dd))))
  in
  let predicted = c_d *. log (float_of_int n) in
  let ratio = rounds.Summary.mean /. predicted in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.1f vs C_d ln n = %.1f (ratio %.2f)"
       rounds.Summary.mean predicted ratio)
    true
    (ratio > 0.7 && ratio < 1.4)

let () =
  Alcotest.run "integration"
    [
      ( "paper-shapes",
        [
          Alcotest.test_case "message scaling" `Slow test_message_scaling_shape;
          Alcotest.test_case "round scaling" `Slow test_round_scaling_logarithmic;
          Alcotest.test_case "phase dynamics" `Slow test_phase_dynamics;
          Alcotest.test_case "K5 product" `Slow test_k5_product_completes;
          Alcotest.test_case "fanout success" `Slow test_fanout_monotone_success;
          Alcotest.test_case "determinism" `Quick test_pipeline_deterministic;
          Alcotest.test_case "push constant" `Slow test_push_constant_ballpark;
        ] );
    ]
