(* Command-line interface to the rumor library.

   Subcommands:
     generate    sample a graph and print its structural statistics
     broadcast   run one broadcast and report time/transmissions
     multi       broadcast several rumors over shared channels
     async       one broadcast under Poisson clocks (no lockstep rounds)
     sweep       repeat a broadcast over sizes and seeds, print a table
     churn       broadcast over a dynamic overlay with join/leave
     heal        self-healing broadcast under a hostile fault+churn plan
     chaos       seeded soak over random fault configs, invariants on
     replay      re-run a chaos repro artifact and diff its digest
     bench-check validate a BENCH_*.json telemetry file, diff --against
     serve       gossip-session service over supervised worker domains
     load        fault-injecting load generator for a serve endpoint
     matrix      declarative scenario sweep grids with regression gates

   broadcast, multi, async, sweep and robustness take --json to emit one
   structured JSON document on stdout instead of the human tables;
   broadcast, multi and async also take --trace-out FILE for an NDJSON
   per-round dump. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Traversal = Rumor_graph.Traversal
module Metrics = Rumor_graph.Metrics
module Spectral = Rumor_graph.Spectral
module Regular = Rumor_gen.Regular
module Classic = Rumor_gen.Classic
module Gnp = Rumor_gen.Gnp
module Product = Rumor_gen.Product
module Engine = Rumor_sim.Engine
module Fault = Rumor_sim.Fault
module Trace = Rumor_sim.Trace
module Params = Rumor_core.Params
module Phase = Rumor_core.Phase
module Algorithm = Rumor_core.Algorithm
module Baselines = Rumor_core.Baselines
module Run = Rumor_core.Run
module Overlay = Rumor_p2p.Overlay
module Churn = Rumor_p2p.Churn
module Summary = Rumor_stats.Summary
module Table = Rumor_stats.Table
module Experiment = Rumor_stats.Experiment
module Json = Rumor_obs.Json
module Obs_metrics = Rumor_obs.Metrics
module Encode = Rumor_obs.Encode
module Latency = Rumor_obs.Latency
module Session = Rumor_serve.Session
module Service = Rumor_serve.Service
module Server = Rumor_serve.Server
module Load = Rumor_serve.Load
module Scenario = Rumor_cli.Scenario
module Matrix = Rumor_cli.Matrix
module Benchdoc = Rumor_obs.Benchdoc

open Cmdliner

(* --- shared arguments --- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let n_arg =
  Arg.(value & opt int 16384 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")

let d_arg =
  Arg.(value & opt int 8 & info [ "d" ] ~docv:"D" ~doc:"Degree of the regular graph.")

let topology_arg =
  let doc =
    "Topology: regular (random d-regular), hypercube, torus, complete, \
     gnp, product-k5 (random regular times K5). broadcast also accepts \
     the seed-derived implicit views implicit-regular, implicit-hypercube \
     and implicit-chords, which never build the graph and scale to \
     n = 10,000,000+."
  in
  Arg.(value & opt string "regular" & info [ "topology" ] ~docv:"KIND" ~doc)

let protocol_arg =
  let doc =
    "Protocol: bef (the paper's algorithm), bef-seq (memory variant), push, \
     pull, push-pull, quasirandom."
  in
  Arg.(value & opt string "bef" & info [ "protocol" ] ~docv:"PROTO" ~doc)

let alpha_arg =
  Arg.(value & opt float 1.0 & info [ "alpha" ] ~docv:"A" ~doc:"Phase-length constant.")

let fanout_arg =
  Arg.(value & opt int 4 & info [ "fanout" ] ~docv:"K" ~doc:"Distinct neighbours per round.")

let loss_arg =
  Arg.(value & opt float 0. & info [ "loss" ] ~docv:"P" ~doc:"Per-transmission loss probability.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the per-round trace.")

let no_packed_arg =
  Arg.(
    value & flag
    & info [ "no-packed" ]
        ~doc:
          "Keep per-node protocol state in boxed OCaml arrays instead of the \
           packed byte cells. Trajectories are bit-identical either way; the \
           flag exists for memory A/B comparisons.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit one machine-readable JSON document on stdout instead of the \
           human-readable report.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the per-round trace as newline-delimited JSON (one object \
           per round) to $(docv).")

(* --- generate --- *)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write the generated graph to a file.")

let graph_in_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "graph" ] ~docv:"FILE"
        ~doc:"Load the graph from a file (written by generate --out) instead \
              of sampling one.")

let generate seed n d topology out =
  let rng = Rng.create seed in
  let g = Rumor_cli.Scenario.make_graph ~rng ~topology ~n ~d in
  (match out with
  | Some path ->
      Rumor_graph.Io.to_file path g;
      Printf.printf "wrote %s\n" path
  | None -> ());
  let stats = Metrics.degree_stats g in
  Printf.printf "topology   %s\n" topology;
  Printf.printf "nodes      %d\n" (Graph.n g);
  Printf.printf "edges      %d\n" (Graph.m g);
  Printf.printf "degrees    min %d / mean %.2f / max %d\n" stats.Metrics.min
    stats.Metrics.mean stats.Metrics.max;
  Printf.printf "simple     %b\n" (Graph.is_simple g);
  Printf.printf "connected  %b\n" (Traversal.is_connected g);
  Printf.printf "diameter   >= %d\n"
    (Traversal.diameter_lower_bound g ~rng ~samples:4);
  let l2 = Spectral.lambda2 g ~rng ~iters:60 in
  Printf.printf "lambda2    %.3f (ramanujan bound %.3f)\n" l2
    (Spectral.ramanujan_bound (int_of_float stats.Metrics.mean));
  0

let generate_cmd =
  let info = Cmd.info "generate" ~doc:"Sample a graph and print statistics." in
  Cmd.v info
    Term.(const generate $ seed_arg $ n_arg $ d_arg $ topology_arg $ out_arg)

(* --- broadcast --- *)

let broadcast seed n d topology protocol alpha fanout loss trace graph_in json
    trace_out no_packed =
  let packed = not no_packed in
  let rng = Rng.create seed in
  let fault = Fault.make ~link_loss:loss () in
  let collect_trace = trace || trace_out <> None in
  let n_real, p, (res, span) =
    if Rumor_cli.Scenario.is_implicit topology then begin
      if graph_in <> None then begin
        prerr_endline
          "rumor: --graph cannot be combined with an implicit --topology";
        exit 2
      end;
      (* No graph is materialised: the engine walks the seed-derived
         neighbour functions, so n = 10^7+ works in O(n) state. *)
      let top = Rumor_cli.Scenario.make_topology ~rng ~topology ~n ~d in
      let n_real = top.Rumor_sim.Topology.capacity in
      let p =
        Rumor_cli.Scenario.make_protocol ~protocol ~n:n_real ~d ~alpha
          ~fanout ()
      in
      let source = Rng.int rng n_real in
      ( n_real,
        p,
        Obs_metrics.timed (fun () ->
            Engine.run ~fault ~collect_trace ~packed ~rng ~topology:top
              ~protocol:p ~sources:[ source ] ()) )
    end
    else begin
      let g =
        match graph_in with
        | Some path -> Rumor_graph.Io.of_file path
        | None -> Rumor_cli.Scenario.make_graph ~rng ~topology ~n ~d
      in
      let n_real = Graph.n g in
      let p =
        Rumor_cli.Scenario.make_protocol ~protocol ~n:n_real ~d ~alpha
          ~fanout ()
      in
      ( n_real,
        p,
        Obs_metrics.timed (fun () ->
            Run.once ~fault ~collect_trace ~packed ~rng ~graph:g ~protocol:p
              ~source:(Run.random_source rng g) ()) )
    end
  in
  (match (res.Engine.trace, trace_out) with
  | Some t, Some path ->
      let oc = open_out path in
      output_string oc (Encode.trace_ndjson t);
      close_out oc;
      if not json then Printf.printf "wrote trace %s (%d rounds)\n" path (Trace.length t)
  | _ -> ());
  if json then
    print_endline
      (Json.to_string ~minify:false
         (Json.Obj
            [
              ("command", Json.String "broadcast");
              ("seed", Json.Int seed);
              ("topology", Json.String topology);
              ("n", Json.Int n_real);
              ("d", Json.Int d);
              ("protocol", Json.String p.Rumor_sim.Protocol.name);
              ("alpha", Json.Float alpha);
              ("fanout", Json.Int fanout);
              ("link_loss", Json.Float loss);
              ("result", Encode.engine_result res);
              ( "tx_per_node",
                Json.Float
                  (float_of_int (Engine.transmissions res)
                  /. float_of_int n_real) );
              ("metrics", Obs_metrics.span_to_json span);
            ]))
  else begin
    Printf.printf "protocol     %s\n" p.Rumor_sim.Protocol.name;
    Printf.printf "informed     %d / %d (%s)\n" res.Engine.informed
      res.Engine.population
      (if Engine.success res then "complete" else "INCOMPLETE");
    (match res.Engine.completion_round with
    | Some r -> Printf.printf "completion   round %d\n" r
    | None -> Printf.printf "completion   never\n");
    Printf.printf "rounds run   %d\n" res.Engine.rounds;
    Printf.printf "transmissions %d push + %d pull = %d (%.2f per node)\n"
      res.Engine.push_tx res.Engine.pull_tx
      (Engine.transmissions res)
      (float_of_int (Engine.transmissions res) /. float_of_int n_real);
    match res.Engine.trace with
    | Some t when trace ->
        Printf.printf "informed      %s\n"
          (Rumor_stats.Sparkline.with_scale (Trace.informed_series t));
        Format.printf "%a" Trace.pp t
    | Some _ | None -> ()
  end;
  if Engine.success res then 0 else 1

let broadcast_cmd =
  let info = Cmd.info "broadcast" ~doc:"Run one broadcast." in
  Cmd.v info
    Term.(
      const broadcast $ seed_arg $ n_arg $ d_arg $ topology_arg $ protocol_arg
      $ alpha_arg $ fanout_arg $ loss_arg $ trace_arg $ graph_in_arg $ json_arg
      $ trace_out_arg $ no_packed_arg)

(* --- multi --- *)

let messages_arg =
  Arg.(
    value & opt int 2
    & info [ "messages" ] ~docv:"K"
        ~doc:"Number of rumors sharing each round's channel set.")

let spacing_arg =
  Arg.(
    value & opt int 2
    & info [ "spacing" ] ~docv:"S"
        ~doc:
          "Rounds between consecutive rumor creation times (rumor $(i,j) is \
           created at the end of round $(i,j)·$(docv)).")

let multi seed n d topology protocol alpha fanout loss messages spacing json
    trace_out =
  let rng = Rng.create seed in
  let g = Rumor_cli.Scenario.make_graph ~rng ~topology ~n ~d in
  let n_real = Graph.n g in
  let p =
    Rumor_cli.Scenario.make_protocol ~protocol ~n:n_real ~d ~alpha ~fanout ()
  in
  if messages < 1 then (
    Printf.eprintf "multi: --messages must be >= 1\n";
    exit 2);
  let msgs =
    List.init messages (fun j ->
        { Rumor_sim.Multi.source = Run.random_source rng g;
          created = j * spacing })
  in
  let fault = Fault.make ~link_loss:loss () in
  let collect_trace = trace_out <> None in
  let res =
    Rumor_sim.Multi.run ~fault ~collect_trace ~rng
      ~topology:(Rumor_sim.Topology.of_graph g) ~protocol:p ~messages:msgs ()
  in
  (match (res.Rumor_sim.Multi.trace, trace_out) with
  | Some t, Some path ->
      let oc = open_out path in
      output_string oc (Encode.trace_ndjson t);
      close_out oc;
      if not json then
        Printf.printf "wrote trace %s (%d rounds)\n" path (Trace.length t)
  | _ -> ());
  if json then
    print_endline
      (Json.to_string ~minify:false
         (Json.Obj
            [
              ("command", Json.String "multi");
              ("seed", Json.Int seed);
              ("topology", Json.String topology);
              ("n", Json.Int n_real);
              ("d", Json.Int d);
              ("protocol", Json.String p.Rumor_sim.Protocol.name);
              ("spacing", Json.Int spacing);
              ("link_loss", Json.Float loss);
              ("result", Encode.multi_result res);
            ]))
  else begin
    Printf.printf "protocol     %s\n" p.Rumor_sim.Protocol.name;
    Printf.printf "rumors       %d (spacing %d)\n" messages spacing;
    Printf.printf "rounds run   %d\n" res.Rumor_sim.Multi.rounds;
    Printf.printf "channels     %d (shared by all rumors)\n"
      res.Rumor_sim.Multi.channels;
    Array.iteri
      (fun j (m : Rumor_sim.Multi.message_result) ->
        Printf.printf "rumor %-2d     informed %d / %d, tx %d, completion %s\n"
          j m.Rumor_sim.Multi.informed res.Rumor_sim.Multi.population
          m.Rumor_sim.Multi.transmissions
          (match m.Rumor_sim.Multi.completion_round with
          | Some r -> Printf.sprintf "round %d" r
          | None -> "never"))
      res.Rumor_sim.Multi.messages
  end;
  if Rumor_sim.Multi.all_complete res then 0 else 1

let multi_cmd =
  let info =
    Cmd.info "multi"
      ~doc:
        "Broadcast several rumors over shared channels (the paper's \
         frequently-generated-messages model)."
  in
  Cmd.v info
    Term.(
      const multi $ seed_arg $ n_arg $ d_arg $ topology_arg $ protocol_arg
      $ alpha_arg $ fanout_arg $ loss_arg $ messages_arg $ spacing_arg
      $ json_arg $ trace_out_arg)

(* --- async --- *)

let oracle_stop_arg =
  Arg.(
    value & flag
    & info [ "oracle-stop" ]
        ~doc:
          "Stop as soon as every node is informed (oracle-stopped \
           accounting) instead of waiting for quiescence.")

let async seed n d topology protocol alpha fanout loss oracle_stop json
    trace_out =
  let rng = Rng.create seed in
  let g = Rumor_cli.Scenario.make_graph ~rng ~topology ~n ~d in
  let n_real = Graph.n g in
  let p =
    Rumor_cli.Scenario.make_protocol ~protocol ~n:n_real ~d ~alpha ~fanout ()
  in
  let fault = Fault.make ~link_loss:loss () in
  let collect_trace = trace_out <> None in
  let res =
    Rumor_sim.Async.run ~fault ~stop_when_complete:oracle_stop ~collect_trace
      ~rng ~graph:g ~protocol:p ~sources:[ Run.random_source rng g ] ()
  in
  (match (res.Rumor_sim.Async.trace, trace_out) with
  | Some t, Some path ->
      let oc = open_out path in
      output_string oc (Encode.trace_ndjson t);
      close_out oc;
      if not json then
        Printf.printf "wrote trace %s (%d time units)\n" path (Trace.length t)
  | _ -> ());
  if json then
    print_endline
      (Json.to_string ~minify:false
         (Json.Obj
            [
              ("command", Json.String "async");
              ("seed", Json.Int seed);
              ("topology", Json.String topology);
              ("n", Json.Int n_real);
              ("d", Json.Int d);
              ("protocol", Json.String p.Rumor_sim.Protocol.name);
              ("link_loss", Json.Float loss);
              ("result", Encode.async_result res);
            ]))
  else begin
    Printf.printf "protocol     %s\n" p.Rumor_sim.Protocol.name;
    Printf.printf "informed     %d / %d (%s)\n" res.Rumor_sim.Async.informed
      n_real
      (if res.Rumor_sim.Async.informed = n_real then "complete"
       else "INCOMPLETE");
    (match res.Rumor_sim.Async.completion_time with
    | Some t -> Printf.printf "completion   time %.3f\n" t
    | None -> Printf.printf "completion   never\n");
    Printf.printf "time         %.3f (%d activations)\n"
      res.Rumor_sim.Async.time res.Rumor_sim.Async.activations;
    Printf.printf "transmissions %d (%.2f per node)\n"
      res.Rumor_sim.Async.transmissions
      (float_of_int res.Rumor_sim.Async.transmissions /. float_of_int n_real)
  end;
  if res.Rumor_sim.Async.informed = n_real then 0 else 1

let async_cmd =
  let info =
    Cmd.info "async"
      ~doc:
        "Run one broadcast under Poisson clocks (asynchronous relaxation of \
         the round model)."
  in
  Cmd.v info
    Term.(
      const async $ seed_arg $ n_arg $ d_arg $ topology_arg $ protocol_arg
      $ alpha_arg $ fanout_arg $ loss_arg $ oracle_stop_arg $ json_arg
      $ trace_out_arg)

(* --- sweep --- *)

let sizes_arg =
  Arg.(
    value
    & opt (list int) [ 1024; 4096; 16384 ]
    & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Node counts to sweep.")

let reps_arg =
  Arg.(value & opt int 5 & info [ "reps" ] ~docv:"R" ~doc:"Repetitions per point.")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "OCaml domains used to fan repetitions across cores (0 = auto: \
           recommended domain count capped at 8). Per-repetition RNG streams \
           are pre-forked, so results are bit-identical for every D.")

let resolve_domains d =
  if d < 0 then begin
    prerr_endline "rumor: --domains must be >= 0";
    exit 2
  end
  else if d = 0 then Experiment.default_domains ()
  else d

let sweep seed sizes d protocol alpha fanout reps domains json =
  let domains = resolve_domains domains in
  let t =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("tx/node", Table.Right);
          ("ci95", Table.Right);
          ("rounds", Table.Right);
          ("success", Table.Right);
        ]
  in
  let points = ref [] in
  List.iteri
    (fun i n ->
      let results =
        Experiment.replicate_parallel ~domains ~seed:(seed + i) ~reps (fun rng ->
            let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
            let p =
              Rumor_cli.Scenario.make_protocol ~protocol ~n ~d ~alpha ~fanout ()
            in
            Run.once
              ~stop_when_complete:(protocol <> "bef" && protocol <> "bef-seq")
              ~rng ~graph:g ~protocol:p ~source:(Run.random_source rng g) ())
      in
      let tx_per_seed =
        List.map
          (fun r -> float_of_int (Engine.transmissions r) /. float_of_int n)
          results
      in
      let rounds_per_seed =
        List.map (fun r -> float_of_int r.Engine.rounds) results
      in
      let tx = Summary.of_list tx_per_seed in
      let rounds = Summary.of_list rounds_per_seed in
      let ok =
        List.length (List.filter Engine.success results) * 100 / List.length results
      in
      points :=
        Json.Obj
          [
            ("n", Json.Int n);
            ("tx_per_node", Encode.summary tx);
            ("rounds", Encode.summary rounds);
            ("success_rate", Json.Float (float_of_int ok /. 100.));
            ( "per_seed",
              Json.Obj
                [
                  ("tx_per_node", Encode.float_list tx_per_seed);
                  ("rounds", Encode.float_list rounds_per_seed);
                ] );
          ]
        :: !points;
      Table.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.2f" tx.Summary.mean;
          Printf.sprintf "±%.2f" (Summary.ci95_halfwidth tx);
          Printf.sprintf "%.1f" rounds.Summary.mean;
          Printf.sprintf "%d%%" ok;
        ])
    sizes;
  if json then
    print_endline
      (Json.to_string ~minify:false
         (Json.Obj
            [
              ("command", Json.String "sweep");
              ("seed", Json.Int seed);
              ("d", Json.Int d);
              ("protocol", Json.String protocol);
              ("alpha", Json.Float alpha);
              ("fanout", Json.Int fanout);
              ("reps", Json.Int reps);
              ("domains", Json.Int domains);
              ("points", Json.List (List.rev !points));
            ]))
  else Table.print t;
  0

let sweep_cmd =
  let info = Cmd.info "sweep" ~doc:"Sweep a protocol over network sizes." in
  Cmd.v info
    Term.(
      const sweep $ seed_arg $ sizes_arg $ d_arg $ protocol_arg $ alpha_arg
      $ fanout_arg $ reps_arg $ domains_arg $ json_arg)

(* --- churn --- *)

let churn_rate_arg =
  Arg.(
    value & opt float 0.005
    & info [ "rate" ] ~docv:"R" ~doc:"Churn operations per round as a fraction of n.")

let churn seed n d rate =
  let rng = Rng.create seed in
  let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  let o = Overlay.of_graph ~capacity:(2 * n) g in
  let params = Params.make ~alpha:2.0 ~n_estimate:n ~d () in
  let ops = int_of_float (rate *. float_of_int n) in
  let res =
    Engine.run ~rng
      ~on_round_end:(fun _ ->
        for _ = 1 to ops do
          ignore (Churn.session o ~rng ~d ~join_prob:0.5 ~leave_prob:0.5 ())
        done)
      ~topology:(Overlay.to_topology o)
      ~protocol:(Algorithm.make params) ~sources:[ 0 ] ()
  in
  Printf.printf "churn ops/round   %d (%.3f n)\n" ops rate;
  Printf.printf "final population  %d\n" res.Engine.population;
  Printf.printf "informed          %d (coverage %.4f)\n" res.Engine.informed
    (float_of_int res.Engine.informed /. float_of_int res.Engine.population);
  Printf.printf "transmissions     %.2f per node\n"
    (float_of_int (Engine.transmissions res) /. float_of_int n);
  Printf.printf "overlay invariant %b\n" (Overlay.invariant o);
  0

let churn_cmd =
  let info = Cmd.info "churn" ~doc:"Broadcast over a churning P2P overlay." in
  Cmd.v info Term.(const churn $ seed_arg $ n_arg $ d_arg $ churn_rate_arg)

(* --- estimate --- *)

let k_arg =
  Arg.(
    value & opt int 256
    & info [ "k" ] ~docv:"K" ~doc:"Exponentials per node (accuracy knob).")

let estimate seed n d k =
  let rng = Rng.create seed in
  let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  let overlay = Rumor_p2p.Overlay.of_graph ~capacity:n g in
  let est = Rumor_p2p.Estimator.create ~rng ~overlay ~k in
  let rounds = Rumor_p2p.Estimator.run ~rng est in
  Printf.printf "gossip rounds     %d\n" rounds;
  Printf.printf "node 0 estimate   %.1f (true %d)\n"
    (Rumor_p2p.Estimator.estimate est ~node:0)
    n;
  Printf.printf "worst-node factor %.3f\n" (Rumor_p2p.Estimator.worst_error est);
  0

let estimate_cmd =
  let info =
    Cmd.info "estimate"
      ~doc:
        "Estimate the network size by min-of-exponentials gossip (the input \
         the broadcast algorithm assumes)."
  in
  Cmd.v info Term.(const estimate $ seed_arg $ n_arg $ d_arg $ k_arg)

(* --- robustness --- *)

let robust_n_arg =
  Arg.(
    value & opt int 4096
    & info [ "n" ] ~docv:"N"
        ~doc:"Number of nodes (the E7 bench covers the full 16384 setting).")

let robust_alpha_arg =
  Arg.(
    value & opt float 2.0
    & info [ "alpha" ] ~docv:"A"
        ~doc:"Phase-length constant (2.0 adds slack against faults).")

let burst_len_arg =
  Arg.(
    value & opt float 4.0
    & info [ "burst-len" ] ~docv:"L"
        ~doc:"Mean length (rounds) of a Gilbert-Elliott loss burst.")

let use_estimator_arg =
  Arg.(
    value & flag
    & info [ "use-estimator" ]
        ~doc:
          "Source the size estimate from min-of-exponentials gossip at the \
           broadcast source instead of sweeping fixed n-error factors.")

let robustness seed n d alpha reps domains burst_len use_estimator json =
  let domains = resolve_domains domains in
  if burst_len < 1. then begin
    prerr_endline "rumor: --burst-len must be >= 1";
    exit 2
  end;
  let losses = [ 0.; 0.05; 0.1; 0.2 ] in
  let errors =
    if use_estimator then [ 1.0 ] else [ 0.125; 0.25; 1.0; 4.0; 8.0 ]
  in
  let summar f results = Summary.of_list (List.map f results) in
  let pct_success results =
    100
    * List.length (List.filter (fun (r, _) -> Engine.success r) results)
    / List.length results
  in
  let sweep_points = ref [] in
  let crash_points = ref [] in
  if not json then
    Printf.printf
      "robustness sweep: n=%d d=%d alpha=%.1f reps=%d burst_len=%.1f%s\n" n d
      alpha reps burst_len
      (if use_estimator then " (gossip size estimate)" else "");
  let t =
    Table.create
      ~columns:
        [
          ("burst loss", Table.Right);
          ("est/n", Table.Right);
          ("success", Table.Right);
          ("coverage", Table.Right);
          ("tx/node", Table.Right);
          ("rounds", Table.Right);
        ]
  in
  List.iteri
    (fun i loss ->
      List.iteri
        (fun j factor ->
          let results =
            Experiment.replicate_parallel ~domains
              ~seed:(seed + (10 * i) + j)
              ~reps
              (fun rng ->
                let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
                let source = Run.random_source rng g in
                let est =
                  if use_estimator then begin
                    let overlay = Overlay.of_graph ~capacity:n g in
                    let e = Rumor_p2p.Estimator.create ~rng ~overlay ~k:64 in
                    ignore (Rumor_p2p.Estimator.run ~rng e);
                    Rumor_p2p.Estimator.estimate e ~node:source
                  end
                  else factor *. float_of_int n
                in
                let fault =
                  if loss > 0. then
                    Fault.plan ~burst:(Fault.burst ~loss ~burst_len) ()
                  else Fault.none
                in
                let params =
                  Params.make ~alpha
                    ~n_estimate:(max 4 (int_of_float (ceil est)))
                    ~d ()
                in
                let res =
                  Run.once ~fault ~rng ~graph:g
                    ~protocol:(Algorithm.make params) ~source ()
                in
                (res, est /. float_of_int n))
          in
          let coverage =
            summar
              (fun (r, _) ->
                float_of_int r.Engine.informed /. float_of_int r.Engine.population)
              results
          in
          let tx =
            summar
              (fun (r, _) ->
                float_of_int (Engine.transmissions r) /. float_of_int n)
              results
          in
          let rounds =
            summar (fun (r, _) -> float_of_int r.Engine.rounds) results
          in
          let est_factor = summar (fun (_, f) -> f) results in
          sweep_points :=
            Json.Obj
              [
                ("burst_loss", Json.Float loss);
                ("estimate_factor", Json.Float est_factor.Summary.mean);
                ( "success_rate",
                  Json.Float (float_of_int (pct_success results) /. 100.) );
                ("coverage", Encode.summary coverage);
                ("tx_per_node", Encode.summary tx);
                ("rounds", Encode.summary rounds);
                ( "per_seed",
                  Json.Obj
                    [
                      ( "coverage",
                        Encode.float_list
                          (List.map
                             (fun (r, _) ->
                               float_of_int r.Engine.informed
                               /. float_of_int r.Engine.population)
                             results) );
                      ( "tx_per_node",
                        Encode.float_list
                          (List.map
                             (fun (r, _) ->
                               float_of_int (Engine.transmissions r)
                               /. float_of_int n)
                             results) );
                    ] );
              ]
            :: !sweep_points;
          Table.add_row t
            [
              Printf.sprintf "%.2f" loss;
              Printf.sprintf "%.2f" est_factor.Summary.mean;
              Printf.sprintf "%d%%" (pct_success results);
              Printf.sprintf "%.4f" coverage.Summary.mean;
              Printf.sprintf "%.1f" tx.Summary.mean;
              Printf.sprintf "%.1f" rounds.Summary.mean;
            ])
        errors)
    losses;
  if not json then begin
    Table.print t;
    (* Node-crash schedules, random and adversarial. *)
    print_endline "\nnode crashes (10% bursty loss kept on):"
  end;
  let t2 =
    Table.create
      ~columns:
        [
          ("schedule", Table.Left);
          ("success", Table.Right);
          ("coverage", Table.Right);
          ("final pop", Table.Right);
          ("tx/node", Table.Right);
        ]
  in
  let schedules =
    [
      ( "crash-stop 0.2%/round",
        Fault.plan ~crash_rate:0.002 () );
      ( "crash-recovery 1%/round, recover 20%",
        Fault.plan ~crash_rate:0.01 ~recover_rate:0.2 () );
      ( Printf.sprintf "strike: random %d @ round 3" (n / 8),
        Fault.plan
          ~strike:(Fault.strike ~adversary:Fault.Random_nodes ~at_round:3
                     ~count:(n / 8) ())
          () );
      ( Printf.sprintf "strike: highest-degree %d @ round 3" (n / 8),
        Fault.plan
          ~strike:(Fault.strike ~adversary:Fault.Highest_degree ~at_round:3
                     ~count:(n / 8) ())
          () );
      ( Printf.sprintf "strike: frontier %d @ round 3" (n / 16),
        Fault.plan
          ~strike:(Fault.strike ~adversary:Fault.Frontier ~at_round:3
                     ~count:(n / 16) ())
          () );
    ]
  in
  let burst = Fault.burst ~loss:0.1 ~burst_len in
  List.iteri
    (fun i (label, plan) ->
      let fault = { plan with Fault.burst = Some burst } in
      let results =
        Experiment.replicate_parallel ~domains ~seed:(seed + 100 + i) ~reps
          (fun rng ->
            let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
            let params = Params.make ~alpha ~n_estimate:n ~d () in
            Run.once ~fault ~rng ~graph:g ~protocol:(Algorithm.make params)
              ~source:(Run.random_source rng g) ())
      in
      let ok =
        100
        * List.length (List.filter Engine.success results)
        / List.length results
      in
      let coverage =
        Summary.of_list
          (List.map
             (fun r ->
               if r.Engine.population = 0 then 0.
               else
                 float_of_int r.Engine.informed
                 /. float_of_int r.Engine.population)
             results)
      in
      let pop =
        Summary.of_list
          (List.map (fun r -> float_of_int r.Engine.population) results)
      in
      let tx =
        Summary.of_list
          (List.map
             (fun r -> float_of_int (Engine.transmissions r) /. float_of_int n)
             results)
      in
      crash_points :=
        Json.Obj
          [
            ("schedule", Json.String label);
            ("success_rate", Json.Float (float_of_int ok /. 100.));
            ("coverage", Encode.summary coverage);
            ("final_population", Encode.summary pop);
            ("tx_per_node", Encode.summary tx);
          ]
        :: !crash_points;
      Table.add_row t2
        [
          label;
          Printf.sprintf "%d%%" ok;
          Printf.sprintf "%.4f" coverage.Summary.mean;
          Printf.sprintf "%.0f" pop.Summary.mean;
          Printf.sprintf "%.1f" tx.Summary.mean;
        ])
    schedules;
  if json then
    print_endline
      (Json.to_string ~minify:false
         (Json.Obj
            [
              ("command", Json.String "robustness");
              ("seed", Json.Int seed);
              ("n", Json.Int n);
              ("d", Json.Int d);
              ("alpha", Json.Float alpha);
              ("reps", Json.Int reps);
              ("domains", Json.Int domains);
              ("burst_len", Json.Float burst_len);
              ("use_estimator", Json.Bool use_estimator);
              ("sweep", Json.List (List.rev !sweep_points));
              ("crash_schedules", Json.List (List.rev !crash_points));
            ]))
  else begin
    Table.print t2;
    print_endline
      "(coverage is over surviving nodes; a frontier strike that lands before\n\
      \ phase 2 can kill every copy of the rumor - no protocol survives that)"
  end;
  0

let robustness_cmd =
  let info =
    Cmd.info "robustness"
      ~doc:
        "Sweep fault intensity (bursty loss) x size-estimate error, then \
         node-crash schedules, and print success-rate tables."
  in
  Cmd.v info
    Term.(
      const robustness $ seed_arg $ robust_n_arg $ d_arg $ robust_alpha_arg
      $ reps_arg $ domains_arg $ burst_len_arg $ use_estimator_arg $ json_arg)

(* --- heal (self-healing broadcast) --- *)

let prob_arg ~names ~default ~docv ~doc =
  Arg.(value & opt float default & info names ~docv ~doc)

let burst_loss_arg =
  prob_arg ~names:[ "burst-loss" ] ~default:0.2 ~docv:"P"
    ~doc:"Stationary Gilbert-Elliott loss rate (0 disables bursts)."

let crash_rate_arg =
  prob_arg ~names:[ "crash-rate" ] ~default:0.01 ~docv:"P"
    ~doc:"Per-node per-round crash probability."

let recover_rate_arg =
  prob_arg ~names:[ "recover-rate" ] ~default:0.25 ~docv:"P"
    ~doc:"Per-crashed-node per-round recovery probability."

let join_prob_arg =
  prob_arg ~names:[ "join-prob" ] ~default:0.02 ~docv:"P"
    ~doc:"Per-round probability that a fresh peer joins the overlay."

let leave_prob_arg =
  prob_arg ~names:[ "leave-prob" ] ~default:0.02 ~docv:"P"
    ~doc:"Per-round probability that a random peer leaves the overlay."

let repair_timeout_arg =
  Arg.(
    value & opt int 2
    & info [ "timeout" ] ~docv:"T"
        ~doc:"Silent rounds before an uninformed node starts pulling.")

let repair_backoff_arg =
  Arg.(
    value & opt int 8
    & info [ "backoff" ] ~docv:"W"
        ~doc:"Cap (rounds) of the randomized exponential pull backoff.")

let max_epochs_arg =
  Arg.(
    value & opt int 8
    & info [ "max-epochs" ] ~docv:"E" ~doc:"Repair epoch budget.")

let no_repair_arg =
  Arg.(
    value & flag
    & info [ "no-repair" ]
        ~doc:
          "Run the same hostile scenario without repair epochs — exposes the \
           uninformed nodes self-healing would have fixed.")

(* Aggregate reporting for [heal --reps R] with R > 1: per-rep rows plus
   summary statistics; exits 0 only if every repetition completes. *)
let heal_replicated ~seed ~reps ~domains ~no_repair ~json one_run =
  let results = Experiment.replicate_parallel ~domains ~seed ~reps one_run in
  let coverage =
    Summary.of_list (List.map (fun (r, _, _) -> Engine.coverage r) results)
  in
  let epochs =
    Summary.of_list
      (List.map (fun (r, _, _) -> float_of_int (Engine.epochs_used r)) results)
  in
  let repair_tx =
    Summary.of_list
      (List.map (fun (r, _, _) -> float_of_int (Engine.repair_tx r)) results)
  in
  let ok = List.length (List.filter (fun (r, _, _) -> Engine.success r) results) in
  if json then
    print_endline
      (Json.to_string ~minify:false
         (Json.Obj
            [
              ("command", Json.String "heal");
              ("seed", Json.Int seed);
              ("reps", Json.Int reps);
              ("domains", Json.Int domains);
              ("repair", Json.Bool (not no_repair));
              ( "success_rate",
                Json.Float (float_of_int ok /. float_of_int reps) );
              ("coverage", Encode.summary coverage);
              ("epochs_used", Encode.summary epochs);
              ("repair_tx", Encode.summary repair_tx);
              ( "runs",
                Json.List
                  (List.map
                     (fun (r, span, overlay_ok) ->
                       Json.Obj
                         [
                           ("coverage", Json.Float (Engine.coverage r));
                           ("epochs_used", Json.Int (Engine.epochs_used r));
                           ("repair_tx", Json.Int (Engine.repair_tx r));
                           ("success", Json.Bool (Engine.success r));
                           ("overlay_invariant", Json.Bool overlay_ok);
                           ("result", Encode.engine_result r);
                           ("metrics", Obs_metrics.span_to_json span);
                         ])
                     results) );
            ]))
  else begin
    let t =
      Table.create
        ~columns:
          [
            ("rep", Table.Right);
            ("coverage", Table.Right);
            ("epochs", Table.Right);
            ("repair tx", Table.Right);
            ("complete", Table.Right);
          ]
    in
    List.iteri
      (fun i (r, _, _) ->
        Table.add_row t
          [
            string_of_int i;
            Printf.sprintf "%.4f" (Engine.coverage r);
            string_of_int (Engine.epochs_used r);
            string_of_int (Engine.repair_tx r);
            (if Engine.success r then "yes" else "NO");
          ])
      results;
    Table.print t;
    Printf.printf "success   %d/%d\n" ok reps;
    Printf.printf "coverage  %.4f ±%.4f\n" coverage.Summary.mean
      (Summary.ci95_halfwidth coverage);
    Printf.printf "epochs    %.1f mean\n" epochs.Summary.mean
  end;
  if ok = reps then 0 else 1

let heal_reps_arg =
  Arg.(
    value & opt int 1
    & info [ "reps" ] ~docv:"R"
        ~doc:
          "Independent repetitions (forked RNG streams). The default 1 keeps \
           the original single-run behaviour and output; R > 1 replicates \
           across domains and reports per-rep and aggregate coverage.")

let heal seed n d alpha burst_loss burst_len crash_rate recover_rate join_prob
    leave_prob timeout backoff max_epochs no_repair reps domains json =
  let domains = resolve_domains domains in
  let check_prob name p =
    if p < 0. || p > 1. then begin
      Printf.eprintf "rumor: --%s must be in [0, 1]\n" name;
      exit 2
    end
  in
  check_prob "crash-rate" crash_rate;
  check_prob "recover-rate" recover_rate;
  check_prob "join-prob" join_prob;
  check_prob "leave-prob" leave_prob;
  if burst_loss < 0. || burst_loss >= 1. then begin
    prerr_endline "rumor: --burst-loss must be in [0, 1)";
    exit 2
  end;
  if backoff < 1 || timeout < 0 || max_epochs < 0 then begin
    prerr_endline
      "rumor: --backoff must be >= 1, --timeout and --max-epochs >= 0";
    exit 2
  end;
  if reps < 1 then begin
    prerr_endline "rumor: --reps must be >= 1";
    exit 2
  end;
  let fault =
    let burst =
      if burst_loss > 0. then
        Some (Fault.burst ~loss:burst_loss ~burst_len)
      else None
    in
    Fault.plan ?burst ~crash_rate ~recover_rate ()
  in
  let protocol = Algorithm.make (Params.make ~alpha ~n_estimate:n ~d ()) in
  let config =
    Rumor_core.Repair.config ~timeout ~backoff_cap:backoff ~max_epochs ~n ()
  in
  (* One full hostile run; all mutable state is local so the closure is
     safe to replicate across domains. *)
  let one_run rng =
    let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
    let o = Overlay.of_graph ~capacity:(2 * n) g in
    (* Joins during the main schedule may recycle ids of departed peers;
       the engine's reset hook restarts them uninformed. *)
    let joined = ref [] in
    let on_round_end _ =
      let ev = Churn.session o ~rng ~d ~join_prob ~leave_prob () in
      match ev.Churn.joined with
      | Some v -> joined := v :: !joined
      | None -> ()
    in
    let reset () =
      let l = !joined in
      joined := [];
      l
    in
    let res, span =
      Obs_metrics.timed (fun () ->
          if no_repair then
            Engine.run ~fault ~forget_on_recover:true ~reset ~on_round_end ~rng
              ~topology:(Overlay.to_topology o) ~protocol ~sources:[ 0 ] ()
          else
            Rumor_core.Repair.self_heal ~fault ~config ~reset ~on_round_end
              ~rng ~topology:(Overlay.to_topology o) ~protocol ~sources:[ 0 ]
              ())
    in
    (res, span, Overlay.invariant o)
  in
  if reps > 1 then heal_replicated ~seed ~reps ~domains ~no_repair ~json one_run
  else begin
  (* reps = 1: the original single-run path, stream- and output-compatible
     (the RNG is [create seed] itself, not a fork). *)
  let res, span, overlay_ok = one_run (Rng.create seed) in
  if json then
    print_endline
      (Json.to_string ~minify:false
         (Json.Obj
            [
              ("command", Json.String "heal");
              ("seed", Json.Int seed);
              ("n", Json.Int n);
              ("d", Json.Int d);
              ("alpha", Json.Float alpha);
              ("burst_loss", Json.Float burst_loss);
              ("burst_len", Json.Float burst_len);
              ("crash_rate", Json.Float crash_rate);
              ("recover_rate", Json.Float recover_rate);
              ("join_prob", Json.Float join_prob);
              ("leave_prob", Json.Float leave_prob);
              ("repair", Json.Bool (not no_repair));
              ("repair_timeout", Json.Int timeout);
              ("repair_backoff", Json.Int backoff);
              ("max_epochs", Json.Int max_epochs);
              ("coverage", Json.Float (Engine.coverage res));
              ("epochs_used", Json.Int (Engine.epochs_used res));
              ("repair_tx", Json.Int (Engine.repair_tx res));
              ("result", Encode.engine_result res);
              ("metrics", Obs_metrics.span_to_json span);
            ]))
  else begin
    Printf.printf "repair            %s\n"
      (if no_repair then "off"
       else
         Printf.sprintf "timeout %d, backoff cap %d, max %d epochs" timeout
           backoff max_epochs);
    Printf.printf "final population  %d\n" res.Engine.population;
    Printf.printf "informed          %d (coverage %.4f%s)\n" res.Engine.informed
      (Engine.coverage res)
      (if Engine.success res then ", complete" else ", INCOMPLETE");
    Printf.printf "epochs used       %d\n" (Engine.epochs_used res);
    List.iter
      (fun e ->
        Printf.printf
          "  epoch %d: %d rounds, coverage %.4f, %d pull tx (%.2f per node)\n"
          e.Engine.epoch e.Engine.epoch_rounds
          (if e.Engine.epoch_population = 0 then 0.
           else
             float_of_int e.Engine.epoch_informed
             /. float_of_int e.Engine.epoch_population)
          e.Engine.repair_pull_tx
          (float_of_int (e.Engine.repair_push_tx + e.Engine.repair_pull_tx)
          /. float_of_int (max 1 e.Engine.epoch_population)))
      res.Engine.repair;
    Printf.printf "repair overhead   %d tx (%.2f per node)\n"
      (Engine.repair_tx res)
      (float_of_int (Engine.repair_tx res)
      /. float_of_int (max 1 res.Engine.population));
    Printf.printf "transmissions     %d (%.2f per node)\n"
      (Engine.transmissions res)
      (float_of_int (Engine.transmissions res)
      /. float_of_int (max 1 res.Engine.population));
    Printf.printf "overlay invariant %b\n" overlay_ok
  end;
  if Engine.success res then 0 else 1
  end

let heal_cmd =
  let info =
    Cmd.info "heal"
      ~doc:
        "Self-healing broadcast: run the paper's algorithm under a hostile \
         plan (bursty loss, crash/recovery, churn), then repair epochs \
         (pull-timeout with randomized backoff) until every live peer is \
         informed or the epoch budget runs out."
  in
  Cmd.v info
    Term.(
      const heal $ seed_arg $ robust_n_arg $ d_arg $ robust_alpha_arg
      $ burst_loss_arg $ burst_len_arg $ crash_rate_arg $ recover_rate_arg
      $ join_prob_arg $ leave_prob_arg $ repair_timeout_arg
      $ repair_backoff_arg $ max_epochs_arg $ no_repair_arg $ heal_reps_arg
      $ domains_arg $ json_arg)

(* --- run (scenario files) --- *)

let scenario_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SCENARIO" ~doc:"Scenario file (key = value lines).")

let run_scenario path =
  match Rumor_cli.Scenario.parse_file path with
  | Error msg ->
      prerr_endline ("scenario error: " ^ msg);
      2
  | Ok scenario ->
      let report = Rumor_cli.Scenario.run scenario in
      Format.printf "%a@." Rumor_cli.Scenario.pp_report report;
      if report.Rumor_cli.Scenario.success_rate = 1. then 0 else 1

let run_cmd =
  let info = Cmd.info "run" ~doc:"Execute a scenario file." in
  Cmd.v info Term.(const run_scenario $ scenario_file_arg)

(* --- chaos / replay --- *)

module Chaos = Rumor_cli.Chaos

let budget_arg =
  let doc =
    "Wall-clock budget in seconds (e.g. 60 or 60s). Sampling stops when \
     the budget is exhausted."
  in
  Arg.(value & opt (some string) None & info [ "budget" ] ~docv:"SECONDS" ~doc)

let max_configs_arg =
  let doc = "Maximum number of sampled configurations." in
  Arg.(value & opt (some int) None & info [ "max-configs" ] ~docv:"K" ~doc)

let out_dir_arg =
  let doc = "Directory where repro artifacts are written." in
  Arg.(value & opt string "chaos-artifacts" & info [ "out" ] ~docv:"DIR" ~doc)

let pin_arg =
  let doc =
    "Instead of soaking, run one scenario and write a known-good \
     rumor-chaos/1 artifact (scenario + expected digest) to $(docv) — \
     the file `rumor replay` consumes."
  in
  Arg.(value & opt (some string) None & info [ "pin" ] ~docv:"FILE" ~doc)

let pin_scenario_arg =
  let doc =
    "Scenario file to pin (with --pin). Defaults to the first sampled \
     configuration."
  in
  Arg.(
    value
    & opt (some file) None
    & info [ "pin-scenario" ] ~docv:"SCENARIO" ~doc)

let parse_budget s =
  let s = String.trim s in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = 's' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  match float_of_string_opt s with
  | Some b when b > 0. -> Some b
  | _ -> None

let ensure_dir d = if not (Sys.file_exists d) then Unix.mkdir d 0o755

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let outcome_failure_json file (o : Chaos.outcome) =
  Json.Obj
    [
      ("artifact", Json.String file);
      ("digest", Json.String o.Chaos.digest);
      ( "error",
        match o.Chaos.error with Some e -> Json.String e | None -> Json.Null );
      ( "violations",
        Json.List (List.map Encode.violation o.Chaos.violations) );
    ]

let describe_failure (o : Chaos.outcome) =
  match o.Chaos.error with
  | Some e -> "crash: " ^ e
  | None -> (
      match o.Chaos.violations with
      | v :: _ ->
          Format.asprintf "%a (%d total)" Rumor_sim.Invariant.pp_violation v
            o.Chaos.violation_count
      | [] -> "unknown failure")

let chaos seed budget max_configs out json pin pin_scenario =
  match pin with
  | Some pin_file -> (
      (* Pin mode: one run, one artifact, no soaking. *)
      let scenario =
        match pin_scenario with
        | Some path -> (
            match Rumor_cli.Scenario.parse_file path with
            | Ok s -> Ok { s with Rumor_cli.Scenario.reps = 1; domains = 1 }
            | Error e -> Error ("scenario error: " ^ e))
        | None -> Ok (Chaos.sample (Rng.create seed))
      in
      match scenario with
      | Error msg ->
          prerr_endline msg;
          2
      | Ok s ->
          let o = Chaos.run_one s in
          let notes =
            if Chaos.failed o then [ "FAILING repro: " ^ describe_failure o ]
            else [ "known-good pinned run" ]
          in
          write_file pin_file (Chaos.artifact ~notes ~digest:o.Chaos.digest s);
          Printf.printf "pinned %s (digest %s, %d rounds, %s)\n" pin_file
            o.Chaos.digest o.Chaos.rounds
            (if Chaos.failed o then "FAILING" else "clean");
          if Chaos.failed o then 1 else 0)
  | None ->
      let budget_s =
        Option.map
          (fun b ->
            match parse_budget b with
            | Some s -> s
            | None ->
                prerr_endline ("chaos: bad --budget " ^ b);
                exit 2)
          budget
      in
      let deadline = Option.map (fun b -> Unix.gettimeofday () +. b) budget_s in
      let limit =
        match (max_configs, budget_s) with
        | Some k, _ -> k
        | None, Some _ -> max_int
        | None, None -> 25
      in
      let rng = Rng.create seed in
      let failures = ref [] in
      let runs = ref 0 in
      let checked = ref 0 in
      while
        !runs < limit
        && (match deadline with
           | Some t -> Unix.gettimeofday () < t
           | None -> true)
      do
        let s = Chaos.sample rng in
        let o = Chaos.run_one s in
        incr runs;
        checked := !checked + o.Chaos.checked;
        if Chaos.failed o then begin
          if not json then
            Printf.printf "config %d FAILED: %s\n%!" !runs (describe_failure o);
          let fails c = Chaos.failed (Chaos.run_one c) in
          let small = Chaos.shrink ~fails o.Chaos.scenario in
          let so = Chaos.run_one small in
          ensure_dir out;
          let file =
            Filename.concat out (Printf.sprintf "chaos-%d-%03d.txt" seed !runs)
          in
          write_file file
            (Chaos.artifact
               ~notes:[ "FAILING repro: " ^ describe_failure so ]
               ~digest:so.Chaos.digest small);
          if not json then
            Printf.printf "  shrunk repro written to %s\n%!" file;
          failures := (file, so) :: !failures
        end
      done;
      let failures = List.rev !failures in
      if json then
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("schema", Json.String "rumor-chaos/1");
                  ("seed", Json.Int seed);
                  ("configs", Json.Int !runs);
                  ("rounds_checked", Json.Int !checked);
                  ("failures", Json.Int (List.length failures));
                  ( "repros",
                    Json.List
                      (List.map
                         (fun (f, o) -> outcome_failure_json f o)
                         failures) );
                ]))
      else
        Printf.printf
          "chaos soak: %d configs, %d round boundaries checked, %d failure(s)\n"
          !runs !checked (List.length failures);
      if failures = [] then 0 else 1

let chaos_cmd =
  let info =
    Cmd.info "chaos"
      ~doc:
        "Seeded chaos soak: sample random fault/churn/repair configurations, \
         run each with the kernel invariant monitor on, and write a shrunk \
         repro artifact for every violation or crash."
  in
  Cmd.v info
    Term.(
      const chaos $ seed_arg $ budget_arg $ max_configs_arg $ out_dir_arg
      $ json_arg $ pin_arg $ pin_scenario_arg)

let artifact_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"ARTIFACT" ~doc:"rumor-chaos/1 repro artifact file.")

let replay path json =
  match Chaos.parse_artifact_file path with
  | Error msg ->
      prerr_endline ("replay error: " ^ msg);
      2
  | Ok (s, expect) ->
      let o = Chaos.run_one s in
      let matched = String.equal o.Chaos.digest expect in
      if json then
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("schema", Json.String "rumor-chaos/1");
                  ("artifact", Json.String path);
                  ("expect_digest", Json.String expect);
                  ("digest", Json.String o.Chaos.digest);
                  ("match", Json.Bool matched);
                  ("rounds", Json.Int o.Chaos.rounds);
                  ("coverage", Json.Float o.Chaos.coverage);
                  ( "error",
                    match o.Chaos.error with
                    | Some e -> Json.String e
                    | None -> Json.Null );
                  ( "violations",
                    Json.List (List.map Encode.violation o.Chaos.violations) );
                ]))
      else begin
        Printf.printf "replayed %s: digest %s (expected %s) — %s\n" path
          o.Chaos.digest expect
          (if matched then "match" else "MISMATCH");
        (match o.Chaos.error with
        | Some e -> Printf.printf "  crash: %s\n" e
        | None -> ());
        List.iter
          (fun v ->
            Format.printf "  violation: %a@." Rumor_sim.Invariant.pp_violation
              v)
          o.Chaos.violations
      end;
      if matched then 0 else 1

let replay_cmd =
  let info =
    Cmd.info "replay"
      ~doc:
        "Re-run a rumor-chaos/1 repro artifact bit-identically and diff its \
         trajectory digest."
  in
  Cmd.v info Term.(const replay $ artifact_arg $ json_arg)

(* --- bench-check --- *)

let bench_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BENCH.json"
        ~doc:"Bench record written by `bench/main.exe --json`.")

let against_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "against" ] ~docv:"BASELINE.json"
        ~doc:
          "Regression baseline: after validating, diff matrix experiments \
           cell by cell against this rumor-bench/1 file and fail on drift \
           beyond $(b,--tolerance).")

let tolerance_arg =
  Arg.(
    value & opt float 10.
    & info [ "tolerance" ] ~docv:"PCT"
        ~doc:
          "Allowed relative drift per diffable metric, in percent (only \
           meaningful with $(b,--against)).")

(* Schema validation (and, with --against, regression diffing) of
   rumor-bench/1 files; the checks live in {!Rumor_obs.Benchdoc} so the
   test suite pins them. Exit codes: 0 clean; 1 for a schema-valid but
   vacuous document (empty experiments — a broken matrix run must not
   green a gate) or a regression against the baseline; 2 for malformed
   documents and IO errors. *)
let bench_check path against tolerance =
  let read_file p =
    let ic = open_in_bin p in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  let load p =
    match Json.of_string (read_file p) with
    | Error e ->
        Printf.eprintf "%s: does not parse: %s\n" p e;
        Error 2
    | Ok doc -> (
        match Benchdoc.validate doc with
        | [] -> Ok doc
        | es ->
            List.iter
              (fun e ->
                Printf.eprintf "%s: %s\n" p (Benchdoc.error_to_string e))
              es;
            if List.for_all (fun e -> e = Benchdoc.Empty_experiments) es then
              Error 1
            else Error 2)
  in
  match load path with
  | Error code -> code
  | Ok candidate -> (
      match against with
      | None ->
          Printf.printf "%s: valid rumor-bench/1 file\n" path;
          0
      | Some bpath -> (
          match load bpath with
          | Error _ -> 2 (* a broken baseline is a setup error, not a diff *)
          | Ok baseline ->
              let r =
                Benchdoc.diff ~baseline ~candidate ~tolerance_pct:tolerance
              in
              List.iter
                (fun n -> Printf.printf "note: %s\n" n)
                r.Benchdoc.notes;
              List.iter
                (fun f -> Printf.eprintf "FAIL: %s\n" f)
                r.Benchdoc.failures;
              if r.Benchdoc.failures = [] then begin
                Printf.printf "%s: within %.1f%% of %s\n" path tolerance
                  bpath;
                0
              end
              else begin
                Printf.eprintf "%s: %d regression(s) against %s\n" path
                  (List.length r.Benchdoc.failures)
                  bpath;
                1
              end))

let bench_check_cmd =
  let info =
    Cmd.info "bench-check"
      ~doc:
        "Validate that a telemetry file written by `bench/main.exe --json` \
         or `rumor matrix --json` conforms to the rumor-bench/1 schema, and \
         optionally diff its matrix experiments against a committed \
         baseline ($(b,--against))."
  in
  Cmd.v info
    Term.(const bench_check $ bench_file_arg $ against_arg $ tolerance_arg)

(* --- serve: the gossip service frontend --- *)

let serve socket workers queue retry_budget backoff_base_ms backoff_cap_ms
    deadline_factor round_budget_us heartbeat_timeout max_restarts
    restart_window drain_timeout quiet =
  let workers =
    if workers = 0 then Experiment.default_domains () else workers
  in
  match
    Service.config ~workers ~queue_capacity:queue ~retry_budget
      ~retry_backoff:
        (Rumor_core.Repair.backoff ~base:backoff_base_ms ~cap:backoff_cap_ms ())
      ~deadline_factor ~round_budget_us ~heartbeat_timeout_s:heartbeat_timeout
      ~max_restarts ~restart_window_s:restart_window ()
  with
  | exception Invalid_argument m ->
      prerr_endline ("rumor serve: " ^ m);
      2
  | config ->
      let transport =
        match socket with
        | Some path -> Server.Unix_socket path
        | None -> Server.Stdio
      in
      Server.run ~config ~drain_timeout_s:drain_timeout ~quiet transport

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Listen on a Unix domain socket instead of speaking NDJSON on \
           stdin/stdout. A stale socket file is replaced.")

let serve_workers_arg =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"W"
        ~doc:"Worker domains (0 = auto: recommended domain count capped at 8).")

let serve_queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission queue capacity. A full queue rejects submissions with a \
           retry_after_ms hint instead of buffering without bound.")

let retry_budget_arg =
  Arg.(
    value & opt int 3
    & info [ "retry-budget" ] ~docv:"R"
        ~doc:"Deadline/incomplete re-runs allowed per session.")

let backoff_base_arg =
  Arg.(
    value & opt int 25
    & info [ "backoff-base-ms" ] ~docv:"MS"
        ~doc:"Initial retry backoff window (randomized exponential).")

let backoff_cap_arg =
  Arg.(
    value & opt int 400
    & info [ "backoff-cap-ms" ] ~docv:"MS" ~doc:"Retry backoff window ceiling.")

let deadline_factor_arg =
  Arg.(
    value & opt float 6.
    & info [ "deadline-factor" ] ~docv:"C"
        ~doc:
          "Per-attempt wall deadline = C * ceil(log2 n) rounds at the \
           per-round budget — the paper's O(log n) bound as an SLO.")

let round_budget_arg =
  Arg.(
    value & opt float 2000.
    & info [ "round-budget-us" ] ~docv:"US"
        ~doc:"Declared wall budget per simulated round, microseconds.")

let heartbeat_arg =
  Arg.(
    value & opt float 0.25
    & info [ "heartbeat-timeout" ] ~docv:"S"
        ~doc:
          "Seconds without a heartbeat after which a busy worker is declared \
           wedged and deposed.")

let max_restarts_arg =
  Arg.(
    value & opt int 8
    & info [ "max-restarts" ] ~docv:"K"
        ~doc:
          "Worker restarts allowed inside the restart window before the \
           circuit breaker opens.")

let restart_window_arg =
  Arg.(
    value & opt float 60.
    & info [ "restart-window" ] ~docv:"S" ~doc:"Restart-intensity window.")

let drain_timeout_arg =
  Arg.(
    value & opt float 30.
    & info [ "drain-timeout" ] ~docv:"S"
        ~doc:
          "Hard-kill bound on graceful drain (SIGTERM / shutdown op / EOF): \
           past it, stragglers are cancelled and failed explicitly.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress stderr progress notes.")

let serve_cmd =
  let info =
    Cmd.info "serve"
      ~doc:
        "Run the broadcast service: many independent gossip sessions \
         multiplexed over supervised worker domains, with a bounded \
         admission queue, round-bound-derived deadlines, retry with \
         randomized backoff, crash/wedge failover and graceful drain. \
         Speaks NDJSON (submit/poll/cancel/stats/shutdown) on stdio or a \
         Unix socket."
  in
  Cmd.v info
    Term.(
      const serve $ socket_arg $ serve_workers_arg $ serve_queue_arg
      $ retry_budget_arg $ backoff_base_arg $ backoff_cap_arg
      $ deadline_factor_arg $ round_budget_arg $ heartbeat_arg
      $ max_restarts_arg $ restart_window_arg $ drain_timeout_arg $ quiet_arg)

(* --- load: the fault-injecting load generator --- *)

let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Json.String line
    | _ -> Json.Null
  with _ -> Json.Null

let load socket rate duration closed n d protocol topology seed alpha fanout
    link_loss burst_loss burst_len crash_every wedge_every wedge_ms
    settle_timeout json_path exp_id =
  let spec =
    {
      Session.default_spec with
      Session.n;
      d;
      protocol;
      topology;
      seed;
      alpha;
      fanout;
      link_loss;
      burst_loss;
      burst_len;
    }
  in
  match Session.validate_spec spec with
  | Error m ->
      prerr_endline ("rumor load: " ^ m);
      2
  | Ok spec -> (
      match
        Load.cfg ~rate ~duration_s:duration
          ?closed:(if closed = 0 then None else Some closed)
          ~spec ~crash_every ~wedge_every ~wedge_ms
          ~settle_timeout_s:settle_timeout ()
      with
      | exception Invalid_argument m ->
          prerr_endline ("rumor load: " ^ m);
          2
      | cfg -> (
          match Load.connect socket with
          | exception Unix.Unix_error (e, _, _) ->
              Printf.eprintf "rumor load: cannot connect to %s: %s\n" socket
                (Unix.error_message e);
              1
          | fd ->
              let r, span = Obs_metrics.timed (fun () -> Load.run cfg ~fd) in
              (try Unix.close fd with _ -> ());
              let q p = Latency.quantile r.Load.latency p *. 1e3 in
              Printf.printf
                "rumor-load: %.1fs wall, %d submitted, %d accepted, %d \
                 rejected\n"
                r.Load.wall_s r.Load.submitted r.Load.accepted r.Load.rejected;
              Printf.printf
                "  completed %d, failed %d, shed %d, cancelled %d, degraded \
                 %d\n"
                r.Load.completed r.Load.failed r.Load.shed r.Load.cancelled
                r.Load.degraded;
              Printf.printf "  lost %d, unacked %d, protocol errors %d\n"
                r.Load.lost r.Load.unacked r.Load.protocol_errors;
              Printf.printf
                "  latency p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms\n"
                (q 0.5) (q 0.9) (q 0.99)
                (Latency.max_seen r.Load.latency *. 1e3);
              Printf.printf
                "  achieved %.1f sessions/s (target %.1f/s), server ok: %b\n"
                r.Load.achieved_rate cfg.Load.rate r.Load.server_ok;
              (match json_path with
              | None -> ()
              | Some path ->
                  let span_fields =
                    match Obs_metrics.span_to_json span with
                    | Json.Obj fs -> fs
                    | _ -> []
                  in
                  let experiment =
                    Json.Obj
                      (("id", Json.String exp_id)
                       :: ( "title",
                            Json.String
                              "service load: sessions/sec and latency under \
                               fault injection" )
                       :: span_fields
                      @ [ ("data", Load.report_json cfg r) ])
                  in
                  let top =
                    Json.Obj
                      [
                        ("schema", Json.String "rumor-bench/1");
                        ("created_unix", Json.Float (Unix.gettimeofday ()));
                        ("git", git_describe ());
                        ("ocaml", Json.String Sys.ocaml_version);
                        ("word_size", Json.Int Sys.word_size);
                        ( "argv",
                          Json.List
                            (List.map
                               (fun a -> Json.String a)
                               (Array.to_list Sys.argv)) );
                        ("quick", Json.Bool false);
                        ("reps", Json.Int 1);
                        ("experiments", Json.List [ experiment ]);
                      ]
                  in
                  let oc = open_out path in
                  Json.to_channel ~minify:false oc top;
                  close_out oc;
                  Printf.printf "  wrote %s\n" path);
              if
                r.Load.lost = 0 && r.Load.unacked = 0
                && r.Load.protocol_errors = 0 && r.Load.server_ok
              then 0
              else 1))

let load_socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Serve endpoint to connect to.")

let rate_arg =
  Arg.(
    value & opt float 100.
    & info [ "rate" ] ~docv:"R"
        ~doc:
          "Open-loop target, sessions/sec: session k is submitted at \
           start + k/R whether or not the service keeps up.")

let duration_arg =
  Arg.(
    value & opt float 10.
    & info [ "duration" ] ~docv:"S" ~doc:"Load window, seconds.")

let closed_arg =
  Arg.(
    value & opt int 0
    & info [ "closed" ] ~docv:"C"
        ~doc:
          "Closed loop instead: keep C sessions outstanding (0 = open loop).")

let load_n_arg =
  Arg.(value & opt int 4096 & info [ "n" ] ~docv:"N" ~doc:"Nodes per session.")

let load_d_arg =
  Arg.(value & opt int 8 & info [ "d" ] ~docv:"D" ~doc:"Degree.")

let load_protocol_arg =
  Arg.(
    value
    & opt string "push-pull"
    & info [ "protocol" ] ~docv:"P"
        ~doc:"bef|bef-seq|push|pull|push-pull|quasirandom.")

let load_topology_arg =
  Arg.(
    value
    & opt string "implicit-regular"
    & info [ "topology" ] ~docv:"T" ~doc:"Topology name (see run --help).")

let load_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"S" ~doc:"Base seed; session k uses seed + k.")

let load_alpha_arg =
  Arg.(value & opt float 2.0 & info [ "alpha" ] ~docv:"A" ~doc:"bef alpha.")

let load_fanout_arg =
  Arg.(value & opt int 4 & info [ "fanout" ] ~docv:"F" ~doc:"bef fanout.")

let load_link_loss_arg =
  Arg.(
    value & opt float 0.
    & info [ "link-loss" ] ~docv:"P" ~doc:"Independent per-message loss.")

let load_burst_loss_arg =
  Arg.(
    value & opt float 0.
    & info [ "burst-loss" ] ~docv:"P"
        ~doc:"Stationary Gilbert–Elliott bursty-loss rate.")

let load_burst_len_arg =
  Arg.(
    value & opt float 4.
    & info [ "burst-len" ] ~docv:"L" ~doc:"Mean burst length, rounds.")

let crash_every_arg =
  Arg.(
    value & opt int 0
    & info [ "crash-every" ] ~docv:"K"
        ~doc:
          "Every K-th session asks the service to crash its worker domain \
           mid-run (0 = never) — exercises failover + restart.")

let wedge_every_arg =
  Arg.(
    value & opt int 0
    & info [ "wedge-every" ] ~docv:"K"
        ~doc:
          "Every K-th session wedges its worker past the watchdog timeout \
           (0 = never) — exercises deposition.")

let wedge_ms_arg =
  Arg.(
    value & opt float 400.
    & info [ "wedge-ms" ] ~docv:"MS" ~doc:"Wedge duration.")

let settle_arg =
  Arg.(
    value & opt float 30.
    & info [ "settle-timeout" ] ~docv:"S"
        ~doc:"Grace for stragglers after the load window.")

let load_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write a rumor-bench/1 document with the load report.")

let exp_id_arg =
  Arg.(
    value & opt string "E13"
    & info [ "id" ] ~docv:"ID" ~doc:"Experiment id for the JSON document.")

let load_cmd =
  let info =
    Cmd.info "load"
      ~doc:
        "Drive a rumor serve endpoint with generated sessions (open or \
         closed loop) under per-session fault injection, and account for \
         every submission: throughput, p50/p99 latency, rejections, \
         retries, and — the invariant under test — zero lost sessions. \
         Exits 0 iff accounting is airtight and the server monitor is \
         clean."
  in
  Cmd.v info
    Term.(
      const load $ load_socket_arg $ rate_arg $ duration_arg $ closed_arg
      $ load_n_arg $ load_d_arg $ load_protocol_arg $ load_topology_arg
      $ load_seed_arg $ load_alpha_arg $ load_fanout_arg $ load_link_loss_arg
      $ load_burst_loss_arg $ load_burst_len_arg $ crash_every_arg
      $ wedge_every_arg $ wedge_ms_arg $ settle_arg $ load_json_arg
      $ exp_id_arg)

(* --- matrix: declarative scenario grids with gates --- *)

let matrix_files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"MATRIX"
        ~doc:"Matrix scenario files; each becomes one experiment.")

let matrix_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write a rumor-bench/1 document with one experiment per matrix \
           file (feed it to `rumor bench-check --against`).")

let dry_run_arg =
  Arg.(
    value & flag
    & info [ "dry-run" ]
        ~doc:
          "Print each file's expanded cell table (coordinates, seeds, \
           gates) and exit without running anything.")

(* Service-mode cells: one [rumor load] run against an embedded server
   over a socketpair. The cell's scenario keys shape the session spec,
   its service keys the load generator; metric names match
   {!Matrix.service_metrics}. *)
let matrix_run_service (cell : Matrix.cell) =
  let s = cell.Matrix.scenario in
  let spec =
    {
      Session.default_spec with
      Session.n = s.Scenario.n;
      d = s.Scenario.d;
      protocol = s.Scenario.protocol;
      topology = s.Scenario.topology;
      seed = cell.Matrix.cell_seed;
      alpha = s.Scenario.alpha;
      fanout = s.Scenario.fanout;
      link_loss = s.Scenario.loss;
      burst_loss = s.Scenario.burst_loss;
      burst_len = s.Scenario.burst_len;
    }
  in
  let spec =
    match Session.validate_spec spec with
    | Ok spec -> spec
    | Error m ->
        failwith
          (Printf.sprintf "cell %d: invalid session spec: %s"
             cell.Matrix.cell_index m)
  in
  let getf key default =
    match List.assoc_opt key cell.Matrix.service with
    | Some v -> float_of_string v
    | None -> default
  in
  let geti key default =
    match List.assoc_opt key cell.Matrix.service with
    | Some v -> int_of_string v
    | None -> default
  in
  let closed = geti "closed" 0 in
  let cfg =
    Load.cfg ~rate:(getf "rate" 100.) ~duration_s:(getf "duration_s" 10.)
      ?closed:(if closed = 0 then None else Some closed)
      ~spec ~crash_every:(geti "crash_every" 0)
      ~wedge_every:(geti "wedge_every" 0)
      ~wedge_ms:(getf "wedge_ms" 400.)
      ~settle_timeout_s:(getf "settle_timeout_s" 30.)
      ()
  in
  let service_config =
    (* The breaker exists to stop pathological restart loops, not
       deliberate crash injection — size it to the injected cadence. *)
    Service.config
      ~workers:(geti "workers" 4)
      ~max_restarts:(geti "max_restarts" 500)
      ()
  in
  let r, server_clean = Load.run_in_process ~service_config cfg in
  let q p = Latency.quantile r.Load.latency p *. 1e3 in
  let i name v = (name, float_of_int v) in
  [
    ("wall_s", r.Load.wall_s);
    i "submitted" r.Load.submitted;
    i "accepted" r.Load.accepted;
    i "completed" r.Load.completed;
    i "failed" r.Load.failed;
    i "rejected" r.Load.rejected;
    i "shed" r.Load.shed;
    i "degraded" r.Load.degraded;
    i "cancelled" r.Load.cancelled;
    i "lost" r.Load.lost;
    i "unacked" r.Load.unacked;
    i "protocol_errors" r.Load.protocol_errors;
    ("achieved_rate", r.Load.achieved_rate);
    ("p50_ms", q 0.5);
    ("p99_ms", q 0.99);
    ("server_ok", if server_clean && r.Load.server_ok then 1. else 0.);
  ]

let matrix files json_path dry_run domains =
  let domains = if domains = 0 then None else Some domains in
  let rec parse_all acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest -> (
        match Matrix.parse_file f with
        | Error m -> Error (Printf.sprintf "%s: %s" f m)
        | Ok spec -> parse_all ((f, spec) :: acc) rest)
  in
  match parse_all [] files with
  | Error m ->
      prerr_endline ("rumor matrix: " ^ m);
      2
  | Ok specs when dry_run ->
      let bad = ref false in
      List.iter
        (fun (f, spec) ->
          match Matrix.dry_run_table spec with
          | Ok table -> Printf.printf "# %s\n%s\n" f table
          | Error m ->
              bad := true;
              Printf.eprintf "rumor matrix: %s: %s\n" f m)
        specs;
      if !bad then 2 else 0
  | Ok specs ->
      Experiment.with_interrupt_signals (fun () ->
          let errored = ref false in
          let any_truncated = ref false in
          let total_gates_failed = ref 0 in
          let experiments =
            List.filter_map
              (fun (f, spec) ->
                match
                  Obs_metrics.timed (fun () ->
                      Matrix.run ?domains ~run_service:matrix_run_service
                        spec)
                with
                | exception Failure m ->
                    errored := true;
                    Printf.eprintf "rumor matrix: %s: %s\n" f m;
                    None
                | Error m, _ ->
                    errored := true;
                    Printf.eprintf "rumor matrix: %s: %s\n" f m;
                    None
                | Ok rr, span ->
                    let failed = Matrix.gates_failed rr in
                    total_gates_failed := !total_gates_failed + failed;
                    if rr.Matrix.truncated then any_truncated := true;
                    Printf.printf
                      "%s: %s — %d cells, %d gate failure(s)%s\n" f
                      rr.Matrix.spec.Matrix.id
                      (List.length rr.Matrix.outcomes)
                      failed
                      (if rr.Matrix.truncated then " (truncated)" else "");
                    List.iter
                      (fun (o : Matrix.cell_outcome) ->
                        List.iter
                          (fun (g, observed, pass) ->
                            if not pass then
                              Printf.printf
                                "  FAIL cell %d {%s}: %s %s %g, got %g\n"
                                o.Matrix.cell.Matrix.cell_index
                                (String.concat ", "
                                   (List.map
                                      (fun (k, v) -> k ^ " = " ^ v)
                                      o.Matrix.cell.Matrix.coords))
                                g.Matrix.metric
                                (Matrix.op_to_string g.Matrix.op)
                                g.Matrix.bound observed)
                          o.Matrix.gate_results)
                      rr.Matrix.outcomes;
                    let span_fields =
                      match Obs_metrics.span_to_json span with
                      | Json.Obj fs -> fs
                      | _ -> []
                    in
                    Some
                      (Json.Obj
                         (("id", Json.String rr.Matrix.spec.Matrix.id)
                          :: ( "title",
                               Json.String rr.Matrix.spec.Matrix.title )
                          :: span_fields
                         @ [ ("data", Matrix.data_json rr) ])))
              specs
          in
          (match json_path with
          | None -> ()
          | Some path ->
              let reps =
                List.fold_left
                  (fun acc (_, spec) ->
                    max acc spec.Matrix.base.Scenario.reps)
                  1 specs
              in
              let top =
                Json.Obj
                  [
                    ("schema", Json.String "rumor-bench/1");
                    ("created_unix", Json.Float (Unix.gettimeofday ()));
                    ("git", git_describe ());
                    ("ocaml", Json.String Sys.ocaml_version);
                    ("word_size", Json.Int Sys.word_size);
                    ( "argv",
                      Json.List
                        (List.map
                           (fun a -> Json.String a)
                           (Array.to_list Sys.argv)) );
                    ("quick", Json.Bool false);
                    ("reps", Json.Int reps);
                    ("truncated", Json.Bool !any_truncated);
                    ("experiments", Json.List experiments);
                  ]
              in
              let oc = open_out path in
              Json.to_channel ~minify:false oc top;
              close_out oc;
              Printf.printf "wrote %s\n" path);
          if !errored then 2
          else if !total_gates_failed > 0 || !any_truncated then 1
          else 0)

let matrix_cmd =
  let info =
    Cmd.info "matrix"
      ~doc:
        "Run declarative scenario matrices: sweep/zip grids over scenario \
         keys, per-cell seeds, expectation gates, one shared domain pool \
         across cells. Emits a rumor-bench/1 document for regression \
         diffing with `rumor bench-check --against`. Exit 0: all gates \
         pass; 1: gate failures or an interrupted (truncated) run; 2: \
         parse or setup errors."
  in
  Cmd.v info
    Term.(
      const matrix $ matrix_files_arg $ matrix_json_arg $ dry_run_arg
      $ domains_arg)

(* --- main --- *)

let () =
  let info =
    Cmd.info "rumor" ~version:"1.0.0"
      ~doc:
        "Randomised broadcasting in random regular networks (Berenbrink, \
         Elsasser, Friedetzky)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            generate_cmd;
            broadcast_cmd;
            multi_cmd;
            async_cmd;
            sweep_cmd;
            churn_cmd;
            estimate_cmd;
            run_cmd;
            robustness_cmd;
            heal_cmd;
            chaos_cmd;
            replay_cmd;
            bench_check_cmd;
            serve_cmd;
            load_cmd;
            matrix_cmd;
          ]))
