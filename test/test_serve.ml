(* Tests for the rumor_serve service layer: the bounded mailbox, the
   wire codec and line framing, deadline math, and in-process Service
   end-to-end runs covering completion, crash failover, wedge
   deposition, overload rejection, cancellation, shedding tiers, exact
   retry budgets and clean shutdown with conservation reconciled. *)

module Json = Rumor_obs.Json
module Repair = Rumor_core.Repair
module Mailbox = Rumor_serve.Mailbox
module Session = Rumor_serve.Session
module Monitor = Rumor_serve.Monitor
module Service = Rumor_serve.Service
module Wire = Rumor_serve.Wire

(* Poll for a condition with a generous timeout: service machinery is
   asynchronous (worker domains + ticker), so tests wait for effects
   rather than sleeping fixed amounts. *)
let wait_for ?(timeout_s = 30.) pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else (
      Thread.delay 0.005;
      go ())
  in
  go ()

(* Small-n spec so a session costs well under a millisecond: the
   end-to-end tests below run dozens of sessions on whatever cores the
   CI box has. *)
let quick_spec =
  { Session.default_spec with Session.n = 256; d = 8; seed = 11 }

let test_config ?(workers = 2) ?(queue_capacity = 16) ?(retry_budget = 2)
    ?(max_restarts = 64) () =
  Service.config ~workers ~queue_capacity ~retry_budget ~max_restarts
    ~retry_backoff:(Repair.backoff ~base:5 ~cap:40 ())
    ~heartbeat_timeout_s:0.2 ()

let submit_ok svc spec =
  match Service.submit svc spec with
  | Service.Accepted s -> s
  | Service.Rejected { reason; _ } ->
      Alcotest.failf "unexpected rejection: %s" reason

let with_service ?config ?on_terminal f =
  let config = match config with Some c -> c | None -> test_config () in
  let svc = Service.create ?on_terminal config in
  Fun.protect
    ~finally:(fun () -> ignore (Service.shutdown svc ~timeout_s:30.))
    (fun () -> f svc)

(* --- Mailbox --- *)

let test_mailbox_bound () =
  let mb = Mailbox.create ~capacity:2 in
  Alcotest.(check bool) "put 1" true (Mailbox.try_put mb 1);
  Alcotest.(check bool) "put 2" true (Mailbox.try_put mb 2);
  Alcotest.(check bool) "put 3 refused at capacity" false
    (Mailbox.try_put mb 3);
  Alcotest.(check int) "length" 2 (Mailbox.length mb);
  (* force_put bypasses the bound for already-admitted work *)
  Mailbox.force_put mb 4;
  Alcotest.(check int) "forced past bound" 3 (Mailbox.length mb);
  Alcotest.(check int) "high water tracks the excess" 3
    (Mailbox.high_water mb);
  Alcotest.(check (option int)) "fifo take" (Some 1) (Mailbox.take_opt mb);
  Alcotest.(check (option int)) "fifo take" (Some 2) (Mailbox.take_opt mb);
  Alcotest.(check (option int)) "fifo take" (Some 4) (Mailbox.take_opt mb);
  Alcotest.(check (option int)) "empty non-blocking" None
    (Mailbox.take_opt mb)

let test_mailbox_close () =
  let mb = Mailbox.create ~capacity:4 in
  ignore (Mailbox.try_put mb 1);
  Mailbox.close mb;
  Alcotest.(check bool) "closed" true (Mailbox.is_closed mb);
  Alcotest.(check bool) "put after close refused" false
    (Mailbox.try_put mb 2);
  Alcotest.check_raises "force_put after close raises" Mailbox.Closed
    (fun () -> Mailbox.force_put mb 3);
  (* remaining elements drain before take reports exhaustion *)
  Alcotest.(check (option int)) "drains residue" (Some 1) (Mailbox.take mb);
  Alcotest.(check (option int)) "then None, not a hang" None (Mailbox.take mb);
  Mailbox.close mb (* idempotent *)

let test_mailbox_blocking_take_wakes_on_close () =
  let mb = Mailbox.create ~capacity:4 in
  let got = Atomic.make (Some 99) in
  let d = Domain.spawn (fun () -> Atomic.set got (Mailbox.take mb)) in
  Thread.delay 0.02;
  Mailbox.close mb;
  Domain.join d;
  Alcotest.(check (option int)) "blocked taker released with None" None
    (Atomic.get got)

let test_mailbox_concurrent_conservation () =
  (* 2 producer domains x 200 items through a tiny queue into 2
     consumer domains: nothing lost, nothing duplicated. *)
  let mb = Mailbox.create ~capacity:8 in
  let per = 200 in
  let producer base () =
    for i = 0 to per - 1 do
      Mailbox.force_put mb (base + i)
    done
  in
  let seen = Array.make (2 * per) 0 in
  let seen_mu = Mutex.create () in
  let consumer () =
    let rec go () =
      match Mailbox.take mb with
      | None -> ()
      | Some v ->
          Mutex.lock seen_mu;
          seen.(v) <- seen.(v) + 1;
          Mutex.unlock seen_mu;
          go ()
    in
    go ()
  in
  let cs = [ Domain.spawn consumer; Domain.spawn consumer ] in
  let ps = [ Domain.spawn (producer 0); Domain.spawn (producer per) ] in
  List.iter Domain.join ps;
  Mailbox.close mb;
  List.iter Domain.join cs;
  Array.iteri
    (fun i c ->
      if c <> 1 then Alcotest.failf "item %d seen %d times" i c)
    seen;
  Alcotest.(check bool) "high water bounded by forced burst" true
    (Mailbox.high_water mb <= 2 * per)

(* --- deadline math --- *)

let test_ceil_log2 () =
  Alcotest.(check int) "1" 0 (Session.ceil_log2 1);
  Alcotest.(check int) "2" 1 (Session.ceil_log2 2);
  Alcotest.(check int) "3" 2 (Session.ceil_log2 3);
  Alcotest.(check int) "4" 2 (Session.ceil_log2 4);
  Alcotest.(check int) "1024" 10 (Session.ceil_log2 1024);
  Alcotest.(check int) "1025" 11 (Session.ceil_log2 1025)

let test_deadline_derivation () =
  let spec = { quick_spec with Session.n = 1024; deadline_ms = None } in
  (* 6 * ceil_log2 1024 * 2000us = 6 * 10 * 2ms = 120ms *)
  Alcotest.(check (float 1e-9)) "derived from the round bound" 0.12
    (Session.deadline_s ~deadline_factor:6. ~round_budget_us:2000. spec);
  let explicit = { spec with Session.deadline_ms = Some 45. } in
  Alcotest.(check (float 1e-9)) "explicit overrides" 0.045
    (Session.deadline_s ~deadline_factor:6. ~round_budget_us:2000. explicit)

let prop_deadline_monotone_in_n =
  QCheck.Test.make ~count:100
    ~name:"derived deadline is monotone in n and scales with the factor"
    QCheck.(pair (int_range 2 65536) (int_range 1 12))
    (fun (n, factor) ->
      let f = float_of_int factor in
      let dl n =
        Session.deadline_s ~deadline_factor:f ~round_budget_us:2000.
          { quick_spec with Session.n; deadline_ms = None }
      in
      let base = dl n in
      base > 0.
      && dl (min Session.max_n (2 * n)) >= base
      && abs_float
           (Session.deadline_s ~deadline_factor:(2. *. f)
              ~round_budget_us:2000.
              { quick_spec with Session.n; deadline_ms = None }
           -. (2. *. base))
         < 1e-9)

(* --- spec validation (the wire is hostile) --- *)

let test_validate_spec () =
  let ok s =
    match Session.validate_spec s with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "expected valid: %s" e
  in
  let bad what s =
    match Session.validate_spec s with
    | Ok _ -> Alcotest.failf "expected invalid: %s" what
    | Error _ -> ()
  in
  ok quick_spec;
  bad "n too small" { quick_spec with Session.n = 1 };
  bad "n too large (materialised)"
    { quick_spec with Session.topology = "regular"; n = Session.max_n + 1 };
  ok { quick_spec with Session.n = Session.max_n + 2 };
  bad "n beyond the implicit frontier"
    { quick_spec with Session.n = Session.max_implicit_n + 2 };
  bad "odd n on implicit-regular" { quick_spec with Session.n = 257 };
  bad "degree" { quick_spec with Session.d = 0 };
  bad "unknown protocol" { quick_spec with Session.protocol = "udp" };
  bad "unknown topology" { quick_spec with Session.topology = "moebius" };
  bad "loss > 0.9" { quick_spec with Session.link_loss = 0.95 };
  bad "negative loss" { quick_spec with Session.link_loss = -0.1 };
  bad "deadline 0" { quick_spec with Session.deadline_ms = Some 0. };
  List.iter
    (fun protocol -> ok { quick_spec with Session.protocol })
    Session.protocols

(* --- wire codec --- *)

let test_wire_submit_round_trip () =
  let line =
    {|{"op":"submit","n":512,"d":8,"protocol":"bef","seed":7,"link_loss":0.1,"notify":true,"ref":"abc"}|}
  in
  match Wire.parse_request line with
  | Ok (Wire.Submit (spec, notify)) ->
      Alcotest.(check int) "n" 512 spec.Session.n;
      Alcotest.(check string) "protocol" "bef" spec.Session.protocol;
      Alcotest.(check bool) "notify" true notify;
      Alcotest.(check (option string)) "ref" (Some "abc")
        spec.Session.client_ref;
      Alcotest.(check (float 1e-9)) "loss" 0.1 spec.Session.link_loss
  | Ok _ -> Alcotest.fail "parsed as wrong op"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_wire_ops () =
  (match Wire.parse_request {|{"op":"poll","id":"s-42"}|} with
  | Ok (Wire.Poll 42) -> ()
  | _ -> Alcotest.fail "poll");
  (match Wire.parse_request {|{"op":"cancel","id":"s-7"}|} with
  | Ok (Wire.Cancel 7) -> ()
  | _ -> Alcotest.fail "cancel");
  (match Wire.parse_request {|{"op":"stats"}|} with
  | Ok Wire.Stats -> ()
  | _ -> Alcotest.fail "stats");
  (match Wire.parse_request {|{"op":"ping"}|} with
  | Ok Wire.Ping -> ()
  | _ -> Alcotest.fail "ping");
  match Wire.parse_request {|{"op":"shutdown"}|} with
  | Ok Wire.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown"

let test_wire_hostile_input () =
  let rejects what line =
    match Wire.parse_request line with
    | Ok _ -> Alcotest.failf "should reject: %s" what
    | Error _ -> ()
  in
  rejects "garbage" "not json at all";
  rejects "non-object" {|[1,2,3]|};
  rejects "missing op" {|{"n":512}|};
  rejects "unknown op" {|{"op":"exec"}|};
  rejects "unknown field is an error, not ignored"
    {|{"op":"submit","n":512,"bogus":1}|};
  rejects "misspelled field" {|{"op":"submit","protocl":"bef"}|};
  rejects "bad id shape" {|{"op":"poll","id":"42"}|};
  rejects "negative id" {|{"op":"poll","id":"s--3"}|};
  rejects "out-of-range spec" {|{"op":"submit","n":3}|};
  rejects "deep nesting capped"
    (String.concat "" (List.init 64 (fun _ -> "[")));
  (* id codec round trip *)
  Alcotest.(check (option int)) "id round trip" (Some 123)
    (Wire.id_of_string (Wire.id_to_string 123));
  Alcotest.(check (option int)) "id rejects junk" None
    (Wire.id_of_string "s-12x")

let test_linebuf_framing () =
  let lb = Wire.Linebuf.create () in
  let feed s = Wire.Linebuf.feed lb (Bytes.of_string s) 0 (String.length s) in
  Alcotest.(check (list string)) "partial line held back" [] (feed {|{"op":|});
  Alcotest.(check (list string))
    "completion + next partial" [ {|{"op":"ping"}|} ]
    (feed "\"ping\"}\n{\"op\"");
  Alcotest.(check (list string))
    "crlf tolerated, two lines in one chunk"
    [ {|{"op":"stats"}|}; "x" ]
    (feed ":\"stats\"}\r\nx\n");
  Alcotest.(check bool) "no overflow" false (Wire.Linebuf.overflowed lb)

let test_linebuf_overflow_poisons () =
  let lb = Wire.Linebuf.create ~max_line:64 () in
  let chunk = String.make 65 'a' in
  let out =
    Wire.Linebuf.feed lb (Bytes.of_string chunk) 0 (String.length chunk)
  in
  Alcotest.(check (list string)) "nothing surfaced" [] out;
  Alcotest.(check bool) "overflowed" true (Wire.Linebuf.overflowed lb);
  (* poisoned forever, even for well-formed input *)
  let out2 = Wire.Linebuf.feed lb (Bytes.of_string "ok\n") 0 3 in
  Alcotest.(check (list string)) "poisoned" [] out2

(* --- Monitor --- *)

let test_monitor_invariants () =
  let m = Monitor.create ~queue_bound:4 ~restart_cap:2 () in
  Monitor.incr m `Accepted;
  Monitor.note_terminal m ~already_terminal:false Session.Completed;
  Alcotest.(check bool) "conserved" true (Monitor.reconcile m ~in_flight:0);
  Alcotest.(check bool) "ok" true (Monitor.ok m);
  Monitor.note_terminal m ~already_terminal:true Session.Completed;
  Alcotest.(check bool) "double terminal is a violation" false (Monitor.ok m);
  let m2 = Monitor.create ~queue_bound:4 ~restart_cap:2 () in
  Monitor.observe_queue m2 (4 * 2 + 64 + 1);
  Alcotest.(check bool) "queue blow-out recorded" false (Monitor.ok m2);
  let m3 = Monitor.create ~queue_bound:4 ~restart_cap:2 () in
  Monitor.incr m3 `Accepted;
  Alcotest.(check bool) "lost session caught" false
    (Monitor.reconcile m3 ~in_flight:0)

(* --- Service end-to-end (in process) --- *)

let test_service_completes_sessions () =
  with_service (fun svc ->
      let sessions =
        List.init 12 (fun k ->
            submit_ok svc { quick_spec with Session.seed = 100 + k })
      in
      Alcotest.(check bool) "all reach a terminal state" true
        (wait_for (fun () -> List.for_all Session.is_terminal sessions));
      List.iter
        (fun s ->
          (match s.Session.state with
          | Session.Done Session.Completed -> ()
          | _ -> Alcotest.failf "session %d not completed" s.Session.id);
          match s.Session.stats with
          | Some st ->
              Alcotest.(check int) "full coverage" st.Session.population
                st.Session.informed
          | None -> Alcotest.fail "missing run stats")
        sessions;
      Alcotest.(check int) "in_flight drained" 0 (Service.in_flight svc);
      Alcotest.(check bool) "latency recorded per session" true
        (Rumor_obs.Latency.count (Service.latency svc) >= 12);
      Alcotest.(check bool) "monitor clean" true
        (Monitor.ok (Service.monitor svc)))

let test_service_on_terminal_fires_once () =
  let fired = Atomic.make 0 in
  with_service
    ~on_terminal:(fun _ -> Atomic.incr fired)
    (fun svc ->
      let sessions =
        List.init 6 (fun k ->
            submit_ok svc { quick_spec with Session.seed = 300 + k })
      in
      Alcotest.(check bool) "terminal" true
        (wait_for (fun () -> List.for_all Session.is_terminal sessions));
      Alcotest.(check bool) "callbacks delivered" true
        (wait_for (fun () -> Atomic.get fired >= 6)));
  Alcotest.(check int) "exactly once per session" 6 (Atomic.get fired)

let test_service_crash_failover () =
  with_service (fun svc ->
      let s =
        submit_ok svc { quick_spec with Session.crash_worker = true }
      in
      Alcotest.(check bool) "recovers to terminal" true
        (wait_for (fun () -> Session.is_terminal s));
      (match s.Session.state with
      | Session.Done Session.Completed -> ()
      | st -> Alcotest.failf "wanted completed, got %s" (Session.state_name st));
      Alcotest.(check bool) "failover recorded" true (s.Session.failovers >= 1);
      let m = Service.monitor svc in
      Alcotest.(check bool) "restart counted" true (Monitor.count m `Restarts >= 1);
      Alcotest.(check bool) "no invariant violated" true (Monitor.ok m))

let test_service_wedge_deposed () =
  with_service (fun svc ->
      let s = submit_ok svc { quick_spec with Session.wedge_ms = 600. } in
      Alcotest.(check bool) "deposed and failed over to terminal" true
        (wait_for (fun () -> Session.is_terminal s));
      (match s.Session.state with
      | Session.Done Session.Completed -> ()
      | st -> Alcotest.failf "wanted completed, got %s" (Session.state_name st));
      let m = Service.monitor svc in
      Alcotest.(check bool) "deposition counted" true
        (Monitor.count m `Deposed >= 1);
      Alcotest.(check bool) "failover counted" true
        (Monitor.count m `Failovers >= 1);
      Alcotest.(check bool) "monitor clean" true (Monitor.ok m))

let test_service_overload_rejects () =
  (* 1 worker wedged on a long session + capacity 2: the 4th submit
     must be refused with a positive retry hint, and the queue must
     never exceed its bound. *)
  let config =
    Service.config ~workers:1 ~queue_capacity:2 ~retry_budget:0
      ~heartbeat_timeout_s:5. ~max_restarts:64 ()
  in
  with_service ~config (fun svc ->
      let slow = { quick_spec with Session.wedge_ms = 500. } in
      let _running = submit_ok svc slow in
      (* wait until the worker has pulled the blocker off the queue, so
         the two fillers below account for the whole bound *)
      Alcotest.(check bool) "worker occupied" true
        (wait_for (fun () -> Service.queue_length svc = 0));
      let q1 = submit_ok svc quick_spec in
      let q2 = submit_ok svc quick_spec in
      ignore q1;
      ignore q2;
      (match Service.submit svc quick_spec with
      | Service.Rejected { reason; retry_after_ms } ->
          Alcotest.(check string) "overload reason" "overloaded" reason;
          Alcotest.(check bool) "retry hint positive" true (retry_after_ms > 0.)
      | Service.Accepted _ ->
          (* the queue may have been drained between submits; the bound
             must still hold *)
          Alcotest.(check bool) "queue within bound" true
            (Service.queue_length svc <= 2));
      Alcotest.(check bool) "rejections counted" true
        (Monitor.count (Service.monitor svc) `Rejected >= 0))

let test_service_invalid_spec_rejected () =
  with_service (fun svc ->
      match Service.submit svc { quick_spec with Session.n = 3 } with
      | Service.Rejected { retry_after_ms; _ } ->
          Alcotest.(check (float 1e-9)) "permanent: no retry hint" 0.
            retry_after_ms
      | Service.Accepted _ -> Alcotest.fail "invalid spec accepted")

let test_service_cancel () =
  let config =
    Service.config ~workers:1 ~queue_capacity:8 ~retry_budget:0
      ~heartbeat_timeout_s:5. ~max_restarts:64 ()
  in
  with_service ~config (fun svc ->
      (* Occupy the only worker so the next session stays Queued. *)
      let blocker = { quick_spec with Session.wedge_ms = 300. } in
      let _b = submit_ok svc blocker in
      Alcotest.(check bool) "blocker running" true
        (wait_for (fun () -> Service.queue_length svc = 0));
      let victim = submit_ok svc quick_spec in
      Alcotest.(check bool) "queued victim cancels" true
        (Service.cancel svc victim.Session.id);
      (match victim.Session.state with
      | Session.Done Session.Cancelled -> ()
      | st -> Alcotest.failf "wanted cancelled, got %s" (Session.state_name st));
      Alcotest.(check bool) "cancel is not idempotent-true" false
        (Service.cancel svc victim.Session.id);
      Alcotest.(check bool) "unknown id" false (Service.cancel svc 999_999))

let test_service_shedding_tiers () =
  (* Saturate a 1-worker service; once occupancy crosses the tiers,
     new sessions lose traces and bef downgrades to push&pull. *)
  let config =
    Service.config ~workers:1 ~queue_capacity:8 ~retry_budget:0
      ~shed_trace_at:0.25 ~shed_degrade_at:0.5 ~heartbeat_timeout_s:5.
      ~max_restarts:64 ()
  in
  with_service ~config (fun svc ->
      let blocker = { quick_spec with Session.wedge_ms = 500. } in
      let _b = submit_ok svc blocker in
      Alcotest.(check bool) "blocker running" true
        (wait_for (fun () -> Service.queue_length svc = 0));
      (* Fill past 50% of capacity 8. *)
      let queued =
        List.init 5 (fun k ->
            submit_ok svc
              {
                quick_spec with
                Session.seed = 500 + k;
                protocol = "bef";
                collect_trace = true;
              })
      in
      Alcotest.(check bool) "tier escalated" true (Service.tier svc >= 2);
      let last = List.nth queued 4 in
      Alcotest.(check bool) "trace shed at depth" false
        last.Session.trace_enabled;
      Alcotest.(check string) "bef degraded to push-pull" "push-pull"
        last.Session.protocol;
      Alcotest.(check bool) "marked degraded" true last.Session.degraded;
      Alcotest.(check bool) "degraded counted" true
        (Monitor.count (Service.monitor svc) `Degraded >= 1))

let test_service_exact_retry_budget () =
  (* deadline_ms:0.001-ish is invalid (min 1ms float allowed?), use an
     impossible 1ms deadline on a large-enough n that every attempt
     expires: the session must fail after exactly retry_budget + 1
     attempts and retry_budget recorded retries. *)
  let budget = 2 in
  let config =
    Service.config ~workers:2 ~queue_capacity:8 ~retry_budget:budget
      ~retry_backoff:(Repair.backoff ~base:1 ~cap:2 ())
      ~max_restarts:64 ()
  in
  with_service ~config (fun svc ->
      let spec =
        {
          quick_spec with
          Session.n = 16384;
          seed = 77;
          deadline_ms = Some 1.;
        }
      in
      let s = submit_ok svc spec in
      Alcotest.(check bool) "terminates" true
        (wait_for (fun () -> Session.is_terminal s));
      (match s.Session.state with
      | Session.Done (Session.Failed msg) ->
          Alcotest.(check bool) "mentions deadline" true
            (String.length msg > 0)
      | st -> Alcotest.failf "wanted failed, got %s" (Session.state_name st));
      Alcotest.(check int) "retries = budget" budget s.Session.retries;
      Alcotest.(check int) "attempts = budget + 1" (budget + 1)
        s.Session.attempts;
      Alcotest.(check bool) "retries counted" true
        (Monitor.count (Service.monitor svc) `Retries >= budget))

let test_service_shutdown_clean () =
  let svc = Service.create (test_config ()) in
  let sessions =
    List.init 8 (fun k ->
        submit_ok svc { quick_spec with Session.seed = 700 + k })
  in
  let clean = Service.shutdown svc ~timeout_s:30. in
  Alcotest.(check bool) "shutdown clean" true clean;
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "session %d terminal after shutdown" s.Session.id)
        true (Session.is_terminal s))
    sessions;
  (* conservation: accepted = terminal, nothing lost *)
  let m = Service.monitor svc in
  Alcotest.(check bool) "reconciled" true (Monitor.reconcile m ~in_flight:0);
  Alcotest.(check int) "terminal total" 8 (Monitor.terminal_total m);
  (match Service.submit svc quick_spec with
  | Service.Rejected { reason; _ } ->
      Alcotest.(check string) "post-shutdown submits refused" "draining" reason
  | Service.Accepted _ -> Alcotest.fail "accepted after shutdown");
  match Service.stats_json svc with
  | Json.Obj fields ->
      Alcotest.(check bool) "stats json has monitor" true
        (List.mem_assoc "monitor" fields)
  | _ -> Alcotest.fail "stats_json not an object"

let test_service_stress_with_faults () =
  (* The in-process analogue of the CI smoke: a burst of sessions with
     crash + wedge + loss injection sprinkled in; every accepted
     session must reach exactly one terminal state. *)
  let config =
    Service.config ~workers:3 ~queue_capacity:64 ~retry_budget:3
      ~retry_backoff:(Repair.backoff ~base:2 ~cap:10 ())
      ~heartbeat_timeout_s:0.2 ~max_restarts:256 ()
  in
  with_service ~config (fun svc ->
      let sessions =
        List.init 30 (fun k ->
            let spec =
              {
                quick_spec with
                Session.seed = 900 + k;
                link_loss = (if k mod 3 = 0 then 0.2 else 0.);
                crash_worker = k mod 7 = 0;
                wedge_ms = (if k mod 11 = 5 then 400. else 0.);
              }
            in
            submit_ok svc spec)
      in
      Alcotest.(check bool) "all 30 reach terminal despite faults" true
        (wait_for ~timeout_s:60. (fun () ->
             List.for_all Session.is_terminal sessions));
      let m = Service.monitor svc in
      Alcotest.(check bool) "conservation holds" true
        (Monitor.reconcile m ~in_flight:(Service.in_flight svc));
      Alcotest.(check bool) "no invariant violated" true (Monitor.ok m);
      Alcotest.(check int) "terminal = accepted" 30 (Monitor.terminal_total m))

(* --- backoff gap sharing (service side of the Repair policy) --- *)

let prop_retry_gap_in_window =
  QCheck.Test.make ~count:200
    ~name:"service retry gaps lie in the Repair backoff envelope"
    QCheck.(triple (int_range 1 50) (int_range 0 8) small_int)
    (fun (base, attempt, seed) ->
      let b = Repair.backoff ~base ~cap:(base * 16) () in
      let rng = Rumor_rng.Rng.create (seed + 1) in
      let gap = Repair.backoff_gap b ~rng ~attempt in
      let w = Repair.backoff_window b ~attempt in
      gap >= 1 && gap <= w)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_deadline_monotone_in_n; prop_retry_gap_in_window ]

let () =
  Alcotest.run "rumor_serve"
    [
      ( "mailbox",
        [
          Alcotest.test_case "bound + force_put" `Quick test_mailbox_bound;
          Alcotest.test_case "close semantics" `Quick test_mailbox_close;
          Alcotest.test_case "close wakes blocked taker" `Quick
            test_mailbox_blocking_take_wakes_on_close;
          Alcotest.test_case "concurrent conservation" `Slow
            test_mailbox_concurrent_conservation;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
          Alcotest.test_case "derivation" `Quick test_deadline_derivation;
        ] );
      ( "spec", [ Alcotest.test_case "validation" `Quick test_validate_spec ] );
      ( "wire",
        [
          Alcotest.test_case "submit round trip" `Quick
            test_wire_submit_round_trip;
          Alcotest.test_case "ops" `Quick test_wire_ops;
          Alcotest.test_case "hostile input" `Quick test_wire_hostile_input;
          Alcotest.test_case "linebuf framing" `Quick test_linebuf_framing;
          Alcotest.test_case "linebuf overflow poisons" `Quick
            test_linebuf_overflow_poisons;
        ] );
      ( "monitor",
        [ Alcotest.test_case "invariants" `Quick test_monitor_invariants ] );
      ( "service",
        [
          Alcotest.test_case "completes sessions" `Quick
            test_service_completes_sessions;
          Alcotest.test_case "on_terminal exactly once" `Quick
            test_service_on_terminal_fires_once;
          Alcotest.test_case "crash failover" `Slow test_service_crash_failover;
          Alcotest.test_case "wedge deposition" `Slow
            test_service_wedge_deposed;
          Alcotest.test_case "overload rejects" `Slow
            test_service_overload_rejects;
          Alcotest.test_case "invalid spec rejected" `Quick
            test_service_invalid_spec_rejected;
          Alcotest.test_case "cancel" `Slow test_service_cancel;
          Alcotest.test_case "shedding tiers" `Slow
            test_service_shedding_tiers;
          Alcotest.test_case "exact retry budget" `Slow
            test_service_exact_retry_budget;
          Alcotest.test_case "clean shutdown" `Quick
            test_service_shutdown_clean;
          Alcotest.test_case "stress with faults" `Slow
            test_service_stress_with_faults;
        ] );
      ("properties", qcheck_cases);
    ]
