(* Tests for the chaos layer: recurring strikes and partition windows
   in the fault plan, the runtime invariant monitor, partition
   cut-stacking enforcement, the new scenario keys with raw-text parse
   errors, and the chaos soak harness (digests, shrinking, repro
   artifacts). *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Regular = Rumor_gen.Regular
module Fault = Rumor_sim.Fault
module Invariant = Rumor_sim.Invariant
module Engine = Rumor_sim.Engine
module Topology = Rumor_sim.Topology
module Overlay = Rumor_p2p.Overlay
module Partition = Rumor_p2p.Partition
module Scenario = Rumor_cli.Scenario
module Chaos = Rumor_cli.Chaos
module Run = Rumor_core.Run
module Algorithm = Rumor_core.Algorithm
module Params = Rumor_core.Params

(* --- recurring strikes ------------------------------------------- *)

let test_strike_fires () =
  let s = Fault.strike ~at_round:3 ~count:1 () in
  Alcotest.(check bool) "one-shot at 3" true (Fault.strike_fires s ~round:3);
  Alcotest.(check bool) "one-shot not 6" false (Fault.strike_fires s ~round:6);
  let r = Fault.strike ~every:2 ~at_round:3 ~count:1 () in
  List.iter
    (fun (round, want) ->
      Alcotest.(check bool)
        (Printf.sprintf "every-2 round %d" round)
        want
        (Fault.strike_fires r ~round))
    [ (1, false); (2, false); (3, true); (4, false); (5, true); (7, true) ]

let test_strike_every_validation () =
  Alcotest.check_raises "every < 0"
    (Invalid_argument "Fault.strike: every must be >= 0") (fun () ->
      ignore (Fault.strike ~every:(-1) ~at_round:1 ~count:1 ()))

let test_partition_validation () =
  Alcotest.check_raises "split_at < 1"
    (Invalid_argument "Fault.partition: split_at must be >= 1") (fun () ->
      ignore (Fault.partition ~split_at:0 ~heal_at:2 ()));
  Alcotest.check_raises "heal_at <= split_at"
    (Invalid_argument "Fault.partition: heal_at must be > split_at") (fun () ->
      ignore (Fault.partition ~split_at:3 ~heal_at:3 ()))

(* A fault-plan partition window blocks every cross-side delivery while
   open: run push on K2 (one edge) with the window covering the whole
   horizon and force the two nodes onto different sides. Fraction 1
   puts every node on the minority side (same side!), fraction 0 ditto,
   so instead check the complement: fraction 0 never blocks. *)
let test_partition_window_same_side () =
  let g = Rumor_gen.Classic.complete 2 in
  let run fraction =
    let fault =
      Fault.plan
        ~partition:(Fault.partition ~fraction ~split_at:1 ~heal_at:100 ())
        ()
    in
    let rng = Rng.create 42 in
    Engine.run ~fault ~rng
      ~topology:(Topology.of_graph g)
      ~protocol:(Rumor_core.Baselines.push_pull ~horizon:20 ())
      ~sources:[ 0 ] ()
  in
  (* fraction 0: both nodes on the majority side — nothing is blocked. *)
  Alcotest.(check int) "fraction 0 informs both" 2 (run 0.).Engine.informed

(* --- invariant monitor ------------------------------------------- *)

let test_invariant_basics () =
  let m = Invariant.create ~limit:2 () in
  Alcotest.(check bool) "fresh monitor ok" true (Invariant.ok m);
  Invariant.tick m;
  Invariant.tick m;
  Alcotest.(check int) "two rounds checked" 2 (Invariant.rounds_checked m);
  Invariant.record m ~check:"census" ~round:1 ~detail:"a";
  Invariant.record m ~check:"census" ~round:2 ~detail:"b";
  Invariant.record m ~check:"census" ~round:3 ~detail:"c";
  Alcotest.(check bool) "not ok" false (Invariant.ok m);
  Alcotest.(check int) "all counted" 3 (Invariant.count m);
  Alcotest.(check int)
    "stored capped at limit" 2
    (List.length (Invariant.violations m));
  (* Oldest first, newest dropped beyond the cap. *)
  (match Invariant.violations m with
  | v :: _ -> Alcotest.(check string) "oldest kept first" "a" v.Invariant.detail
  | [] -> Alcotest.fail "no violations stored");
  Alcotest.check_raises "limit < 1"
    (Invalid_argument "Invariant.create: limit must be >= 1") (fun () ->
      ignore (Invariant.create ~limit:0 ()))

(* A clean run under the monitor reports zero violations — across the
   incremental-census path, the churn (full recount) path and repair. *)
let test_monitor_clean_run () =
  let rng = Rng.create 7 in
  let g = Regular.sample_connected ~rng ~n:256 ~d:4 Regular.Pairing in
  let m = Invariant.create () in
  let r =
    Engine.run ~monitor:m ~rng
      ~topology:(Topology.of_graph g)
      ~protocol:(Algorithm.make (Params.make ~n_estimate:256 ~d:4 ()))
      ~sources:[ 0 ] ()
  in
  Alcotest.(check bool) "run completed" true (Engine.success r);
  Alcotest.(check bool) "no violations" true (Invariant.ok m);
  Alcotest.(check bool) "rounds checked" true (Invariant.rounds_checked m > 0)

(* The monitor draws no randomness: a run with the monitor installed is
   bit-identical to the same run without it. *)
let test_monitor_transparent () =
  let go monitor =
    let rng = Rng.create 11 in
    let g = Regular.sample_connected ~rng ~n:128 ~d:4 Regular.Pairing in
    let r =
      Engine.run ?monitor ~rng
        ~topology:(Topology.of_graph g)
        ~protocol:(Rumor_core.Baselines.push_pull ~horizon:30 ())
        ~sources:[ 0 ] ()
    in
    (r.Engine.rounds, Engine.transmissions r, r.Engine.informed)
  in
  Alcotest.(check (triple int int int))
    "monitor is observationally transparent" (go None)
    (go (Some (Invariant.create ())))

(* --- partition cut stacking -------------------------------------- *)

let overlay_of ~seed ~n ~d =
  let rng = Rng.create seed in
  let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  (Overlay.of_graph ~capacity:n g, rng)

let test_partition_stacking_raises () =
  let o, rng = overlay_of ~seed:3 ~n:64 ~d:4 in
  let cut = Partition.split_random o ~rng ~fraction:0.5 in
  Alcotest.(check bool) "nonempty cut" true (Partition.cut_size cut > 0);
  Alcotest.check_raises "second split blocked"
    (Invalid_argument
       "Partition.split_by: overlay already has an outstanding unhealed cut")
    (fun () -> ignore (Partition.split_random o ~rng ~fraction:0.5));
  Partition.heal o cut;
  Alcotest.(check int) "cut_size 0 after heal" 0 (Partition.cut_size cut);
  (* Healing releases the overlay: a new split is allowed again. *)
  let cut2 = Partition.split_random o ~rng ~fraction:0.5 in
  Partition.heal o cut2

let test_partition_empty_cut_never_blocks () =
  let o, _rng = overlay_of ~seed:4 ~n:32 ~d:4 in
  (* side = const false: nobody on the minority side, no crossing edge. *)
  let c1 = Partition.split_by o ~side:(fun _ -> false) in
  Alcotest.(check int) "empty cut" 0 (Partition.cut_size c1);
  let c2 = Partition.split_by o ~side:(fun _ -> false) in
  Alcotest.(check int) "still empty" 0 (Partition.cut_size c2);
  ignore (c1, c2)

let test_heal_skips_dead_endpoints () =
  let o, rng = overlay_of ~seed:5 ~n:64 ~d:4 in
  let victim = 0 in
  let before = Overlay.degree o victim in
  Alcotest.(check int) "4-regular before" 4 before;
  let cut = Partition.split_random o ~rng ~fraction:0.5 in
  Overlay.deactivate o victim;
  Partition.heal o cut;
  Alcotest.(check bool) "victim stays dead" false (Overlay.is_alive o victim);
  (* No live node regained an edge towards the dead endpoint. *)
  for v = 1 to 63 do
    if Overlay.is_alive o v then
      List.iter
        (fun w ->
          if w = victim then Alcotest.fail "edge to dead endpoint re-added")
        (Overlay.neighbors o v)
  done

let prop_cut_heal_degree_sequence =
  QCheck.Test.make ~count:100
    ~name:"cut-then-heal restores the exact degree sequence"
    QCheck.(pair small_int (int_range 0 100))
    (fun (seed, pct) ->
      let o, rng = overlay_of ~seed:(succ seed) ~n:64 ~d:4 in
      let degrees () =
        List.init (Overlay.capacity o) (fun v -> Overlay.degree o v)
      in
      let before = degrees () in
      let fraction = float_of_int pct /. 100. in
      let cut = Partition.split_random o ~rng ~fraction in
      Partition.heal o cut;
      degrees () = before)

(* --- scenario keys and error text -------------------------------- *)

let scenario_exn text =
  match Scenario.parse text with
  | Ok s -> s
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let test_scenario_new_keys () =
  let s =
    scenario_exn
      "strike_every = 2\n\
       crash_adversary = frontier\n\
       crash_count = 8\n\
       crash_round = 3\n\
       partition_round = 4\n\
       heal_round = 9\n\
       partition_fraction = 0.25\n\
       join_prob = 0.1\n\
       leave_prob = 0.2\n"
  in
  Alcotest.(check int) "strike_every" 2 s.Scenario.strike_every;
  Alcotest.(check int) "partition_round" 4 s.Scenario.partition_round;
  Alcotest.(check int) "heal_round" 9 s.Scenario.heal_round;
  Alcotest.(check (float 0.)) "fraction" 0.25 s.Scenario.partition_fraction;
  Alcotest.(check (float 0.)) "join" 0.1 s.Scenario.join_prob;
  Alcotest.(check (float 0.)) "leave" 0.2 s.Scenario.leave_prob;
  let fault = Scenario.fault_plan s in
  Alcotest.(check bool) "plan has node faults" true
    (Fault.has_node_faults fault)

let check_error text expected_substrings =
  match Scenario.parse text with
  | Ok _ -> Alcotest.failf "parse accepted %S" text
  | Error e ->
      List.iter
        (fun sub ->
          let contains s sub =
            let n = String.length s and m = String.length sub in
            let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
            go 0
          in
          if not (contains e sub) then
            Alcotest.failf "error %S misses %S" e sub)
        expected_substrings

let test_scenario_error_carries_raw_text () =
  (* The message must name the line number and quote the raw line. *)
  check_error "n = 1024\nstrike_every = banana\n"
    [ "line 2"; "strike_every = banana" ];
  check_error "partition_fraction = 1.5\n"
    [ "line 1"; "partition_fraction = 1.5" ];
  check_error "partition_round = 5\nheal_round = 4\n"
    [ "heal_round 4"; "partition_round 5" ]

(* --- partition window delays but does not prevent completion ------ *)

let pinned_scenario extra =
  scenario_exn
    ("seed = 5\nn = 2048\nd = 8\nprotocol = bef\nalpha = 2.0\nreps = 1\n\
      domains = 1\n" ^ extra)

let test_partition_window_pinned () =
  let base = Chaos.run_one (pinned_scenario "") in
  let part =
    Chaos.run_one
      (pinned_scenario
         "partition_round = 3\nheal_round = 8\npartition_fraction = 0.5\n")
  in
  Alcotest.(check bool) "baseline completes" true base.Chaos.completed;
  Alcotest.(check bool) "partition run completes" true part.Chaos.completed;
  Alcotest.(check string)
    "baseline digest pinned" "a860aab76673c402" base.Chaos.digest;
  Alcotest.(check string)
    "partition digest pinned" "770f6b59f7fd4d75" part.Chaos.digest;
  Alcotest.(check bool) "both clean" true
    ((not (Chaos.failed base)) && not (Chaos.failed part));
  (* Delay, measured on the underlying trajectory: the partition run
     needs strictly more rounds to reach everyone. *)
  let completion s =
    let rng = Rng.create s.Scenario.seed in
    let g =
      Scenario.make_graph ~rng ~topology:s.Scenario.topology ~n:s.Scenario.n
        ~d:s.Scenario.d
    in
    let protocol =
      Scenario.make_protocol ~protocol:s.Scenario.protocol ~n:(Graph.n g)
        ~d:s.Scenario.d ~alpha:s.Scenario.alpha ~fanout:s.Scenario.fanout ()
    in
    let r =
      Engine.run ~fault:(Scenario.fault_plan s) ~rng
        ~topology:(Topology.of_graph g) ~protocol
        ~sources:[ Run.random_source rng g ]
        ()
    in
    match r.Engine.completion_round with
    | Some c -> c
    | None -> Alcotest.fail "no completion round"
  in
  (* A window opening at round 1 (only the source knows) keeps the far
     side dark until the heal, so completion cannot beat heal_round. *)
  let c0 = completion (pinned_scenario "") in
  let c1 =
    completion
      (pinned_scenario
         "partition_round = 1\nheal_round = 18\npartition_fraction = 0.5\n")
  in
  Alcotest.(check bool)
    (Printf.sprintf "window delays completion (%d > %d)" c1 c0)
    true (c1 > c0);
  Alcotest.(check bool)
    (Printf.sprintf "completion after the heal (%d >= 18)" c1)
    true (c1 >= 18)

(* --- chaos harness ------------------------------------------------ *)

let test_run_one_deterministic () =
  let s = Chaos.sample (Rng.create 99) in
  let a = Chaos.run_one s in
  let b = Chaos.run_one s in
  Alcotest.(check string) "same digest" a.Chaos.digest b.Chaos.digest;
  let c = Chaos.run_one ~check:false s in
  Alcotest.(check string)
    "digest independent of the monitor" a.Chaos.digest c.Chaos.digest;
  Alcotest.(check int) "monitor off checks nothing" 0 c.Chaos.checked

let test_sample_deterministic () =
  let take seed =
    let rng = Rng.create seed in
    List.init 5 (fun _ -> Chaos.sample rng)
  in
  Alcotest.(check bool) "same seed, same configs" true (take 17 = take 17);
  Alcotest.(check bool) "different seed, different configs" true
    (take 17 <> take 18)

let test_scenario_text_roundtrip () =
  let rng = Rng.create 23 in
  for _ = 1 to 20 do
    let s = Chaos.sample rng in
    match Scenario.parse (Chaos.scenario_text s) with
    | Ok s' ->
        if s' <> s then
          Alcotest.failf "scenario_text round-trip changed:\n%s"
            (Chaos.scenario_text s)
    | Error e -> Alcotest.failf "scenario_text does not re-parse: %s" e
  done

let test_artifact_roundtrip () =
  let s = Chaos.sample (Rng.create 31) in
  let o = Chaos.run_one s in
  let text =
    Chaos.artifact ~notes:[ "note one"; "note two" ] ~digest:o.Chaos.digest s
  in
  match Chaos.parse_artifact text with
  | Error e -> Alcotest.failf "artifact does not parse: %s" e
  | Ok (s', d) ->
      Alcotest.(check string) "digest preserved" o.Chaos.digest d;
      Alcotest.(check bool) "scenario preserved" true (s' = s)

let test_artifact_errors () =
  (match Chaos.parse_artifact "n = 64\n" with
  | Error e ->
      Alcotest.(check bool)
        "missing digest reported" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "accepted artifact without digest");
  match Chaos.parse_artifact "expect_digest = nope\nn = 64\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed digest"

let test_replay_matches_artifact () =
  let s = Chaos.sample (Rng.create 47) in
  let o = Chaos.run_one s in
  let text = Chaos.artifact ~digest:o.Chaos.digest s in
  match Chaos.parse_artifact text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok (s', expect) ->
      let o' = Chaos.run_one s' in
      Alcotest.(check string) "replay digest matches" expect o'.Chaos.digest

let test_shrink_greedy () =
  (* Synthetic failure predicate: no simulation involved. *)
  let s = { (Chaos.sample (Rng.create 3)) with Scenario.n = 512 } in
  let fails (c : Scenario.t) = c.Scenario.n >= 128 in
  let small = Chaos.shrink ~fails s in
  Alcotest.(check int) "halved to the smallest failing n" 128
    small.Scenario.n;
  (* Every fault axis the predicate ignores was zeroed away. *)
  Alcotest.(check (float 0.)) "loss zeroed" 0. small.Scenario.loss;
  Alcotest.(check int) "partition zeroed" 0 small.Scenario.partition_round;
  Alcotest.(check (float 0.)) "churn zeroed" 0. small.Scenario.join_prob;
  (* A predicate nothing satisfies leaves the scenario unchanged. *)
  let same = Chaos.shrink ~fails:(fun _ -> false) s in
  Alcotest.(check bool) "no shrink without failure" true (same = s)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_cut_heal_degree_sequence ]

let () =
  Alcotest.run "chaos"
    [
      ( "fault-extensions",
        [
          Alcotest.test_case "strike_fires schedule" `Quick test_strike_fires;
          Alcotest.test_case "strike every validation" `Quick
            test_strike_every_validation;
          Alcotest.test_case "partition validation" `Quick
            test_partition_validation;
          Alcotest.test_case "partition window fraction 0" `Quick
            test_partition_window_same_side;
        ] );
      ( "invariant-monitor",
        [
          Alcotest.test_case "record/limit/ok" `Quick test_invariant_basics;
          Alcotest.test_case "clean run has no violations" `Quick
            test_monitor_clean_run;
          Alcotest.test_case "monitor is transparent" `Quick
            test_monitor_transparent;
        ] );
      ( "partition-overlay",
        [
          Alcotest.test_case "stacking raises" `Quick
            test_partition_stacking_raises;
          Alcotest.test_case "empty cut never blocks" `Quick
            test_partition_empty_cut_never_blocks;
          Alcotest.test_case "heal skips dead endpoints" `Quick
            test_heal_skips_dead_endpoints;
        ]
        @ qcheck_cases );
      ( "scenario-keys",
        [
          Alcotest.test_case "new keys parse" `Quick test_scenario_new_keys;
          Alcotest.test_case "errors carry line and raw text" `Quick
            test_scenario_error_carries_raw_text;
        ] );
      ( "partition-window",
        [
          Alcotest.test_case "delays but completes (pinned)" `Quick
            test_partition_window_pinned;
        ] );
      ( "chaos-harness",
        [
          Alcotest.test_case "run_one deterministic" `Quick
            test_run_one_deterministic;
          Alcotest.test_case "sample deterministic" `Quick
            test_sample_deterministic;
          Alcotest.test_case "scenario_text round-trips" `Quick
            test_scenario_text_roundtrip;
          Alcotest.test_case "artifact round-trips" `Quick
            test_artifact_roundtrip;
          Alcotest.test_case "artifact error paths" `Quick test_artifact_errors;
          Alcotest.test_case "replay matches artifact" `Quick
            test_replay_matches_artifact;
          Alcotest.test_case "greedy shrink" `Quick test_shrink_greedy;
        ] );
    ]
