(* Tests for the rumor_p2p library: dynamic overlays, degree-preserving
   churn, the edge-switch chain, and the replicated database. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Traversal = Rumor_graph.Traversal
module Classic = Rumor_gen.Classic
module Regular = Rumor_gen.Regular
module Engine = Rumor_sim.Engine
module Overlay = Rumor_p2p.Overlay
module Churn = Rumor_p2p.Churn
module Switcher = Rumor_p2p.Switcher
module Replica = Rumor_p2p.Replica

let regular_overlay ~seed ~n ~d ~capacity =
  let rng = Rng.create seed in
  let g = Regular.sample_connected ~rng ~n ~d Regular.Pairing in
  Overlay.of_graph ~capacity g

let degrees_live o =
  List.filter_map
    (fun v -> if Overlay.is_alive o v then Some (Overlay.degree o v) else None)
    (List.init (Overlay.capacity o) (fun i -> i))

(* --- Overlay --- *)

let test_overlay_create_empty () =
  let o = Overlay.create ~capacity:10 in
  Alcotest.(check int) "capacity" 10 (Overlay.capacity o);
  Alcotest.(check int) "no nodes" 0 (Overlay.node_count o);
  Alcotest.(check int) "no edges" 0 (Overlay.edge_count o);
  Alcotest.(check bool) "invariant" true (Overlay.invariant o)

let test_overlay_activate () =
  let o = Overlay.create ~capacity:3 in
  let a = Overlay.activate o in
  let b = Overlay.activate o in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "two nodes" 2 (Overlay.node_count o);
  Alcotest.(check bool) "alive" true (Overlay.is_alive o a);
  ignore (Overlay.activate o);
  Alcotest.check_raises "at capacity" (Failure "Overlay.activate: at capacity")
    (fun () -> ignore (Overlay.activate o))

let test_overlay_edges () =
  let o = Overlay.create ~capacity:4 in
  let a = Overlay.activate o and b = Overlay.activate o in
  Overlay.add_edge o a b;
  Alcotest.(check int) "degree a" 1 (Overlay.degree o a);
  Alcotest.(check int) "one edge" 1 (Overlay.edge_count o);
  Alcotest.(check (list int)) "neighbors" [ b ] (Overlay.neighbors o a);
  Alcotest.(check bool) "invariant" true (Overlay.invariant o);
  Alcotest.(check bool) "remove succeeds" true (Overlay.remove_edge o a b);
  Alcotest.(check int) "no edges" 0 (Overlay.edge_count o);
  Alcotest.(check bool) "remove absent fails" false (Overlay.remove_edge o a b)

let test_overlay_parallel_edges () =
  let o = Overlay.create ~capacity:2 in
  let a = Overlay.activate o and b = Overlay.activate o in
  Overlay.add_edge o a b;
  Overlay.add_edge o a b;
  Alcotest.(check int) "degree counts copies" 2 (Overlay.degree o a);
  Alcotest.(check bool) "remove one copy" true (Overlay.remove_edge o a b);
  Alcotest.(check int) "one copy left" 1 (Overlay.degree o a);
  Alcotest.(check bool) "invariant" true (Overlay.invariant o)

let test_overlay_self_loop () =
  let o = Overlay.create ~capacity:1 in
  let a = Overlay.activate o in
  Overlay.add_edge o a a;
  Alcotest.(check int) "loop degree 2" 2 (Overlay.degree o a);
  Alcotest.(check int) "one edge" 1 (Overlay.edge_count o);
  Alcotest.(check bool) "invariant" true (Overlay.invariant o);
  Alcotest.(check bool) "remove loop" true (Overlay.remove_edge o a a);
  Alcotest.(check int) "degree 0" 0 (Overlay.degree o a)

let test_overlay_deactivate () =
  let o = Overlay.create ~capacity:3 in
  let a = Overlay.activate o
  and b = Overlay.activate o
  and c = Overlay.activate o in
  Overlay.add_edge o a b;
  Overlay.add_edge o a c;
  Overlay.deactivate o a;
  Alcotest.(check bool) "gone" false (Overlay.is_alive o a);
  Alcotest.(check int) "edges removed" 0 (Overlay.edge_count o);
  Alcotest.(check int) "b degree" 0 (Overlay.degree o b);
  Alcotest.(check bool) "invariant" true (Overlay.invariant o);
  Alcotest.check_raises "double deactivate"
    (Invalid_argument "Overlay.deactivate: not alive") (fun () ->
      Overlay.deactivate o a)

let test_overlay_dead_endpoint_rejected () =
  let o = Overlay.create ~capacity:2 in
  let a = Overlay.activate o in
  Alcotest.check_raises "dead endpoint"
    (Invalid_argument "Overlay.add_edge: dead endpoint") (fun () ->
      Overlay.add_edge o a 1)

let test_overlay_of_graph_snapshot_roundtrip () =
  let o = regular_overlay ~seed:1 ~n:50 ~d:4 ~capacity:60 in
  Alcotest.(check int) "nodes copied" 50 (Overlay.node_count o);
  Alcotest.(check int) "edges copied" 100 (Overlay.edge_count o);
  Alcotest.(check bool) "invariant" true (Overlay.invariant o);
  let g = Overlay.snapshot o in
  Alcotest.(check int) "snapshot n = capacity" 60 (Graph.n g);
  Alcotest.(check int) "snapshot edges" 100 (Graph.m g);
  for v = 0 to 49 do
    Alcotest.(check int) "snapshot degree" 4 (Graph.degree g v)
  done

let test_overlay_random_node () =
  let o = Overlay.create ~capacity:10 in
  let a = Overlay.activate o in
  let rng = Rng.create 2 in
  for _ = 1 to 20 do
    Alcotest.(check int) "only live node" a (Overlay.random_node o rng)
  done

let test_overlay_random_edge () =
  let o = regular_overlay ~seed:3 ~n:30 ~d:4 ~capacity:30 in
  let rng = Rng.create 4 in
  for _ = 1 to 100 do
    match Overlay.random_edge o rng with
    | None -> Alcotest.fail "edges exist"
    | Some (u, w) ->
        Alcotest.(check bool) "endpoints adjacent" true
          (List.mem w (Overlay.neighbors o u))
  done

let test_overlay_random_edge_empty () =
  let o = Overlay.create ~capacity:3 in
  ignore (Overlay.activate o);
  let rng = Rng.create 5 in
  Alcotest.(check bool) "no edges -> None" true (Overlay.random_edge o rng = None)

let test_overlay_topology_view () =
  let o = regular_overlay ~seed:6 ~n:20 ~d:4 ~capacity:25 in
  let t = Overlay.to_topology o in
  Alcotest.(check int) "capacity" 25 t.Rumor_sim.Topology.capacity;
  Alcotest.(check int) "degree through view" 4 (t.Rumor_sim.Topology.degree 0);
  Alcotest.(check bool) "dead id" false (t.Rumor_sim.Topology.alive 24);
  (* Live view: mutations show through. *)
  Overlay.deactivate o 0;
  Alcotest.(check bool) "deactivation visible" false (t.Rumor_sim.Topology.alive 0)

(* Pin the documented bounds contract: [neighbor] checks its index
   against the adjacency length (dead ids have length 0), unlike the
   unchecked [to_topology] fast path. *)
let test_overlay_neighbor_bounds () =
  let o = Overlay.create ~capacity:4 in
  let a = Overlay.activate o and b = Overlay.activate o in
  Overlay.add_edge o a b;
  Alcotest.(check int) "in range" b (Overlay.neighbor o a 0);
  Alcotest.check_raises "index = degree"
    (Invalid_argument "Overlay.neighbor: index") (fun () ->
      ignore (Overlay.neighbor o a 1));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Overlay.neighbor: index") (fun () ->
      ignore (Overlay.neighbor o a (-1)));
  Alcotest.check_raises "dead id has no entries"
    (Invalid_argument "Overlay.neighbor: index") (fun () ->
      ignore (Overlay.neighbor o 3 0))

(* --- Churn --- *)

let test_join_preserves_regularity () =
  let o = regular_overlay ~seed:7 ~n:40 ~d:4 ~capacity:50 in
  let rng = Rng.create 8 in
  let fresh = Churn.join o ~rng ~d:4 in
  Alcotest.(check int) "41 nodes" 41 (Overlay.node_count o);
  Alcotest.(check int) "newcomer degree" 4 (Overlay.degree o fresh);
  List.iter
    (fun d -> Alcotest.(check int) "still 4-regular" 4 d)
    (degrees_live o);
  Alcotest.(check bool) "invariant" true (Overlay.invariant o)

let test_join_odd_degree_rejected () =
  let o = regular_overlay ~seed:9 ~n:10 ~d:4 ~capacity:20 in
  let rng = Rng.create 9 in
  Alcotest.check_raises "odd d"
    (Invalid_argument "Churn.join: d must be positive and even") (fun () ->
      ignore (Churn.join o ~rng ~d:3))

let test_leave_preserves_regularity () =
  let o = regular_overlay ~seed:10 ~n:40 ~d:4 ~capacity:40 in
  let rng = Rng.create 11 in
  let gone = Churn.leave_random o ~rng in
  Alcotest.(check bool) "departed" false (Overlay.is_alive o gone);
  Alcotest.(check int) "39 nodes" 39 (Overlay.node_count o);
  List.iter
    (fun d -> Alcotest.(check int) "still 4-regular" 4 d)
    (degrees_live o);
  Alcotest.(check bool) "invariant" true (Overlay.invariant o)

let test_churn_storm_keeps_structure () =
  (* 200 random join/leave operations: regularity and symmetry hold
     throughout; this is the main churn stress test. *)
  let o = regular_overlay ~seed:12 ~n:30 ~d:4 ~capacity:100 in
  let rng = Rng.create 13 in
  for _ = 1 to 200 do
    ignore (Churn.session o ~rng ~d:4 ~join_prob:0.5 ~leave_prob:0.5 ())
  done;
  Alcotest.(check bool) "invariant after storm" true (Overlay.invariant o);
  List.iter (fun d -> Alcotest.(check int) "4-regular" 4 d) (degrees_live o);
  Alcotest.(check bool) "population sane" true (Overlay.node_count o >= 6)

let test_leave_not_alive () =
  let o = Overlay.create ~capacity:2 in
  let rng = Rng.create 14 in
  Alcotest.check_raises "dead node" (Invalid_argument "Churn.leave: not alive")
    (fun () -> Churn.leave o ~rng ~node:0)

(* --- Switcher --- *)

let test_switch_preserves_degrees () =
  let o = regular_overlay ~seed:15 ~n:50 ~d:6 ~capacity:50 in
  let rng = Rng.create 16 in
  let before = degrees_live o in
  let applied = Switcher.run o ~rng ~steps:500 in
  Alcotest.(check bool) "some switches applied" true (applied > 100);
  Alcotest.(check (list int)) "degrees unchanged" before (degrees_live o);
  Alcotest.(check bool) "invariant" true (Overlay.invariant o)

let test_switch_preserves_edge_count () =
  let o = regular_overlay ~seed:17 ~n:40 ~d:4 ~capacity:40 in
  let rng = Rng.create 18 in
  let m = Overlay.edge_count o in
  ignore (Switcher.run o ~rng ~steps:300);
  Alcotest.(check int) "edge count constant" m (Overlay.edge_count o)

let test_switch_actually_rewires () =
  let o = regular_overlay ~seed:19 ~n:40 ~d:4 ~capacity:40 in
  let rng = Rng.create 20 in
  let before = Graph.to_edges (Overlay.snapshot o) in
  Switcher.scramble o ~rng ~passes:3;
  let after = Graph.to_edges (Overlay.snapshot o) in
  Alcotest.(check bool) "topology changed" true (before <> after)

let test_switch_empty_overlay () =
  let o = Overlay.create ~capacity:3 in
  let rng = Rng.create 21 in
  Alcotest.(check bool) "no edges -> reject" false (Switcher.switch_once o ~rng);
  Alcotest.(check int) "run applies none" 0 (Switcher.run o ~rng ~steps:10)

let test_switch_no_self_loops_on_simple_start () =
  let o = regular_overlay ~seed:22 ~n:30 ~d:4 ~capacity:30 in
  let rng = Rng.create 23 in
  Switcher.scramble o ~rng ~passes:5;
  let g = Overlay.snapshot o in
  Alcotest.(check int) "no self loops created" 0 (Graph.count_self_loops g)

(* --- Replica --- *)

let test_replica_write_read () =
  let r = Replica.create ~capacity:4 in
  let v1 = Replica.local_write r ~node:0 ~key:7 ~data:100 in
  Alcotest.(check (option (pair int int))) "read back" (Some (100, v1))
    (Replica.read r ~node:0 ~key:7);
  Alcotest.(check (option (pair int int))) "other replica empty" None
    (Replica.read r ~node:1 ~key:7);
  Alcotest.(check int) "store size" 1 (Replica.store_size r ~node:0)

let test_replica_versions_monotone () =
  let r = Replica.create ~capacity:2 in
  let v1 = Replica.local_write r ~node:0 ~key:1 ~data:10 in
  let v2 = Replica.local_write r ~node:0 ~key:1 ~data:20 in
  Alcotest.(check bool) "versions increase" true (v2 > v1)

let test_replica_apply_last_writer_wins () =
  let r = Replica.create ~capacity:2 in
  Alcotest.(check bool) "new key applies" true
    (Replica.apply r ~node:0 ~key:5 ~data:1 ~version:10);
  Alcotest.(check bool) "older ignored" false
    (Replica.apply r ~node:0 ~key:5 ~data:2 ~version:4);
  Alcotest.(check (option (pair int int))) "kept newer" (Some (1, 10))
    (Replica.read r ~node:0 ~key:5);
  Alcotest.(check bool) "newer applies" true
    (Replica.apply r ~node:0 ~key:5 ~data:3 ~version:11)

let test_replica_broadcast_delivers () =
  let o = regular_overlay ~seed:24 ~n:128 ~d:8 ~capacity:128 in
  let r = Replica.create ~capacity:128 in
  let rng = Rng.create 25 in
  let params = Rumor_core.Params.make ~n_estimate:128 ~d:8 () in
  let protocol = Rumor_core.Algorithm.make params in
  let res =
    Replica.broadcast ~rng ~overlay:o ~protocol r ~origin:0 ~key:42 ~data:4242
  in
  Alcotest.(check bool) "broadcast completed" true (Engine.success res);
  for node = 0 to 127 do
    match Replica.read r ~node ~key:42 with
    | Some (4242, _) -> ()
    | Some _ | None -> Alcotest.failf "node %d missed the update" node
  done;
  Alcotest.(check (float 1e-9)) "staleness 0" 0.
    (Replica.staleness r ~overlay:o ~key:42);
  Alcotest.(check bool) "converged" true (Replica.converged r ~overlay:o)

let test_replica_staleness_partial () =
  let o = regular_overlay ~seed:26 ~n:10 ~d:4 ~capacity:10 in
  let r = Replica.create ~capacity:10 in
  ignore (Replica.local_write r ~node:0 ~key:1 ~data:5);
  let s = Replica.staleness r ~overlay:o ~key:1 in
  Alcotest.(check (float 1e-9)) "9 of 10 stale" 0.9 s;
  Alcotest.(check bool) "unknown key nan" true
    (Float.is_nan (Replica.staleness r ~overlay:o ~key:999))

let test_replica_anti_entropy_converges () =
  let o = regular_overlay ~seed:27 ~n:32 ~d:4 ~capacity:32 in
  let r = Replica.create ~capacity:32 in
  ignore (Replica.local_write r ~node:0 ~key:1 ~data:11);
  ignore (Replica.local_write r ~node:5 ~key:2 ~data:22);
  let rng = Rng.create 28 in
  let rounds = ref 0 in
  while (not (Replica.converged r ~overlay:o)) && !rounds < 100 do
    ignore (Replica.anti_entropy_round ~rng ~overlay:o r);
    incr rounds
  done;
  Alcotest.(check bool)
    (Printf.sprintf "converged in %d rounds" !rounds)
    true
    (Replica.converged r ~overlay:o);
  Alcotest.(check (float 1e-9)) "key 1 fresh everywhere" 0.
    (Replica.staleness r ~overlay:o ~key:1)

let test_replica_anti_entropy_counts_transfers () =
  let o = regular_overlay ~seed:29 ~n:16 ~d:4 ~capacity:16 in
  let r = Replica.create ~capacity:16 in
  ignore (Replica.local_write r ~node:0 ~key:9 ~data:1);
  let rng = Rng.create 30 in
  let t1 = Replica.anti_entropy_round ~rng ~overlay:o r in
  Alcotest.(check bool) "first round transfers > 0" true (t1.Replica.transfers > 0);
  Alcotest.(check bool) "compared >= transferred" true
    (t1.Replica.compared >= t1.Replica.transfers);
  (* After convergence a round transfers nothing but still compares. *)
  for _ = 1 to 50 do
    ignore (Replica.anti_entropy_round ~rng ~overlay:o r)
  done;
  let late = Replica.anti_entropy_round ~rng ~overlay:o r in
  Alcotest.(check int) "quiescent when converged" 0 late.Replica.transfers;
  Alcotest.(check bool) "digest cost persists" true (late.Replica.compared > 0)

let test_replica_converged_detects_difference () =
  let o = regular_overlay ~seed:31 ~n:8 ~d:4 ~capacity:8 in
  let r = Replica.create ~capacity:8 in
  Alcotest.(check bool) "empty stores converged" true
    (Replica.converged r ~overlay:o);
  ignore (Replica.local_write r ~node:3 ~key:1 ~data:1);
  Alcotest.(check bool) "divergence detected" false
    (Replica.converged r ~overlay:o)

(* --- Broadcast under churn (engine + overlay together) --- *)

let test_broadcast_survives_churn () =
  let o = regular_overlay ~seed:32 ~n:512 ~d:8 ~capacity:1024 in
  let rng = Rng.create 33 in
  let params = Rumor_core.Params.make ~alpha:2.0 ~n_estimate:512 ~d:8 () in
  let protocol = Rumor_core.Algorithm.make params in
  let res =
    Engine.run ~rng
      ~on_round_end:(fun _ ->
        ignore (Churn.session o ~rng ~d:8 ~join_prob:0.8 ~leave_prob:0.8 ()))
      ~topology:(Overlay.to_topology o)
      ~protocol ~sources:[ 0 ] ()
  in
  (* Nodes that joined late may miss the rumor; the overwhelming majority
     must still be informed. *)
  let coverage =
    float_of_int res.Engine.informed /. float_of_int res.Engine.population
  in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.3f >= 0.95" coverage)
    true (coverage >= 0.95);
  Alcotest.(check bool) "overlay still sane" true (Overlay.invariant o)

(* --- regression: a late joiner needs the repair layer ---

   The newcomer arrives after every pusher has stopped transmitting, so
   without repair it provably ends the run uninformed; under
   [Repair.self_heal], fed by the same [reset] hook, it must end
   informed. Both arms rebuild the same seeded overlay and rng. *)

let bounded_pusher ~push_until ~horizon =
  {
    Rumor_sim.Protocol.name = "bounded-push";
    selector = Rumor_sim.Selector.Uniform { fanout = 1 };
    horizon;
    init = (fun ~informed -> informed);
    decide =
      (fun st ~round ->
        ignore st;
        { Rumor_sim.Protocol.push = round <= push_until; pull = false });
    receive = (fun _ ~round -> ignore round; true);
    feedback = Rumor_sim.Protocol.no_feedback;
    quiescent = (fun _ ~round -> round > horizon);
    packed = None;
  }

let late_join_arm ~with_repair =
  let n = 64 and d = 8 in
  let o = regular_overlay ~seed:51 ~n ~d ~capacity:(2 * n) in
  let rng = Rng.create 52 in
  let joined = ref [] in
  let newcomer = ref (-1) in
  let on_round_end r =
    if r = 13 then begin
      let v = Churn.join o ~rng ~d in
      newcomer := v;
      joined := [ v ]
    end
  in
  let reset () =
    let l = !joined in
    joined := [];
    l
  in
  let protocol = bounded_pusher ~push_until:12 ~horizon:16 in
  let topology = Overlay.to_topology o in
  let res =
    if with_repair then
      Rumor_core.Repair.self_heal
        ~config:(Rumor_core.Repair.config ~n ())
        ~reset ~on_round_end ~rng ~topology ~protocol ~sources:[ 0 ] ()
    else Engine.run ~reset ~on_round_end ~rng ~topology ~protocol ~sources:[ 0 ] ()
  in
  (res, !newcomer)

let test_late_join_needs_repair () =
  let bare, j = late_join_arm ~with_repair:false in
  Alcotest.(check bool) "a node joined" true (j >= 0);
  Alcotest.(check bool) "newcomer uninformed without repair" false
    (Rumor_sim.Bitset.get bare.Engine.knows j);
  Alcotest.(check bool) "so the bare run fails" false (Engine.success bare);
  let healed, j' = late_join_arm ~with_repair:true in
  Alcotest.(check int) "same newcomer id" j j';
  Alcotest.(check bool) "newcomer informed under repair" true
    (Rumor_sim.Bitset.get healed.Engine.knows j');
  Alcotest.(check bool) "healed run succeeds" true (Engine.success healed)

(* --- qcheck properties --- *)

let prop_churn_preserves_regularity =
  QCheck.Test.make ~count:30 ~name:"random churn keeps the overlay d-regular"
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, ops) ->
      let o = regular_overlay ~seed ~n:20 ~d:4 ~capacity:80 in
      let rng = Rng.create (seed + 1000) in
      for _ = 1 to ops do
        ignore (Churn.session o ~rng ~d:4 ~join_prob:0.6 ~leave_prob:0.4 ())
      done;
      Overlay.invariant o
      && List.for_all (fun d -> d = 4) (degrees_live o))

let prop_switch_preserves_degree_multiset =
  QCheck.Test.make ~count:30 ~name:"switch chain preserves the degree multiset"
    QCheck.(pair small_int (int_range 0 300))
    (fun (seed, steps) ->
      let o = regular_overlay ~seed:(seed + 1) ~n:24 ~d:4 ~capacity:24 in
      let rng = Rng.create (seed + 2000) in
      let before = List.sort compare (degrees_live o) in
      ignore (Switcher.run o ~rng ~steps);
      Overlay.invariant o && List.sort compare (degrees_live o) = before)

(* --- capacity handling ---

   A saturated overlay must drop join ticks, not raise: the serve layer
   calls [Churn.session] from inside engine hooks where an exception
   would kill a worker domain. *)

let test_churn_session_at_capacity_never_raises () =
  (* capacity == n: there is no room for any join at all *)
  let o = regular_overlay ~seed:61 ~n:16 ~d:4 ~capacity:16 in
  let rng = Rng.create 62 in
  for _ = 1 to 200 do
    let ev = Churn.session o ~rng ~d:4 ~join_prob:1.0 ~leave_prob:0.0 () in
    Alcotest.(check bool) "saturated join tick dropped" true
      (ev.Churn.joined = None)
  done;
  Alcotest.(check int) "population unchanged" 16 (Overlay.node_count o);
  Alcotest.(check bool) "overlay still sane" true (Overlay.invariant o)

let test_churn_session_refills_after_leaves () =
  let o = regular_overlay ~seed:63 ~n:16 ~d:4 ~capacity:16 in
  let rng = Rng.create 64 in
  (* Make room, then a join-only tick must fire again. *)
  ignore (Churn.leave_random o ~rng);
  let rec join_fires tries =
    if tries = 0 then false
    else
      let ev = Churn.session o ~rng ~d:4 ~join_prob:1.0 ~leave_prob:0.0 () in
      ev.Churn.joined <> None || join_fires (tries - 1)
  in
  Alcotest.(check bool) "join fires once capacity frees" true (join_fires 50);
  Alcotest.(check int) "back at capacity" 16 (Overlay.node_count o)

let live_count_of o =
  List.length
    (List.filter
       (fun v -> Overlay.is_alive o v)
       (List.init (Overlay.capacity o) (fun i -> i)))

let prop_churn_live_count_consistent =
  QCheck.Test.make ~count:40
    ~name:"join/leave streams keep node_count = |alive| (capacity respected)"
    QCheck.(triple small_int (int_range 1 60) (int_range 0 10))
    (fun (seed, ops, jp10) ->
      let capacity = 24 in
      let o = regular_overlay ~seed:(seed + 3000) ~n:16 ~d:4 ~capacity in
      let rng = Rng.create (seed + 4000) in
      let join_prob = float_of_int jp10 /. 10. in
      let ok = ref true in
      for i = 1 to ops do
        let leave_prob = if i mod 3 = 0 then 0.8 else 0.2 in
        ignore (Churn.session o ~rng ~d:4 ~join_prob ~leave_prob ());
        let counted = live_count_of o in
        ok :=
          !ok
          && Overlay.node_count o = counted
          && counted <= capacity
          && Overlay.invariant o
      done;
      !ok)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_churn_preserves_regularity;
      prop_switch_preserves_degree_multiset;
      prop_churn_live_count_consistent;
    ]

let () =
  Alcotest.run "rumor_p2p"
    [
      ( "overlay",
        [
          Alcotest.test_case "create empty" `Quick test_overlay_create_empty;
          Alcotest.test_case "activate" `Quick test_overlay_activate;
          Alcotest.test_case "edges" `Quick test_overlay_edges;
          Alcotest.test_case "parallel edges" `Quick test_overlay_parallel_edges;
          Alcotest.test_case "self loop" `Quick test_overlay_self_loop;
          Alcotest.test_case "deactivate" `Quick test_overlay_deactivate;
          Alcotest.test_case "dead endpoint" `Quick test_overlay_dead_endpoint_rejected;
          Alcotest.test_case "of_graph/snapshot" `Quick
            test_overlay_of_graph_snapshot_roundtrip;
          Alcotest.test_case "random node" `Quick test_overlay_random_node;
          Alcotest.test_case "random edge" `Quick test_overlay_random_edge;
          Alcotest.test_case "random edge empty" `Quick test_overlay_random_edge_empty;
          Alcotest.test_case "topology view" `Quick test_overlay_topology_view;
          Alcotest.test_case "neighbor bounds" `Quick
            test_overlay_neighbor_bounds;
        ] );
      ( "churn",
        [
          Alcotest.test_case "join regular" `Quick test_join_preserves_regularity;
          Alcotest.test_case "join odd d" `Quick test_join_odd_degree_rejected;
          Alcotest.test_case "leave regular" `Quick test_leave_preserves_regularity;
          Alcotest.test_case "churn storm" `Quick test_churn_storm_keeps_structure;
          Alcotest.test_case "leave dead" `Quick test_leave_not_alive;
          Alcotest.test_case "session at capacity never raises" `Quick
            test_churn_session_at_capacity_never_raises;
          Alcotest.test_case "session refills after leaves" `Quick
            test_churn_session_refills_after_leaves;
        ] );
      ( "switcher",
        [
          Alcotest.test_case "degrees preserved" `Quick test_switch_preserves_degrees;
          Alcotest.test_case "edge count" `Quick test_switch_preserves_edge_count;
          Alcotest.test_case "rewires" `Quick test_switch_actually_rewires;
          Alcotest.test_case "empty overlay" `Quick test_switch_empty_overlay;
          Alcotest.test_case "no self loops" `Quick
            test_switch_no_self_loops_on_simple_start;
        ] );
      ( "replica",
        [
          Alcotest.test_case "write/read" `Quick test_replica_write_read;
          Alcotest.test_case "versions monotone" `Quick test_replica_versions_monotone;
          Alcotest.test_case "last writer wins" `Quick
            test_replica_apply_last_writer_wins;
          Alcotest.test_case "broadcast delivers" `Slow test_replica_broadcast_delivers;
          Alcotest.test_case "staleness" `Quick test_replica_staleness_partial;
          Alcotest.test_case "anti-entropy converges" `Quick
            test_replica_anti_entropy_converges;
          Alcotest.test_case "anti-entropy transfers" `Quick
            test_replica_anti_entropy_counts_transfers;
          Alcotest.test_case "converged detection" `Quick
            test_replica_converged_detects_difference;
        ] );
      ( "integration",
        [
          Alcotest.test_case "broadcast under churn" `Slow
            test_broadcast_survives_churn;
          Alcotest.test_case "late joiner needs repair" `Quick
            test_late_join_needs_repair;
        ] );
      ("properties", qcheck_cases);
    ]
