(* Tests for the rumor_sim library: topology views, faults, traces,
   selectors and the engine's round semantics. *)

module Rng = Rumor_rng.Rng
module Graph = Rumor_graph.Graph
module Classic = Rumor_gen.Classic
module Regular = Rumor_gen.Regular
module Topology = Rumor_sim.Topology
module Fault = Rumor_sim.Fault
module Trace = Rumor_sim.Trace
module Selector = Rumor_sim.Selector
module Protocol = Rumor_sim.Protocol
module Engine = Rumor_sim.Engine

(* A minimal always-push protocol used by many engine tests. *)
let pusher ?(fanout = 1) ?(pull = false) ~horizon () =
  {
    Protocol.name = "test-push";
    selector = Selector.Uniform { fanout };
    horizon;
    init = (fun ~informed -> informed);
    decide = (fun st ~round -> ignore round; ignore st;
               { Protocol.push = true; pull });
    receive = (fun _ ~round -> ignore round; true);
    feedback = Protocol.no_feedback;
    quiescent = (fun _ ~round -> round > horizon);
    packed = None;
  }

let silent_protocol ~horizon =
  {
    Protocol.name = "test-silent";
    selector = Selector.Uniform { fanout = 1 };
    horizon;
    init = (fun ~informed -> informed);
    decide = (fun _ ~round -> ignore round; Protocol.silent);
    receive = (fun _ ~round -> ignore round; true);
    feedback = Protocol.no_feedback;
    quiescent = (fun _ ~round -> ignore round; false);
    packed = None;
  }

(* --- Topology --- *)

let test_topology_of_graph () =
  let g = Classic.cycle 5 in
  let t = Topology.of_graph g in
  Alcotest.(check int) "capacity" 5 t.Topology.capacity;
  Alcotest.(check int) "degree" 2 (t.Topology.degree 3);
  Alcotest.(check bool) "alive" true (t.Topology.alive 0);
  Alcotest.(check int) "alive count" 5 (Topology.alive_count t);
  let w = t.Topology.neighbor 0 0 in
  Alcotest.(check bool) "neighbor adjacent" true (Graph.mem_edge g 0 w)

(* --- Fault --- *)

let test_fault_none () =
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "channel ok" true (Fault.channel_ok Fault.none rng);
    Alcotest.(check bool) "delivery ok" true (Fault.delivery_ok Fault.none rng)
  done

let test_fault_validation () =
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Fault.make: link_loss out of range") (fun () ->
      ignore (Fault.make ~link_loss:1.5 ()))

let test_fault_total_loss () =
  let rng = Rng.create 2 in
  let f = Fault.make ~link_loss:1. () in
  for _ = 1 to 50 do
    Alcotest.(check bool) "always lost" false (Fault.delivery_ok f rng)
  done

let test_fault_frequency () =
  let rng = Rng.create 3 in
  let f = Fault.make ~call_failure:0.3 () in
  let ok = ref 0 in
  for _ = 1 to 20_000 do
    if Fault.channel_ok f rng then incr ok
  done;
  let rate = float_of_int !ok /. 20_000. in
  Alcotest.(check bool) "~70% established" true (abs_float (rate -. 0.7) < 0.02)

let test_fault_make_is_plan_subset () =
  (* The compatible constructor builds the same plan as the full one. *)
  Alcotest.(check bool) "make = plan on shared fields" true
    (Fault.make ~call_failure:0.1 ~link_loss:0.2 ()
    = Fault.plan ~call_failure:0.1 ~link_loss:0.2 ());
  (* Stateless helpers ignore the stateful modes entirely. *)
  let rng = Rng.create 20 in
  let f =
    Fault.plan ~burst:(Fault.burst ~loss:0.5 ~burst_len:2.) ~crash_rate:0.9 ()
  in
  for _ = 1 to 50 do
    Alcotest.(check bool) "channel unaffected" true (Fault.channel_ok f rng);
    Alcotest.(check bool) "delivery unaffected" true (Fault.delivery_ok f rng)
  done

(* --- Trace --- *)

let test_trace_growth () =
  let t = Trace.create () in
  Alcotest.(check int) "empty" 0 (Trace.length t);
  for r = 1 to 100 do
    Trace.add t
      { Trace.round = r; informed = r; newly = 1; push_tx = r; pull_tx = 0;
        channels = r }
  done;
  Alcotest.(check int) "length" 100 (Trace.length t);
  Alcotest.(check int) "get round" 42 (Trace.get t 41).Trace.round;
  Alcotest.(check int) "rows order" 1 (List.hd (Trace.rows t)).Trace.round;
  Alcotest.check_raises "bad index" (Invalid_argument "Trace.get: index")
    (fun () -> ignore (Trace.get t 100))

let test_trace_pp () =
  let t = Trace.create () in
  Trace.add t
    { Trace.round = 1; informed = 2; newly = 1; push_tx = 3; pull_tx = 0;
      channels = 4 };
  let s = Format.asprintf "%a" Trace.pp t in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions header" true (contains "informed" s)

(* --- Selector --- *)

let select_list sel ~rng ~node ~degree k =
  let out = Array.make (max k 1) 0 in
  let n = Selector.select sel ~rng ~node ~degree ~out in
  Array.to_list (Array.sub out 0 n)

let test_selector_uniform_distinct () =
  let sel = Selector.make (Selector.Uniform { fanout = 4 }) ~capacity:1 in
  let rng = Rng.create 4 in
  for _ = 1 to 200 do
    let l = select_list sel ~rng ~node:0 ~degree:10 4 in
    Alcotest.(check int) "four picks" 4 (List.length l);
    let s = List.sort_uniq compare l in
    Alcotest.(check int) "distinct" 4 (List.length s);
    List.iter
      (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 10))
      l
  done

let test_selector_fanout_capped () =
  let sel = Selector.make (Selector.Uniform { fanout = 4 }) ~capacity:1 in
  let rng = Rng.create 5 in
  let l = select_list sel ~rng ~node:0 ~degree:2 4 in
  Alcotest.(check int) "capped at degree" 2 (List.length l);
  Alcotest.(check int) "zero degree none" 0
    (List.length (select_list sel ~rng ~node:0 ~degree:0 4))

let test_selector_validate () =
  Alcotest.check_raises "fanout" (Invalid_argument "Selector: fanout < 1")
    (fun () -> Selector.validate (Selector.Uniform { fanout = 0 }));
  Alcotest.check_raises "window" (Invalid_argument "Selector: window < 0")
    (fun () ->
      Selector.validate (Selector.Avoid_recent { fanout = 1; window = -1 }))

let test_selector_quasirandom_cyclic () =
  let sel = Selector.make (Selector.Quasirandom { fanout = 1 }) ~capacity:2 in
  let rng = Rng.create 6 in
  (* Consecutive calls walk the list cyclically: 10 calls on degree 10
     visit every index exactly once. *)
  let seen = Array.make 10 0 in
  for _ = 1 to 10 do
    match select_list sel ~rng ~node:0 ~degree:10 1 with
    | [ i ] -> seen.(i) <- seen.(i) + 1
    | _ -> Alcotest.fail "expected one pick"
  done;
  Array.iter (fun c -> Alcotest.(check int) "each index once" 1 c) seen

let test_selector_quasirandom_fanout () =
  let sel = Selector.make (Selector.Quasirandom { fanout = 3 }) ~capacity:1 in
  let rng = Rng.create 7 in
  let a = select_list sel ~rng ~node:0 ~degree:10 3 in
  let b = select_list sel ~rng ~node:0 ~degree:10 3 in
  (match (a, b) with
  | [ a0; a1; a2 ], [ b0; _; _ ] ->
      Alcotest.(check int) "consecutive" ((a0 + 1) mod 10) a1;
      Alcotest.(check int) "consecutive" ((a1 + 1) mod 10) a2;
      Alcotest.(check int) "continues" ((a2 + 1) mod 10) b0
  | _ -> Alcotest.fail "expected three picks");
  ()

let test_selector_avoid_recent () =
  let sel =
    Selector.make (Selector.Avoid_recent { fanout = 1; window = 3 }) ~capacity:1
  in
  let rng = Rng.create 8 in
  (* With degree 10 and window 3, four consecutive picks are pairwise
     distinct (each avoids the previous three). *)
  for _ = 1 to 50 do
    let picks =
      List.concat_map
        (fun _ -> select_list sel ~rng ~node:0 ~degree:10 1)
        [ (); (); (); () ]
    in
    Alcotest.(check int) "4 distinct picks" 4
      (List.length (List.sort_uniq compare picks))
  done

let test_selector_avoid_recent_small_degree () =
  (* window + fanout > degree: falls back to plain uniform, still works. *)
  let sel =
    Selector.make (Selector.Avoid_recent { fanout = 1; window = 3 }) ~capacity:1
  in
  let rng = Rng.create 9 in
  for _ = 1 to 100 do
    match select_list sel ~rng ~node:0 ~degree:2 1 with
    | [ i ] -> Alcotest.(check bool) "in range" true (i >= 0 && i < 2)
    | _ -> Alcotest.fail "expected one pick"
  done

let test_selector_per_node_memory () =
  (* Memory is per node: node 1's picks are unconstrained by node 0's. *)
  let sel =
    Selector.make (Selector.Avoid_recent { fanout = 1; window = 2 }) ~capacity:2
  in
  let rng = Rng.create 10 in
  ignore (select_list sel ~rng ~node:0 ~degree:5 1);
  ignore (select_list sel ~rng ~node:1 ~degree:5 1);
  ignore (select_list sel ~rng ~node:0 ~degree:5 1);
  (* No assertion beyond "does not raise": the regression here was index
     collision between nodes. *)
  ()

(* --- Engine --- *)

let run_push ?fault ?(stop = false) ?(fanout = 1) ~graph ~horizon ~seed () =
  let rng = Rng.create seed in
  Engine.run ?fault ~stop_when_complete:stop ~rng
    ~topology:(Topology.of_graph graph)
    ~protocol:(pusher ~fanout ~horizon ())
    ~sources:[ 0 ] ()

let test_engine_completes_complete_graph () =
  let res = run_push ~graph:(Classic.complete 64) ~horizon:60 ~seed:1 () in
  Alcotest.(check bool) "success" true (Engine.success res);
  Alcotest.(check int) "population" 64 res.Engine.population;
  Alcotest.(check bool) "completion recorded" true
    (res.Engine.completion_round <> None)

let test_engine_completes_regular_graph () =
  let rng = Rng.create 2 in
  let g = Regular.sample_connected ~rng ~n:256 ~d:4 Regular.Pairing in
  let res = run_push ~graph:g ~horizon:200 ~seed:3 () in
  Alcotest.(check bool) "success" true (Engine.success res)

let test_engine_silent_never_spreads () =
  let rng = Rng.create 4 in
  Alcotest.(check int) "only source informed" 1
    (Engine.run ~rng
       ~topology:(Topology.of_graph (Classic.complete 32))
       ~protocol:(silent_protocol ~horizon:20)
       ~sources:[ 0 ] ())
      .Engine.informed

let test_engine_no_sources_rejected () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "empty sources" (Invalid_argument "Engine.run: no sources")
    (fun () ->
      ignore
        (Engine.run ~rng
           ~topology:(Topology.of_graph (Classic.complete 4))
           ~protocol:(pusher ~horizon:5 ())
           ~sources:[] ()))

let test_engine_bad_source_rejected () =
  let rng = Rng.create 6 in
  Alcotest.check_raises "bad source" (Invalid_argument "Engine.run: bad source")
    (fun () ->
      ignore
        (Engine.run ~rng
           ~topology:(Topology.of_graph (Classic.complete 4))
           ~protocol:(pusher ~horizon:5 ())
           ~sources:[ 9 ] ()))

let test_engine_stop_when_complete () =
  let res =
    run_push ~stop:true ~graph:(Classic.complete 64) ~horizon:10_000 ~seed:7 ()
  in
  Alcotest.(check bool) "stopped early" true (res.Engine.rounds < 100);
  Alcotest.(check (option int)) "completion = rounds"
    (Some res.Engine.rounds) res.Engine.completion_round

let test_engine_horizon_respected () =
  let res = run_push ~graph:(Classic.cycle 1000) ~horizon:7 ~seed:8 () in
  Alcotest.(check int) "exactly horizon rounds" 7 res.Engine.rounds;
  Alcotest.(check bool) "cycle too slow to finish" false (Engine.success res)

let test_engine_quiescent_early_stop () =
  (* Protocol quiescent from round 4 on: engine stops at round 3. *)
  let p = pusher ~horizon:100 () in
  let p = { p with Protocol.quiescent = (fun _ ~round -> round > 3); packed = None } in
  let rng = Rng.create 9 in
  let res =
    Engine.run ~rng
      ~topology:(Topology.of_graph (Classic.complete 32))
      ~protocol:p ~sources:[ 0 ] ()
  in
  Alcotest.(check int) "stopped when quiet" 3 res.Engine.rounds

let test_engine_trace_consistency () =
  let rng = Rng.create 10 in
  let res =
    Engine.run ~collect_trace:true ~rng
      ~topology:(Topology.of_graph (Classic.complete 64))
      ~protocol:(pusher ~horizon:40 ())
      ~sources:[ 0 ] ()
  in
  match res.Engine.trace with
  | None -> Alcotest.fail "trace requested but missing"
  | Some t ->
      let rows = Trace.rows t in
      Alcotest.(check int) "one row per round" res.Engine.rounds
        (List.length rows);
      let newly_sum =
        List.fold_left (fun acc r -> acc + r.Trace.newly) 0 rows
      in
      Alcotest.(check int) "newly sums to informed minus source"
        (res.Engine.informed - 1) newly_sum;
      let push_sum =
        List.fold_left (fun acc r -> acc + r.Trace.push_tx) 0 rows
      in
      Alcotest.(check int) "push totals match" res.Engine.push_tx push_sum;
      (* informed counts are monotone *)
      let rec monotone = function
        | a :: (b :: _ as rest) ->
            a.Trace.informed <= b.Trace.informed && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "monotone informed" true (monotone rows)

let test_engine_knows_matches_informed () =
  let res = run_push ~graph:(Classic.complete 32) ~horizon:30 ~seed:11 () in
  let know_count = Rumor_sim.Bitset.cardinal res.Engine.knows in
  Alcotest.(check int) "knows array consistent" res.Engine.informed know_count

let test_engine_total_link_loss () =
  let f = Fault.make ~link_loss:1. () in
  let res = run_push ~fault:f ~graph:(Classic.complete 32) ~horizon:20 ~seed:12 () in
  Alcotest.(check int) "nothing spreads" 1 res.Engine.informed;
  (* Transmissions are attempted but all lost: the engine counts only
     deliveries, so push_tx stays 0. *)
  Alcotest.(check int) "no delivered transmissions" 0 res.Engine.push_tx

let test_engine_total_call_failure () =
  let f = Fault.make ~call_failure:1. () in
  let res = run_push ~fault:f ~graph:(Classic.complete 32) ~horizon:20 ~seed:13 () in
  Alcotest.(check int) "no channels" 0 res.Engine.channels;
  Alcotest.(check int) "nothing spreads" 1 res.Engine.informed

let test_engine_partial_loss_still_completes () =
  let f = Fault.make ~link_loss:0.3 () in
  let res =
    run_push ~fault:f ~graph:(Classic.complete 64) ~horizon:200 ~seed:14 ()
  in
  Alcotest.(check bool) "completes despite loss" true (Engine.success res)

let test_engine_channels_counted () =
  let res = run_push ~graph:(Classic.complete 16) ~horizon:5 ~seed:15 () in
  (* 16 nodes x 1 call x 5 rounds, all established. *)
  Alcotest.(check int) "channels" 80 res.Engine.channels

let test_engine_pull_direction () =
  (* Pull-only: informed nodes answer callers; on K_n one round after the
     source is called by ~everyone... with fanout 1 expect steady spread. *)
  let p = pusher ~horizon:100 () in
  let p =
    {
      p with
      Protocol.decide = (fun _ ~round -> ignore round;
                          { Protocol.push = false; pull = true });
    }
  in
  let rng = Rng.create 16 in
  let res =
    Engine.run ~stop_when_complete:true ~rng
      ~topology:(Topology.of_graph (Classic.complete 64))
      ~protocol:p ~sources:[ 0 ] ()
  in
  Alcotest.(check bool) "pull completes" true (Engine.success res);
  Alcotest.(check int) "no pushes" 0 res.Engine.push_tx;
  Alcotest.(check bool) "pulls happened" true (res.Engine.pull_tx > 0)

let test_engine_on_round_end_called () =
  let calls = ref [] in
  let rng = Rng.create 17 in
  let _ =
    Engine.run ~rng
      ~on_round_end:(fun r -> calls := r :: !calls)
      ~topology:(Topology.of_graph (Classic.complete 8))
      ~protocol:(pusher ~horizon:4 ())
      ~sources:[ 0 ] ()
  in
  Alcotest.(check (list int)) "called each round" [ 4; 3; 2; 1 ] !calls

let test_engine_multi_source () =
  let res =
    let rng = Rng.create 18 in
    Engine.run ~stop_when_complete:true ~rng
      ~topology:(Topology.of_graph (Classic.cycle 30))
      ~protocol:(pusher ~horizon:300 ())
      ~sources:[ 0; 10; 20 ] ()
  in
  Alcotest.(check bool) "multi-source completes faster" true
    (Engine.success res && res.Engine.rounds < 150)

let test_engine_deterministic () =
  let a = run_push ~graph:(Classic.complete 64) ~horizon:30 ~seed:99 () in
  let b = run_push ~graph:(Classic.complete 64) ~horizon:30 ~seed:99 () in
  Alcotest.(check int) "same transmissions" (Engine.transmissions a)
    (Engine.transmissions b);
  Alcotest.(check (option int)) "same completion" a.Engine.completion_round
    b.Engine.completion_round

(* --- qcheck properties --- *)

let prop_informed_never_decreases =
  QCheck.Test.make ~count:40 ~name:"final informed >= sources"
    QCheck.(pair small_int (int_range 4 64))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let res =
        Engine.run ~rng
          ~topology:(Topology.of_graph (Classic.cycle (max n 3)))
          ~protocol:(pusher ~horizon:10 ())
          ~sources:[ 0 ] ()
      in
      res.Engine.informed >= 1 && res.Engine.informed <= res.Engine.population)

let prop_fanout_speeds_completion =
  QCheck.Test.make ~count:20 ~name:"fanout 4 at least as fast as fanout 1 on K_n"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let g = Classic.complete 128 in
      let r1 = run_push ~stop:true ~fanout:1 ~graph:g ~horizon:500 ~seed () in
      let r4 = run_push ~stop:true ~fanout:4 ~graph:g ~horizon:500 ~seed () in
      match (r1.Engine.completion_round, r4.Engine.completion_round) with
      | Some c1, Some c4 -> c4 <= c1 + 2
      | _ -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_informed_never_decreases; prop_fanout_speeds_completion ]

let () =
  Alcotest.run "rumor_sim"
    [
      ("topology", [ Alcotest.test_case "of_graph" `Quick test_topology_of_graph ]);
      ( "fault",
        [
          Alcotest.test_case "none" `Quick test_fault_none;
          Alcotest.test_case "validation" `Quick test_fault_validation;
          Alcotest.test_case "total loss" `Quick test_fault_total_loss;
          Alcotest.test_case "frequency" `Quick test_fault_frequency;
          Alcotest.test_case "make is plan subset" `Quick
            test_fault_make_is_plan_subset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "growth" `Quick test_trace_growth;
          Alcotest.test_case "pp" `Quick test_trace_pp;
        ] );
      ( "selector",
        [
          Alcotest.test_case "uniform distinct" `Quick test_selector_uniform_distinct;
          Alcotest.test_case "fanout capped" `Quick test_selector_fanout_capped;
          Alcotest.test_case "validate" `Quick test_selector_validate;
          Alcotest.test_case "quasirandom cyclic" `Quick
            test_selector_quasirandom_cyclic;
          Alcotest.test_case "quasirandom fanout" `Quick
            test_selector_quasirandom_fanout;
          Alcotest.test_case "avoid recent" `Quick test_selector_avoid_recent;
          Alcotest.test_case "avoid recent small degree" `Quick
            test_selector_avoid_recent_small_degree;
          Alcotest.test_case "per-node memory" `Quick test_selector_per_node_memory;
        ] );
      ( "engine",
        [
          Alcotest.test_case "completes K_n" `Quick test_engine_completes_complete_graph;
          Alcotest.test_case "completes G(n,d)" `Quick
            test_engine_completes_regular_graph;
          Alcotest.test_case "silent stays put" `Quick test_engine_silent_never_spreads;
          Alcotest.test_case "no sources" `Quick test_engine_no_sources_rejected;
          Alcotest.test_case "bad source" `Quick test_engine_bad_source_rejected;
          Alcotest.test_case "stop when complete" `Quick test_engine_stop_when_complete;
          Alcotest.test_case "horizon respected" `Quick test_engine_horizon_respected;
          Alcotest.test_case "quiescent early stop" `Quick
            test_engine_quiescent_early_stop;
          Alcotest.test_case "trace consistency" `Quick test_engine_trace_consistency;
          Alcotest.test_case "knows matches informed" `Quick
            test_engine_knows_matches_informed;
          Alcotest.test_case "total link loss" `Quick test_engine_total_link_loss;
          Alcotest.test_case "total call failure" `Quick test_engine_total_call_failure;
          Alcotest.test_case "partial loss completes" `Quick
            test_engine_partial_loss_still_completes;
          Alcotest.test_case "channels counted" `Quick test_engine_channels_counted;
          Alcotest.test_case "pull direction" `Quick test_engine_pull_direction;
          Alcotest.test_case "on_round_end" `Quick test_engine_on_round_end_called;
          Alcotest.test_case "multi source" `Quick test_engine_multi_source;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
        ] );
      ("properties", qcheck_cases);
    ]
